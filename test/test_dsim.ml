(* Tests for the dsim extras: traffic determinism, trace rendering, the
   time-travel debugger (paper §7), and bounded-exhaustive verification. *)

module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Names = Druzhba_pipeline.Names
module Compile = Druzhba_pipeline.Compile
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Budget = Druzhba_dsim.Budget
module Faults = Druzhba_dsim.Faults
module Phv = Druzhba_dsim.Phv
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace
module Debugger = Druzhba_dsim.Debugger
module Atoms = Druzhba_atoms.Atoms
module Fuzz = Druzhba_fuzz.Fuzz
module Verify = Druzhba_fuzz.Verify

let gen ~depth ~width ?(bits = 32) ?(stateful = "raw") () =
  Dgen.generate
    (Dgen.config ~depth ~width ~bits ())
    ~stateful:(Atoms.find_exn stateful) ~stateless:(Atoms.find_exn "stateless_full")

let neutral_mc (desc : Ir.t) =
  let mc = Machine_code.empty () in
  List.iter (fun (name, _) -> Machine_code.set mc name 0) (Ir.control_domains desc);
  Array.iter
    (fun (st : Ir.stage) ->
      Array.iter
        (fun name -> Machine_code.set mc name (Names.Select.passthrough ~width:desc.Ir.d_width))
        st.Ir.s_output_muxes)
    desc.Ir.d_stages;
  mc

(* accumulator: state += pkt_0, output mux exposes old state *)
let accumulator () =
  let desc = gen ~depth:1 ~width:1 () in
  let mc = neutral_mc desc in
  Machine_code.set mc
    (Names.output_mux ~stage:0 ~container:0)
    (Names.Select.stateful_output ~width:1 0);
  (desc, mc)

(* --- Traffic ------------------------------------------------------------------ *)

let test_traffic_deterministic () =
  let a = Traffic.phvs (Traffic.create ~seed:5 ~width:3 ~bits:16) 50 in
  let b = Traffic.phvs (Traffic.create ~seed:5 ~width:3 ~bits:16) 50 in
  Alcotest.(check bool) "same trace" true (List.for_all2 Phv.equal a b);
  let c = Traffic.phvs (Traffic.create ~seed:6 ~width:3 ~bits:16) 50 in
  Alcotest.(check bool) "different seed differs" false (List.for_all2 Phv.equal a c)

let test_traffic_width_and_bits () =
  let phvs = Traffic.phvs (Traffic.create ~seed:1 ~width:4 ~bits:6) 100 in
  List.iter
    (fun phv ->
      Alcotest.(check int) "width" 4 (Phv.width phv);
      Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 64)) phv)
    phvs

(* --- Phv ------------------------------------------------------------------------ *)

let test_phv_equal_monomorphic () =
  Alcotest.(check bool) "equal" true (Phv.equal [| 1; 2; 3 |] [| 1; 2; 3 |]);
  Alcotest.(check bool) "differs in last" false (Phv.equal [| 1; 2; 3 |] [| 1; 2; 4 |]);
  Alcotest.(check bool) "length mismatch" false (Phv.equal [| 1; 2 |] [| 1; 2; 3 |]);
  Alcotest.(check bool) "empty" true (Phv.equal [||] [||])

let test_phv_blit () =
  let src = [| 7; 8; 9 |] in
  let dst = Phv.create ~width:3 in
  Phv.blit src dst;
  Alcotest.(check bool) "copied" true (Phv.equal src dst);
  src.(0) <- 100;
  Alcotest.(check int) "no aliasing" 7 (Phv.get dst 0)

(* --- Trace ---------------------------------------------------------------------- *)

let test_trace_buffer () =
  (* capacity 2 forces doubling growth across 5 pushes *)
  let buf = Trace.Buffer.create ~width:2 ~capacity:2 in
  Alcotest.(check int) "width" 2 (Trace.Buffer.width buf);
  let scratch = [| 0; 0; 0; 0 |] in
  for i = 1 to 5 do
    scratch.(2) <- (10 * i) + 1;
    scratch.(3) <- (10 * i) + 2;
    Trace.Buffer.push buf scratch ~off:2
  done;
  Alcotest.(check int) "length" 5 (Trace.Buffer.length buf);
  Alcotest.(check (list int)) "row 3 (borrowed)" [ 41; 42 ]
    (Array.to_list (Trace.Buffer.row buf 3));
  let frozen = Trace.Buffer.contents buf in
  Alcotest.(check int) "contents length" 5 (List.length frozen);
  Alcotest.(check (list int)) "first row" [ 11; 12 ] (Array.to_list (List.hd frozen));
  (* frozen rows are copies: clearing and refilling must not disturb them *)
  Trace.Buffer.clear buf;
  Alcotest.(check int) "cleared" 0 (Trace.Buffer.length buf);
  scratch.(2) <- 999;
  Trace.Buffer.push buf scratch ~off:2;
  Alcotest.(check (list int)) "frozen rows unaffected" [ 11; 12 ]
    (Array.to_list (List.hd frozen));
  Alcotest.(check bool) "row bounds checked" true
    (match Trace.Buffer.row buf 1 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_trace_pp_smoke () =
  let desc, mc = accumulator () in
  let trace = Engine.run desc ~mc ~inputs:[ [| 1 |]; [| 2 |] ] in
  let rendered = Fmt.str "%a" Trace.pp trace in
  Alcotest.(check bool) "mentions phv lines" true (String.length rendered > 20)

let test_engine_init_state () =
  let desc, mc = accumulator () in
  let init = [ (Names.stateful_alu ~stage:0 ~alu:0, [| 100 |]) ] in
  let trace = Engine.run ~init desc ~mc ~inputs:[ [| 5 |] ] in
  Alcotest.(check (option (list int)))
    "state starts at 100" (Some [ 105 ])
    (Option.map Array.to_list (Trace.find_state trace (Names.stateful_alu ~stage:0 ~alu:0)))

(* --- Debugger -------------------------------------------------------------------- *)

let session () =
  let desc, mc = accumulator () in
  Debugger.start desc ~mc ~inputs:(List.init 20 (fun i -> [| i + 1 |]))

let test_debugger_step_and_inspect () =
  let d = session () in
  let snap1 = Debugger.step d in
  Alcotest.(check int) "tick 1" 1 snap1.Debugger.snap_tick;
  (* after tick 1 the accumulator holds input 1 *)
  Alcotest.(check (option int))
    "state after tick 1" (Some 1)
    (Debugger.state d ~alu:(Names.stateful_alu ~stage:0 ~alu:0) ~slot:0);
  let _ = Debugger.step d in
  Alcotest.(check (option int))
    "state after tick 2" (Some 3)
    (Debugger.state d ~alu:(Names.stateful_alu ~stage:0 ~alu:0) ~slot:0)

let test_debugger_rewind () =
  let d = session () in
  let _ = Debugger.goto d 10 in
  Alcotest.(check (option int))
    "state at tick 10" (Some 55)
    (Debugger.state d ~alu:(Names.stateful_alu ~stage:0 ~alu:0) ~slot:0);
  (* rewind: tick 3 = 1+2+3 *)
  let snap = Debugger.goto d 3 in
  Alcotest.(check int) "cursor" 3 (Debugger.cursor d);
  Alcotest.(check int) "snapshot tick" 3 snap.Debugger.snap_tick;
  Alcotest.(check (option int))
    "state at tick 3" (Some 6)
    (Debugger.state d ~alu:(Names.stateful_alu ~stage:0 ~alu:0) ~slot:0);
  (* step_back one more *)
  let _ = Debugger.step_back d in
  Alcotest.(check (option int))
    "state at tick 2" (Some 3)
    (Debugger.state d ~alu:(Names.stateful_alu ~stage:0 ~alu:0) ~slot:0);
  (* and forward again: the history is replayed, not recomputed differently *)
  let _ = Debugger.step d in
  Alcotest.(check (option int))
    "state back at tick 3" (Some 6)
    (Debugger.state d ~alu:(Names.stateful_alu ~stage:0 ~alu:0) ~slot:0)

let test_debugger_breakpoint () =
  let d = session () in
  (* break when the accumulator reaches exactly 15 = 1+2+3+4+5 *)
  let bp = Debugger.break_on_state ~alu:(Names.stateful_alu ~stage:0 ~alu:0) ~slot:0 ~value:15 in
  (match Debugger.continue_until ~limit:50 d bp with
  | Some snap -> Alcotest.(check int) "fires at tick 5" 5 snap.Debugger.snap_tick
  | None -> Alcotest.fail "breakpoint never fired");
  (* rewind to where state was 6 *)
  match
    Debugger.rewind_until d
      (Debugger.break_on_state ~alu:(Names.stateful_alu ~stage:0 ~alu:0) ~slot:0 ~value:6)
  with
  | Some snap -> Alcotest.(check int) "rewinds to tick 3" 3 snap.Debugger.snap_tick
  | None -> Alcotest.fail "rewind never fired"

let test_debugger_first_divergence () =
  let desc, mc = accumulator () in
  let buggy = Machine_code.copy mc in
  (* flip the raw atom's mux to C() = 0: the accumulator stops accumulating *)
  Machine_code.set buggy
    (Names.slot ~alu_prefix:(Names.stateful_alu ~stage:0 ~alu:0) ~slot_name:"mux2_0")
    1;
  let inputs = List.init 20 (fun i -> [| i + 1 |]) in
  let a = Debugger.start desc ~mc ~inputs in
  let b = Debugger.start desc ~mc:buggy ~inputs in
  match Debugger.first_divergence ~observed:[ 0 ] a b with
  | Some tick ->
    (* tick 1 outputs old state 0 for both; tick 2 differs (1 vs 0) *)
    Alcotest.(check int) "diverges at tick 2" 2 tick
  | None -> Alcotest.fail "no divergence found"

let test_debugger_output_breakpoint () =
  let d = session () in
  let bp = Debugger.break_on_output ~container:0 ~pred:(fun v -> v >= 10) in
  match Debugger.continue_until ~limit:50 d bp with
  | Some snap -> (
    match snap.Debugger.snap_output with
    | Some phv -> Alcotest.(check bool) "output >= 10" true (phv.(0) >= 10)
    | None -> Alcotest.fail "no output at firing tick")
  | None -> Alcotest.fail "output breakpoint never fired"

(* --- Bounded-exhaustive verification ----------------------------------------------- *)

(* the accumulator at 3 bits: prove equivalence over all inputs and states *)
let test_verify_proves_accumulator () =
  let desc = gen ~depth:1 ~width:1 ~bits:3 () in
  let mc = neutral_mc desc in
  Machine_code.set mc
    (Names.output_mux ~stage:0 ~container:0)
    (Names.Select.stateful_output ~width:1 0);
  let spec =
    {
      Fuzz.spec_init = (fun () -> [| 0 |]);
      spec_step =
        (fun st phv ->
          let out = [| st.(0) |] in
          st.(0) <- (st.(0) + phv.(0)) land 7;
          out);
    }
  in
  match
    Verify.exhaustive_check ~desc ~mc ~spec ~observed:[ 0 ]
      ~state_layout:[ (Names.stateful_alu ~stage:0 ~alu:0, 0, 0) ]
      ~init:[] ()
  with
  | Verify.Proved { states; inputs_per_state } ->
    Alcotest.(check int) "8 reachable states" 8 states;
    Alcotest.(check int) "8 inputs each" 8 inputs_per_state
  | r -> Alcotest.failf "expected proof, got %a" Verify.pp_result r

let test_verify_finds_counterexample () =
  let desc = gen ~depth:1 ~width:1 ~bits:3 () in
  let mc = neutral_mc desc in
  Machine_code.set mc
    (Names.output_mux ~stage:0 ~container:0)
    (Names.Select.stateful_output ~width:1 0);
  (* spec wrongly claims saturation at 7 instead of wraparound *)
  let spec =
    {
      Fuzz.spec_init = (fun () -> [| 0 |]);
      spec_step =
        (fun st phv ->
          let out = [| st.(0) |] in
          st.(0) <- min 7 (st.(0) + phv.(0));
          out);
    }
  in
  match
    Verify.exhaustive_check ~desc ~mc ~spec ~observed:[ 0 ]
      ~state_layout:[ (Names.stateful_alu ~stage:0 ~alu:0, 0, 0) ]
      ~init:[] ()
  with
  | Verify.Counterexample cx ->
    Alcotest.(check bool) "state divergence" true (cx.Verify.cx_kind = `State 0)
  | r -> Alcotest.failf "expected counterexample, got %a" Verify.pp_result r

let test_verify_budget () =
  let desc = gen ~depth:1 ~width:1 ~bits:3 () in
  let mc = neutral_mc desc in
  Machine_code.set mc
    (Names.output_mux ~stage:0 ~container:0)
    (Names.Select.stateful_output ~width:1 0);
  let spec =
    {
      Fuzz.spec_init = (fun () -> [| 0 |]);
      spec_step =
        (fun st phv ->
          let out = [| st.(0) |] in
          st.(0) <- (st.(0) + phv.(0)) land 7;
          out);
    }
  in
  match
    Verify.exhaustive_check ~max_states:3 ~desc ~mc ~spec ~observed:[ 0 ]
      ~state_layout:[ (Names.stateful_alu ~stage:0 ~alu:0, 0, 0) ]
      ~init:[] ()
  with
  | Verify.Inconclusive { explored } -> Alcotest.(check bool) "honest" true (explored >= 3)
  | r -> Alcotest.failf "expected inconclusive, got %a" Verify.pp_result r

(* verify a real compiled benchmark at tiny width: sampling at 4 bits *)
let test_verify_compiled_sampling () =
  let bm = Druzhba_spec.Spec.find_exn "sampling" in
  let bits = 4 in
  let compiled = Druzhba_spec.Spec.compile_exn ~bits bm in
  let module Codegen = Druzhba_compiler.Codegen in
  let module Testing = Druzhba_compiler.Testing in
  match
    Verify.exhaustive_check ~desc:compiled.Codegen.c_desc ~mc:compiled.Codegen.c_mc
      ~spec:(Testing.spec_of compiled) ~observed:(Testing.observed compiled)
      ~state_layout:(Testing.state_layout compiled)
      ~init:compiled.Codegen.c_layout.Codegen.l_init ()
  with
  | Verify.Proved { states; _ } -> Alcotest.(check bool) "some states" true (states >= 10)
  | r -> Alcotest.failf "expected proof, got %a" Verify.pp_result r

(* --- Budget (watchdog fuel) --------------------------------------------------- *)

let test_budget_fuel () =
  (match Budget.ticks 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero budget accepted");
  let b = Budget.ticks 3 in
  Alcotest.(check int) "limit" 3 (Budget.limit b);
  for _ = 1 to 3 do
    Budget.spend b
  done;
  Alcotest.(check int) "dry" 0 (Budget.remaining b);
  (match Budget.spend b with
  | exception Budget.Exhausted -> ()
  | () -> Alcotest.fail "spend on a dry budget succeeded");
  (* refill re-arms to the full limit without reallocating *)
  Budget.refill b;
  Alcotest.(check int) "refilled" 3 (Budget.remaining b);
  Budget.spend b;
  Alcotest.(check int) "spends again" 2 (Budget.remaining b)

let test_budget_of_seconds () =
  (match Budget.of_seconds 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero timeout accepted");
  Alcotest.(check int) "fixed nominal rate"
    (2 * Budget.nominal_ticks_per_second)
    (Budget.limit (Budget.of_seconds 2))

let test_budget_bounds_engine () =
  let desc, mc = accumulator () in
  let inputs = Traffic.phvs (Traffic.create ~seed:11 ~width:1 ~bits:32) 10 in
  let engine = Engine.create desc ~mc in
  let buf = Trace.Buffer.create ~width:1 ~capacity:(List.length inputs) in
  (match Engine.run_into ~budget:(Budget.ticks 2) engine ~inputs buf with
  | exception Budget.Exhausted -> ()
  | () -> Alcotest.fail "2 ticks of fuel finished an 11-tick simulation");
  Engine.reset engine;
  Engine.run_into ~budget:(Budget.ticks 1000) engine ~inputs buf;
  Alcotest.(check int) "ample fuel completes" (List.length inputs)
    (List.length (Trace.Buffer.contents buf))

(* --- Faults (hardware fault injection) ---------------------------------------- *)

let test_faults_deterministic () =
  let desc = gen ~depth:2 ~width:2 () in
  let plan seed = Faults.generate ~seed ~desc ~n_inputs:20 ~count:5 () in
  Alcotest.(check bool) "same seed, same plan" true (plan 42 = plan 42);
  Alcotest.(check bool) "some seed draws a non-empty plan" true
    (List.exists (fun s -> not (Faults.is_empty (plan s))) [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check bool) "seeds diversify plans" true
    (List.exists (fun s -> plan s <> plan 42) [ 1; 2; 3; 4; 5 ])

(* the two substrates must agree tick-for-tick *under* the same fault plan,
   and a fault-free replay on the same instances must show no residue *)
let test_faults_substrates_agree_and_replay_clean () =
  let desc, mc = accumulator () in
  let inputs = Traffic.phvs (Traffic.create ~seed:23 ~width:1 ~bits:32) 40 in
  let capacity = List.length inputs in
  let pristine = Engine.run desc ~mc ~inputs in
  let engine = Engine.create desc ~mc in
  let compiled = Compiled.create (Compile.compile desc ~mc) in
  let eng_buf = Trace.Buffer.create ~width:1 ~capacity in
  let cmp_buf = Trace.Buffer.create ~width:1 ~capacity in
  let sensitive = ref 0 in
  for seed = 1 to 8 do
    let plan = Faults.generate ~seed ~desc ~n_inputs:capacity ~count:4 () in
    Faults.run_engine plan engine ~inputs eng_buf;
    Faults.run_compiled plan compiled ~inputs cmp_buf;
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: outputs agree under faults" seed)
      true
      (Trace.Buffer.contents eng_buf = Trace.Buffer.contents cmp_buf);
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: state agrees under faults" seed)
      true
      (Engine.current_state engine = Compiled.current_state compiled);
    if Trace.Buffer.contents eng_buf <> pristine.Trace.outputs then incr sensitive
  done;
  Alcotest.(check bool) "some fault visibly perturbs the accumulator" true (!sensitive > 0);
  (* fault-free replay: the overlay never touches the no-fault code path *)
  Engine.reset engine;
  Engine.run_into engine ~inputs eng_buf;
  Compiled.run_into compiled ~inputs cmp_buf;
  Alcotest.(check bool) "engine replay is pristine" true
    (Trace.Buffer.contents eng_buf = pristine.Trace.outputs);
  Alcotest.(check bool) "compiled replay is pristine" true
    (Trace.Buffer.contents cmp_buf = pristine.Trace.outputs)

(* --- Substrate interface --------------------------------------------------------- *)

module Substrate = Druzhba_dsim.Substrate
module Drmt_substrate = Druzhba_dsim.Drmt_substrate
module Sim = Druzhba_drmt.Sim
module P4 = Druzhba_drmt.P4

let run_into_trace packed ~inputs =
  let buf = Trace.Buffer.create ~width:(Substrate.width packed) ~capacity:(List.length inputs) in
  Substrate.run_into packed ~inputs buf;
  (Trace.Buffer.contents buf, Substrate.current_state packed)

let check_same_run msg (rows_a, state_a) (rows_b, state_b) =
  Alcotest.(check int) (msg ^ ": same row count") (List.length rows_a) (List.length rows_b);
  List.iteri
    (fun i (a, b) ->
      if not (Phv.equal a b) then
        Alcotest.failf "%s: row %d differs (%a vs %a)" msg i Phv.pp a Phv.pp b)
    (List.combine rows_a rows_b);
  Alcotest.(check bool) (msg ^ ": same final state") true
    (List.for_all2
       (fun (n1, v1) (n2, v2) -> n1 = n2 && Array.to_list v1 = Array.to_list v2)
       state_a state_b)

(* The two RMT adapters honor the same contract: identical rows and final
   state for identical (init, inputs), and [run_into] is an independent,
   repeatable run. *)
let test_substrate_rmt_adapters_agree () =
  let desc = gen ~depth:2 ~width:2 ~bits:8 () in
  let mc = Fuzz.random_mc (Prng.create 3) desc in
  let init = [ (Druzhba_pipeline.Names.stateful_alu ~stage:0 ~alu:0, [| 9 |]) ] in
  let engine = Substrate.of_engine ~init desc ~mc in
  let compiled = Substrate.of_compiled ~init (Compile.compile desc ~mc) in
  Alcotest.(check int) "same width" (Substrate.width engine) (Substrate.width compiled);
  Alcotest.(check string) "default labels" "interpreter" (Substrate.name engine);
  let inputs = Traffic.phvs (Traffic.create ~seed:4 ~width:2 ~bits:8) 40 in
  let a = run_into_trace engine ~inputs and b = run_into_trace compiled ~inputs in
  check_same_run "engine vs compiled" a b;
  (* independent-run contract: replaying the same value repeats the run *)
  check_same_run "engine replay" a (run_into_trace engine ~inputs);
  (* load_state re-arms subsequent runs *)
  Substrate.load_state engine [];
  Substrate.load_state compiled [];
  check_same_run "after state reload" (run_into_trace engine ~inputs)
    (run_into_trace compiled ~inputs)

let drmt_test_program =
  P4.parse
    {|
header h {
  a : 8;
  b : 8;
}
action bump(v) {
  h.b = h.b + v;
  reg.hits = reg.hits + 1;
}
action relay() {
  reg.relayed = reg.relayed + 1;
}
table t0 {
  key : h.a;
  match : exact;
  actions : { bump };
  default : bump 1;
}
table t1 {
  key : h.b;
  match : exact;
  actions : { relay };
  default : relay;
}
control {
  apply t0;
  apply t1;
}
|}

(* The dRMT substrate replays {!Sim.run_sequential} exactly: same per-packet
   traffic streams, same final registers. *)
let test_drmt_substrate_replays_sim () =
  let sub = Drmt_substrate.create ~mode:Drmt_substrate.Sequential ~entries:[] drmt_test_program in
  let packed = Drmt_substrate.pack sub in
  let inputs = Drmt_substrate.traffic ~seed:42 sub 25 in
  let _, state = run_into_trace packed ~inputs in
  let r = Sim.run_sequential ~seed:42 ~entries:[] ~packets:25 drmt_test_program in
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name state with
      | Some vec -> Alcotest.(check int) ("register " ^ name) v vec.(0)
      | None -> Alcotest.failf "register %s missing from substrate state" name)
    r.Sim.r_registers

(* Event-driven and sequential dRMT substrates agree through the generic
   trace contract (the single-trial core of the dRMT campaign). *)
let test_drmt_substrate_event_vs_sequential () =
  let seq = Drmt_substrate.of_p4 ~mode:Drmt_substrate.Sequential ~entries:[] drmt_test_program in
  let evt = Drmt_substrate.of_p4 ~mode:Drmt_substrate.Event ~entries:[] drmt_test_program in
  Alcotest.(check string) "labels" "drmt@sequential" (Substrate.name seq);
  Alcotest.(check string) "labels" "drmt@event" (Substrate.name evt);
  (* layout: h.a, h.b + trailing drop flag *)
  Alcotest.(check int) "row width" 3 (Substrate.width seq);
  let sub = Drmt_substrate.create ~mode:Drmt_substrate.Sequential ~entries:[] drmt_test_program in
  let inputs = Drmt_substrate.traffic ~seed:7 sub 30 in
  check_same_run "event vs sequential" (run_into_trace seq ~inputs) (run_into_trace evt ~inputs);
  (* register preload flows through load_state on both *)
  Substrate.load_state seq [ ("hits", [| 100 |]) ];
  Substrate.load_state evt [ ("hits", [| 100 |]) ];
  let _, state = run_into_trace seq ~inputs in
  check_same_run "preloaded event vs sequential" (run_into_trace seq ~inputs)
    (run_into_trace evt ~inputs);
  match List.assoc_opt "hits" state with
  | Some vec -> Alcotest.(check int) "preload counted" (100 + 30) vec.(0)
  | None -> Alcotest.fail "hits register missing"

(* The debugger drives any substrate: a compiled-backend session steps in
   lock-step with the interpreter session on the same inputs. *)
let test_debugger_on_compiled_substrate () =
  let desc, mc = accumulator () in
  let inputs = [ [| 3 |]; [| 5 |]; [| 7 |] ] in
  let interp = Debugger.start desc ~mc ~inputs in
  let closures = Debugger.start_on (Substrate.of_compiled (Compile.compile desc ~mc)) ~inputs in
  for _ = 1 to 6 do
    let a = Debugger.step interp and b = Debugger.step closures in
    Alcotest.(check bool) "same tick output" true
      (match (a.Debugger.snap_output, b.Debugger.snap_output) with
      | Some x, Some y -> Phv.equal x y
      | None, None -> true
      | _ -> false)
  done

(* A dRMT debugger session: each step runs one packet to completion under
   the reference semantics; registers persist across steps and rewinding
   revisits recorded snapshots. *)
let test_debugger_on_drmt_substrate () =
  let sub = Drmt_substrate.create ~mode:Drmt_substrate.Sequential ~entries:[] drmt_test_program in
  let inputs = [ [| 1; 2; 0 |]; [| 3; 4; 0 |] ] in
  let session = Debugger.start_on (Drmt_substrate.pack sub) ~inputs in
  let s1 = Debugger.step session in
  (match List.assoc_opt "hits" s1.Debugger.snap_state with
  | Some v -> Alcotest.(check int) "one packet through t0" 1 v.(0)
  | None -> Alcotest.fail "hits register missing");
  let s2 = Debugger.step session in
  (match List.assoc_opt "hits" s2.Debugger.snap_state with
  | Some v -> Alcotest.(check int) "registers persist across steps" 2 v.(0)
  | None -> Alcotest.fail "hits register missing");
  (* time travel: back to tick 1, state as recorded then *)
  let back = Debugger.step_back session in
  Alcotest.(check int) "rewound to tick 1" 1 back.Debugger.snap_tick;
  match List.assoc_opt "hits" back.Debugger.snap_state with
  | Some v -> Alcotest.(check int) "historical state" 1 v.(0)
  | None -> Alcotest.fail "hits register missing"

(* --- Input-path fault plans ------------------------------------------------------ *)

let test_faults_generate_io () =
  let plan = Faults.generate_io ~seed:9 ~width:3 ~bits:8 ~n_inputs:20 ~count:6 () in
  let again = Faults.generate_io ~seed:9 ~width:3 ~bits:8 ~n_inputs:20 ~count:6 () in
  Alcotest.(check bool) "pure in the seed" true (plan = again);
  Alcotest.(check int) "no stuck-at sites on the input path" 0 (Faults.n_stuck plan);
  Alcotest.(check bool) "drew something" true (not (Faults.is_empty plan))

let test_faults_overlay_inputs () =
  let inputs = List.init 8 (fun i -> [| i; 10 + i |]) in
  (* hand-built plan: flip bit 2 of container 1 of PHV 3; drop PHV 5 *)
  let plan =
    {
      Faults.fp_seed = 0;
      fp_flips = [ { Faults.bf_phv = 3; bf_container = 1; bf_bit = 2 } ];
      fp_stuck = [];
      fp_dropped = Array.init 8 (fun i -> i = 5);
    }
  in
  let out = Faults.overlay_inputs plan inputs in
  Alcotest.(check int) "dropped slot removed" 7 (List.length out);
  Alcotest.(check int) "flip applied" (13 lxor 4) (List.nth out 3).(1);
  Alcotest.(check int) "drop shifts later slots" 16 (List.nth out 5).(1);
  (* originals untouched: the overlay copies before flipping *)
  Alcotest.(check int) "input list not mutated" 13 (List.nth inputs 3).(1)

let () =
  Alcotest.run "dsim"
    [
      ( "traffic",
        [
          Alcotest.test_case "deterministic" `Quick test_traffic_deterministic;
          Alcotest.test_case "width and bits" `Quick test_traffic_width_and_bits;
        ] );
      ( "phv",
        [
          Alcotest.test_case "monomorphic equal" `Quick test_phv_equal_monomorphic;
          Alcotest.test_case "blit" `Quick test_phv_blit;
        ] );
      ( "trace",
        [
          Alcotest.test_case "buffer push/grow/freeze" `Quick test_trace_buffer;
          Alcotest.test_case "pp smoke" `Quick test_trace_pp_smoke;
          Alcotest.test_case "init state" `Quick test_engine_init_state;
        ] );
      ( "debugger",
        [
          Alcotest.test_case "step and inspect" `Quick test_debugger_step_and_inspect;
          Alcotest.test_case "rewind (time travel)" `Quick test_debugger_rewind;
          Alcotest.test_case "breakpoints" `Quick test_debugger_breakpoint;
          Alcotest.test_case "first divergence" `Quick test_debugger_first_divergence;
          Alcotest.test_case "output breakpoint" `Quick test_debugger_output_breakpoint;
        ] );
      ( "budget",
        [
          Alcotest.test_case "fuel: spend, exhaust, refill" `Quick test_budget_fuel;
          Alcotest.test_case "of_seconds uses the nominal rate" `Quick test_budget_of_seconds;
          Alcotest.test_case "bounds an engine run" `Quick test_budget_bounds_engine;
        ] );
      ( "faults",
        [
          Alcotest.test_case "plans are pure in their seed" `Quick test_faults_deterministic;
          Alcotest.test_case "substrates agree, replay is clean" `Quick
            test_faults_substrates_agree_and_replay_clean;
          Alcotest.test_case "input-path plans (generate_io)" `Quick test_faults_generate_io;
          Alcotest.test_case "overlay_inputs flips and drops" `Quick test_faults_overlay_inputs;
        ] );
      ( "substrate",
        [
          Alcotest.test_case "RMT adapters honor the contract" `Quick
            test_substrate_rmt_adapters_agree;
          Alcotest.test_case "dRMT substrate replays Sim" `Quick test_drmt_substrate_replays_sim;
          Alcotest.test_case "dRMT event = sequential through the contract" `Quick
            test_drmt_substrate_event_vs_sequential;
          Alcotest.test_case "debugger drives the compiled substrate" `Quick
            test_debugger_on_compiled_substrate;
          Alcotest.test_case "debugger drives the dRMT substrate" `Quick
            test_debugger_on_drmt_substrate;
        ] );
      ( "verification",
        [
          Alcotest.test_case "proves the accumulator" `Quick test_verify_proves_accumulator;
          Alcotest.test_case "finds a counterexample" `Quick test_verify_finds_counterexample;
          Alcotest.test_case "honest on budget" `Quick test_verify_budget;
          Alcotest.test_case "proves compiled sampling at 4 bits" `Quick
            test_verify_compiled_sampling;
        ] );
    ]
