(* Tests for the machine-code representation, text format, and validator. *)

module Machine_code = Druzhba_machine_code.Machine_code

let test_of_list_find () =
  let mc = Machine_code.of_list [ ("a", 1); ("b", 2) ] in
  Alcotest.(check int) "find a" 1 (Machine_code.find mc "a");
  Alcotest.(check int) "find b" 2 (Machine_code.find mc "b");
  Alcotest.(check (option int)) "find_opt missing" None (Machine_code.find_opt mc "c");
  Alcotest.(check int) "cardinal" 2 (Machine_code.cardinal mc)

let test_find_missing_raises () =
  let mc = Machine_code.empty () in
  match Machine_code.find mc "nope" with
  | _ -> Alcotest.fail "expected Missing"
  | exception Machine_code.Missing "nope" -> ()

let test_replace_semantics () =
  let mc = Machine_code.of_list [ ("a", 1); ("a", 9) ] in
  Alcotest.(check int) "last wins" 9 (Machine_code.find mc "a")

let test_to_alist_sorted () =
  let mc = Machine_code.of_list [ ("z", 1); ("a", 2); ("m", 3) ] in
  Alcotest.(check (list (pair string int)))
    "sorted"
    [ ("a", 2); ("m", 3); ("z", 1) ]
    (Machine_code.to_alist mc)

let test_copy_isolated () =
  let mc = Machine_code.of_list [ ("a", 1) ] in
  let c = Machine_code.copy mc in
  Machine_code.set c "a" 5;
  Alcotest.(check int) "original untouched" 1 (Machine_code.find mc "a");
  Alcotest.(check int) "copy changed" 5 (Machine_code.find c "a")

let test_override () =
  let base = Machine_code.of_list [ ("a", 1); ("b", 2) ] in
  let extra = Machine_code.of_list [ ("b", 9); ("c", 3) ] in
  let merged = Machine_code.override base extra in
  Alcotest.(check int) "kept" 1 (Machine_code.find merged "a");
  Alcotest.(check int) "overridden" 9 (Machine_code.find merged "b");
  Alcotest.(check int) "added" 3 (Machine_code.find merged "c");
  (* inputs untouched *)
  Alcotest.(check int) "base untouched" 2 (Machine_code.find base "b")

let test_parse_ok () =
  let src = {|
# a comment
alu_0_mux2_0 = 1
alu_0_const_0 = 42   # trailing comment

alu_1_opt_0 = 0
|} in
  match Machine_code.parse src with
  | Error e -> Alcotest.fail e
  | Ok mc ->
    Alcotest.(check int) "pairs" 3 (Machine_code.cardinal mc);
    Alcotest.(check int) "value" 42 (Machine_code.find mc "alu_0_const_0")

let test_parse_errors () =
  (match Machine_code.parse "novalue" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ());
  (match Machine_code.parse "a = xyz" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ());
  match Machine_code.parse " = 3" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_print_parse_roundtrip () =
  let mc = Machine_code.of_list [ ("x_1", 3); ("y_2", 0); ("z", 100) ] in
  match Machine_code.parse (Machine_code.to_string mc) with
  | Error e -> Alcotest.fail e
  | Ok mc' ->
    Alcotest.(check (list (pair string int)))
      "roundtrip" (Machine_code.to_alist mc) (Machine_code.to_alist mc')

let test_validate () =
  let mc = Machine_code.of_list [ ("a", 1); ("b", 2) ] in
  (match
     Machine_code.validate
       ~domains:[ ("a", Machine_code.Selector 2); ("b", Machine_code.Immediate) ]
       mc
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "expected ok");
  match
    Machine_code.validate
      ~domains:
        [
          ("a", Machine_code.Selector 2);
          ("b", Machine_code.Immediate);
          ("c", Machine_code.Selector 3);
          ("d", Machine_code.Immediate);
        ]
      mc
  with
  | Ok () -> Alcotest.fail "expected missing"
  | Error violations ->
    Alcotest.(check (list string))
      "missing names"
      [ "missing pair: c"; "missing pair: d" ]
      (List.map (Fmt.str "%a" Machine_code.pp_violation) violations)

let test_validate_out_of_range () =
  let domains = [ ("sel", Machine_code.Selector 4); ("imm", Machine_code.Immediate) ] in
  (* in-range selector, huge immediate: fine *)
  (match Machine_code.validate ~domains (Machine_code.of_list [ ("sel", 3); ("imm", 99999) ]) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "expected ok");
  (* selector past its bound *)
  (match Machine_code.validate ~domains (Machine_code.of_list [ ("sel", 4); ("imm", 0) ]) with
  | Ok () -> Alcotest.fail "expected out-of-range"
  | Error [ Machine_code.Out_of_range { vi_name = "sel"; vi_value = 4; vi_bound = 4 } ] -> ()
  | Error vs ->
    Alcotest.failf "unexpected violations: %a" Fmt.(list ~sep:comma Machine_code.pp_violation) vs);
  (* negative selector *)
  match Machine_code.validate ~domains (Machine_code.of_list [ ("sel", -1); ("imm", 0) ]) with
  | Ok () -> Alcotest.fail "expected out-of-range"
  | Error [ Machine_code.Out_of_range { vi_value = -1; _ } ] -> ()
  | Error vs ->
    Alcotest.failf "unexpected violations: %a" Fmt.(list ~sep:comma Machine_code.pp_violation) vs


let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let test_parse_rejects_duplicates () =
  (match Machine_code.parse "a = 1\nb = 2\na = 3" with
  | Ok _ -> Alcotest.fail "duplicate key accepted"
  | Error e -> Alcotest.(check bool) "error names the key" true (contains ~sub:"a" e));
  (* the tolerant variant keeps every binding so lint can flag them *)
  match Machine_code.parse_pairs "a = 1\nb = 2\na = 3" with
  | Error e -> Alcotest.fail e
  | Ok pairs ->
    Alcotest.(check int) "all bindings kept" 3 (List.length pairs);
    Alcotest.(check (list string)) "duplicates named once" [ "a" ] (Machine_code.duplicates pairs)

let test_of_pairs () =
  (match Machine_code.of_pairs [ ("a", 1); ("b", 2) ] with
  | Ok mc -> Alcotest.(check int) "distinct keys accepted" 2 (Machine_code.cardinal mc)
  | Error e -> Alcotest.fail e);
  match Machine_code.of_pairs [ ("a", 1); ("a", 2); ("c", 3); ("c", 4); ("c", 5) ] with
  | Ok _ -> Alcotest.fail "duplicates accepted"
  | Error e ->
    Alcotest.(check bool) "names a" true (contains ~sub:"a" e);
    Alcotest.(check bool) "names c once" true (contains ~sub:"c" e)

let () =
  Alcotest.run "machine_code"
    [
      ( "basics",
        [
          Alcotest.test_case "of_list / find" `Quick test_of_list_find;
          Alcotest.test_case "missing raises" `Quick test_find_missing_raises;
          Alcotest.test_case "replace semantics" `Quick test_replace_semantics;
          Alcotest.test_case "to_alist sorted" `Quick test_to_alist_sorted;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
          Alcotest.test_case "override" `Quick test_override;
        ] );
      ( "text format",
        [
          Alcotest.test_case "parse ok" `Quick test_parse_ok;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "duplicate keys rejected" `Quick test_parse_rejects_duplicates;
          Alcotest.test_case "of_pairs strictness" `Quick test_of_pairs;
        ] );
      ( "validation",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "out-of-range selectors" `Quick test_validate_out_of_range;
        ] );
    ]
