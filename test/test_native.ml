(* Tests for the native-codegen substrate: the {!Druzhba_pipeline.Emit} →
   `ocamlfind ocamlopt -shared` → Dynlink chain behind
   {!Druzhba_dsim.Native_substrate}.

   The load-bearing property is the cross-substrate one: for random
   programs at every optimization level, the Dynlinked emitted module is
   bit-identical to the interpreter and the closure compiler — sequential,
   batched, under fault overlays, and at the exact tick a budget runs dry.
   The rest covers the machinery around that property: the
   content-addressed build cache (memo hit, disk hit, corrupted-artifact
   recovery), emitted-source determinism (what makes the cache sound), and
   graceful degradation when the toolchain is absent.

   On a machine without ocamlfind/natdynlink the whole binary degrades to
   a single passing test that prints the probe's reason — the same
   structured skip the campaign and bench layers perform. *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba
module Emit = Druzhba_pipeline.Emit
module Oracle = Druzhba_campaign.Oracle

let stateful_pool = [| "raw"; "sub"; "pred_raw"; "if_else_raw"; "nested_ifs"; "pair" |]
let stateless_pool = [| "stateless_full"; "stateless_arith"; "stateless_rel"; "stateless_mux" |]

(* A small random program, same draw shape as the campaign generator. *)
let draw_program seed =
  let prng = Prng.create seed in
  let depth = 1 + Prng.int prng 2 in
  let width = 1 + Prng.int prng 2 in
  let bits = [| 8; 16; 32 |].(Prng.int prng 3) in
  let stateful = stateful_pool.(Prng.int prng (Array.length stateful_pool)) in
  let stateless = stateless_pool.(Prng.int prng (Array.length stateless_pool)) in
  let desc =
    Dgen.generate
      (Dgen.config ~depth ~width ~bits ())
      ~stateful:(Atoms.find_exn stateful) ~stateless:(Atoms.find_exn stateless)
  in
  let mc = Fuzz.random_mc prng desc in
  (desc, mc, width, bits)

let native_exn d ~mc =
  match Native_substrate.create d ~mc with
  | Ok packed -> packed
  | Error reason -> Alcotest.failf "native substrate creation failed: %s" reason

(* Runs [sub] and returns everything observable: the trace rows, the final
   state, and — when a budget is given — whether it exhausted, where the
   trace stopped, and the fuel left. *)
let observe ?faults ?fuel ~batched ~inputs ~width sub =
  let buf = Trace.Buffer.create ~width ~capacity:(List.length inputs) in
  let budget = Option.map Budget.ticks fuel in
  let exhausted =
    match
      if batched then Substrate.run_batch_into ?budget ?faults ~batch:16 sub ~inputs buf
      else Substrate.run_into ?budget ?faults sub ~inputs buf
    with
    | () -> false
    | exception Budget.Exhausted -> true
  in
  let rows = List.init (Trace.Buffer.length buf) (Trace.Buffer.row buf) in
  (rows, Substrate.current_state sub, exhausted, Option.map Budget.remaining budget)

let qcheck_cross_substrate =
  QCheck.Test.make ~name:"native is bit-identical to Engine and Compiled" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let desc, mc, width, bits = draw_program seed in
      let inputs = Traffic.phvs (Traffic.create ~seed:(Prng.derive seed 1) ~width ~bits) 40 in
      List.for_all
        (fun level ->
          let d = Optimizer.apply ~level ~mc desc in
          let faults =
            Faults.generate ~seed:(Prng.derive seed 2) ~desc:d ~n_inputs:40 ~count:3 ()
          in
          let fuel = 5 + Prng.int (Prng.create (Prng.derive seed 3)) 60 in
          List.for_all
            (fun (faults, fuel, batched) ->
              let run sub = observe ?faults ?fuel ~batched ~inputs ~width sub in
              let native = run (native_exn d ~mc) in
              let engine = run (Substrate.of_engine ~label:"interpreter" d ~mc) in
              let compiled = run (Substrate.of_compiled (Compile.compile d ~mc)) in
              if native = engine && native = compiled then true
              else
                QCheck.Test.fail_reportf
                  "seed %d, level %s, faults=%b fuel=%s batched=%b: native diverges" seed
                  (Optimizer.level_name level) (Option.is_some faults)
                  (match fuel with Some f -> string_of_int f | None -> "-")
                  batched)
            [
              (None, None, false);
              (None, None, true);
              (Some faults, None, false);
              (Some faults, None, true);
              (None, Some fuel, false);
              (Some faults, Some fuel, true);
            ])
        [ Optimizer.Unoptimized; Optimizer.Scc; Optimizer.Scc_inline ])

(* --- Build cache ------------------------------------------------------------- *)

let with_temp_cache_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "druzhba-native-test-%d" (Unix.getpid ()))
  in
  let rec remove_tree path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  remove_tree dir;
  Unix.putenv "DRUZHBA_NATIVE_CACHE_DIR" dir;
  Native_substrate.clear_memo ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "DRUZHBA_NATIVE_CACHE_DIR" "";
      Native_substrate.clear_memo ();
      remove_tree dir)
    (fun () -> f dir)

let rec find_cmxs dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun e ->
         let path = Filename.concat dir e in
         if Sys.is_directory path then find_cmxs path
         else if Filename.check_suffix path ".cmxs" then [ path ]
         else [])

let cache_fixture () =
  let desc =
    Dgen.generate
      (Dgen.config ~depth:1 ~width:1 ~bits:8 ())
      ~stateful:(Atoms.find_exn "raw") ~stateless:(Atoms.find_exn "stateless_mux")
  in
  (desc, Fuzz.random_mc (Prng.create 424242) desc)

let test_cache_hit_miss () =
  with_temp_cache_dir (fun _dir ->
      let desc, mc = cache_fixture () in
      let s0 = Native_substrate.stats () in
      ignore (native_exn desc ~mc);
      let s1 = Native_substrate.stats () in
      Alcotest.(check int) "fresh dir: one compile"
        (s0.Native_substrate.st_compiles + 1)
        s1.Native_substrate.st_compiles;
      ignore (native_exn desc ~mc);
      let s2 = Native_substrate.stats () in
      Alcotest.(check int) "second create: memo hit"
        (s1.Native_substrate.st_memo_hits + 1)
        s2.Native_substrate.st_memo_hits;
      Alcotest.(check int) "second create: no compile" s1.Native_substrate.st_compiles
        s2.Native_substrate.st_compiles;
      Native_substrate.clear_memo ();
      ignore (native_exn desc ~mc);
      let s3 = Native_substrate.stats () in
      Alcotest.(check int) "after clear_memo: disk cache hit"
        (s2.Native_substrate.st_cache_hits + 1)
        s3.Native_substrate.st_cache_hits;
      Alcotest.(check int) "after clear_memo: still no compile" s2.Native_substrate.st_compiles
        s3.Native_substrate.st_compiles)

(* The torn-write scenario: a killed process left a garbage `.cmxs` at the
   content-addressed path, and a fresh process must evict and rebuild it
   rather than propagate the Dynlink error.  The corrupt artifact is
   pre-seeded at {!Native_substrate.artifact_path} for a key this process
   has never loaded — corrupting an already-loaded path would be masked by
   the dynamic loader's handle cache (dlopen serves the old mapping for a
   known path), which is exactly not the scenario recovery exists for. *)
let test_corrupted_cmxs_recovery () =
  with_temp_cache_dir (fun dir ->
      let desc =
        Dgen.generate
          (Dgen.config ~depth:1 ~width:2 ~bits:16 ())
          ~stateful:(Atoms.find_exn "sub") ~stateless:(Atoms.find_exn "stateless_rel")
      in
      let mc = Fuzz.random_mc (Prng.create 777777) desc in
      Unix.mkdir dir 0o755;
      let cmxs = Native_substrate.artifact_path desc ~mc in
      let oc = open_out_bin cmxs in
      output_string oc "this is not a shared object";
      close_out oc;
      let s0 = Native_substrate.stats () in
      let packed = native_exn desc ~mc in
      let s1 = Native_substrate.stats () in
      Alcotest.(check int) "the corrupt artifact is found in the cache"
        (s0.Native_substrate.st_cache_hits + 1)
        s1.Native_substrate.st_cache_hits;
      Alcotest.(check int) "recovery recompiles once"
        (s0.Native_substrate.st_compiles + 1)
        s1.Native_substrate.st_compiles;
      (match find_cmxs dir with
      | [ rebuilt ] ->
        Alcotest.(check string) "rebuilt at the same content address" cmxs rebuilt
      | files -> Alcotest.failf "expected exactly one cached .cmxs, found %d" (List.length files));
      (* and the recovered module actually runs *)
      let inputs = Traffic.phvs (Traffic.create ~seed:5 ~width:2 ~bits:16) 8 in
      let buf = Trace.Buffer.create ~width:2 ~capacity:8 in
      Substrate.run_into packed ~inputs buf;
      Alcotest.(check int) "recovered module simulates" 8 (Trace.Buffer.length buf))

(* --- Emitted-source determinism ---------------------------------------------- *)

(* Byte-identical source for equal inputs is what makes the
   content-addressed cache sound: equal (description, machine code) must
   map to equal keys, including across independently reconstructed
   values. *)
let test_emitted_source_deterministic () =
  let source seed =
    let desc, mc, _, _ = draw_program seed in
    Emit.native_source desc ~mc
  in
  List.iter
    (fun seed ->
      Alcotest.(check string)
        (Printf.sprintf "seed %d reproduces byte-identically" seed)
        (source seed) (source seed))
    [ 0; 17; 4242 ];
  Alcotest.(check bool) "different programs emit different source" true
    (source 0 <> source 17)

(* --- Degradation ------------------------------------------------------------- *)

let test_disable_env () =
  Unix.putenv "DRUZHBA_NATIVE_DISABLE" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "DRUZHBA_NATIVE_DISABLE" "")
    (fun () ->
      (match Native_substrate.available () with
      | Error reason ->
        Alcotest.(check bool) "reason names the switch" true
          (let sub = "DRUZHBA_NATIVE_DISABLE" in
           let n = String.length sub and m = String.length reason in
           let rec at i = i + n <= m && (String.sub reason i n = sub || at (i + 1)) in
           at 0)
      | Ok () -> Alcotest.fail "expected unavailability under DRUZHBA_NATIVE_DISABLE");
      let desc, mc = cache_fixture () in
      match Native_substrate.create desc ~mc with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "create must refuse, not Dynlink, when disabled")

let available_suites =
  [
    ( "cross-substrate",
      [ QCheck_alcotest.to_alcotest ~long:false qcheck_cross_substrate ] );
    ( "build cache",
      [
        Alcotest.test_case "memo and disk hits" `Quick test_cache_hit_miss;
        Alcotest.test_case "corrupted cmxs recovery" `Quick test_corrupted_cmxs_recovery;
      ] );
    ( "emitter",
      [ Alcotest.test_case "source determinism" `Quick test_emitted_source_deterministic ] );
    ( "degradation",
      [ Alcotest.test_case "DRUZHBA_NATIVE_DISABLE refuses" `Quick test_disable_env ] );
  ]

let () =
  match Native_substrate.available () with
  | Ok () -> Alcotest.run "native" available_suites
  | Error reason ->
    (* structured skip: the suite passes, the reason is visible in the log *)
    Alcotest.run "native"
      [
        ( "toolchain",
          [
            Alcotest.test_case
              (Printf.sprintf "skipped: native toolchain unavailable (%s)" reason)
              `Quick
              (fun () -> ());
          ] );
      ]
