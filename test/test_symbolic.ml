(* Tests for translation validation: the symbolic evaluator ({!Symbolic}),
   the equivalence engine ({!Equiv}), the per-pass optimizer snapshots
   ({!Optimizer.apply_staged}), the compiled-artifact vet ({!Vet}), and the
   truncated-immediate lint rule. *)

module Value = Druzhba_util.Value
module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Atoms = Druzhba_atoms.Atoms
module Ir = Druzhba_pipeline.Ir
module Interp = Druzhba_pipeline.Interp
module Dgen = Druzhba_pipeline.Dgen
module Emit = Druzhba_pipeline.Emit
module Optimizer = Druzhba_optimizer.Optimizer
module Symbolic = Druzhba_analysis.Symbolic
module Equiv = Druzhba_analysis.Equiv
module Lint = Druzhba_analysis.Lint
module Fuzz = Druzhba_fuzz.Fuzz
module Frontend = Druzhba_compiler.Frontend
module Codegen = Druzhba_compiler.Codegen
module Synth = Druzhba_compiler.Synth
module Testing = Druzhba_compiler.Testing
module Vet = Druzhba_compiler.Vet
module Spec = Druzhba_spec.Spec

(* --- QCheck: the symbolic evaluator agrees with the interpreter ------------- *)

(* Random well-formed [Ir.expr] over the atoms the normal form quantifies:
   containers, state slots, constants (including control-space constants
   wider than the datapath, to exercise [Trunc]).  No [Var]/[Mc]/[Call] —
   those are resolved before the normal form and tested via whole-pipeline
   obligations below. *)
let gen_expr bits : Ir.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ir.Const n) (int_bound ((2 * Value.max_value bits) + 3));
        map (fun k -> Ir.Phv k) (int_bound 3);
        map (fun k -> Ir.State k) (int_bound 3);
      ]
  in
  let unop = oneofl [ Ir.Neg; Ir.Not ] in
  let binop =
    oneofl
      [ Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Mod; Ir.Eq; Ir.Neq; Ir.Lt; Ir.Gt; Ir.Le; Ir.Ge;
        Ir.And; Ir.Or ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 1 then leaf
         else
           frequency
             [
               (1, leaf);
               (2, map (fun e -> Ir.Trunc e) (self (n - 1)));
               (2, map2 (fun op e -> Ir.Unop (op, e)) unop (self (n - 1)));
               (4, map3 (fun op a b -> Ir.Binop (op, a, b)) binop (self (n / 2)) (self (n / 2)));
               ( 2,
                 map3 (fun c a b -> Ir.Cond (c, a, b)) (self (n / 3)) (self (n / 3)) (self (n / 3))
               );
             ])

let gen_case bits : (Ir.expr * int array * int array) QCheck.Gen.t =
  let open QCheck.Gen in
  let vals = array_size (return 4) (int_bound (Value.max_value bits)) in
  map3 (fun e phv state -> (e, phv, state)) (gen_expr bits) vals vals

let print_case (e, phv, state) =
  Fmt.str "expr: %s@.phv: %a@.state: %a" (Ir.show_expr e)
    Fmt.(Dump.array int)
    phv
    Fmt.(Dump.array int)
    state

let qcheck_eval_agrees bits =
  QCheck.Test.make
    ~name:(Printf.sprintf "symbolic eval agrees with Interp at %d bits" bits)
    ~count:500
    (QCheck.make ~print:print_case (gen_case bits))
    (fun (e, phv, state) ->
      let helpers = Hashtbl.create 0 in
      let ctx = { Interp.bits; mc = Machine_code.of_list []; helpers; probe = None; probe_on = false } in
      let expected = Interp.eval ctx ~phv ~state [] e in
      let env =
        Symbolic.env_of ~bits ~helpers
          ~phv:(fun k -> Symbolic.Phv k)
          ~state:(fun k -> Symbolic.State ("alu", k))
          ()
      in
      let sym = Symbolic.eval env e in
      let assign = function
        | Symbolic.Aphv k -> phv.(k)
        | Symbolic.Astate (_, k) -> state.(k)
        | Symbolic.Actrl _ -> 0
      in
      let got = Symbolic.eval_concrete ~bits ~assign sym in
      if got <> expected then
        QCheck.Test.fail_reportf "normal form %s evaluates to %d, interpreter says %d"
          (Symbolic.to_string sym) got expected
      else true)

(* --- Table-1: every optimizer pass is proved equivalent --------------------- *)

let level_chain ~mc desc =
  ("unoptimized", desc)
  :: List.map
       (fun st -> (st.Optimizer.st_pass, st.Optimizer.st_desc))
       (Optimizer.apply_staged ~level:Optimizer.Scc_inline ~mc desc)

let test_table1_proved () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      let chain = level_chain ~mc:compiled.Codegen.c_mc compiled.Codegen.c_desc in
      let obs = Equiv.check_chain ~mc:compiled.Codegen.c_mc chain in
      Alcotest.(check bool) (bm.Spec.bm_name ^ ": has obligations") true (obs <> []);
      List.iter
        (fun ob ->
          match ob.Equiv.ob_status with
          | Equiv.Proved _ -> ()
          | _ ->
            Alcotest.failf "%s: not proved: %a" bm.Spec.bm_name Equiv.pp_obligation ob)
        obs)
    Spec.all

let test_apply_staged_matches_apply () =
  let compiled = Spec.compile_exn (Spec.find_exn "sampling") in
  let mc = compiled.Codegen.c_mc and desc = compiled.Codegen.c_desc in
  List.iter
    (fun level ->
      let staged = Optimizer.apply_staged ~level ~mc desc in
      let final =
        match List.rev staged with [] -> desc | last :: _ -> last.Optimizer.st_desc
      in
      Alcotest.(check string)
        (Optimizer.level_name level ^ ": staged final = apply")
        (Emit.to_string (Optimizer.apply ~level ~mc desc))
        (Emit.to_string final))
    [ Optimizer.Unoptimized; Optimizer.Scc; Optimizer.Scc_inline ];
  Alcotest.(check (list string))
    "scc+inline pass names"
    [ "scc_propagate"; "dead_elim"; "inline_functions" ]
    (List.map
       (fun st -> st.Optimizer.st_pass)
       (Optimizer.apply_staged ~level:Optimizer.Scc_inline ~mc desc))

(* --- Sabotage: a miscompiling pass is refuted with a replayable witness ----- *)

(* Injects a deliberate miscompile into the output of [scc_propagate]: the
   first [If] of a stateful ALU gets its branches swapped — the classic
   "folded the conditional the wrong way" optimizer bug. *)
let sabotage (d : Ir.t) =
  let swapped = ref false in
  let rec swap_stmts = function
    | [] -> []
    | Ir.If (c, a, b) :: rest when not !swapped ->
      swapped := true;
      Ir.If (c, b, a) :: rest
    | s :: rest -> s :: swap_stmts rest
  in
  let stages =
    Array.map
      (fun (st : Ir.stage) ->
        {
          st with
          Ir.s_stateful =
            Array.map
              (fun (a : Ir.alu) ->
                if !swapped then a else { a with Ir.a_body = swap_stmts a.Ir.a_body })
              st.Ir.s_stateful;
        })
      d.Ir.d_stages
  in
  if not !swapped then Alcotest.fail "sabotage: no If statement found to corrupt";
  { d with Ir.d_stages = stages }

let test_sabotaged_scc_refuted () =
  let compiled = Spec.compile_exn (Spec.find_exn "sampling") in
  let mc = compiled.Codegen.c_mc and desc = compiled.Codegen.c_desc in
  let bad = sabotage (Optimizer.scc_propagate ~mc desc) in
  let obs =
    Equiv.check_chain ~mc [ ("unoptimized", desc); ("sabotaged scc_propagate", bad) ]
  in
  let refuted = List.filter Equiv.is_refuted obs in
  if refuted = [] then
    Alcotest.failf "sabotage not refuted; summary: %a"
      Fmt.(Dump.list (Dump.pair string int))
      (Equiv.summary obs);
  (* Every refutation must replay: running the subject's stage through the
     interpreter on the witness assignment reproduces the divergence. *)
  List.iter
    (fun ob ->
      match ob.Equiv.ob_status with
      | Equiv.Refuted (_, w) ->
        let assign = Equiv.assign_of_witness w in
        let lhs = Equiv.replay ~mc ~subject:ob.Equiv.ob_subject ~assign desc in
        let rhs = Equiv.replay ~mc ~subject:ob.Equiv.ob_subject ~assign bad in
        Alcotest.(check int) "witness lhs replays" w.Equiv.w_lhs lhs;
        Alcotest.(check int) "witness rhs replays" w.Equiv.w_rhs rhs;
        if lhs = rhs then Alcotest.fail "witness does not separate the descriptions"
      | _ -> ())
    refuted

(* --- Vet: compiled Table-1 artifacts against the reference semantics -------- *)

let test_vet_benchmarks_clean () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      let obs = Vet.check compiled in
      Alcotest.(check bool) (bm.Spec.bm_name ^ ": has obligations") true (obs <> []);
      List.iter
        (fun ob ->
          if Vet.is_refuted ob then
            Alcotest.failf "%s: refuted: %a" bm.Spec.bm_name Vet.pp_obligation ob)
        obs)
    Spec.all

(* --- Vet: the §5.2 narrow-synthesis artifact is refuted statically ---------- *)

let synth_problem ?(bits = 10) ?(synth_bits = 10) ?(budget = 200_000) src =
  {
    Synth.p_program = Frontend.parse src;
    p_target =
      Codegen.target ~depth:1 ~width:1 ~bits ~stateful:(Atoms.find_exn "pair")
        ~stateless:(Atoms.find_exn "stateless_full") ();
    p_synth_bits = synth_bits;
    p_examples = 16;
    p_budget = budget;
    p_seed = 42;
  }

let test_vet_refutes_narrow_synthesis () =
  let p =
    synth_problem ~synth_bits:4 "state s = 0; transaction t { if (pkt.a >= 100) { s = s + 1; } }"
  in
  match Synth.synthesize p with
  | Synth.Budget_exhausted { candidates } ->
    Alcotest.failf "narrow synthesis should succeed, gave up after %d" candidates
  | Synth.Synthesized compiled -> (
    (* Static verdict first: the 4-bit machine code cannot implement the
       10-bit spec, and vet must say so without executing any PHVs. *)
    let obs = Vet.check compiled in
    let refuted = List.filter Vet.is_refuted obs in
    if refuted = [] then
      Alcotest.failf "narrow synthesis not refuted statically; summary: %a"
        Fmt.(Dump.list (Dump.pair string int))
        (Vet.summary obs);
    (* ... and full-width fuzzing agrees with the static verdict. *)
    match Testing.check ~n:3000 compiled with
    | Fuzz.Mismatch _ -> ()
    | o -> Alcotest.failf "full-width fuzzing should also reject: %a" Fuzz.pp_outcome o)

(* --- Lint: truncated immediates -------------------------------------------- *)

let test_lint_truncated_immediate () =
  let bits = 8 in
  let cfg = Dgen.config ~depth:1 ~width:1 ~bits () in
  let desc =
    Dgen.generate cfg ~stateful:(Atoms.find_exn "raw") ~stateless:(Atoms.find_exn "stateless_mux")
  in
  let immediates =
    List.filter_map
      (fun (name, dom) -> match dom with Ir.Immediate -> Some name | Ir.Selector _ -> None)
      (Ir.control_domains desc)
  in
  let key = match immediates with k :: _ -> k | [] -> Alcotest.fail "no immediate control" in
  let oversized = (1 lsl bits) + 5 in
  let mc =
    Machine_code.of_list
      (List.map
         (fun (name, _) -> (name, if name = key then oversized else 0))
         (Ir.control_domains desc))
  in
  let findings = Lint.check ~mc desc in
  let hits = List.filter (fun f -> f.Lint.f_rule = "truncated-immediate") findings in
  match hits with
  | [ f ] ->
    Alcotest.(check string) "subject names the machine-code key" key f.Lint.f_subject;
    Alcotest.(check bool) "warning severity" true (f.Lint.f_severity = Lint.Warning)
  | l -> Alcotest.failf "expected exactly one truncated-immediate finding, got %d" (List.length l)

(* A clean program (all immediates representable) does not trip the rule. *)
let test_lint_truncated_immediate_silent () =
  let compiled = Spec.compile_exn (Spec.find_exn "sampling") in
  let findings = Lint.check ~mc:compiled.Codegen.c_mc compiled.Codegen.c_desc in
  Alcotest.(check (list string)) "no truncated-immediate findings" []
    (List.filter_map
       (fun f -> if f.Lint.f_rule = "truncated-immediate" then Some f.Lint.f_subject else None)
       findings)

(* --- Report schema ---------------------------------------------------------- *)

let test_report_schema_deterministic () =
  let f =
    { Lint.f_rule = "r"; f_severity = Lint.Warning; f_subject = "s"; f_message = "m" }
  in
  let json =
    Lint.report_to_json ~tool:"lint"
      [ Lint.target ~name:"b" [ f ]; Lint.target ~name:"a" [] ]
  in
  Alcotest.(check string) "versioned, sorted, deterministic"
    "{\"schema\":\"druzhba-report/1\",\"tool\":\"lint\",\"targets\":[{\"name\":\"a\",\"findings\":[],\"errors\":0,\"warnings\":0},{\"name\":\"b\",\"findings\":[{\"rule\":\"r\",\"severity\":\"warning\",\"subject\":\"s\",\"message\":\"m\"}],\"errors\":0,\"warnings\":1}]}"
    json

let () =
  Alcotest.run "symbolic"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_eval_agrees 4; qcheck_eval_agrees 8; qcheck_eval_agrees 10 ] );
      ( "equiv",
        [
          Alcotest.test_case "Table-1 levels proved" `Quick test_table1_proved;
          Alcotest.test_case "apply_staged matches apply" `Quick test_apply_staged_matches_apply;
          Alcotest.test_case "sabotaged scc refuted with replayable witness" `Quick
            test_sabotaged_scc_refuted;
        ] );
      ( "vet",
        [
          Alcotest.test_case "Table-1 artifacts clean" `Quick test_vet_benchmarks_clean;
          Alcotest.test_case "narrow synthesis refuted statically" `Slow
            test_vet_refutes_narrow_synthesis;
        ] );
      ( "lint",
        [
          Alcotest.test_case "truncated immediate flagged" `Quick test_lint_truncated_immediate;
          Alcotest.test_case "clean program silent" `Quick test_lint_truncated_immediate_silent;
          Alcotest.test_case "report schema deterministic" `Quick test_report_schema_deterministic;
        ] );
    ]
