(* Tests for the dataflow-analysis library and its consumers.

   Fixtures follow the case-study method (§5.2): seed a defect of a known
   class into a known-good pipeline — an out-of-range selector, a dead ALU,
   a write-only state slot — and assert the matching lint rule (and only an
   appropriate severity) fires and names the defect.  The dead_elim checks
   are the optimizer-side consumer: sizes must never grow, must strictly
   shrink somewhere on Table 1, and traces must be byte-identical at every
   optimization level. *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba

(* --- fixtures ---------------------------------------------------------------- *)

(* Smallest interesting pipeline: one stage, one container, one ALU of each
   kind.  Its single output mux has four arms: stateless output (0),
   stateful output (1), stateful new state (2), passthrough (3). *)
let small_desc ?(stateless = "stateless_mux") () =
  Dgen.generate
    (Dgen.config ~depth:1 ~width:1 ())
    ~stateful:(Atoms.find_exn "raw") ~stateless:(Atoms.find_exn stateless)

let mux0 = Names.output_mux ~stage:0 ~container:0

let seeded_mc ?(seed = 7) desc pairs =
  let mc = Fuzz.random_mc (Prng.create seed) desc in
  List.iter (fun (name, v) -> Machine_code.set mc name v) pairs;
  mc

let rules findings = List.map (fun f -> f.Lint.f_rule) findings

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let find_rule rule findings =
  List.filter (fun f -> f.Lint.f_rule = rule) findings

(* --- dataflow: intervals ------------------------------------------------------ *)

let test_intervals () =
  let open Dataflow in
  Alcotest.(check bool) "add" true (abs_binop 32 Ir.Add (Iv (1, 2)) (Iv (3, 4)) = Iv (4, 6));
  Alcotest.(check bool) "lt definite" true (abs_binop 32 Ir.Lt (Iv (0, 1)) (Iv (5, 5)) = Iv (1, 1));
  Alcotest.(check bool) "eq unknown" true (abs_binop 32 Ir.Eq (Iv (0, 3)) (Iv (2, 2)) = Iv (0, 1));
  Alcotest.(check bool) "join" true (join (Iv (1, 2)) (Iv (5, 6)) = Iv (1, 6));
  Alcotest.(check bool) "join top" true (join Top (Iv (1, 2)) = Top);
  (* subtraction can wrap below zero: must widen, not produce a lying range *)
  Alcotest.(check bool) "sub widens" true (abs_binop 8 Ir.Sub (Iv (0, 1)) (Iv (2, 2)) = full 8)

(* --- dataflow: liveness ------------------------------------------------------- *)

let test_liveness_passthrough () =
  let desc = small_desc () in
  (* passthrough: the container's incoming value; no ALU output is selected *)
  let mc = seeded_mc desc [ (mux0, Names.Select.passthrough ~width:1) ] in
  let lv = Dataflow.liveness ~mc desc in
  Alcotest.(check bool) "stateless dead" false lv.Dataflow.lv_stateless.(0).(0);
  Alcotest.(check bool) "stateful dead" false lv.Dataflow.lv_stateful.(0).(0)

let test_liveness_selected () =
  let desc = small_desc () in
  let mc = seeded_mc desc [ (mux0, Names.Select.stateful_output ~width:1 0) ] in
  let lv = Dataflow.liveness ~mc desc in
  Alcotest.(check bool) "stateless dead" false lv.Dataflow.lv_stateless.(0).(0);
  Alcotest.(check bool) "stateful live" true lv.Dataflow.lv_stateful.(0).(0)

let test_liveness_without_mc_is_conservative () =
  let desc = small_desc () in
  let lv = Dataflow.liveness desc in
  Alcotest.(check bool) "stateless live" true lv.Dataflow.lv_stateless.(0).(0);
  Alcotest.(check bool) "stateful live" true lv.Dataflow.lv_stateful.(0).(0)

(* --- dataflow: provenance ----------------------------------------------------- *)

let test_provenance_passthrough () =
  let desc = small_desc () in
  let mc = seeded_mc desc [ (mux0, Names.Select.passthrough ~width:1) ] in
  let pv = Dataflow.provenance ~mc desc in
  let nodes = Dataflow.slice pv (Dataflow.output_node pv 0) in
  Alcotest.(check bool) "reaches the input container" true
    (List.mem (Dataflow.Ncontainer (0, 0)) nodes);
  Alcotest.(check bool) "flows through no ALU" true
    (not (List.exists (function Dataflow.Nalu _ -> true | _ -> false) nodes))

let test_provenance_stateful () =
  let desc = small_desc () in
  let mc = seeded_mc desc [ (mux0, Names.Select.stateful_output ~width:1 0) ] in
  let pv = Dataflow.provenance ~mc desc in
  let nodes = Dataflow.slice pv (Dataflow.output_node pv 0) in
  let alu = Names.stateful_alu ~stage:0 ~alu:0 in
  Alcotest.(check bool) "names the stateful ALU" true (List.mem (Dataflow.Nalu alu) nodes);
  Alcotest.(check bool) "names its state slot" true (List.mem (Dataflow.Nstate (alu, 0)) nodes);
  Alcotest.(check bool) "names the mux control" true (List.mem (Dataflow.Ncontrol mux0) nodes)

(* --- lint: seeded defects ----------------------------------------------------- *)

let test_lint_out_of_range_selector () =
  let desc = small_desc () in
  (* mux selector domain is [0, 4) at width 1; 99 falls through to passthrough *)
  let mc = seeded_mc desc [ (mux0, 99) ] in
  let findings = Lint.check ~mc desc in
  Alcotest.(check bool) "is an error" true (Lint.has_errors findings);
  match find_rule "selector-out-of-range" findings with
  | [ f ] ->
    Alcotest.(check string) "names the pair" mux0 f.Lint.f_subject;
    Alcotest.(check bool) "severity error" true (f.Lint.f_severity = Lint.Error)
  | fs -> Alcotest.failf "expected one selector-out-of-range finding, got %d" (List.length fs)

let test_lint_dead_alu () =
  let desc = small_desc () in
  let mc = seeded_mc desc [ (mux0, Names.Select.passthrough ~width:1) ] in
  let findings = Lint.check ~mc desc in
  (* a dead ALU is a smell, not a broken program *)
  Alcotest.(check bool) "no errors" false (Lint.has_errors findings);
  let dead = find_rule "dead-alu" findings in
  let subjects = List.map (fun f -> f.Lint.f_subject) dead in
  Alcotest.(check bool) "names the stateless ALU" true
    (List.mem (Names.stateless_alu ~stage:0 ~alu:0) subjects);
  Alcotest.(check bool) "names the stateful ALU" true
    (List.mem (Names.stateful_alu ~stage:0 ~alu:0) subjects)

let test_lint_missing_pair () =
  let desc = small_desc () in
  let mc = seeded_mc desc [] in
  Machine_code.remove mc mux0;
  let findings = Lint.check ~mc desc in
  Alcotest.(check bool) "is an error" true (Lint.has_errors findings);
  Alcotest.(check bool) "missing-pair fires" true (List.mem "missing-pair" (rules findings))

let test_lint_unknown_pair () =
  let desc = small_desc () in
  let mc = seeded_mc desc [ ("totally_bogus_knob", 1) ] in
  let findings = Lint.check ~mc desc in
  match find_rule "unknown-pair" findings with
  | [ f ] ->
    Alcotest.(check string) "names the pair" "totally_bogus_knob" f.Lint.f_subject;
    Alcotest.(check bool) "warning only" true (f.Lint.f_severity = Lint.Warning)
  | fs -> Alcotest.failf "expected one unknown-pair finding, got %d" (List.length fs)

let test_lint_duplicate_pair () =
  let desc = small_desc () in
  let sel = Names.Select.passthrough ~width:1 in
  (* duplicates only survive in the raw pair list; the table keeps the last *)
  let pairs = [ (mux0, 99); (mux0, sel) ] in
  let mc = seeded_mc desc [ (mux0, sel) ] in
  let findings = Lint.check ~mc ~pairs desc in
  (match find_rule "duplicate-pair" findings with
  | [ f ] ->
    Alcotest.(check string) "names the pair" mux0 f.Lint.f_subject;
    Alcotest.(check bool) "severity error" true (f.Lint.f_severity = Lint.Error)
  | fs -> Alcotest.failf "expected one duplicate-pair finding, got %d" (List.length fs));
  (* a clean pair list stays silent *)
  let findings = Lint.check ~mc ~pairs:[ (mux0, sel) ] desc in
  Alcotest.(check (list string)) "no duplicate-pair on clean list" []
    (rules (find_rule "duplicate-pair" findings))

let test_lint_unreachable_branch () =
  (* stateless_full dispatches on its [opcode] hole; pinning it to the
     fallback value makes every guarded branch unreachable *)
  let desc = small_desc ~stateless:"stateless_full" () in
  let opcode =
    Names.slot ~alu_prefix:(Names.stateless_alu ~stage:0 ~alu:0) ~slot_name:"opcode"
  in
  let mc = seeded_mc desc [ (opcode, 5); (mux0, Names.Select.stateless_output ~width:1 0) ] in
  let findings = Lint.check ~mc desc in
  let unreachable = find_rule "unreachable-branch" findings in
  Alcotest.(check bool) "fires on the pinned dispatch" true (List.length unreachable >= 1);
  Alcotest.(check bool) "warning only" true
    (List.for_all (fun f -> f.Lint.f_severity = Lint.Warning) unreachable)

let write_only_src =
  {|
type : stateful
state variables : {state_0, state_1}
hole variables : {}
packet fields : {pkt_0}
state_0 = state_0 + pkt_0;
state_1 = pkt_0;
|}

let test_lint_write_only_state () =
  let stateful = Alu_dsl.Parser.parse ~name:"write_only" write_only_src in
  let desc =
    Dgen.generate
      (Dgen.config ~depth:1 ~width:1 ())
      ~stateful ~stateless:(Atoms.find_exn "stateless_mux")
  in
  let mc = seeded_mc desc [ (mux0, Names.Select.stateful_output ~width:1 0) ] in
  let findings = Lint.check ~mc desc in
  match find_rule "write-only-state" findings with
  | [ f ] ->
    Alcotest.(check string) "names the ALU" (Names.stateful_alu ~stage:0 ~alu:0) f.Lint.f_subject;
    Alcotest.(check bool) "mentions slot 1" true (contains ~sub:"slot 1" f.Lint.f_message)
  | fs -> Alcotest.failf "expected one write-only-state finding, got %d" (List.length fs)

let test_lint_helper_call_errors () =
  let desc = small_desc () in
  let bad_alu (a : Ir.alu) calls = { a with Ir.a_default_output = calls } in
  let retarget mk =
    let stages =
      Array.map
        (fun st ->
          { st with Ir.s_stateless = Array.map (fun a -> bad_alu a mk) st.Ir.s_stateless })
        desc.Ir.d_stages
    in
    { desc with Ir.d_stages = stages }
  in
  (* unknown helper *)
  let findings = Lint.check (retarget (Ir.Call ("no_such_helper", []))) in
  Alcotest.(check bool) "unknown-helper is an error" true (Lint.has_errors findings);
  Alcotest.(check bool) "unknown-helper fires" true (List.mem "unknown-helper" (rules findings));
  (* arity mismatch against a real helper *)
  let some_helper =
    Hashtbl.fold (fun name (h : Ir.helper) acc ->
        match acc with Some _ -> acc | None -> if h.Ir.h_params <> [] then Some name else acc)
      desc.Ir.d_helpers None
    |> Option.get
  in
  let findings = Lint.check (retarget (Ir.Call (some_helper, []))) in
  Alcotest.(check bool) "helper-arity is an error" true (Lint.has_errors findings);
  Alcotest.(check bool) "helper-arity fires" true (List.mem "helper-arity" (rules findings))

let unused_decl_src =
  {|
type : stateless
state variables : {}
hole variables : {spare_hole}
packet fields : {pkt_0, pkt_1}
return pkt_0;
|}

let test_lint_unused_decls () =
  let unused = Alu_dsl.Analysis.unused_decls (Alu_dsl.Parser.parse ~name:"lazy" unused_decl_src) in
  Alcotest.(check (list string)) "unused hole + field" [ "spare_hole"; "pkt_1" ] unused;
  let desc =
    Dgen.generate
      (Dgen.config ~depth:1 ~width:1 ())
      ~stateful:(Atoms.find_exn "raw")
      ~stateless:(Alu_dsl.Parser.parse ~name:"lazy" unused_decl_src)
  in
  let findings = Lint.check desc in
  Alcotest.(check bool) "unused-decl fires" true (List.mem "unused-decl" (rules findings))

(* emitted-module-size: the native emitter lowers [If] by continuation
   duplication, so a run of N sequential ifs costs ~2^N emitted nodes.  A
   16-if ALU blows past the threshold; every Table-1 program stays under it
   (their largest stage is ~5.7k nodes against a 50k threshold). *)
let test_lint_emitted_module_size () =
  let explosive_src =
    let b = Buffer.create 1024 in
    Buffer.add_string b
      "type : stateful\n\
       state variables : {state_0}\n\
       hole variables : {}\n\
       packet fields : {pkt_0, pkt_1}\n";
    for _ = 1 to 16 do
      Buffer.add_string b
        "if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {\n\
        \  state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());\n\
         }\n"
    done;
    Buffer.contents b
  in
  let desc =
    Dgen.generate
      (Dgen.config ~depth:1 ~width:1 ())
      ~stateful:(Alu_dsl.Parser.parse ~name:"explosive" explosive_src)
      ~stateless:(Atoms.find_exn "stateless_mux")
  in
  let findings = find_rule "emitted-module-size" (Lint.check desc) in
  (match findings with
  | [ f ] ->
    Alcotest.(check string) "names the stage" "stage 0" f.Lint.f_subject;
    Alcotest.(check bool) "warning only" true (f.Lint.f_severity = Lint.Warning)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs));
  (* sane pipelines stay silent *)
  Alcotest.(check int) "small pipeline is under threshold" 0
    (List.length (find_rule "emitted-module-size" (Lint.check (small_desc ()))));
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      let desc = compiled.Compiler.Codegen.c_desc in
      Alcotest.(check int)
        (bm.Spec.bm_name ^ " is under threshold")
        0
        (List.length (find_rule "emitted-module-size" (Lint.check desc))))
    Spec.all

(* --- lint: dRMT table-dependency DAG rules ------------------------------------ *)

module P4 = Druzhba_drmt.P4
module Dag = Druzhba_drmt.Dag
module Scheduler = Druzhba_drmt.Scheduler

let two_table_p4 () =
  P4.parse
    {|
header h { a : 8; b : 8; }
action set_a(v) { h.a = v; }
action set_b(v) { h.b = v; }
table ta { key : h.a; match : exact; actions : { set_a }; default : set_a 1; }
table tb { key : h.b; match : exact; actions : { set_b }; default : set_b 2; }
control { apply ta; apply tb; }
|}

let test_lint_p4_clean () =
  Alcotest.(check (list string)) "no findings" [] (rules (Lint.check_p4 (two_table_p4 ())))

let test_lint_p4_cyclic_dag () =
  (* [Dag.build] never produces a back edge, so seed one by hand: ta's match
     depends on its own action — unschedulable in any order *)
  let p = two_table_p4 () in
  let dag = Dag.build p in
  let back = { Dag.e_from = Dag.Action "ta"; e_to = Dag.Match "ta"; e_latency = 2 } in
  let dag = { dag with Dag.edges = back :: dag.Dag.edges } in
  match Lint.check_p4 ~dag p with
  | [ f ] ->
    Alcotest.(check string) "rule" "cyclic-dag" f.Lint.f_rule;
    Alcotest.(check bool) "error severity" true (f.Lint.f_severity = Lint.Error);
    (* the witness covers the cycle and everything stuck behind it: tb's
       nodes can never be scheduled either *)
    Alcotest.(check string) "names the stuck tables" "ta, tb" f.Lint.f_subject;
    Alcotest.(check bool) "message says cyclic" true (contains ~sub:"cyclic" f.Lint.f_message)
  | fs -> Alcotest.failf "expected one cyclic-dag finding, got %d" (List.length fs)

let test_lint_p4_unschedulable_dag () =
  (* 2 match nodes, P * match_capacity = 1: line rate is impossible and the
     finding names the table past the capacity horizon *)
  let p = two_table_p4 () in
  let cfg = Scheduler.config ~processors:1 ~match_capacity:1 ~action_capacity:32 () in
  (match Lint.check_p4 ~cfg p with
  | [ f ] ->
    Alcotest.(check string) "rule" "unschedulable-dag" f.Lint.f_rule;
    Alcotest.(check bool) "error severity" true (f.Lint.f_severity = Lint.Error);
    Alcotest.(check string) "names the table beyond the horizon" "tb" f.Lint.f_subject
  | fs -> Alcotest.failf "expected one unschedulable-dag finding, got %d" (List.length fs));
  (* the default config fits the program comfortably *)
  Alcotest.(check (list string)) "feasible by default" [] (rules (Lint.check_p4 p))

(* --- lint: clean baselines ---------------------------------------------------- *)

let test_lint_benchmarks_error_free () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      let findings =
        Lint.check ~mc:compiled.Compiler.Codegen.c_mc compiled.Compiler.Codegen.c_desc
      in
      Alcotest.(check bool) (bm.Spec.bm_name ^ " has no lint errors") false
        (Lint.has_errors findings))
    Spec.all

let test_lint_json_shape () =
  let desc = small_desc () in
  let mc = seeded_mc desc [ (mux0, 99) ] in
  let json = Lint.to_json (Lint.check ~mc desc) in
  Alcotest.(check bool) "mentions the rule" true
    (contains ~sub:{|"rule":"selector-out-of-range"|} json)

(* --- dead_elim ---------------------------------------------------------------- *)

let test_dead_elim_neutralizes () =
  let desc = small_desc () in
  let mc = seeded_mc desc [ (mux0, Names.Select.passthrough ~width:1) ] in
  let scc = Optimizer.scc_propagate ~mc desc in
  let pruned = Optimizer.dead_elim ~mc scc in
  Alcotest.(check bool) "strictly smaller" true (Ir.size pruned < Ir.size scc);
  let inputs = Traffic.phvs (Traffic.create ~seed:3 ~width:1 ~bits:32) 100 in
  let a = Engine.run scc ~mc ~inputs and b = Engine.run pruned ~mc ~inputs in
  Alcotest.(check bool) "outputs agree" true (a.Trace.outputs = b.Trace.outputs);
  (* default keeps dead stateful updates: final state is observable *)
  Alcotest.(check bool) "state agrees" true (a.Trace.final_state = b.Trace.final_state)

let test_dead_elim_benchmarks () =
  let shrunk = ref [] in
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      let mc = compiled.Compiler.Codegen.c_mc in
      let desc = compiled.Compiler.Codegen.c_desc in
      let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
      let scc = Optimizer.scc_propagate ~mc desc in
      let pruned = Optimizer.dead_elim ~mc scc in
      Alcotest.(check bool) (bm.Spec.bm_name ^ ": never grows") true
        (Ir.size pruned <= Ir.size scc);
      if Ir.size pruned < Ir.size scc then shrunk := bm.Spec.bm_name :: !shrunk;
      let inputs =
        Traffic.phvs (Traffic.create ~seed:0xA11 ~width:bm.Spec.bm_width ~bits:32) 200
      in
      let base = Engine.run ~init desc ~mc ~inputs in
      List.iter
        (fun level ->
          let t = Engine.run ~init (Optimizer.apply ~level ~mc desc) ~mc ~inputs in
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %s: outputs agree" bm.Spec.bm_name (Optimizer.level_name level))
            true
            (t.Trace.outputs = base.Trace.outputs);
          Alcotest.(check bool)
            (Printf.sprintf "%s @ %s: final state agrees" bm.Spec.bm_name
               (Optimizer.level_name level))
            true
            (t.Trace.final_state = base.Trace.final_state))
        [ Optimizer.Unoptimized; Optimizer.Scc; Optimizer.Scc_inline ])
    Spec.all;
  Alcotest.(check bool) "dead_elim shrinks at least one Table-1 program" true (!shrunk <> [])

(* --- triage ------------------------------------------------------------------- *)

let test_triage_slices () =
  let desc = small_desc () in
  let mc = seeded_mc desc [ (mux0, Names.Select.stateful_output ~width:1 0) ] in
  let t = Verify.triage ~desc ~mc (`Output 0) in
  Alcotest.(check (list string)) "one ALU implicated"
    [ Names.stateful_alu ~stage:0 ~alu:0 ]
    t.Verify.tr_alus;
  Alcotest.(check bool) "mux control implicated" true (List.mem mux0 t.Verify.tr_controls)

let () =
  Alcotest.run "analysis"
    [
      ( "dataflow",
        [
          Alcotest.test_case "interval arithmetic" `Quick test_intervals;
          Alcotest.test_case "liveness: passthrough kills both ALUs" `Quick
            test_liveness_passthrough;
          Alcotest.test_case "liveness: selected ALU lives" `Quick test_liveness_selected;
          Alcotest.test_case "liveness: no mc means all live" `Quick
            test_liveness_without_mc_is_conservative;
          Alcotest.test_case "provenance: passthrough slice" `Quick test_provenance_passthrough;
          Alcotest.test_case "provenance: stateful slice" `Quick test_provenance_stateful;
        ] );
      ( "lint",
        [
          Alcotest.test_case "out-of-range selector" `Quick test_lint_out_of_range_selector;
          Alcotest.test_case "dead ALU" `Quick test_lint_dead_alu;
          Alcotest.test_case "missing pair" `Quick test_lint_missing_pair;
          Alcotest.test_case "unknown pair" `Quick test_lint_unknown_pair;
          Alcotest.test_case "duplicate pair" `Quick test_lint_duplicate_pair;
          Alcotest.test_case "unreachable branch" `Quick test_lint_unreachable_branch;
          Alcotest.test_case "write-only state slot" `Quick test_lint_write_only_state;
          Alcotest.test_case "helper-call errors" `Quick test_lint_helper_call_errors;
          Alcotest.test_case "unused declarations" `Quick test_lint_unused_decls;
          Alcotest.test_case "emitted-module-size" `Quick test_lint_emitted_module_size;
          Alcotest.test_case "p4: clean program" `Quick test_lint_p4_clean;
          Alcotest.test_case "p4: cyclic dag" `Quick test_lint_p4_cyclic_dag;
          Alcotest.test_case "p4: unschedulable dag" `Quick test_lint_p4_unschedulable_dag;
          Alcotest.test_case "Table-1 benchmarks are error-free" `Slow
            test_lint_benchmarks_error_free;
          Alcotest.test_case "json output" `Quick test_lint_json_shape;
        ] );
      ( "dead_elim",
        [
          Alcotest.test_case "neutralizes dead ALUs" `Quick test_dead_elim_neutralizes;
          Alcotest.test_case "Table-1 sizes and traces" `Slow test_dead_elim_benchmarks;
        ] );
      ( "triage",
        [ Alcotest.test_case "output slice" `Quick test_triage_slices ] );
    ]
