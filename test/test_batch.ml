(* Cross-path equivalence property for the batched tick engine.

   The contract behind every batched entry point ({!Substrate.run_batch_into}
   and the drivers underneath it) is bit-identity with the sequential tick
   loop: same output rows, same final state, same budget accounting, same
   {!Budget.Exhausted} behaviour — under any batch size, fault overlay, and
   mid-run fuel exhaustion.  The property below drives random programs
   (depth x width x atom pool, random machine code) through both paths on
   both RMT substrates at two optimization levels and requires every
   observable to match exactly.

   This is the test the oracle and campaign lean on when they route all
   their runs through the batched path: if it holds, batching is purely a
   throughput change. *)

module Prng = Druzhba_util.Prng
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Compile = Druzhba_pipeline.Compile
module Optimizer = Druzhba_optimizer.Optimizer
module Atoms = Druzhba_atoms.Atoms
module Fuzz = Druzhba_fuzz.Fuzz
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace
module Budget = Druzhba_dsim.Budget
module Faults = Druzhba_dsim.Faults
module Substrate = Druzhba_dsim.Substrate

let stateful_pool = [| "raw"; "sub"; "pred_raw"; "if_else_raw"; "nested_ifs"; "pair" |]
let stateless_pool = [| "stateless_full"; "stateless_arith"; "stateless_rel"; "stateless_mux" |]
let batch_pool = [| 1; 2; 3; 5; 8; 64 |]

(* Everything the sequential and batched paths must agree on. *)
type observation = {
  ob_raised : bool; (* Budget.Exhausted escaped *)
  ob_fuel : int option; (* Budget.remaining afterwards *)
  ob_rows : int array list; (* output trace rows, in order *)
  ob_state : (string * int array) list;
}

let observe ~how ~budget_limit ~faults ~width ~inputs (packed : Substrate.packed) : observation
    =
  let buf = Trace.Buffer.create ~width ~capacity:(max 1 (List.length inputs)) in
  let budget = Option.map Budget.ticks budget_limit in
  let ob_raised =
    match
      match how with
      | `Seq -> Substrate.run_into ?budget ?faults packed ~inputs buf
      | `Batch b -> Substrate.run_batch_into ?budget ?faults ~batch:b packed ~inputs buf
    with
    | () -> false
    | exception Budget.Exhausted -> true
  in
  {
    ob_raised;
    ob_fuel = Option.map Budget.remaining budget;
    ob_rows =
      List.init (Trace.Buffer.length buf) (fun i -> Array.copy (Trace.Buffer.row buf i));
    ob_state = Substrate.current_state packed;
  }

let qcheck_batched_equals_sequential =
  QCheck.Test.make ~name:"run_batch_into = run_into (traces, state, fuel, Exhausted)" ~count:80
    QCheck.(int_range 0 1_000_000)
    (fun case_seed ->
      let prng = Prng.create (0xBA7C4 lxor case_seed) in
      let depth = 1 + Prng.int prng 3 in
      let width = 1 + Prng.int prng 3 in
      let bits = [| 8; 16; 32 |].(Prng.int prng 3) in
      let stateful = stateful_pool.(Prng.int prng (Array.length stateful_pool)) in
      let stateless = stateless_pool.(Prng.int prng (Array.length stateless_pool)) in
      let desc =
        Dgen.generate
          (Dgen.config ~depth ~width ~bits ())
          ~stateful:(Atoms.find_exn stateful) ~stateless:(Atoms.find_exn stateless)
      in
      let mc = Fuzz.random_mc prng desc in
      let n = Prng.int prng 21 in
      let inputs = Traffic.phvs (Traffic.create ~seed:(Prng.bits prng 30) ~width ~bits) n in
      let batch = batch_pool.(Prng.int prng (Array.length batch_pool)) in
      let faults =
        if Prng.int prng 2 = 0 then None
        else
          Some
            (Faults.generate ~seed:(Prng.bits prng 30) ~desc ~n_inputs:n
               ~count:(1 + Prng.int prng 4) ())
      in
      (* [Some small] exhausts the budget mid-run often (including mid-batch
         for batch > 1); [None] is the unbudgeted path *)
      let budget_limit =
        match Prng.int prng 3 with 0 -> None | _ -> Some (1 + Prng.int prng (n + depth + 2))
      in
      List.for_all
        (fun level ->
          let d = Optimizer.apply ~level ~mc desc in
          List.for_all
            (fun (label, fresh_packed) ->
              let seq =
                observe ~how:`Seq ~budget_limit ~faults ~width ~inputs (fresh_packed ())
              in
              let bat =
                observe ~how:(`Batch batch) ~budget_limit ~faults ~width ~inputs
                  (fresh_packed ())
              in
              if seq = bat then true
              else
                QCheck.Test.fail_reportf
                  "%s/%s diverges at case %d (batch %d, n %d, faults %s, fuel %s): seq \
                   {raised %b, fuel %s, %d rows} vs batch {raised %b, fuel %s, %d rows}"
                  label (Optimizer.level_name level) case_seed batch n
                  (match faults with Some f -> Fmt.str "%a" Faults.pp f | None -> "none")
                  (match budget_limit with Some l -> string_of_int l | None -> "inf")
                  seq.ob_raised
                  (match seq.ob_fuel with Some f -> string_of_int f | None -> "-")
                  (List.length seq.ob_rows) bat.ob_raised
                  (match bat.ob_fuel with Some f -> string_of_int f | None -> "-")
                  (List.length bat.ob_rows))
            [
              ("engine", fun () -> Substrate.of_engine d ~mc);
              ("compiled", fun () -> Substrate.of_compiled (Compile.compile d ~mc));
            ])
        [ Optimizer.Unoptimized; Optimizer.Scc_inline ])

let () =
  Alcotest.run "batch"
    [
      ( "cross-path equivalence",
        [ QCheck_alcotest.to_alcotest qcheck_batched_equals_sequential ] );
    ]
