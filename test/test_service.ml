(* Tests for the fuzzing-farm service stack: the HTTP/1.1 codec and
   submission schema, the supervisor's backoff and exit-code branching, the
   hardened checkpoint durability layer, journal persistence — and the
   headline fault-injection scenarios end to end against a real `druzhba
   serve` daemon driving real worker processes: a worker kill -9'ed mid-job
   resumes from its checkpoint to a byte-identical report, a daemon kill
   -9'ed mid-job replays its journal and finishes the work, and a poison
   job is quarantined without collateral damage. *)

module Report = Druzhba_campaign.Report
module Campaign = Druzhba_campaign.Campaign
module Checkpoint = Druzhba_campaign.Checkpoint
module Exit_code = Druzhba_campaign.Exit_code
module Protocol = Druzhba_service.Protocol
module Jobstore = Druzhba_service.Jobstore
module Supervisor = Druzhba_service.Supervisor

(* The real binary, as built by dune (declared as a test dep).  Under
   `dune runtest` the cwd is _build/default/test; under `dune exec` it is
   the project root.  The daemon needs the path absolute because workers
   chdir into their job directories. *)
let druzhba_exe =
  let candidates = [ "../bin/main.exe"; "_build/default/bin/main.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some rel -> Filename.concat (Sys.getcwd ()) rel
  | None -> failwith "druzhba binary not found; build bin/main.exe first"

let contains ~affix s =
  let nl = String.length affix and hl = String.length s in
  let rec at i = i + nl <= hl && (String.sub s i nl = affix || at (i + 1)) in
  at 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let devnull flags = Unix.openfile "/dev/null" flags 0

(* Spawn the CLI, wait, return the process status. *)
let run_cli ?dir args : Unix.process_status =
  let null_in = devnull [ Unix.O_RDONLY ] and null_out = devnull [ Unix.O_WRONLY ] in
  let saved = Sys.getcwd () in
  (match dir with Some d -> Sys.chdir d | None -> ());
  let pid =
    Unix.create_process druzhba_exe
      (Array.of_list ("druzhba" :: args))
      null_in null_out null_out
  in
  (match dir with Some _ -> Sys.chdir saved | None -> ());
  Unix.close null_in;
  Unix.close null_out;
  snd (Unix.waitpid [] pid)

let spawn_cli ?dir args : int =
  let null_in = devnull [ Unix.O_RDONLY ] and null_out = devnull [ Unix.O_WRONLY ] in
  let saved = Sys.getcwd () in
  (match dir with Some d -> Sys.chdir d | None -> ());
  let pid =
    Unix.create_process druzhba_exe
      (Array.of_list ("druzhba" :: args))
      null_in null_out null_out
  in
  (match dir with Some _ -> Sys.chdir saved | None -> ());
  Unix.close null_in;
  Unix.close null_out;
  pid

let poll ?(timeout = 60.) ?(every = 0.05) msg f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match f () with
    | Some v -> v
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.fail ("timed out waiting for " ^ msg);
      Unix.sleepf every;
      go ()
  in
  go ()

(* --- Protocol: HTTP request parsing ------------------------------------------ *)

let test_parse_request_complete () =
  let raw = "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Thing: 1\r\n\r\n" in
  match Protocol.parse_request raw with
  | `Ok (rq, used) ->
    Alcotest.(check string) "method" "GET" rq.Protocol.rq_method;
    Alcotest.(check string) "path" "/healthz" rq.Protocol.rq_path;
    Alcotest.(check int) "consumed" (String.length raw) used;
    Alcotest.(check (option string)) "header" (Some "1") (Protocol.header "x-thing" rq)
  | _ -> Alcotest.fail "expected `Ok"

let test_parse_request_body () =
  let body = "{\"kind\":\"campaign\"}" in
  let raw =
    Printf.sprintf "POST /jobs HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s" (String.length body)
      body
  in
  (match Protocol.parse_request raw with
  | `Ok (rq, _) -> Alcotest.(check string) "body" body rq.Protocol.rq_body
  | _ -> Alcotest.fail "expected `Ok");
  (* any strict prefix is incomplete, never an error *)
  for cut = 0 to String.length raw - 1 do
    match Protocol.parse_request (String.sub raw 0 cut) with
    | `Incomplete -> ()
    | `Ok _ -> Alcotest.fail (Printf.sprintf "prefix of %d bytes parsed as complete" cut)
    | `Bad e -> Alcotest.fail (Printf.sprintf "prefix of %d bytes rejected: %s" cut e)
  done

let test_parse_request_bad () =
  (match Protocol.parse_request "NONSENSE\r\n\r\n" with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "malformed request line accepted");
  match Protocol.parse_request "POST / HTTP/1.1\r\nContent-Length: -3\r\n\r\n" with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "negative Content-Length accepted"

let test_dechunk_roundtrip () =
  let framed = Protocol.chunk "hello " ^ Protocol.chunk "world\n" ^ Protocol.chunk_end in
  Alcotest.(check string) "reassembled" "hello world\n" (Protocol.dechunk framed);
  (* a torn tail (stream cut mid-chunk) keeps the complete prefix *)
  let torn = Protocol.chunk "keep" ^ "1f\r\ncut-off-mid" in
  Alcotest.(check string) "torn tail dropped" "keep" (Protocol.dechunk torn)

(* --- Protocol: submission schema --------------------------------------------- *)

let parse_sub src =
  match Report.parse src with
  | Error e -> Alcotest.fail ("bad test JSON: " ^ e)
  | Ok j -> Protocol.parse_submission j

let test_submission_campaign () =
  match
    parse_sub
      {|{"kind":"campaign","trials":50,"seed":9,"phvs":25,"checkpoint_every":10,"shrink":false}|}
  with
  | Error e -> Alcotest.fail e
  | Ok sb ->
    Alcotest.(check int) "trials" 50 sb.Protocol.sb_trials;
    let args = String.concat " " sb.Protocol.sb_args in
    Alcotest.(check bool) "has trials flag" true
      (contains ~affix:"--trials 50" args);
    Alcotest.(check bool) "has seed" true (contains ~affix:"--seed 9" args);
    Alcotest.(check bool) "has no-shrink" true (contains ~affix:"--no-shrink" args)

let test_submission_rejects () =
  let bad src frag =
    match parse_sub src with
    | Ok _ -> Alcotest.fail ("accepted: " ^ src)
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %s" frag)
        true
        (contains ~affix:frag e)
  in
  bad {|{"kind":"campaign","trails":3}|} "unknown field";
  bad {|{"kind":"campaign","trials":0}|} "positive";
  bad {|{"kind":"campaign","trials":"many"}|} "integer";
  bad {|{"kind":"campaign","substrate":"tofino"}|} "substrate";
  bad {|{"kind":"picnic"}|} "kind";
  bad {|[1,2,3]|} "object";
  bad {|{"kind":"campaign","files":{"../evil":"x"}}|} "unsafe file name";
  bad {|{"kind":"directed"}|} "witnesses";
  bad {|{"kind":"directed","witnesses":"druzhba-witnesses/1","files":{"witnesses.txt":"x"}}|}
    "witnesses.txt"

let test_submission_directed () =
  match parse_sub {|{"kind":"directed","witnesses":"druzhba-witnesses/1\ntrial a b 1,2","phvs":5}|} with
  | Error e -> Alcotest.fail e
  | Ok sb ->
    Alcotest.(check bool) "witness file materialized" true
      (List.mem_assoc "witnesses.txt" sb.Protocol.sb_files);
    Alcotest.(check bool) "directed flag" true (List.mem "--directed" sb.Protocol.sb_args)

(* --- Supervisor: backoff ------------------------------------------------------ *)

let test_backoff () =
  let d attempt = Supervisor.backoff_delay ~base:0.5 ~cap:5.0 ~attempt in
  Alcotest.(check (float 1e-9)) "first" 0.5 (d 1);
  Alcotest.(check (float 1e-9)) "second" 1.0 (d 2);
  Alcotest.(check (float 1e-9)) "third" 2.0 (d 3);
  Alcotest.(check (float 1e-9)) "capped" 5.0 (d 7);
  Alcotest.(check (float 1e-9)) "zeroth" 0.0 (d 0)

(* --- Exit codes: the worker contract ------------------------------------------ *)

let test_exit_code_mapping () =
  let r = Campaign.run (Campaign.config ~trials:4 ~phvs:10 ()) in
  Alcotest.(check int) "clean campaign" Exit_code.ok (Exit_code.of_report r);
  Alcotest.(check int) "findings" Exit_code.findings
    (Exit_code.of_report { r with Campaign.r_divergent = 1 });
  Alcotest.(check int) "crashes are findings" Exit_code.findings
    (Exit_code.of_report { r with Campaign.r_crashed = 1 });
  Alcotest.(check int) "fuel" Exit_code.fuel_exhausted
    (Exit_code.of_report { r with Campaign.r_timeout = 2 });
  Alcotest.(check int) "breaker beats findings" Exit_code.breaker_tripped
    (Exit_code.of_report { r with Campaign.r_divergent = 1; r_stopped_after = Some 2 });
  Alcotest.(check int) "findings beat fuel" Exit_code.findings
    (Exit_code.of_report { r with Campaign.r_divergent = 1; r_timeout = 1 })

let test_exit_code_classify () =
  List.iter
    (fun (code, verdict) ->
      Alcotest.(check bool)
        (Printf.sprintf "code %d verdict" code)
        verdict
        (Exit_code.is_verdict (Exit_code.classify code)))
    [ (0, true); (1, true); (2, false); (3, true); (4, true); (5, false); (77, false) ];
  Alcotest.(check string) "describe roundtrip" "interrupted"
    (Exit_code.describe (Exit_code.classify Exit_code.interrupted))

(* --- Checkpoint durability ---------------------------------------------------- *)

let test_checkpoint_torn_write () =
  let tmp = Filename.temp_file "druzhba-torn" ".ck" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      (match
         Campaign.run_resumable ~checkpoint:tmp ~stop_after:4
           (Campaign.config ~trials:8 ~phvs:5 ~checkpoint_every:2 ())
       with
      | None -> ()
      | Some _ -> Alcotest.fail "stop_after did not stop");
      (match Checkpoint.load tmp with
      | Ok ck ->
        Alcotest.(check bool) "progress recorded" true (Checkpoint.completed_prefix ck >= 2)
      | Error e -> Alcotest.fail ("intact checkpoint rejected: " ^ e));
      (* tear it: a partial write must be rejected cleanly, not crash or
         silently resume from garbage *)
      let whole = read_file tmp in
      let torn = String.sub whole 0 (String.length whole / 2) in
      let oc = open_out_bin tmp in
      output_string oc torn;
      close_out oc;
      match Checkpoint.load tmp with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "torn checkpoint accepted")

let test_atomic_write_leaves_no_tmp () =
  let dir = fresh_dir "druzhba-atomic" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let path = Filename.concat dir "out.json" in
      Checkpoint.atomic_write_string path "payload";
      Checkpoint.atomic_write_string path "payload2";
      Alcotest.(check string) "last write wins" "payload2" (read_file path);
      Alcotest.(check (list string)) "no tmp droppings" [ "out.json" ]
        (Array.to_list (Sys.readdir dir)))

(* --- Jobstore: journal persistence -------------------------------------------- *)

let submission_of src =
  match parse_sub src with Ok sb -> sb | Error e -> Alcotest.fail e

let test_journal_roundtrip () =
  let root = fresh_dir "druzhba-journal" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let store, orphans =
        match Jobstore.load root with Ok v -> v | Error e -> Alcotest.fail e
      in
      Alcotest.(check (list int)) "fresh farm" [] orphans;
      let j1 = Jobstore.submit store (submission_of {|{"kind":"campaign","trials":7}|}) in
      let j2 = Jobstore.submit store (submission_of {|{"kind":"campaign","trials":9,"seed":3}|}) in
      (* simulate a worker mid-flight when the daemon dies *)
      j1.Jobstore.j_state <- Jobstore.Running;
      j1.Jobstore.j_attempts <- 2;
      j1.Jobstore.j_pid <- Some 424242;
      j2.Jobstore.j_state <- Jobstore.Done;
      j2.Jobstore.j_verdict <- Some "clean";
      Jobstore.save store;
      let store', orphans' =
        match Jobstore.load root with Ok v -> v | Error e -> Alcotest.fail e
      in
      Alcotest.(check (list int)) "orphan reported" [ 424242 ] orphans';
      let j1' = Option.get (Jobstore.find store' j1.Jobstore.j_id) in
      let j2' = Option.get (Jobstore.find store' j2.Jobstore.j_id) in
      Alcotest.(check bool) "running replays as queued" true
        (j1'.Jobstore.j_state = Jobstore.Queued);
      Alcotest.(check int) "attempts preserved across replay" 2 j1'.Jobstore.j_attempts;
      Alcotest.(check bool) "done stays done" true (j2'.Jobstore.j_state = Jobstore.Done);
      Alcotest.(check (option string)) "verdict survives" (Some "clean") j2'.Jobstore.j_verdict;
      Alcotest.(check int) "seq continues" 2 store'.Jobstore.next_seq;
      (* a corrupt journal is an error, never silent job loss *)
      let oc = open_out_bin (Filename.concat root "journal.json") in
      output_string oc "{\"format\":\"druzhba-service-journal\",\"version\":1,\"jobs\":";
      close_out oc;
      match Jobstore.load root with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "corrupt journal accepted")

let divergent_trial ~config ~pair =
  Report.Obj
    [
      ("index", Report.Int 3);
      ("substrate", Report.Str "rmt");
      ("depth", Report.Int 2);
      ("width", Report.Int 2);
      ( "outcome",
        Report.Obj
          [
            ("class", Report.Str "backend_divergence");
            ("config", Report.Str config);
            ("kind", Report.Str "output");
            ("where", Report.Obj [ ("phv", Report.Int 0); ("container", Report.Int 1) ]);
          ] );
      ( "shrunk",
        Report.Obj [ ("essential_pairs", Report.List [ Report.Str pair ]) ] );
    ]

let test_findings_dedup () =
  let root = fresh_dir "druzhba-findings" in
  Fun.protect
    ~finally:(fun () -> rm_rf root)
    (fun () ->
      let fd = Jobstore.load_findings root in
      let report keys =
        Report.Obj [ ("results", Report.List keys) ]
      in
      let a = divergent_trial ~config:"unoptimized,scc" ~pair:"alu_2_1_imm" in
      let fresh1 = Jobstore.fold_report root fd ~job_id:"j0000" (report [ a; a ]) in
      Alcotest.(check int) "same slice collapses" 1 fresh1;
      (* same provenance slice from a different job: already known *)
      let fresh2 = Jobstore.fold_report root fd ~job_id:"j0001" (report [ a ]) in
      Alcotest.(check int) "replay is a no-op" 0 fresh2;
      let b = divergent_trial ~config:"unoptimized,scc_inline" ~pair:"alu_2_1_imm" in
      let fresh3 = Jobstore.fold_report root fd ~job_id:"j0002" (report [ b ]) in
      Alcotest.(check int) "new slice counts" 1 fresh3;
      (* the store is durable *)
      let fd' = Jobstore.load_findings root in
      Alcotest.(check int) "persisted" 2 (List.length fd'.Jobstore.fd_keys))

(* --- Satellite 1: graceful SIGTERM on `druzhba campaign` ----------------------- *)

let campaign_args ~trials ~seed ~ck ~report =
  [
    "campaign"; "--trials"; string_of_int trials; "--seed"; string_of_int seed; "--phvs"; "20";
    "--checkpoint-every"; "10"; "--jobs"; "1"; "--checkpoint"; ck; "--report"; report;
  ]

let test_campaign_sigterm_graceful () =
  let dir = fresh_dir "druzhba-sigterm" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ck = Filename.concat dir "ck" and out = Filename.concat dir "out.json" in
      let ref_out = Filename.concat dir "ref.json" in
      let pid = spawn_cli (campaign_args ~trials:3000 ~seed:5 ~ck ~report:out) in
      (* let it reach at least one block boundary, then interrupt *)
      ignore (poll ~timeout:30. "first checkpoint" (fun () ->
          if Sys.file_exists ck then Some () else None));
      Unix.kill pid Sys.sigterm;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED code ->
        Alcotest.(check int) "distinct interrupted exit code" Exit_code.interrupted code
      | _ -> Alcotest.fail "campaign did not exit cleanly on SIGTERM");
      Alcotest.(check bool) "no report from interrupted run" false (Sys.file_exists out);
      let ck_data =
        match Checkpoint.load ck with
        | Ok c -> c
        | Error e -> Alcotest.fail ("final checkpoint unreadable: " ^ e)
      in
      let completed = Checkpoint.completed_prefix ck_data in
      Alcotest.(check bool) "cut at a block boundary, work saved" true
        (completed > 0 && completed < 3000 && completed mod 10 = 0);
      (* resume to completion; the result must equal an uninterrupted run *)
      (match run_cli (campaign_args ~trials:3000 ~seed:5 ~ck ~report:out @ [ "--resume" ]) with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.fail (Printf.sprintf "resume failed: %s" (Supervisor.describe_status s)));
      (match
         run_cli (campaign_args ~trials:3000 ~seed:5 ~ck:(ck ^ ".ref") ~report:ref_out)
       with
      | Unix.WEXITED 0 -> ()
      | s -> Alcotest.fail (Printf.sprintf "reference failed: %s" (Supervisor.describe_status s)));
      Alcotest.(check string) "byte-identical to uninterrupted run" (read_file ref_out)
        (read_file out))

(* --- The daemon end to end ----------------------------------------------------

   One farm, one daemon (then a second after kill -9), real workers.  The
   jobs are small enough to finish in seconds but big enough to leave a
   window for fault injection at a checkpoint boundary. *)

type daemon = { d_pid : int; d_root : string; d_port : int }

let start_daemon ?(workers = 2) ?(args = []) root : daemon =
  (* each daemon writes its port on bind; remove a stale one first *)
  (try Sys.remove (Filename.concat root "port") with Sys_error _ -> ());
  let pid =
    spawn_cli
      ([ "serve"; "--root"; root; "--workers"; string_of_int workers; "--retry-budget"; "3";
         "--backoff-base"; "0.05"; "--backoff-cap"; "0.2"; "--heartbeat-timeout"; "60" ]
      @ args)
  in
  let port =
    poll ~timeout:30. "daemon port file" (fun () ->
        match int_of_string_opt (String.trim (read_file (Filename.concat root "port"))) with
        | p -> p
        | exception _ -> None)
  in
  { d_pid = pid; d_root = root; d_port = port }

let http d ~meth ~path ?body () =
  match Protocol.http ~port:d.d_port ~meth ~path ?body () with
  | Ok (status, body) -> (status, body)
  | Error e -> Alcotest.fail (Printf.sprintf "%s %s: %s" meth path e)

let json_of body =
  match Report.parse body with
  | Ok j -> j
  | Error e -> Alcotest.fail (Printf.sprintf "bad JSON body %S: %s" body e)

let jstr j key =
  match Option.bind (Report.member key j) Report.to_str with
  | Some s -> s
  | None -> Alcotest.fail (Printf.sprintf "missing string field %s in %s" key (Report.to_string j))

let submit d spec =
  let status, body = http d ~meth:"POST" ~path:"/jobs" ~body:spec () in
  Alcotest.(check int) ("201 for " ^ spec) 201 status;
  jstr (json_of body) "id"

let wait_state ?(timeout = 120.) d id want =
  poll ~timeout ("job " ^ id ^ " to be " ^ want) (fun () ->
      match http d ~meth:"GET" ~path:("/jobs/" ^ id) () with
      | 200, body ->
        let j = json_of body in
        if jstr j "state" = want then Some j else None
      | _ -> None)

let reference_report ~dir ~trials ~seed =
  let out = Filename.concat dir (Printf.sprintf "ref-%d-%d.json" trials seed) in
  (match
     run_cli
       [
         "campaign"; "--trials"; string_of_int trials; "--seed"; string_of_int seed; "--phvs";
         "20"; "--checkpoint-every"; "10"; "--jobs"; "1"; "--report"; out;
       ]
   with
  | Unix.WEXITED 0 -> ()
  | s -> Alcotest.fail ("reference run failed: " ^ Supervisor.describe_status s));
  read_file out

let campaign_spec ?(extra = "") ~trials ~seed () =
  Printf.sprintf
    {|{"kind":"campaign","trials":%d,"seed":%d,"phvs":20,"checkpoint_every":10%s}|} trials seed
    extra

let test_daemon_end_to_end () =
  let root = fresh_dir "druzhba-farm" in
  let refs = fresh_dir "druzhba-refs" in
  let daemon = ref (start_daemon root) in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill !daemon.d_pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
      (try ignore (Unix.waitpid [] !daemon.d_pid) with Unix.Unix_error (_, _, _) -> ());
      rm_rf root;
      rm_rf refs)
    (fun () ->
      let d = !daemon in
      (* -- basics ------------------------------------------------------- *)
      let status, body = http d ~meth:"GET" ~path:"/healthz" () in
      Alcotest.(check int) "healthz" 200 status;
      Alcotest.(check (option bool)) "healthz ok" (Some true)
        (Option.bind (Report.member "ok" (json_of body)) Report.to_bool);
      let status, _ = http d ~meth:"GET" ~path:"/jobs/j9999" () in
      Alcotest.(check int) "unknown job is 404" 404 status;
      let status, _ = http d ~meth:"POST" ~path:"/jobs" ~body:"{not json" () in
      Alcotest.(check int) "unparseable body is 400" 400 status;
      let status, body =
        http d ~meth:"POST" ~path:"/jobs" ~body:{|{"kind":"campaign","trails":3}|} ()
      in
      Alcotest.(check int) "typo is 400" 400 status;
      Alcotest.(check bool) "typo named" true
        (contains ~affix:"trails" body);

      (* -- two jobs; one worker kill -9'ed mid-job (armed chaos) --------- *)
      let healthy = submit d (campaign_spec ~trials:60 ~seed:7 ()) in
      let chaotic =
        submit d
          (campaign_spec ~trials:60 ~seed:7
             ~extra:
               {|,"chaos_kill_after":25,"chaos_kill_file":"chaos.arm","files":{"chaos.arm":"1"}|}
             ())
      in
      let healthy_j = wait_state d healthy "done" in
      let chaotic_j = wait_state d chaotic "done" in
      Alcotest.(check string) "healthy verdict" "clean" (jstr healthy_j "verdict");
      Alcotest.(check string) "chaotic verdict" "clean" (jstr chaotic_j "verdict");
      Alcotest.(check (option int)) "worker was killed once and restarted" (Some 2)
        (Option.bind (Report.member "attempts" chaotic_j) Report.to_int);
      let expected = reference_report ~dir:refs ~trials:60 ~seed:7 in
      let _, healthy_report = http d ~meth:"GET" ~path:("/jobs/" ^ healthy ^ "/report") () in
      let _, chaotic_report = http d ~meth:"GET" ~path:("/jobs/" ^ chaotic ^ "/report") () in
      Alcotest.(check string) "healthy report byte-identical to CLI" expected healthy_report;
      Alcotest.(check string) "killed+resumed report byte-identical" expected chaotic_report;

      (* -- poison job: quarantined after the retry budget; a bystander
            submitted alongside is untouched ------------------------------ *)
      let poison =
        submit d (campaign_spec ~trials:60 ~seed:7 ~extra:{|,"chaos_kill_after":25|} ())
      in
      let bystander = submit d (campaign_spec ~trials:40 ~seed:11 ()) in
      let poison_j = wait_state d poison "quarantined" in
      Alcotest.(check (option int)) "budget consumed" (Some 3)
        (Option.bind (Report.member "attempts" poison_j) Report.to_int);
      Alcotest.(check bool) "reason names the budget" true
        (contains ~affix:"retry budget" (jstr poison_j "reason"));
      let bystander_j = wait_state d bystander "done" in
      Alcotest.(check string) "bystander unaffected" "clean" (jstr bystander_j "verdict");

      (* -- events stream ------------------------------------------------- *)
      let _, events = http d ~meth:"GET" ~path:("/jobs/" ^ chaotic ^ "/events") () in
      Alcotest.(check bool) "events record the spawn" true
        (contains ~affix:{|"event":"spawn"|} events);
      Alcotest.(check bool) "events record the kill" true
        (contains ~affix:"SIGKILL" events);
      Alcotest.(check bool) "events record completion" true
        (contains ~affix:{|"event":"done"|} events);

      (* -- kill -9 the daemon mid-job; restart; journal replays ---------- *)
      let long = submit d (campaign_spec ~trials:3000 ~seed:33 ()) in
      ignore
        (poll ~timeout:60. "long job checkpoint progress" (fun () ->
             match http d ~meth:"GET" ~path:("/jobs/" ^ long) () with
             | 200, body -> (
               match Option.bind (Report.member "progress" (json_of body)) Report.to_int with
               | Some p when p > 0 -> Some p
               | _ -> None)
             | _ -> None));
      Unix.kill d.d_pid Sys.sigkill;
      ignore (Unix.waitpid [] d.d_pid);
      Alcotest.(check bool) "journal survives the daemon" true
        (contains ~affix:long (read_file (Filename.concat root "journal.json")));
      daemon := start_daemon root;
      let d = !daemon in
      let long_j = wait_state ~timeout:180. d long "done" in
      Alcotest.(check string) "resumed after daemon death" "clean" (jstr long_j "verdict");
      let expected_long = reference_report ~dir:refs ~trials:3000 ~seed:33 in
      let _, long_report = http d ~meth:"GET" ~path:("/jobs/" ^ long ^ "/report") () in
      Alcotest.(check string) "journal-replayed job byte-identical" expected_long long_report;
      (* finished work is re-served byte-identically by the new daemon *)
      let _, chaotic_again = http d ~meth:"GET" ~path:("/jobs/" ^ chaotic ^ "/report") () in
      Alcotest.(check string) "old report re-served byte-identically" expected chaotic_again;
      (* and the poison job's quarantine survived the restart *)
      let status, body = http d ~meth:"GET" ~path:("/jobs/" ^ poison) () in
      Alcotest.(check int) "poison still known" 200 status;
      Alcotest.(check string) "poison still quarantined" "quarantined"
        (jstr (json_of body) "state");

      (* -- graceful HTTP shutdown ---------------------------------------- *)
      let status, _ = http d ~meth:"POST" ~path:"/shutdown" () in
      Alcotest.(check int) "shutdown acknowledged" 200 status;
      match Unix.waitpid [] d.d_pid with
      | _, Unix.WEXITED 0 -> ()
      | _, s -> Alcotest.fail ("daemon shutdown not clean: " ^ Supervisor.describe_status s))

let test_daemon_load_shedding () =
  let root = fresh_dir "druzhba-shed" in
  let d = start_daemon ~workers:1 ~args:[ "--max-queue"; "1" ] root in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
      (try ignore (Unix.waitpid [] d.d_pid) with Unix.Unix_error (_, _, _) -> ());
      rm_rf root)
    (fun () ->
      (* big enough to keep the single worker busy for the whole test *)
      let running = submit d (campaign_spec ~trials:100000 ~seed:1 ()) in
      ignore
        (poll ~timeout:60. "first job running" (fun () ->
             match http d ~meth:"GET" ~path:("/jobs/" ^ running) () with
             | 200, body when jstr (json_of body) "state" = "running" -> Some ()
             | _ -> None));
      let _queued = submit d (campaign_spec ~trials:100000 ~seed:2 ()) in
      let status, body =
        http d ~meth:"POST" ~path:"/jobs" ~body:(campaign_spec ~trials:10 ~seed:3 ()) ()
      in
      Alcotest.(check int) "queue full sheds with 503" 503 status;
      Alcotest.(check bool) "shed names the queue" true
        (contains ~affix:"queue" body);
      (* SIGTERM: workers are interrupted at a block boundary and land back
         in Queued, uncharged, for the next daemon *)
      Unix.kill d.d_pid Sys.sigterm;
      (match Unix.waitpid [] d.d_pid with
      | _, Unix.WEXITED 0 -> ()
      | _, s -> Alcotest.fail ("SIGTERM shutdown not clean: " ^ Supervisor.describe_status s));
      let store, orphans =
        match Jobstore.load root with Ok v -> v | Error e -> Alcotest.fail e
      in
      Alcotest.(check (list int)) "no orphans after graceful shutdown" [] orphans;
      let j = Option.get (Jobstore.find store running) in
      Alcotest.(check bool) "interrupted job queued for the next daemon" true
        (j.Jobstore.j_state = Jobstore.Queued);
      Alcotest.(check int) "interruption not charged as an attempt" 0 j.Jobstore.j_attempts)

let test_daemon_directed_job () =
  let root = fresh_dir "druzhba-directed" in
  let d = start_daemon root in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill d.d_pid Sys.sigkill with Unix.Unix_error (_, _, _) -> ());
      (try ignore (Unix.waitpid [] d.d_pid) with Unix.Unix_error (_, _, _) -> ());
      rm_rf root)
    (fun () ->
      (* a machine-code + ALU + spec submission: the witness text carries
         container values and references a benchmark program by name *)
      let witnesses =
        "druzhba-witnesses/1\\ndepth 2\\nwidth 2\\nbits 10\\nstateful if_else_raw\\nstateless \
         stateless_full\\ntrial blue_increase w0 3,1\\ntrial blue_increase w1 7,0"
      in
      let id =
        submit d
          (Printf.sprintf {|{"kind":"directed","witnesses":"%s","phvs":10,"seed":5}|} witnesses)
      in
      let j = wait_state d id "done" in
      Alcotest.(check string) "directed verdict" "clean" (jstr j "verdict");
      let _, report = http d ~meth:"GET" ~path:("/jobs/" ^ id ^ "/report") () in
      let rj = json_of report in
      Alcotest.(check (option string)) "directed report kind" (Some "directed")
        (Option.bind (Report.member "campaign" rj) Report.to_str);
      Alcotest.(check (option int)) "both witnesses replayed" (Some 2)
        (Option.bind (Report.member "trials" rj) Report.to_int))

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "parses a complete request" `Quick test_parse_request_complete;
          Alcotest.test_case "prefixes are incomplete, never errors" `Quick
            test_parse_request_body;
          Alcotest.test_case "rejects malformed heads" `Quick test_parse_request_bad;
          Alcotest.test_case "chunked framing round-trips" `Quick test_dechunk_roundtrip;
        ] );
      ( "submissions",
        [
          Alcotest.test_case "campaign spec compiles to worker argv" `Quick
            test_submission_campaign;
          Alcotest.test_case "strict validation" `Quick test_submission_rejects;
          Alcotest.test_case "directed spec carries its witness file" `Quick
            test_submission_directed;
        ] );
      ( "supervisor",
        [ Alcotest.test_case "bounded exponential backoff" `Quick test_backoff ] );
      ( "exit codes",
        [
          Alcotest.test_case "report-to-code mapping" `Quick test_exit_code_mapping;
          Alcotest.test_case "verdict classification" `Quick test_exit_code_classify;
        ] );
      ( "durability",
        [
          Alcotest.test_case "torn checkpoint rejected cleanly" `Quick
            test_checkpoint_torn_write;
          Alcotest.test_case "atomic writes leave no droppings" `Quick
            test_atomic_write_leaves_no_tmp;
          Alcotest.test_case "journal round-trips and replays" `Quick test_journal_roundtrip;
          Alcotest.test_case "findings dedup by provenance slice" `Quick test_findings_dedup;
        ] );
      ( "graceful interrupt",
        [
          Alcotest.test_case "SIGTERM cuts at a block boundary" `Slow
            test_campaign_sigterm_graceful;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "fault-injection end to end" `Slow test_daemon_end_to_end;
          Alcotest.test_case "load shedding and graceful shutdown" `Slow
            test_daemon_load_shedding;
          Alcotest.test_case "directed submissions" `Slow test_daemon_directed_job;
        ] );
    ]
