(* Tests for the multicore campaign stack: splittable seeding, the domain
   runner, the cross-backend differential oracle, counterexample shrinking,
   and JSON report determinism across job counts. *)

module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Names = Druzhba_pipeline.Names
module Optimizer = Druzhba_optimizer.Optimizer
module Engine = Druzhba_dsim.Engine
module Phv = Druzhba_dsim.Phv
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace
module Atoms = Druzhba_atoms.Atoms
module Fuzz = Druzhba_fuzz.Fuzz
module Verify = Druzhba_fuzz.Verify
module Runner = Druzhba_campaign.Runner
module Oracle = Druzhba_campaign.Oracle
module Shrink = Druzhba_campaign.Shrink
module Campaign = Druzhba_campaign.Campaign

(* --- Prng.derive -------------------------------------------------------------- *)

let test_derive_deterministic () =
  Alcotest.(check int) "pure function" (Prng.derive 42 7) (Prng.derive 42 7);
  let a = Prng.derive 42 7 in
  let g = Prng.create 42 in
  ignore (Prng.next_int64 g);
  ignore (Prng.next_int64 g);
  Alcotest.(check int) "independent of stream position" a (Prng.derive 42 7)

let test_derive_distinct () =
  let seeds = List.init 100 (fun i -> Prng.derive 0xD52ba i) in
  let sorted = List.sort_uniq compare seeds in
  Alcotest.(check int) "100 distinct seeds" 100 (List.length sorted);
  Alcotest.(check bool) "non-negative" true (List.for_all (fun s -> s >= 0) seeds);
  Alcotest.(check bool)
    "different masters differ" true
    (Prng.derive 1 0 <> Prng.derive 2 0)

(* --- Runner -------------------------------------------------------------------- *)

let test_runner_matches_sequential () =
  let f i = (i * 31) mod 97 in
  let seq = Runner.parallel_init ~jobs:1 50 f in
  let par = Runner.parallel_init ~jobs:3 50 f in
  Alcotest.(check (list int)) "same results" (Array.to_list seq) (Array.to_list par);
  Alcotest.(check (list int)) "empty" [] (Array.to_list (Runner.parallel_init ~jobs:4 0 f))

let test_runner_parallel_map_order () =
  let items = [ "a"; "b"; "c"; "d"; "e" ] in
  Alcotest.(check (list string))
    "order preserved"
    (List.map String.uppercase_ascii items)
    (Runner.parallel_map ~jobs:2 String.uppercase_ascii items)

(* --- Differential oracle --------------------------------------------------------- *)

(* The single-trial form of the campaign's oracle: for random well-formed
   machine code on random small pipelines, the interpreter and the
   closure-compiled backend produce identical traces at all three
   optimization levels. *)
let qcheck_backends_agree =
  QCheck.Test.make ~name:"Engine and Compiled agree at all levels on random mc" ~count:40
    QCheck.(int_range 0 10_000)
    (fun index ->
      let cfg = Campaign.config ~trials:1 ~phvs:40 ~shrink:false () in
      let trial, _ = Campaign.run_trial ~cfg index in
      match trial.Campaign.t_outcome with
      | Campaign.Finished (Oracle.Agree { configs; _ }) -> configs = 6
      | o -> QCheck.Test.fail_reportf "trial %d (seed %d): %a" index trial.Campaign.t_seed
               Campaign.pp_outcome o)

let accumulator () =
  let desc =
    Dgen.generate
      (Dgen.config ~depth:1 ~width:1 ~bits:8 ())
      ~stateful:(Atoms.find_exn "raw") ~stateless:(Atoms.find_exn "stateless_full")
  in
  let mc = Machine_code.empty () in
  List.iter (fun (name, _) -> Machine_code.set mc name 0) (Ir.control_domains desc);
  Array.iter
    (fun (st : Ir.stage) ->
      Array.iter
        (fun name -> Machine_code.set mc name (Names.Select.passthrough ~width:desc.Ir.d_width))
        st.Ir.s_output_muxes)
    desc.Ir.d_stages;
  Machine_code.set mc
    (Names.output_mux ~stage:0 ~container:0)
    (Names.Select.stateful_output ~width:1 0);
  (desc, mc)

let test_oracle_agrees_on_accumulator () =
  let desc, mc = accumulator () in
  let inputs = Traffic.phvs (Traffic.create ~seed:11 ~width:1 ~bits:8) 64 in
  match Oracle.check ~desc ~mc ~inputs () with
  | Oracle.Agree { configs; phvs } ->
    Alcotest.(check int) "six configurations" 6 configs;
    Alcotest.(check int) "all phvs" 64 phvs
  | o -> Alcotest.failf "expected agreement, got %a" Oracle.pp_outcome o

let test_oracle_invalid_mc () =
  let desc, mc = accumulator () in
  Machine_code.remove mc (Names.output_mux ~stage:0 ~container:0);
  let inputs = Traffic.phvs (Traffic.create ~seed:11 ~width:1 ~bits:8) 8 in
  match Oracle.check ~desc ~mc ~inputs () with
  | Oracle.Invalid_mc (Machine_code.Missing_pair name :: _) ->
    Alcotest.(check string) "names the pair" (Names.output_mux ~stage:0 ~container:0) name
  | o -> Alcotest.failf "expected invalid mc, got %a" Oracle.pp_outcome o

let test_diff_traces_detects () =
  let mk outputs state =
    { Trace.inputs = [ [| 0 |]; [| 1 |] ]; outputs; final_state = [ ("alu", state) ] }
  in
  let reference = mk [ [| 1 |]; [| 2 |] ] [| 5 |] in
  Alcotest.(check bool)
    "equal traces have no diff" true
    (Oracle.diff_traces ~reference ~actual:(mk [ [| 1 |]; [| 2 |] ] [| 5 |]) = None);
  (match Oracle.diff_traces ~reference ~actual:(mk [ [| 1 |]; [| 9 |] ] [| 5 |]) with
  | Some (`Output (1, 0), 2, 9) -> ()
  | _ -> Alcotest.fail "output divergence not localized");
  (match Oracle.diff_traces ~reference ~actual:(mk [ [| 1 |]; [| 2 |] ] [| 6 |]) with
  | Some (`State ("alu", 0), 5, 6) -> ()
  | _ -> Alcotest.fail "state divergence not localized");
  match Oracle.diff_traces ~reference ~actual:(mk [ [| 1 |] ] [| 5 |]) with
  | Some (`Shape, _, _) -> ()
  | _ -> Alcotest.fail "shape divergence not detected"

(* --- Shrinking -------------------------------------------------------------------- *)

(* A real failing configuration: the accumulator pipeline against a spec
   that wrongly claims the pipeline echoes its input.  The repro predicate
   re-runs the interpreter and replays the spec, exactly like a fuzz trial. *)
let shrink_scenario () =
  let desc, mc = accumulator () in
  let spec =
    {
      Fuzz.spec_init = (fun () -> [||]);
      spec_step = (fun _ phv -> Array.copy phv) (* wrong: pipeline outputs old state *);
    }
  in
  let repro ~inputs ~mc =
    inputs <> []
    &&
    let trace = Engine.run desc ~mc ~inputs in
    Fuzz.compare_traces ~observed:[ 0 ] ~spec ~state_layout:[] ~trace () <> None
  in
  (desc, mc, repro)

let test_shrink_reproduces_and_is_smaller () =
  let _, mc, repro = shrink_scenario () in
  let inputs = Traffic.phvs (Traffic.create ~seed:77 ~width:1 ~bits:8) 40 in
  Alcotest.(check bool) "original reproduces" true (repro ~inputs ~mc);
  let r = Shrink.minimize ~repro ~inputs ~mc () in
  Alcotest.(check bool)
    "shrunk still reproduces" true
    (repro ~inputs:r.Shrink.sh_inputs ~mc:r.Shrink.sh_mc);
  Alcotest.(check bool)
    "no more PHVs than original" true
    (List.length r.Shrink.sh_inputs <= List.length inputs);
  Alcotest.(check bool)
    "no more pairs than original" true
    (Machine_code.cardinal r.Shrink.sh_mc <= Machine_code.cardinal mc);
  (* the accumulator mismatches on the very first nonzero input *)
  Alcotest.(check bool)
    "trace shrunk aggressively" true
    (List.length r.Shrink.sh_inputs <= 2);
  List.iter
    (fun name ->
      Alcotest.(check bool) "essential pair exists in mc" true (Machine_code.mem mc name))
    r.Shrink.sh_essential

let test_shrink_respects_budget () =
  let _, mc, repro = shrink_scenario () in
  let inputs = Traffic.phvs (Traffic.create ~seed:77 ~width:1 ~bits:8) 40 in
  let r = Shrink.minimize ~max_probes:5 ~repro ~inputs ~mc () in
  Alcotest.(check bool) "probe budget honored" true (r.Shrink.sh_probes <= 5);
  Alcotest.(check bool)
    "still reproduces at tiny budget" true
    (repro ~inputs:r.Shrink.sh_inputs ~mc:r.Shrink.sh_mc)

(* --- Verify: budget exhaustion stays honest ----------------------------------------- *)

let test_verify_inconclusive_on_compiled_benchmark () =
  let bm = Druzhba_spec.Spec.find_exn "sampling" in
  let compiled = Druzhba_spec.Spec.compile_exn ~bits:4 bm in
  let module Codegen = Druzhba_compiler.Codegen in
  let module Testing = Druzhba_compiler.Testing in
  match
    Verify.exhaustive_check ~max_states:2 ~desc:compiled.Codegen.c_desc ~mc:compiled.Codegen.c_mc
      ~spec:(Testing.spec_of compiled) ~observed:(Testing.observed compiled)
      ~state_layout:(Testing.state_layout compiled)
      ~init:compiled.Codegen.c_layout.Codegen.l_init ()
  with
  | Verify.Inconclusive { explored } ->
    Alcotest.(check bool) "reports explored states" true (explored >= 2)
  | r -> Alcotest.failf "expected inconclusive, got %a" Verify.pp_result r

(* --- Mismatch seed reporting --------------------------------------------------------- *)

let test_mismatch_records_seed () =
  let desc, mc = accumulator () in
  let spec =
    { Fuzz.spec_init = (fun () -> [||]); spec_step = (fun _ phv -> Array.copy phv) }
  in
  let seed = 98765 in
  match
    Fuzz.run_equivalence ~seed ~desc ~mc ~spec ~observed:[ 0 ] ~state_layout:[] ~n:50 ()
  with
  | Fuzz.Mismatch mm ->
    Alcotest.(check int) "seed recorded" seed mm.Fuzz.mm_seed;
    let message = Fmt.str "%a" Fuzz.pp_outcome (Fuzz.Mismatch mm) in
    let mentions_seed =
      let needle = Printf.sprintf "seed %d" seed in
      let n = String.length needle and m = String.length message in
      let rec scan i = i + n <= m && (String.sub message i n = needle || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool) "message mentions the seed" true mentions_seed
  | o -> Alcotest.failf "expected mismatch, got %a" Fuzz.pp_outcome o

(* --- Campaign end to end -------------------------------------------------------------- *)

let test_campaign_reports_identical_across_jobs () =
  let report jobs =
    Campaign.to_json (Campaign.run (Campaign.config ~trials:10 ~jobs ~phvs:25 ()))
  in
  let j1 = report 1 and j2 = report 2 and j4 = report 4 in
  Alcotest.(check string) "jobs 1 = jobs 2" j1 j2;
  Alcotest.(check string) "jobs 1 = jobs 4" j1 j4

let test_campaign_counts () =
  let r = Campaign.run (Campaign.config ~trials:8 ~jobs:2 ~phvs:20 ()) in
  Alcotest.(check int) "all trials accounted for" 8
    (r.Campaign.r_agree + r.Campaign.r_divergent + r.Campaign.r_invalid + r.Campaign.r_crashed
   + r.Campaign.r_timeout);
  Alcotest.(check int) "trials in index order" 8 (List.length r.Campaign.r_trials);
  List.iteri
    (fun i t -> Alcotest.(check int) "index" i t.Campaign.t_index)
    r.Campaign.r_trials;
  (* our own backends agree with each other *)
  Alcotest.(check int) "no divergence in a healthy simulator" 0 r.Campaign.r_divergent

(* --- Robustness: crash containment, watchdog, breaker, resume, faults ------- *)

(* Injected crashes must become structured records, identical across job
   counts — the acceptance bar for the campaign's crash containment. *)
let test_crash_containment_determinism () =
  let hook i = if i mod 5 = 3 then failwith (Printf.sprintf "chaos at trial %d" i) in
  let report jobs =
    Campaign.to_json (Campaign.run (Campaign.config ~trials:10 ~jobs ~phvs:15 ~hook ()))
  in
  let j1 = report 1 and j2 = report 2 and j4 = report 4 in
  Alcotest.(check string) "jobs 1 = jobs 2" j1 j2;
  Alcotest.(check string) "jobs 1 = jobs 4" j1 j4;
  let r = Campaign.run (Campaign.config ~trials:10 ~phvs:15 ~hook ()) in
  Alcotest.(check int) "both injected crashes recorded" 2 r.Campaign.r_crashed;
  List.iter
    (fun t ->
      match t.Campaign.t_outcome with
      | Campaign.Crashed { cr_exn; _ } ->
        Alcotest.(check bool) "crash only where injected" true (t.Campaign.t_index mod 5 = 3);
        Alcotest.(check bool) "exception text captured" true
          (String.length cr_exn > 0)
      | _ -> Alcotest.(check bool) "no spurious crash" true (t.Campaign.t_index mod 5 <> 3))
    r.Campaign.r_trials

(* A starvation-level fuel budget must turn every trial into a replayable
   [Timed_out], not hang or crash the campaign. *)
let test_watchdog_timeout () =
  let r = Campaign.run (Campaign.config ~trials:4 ~jobs:2 ~phvs:30 ~fuel:5 ()) in
  Alcotest.(check int) "every trial timed out" 4 r.Campaign.r_timeout;
  List.iter
    (fun t ->
      match t.Campaign.t_outcome with
      | Campaign.Timed_out { to_fuel } -> Alcotest.(check int) "budget recorded" 5 to_fuel
      | _ -> Alcotest.fail "expected a timeout outcome")
    r.Campaign.r_trials;
  (* and the timeout report is still jobs-independent *)
  let j1 = Campaign.to_json (Campaign.run (Campaign.config ~trials:4 ~jobs:1 ~phvs:30 ~fuel:5 ())) in
  Alcotest.(check string) "timeouts deterministic across jobs" j1 (Campaign.to_json r)

(* The circuit breaker cuts at the Nth failing *index*, so the partial
   report is identical whatever the job count. *)
let test_max_failures_cutoff () =
  let hook i = if i >= 2 then failwith "boom" in
  let mk jobs =
    Campaign.config ~trials:20 ~jobs ~phvs:10 ~max_failures:3 ~checkpoint_every:4 ~hook ()
  in
  let r1 = Campaign.run (mk 1) and r4 = Campaign.run (mk 4) in
  Alcotest.(check string) "cutoff independent of jobs" (Campaign.to_json r1) (Campaign.to_json r4);
  (match r1.Campaign.r_stopped_after with
  | Some i -> Alcotest.(check int) "third failure is trial 4" 4 i
  | None -> Alcotest.fail "breaker did not fire");
  Alcotest.(check int) "report trimmed at the cutoff" 5 (List.length r1.Campaign.r_trials)

(* Kill-and-resume: a run aborted mid-campaign (checkpoint on disk) resumed
   under a different job count must reproduce the uninterrupted report byte
   for byte — including the crash records it had already collected. *)
let test_checkpoint_resume_byte_identical () =
  let tmp = Filename.temp_file "druzhba-ck" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let hook i = if i mod 7 = 3 then failwith "chaos" in
      let mk jobs = Campaign.config ~trials:12 ~jobs ~phvs:15 ~checkpoint_every:4 ~hook () in
      let expected = Campaign.to_json (Campaign.run (mk 2)) in
      (match Campaign.run_resumable ~checkpoint:tmp ~stop_after:8 (mk 2) with
      | None -> ()
      | Some _ -> Alcotest.fail "stop_after should abort the campaign");
      (match Campaign.run_resumable ~checkpoint:tmp ~resume:true (mk 1) with
      | Some r ->
        Alcotest.(check string) "resumed = uninterrupted" expected (Campaign.to_json r)
      | None -> Alcotest.fail "resume did not run to completion");
      (* a resume under a different configuration must be refused *)
      match
        Campaign.run_resumable ~checkpoint:tmp ~resume:true
          (Campaign.config ~trials:13 ~phvs:15 ~checkpoint_every:4 ~hook ())
      with
      | exception Campaign.Resume_error _ -> ()
      | _ -> Alcotest.fail "mismatched checkpoint signature accepted")

(* Fault-injection mode on a healthy simulator: substrates agree under
   faults, fault-free replays stay pristine, and the whole fault campaign
   is deterministic across job counts. *)
let test_faults_mode () =
  let mk jobs =
    Campaign.config ~trials:6 ~jobs ~phvs:20 ~faults:(Campaign.fault_config ~runs:4 ()) ()
  in
  let r = Campaign.run (mk 2) in
  Alcotest.(check int) "no fault-flagged trials" 0 r.Campaign.r_fault_flagged;
  List.iter
    (fun t ->
      match t.Campaign.t_faults with
      | Some fs ->
        Alcotest.(check int) "all scenarios ran" 4 fs.Campaign.fs_runs;
        Alcotest.(check int) "substrates agree under faults" 0 fs.Campaign.fs_substrate_mismatch;
        Alcotest.(check bool) "fault-free replay is clean" true fs.Campaign.fs_replay_ok
      | None -> Alcotest.fail "fault stats missing on an agreeing trial")
    r.Campaign.r_trials;
  Alcotest.(check string) "fault campaign deterministic across jobs"
    (Campaign.to_json (Campaign.run (mk 1)))
    (Campaign.to_json r)

(* --- dRMT as a differential-testing target --------------------------------------- *)

(* A healthy dRMT stack: the event-driven schedule agrees with the
   sequential P4 reference on every generated trial, and the report is
   byte-identical whatever the job count. *)
let test_drmt_campaign_agrees_across_jobs () =
  let mk jobs = Campaign.config ~trials:10 ~jobs ~substrate:"drmt" ~phvs:30 () in
  let r = Campaign.run (mk 2) in
  Alcotest.(check int) "no divergence in a healthy dRMT model" 0 r.Campaign.r_divergent;
  Alcotest.(check int) "all agree" 10 r.Campaign.r_agree;
  List.iter
    (fun t ->
      (match t.Campaign.t_params with
      | Campaign.Drmt_params _ -> ()
      | Campaign.Rmt_params _ | Campaign.Native_params _ ->
        Alcotest.fail "expected dRMT params on a dRMT campaign");
      match t.Campaign.t_outcome with
      | Campaign.Finished (Oracle.Agree { configs; _ }) ->
        Alcotest.(check int) "two configurations: event vs sequential" 2 configs
      | o -> Alcotest.failf "trial %d: %a" t.Campaign.t_index Campaign.pp_outcome o)
    r.Campaign.r_trials;
  Alcotest.(check string) "dRMT report identical across jobs"
    (Campaign.to_json (Campaign.run (mk 1)))
    (Campaign.to_json r)

(* Under [--substrate all] trials alternate family by index, so resume and
   sharding stay deterministic. *)
let test_all_selector_alternates () =
  let r = Campaign.run (Campaign.config ~trials:6 ~substrate:"all" ~phvs:15 ()) in
  List.iter
    (fun t ->
      match (t.Campaign.t_index mod 2, t.Campaign.t_params) with
      | 0, Campaign.Rmt_params _ | 1, Campaign.Drmt_params _ -> ()
      | _ -> Alcotest.failf "trial %d: wrong family" t.Campaign.t_index)
    r.Campaign.r_trials;
  Alcotest.(check int) "all six agree" 6 r.Campaign.r_agree

(* The acceptance bar for dRMT as a first-class target: an injected
   semantic divergence (mutated table entries and defaults on the
   event-driven candidate only) MUST surface as a campaign failure, with a
   shrunk counterexample, and must replay from the recorded seed alone. *)
let test_drmt_sabotage_is_caught () =
  let sabotage i = i = 1 in
  let cfg = Campaign.config ~trials:3 ~substrate:"drmt" ~phvs:25 ~sabotage () in
  let r = Campaign.run cfg in
  Alcotest.(check int) "exactly the sabotaged trial diverges" 1 r.Campaign.r_divergent;
  Alcotest.(check int) "the other trials agree" 2 r.Campaign.r_agree;
  let bad = List.nth r.Campaign.r_trials 1 in
  (match bad.Campaign.t_outcome with
  | Campaign.Finished (Oracle.Divergence d) ->
    Alcotest.(check string) "the event-driven candidate is named" "drmt@event"
      d.Oracle.dv_config
  | o -> Alcotest.failf "expected divergence, got %a" Campaign.pp_outcome o);
  (match bad.Campaign.t_shrunk with
  | Some s ->
    Alcotest.(check bool) "counterexample shrunk to few packets" true
      (List.length s.Shrink.sh_inputs <= 25)
  | None -> Alcotest.fail "divergent trial was not shrunk");
  (* replayability: re-running the trial from its index reproduces the
     exact divergence — the seed in the report is all a human needs *)
  let again, _ = Campaign.run_trial ~cfg 1 in
  Alcotest.(check int) "derived seed is stable" bad.Campaign.t_seed again.Campaign.t_seed;
  match (bad.Campaign.t_outcome, again.Campaign.t_outcome) with
  | Campaign.Finished (Oracle.Divergence a), Campaign.Finished (Oracle.Divergence b) ->
    Alcotest.(check bool) "replay reproduces the same divergence" true (a = b)
  | _ -> Alcotest.fail "replay did not reproduce the divergence"

(* Fault injection on the dRMT pair: input-path faults (flips + drops) keep
   the event and sequential substrates in lock-step, and the fault-free
   replay stays pristine. *)
let test_drmt_faults_mode () =
  let mk jobs =
    Campaign.config ~trials:5 ~jobs ~substrate:"drmt" ~phvs:20
      ~faults:(Campaign.fault_config ~runs:3 ()) ()
  in
  let r = Campaign.run (mk 2) in
  Alcotest.(check int) "no fault-flagged dRMT trials" 0 r.Campaign.r_fault_flagged;
  List.iter
    (fun t ->
      match t.Campaign.t_faults with
      | Some fs ->
        Alcotest.(check int) "all scenarios ran" 3 fs.Campaign.fs_runs;
        Alcotest.(check int) "event = sequential under faults" 0
          fs.Campaign.fs_substrate_mismatch;
        Alcotest.(check bool) "fault-free replay is clean" true fs.Campaign.fs_replay_ok
      | None -> Alcotest.fail "fault stats missing on an agreeing dRMT trial")
    r.Campaign.r_trials;
  Alcotest.(check string) "dRMT fault campaign deterministic across jobs"
    (Campaign.to_json (Campaign.run (mk 1)))
    (Campaign.to_json r)

(* JSON round-trip across the substrate families: params and divergences
   keyed by config label survive serialization (checkpoint format v2). *)
let test_mixed_checkpoint_resume () =
  let tmp = Filename.temp_file "druzhba-drmt-ck" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let mk jobs =
        Campaign.config ~trials:10 ~jobs ~substrate:"all" ~phvs:15 ~checkpoint_every:3 ()
      in
      let expected = Campaign.to_json (Campaign.run (mk 1)) in
      (match Campaign.run_resumable ~checkpoint:tmp ~stop_after:6 (mk 1) with
      | None -> ()
      | Some _ -> Alcotest.fail "stop_after should abort the campaign");
      (match Campaign.run_resumable ~checkpoint:tmp ~resume:true (mk 2) with
      | Some r ->
        Alcotest.(check string) "resumed mixed campaign = uninterrupted" expected
          (Campaign.to_json r)
      | None -> Alcotest.fail "resume did not complete");
      (* a checkpoint from one substrate family must not resume another *)
      match
        Campaign.run_resumable ~checkpoint:tmp ~resume:true
          (Campaign.config ~trials:10 ~substrate:"rmt" ~phvs:15 ~checkpoint_every:3 ())
      with
      | exception Campaign.Resume_error _ -> ()
      | _ -> Alcotest.fail "substrate-mismatched checkpoint accepted")

let () =
  Alcotest.run "campaign"
    [
      ( "prng",
        [
          Alcotest.test_case "derive is deterministic" `Quick test_derive_deterministic;
          Alcotest.test_case "derive is well-spread" `Quick test_derive_distinct;
        ] );
      ( "runner",
        [
          Alcotest.test_case "parallel = sequential" `Quick test_runner_matches_sequential;
          Alcotest.test_case "parallel_map keeps order" `Quick test_runner_parallel_map_order;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "agrees on the accumulator" `Quick test_oracle_agrees_on_accumulator;
          Alcotest.test_case "rejects invalid mc" `Quick test_oracle_invalid_mc;
          Alcotest.test_case "diff localizes divergences" `Quick test_diff_traces_detects;
          QCheck_alcotest.to_alcotest qcheck_backends_agree;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "reproduces and is smaller" `Quick
            test_shrink_reproduces_and_is_smaller;
          Alcotest.test_case "honors the probe budget" `Quick test_shrink_respects_budget;
        ] );
      ( "verify",
        [
          Alcotest.test_case "inconclusive on compiled benchmark" `Quick
            test_verify_inconclusive_on_compiled_benchmark;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "mismatch records its seed" `Quick test_mismatch_records_seed ] );
      ( "campaign",
        [
          Alcotest.test_case "JSON identical across job counts" `Quick
            test_campaign_reports_identical_across_jobs;
          Alcotest.test_case "summary counts" `Quick test_campaign_counts;
        ] );
      ( "drmt substrate",
        [
          Alcotest.test_case "healthy dRMT campaign agrees across jobs" `Quick
            test_drmt_campaign_agrees_across_jobs;
          Alcotest.test_case "`All alternates families by index" `Quick
            test_all_selector_alternates;
          Alcotest.test_case "injected divergence is caught and replayable" `Quick
            test_drmt_sabotage_is_caught;
          Alcotest.test_case "input-path fault injection stays in lock-step" `Quick
            test_drmt_faults_mode;
          Alcotest.test_case "mixed-family checkpoint resume" `Quick
            test_mixed_checkpoint_resume;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "crash containment is deterministic" `Quick
            test_crash_containment_determinism;
          Alcotest.test_case "watchdog times trials out" `Quick test_watchdog_timeout;
          Alcotest.test_case "circuit breaker cuts deterministically" `Quick
            test_max_failures_cutoff;
          Alcotest.test_case "kill + resume is byte-identical" `Quick
            test_checkpoint_resume_byte_identical;
          Alcotest.test_case "fault injection on a healthy simulator" `Quick test_faults_mode;
        ] );
    ]
