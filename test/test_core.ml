(* Tests for the Druzhba facade and the experiments library: the public
   workflows a downstream user calls, and smoke coverage of the Table 1 /
   case study / Fig. 6 harnesses. *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba
module Table1 = Druzhba_experiments.Table1
module Casestudy = Druzhba_experiments.Casestudy
module Fig6 = Druzhba_experiments.Fig6

(* --- simulate ------------------------------------------------------------------- *)

let test_simulate_end_to_end () =
  let desc_gen () =
    Dgen.generate
      (Dgen.config ~depth:2 ~width:2 ())
      ~stateful:(Atoms.find_exn "pred_raw") ~stateless:(Atoms.find_exn "stateless_full")
  in
  let mc = Fuzz.random_mc (Prng.create 9) (desc_gen ()) in
  let { sim_trace; sim_description } =
    simulate ~depth:2 ~width:2 ~stateful:(Atoms.find_exn "pred_raw")
      ~stateless:(Atoms.find_exn "stateless_full") ~mc ~phvs:100 ()
  in
  Alcotest.(check int) "100 outputs" 100 (List.length sim_trace.Trace.outputs);
  (* default level is SCC: no machine-code names remain *)
  Alcotest.(check (list string)) "optimized" [] (Ir.required_names sim_description)

let test_simulate_levels_agree () =
  let stateful = Atoms.find_exn "pair" and stateless = Atoms.find_exn "stateless_full" in
  let desc = Dgen.generate (Dgen.config ~depth:2 ~width:2 ()) ~stateful ~stateless in
  let mc = Fuzz.random_mc (Prng.create 4) desc in
  let run level =
    (simulate ~level ~depth:2 ~width:2 ~stateful ~stateless ~mc ~phvs:50 ()).sim_trace
  in
  let a = run Optimizer.Unoptimized and b = run Optimizer.Scc and c = run Optimizer.Scc_inline in
  Alcotest.(check bool) "unopt = scc" true (a.Trace.outputs = b.Trace.outputs);
  Alcotest.(check bool) "scc = inline" true (b.Trace.outputs = c.Trace.outputs)

(* --- Workflow -------------------------------------------------------------------- *)

let sampling_target () = Spec.target (Spec.find_exn "sampling")

let test_workflow_test_program () =
  match
    Druzhba.Workflow.test_program ~phvs:300 ~target:(sampling_target ())
      (Spec.find_exn "sampling").Spec.bm_source
  with
  | Ok report ->
    Alcotest.(check string) "program name" "sampling" report.Druzhba.Workflow.program;
    Alcotest.(check bool) "passes" true (Fuzz.outcome_is_pass report.Druzhba.Workflow.outcome);
    Alcotest.(check bool) "has pairs" true (report.Druzhba.Workflow.machine_code_pairs > 10)
  | Error e -> Alcotest.fail e

let test_workflow_rejects_unfit () =
  match
    Druzhba.Workflow.test_program ~phvs:10
      ~target:
        (Compiler.Codegen.target ~depth:1 ~width:1 ~stateful:(Atoms.find_exn "raw")
           ~stateless:(Atoms.find_exn "stateless_full") ())
      "state s = 0; transaction t { s = s + 1; pkt.out = s == 3; }"
  with
  | Ok _ -> Alcotest.fail "expected a compile error"
  | Error _ -> ()

let test_workflow_test_machine_code_catches_bug () =
  let compiled = Spec.compile_exn (Spec.find_exn "sampling") in
  let mc = Machine_code.copy compiled.Compiler.Codegen.c_mc in
  (* corrupt the reset constant: the counter never resets to 0 *)
  let alu, _ = List.assoc "count" compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_state in
  Machine_code.set mc (Names.slot ~alu_prefix:alu ~slot_name:"const_1") 3;
  let report = Druzhba.Workflow.test_machine_code ~phvs:200 compiled ~mc in
  match report.Druzhba.Workflow.outcome with
  | Fuzz.Mismatch _ -> ()
  | o -> Alcotest.failf "expected mismatch, got %a" Fuzz.pp_outcome o

let test_workflow_report_pp () =
  let compiled = Spec.compile_exn (Spec.find_exn "spam_detection") in
  let report =
    Druzhba.Workflow.test_machine_code ~phvs:50 compiled ~mc:compiled.Compiler.Codegen.c_mc
  in
  let s = Fmt.str "%a" Druzhba.Workflow.pp_report report in
  Alcotest.(check bool) "mentions the program" true
    (String.length s > 10 && String.sub s 0 4 = "spam")

(* --- Experiments ----------------------------------------------------------------- *)

let test_table1_smoke () =
  let rows = Table1.run ~phvs:500 ~mode:"compiled" () in
  Alcotest.(check int) "12 rows" 12 (List.length rows);
  List.iter
    (fun (r : Table1.row) ->
      Alcotest.(check bool)
        (r.Table1.row_program ^ ": optimization helps")
        true
        (r.Table1.row_scc_ms < r.Table1.row_unopt_ms))
    rows

let test_table1_interpreted_inlining_helps () =
  let rows = Table1.run ~phvs:500 ~mode:"interpreter" () in
  let mean_ratio =
    List.fold_left (fun a (r : Table1.row) -> a +. (r.Table1.row_inline_ms /. r.Table1.row_scc_ms)) 0. rows
    /. 12.
  in
  Alcotest.(check bool) "inlining pays without a compiling backend" true (mean_ratio < 0.95)

let test_casestudy_shape () =
  (* tiny workloads: the counts still land exactly on the paper's shape *)
  let report = Casestudy.run ~phvs:60 ~synth_budget:60_000 () in
  Alcotest.(check int) "programs" 132 (List.length report.Casestudy.entries);
  Alcotest.(check int) "correct" 124 report.Casestudy.correct;
  Alcotest.(check int) "missing pairs" 2 report.Casestudy.missing_pairs;
  Alcotest.(check int) "range failures" 6 report.Casestudy.range_failures;
  Alcotest.(check int) "no other mismatches" 0 report.Casestudy.other

let test_fig6_shape () =
  let v = Fig6.render () in
  Alcotest.(check bool) "v2 smaller than v1" true (v.Fig6.v2_size < v.Fig6.v1_size);
  Alcotest.(check bool) "v3 no larger than v2" true (v.Fig6.v3_size <= v.Fig6.v2_size);
  Alcotest.(check bool) "helpers drop" true (v.Fig6.v3_helpers < v.Fig6.v1_helpers);
  (* rendered sources carry the signature features *)
  let contains ~sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "v1 has runtime lookups" true (contains ~sub:"values[" v.Fig6.v1);
  Alcotest.(check bool) "v2 has none" false (contains ~sub:"values[" v.Fig6.v2)

let () =
  Alcotest.run "core"
    [
      ( "simulate",
        [
          Alcotest.test_case "end to end" `Quick test_simulate_end_to_end;
          Alcotest.test_case "levels agree" `Quick test_simulate_levels_agree;
        ] );
      ( "workflow",
        [
          Alcotest.test_case "test_program passes" `Quick test_workflow_test_program;
          Alcotest.test_case "unfit program rejected" `Quick test_workflow_rejects_unfit;
          Alcotest.test_case "bad machine code caught" `Quick
            test_workflow_test_machine_code_catches_bug;
          Alcotest.test_case "report rendering" `Quick test_workflow_report_pp;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 smoke" `Quick test_table1_smoke;
          Alcotest.test_case "interpreted inlining ablation" `Quick
            test_table1_interpreted_inlining_helps;
          Alcotest.test_case "case study shape" `Slow test_casestudy_shape;
          Alcotest.test_case "fig6 shape" `Quick test_fig6_shape;
        ] );
    ]
