(* Allocation-regression tests for the zero-allocation tick engine.

   The steady-state hot path — {!Compiled.run_into} over a preallocated
   engine and {!Trace.Buffer} — must not allocate per PHV: the register file
   is a preallocated ping-pong pair, stages run through scratch buffers, and
   outputs are blitted into the buffer's preallocated rows.  The test runs
   every Table-1 program at scc+inline (the Table-1 configuration) and
   asserts [Gc.allocated_bytes] per steady-state PHV stays below a small
   fixed bound; per-run setup (the init hash table, closures) is amortized
   over the workload and real regressions — a fresh block per tick anywhere
   in the engine, compiled ALUs, or muxes — cost tens to thousands of bytes
   per PHV, far above the bound.

   A second test pins the buffered fast path to the frozen-trace path: for
   every program and level, [run_into] + [Buffer.contents] must reproduce
   [run_compiled] and [Engine.run] exactly. *)

module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile
module Optimizer = Druzhba_optimizer.Optimizer
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace
module Phv = Druzhba_dsim.Phv
module Spec = Druzhba_spec.Spec
module Codegen = Druzhba_compiler.Codegen

(* Generous vs the expected ~0 bytes/PHV, tiny vs the pre-rewrite engine's
   hundreds-to-thousands of bytes/PHV. *)
let bytes_per_phv_bound = 64.0
let alloc_phvs = 2_000

let setup (bm : Spec.benchmark) =
  let compiled = Spec.compile_exn bm in
  let mc = compiled.Codegen.c_mc in
  let desc = compiled.Codegen.c_desc in
  let init = compiled.Codegen.c_layout.Codegen.l_init in
  (desc, mc, init)

let test_steady_state_allocation (bm : Spec.benchmark) () =
  let desc, mc, init = setup bm in
  let inputs =
    Traffic.phvs (Traffic.create ~seed:0xA110C ~width:bm.Spec.bm_width ~bits:32) alloc_phvs
  in
  let v3 = Optimizer.apply ~level:Optimizer.Scc_inline ~mc desc in
  let c = Compile.compile v3 ~mc in
  let t = Compiled.create c in
  let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:alloc_phvs in
  (* warm-up: page in code paths, trigger any one-time lazy work *)
  Compiled.run_into ~init t ~inputs buf;
  let a0 = Gc.allocated_bytes () in
  Compiled.run_into ~init t ~inputs buf;
  let a1 = Gc.allocated_bytes () in
  let per_phv = (a1 -. a0) /. float_of_int alloc_phvs in
  if per_phv >= bytes_per_phv_bound then
    Alcotest.failf "%s: %.2f bytes allocated per steady-state PHV (bound %.0f)" bm.Spec.bm_name
      per_phv bytes_per_phv_bound

(* The batched lane loop must hold the same bound: SoA lanes, the step
   closures, and the bulk scatter are all preallocated at vectorization
   time, so the steady state allocates nothing per PHV. *)
let test_batched_steady_state_allocation (bm : Spec.benchmark) () =
  let desc, mc, init = setup bm in
  let inputs =
    Traffic.phvs (Traffic.create ~seed:0xA110C ~width:bm.Spec.bm_width ~bits:32) alloc_phvs
  in
  let v3 = Optimizer.apply ~level:Optimizer.Scc_inline ~mc desc in
  let c = Compile.compile v3 ~mc in
  let t = Compiled.create c in
  let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:alloc_phvs in
  (* warm-up also triggers the lazy vectorization, which allocates once *)
  Compiled.run_batch_into ~init ~batch:64 t ~inputs buf;
  let a0 = Gc.allocated_bytes () in
  Compiled.run_batch_into ~init ~batch:64 t ~inputs buf;
  let a1 = Gc.allocated_bytes () in
  let per_phv = (a1 -. a0) /. float_of_int alloc_phvs in
  if per_phv >= bytes_per_phv_bound then
    Alcotest.failf "%s: %.2f bytes allocated per steady-state batched PHV (bound %.0f)"
      bm.Spec.bm_name per_phv bytes_per_phv_bound

(* Batched = sequential on every Table-1 program, level and substrate, at a
   cache-sized batch and a deliberately awkward one (7 leaves a ragged tail
   chunk on most input counts).  The random-program property test in
   test_batch.ml covers the same contract across geometry, faults and
   budgets; this pins the real benchmark programs. *)
let test_batched_equals_sequential (bm : Spec.benchmark) () =
  let desc, mc, init = setup bm in
  let inputs = Traffic.phvs (Traffic.create ~seed:0xFA57 ~width:bm.Spec.bm_width ~bits:32) 50 in
  let capacity = List.length inputs in
  List.iter
    (fun level ->
      let d = Optimizer.apply ~level ~mc desc in
      let c = Compile.compile d ~mc in
      List.iter
        (fun (label, packed_of) ->
          let seq_buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity in
          let packed = packed_of () in
          Druzhba_dsim.Substrate.run_into packed ~inputs seq_buf;
          let seq_state = Druzhba_dsim.Substrate.current_state packed in
          List.iter
            (fun batch ->
              let bat_buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity in
              let packed = packed_of () in
              Druzhba_dsim.Substrate.run_batch_into ~batch packed ~inputs bat_buf;
              let bat_state = Druzhba_dsim.Substrate.current_state packed in
              let rows b = List.init (Trace.Buffer.length b) (Trace.Buffer.row b) in
              Alcotest.(check bool)
                (Printf.sprintf "%s/%s/%s batch %d = sequential" bm.Spec.bm_name
                   (Optimizer.level_name level) label batch)
                true
                (rows seq_buf = rows bat_buf && seq_state = bat_state))
            [ 64; 7 ])
        [
          ("engine", fun () -> Druzhba_dsim.Substrate.of_engine ~init d ~mc);
          ("compiled", fun () -> Druzhba_dsim.Substrate.of_compiled ~init c);
        ])
    [ Optimizer.Unoptimized; Optimizer.Scc; Optimizer.Scc_inline ]

let test_buffered_path_equals_frozen (bm : Spec.benchmark) () =
  let desc, mc, init = setup bm in
  let inputs = Traffic.phvs (Traffic.create ~seed:0xFA57 ~width:bm.Spec.bm_width ~bits:32) 50 in
  List.iter
    (fun level ->
      let d = Optimizer.apply ~level ~mc desc in
      let c = Compile.compile d ~mc in
      let reference = Engine.run ~init d ~mc ~inputs in
      (* frozen convenience path *)
      let frozen = Compiled.run_compiled ~init c ~inputs in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s run_compiled = Engine.run" bm.Spec.bm_name
           (Optimizer.level_name level))
        true (Trace.equal reference frozen);
      (* reusable-buffer fast path, twice through the same engine and buffer
         (the second run must not see state from the first) *)
      let t = Compiled.create c in
      let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:10 (* forces growth *) in
      Compiled.run_into ~init t ~inputs buf;
      Compiled.run_into ~init t ~inputs buf;
      let buffered =
        {
          Trace.inputs;
          outputs = Trace.Buffer.contents buf;
          final_state = Compiled.current_state t;
        }
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s run_into = Engine.run" bm.Spec.bm_name
           (Optimizer.level_name level))
        true
        (Trace.equal reference buffered))
    [ Optimizer.Unoptimized; Optimizer.Scc; Optimizer.Scc_inline ]

let () =
  Alcotest.run "perf"
    [
      ( "steady-state allocation (scc+inline, compiled)",
        List.map
          (fun (bm : Spec.benchmark) ->
            Alcotest.test_case bm.Spec.bm_name `Quick (test_steady_state_allocation bm))
          Spec.all );
      ( "steady-state allocation (scc+inline, batched)",
        List.map
          (fun (bm : Spec.benchmark) ->
            Alcotest.test_case bm.Spec.bm_name `Quick (test_batched_steady_state_allocation bm))
          Spec.all );
      ( "batched = sequential (all levels, both substrates)",
        List.map
          (fun (bm : Spec.benchmark) ->
            Alcotest.test_case bm.Spec.bm_name `Quick (test_batched_equals_sequential bm))
          Spec.all );
      ( "buffered fast path = frozen trace",
        List.map
          (fun (bm : Spec.benchmark) ->
            Alcotest.test_case bm.Spec.bm_name `Quick (test_buffered_path_equals_frozen bm))
          Spec.all );
    ]
