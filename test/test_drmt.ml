(* Tests for the dRMT model: P4-subset parsing, dependency-DAG extraction,
   the cyclic scheduler's invariants, table-entry lookup semantics, and
   differential testing of the scheduled simulator against sequential P4
   semantics. *)

module P4 = Druzhba_drmt.P4
module Dag = Druzhba_drmt.Dag
module Scheduler = Druzhba_drmt.Scheduler
module Entries = Druzhba_drmt.Entries
module Sim = Druzhba_drmt.Sim

let l2l3_src =
  {|
header ethernet {
  dst : 48;
  etype : 16;
}
header ipv4 {
  ttl : 8;
  dst : 32;
}

action set_port(port) {
  meta.out_port = port;
}
action route(port) {
  meta.out_port = port;
  ipv4.ttl = ipv4.ttl - 1;
  reg.routed = reg.routed + 1;
}
action drop_packet() {
  drop;
  reg.dropped = reg.dropped + 1;
}

table l2_forward {
  key : ethernet.dst;
  match : exact;
  actions : { set_port };
  default : set_port 0;
}
table ipv4_route {
  key : ipv4.dst;
  match : lpm;
  actions : { route, drop_packet };
  default : drop_packet;
}

control {
  apply l2_forward;
  apply ipv4_route;
}
|}

let l2l3 () = P4.parse l2l3_src

let entries_src =
  {|
entry l2_forward exact 170 set_port 3
entry ipv4_route lpm 3232235520/16 route 7
entry ipv4_route lpm 3232235520/8  route 9
|}

let entries () = match Entries.parse entries_src with Ok e -> e | Error e -> failwith e

(* --- P4 parsing ---------------------------------------------------------------- *)

let test_parse_structure () =
  let p = l2l3 () in
  Alcotest.(check int) "headers" 2 (List.length p.P4.headers);
  Alcotest.(check int) "actions" 3 (List.length p.P4.actions);
  Alcotest.(check int) "tables" 2 (List.length p.P4.tables);
  Alcotest.(check (list string)) "control" [ "l2_forward"; "ipv4_route" ] p.P4.control;
  Alcotest.(check (option int)) "field width" (Some 8) (P4.field_width p (P4.Header ("ipv4", "ttl")));
  Alcotest.(check (option int)) "meta width" (Some 32) (P4.field_width p (P4.Meta "out_port"))

let test_parse_errors () =
  let expect_error src =
    match P4.parse_result src with
    | Ok _ -> Alcotest.fail ("expected parse error: " ^ src)
    | Error _ -> ()
  in
  expect_error "header h { f : 8; }"; (* no control *)
  expect_error "control { apply missing_table; }";
  expect_error "table t { key : h.f; match : exact; default : a; } control { }";
  expect_error "bogus { }"

let test_read_write_sets () =
  let p = l2l3 () in
  let route = Option.get (P4.find_action p "route") in
  Alcotest.(check bool) "route writes ttl" true
    (List.mem (P4.Header ("ipv4", "ttl")) (P4.action_writes route));
  Alcotest.(check bool) "route reads ttl" true
    (List.mem (P4.Header ("ipv4", "ttl")) (P4.action_reads route));
  Alcotest.(check bool) "route writes register" true
    (List.mem (P4.Reg "routed") (P4.action_writes route))

(* --- DAG ------------------------------------------------------------------------- *)

let test_dag_shape () =
  let dag = Dag.build (l2l3 ()) in
  Alcotest.(check int) "nodes" 4 (List.length dag.Dag.nodes);
  (* both tables' actions write meta.out_port => action dependency edge *)
  Alcotest.(check bool) "action dep present" true
    (List.exists
       (fun (e : Dag.edge) ->
         Dag.equal_node e.Dag.e_from (Dag.Action "l2_forward")
         && Dag.equal_node e.Dag.e_to (Dag.Action "ipv4_route"))
       dag.Dag.edges);
  Alcotest.(check int) "critical path is match+action chain" 24 (Dag.critical_path dag)

let test_dag_match_dependency () =
  let src =
    {|
header h { f : 16; g : 16; }
action set_f(v) { h.f = v; }
action noop_a() { noop; }
table writer { key : h.g; match : exact; actions : { set_f }; default : set_f 0; }
table reader { key : h.f; match : exact; actions : { noop_a }; default : noop_a; }
control { apply writer; apply reader; }
|}
  in
  let dag = Dag.build (P4.parse src) in
  Alcotest.(check bool) "match dependency" true
    (List.exists
       (fun (e : Dag.edge) ->
         Dag.equal_node e.Dag.e_from (Dag.Action "writer")
         && Dag.equal_node e.Dag.e_to (Dag.Match "reader"))
       dag.Dag.edges)

let test_dag_independent_tables () =
  let src =
    {|
header h { f : 16; g : 16; }
action inc_f() { h.f = h.f + 1; }
action inc_g() { h.g = h.g + 1; }
table tf { key : h.f; match : exact; actions : { inc_f }; default : inc_f; }
table tg { key : h.g; match : exact; actions : { inc_g }; default : inc_g; }
control { apply tf; apply tg; }
|}
  in
  let dag = Dag.build (P4.parse src) in
  (* only the successor edge links them: both matches can issue at cycle 0 *)
  let sched = Scheduler.schedule (Scheduler.config ~processors:2 ~match_capacity:4 ()) dag in
  Alcotest.(check int) "tf match at 0" 0 (Scheduler.time_of sched (Dag.Match "tf"));
  Alcotest.(check int) "tg match at 0" 0 (Scheduler.time_of sched (Dag.Match "tg"))

let test_dag_find_cycle () =
  (* [Dag.build] only emits forward edges, so its output is always acyclic *)
  Alcotest.(check bool) "built DAGs acyclic" true (Dag.find_cycle (Dag.build (l2l3 ())) = None);
  (* hand-assembled back edge: Action t -> Match t closes a cycle *)
  let cyclic =
    {
      Dag.nodes = [ Dag.Match "t"; Dag.Action "t"; Dag.Match "u"; Dag.Action "u" ];
      edges =
        [
          { Dag.e_from = Dag.Match "t"; e_to = Dag.Action "t"; e_latency = 22 };
          { Dag.e_from = Dag.Action "t"; e_to = Dag.Match "t"; e_latency = 2 };
          { Dag.e_from = Dag.Match "u"; e_to = Dag.Action "u"; e_latency = 22 };
        ];
      delta_match = 22;
      delta_action = 2;
    }
  in
  match Dag.find_cycle cyclic with
  | None -> Alcotest.fail "cycle not detected"
  | Some witness ->
    (* the witness set is exactly the strongly-connected remainder *)
    Alcotest.(check bool) "Match t in witness" true (List.mem (Dag.Match "t") witness);
    Alcotest.(check bool) "Action t in witness" true (List.mem (Dag.Action "t") witness);
    Alcotest.(check bool) "acyclic u not in witness" false (List.mem (Dag.Match "u") witness)

(* --- Scheduler -------------------------------------------------------------------- *)

let test_schedule_valid_l2l3 () =
  let dag = Dag.build (l2l3 ()) in
  (* 2 match and 2 action nodes: infeasible at line rate iff P * cap < 2 *)
  List.iter
    (fun processors ->
      List.iter
        (fun caps ->
          let cfg = Scheduler.config ~processors ~match_capacity:caps ~action_capacity:caps () in
          match Scheduler.schedule cfg dag with
          | sched ->
            Alcotest.(check bool)
              (Printf.sprintf "feasible (P=%d, cap=%d)" processors caps)
              true
              (processors * caps >= 2);
            Alcotest.(check int)
              (Printf.sprintf "valid (P=%d, cap=%d)" processors caps)
              0
              (List.length (Scheduler.validate dag sched))
          | exception Scheduler.Infeasible _ ->
            Alcotest.(check bool)
              (Printf.sprintf "infeasible only when undersized (P=%d, cap=%d)" processors caps)
              true
              (processors * caps < 2))
        [ 1; 2; 8 ])
    [ 1; 2; 4; 7 ]

let test_capacity_forces_stagger () =
  (* two independent matches, capacity 1, P=2: they cannot share a residue *)
  let src =
    {|
header h { f : 16; g : 16; }
action inc_f() { h.f = h.f + 1; }
action inc_g() { h.g = h.g + 1; }
table tf { key : h.f; match : exact; actions : { inc_f }; default : inc_f; }
table tg { key : h.g; match : exact; actions : { inc_g }; default : inc_g; }
control { apply tf; apply tg; }
|}
  in
  let dag = Dag.build (P4.parse src) in
  let cfg = Scheduler.config ~processors:2 ~match_capacity:1 ~action_capacity:1 () in
  let sched = Scheduler.schedule cfg dag in
  Alcotest.(check int) "no violations" 0 (List.length (Scheduler.validate dag sched));
  let t_tf = Scheduler.time_of sched (Dag.Match "tf") in
  let t_tg = Scheduler.time_of sched (Dag.Match "tg") in
  Alcotest.(check bool) "different residues" true (t_tf mod 2 <> t_tg mod 2)

let test_schedule_empty_dag () =
  (* a program with no applied tables schedules trivially: makespan 0 *)
  let p = P4.parse {| header h { f : 8; } control { } |} in
  let dag = Dag.build p in
  Alcotest.(check int) "no nodes" 0 (List.length dag.Dag.nodes);
  let sched = Scheduler.schedule (Scheduler.config ()) dag in
  Alcotest.(check int) "makespan 0" 0 sched.Scheduler.makespan;
  Alcotest.(check int) "valid" 0 (List.length (Scheduler.validate dag sched))

let test_schedule_single_processor () =
  (* P=1: every node lands on processor 0 and the schedule is still valid,
     provided the per-cycle capacity can hold the whole program *)
  let dag = Dag.build (l2l3 ()) in
  let cfg = Scheduler.config ~processors:1 ~match_capacity:2 ~action_capacity:2 () in
  let sched = Scheduler.schedule cfg dag in
  Alcotest.(check int) "valid" 0 (List.length (Scheduler.validate dag sched));
  Alcotest.(check bool)
    "makespan covers the critical path" true
    (sched.Scheduler.makespan >= Dag.critical_path dag)

let test_schedule_infeasible () =
  (* 2 match nodes but P * match_capacity = 1: no line-rate schedule exists *)
  let dag = Dag.build (l2l3 ()) in
  let cfg = Scheduler.config ~processors:1 ~match_capacity:1 ~action_capacity:1 () in
  (match Scheduler.schedule cfg dag with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Scheduler.Infeasible msg ->
    Alcotest.(check bool) "message names the bottleneck" true (String.length msg > 0));
  (* check_feasible is the only source of Infeasible: a big-enough config passes *)
  Scheduler.check_feasible (Scheduler.config ()) dag

(* random chain programs: the greedy schedule is always valid *)
let gen_chain_program : P4.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* n = int_range 1 6 in
  let* share = bool in
  let headers = [ { P4.h_name = "h"; h_fields = List.init n (fun i -> ("f" ^ string_of_int i, 16)) } ] in
  let actions =
    List.init n (fun i ->
        {
          P4.a_name = Printf.sprintf "act%d" i;
          a_params = [];
          a_body =
            [
              P4.Assign
                ( P4.Header ("h", Printf.sprintf "f%d" (if share then 0 else i)),
                  P4.Binop (P4.Add, P4.Ref (P4.Header ("h", Printf.sprintf "f%d" (if share then 0 else i))), P4.Int 1) );
            ];
        })
  in
  let tables =
    List.init n (fun i ->
        {
          P4.t_name = Printf.sprintf "t%d" i;
          t_key = P4.Header ("h", Printf.sprintf "f%d" (if share then 0 else i));
          t_match = P4.Exact;
          t_actions = [ Printf.sprintf "act%d" i ];
          t_default = (Printf.sprintf "act%d" i, []);
        })
  in
  return { P4.headers; actions; tables; control = List.init n (Printf.sprintf "t%d") }

let prop_scheduler_always_valid =
  QCheck.Test.make ~name:"greedy schedules satisfy all constraints" ~count:60
    (QCheck.make
       QCheck.Gen.(
         triple gen_chain_program (int_range 1 6) (int_range 1 4)))
    (fun (p, processors, cap) ->
      let dag = Dag.build p in
      let cfg = Scheduler.config ~processors ~match_capacity:cap ~action_capacity:cap () in
      let tables = List.length p.P4.tables in
      match Scheduler.schedule cfg dag with
      | sched -> Scheduler.validate dag sched = []
      | exception Scheduler.Infeasible _ -> tables > processors * cap)

let prop_schedule_respects_critical_path =
  QCheck.Test.make ~name:"makespan >= critical path" ~count:40
    (QCheck.make gen_chain_program)
    (fun p ->
      let dag = Dag.build p in
      let sched = Scheduler.schedule (Scheduler.config ()) dag in
      sched.Scheduler.makespan >= Dag.critical_path dag)

(* --- Entries ------------------------------------------------------------------------ *)

let test_entries_parse () =
  match Entries.parse entries_src with
  | Error e -> Alcotest.fail e
  | Ok es ->
    Alcotest.(check int) "entries" 3 (List.length es);
    (match List.hd es with
    | { Entries.en_table = "l2_forward"; en_pattern = Entries.Pexact 170; en_action = "set_port"; en_args = [ 3 ] }
      -> ()
    | _ -> Alcotest.fail "unexpected first entry")

let test_entries_parse_errors () =
  (match Entries.parse "entry t exact notanumber act" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ());
  (match Entries.parse "entry t lpm 10 act" with
  | Ok _ -> Alcotest.fail "expected error (lpm needs /prefix)"
  | Error _ -> ());
  match Entries.parse "something else" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error _ -> ()

let test_lpm_longest_prefix () =
  let es = entries () in
  (* 192.168.x.x = 3232235520 + ...; /16 beats /8 *)
  match Entries.lookup es ~table:"ipv4_route" ~key_width:32 3232235777 with
  | Some e -> Alcotest.(check (list int)) "longest prefix wins" [ 7 ] e.Entries.en_args
  | None -> Alcotest.fail "expected lpm hit"

let test_lpm_fallback_shorter_prefix () =
  let es = entries () in
  (* 192.169.0.0: matches 192.0.0.0/8 but not 192.168.0.0/16 *)
  match Entries.lookup es ~table:"ipv4_route" ~key_width:32 3232301056 with
  | Some e -> Alcotest.(check (list int)) "/8 entry" [ 9 ] e.Entries.en_args
  | None -> Alcotest.fail "expected /8 hit"

let test_ternary_priority () =
  let src = "entry t ternary 8&8 first\nentry t ternary 0&0 second" in
  match Entries.parse src with
  | Error e -> Alcotest.fail e
  | Ok es -> (
    match Entries.lookup es ~table:"t" ~key_width:16 12 with
    | Some e -> Alcotest.(check string) "file order priority" "first" e.Entries.en_action
    | None -> Alcotest.fail "expected ternary hit")

let test_exact_miss () =
  let es = entries () in
  Alcotest.(check bool) "miss" true
    (Entries.lookup es ~table:"l2_forward" ~key_width:48 9999 = None)

let test_entries_roundtrip () =
  let es = entries () in
  let printed = Fmt.str "%a" Fmt.(list ~sep:(any "\n") Entries.pp_entry) es in
  match Entries.parse printed with
  | Ok es' -> Alcotest.(check int) "roundtrip count" (List.length es) (List.length es')
  | Error e -> Alcotest.fail e

(* --- Simulation ----------------------------------------------------------------------- *)

let test_sim_matches_sequential () =
  let p = l2l3 () in
  let es = entries () in
  List.iter
    (fun seed ->
      let r = Sim.run ~seed ~cfg:(Scheduler.config ()) ~entries:es ~packets:150 p in
      let s = Sim.run_sequential ~seed ~entries:es ~packets:150 p in
      Alcotest.(check bool) "packets agree" true (Sim.packets_agree r s);
      (* counters commute, so registers agree too *)
      Alcotest.(check (list (pair string int))) "registers" s.Sim.r_registers r.Sim.r_registers)
    [ 1; 2; 3; 42 ]

let test_sim_respects_capacity () =
  (* the schedule's residue constraint bounds each processor's per-cycle
     crossbar usage by the configured capacity *)
  let p = l2l3 () in
  List.iter
    (fun (processors, cap) ->
      let cfg = Scheduler.config ~processors ~match_capacity:cap ~action_capacity:cap () in
      let r = Sim.run ~cfg ~entries:(entries ()) ~packets:300 p in
      Alcotest.(check bool) "per-processor match peak within cap" true
        (r.Sim.r_stats.Sim.st_peak_match_per_processor <= cap);
      Alcotest.(check bool) "per-processor action peak within cap" true
        (r.Sim.r_stats.Sim.st_peak_action_per_processor <= cap);
      (* chip-wide concurrency is bounded by processors x cap *)
      Alcotest.(check bool) "chip-wide peak bounded" true
        (r.Sim.r_stats.Sim.st_peak_match_per_cycle <= processors * cap))
    [ (4, 2); (2, 1); (7, 2) ]

let test_sim_throughput () =
  (* steady state absorbs one packet per cycle: total cycles = packets +
     per-packet latency (makespan) *)
  let p = l2l3 () in
  let cfg = Scheduler.config () in
  let dag = Dag.build p in
  let sched = Scheduler.schedule cfg dag in
  let packets = 500 in
  let r = Sim.run ~cfg ~entries:(entries ()) ~packets p in
  Alcotest.(check int) "cycles = packets + makespan"
    (packets + sched.Scheduler.makespan)
    r.Sim.r_stats.Sim.st_cycles

let test_sim_register_effects () =
  let p = l2l3 () in
  let r = Sim.run ~cfg:(Scheduler.config ()) ~entries:(entries ()) ~packets:100 p in
  let routed = try List.assoc "routed" r.Sim.r_registers with Not_found -> 0 in
  let dropped = try List.assoc "dropped" r.Sim.r_registers with Not_found -> 0 in
  Alcotest.(check int) "every packet routed or dropped" 100 (routed + dropped)

let test_sim_ttl_decrement () =
  (* a packet that hits the /8 route must have its TTL decremented *)
  let src = "entry ipv4_route lpm 0/0 route 1" in
  let es = match Entries.parse src with Ok e -> e | Error e -> failwith e in
  let p = l2l3 () in
  let seed = 7 in
  let r = Sim.run ~seed ~cfg:(Scheduler.config ()) ~entries:es ~packets:20 p in
  let s = Sim.run_sequential ~seed ~entries:es ~packets:20 p in
  Alcotest.(check bool) "agree" true (Sim.packets_agree r s);
  List.iter
    (fun (pk : Sim.packet) ->
      match Hashtbl.find_opt pk.Sim.fields (P4.Meta "out_port") with
      | Some port -> Alcotest.(check int) "routed out port 1" 1 port
      | None -> Alcotest.fail "missing out_port")
    r.Sim.r_packets

let prop_sim_differential =
  QCheck.Test.make ~name:"scheduled execution = sequential semantics (fields)" ~count:25
    (QCheck.make QCheck.Gen.(triple gen_chain_program (int_range 1 5) small_nat))
    (fun (p, processors, seed) ->
      let cfg = Scheduler.config ~processors () in
      let r = Sim.run ~seed ~cfg ~entries:[] ~packets:60 p in
      let s = Sim.run_sequential ~seed ~entries:[] ~packets:60 p in
      Sim.packets_agree r s)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "drmt"
    [
      ( "p4",
        [
          Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "read/write sets" `Quick test_read_write_sets;
        ] );
      ( "dag",
        [
          Alcotest.test_case "shape" `Quick test_dag_shape;
          Alcotest.test_case "match dependency" `Quick test_dag_match_dependency;
          Alcotest.test_case "independent tables" `Quick test_dag_independent_tables;
          Alcotest.test_case "find cycle" `Quick test_dag_find_cycle;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "valid across configs" `Quick test_schedule_valid_l2l3;
          Alcotest.test_case "capacity forces stagger" `Quick test_capacity_forces_stagger;
          Alcotest.test_case "empty dag" `Quick test_schedule_empty_dag;
          Alcotest.test_case "single processor" `Quick test_schedule_single_processor;
          Alcotest.test_case "infeasible" `Quick test_schedule_infeasible;
        ]
        @ qsuite [ prop_scheduler_always_valid; prop_schedule_respects_critical_path ] );
      ( "entries",
        [
          Alcotest.test_case "parse" `Quick test_entries_parse;
          Alcotest.test_case "parse errors" `Quick test_entries_parse_errors;
          Alcotest.test_case "lpm longest prefix" `Quick test_lpm_longest_prefix;
          Alcotest.test_case "lpm shorter fallback" `Quick test_lpm_fallback_shorter_prefix;
          Alcotest.test_case "ternary priority" `Quick test_ternary_priority;
          Alcotest.test_case "exact miss" `Quick test_exact_miss;
          Alcotest.test_case "print/parse roundtrip" `Quick test_entries_roundtrip;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "matches sequential" `Quick test_sim_matches_sequential;
          Alcotest.test_case "respects capacity" `Quick test_sim_respects_capacity;
          Alcotest.test_case "throughput" `Quick test_sim_throughput;
          Alcotest.test_case "register effects" `Quick test_sim_register_effects;
          Alcotest.test_case "ttl decrement via lpm" `Quick test_sim_ttl_decrement;
        ]
        @ qsuite [ prop_sim_differential ] );
    ]
