(* Tests for the benchmark-report reader: the minimal JSON parser and the
   schema-tolerant bench view over it.  The reader must accept all report
   generations — druzhba-bench/1 (PR 5, sequential tick path), /2 (PR 8,
   batched path) and /3 (PR 10, native-codegen substrate columns) — since
   the perf-trajectory tooling diffs one against the other; it must also
   reject malformed or unknown-schema documents loudly rather than
   returning partial rows. *)

module Bench_report = Druzhba_experiments.Bench_report

let sample_v1 =
  {|{
  "schema": "druzhba-bench/1",
  "pr": 5,
  "phvs": 5000,
  "programs": [
    {
      "program": "spam_detection", "depth": 1, "width": 1, "alu": "raw",
      "levels": [
        {"level": "unopt", "ns_per_phv": 1714.6, "phvs_per_sec": 583223, "bytes_per_phv": 0.11, "engine_compiled_agree": true},
        {"level": "scc+inline", "ns_per_phv": 207.0, "phvs_per_sec": 4830918, "bytes_per_phv": 0.11, "engine_compiled_agree": true}
      ]
    }
  ]
}|}

let sample_v2 =
  {|{
  "schema": "druzhba-bench/2",
  "pr": 8,
  "phvs": 50000,
  "batch": 64,
  "programs": [
    {
      "program": "spam_detection", "depth": 1, "width": 1, "alu": "raw",
      "levels": [
        {"level": "scc+inline", "ns_per_phv": 41.4, "seq_ns_per_phv": 199.8, "phvs_per_sec": 24154589, "bytes_per_phv": 0.11, "engine_compiled_agree": true, "batch_agree": true}
      ]
    }
  ],
  "batch_sweep": [
    {"program": "spam_detection", "level": "scc+inline", "points": [{"batch": 1, "ns_per_phv": 64.4}, {"batch": 64, "ns_per_phv": 27.8}]}
  ]
}|}

let sample_v3 =
  {|{
  "schema": "druzhba-bench/3",
  "pr": 10,
  "phvs": 50000,
  "batch": 64,
  "programs": [
    {
      "program": "spam_detection", "depth": 1, "width": 1, "alu": "raw",
      "levels": [
        {"level": "unopt", "ns_per_phv": 120.0, "seq_ns_per_phv": 400.0, "phvs_per_sec": 8333333, "bytes_per_phv": 0.11, "engine_compiled_agree": true, "batch_agree": true},
        {"level": "scc+inline", "ns_per_phv": 40.0, "seq_ns_per_phv": 199.8, "phvs_per_sec": 25000000, "bytes_per_phv": 0.11, "engine_compiled_agree": true, "batch_agree": true, "native_ns_per_phv": 10.0, "native_seq_ns_per_phv": 25.0, "native_phvs_per_sec": 100000000, "native_agree": true}
      ]
    }
  ]
}|}

(* The same schema written on a machine without the build toolchain:
   native fields absent, top-level reason present. *)
let sample_v3_degraded =
  {|{
  "schema": "druzhba-bench/3",
  "pr": 10,
  "phvs": 5000,
  "batch": 64,
  "native_unavailable": "ocamlfind not found on PATH",
  "programs": [
    {
      "program": "spam_detection", "depth": 1, "width": 1, "alu": "raw",
      "levels": [
        {"level": "scc+inline", "ns_per_phv": 40.0, "seq_ns_per_phv": 199.8, "phvs_per_sec": 25000000, "bytes_per_phv": 0.11, "engine_compiled_agree": true, "batch_agree": true}
      ]
    }
  ]
}|}

let check_ok = function
  | Ok r -> r
  | Error msg -> Alcotest.failf "expected successful parse, got: %s" msg

let test_reads_v1 () =
  let r = check_ok (Bench_report.of_string sample_v1) in
  Alcotest.(check string) "schema" "druzhba-bench/1" r.Bench_report.br_schema;
  Alcotest.(check int) "pr" 5 r.Bench_report.br_pr;
  Alcotest.(check bool) "no batch field in v1" true (r.Bench_report.br_batch = None);
  Alcotest.(check int) "rows" 2 (List.length r.Bench_report.br_rows);
  match Bench_report.find_row r ~program:"spam_detection" ~level:"scc+inline" with
  | None -> Alcotest.fail "missing scc+inline row"
  | Some row ->
    Alcotest.(check (float 0.001)) "ns/PHV" 207.0 row.Bench_report.br_ns_per_phv;
    Alcotest.(check bool) "agree" true row.Bench_report.br_agree

let test_reads_v2 () =
  let r = check_ok (Bench_report.of_string sample_v2) in
  Alcotest.(check string) "schema" "druzhba-bench/2" r.Bench_report.br_schema;
  Alcotest.(check bool) "batch field" true (r.Bench_report.br_batch = Some 64);
  Alcotest.(check int) "rows" 1 (List.length r.Bench_report.br_rows)

let test_reads_v3 () =
  let r = check_ok (Bench_report.of_string sample_v3) in
  Alcotest.(check string) "schema" "druzhba-bench/3" r.Bench_report.br_schema;
  Alcotest.(check int) "pr" 10 r.Bench_report.br_pr;
  Alcotest.(check bool) "toolchain present" true (r.Bench_report.br_native_unavailable = None);
  Alcotest.(check int) "rows" 2 (List.length r.Bench_report.br_rows);
  (match Bench_report.find_row r ~program:"spam_detection" ~level:"scc+inline" with
  | None -> Alcotest.fail "missing scc+inline row"
  | Some row ->
    Alcotest.(check bool) "native ns parsed" true
      (row.Bench_report.br_native_ns_per_phv = Some 10.0);
    Alcotest.(check bool) "native agree parsed" true
      (row.Bench_report.br_native_agree = Some true);
    Alcotest.(check bool) "seq ns parsed" true
      (row.Bench_report.br_seq_ns_per_phv = Some 199.8));
  match Bench_report.find_row r ~program:"spam_detection" ~level:"unopt" with
  | None -> Alcotest.fail "missing unopt row"
  | Some row ->
    Alcotest.(check bool) "native fields optional per level" true
      (row.Bench_report.br_native_ns_per_phv = None)

let test_native_speedup_join () =
  let r = check_ok (Bench_report.of_string sample_v3) in
  (match Bench_report.native_speedups r with
  | [ ("spam_detection", "scc+inline", s) ] -> Alcotest.(check (float 0.001)) "40 / 10" 4.0 s
  | rows -> Alcotest.failf "expected one native row, got %d" (List.length rows));
  (* degraded reports join to nothing, not to an error *)
  let d = check_ok (Bench_report.of_string sample_v3_degraded) in
  Alcotest.(check bool) "degradation reason surfaced" true
    (d.Bench_report.br_native_unavailable = Some "ocamlfind not found on PATH");
  Alcotest.(check int) "no native rows when degraded" 0
    (List.length (Bench_report.native_speedups d));
  (* older schemas never produce native rows either *)
  let v2 = check_ok (Bench_report.of_string sample_v2) in
  Alcotest.(check int) "no native rows in /2" 0 (List.length (Bench_report.native_speedups v2))

let test_speedups_across_schemas () =
  let v1 = check_ok (Bench_report.of_string sample_v1) in
  let v2 = check_ok (Bench_report.of_string sample_v2) in
  match Bench_report.speedups ~baseline:v1 ~current:v2 with
  | [ ("spam_detection", "scc+inline", s) ] ->
    Alcotest.(check (float 0.001)) "207.0 / 41.4" 5.0 s
  | rows -> Alcotest.failf "expected one joined row, got %d" (List.length rows)

let test_rejects_malformed () =
  let expect_error label s =
    match Bench_report.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: expected parse error" label
  in
  expect_error "empty" "";
  expect_error "truncated" {|{"schema": "druzhba-bench/1", "programs": [|};
  expect_error "unknown schema" {|{"schema": "druzhba-bench/99", "programs": []}|};
  expect_error "missing schema" {|{"pr": 5, "programs": []}|};
  expect_error "no rows" {|{"schema": "druzhba-bench/1", "pr": 5, "programs": []}|};
  expect_error "trailing garbage" {|{"schema": "druzhba-bench/1", "programs": []} x|}

(* The committed trajectory files must stay readable: CI regenerates the
   current report, but the PR 5 baseline is a repository fixture the
   speedup table joins against. *)
let test_reads_committed_reports () =
  List.iter
    (fun (path, expect_pr) ->
      if Sys.file_exists path then begin
        let r = check_ok (Bench_report.of_file path) in
        Alcotest.(check int) (path ^ " pr") expect_pr r.Bench_report.br_pr;
        Alcotest.(check int) (path ^ " rows") 36 (List.length r.Bench_report.br_rows);
        List.iter
          (fun (row : Bench_report.level_row) ->
            if row.Bench_report.br_ns_per_phv <= 0. then
              Alcotest.failf "%s: non-positive ns/PHV for %s/%s" path row.Bench_report.br_program
                row.Bench_report.br_level)
          r.Bench_report.br_rows
      end)
    [ ("../BENCH_pr5.json", 5); ("../BENCH_pr8.json", 8); ("../BENCH_pr10.json", 10) ]

let () =
  Alcotest.run "bench_report"
    [
      ( "parser",
        [
          Alcotest.test_case "reads schema /1" `Quick test_reads_v1;
          Alcotest.test_case "reads schema /2" `Quick test_reads_v2;
          Alcotest.test_case "reads schema /3" `Quick test_reads_v3;
          Alcotest.test_case "native-vs-batched speedup join" `Quick test_native_speedup_join;
          Alcotest.test_case "speedups join across schemas" `Quick test_speedups_across_schemas;
          Alcotest.test_case "rejects malformed input" `Quick test_rejects_malformed;
          Alcotest.test_case "reads committed reports" `Quick test_reads_committed_reports;
        ] );
    ]
