(* Tests for coverage-guided campaign generation and the corpus store:
   merge-law and monotonicity properties of the coverage domain, validity of
   structural mutations, byte-identical corpus evolution across job counts,
   the sabotage acceptance gate ("coverage finds it, random provably misses
   it" at the same trial budget), machine-code text round-tripping under
   pair neutralization, the golden druzhba-coverage/1 report fixture, and
   schema-version rejection in every consumer.

   Regenerating the golden fixture after an *intended* report change:

     GOLDEN_UPDATE=$PWD/test/golden dune exec test/test_coverage.exe *)

module Prng = Druzhba_util.Prng
module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Names = Druzhba_pipeline.Names
module Atoms = Druzhba_atoms.Atoms
module Traffic = Druzhba_dsim.Traffic
module Entries = Druzhba_drmt.Entries
module Fuzz = Druzhba_fuzz.Fuzz
module Spec = Druzhba_spec.Spec
module Codegen = Druzhba_compiler.Codegen
module Report = Druzhba_campaign.Report
module Coverage = Druzhba_campaign.Coverage
module Corpus = Druzhba_campaign.Corpus
module Sabotage = Druzhba_campaign.Sabotage
module Oracle = Druzhba_campaign.Oracle
module Campaign = Druzhba_campaign.Campaign

(* --- Generators ----------------------------------------------------------------- *)

(* Random coverage values over a small feature alphabet, so that unions,
   intersections and duplicates all actually occur. *)
let coverage_gen =
  let feature =
    QCheck.Gen.map
      (fun (c, i) -> Printf.sprintf "%s:shape:alu%d" c i)
      (QCheck.Gen.pair
         (QCheck.Gen.oneofl [ "branch"; "latch"; "mux"; "mcclass"; "alupath" ])
         (QCheck.Gen.int_range 0 9))
  in
  QCheck.make
    ~print:(fun t -> String.concat "," (Coverage.features t))
    (QCheck.Gen.map Coverage.of_list (QCheck.Gen.list_size (QCheck.Gen.int_range 0 12) feature))

(* The campaign's own parameter pools, in miniature. *)
let draw_rmt prng =
  let depth = 1 + Prng.int prng 2 in
  let width = 1 + Prng.int prng 2 in
  let bits = [| 8; 16; 32 |].(Prng.int prng 3) in
  let stateful = [| "raw"; "sub"; "if_else_raw"; "pair" |].(Prng.int prng 4) in
  let desc =
    Dgen.generate
      (Dgen.config ~depth ~width ~bits ())
      ~stateful:(Atoms.find_exn stateful) ~stateless:(Atoms.find_exn "stateless_full")
  in
  (desc, bits)

(* --- Coverage domain: merge laws and monotonicity -------------------------------- *)

let qcheck_union_commutative =
  QCheck.Test.make ~name:"coverage union is commutative" ~count:200
    (QCheck.pair coverage_gen coverage_gen)
    (fun (a, b) -> Coverage.equal (Coverage.union a b) (Coverage.union b a))

let qcheck_union_associative =
  QCheck.Test.make ~name:"coverage union is associative" ~count:200
    (QCheck.triple coverage_gen coverage_gen coverage_gen)
    (fun (a, b, c) ->
      Coverage.equal
        (Coverage.union (Coverage.union a b) c)
        (Coverage.union a (Coverage.union b c)))

let qcheck_union_idempotent =
  QCheck.Test.make ~name:"coverage union is idempotent" ~count:200 coverage_gen (fun a ->
      Coverage.equal (Coverage.union a a) a)

(* Accumulating trial coverage never shrinks the map, and the novelty score
   is exactly the cardinal growth the merge will produce — the invariant the
   block loop's admission logic rests on. *)
let qcheck_accumulation_monotone =
  QCheck.Test.make ~name:"coverage accumulation is monotone, novel = growth" ~count:200
    (QCheck.pair coverage_gen (QCheck.list_of_size (QCheck.Gen.int_range 0 6) coverage_gen))
    (fun (acc0, trials) ->
      let _ =
        List.fold_left
          (fun acc t ->
            let merged = Coverage.union acc t in
            if Coverage.cardinal merged < Coverage.cardinal acc then
              QCheck.Test.fail_report "merge shrank the coverage map";
            if Coverage.cardinal merged <> Coverage.cardinal acc + Coverage.novel ~existing:acc t
            then QCheck.Test.fail_report "novelty score does not match merge growth";
            merged)
          acc0 trials
      in
      true)

(* --- Per-trial collection ---------------------------------------------------------- *)

let test_rmt_trial_coverage () =
  let prng = Prng.create 11 in
  let desc, bits = draw_rmt prng in
  let mc = Fuzz.random_mc prng desc in
  let inputs = Traffic.phvs (Traffic.create ~seed:3 ~width:desc.Ir.d_width ~bits) 20 in
  let shape = "test-shape" in
  let cov = Coverage.of_rmt_trial ~shape ~desc ~mc ~inputs () in
  Alcotest.(check bool) "coverage is non-empty" false (Coverage.is_empty cov);
  let classes = List.map fst (Coverage.classes cov) in
  List.iter
    (fun cls ->
      Alcotest.(check bool) (cls ^ " class present") true (List.mem cls classes))
    [ "alupath"; "mcclass"; "mux" ];
  (* collection is a pure replay: same trial, same features *)
  let again = Coverage.of_rmt_trial ~shape ~desc ~mc ~inputs () in
  Alcotest.(check bool) "collection is deterministic" true (Coverage.equal cov again)

(* --- Mutation validity ------------------------------------------------------------- *)

(* Every RMT mutant must pass machine-code validation: selector values stay
   in their [0, n) domains and immediates are width values — by
   construction, over chains of mutations, from any starting point. *)
let qcheck_mutants_validate =
  QCheck.Test.make ~name:"RMT corpus mutants always pass validate" ~count:150
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let prng = Prng.create seed in
      let desc, bits = draw_rmt prng in
      let domains = Ir.control_domains desc in
      let mc = ref (Fuzz.random_mc prng desc) in
      for _ = 1 to 3 do
        match Corpus.mutate_rmt prng ~domains ~bits !mc with
        | None -> ()
        | Some (op, mc') -> (
          match Machine_code.validate ~domains mc' with
          | Ok () -> mc := mc'
          | Error violations ->
            QCheck.Test.fail_reportf "%s produced invalid machine code: %a" op
              Fmt.(list ~sep:(any ", ") Machine_code.pp_violation)
              violations)
      done;
      true)

(* dRMT mutants stay within the trial generator's feasibility envelope:
   table count bounded, and every entry names a table and action of the
   (possibly grown) program. *)
let qcheck_drmt_mutants_wellformed =
  QCheck.Test.make ~name:"dRMT corpus mutants stay well-formed" ~count:150
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let prng = Prng.create seed in
      let tables = 1 + Prng.int prng 4 in
      let entries =
        List.init (Prng.int prng 6) (fun _ -> Corpus.fresh_entry prng ~tables)
      in
      match Corpus.mutate_drmt prng ~tables ~entries with
      | None -> true
      | Some (_, tables', entries') ->
        tables' >= tables
        && tables' <= Corpus.max_drmt_tables
        && List.for_all
             (fun (e : Entries.entry) ->
               List.exists
                 (fun i ->
                   e.Entries.en_table = "t" ^ string_of_int i
                   && e.Entries.en_action = "act" ^ string_of_int i)
                 (List.init tables' Fun.id))
             entries')

(* --- Corpus evolution: byte-identical across job counts ----------------------------- *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let replace_all ~sub ~by s =
  let buf = Buffer.create (String.length s) in
  let n = String.length sub in
  let i = ref 0 in
  while !i < String.length s do
    if !i + n <= String.length s && String.sub s !i n = sub then (
      Buffer.add_string buf by;
      i := !i + n)
    else (
      Buffer.add_char buf s.[!i];
      incr i)
  done;
  Buffer.contents buf

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rm_rf dir =
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir

let read_file path = In_channel.with_open_bin path In_channel.input_all

let dir_contents dir =
  let files = Sys.readdir dir in
  Array.sort compare files;
  Array.to_list files |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let test_corpus_identical_across_jobs () =
  let run jobs =
    let dir = temp_dir "druzhba-corpus" in
    let cfg =
      Campaign.config ~trials:48 ~jobs ~phvs:10 ~substrate:"all" ~checkpoint_every:8
        ~coverage:true ~corpus_dir:dir ()
    in
    let report = Campaign.run cfg in
    let corpus = dir_contents dir in
    rm_rf dir;
    (Campaign.to_json report, corpus)
  in
  let json1, corpus1 = run 1 in
  let json2, corpus2 = run 2 in
  let json4, corpus4 = run 4 in
  Alcotest.(check string) "report json: jobs 2 = jobs 1" json1 json2;
  Alcotest.(check string) "report json: jobs 4 = jobs 1" json1 json4;
  Alcotest.(check (list (pair string string))) "corpus: jobs 2 = jobs 1" corpus1 corpus2;
  Alcotest.(check (list (pair string string))) "corpus: jobs 4 = jobs 1" corpus1 corpus4;
  (* the evolved corpus actually contains structural mutants *)
  (match Report.parse json1 with
  | Error e -> Alcotest.fail e
  | Ok j -> (
    match Option.bind (Report.member "coverage" j) (Report.member "corpus") with
    | None -> Alcotest.fail "report lacks a coverage.corpus section"
    | Some c ->
      let geti k = Option.get (Option.bind (Report.member k c) Report.to_int) in
      Alcotest.(check bool) "corpus is populated" true (geti "entries" > 0);
      Alcotest.(check bool) "corpus holds mutants" true (geti "mutated" > 0)))

let test_corpus_save_load_roundtrip () =
  let dir = temp_dir "druzhba-corpus-rt" in
  let cfg =
    Campaign.config ~trials:32 ~jobs:2 ~phvs:10 ~substrate:"all" ~checkpoint_every:8
      ~coverage:true ~corpus_dir:dir ()
  in
  let report = Campaign.run cfg in
  (match (Corpus.load dir, report.Campaign.r_coverage) with
  | Error e, _ -> Alcotest.fail e
  | _, None -> Alcotest.fail "coverage campaign produced no coverage stats"
  | Ok loaded, Some cv ->
    Alcotest.(check int) "master seed survives" cfg.Campaign.c_master_seed
      loaded.Corpus.ld_master_seed;
    Alcotest.(check int) "entry count survives" cv.Campaign.cv_corpus_entries
      (List.length loaded.Corpus.ld_entries);
    Alcotest.(check int) "feature list survives"
      (Coverage.cardinal cv.Campaign.cv_coverage)
      (List.length loaded.Corpus.ld_features));
  rm_rf dir

(* --- Mode guards -------------------------------------------------------------------- *)

let test_mode_guards () =
  Alcotest.check_raises "corpus dir requires coverage"
    (Invalid_argument "Campaign.config: corpus_dir requires coverage mode") (fun () ->
      ignore (Campaign.config ~corpus_dir:"/tmp/x" ()));
  let cfg = Campaign.config ~trials:4 ~coverage:true () in
  Alcotest.check_raises "coverage refuses checkpointing"
    (Invalid_argument
       "Campaign.run_resumable: coverage mode is incompatible with checkpoint/resume")
    (fun () -> ignore (Campaign.run_resumable ~checkpoint:"/tmp/ck.json" cfg))

(* --- The sabotage acceptance gate ----------------------------------------------------

   A planted optimizer bug whose trigger needs an all-ones immediate on a
   >8-bit datapath.  Uniform-random machine code draws immediates at most 8
   bits wide, so the trigger is structurally unreachable by random
   generation at ANY budget; the corpus's boundary-nudge mutation produces
   exactly such values.  Both halves are pinned at the same trial budget
   with the same deterministic seeds. *)

let gate_budget = 2000
let gate_phvs = 20

let coverage_gate_report =
  lazy
    (Campaign.run
       (Campaign.config ~trials:gate_budget ~jobs:2 ~phvs:gate_phvs ~substrate:"rmt"
          ~checkpoint_every:16 ~coverage:true ~sabotage_pass:true ()))

let test_sabotage_coverage_finds () =
  let report = Lazy.force coverage_gate_report in
  Alcotest.(check bool) "coverage mode found the planted divergence" true
    (report.Campaign.r_divergent > 0);
  let first =
    List.find
      (fun (t : Campaign.trial) ->
        match t.Campaign.t_outcome with
        | Campaign.Finished (Oracle.Divergence _) -> true
        | _ -> false)
      report.Campaign.r_trials
  in
  Alcotest.(check bool) "found within the trial budget" true
    (first.Campaign.t_index < gate_budget);
  (* the finding is a corpus mutant, not a lucky fresh draw *)
  match first.Campaign.t_origin with
  | Some (Corpus.Mutated { op; _ }) ->
    Alcotest.(check string) "found through boundary nudging" "boundary_nudge" op
  | _ -> Alcotest.fail "divergent trial did not originate from a corpus mutation"

let test_sabotage_random_misses () =
  let report =
    Campaign.run
      (Campaign.config ~trials:gate_budget ~jobs:2 ~phvs:gate_phvs ~substrate:"rmt"
         ~sabotage_pass:true ())
  in
  Alcotest.(check int) "uniform random misses at the same budget" 0
    report.Campaign.r_divergent;
  Alcotest.(check int) "every random trial agrees" gate_budget report.Campaign.r_agree

(* The shrunk counterexample replays: with the sabotaged pass the minimized
   (inputs, machine code) still diverge across substrates, and without it
   the same material agrees — the bug lives in the pass, not the program. *)
let test_sabotage_shrunk_replay () =
  let report = Lazy.force coverage_gate_report in
  let first =
    List.find
      (fun (t : Campaign.trial) ->
        match t.Campaign.t_outcome with
        | Campaign.Finished (Oracle.Divergence _) -> true
        | _ -> false)
      report.Campaign.r_trials
  in
  match (first.Campaign.t_params, first.Campaign.t_shrunk) with
  | Campaign.Drmt_params _, _ -> Alcotest.fail "sabotaged pass flagged a dRMT trial"
  | Campaign.Native_params _, _ -> Alcotest.fail "sabotaged pass flagged a native trial"
  | _, None -> Alcotest.fail "divergent trial was not shrunk"
  | Campaign.Rmt_params { depth; width; bits; stateful; stateless }, Some s ->
    let desc =
      Dgen.generate
        (Dgen.config ~depth ~width ~bits ())
        ~stateful:(Atoms.find_exn stateful) ~stateless:(Atoms.find_exn stateless)
    in
    let mc = s.Druzhba_campaign.Shrink.sh_mc in
    let inputs = s.Druzhba_campaign.Shrink.sh_inputs in
    Alcotest.(check bool) "shrunk machine code still triggers" true
      (Sabotage.trigger ~desc ~mc);
    (match Oracle.check ~transform:(Sabotage.transform ~mc) ~desc ~mc ~inputs () with
    | Oracle.Divergence _ -> ()
    | o -> Alcotest.failf "shrunk replay under the sabotaged pass: %a" Oracle.pp_outcome o);
    match Oracle.check ~desc ~mc ~inputs () with
    | Oracle.Agree _ -> ()
    | o -> Alcotest.failf "shrunk replay without the pass: %a" Oracle.pp_outcome o

(* --- Machine-code round-trip under neutralization ------------------------------------

   Shrink minimizes counterexamples by neutralizing pairs to 0, and the
   corpus runs that operation in reverse; both paths serialize machine code
   through the text format.  Round-tripping must be exact for every Table-1
   program and every single-pair neutralization of it — and names the text
   format cannot represent must be rejected at construction, not silently
   corrupted on the way back in. *)

let mc_equal a b =
  List.sort compare (Machine_code.to_alist a) = List.sort compare (Machine_code.to_alist b)

let roundtrip name mc =
  match Machine_code.parse (Machine_code.to_string mc) with
  | Error e -> Alcotest.failf "%s: round-trip parse failed: %s" name e
  | Ok back ->
    if not (mc_equal mc back) then Alcotest.failf "%s: round-trip changed the machine code" name

let test_roundtrip_table1 () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      let mc = compiled.Codegen.c_mc in
      roundtrip bm.Spec.bm_name mc;
      (* every single-pair neutralization, as Shrink would emit it *)
      List.iter
        (fun (pair, _) ->
          let neutralized = Machine_code.copy mc in
          Machine_code.set neutralized pair 0;
          roundtrip (bm.Spec.bm_name ^ "/" ^ pair) neutralized)
        (Machine_code.to_alist mc))
    Spec.all

let test_unrepresentable_names_rejected () =
  List.iter
    (fun bad ->
      (match Machine_code.of_pairs [ (bad, 1) ] with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "of_pairs accepted unrepresentable name %S" bad);
      (match Machine_code.of_list [ (bad, 1) ] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "of_list accepted unrepresentable name %S" bad);
      let mc = Machine_code.empty () in
      match Machine_code.set mc bad 1 with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.failf "set accepted unrepresentable name %S" bad)
    [ ""; " leading"; "trailing "; "has=sign"; "has#hash"; "has\nnewline"; "\ttabbed" ];
  (* names with interior spaces are representable and must keep working *)
  match Machine_code.of_pairs [ ("interior space", 7) ] with
  | Ok mc -> roundtrip "interior-space name" mc
  | Error e -> Alcotest.failf "of_pairs rejected a representable name: %s" e

(* --- Report section and schema versioning -------------------------------------------- *)

let test_summary_json_roundtrip () =
  let s =
    {
      Coverage.sm_features = 12;
      sm_classes = [ ("branch", 5); ("mux", 7) ];
      sm_novel_trials = 4;
      sm_corpus_entries = 3;
      sm_corpus_fresh = 2;
      sm_corpus_mutated = 1;
    }
  in
  match Coverage.summary_of_json (Coverage.summary_json s) with
  | Error e -> Alcotest.fail e
  | Ok back -> Alcotest.(check bool) "summary round-trips" true (s = back)

let test_unknown_coverage_schema_rejected () =
  let s =
    {
      Coverage.sm_features = 1;
      sm_classes = [];
      sm_novel_trials = 0;
      sm_corpus_entries = 0;
      sm_corpus_fresh = 0;
      sm_corpus_mutated = 0;
    }
  in
  let tampered =
    match Coverage.summary_json s with
    | Report.Obj fields ->
      Report.Obj
        (List.map
           (function
             | "schema", _ -> ("schema", Report.Str "druzhba-coverage/2")
             | f -> f)
           fields)
    | _ -> Alcotest.fail "summary_json is not an object"
  in
  match Coverage.summary_of_json tampered with
  | Ok _ -> Alcotest.fail "consumer accepted an unknown coverage schema"
  | Error msg ->
    Alcotest.(check bool) "error names both schemas" true
      (contains_sub ~sub:"druzhba-coverage/2" msg
      && contains_sub ~sub:"druzhba-coverage/1" msg)

(* The corpus loader refuses both an unknown manifest schema and an unknown
   coverage-section schema inside an otherwise-valid manifest. *)
let test_corpus_loader_rejects_unknown_schemas () =
  let dir = temp_dir "druzhba-corpus-schema" in
  let cfg =
    Campaign.config ~trials:16 ~phvs:5 ~checkpoint_every:8 ~coverage:true ~corpus_dir:dir ()
  in
  ignore (Campaign.run cfg);
  let manifest = Filename.concat dir "corpus.json" in
  let original = read_file manifest in
  let tamper sub by =
    Out_channel.with_open_bin manifest (fun oc ->
        Out_channel.output_string oc (replace_all ~sub ~by original))
  in
  tamper "druzhba-coverage/1" "druzhba-coverage/2";
  (match Corpus.load dir with
  | Ok _ -> Alcotest.fail "loader accepted an unknown coverage-section schema"
  | Error msg ->
    Alcotest.(check bool) "coverage schema named" true
      (contains_sub ~sub:"druzhba-coverage/2" msg));
  tamper "druzhba-corpus/1" "druzhba-corpus/9";
  (match Corpus.load dir with
  | Ok _ -> Alcotest.fail "loader accepted an unknown manifest schema"
  | Error msg ->
    Alcotest.(check bool) "manifest schema named" true
      (contains_sub ~sub:"druzhba-corpus/9" msg));
  Out_channel.with_open_bin manifest (fun oc -> Out_channel.output_string oc original);
  (match Corpus.load dir with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pristine corpus failed to load: %s" e);
  rm_rf dir

(* --- Golden fixture -------------------------------------------------------------------

   The druzhba-coverage/1 section of a small fixed campaign, committed as
   test/golden/coverage_report.json.  Key order is emission order and
   nothing environmental appears, so the fixture pins the byte-exact
   section. *)

let golden_fixture = Filename.concat "golden" "coverage_report.json"

let golden_coverage_section () =
  let report =
    Campaign.run
      (Campaign.config ~trials:24 ~jobs:1 ~phvs:10 ~substrate:"all" ~checkpoint_every:8
         ~coverage:true ())
  in
  match Report.parse (Campaign.to_json report) with
  | Error e -> Alcotest.failf "report does not parse: %s" e
  | Ok j -> (
    match Report.member "coverage" j with
    | Some section -> Report.to_string section ^ "\n"
    | None -> Alcotest.fail "coverage campaign report lacks a coverage section")

let test_golden_coverage_report () =
  let got = golden_coverage_section () in
  let want = read_file golden_fixture in
  if got <> want then
    Alcotest.failf
      "coverage report section differs from %s (GOLDEN_UPDATE=$PWD/test/golden to regenerate):@.%s"
      golden_fixture got;
  (* and the committed fixture must satisfy its own schema contract *)
  match Result.bind (Report.parse want) Coverage.summary_of_json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "committed fixture does not decode: %s" e

let update_fixtures dir =
  let path = Filename.concat dir "coverage_report.json" in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (golden_coverage_section ()));
  Printf.printf "updated %s\n" path

(* --- Runner ---------------------------------------------------------------------------- *)

let () =
  match Sys.getenv_opt "GOLDEN_UPDATE" with
  | Some dir -> update_fixtures dir
  | None ->
    Alcotest.run "coverage"
      [
        ( "coverage domain",
          [
            QCheck_alcotest.to_alcotest qcheck_union_commutative;
            QCheck_alcotest.to_alcotest qcheck_union_associative;
            QCheck_alcotest.to_alcotest qcheck_union_idempotent;
            QCheck_alcotest.to_alcotest qcheck_accumulation_monotone;
            Alcotest.test_case "RMT trial coverage collects" `Quick test_rmt_trial_coverage;
          ] );
        ( "mutations",
          [
            QCheck_alcotest.to_alcotest qcheck_mutants_validate;
            QCheck_alcotest.to_alcotest qcheck_drmt_mutants_wellformed;
          ] );
        ( "corpus",
          [
            Alcotest.test_case "evolution byte-identical across jobs" `Quick
              test_corpus_identical_across_jobs;
            Alcotest.test_case "save/load round-trip" `Quick test_corpus_save_load_roundtrip;
            Alcotest.test_case "mode guards" `Quick test_mode_guards;
          ] );
        ( "sabotage gate",
          [
            Alcotest.test_case "coverage finds the planted bug" `Quick
              test_sabotage_coverage_finds;
            Alcotest.test_case "uniform random misses at the same budget" `Quick
              test_sabotage_random_misses;
            Alcotest.test_case "shrunk counterexample replays" `Quick
              test_sabotage_shrunk_replay;
          ] );
        ( "machine-code round-trip",
          [
            Alcotest.test_case "Table-1 programs + neutralizations" `Quick
              test_roundtrip_table1;
            Alcotest.test_case "unrepresentable names rejected" `Quick
              test_unrepresentable_names_rejected;
          ] );
        ( "report schema",
          [
            Alcotest.test_case "summary JSON round-trips" `Quick test_summary_json_roundtrip;
            Alcotest.test_case "unknown coverage schema rejected" `Quick
              test_unknown_coverage_schema_rejected;
            Alcotest.test_case "corpus loader rejects unknown schemas" `Quick
              test_corpus_loader_rejects_unknown_schemas;
            Alcotest.test_case "golden coverage_report.json" `Quick
              test_golden_coverage_report;
          ] );
      ]
