(* Tests for the Domino-subset compiler: frontend, checker, reference
   semantics, predication, atom matching, the rule-based backend, and the
   synthesis backend. *)

module Value = Druzhba_util.Value
module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Atoms = Druzhba_atoms.Atoms
module Fuzz = Druzhba_fuzz.Fuzz
module Ast = Druzhba_compiler.Ast
module Frontend = Druzhba_compiler.Frontend
module Checker = Druzhba_compiler.Checker
module Semantics = Druzhba_compiler.Semantics
module Predicate = Druzhba_compiler.Predicate
module Match_atom = Druzhba_compiler.Match_atom
module Codegen = Druzhba_compiler.Codegen
module Synth = Druzhba_compiler.Synth
module Testing = Druzhba_compiler.Testing
module Spec = Druzhba_spec.Spec

let parse = Frontend.parse

(* --- Frontend ----------------------------------------------------------------- *)

let test_parse_basic () =
  let p =
    parse
      {|
state x = 3;
state y = 0;
transaction demo {
  local t = pkt.a + x;
  if (t >= 10) { y = y + 1; } else { pkt.b = t; }
}
|}
  in
  Alcotest.(check string) "name" "demo" p.Ast.name;
  Alcotest.(check (list (pair string int))) "states" [ ("x", 3); ("y", 0) ] p.Ast.states;
  Alcotest.(check int) "stmts" 2 (List.length p.Ast.body)

let test_parse_name_precedence () =
  let p = parse ~name:"forced" "transaction declared { pkt.a = 1; }" in
  Alcotest.(check string) "caller name wins" "forced" p.Ast.name;
  let p = parse "transaction declared { pkt.a = 1; }" in
  Alcotest.(check string) "declared name" "declared" p.Ast.name

let test_parse_errors () =
  let expect_error src =
    match Frontend.parse_result src with
    | Ok _ -> Alcotest.fail ("expected parse error: " ^ src)
    | Error _ -> ()
  in
  expect_error "state x 3; transaction t { }";
  expect_error "transaction t { pkt.a = ; }";
  expect_error "transaction t { pkt.a = 1 }";
  expect_error "transaction t { if pkt.a { } }";
  expect_error "transaction t { } trailing";
  expect_error "state x = 1;"

(* --- Checker -------------------------------------------------------------------- *)

let test_checker_info () =
  let p =
    parse
      {|
state s = 0;
transaction t {
  pkt.out = pkt.a + 7;
  if (pkt.b == 1) { s = s + pkt.out; }
}
|}
  in
  let info = Checker.analyze_exn p in
  Alcotest.(check (list string)) "inputs" [ "a"; "b" ] info.Checker.input_fields;
  Alcotest.(check (list string)) "outputs" [ "out" ] info.Checker.output_fields;
  Alcotest.(check bool) "constants include 7" true (List.mem 7 info.Checker.constants);
  Alcotest.(check bool) "constants include 0 and 1" true
    (List.mem 0 info.Checker.constants && List.mem 1 info.Checker.constants)

let test_checker_rejects () =
  let expect_invalid src =
    match Checker.analyze (parse src) with
    | Ok _ -> Alcotest.fail ("expected checker error: " ^ src)
    | Error _ -> ()
  in
  expect_invalid "transaction t { x = 1; }";
  expect_invalid "transaction t { pkt.a = undeclared; }";
  expect_invalid "state s = 0; transaction t { local s = 1; pkt.a = s; }";
  expect_invalid "transaction t { local l = 1; local l = 2; pkt.a = l; }"

let test_field_written_then_read_not_input () =
  let p = parse "transaction t { pkt.a = 1; pkt.b = pkt.a; }" in
  let info = Checker.analyze_exn p in
  Alcotest.(check (list string)) "no inputs" [] info.Checker.input_fields

(* --- Semantics vs hand-written references ----------------------------------------- *)

(* Cross-validation of the Domino interpreter against the independently
   written OCaml references, for every Table-1 benchmark, over random
   packet sequences. *)
let test_semantics_vs_reference () =
  let bits = 32 in
  List.iter
    (fun (bm : Spec.benchmark) ->
      let program = Spec.program bm in
      let info = Checker.analyze_exn program in
      let prng = Prng.create 99 in
      let state_tbl = Semantics.initial_state ~bits program in
      let ref_state =
        Array.of_list (List.map (fun (_, init) -> Value.mask bits init) program.Ast.states)
      in
      for _ = 1 to 500 do
        let inputs =
          List.map (fun f -> (f, Prng.bits prng bits)) info.Checker.input_fields
        in
        (* interpreter *)
        let fields = Hashtbl.create 8 in
        List.iter (fun (f, v) -> Hashtbl.replace fields f v) inputs;
        Semantics.run_transaction ~bits program ~state:state_tbl ~fields;
        (* reference *)
        let ref_outputs = bm.Spec.bm_reference ~bits ref_state inputs in
        List.iter
          (fun (f, expected) ->
            Alcotest.(check int)
              (Printf.sprintf "%s: output %s" bm.Spec.bm_name f)
              expected (Hashtbl.find fields f))
          ref_outputs;
        List.iteri
          (fun i (v, _) ->
            Alcotest.(check int)
              (Printf.sprintf "%s: state %s" bm.Spec.bm_name v)
              ref_state.(i) (Hashtbl.find state_tbl v))
          program.Ast.states
      done)
    Spec.all

(* --- Predication -------------------------------------------------------------------- *)

let predicate src = Predicate.predicate ~bits:32 (parse src)

let test_predicate_unconditional () =
  let p = predicate "state s = 0; transaction t { s = s + 1; }" in
  match p.Predicate.state_updates with
  | [ ("s", Predicate.SBin (Ast.Add, Predicate.SState "s", Predicate.SInt 1)) ] -> ()
  | _ -> Alcotest.fail "unexpected update"

let test_predicate_conditional () =
  let p =
    predicate "state s = 0; transaction t { if (pkt.a == 1) { s = s + 1; } }"
  in
  match p.Predicate.state_updates with
  | [
   ( "s",
     Predicate.SCond
       ( Predicate.SBin (Ast.Eq, Predicate.SIn "a", Predicate.SInt 1),
         Predicate.SBin (Ast.Add, Predicate.SState "s", Predicate.SInt 1),
         Predicate.SState "s" ) );
  ] ->
    ()
  | _ -> Alcotest.fail "unexpected conditional update"

let test_predicate_sequencing () =
  (* reads after writes see the written value *)
  let p = predicate "state s = 0; transaction t { s = s + 1; pkt.out = s; }" in
  let update = List.assoc "s" p.Predicate.state_updates in
  let out = List.assoc "out" p.Predicate.field_updates in
  Alcotest.(check bool) "pkt.out sees the new state" true (Predicate.equal_sexpr update out)

let test_predicate_lt_normalization () =
  (* strict comparisons in guards are rewritten by swapping arms *)
  let p =
    predicate "state s = 0; transaction t { if (pkt.a < 5) { s = 1; } else { s = 2; } }"
  in
  match List.assoc "s" p.Predicate.state_updates with
  | Predicate.SCond (Predicate.SBin (Ast.Ge, Predicate.SIn "a", Predicate.SInt 5), Predicate.SInt 2, Predicate.SInt 1)
    -> ()
  | e -> Alcotest.failf "unexpected guard normalization: %s" (Predicate.show_sexpr e)

let test_predicate_folding () =
  let p = predicate "state s = 0; transaction t { if (1 == 1) { s = 2 + 3; } }" in
  match p.Predicate.state_updates with
  | [ ("s", Predicate.SInt 5) ] -> ()
  | _ -> Alcotest.fail "constant folding failed"

let test_predicate_elif () =
  let p =
    predicate
      {|
state s = 0;
transaction t {
  if (pkt.a == 0) { s = 1; }
  elif (pkt.a == 1) { s = 2; }
  else { s = 3; }
}
|}
  in
  match List.assoc "s" p.Predicate.state_updates with
  | Predicate.SCond (_, Predicate.SInt 1, Predicate.SCond (_, Predicate.SInt 2, Predicate.SInt 3))
    -> ()
  | e -> Alcotest.failf "unexpected elif lowering: %s" (Predicate.show_sexpr e)

(* --- Atom matching -------------------------------------------------------------------- *)

let match_on atom src =
  let p = predicate src in
  Match_atom.match_group ~bits:32 ~atom:(Atoms.find_exn atom) ~updates:p.Predicate.state_updates

let test_match_raw_accumulator () =
  match match_on "raw" "state s = 0; transaction t { s = s + pkt.a; }" with
  | Some { Match_atom.r_binding; r_slots } ->
    Alcotest.(check (list (pair string int))) "slots" [ ("s", 0) ] r_slots;
    Alcotest.(check bool) "pkt_0 bound to input a" true
      (List.mem_assoc "pkt_0" r_binding.Match_atom.b_fields)
  | None -> Alcotest.fail "raw should accumulate"

let test_match_raw_immediate () =
  match match_on "raw" "state s = 0; transaction t { s = s + 3; }" with
  | Some { Match_atom.r_binding; _ } ->
    Alcotest.(check (option int)) "mux selects C()" (Some 1)
      (List.assoc_opt "mux2_0" r_binding.Match_atom.b_slots);
    Alcotest.(check (option int)) "const is 3" (Some 3)
      (List.assoc_opt "const_0" r_binding.Match_atom.b_slots)
  | None -> Alcotest.fail "raw should add an immediate"

let test_match_raw_rejects_conditional () =
  match match_on "raw" "state s = 0; transaction t { if (pkt.a == 1) { s = s + 1; } }" with
  | Some _ -> Alcotest.fail "raw has no predication"
  | None -> ()

let test_match_pred_raw_identity_else () =
  match
    match_on "pred_raw" "state s = 0; transaction t { if (s <= pkt.a) { s = s + pkt.a; } }"
  with
  | Some _ -> ()
  | None -> Alcotest.fail "pred_raw should match a guarded accumulate"

let test_match_if_else_raw_two_arms () =
  match
    match_on "if_else_raw"
      "state s = 0; transaction t { if (s == 9) { s = 0; } else { s = s + 1; } }"
  with
  | Some _ -> ()
  | None -> Alcotest.fail "if_else_raw should match the sampling update"

let test_match_pair_two_states () =
  match
    match_on "pair"
      {|
state hi = 0;
state cnt = 0;
transaction t {
  if (pkt.v >= hi) { hi = pkt.v; cnt = cnt + 1; }
}
|}
  with
  | Some { Match_atom.r_slots; _ } ->
    Alcotest.(check int) "two slots" 2 (List.length r_slots)
  | None -> Alcotest.fail "pair should hold two interdependent states"

let test_match_sub_direction () =
  (match match_on "sub" "state s = 0; transaction t { s = s - pkt.a; }" with
  | Some { Match_atom.r_binding; _ } ->
    Alcotest.(check (option int)) "subtract opcode" (Some 1)
      (List.assoc_opt "arith_op_0" r_binding.Match_atom.b_slots)
  | None -> Alcotest.fail "sub should subtract");
  match match_on "sub" "state s = 0; transaction t { s = s + pkt.a; }" with
  | Some { Match_atom.r_binding; _ } ->
    Alcotest.(check (option int)) "add opcode" (Some 0)
      (List.assoc_opt "arith_op_0" r_binding.Match_atom.b_slots)
  | None -> Alcotest.fail "sub should add"

let test_match_cross_group_guard () =
  (* the guard reads another group's state: legal as a packet operand *)
  match
    match_on "pred_raw"
      {|
state a = 0;
state b = 0;
transaction t {
  if (pkt.x >= 1) { a = a + 1; }
  if (a == 0) { b = b + 1; }
}
|}
  with
  | Some _ -> Alcotest.fail "two separate groups cannot share one single-state match call"
  | None -> () (* match_group is per group; joint matching must fail on 1-state atom *)

(* --- Rule-based backend ------------------------------------------------------------------ *)

let compile_bm (bm : Spec.benchmark) = Spec.compile bm

let test_all_benchmarks_compile () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      match compile_bm bm with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s failed to compile: %s" bm.Spec.bm_name e)
    Spec.all

let test_all_benchmarks_fuzz_pass () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      match Testing.check ~n:500 compiled with
      | Fuzz.Pass _ -> ()
      | o -> Alcotest.failf "%s: %a" bm.Spec.bm_name Fuzz.pp_outcome o)
    Spec.all

let test_fuzz_pass_all_levels () =
  let compiled = Spec.compile_exn (Spec.find_exn "sampling") in
  List.iter
    (fun level ->
      match Testing.check ~level ~n:300 compiled with
      | Fuzz.Pass _ -> ()
      | o -> Alcotest.failf "sampling at %s: %a" (Druzhba_optimizer.Optimizer.level_name level) Fuzz.pp_outcome o)
    Druzhba_optimizer.Optimizer.[ Unoptimized; Scc; Scc_inline ]

let small_target ?(depth = 2) ?(width = 2) ?(bits = 32) ?(atom = "if_else_raw") () =
  Codegen.target ~depth ~width ~bits ~stateful:(Atoms.find_exn atom)
    ~stateless:(Atoms.find_exn "stateless_full") ()

let test_compile_does_not_fit_depth () =
  (* needs a stateless stage after the stateful one; depth 1 cannot *)
  let src = "state s = 0; transaction t { s = s + 1; pkt.out = s == 3; }" in
  match Codegen.compile ~target:(small_target ~depth:1 ~width:2 ()) (parse src) with
  | Error e ->
    Alcotest.(check bool) "mentions fit" true
      (String.length e > 0 && String.length e < 500)
  | Ok _ -> Alcotest.fail "expected depth overflow"

let test_compile_rejects_multiplication () =
  let src = "state s = 0; transaction t { pkt.out = pkt.a * 2; s = s + 1; }" in
  match Codegen.compile ~target:(small_target ()) (parse src) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected multiply rejection"

let test_compile_rejects_general_conditional_value () =
  let src =
    "state s = 0; transaction t { if (pkt.a == 1) { pkt.out = 7; } else { pkt.out = 3; } s = s \
     + 1; }"
  in
  match Codegen.compile ~target:(small_target ()) (parse src) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected conditional-value rejection"

let test_compile_too_many_live_values () =
  (* width 1 cannot hold two inputs *)
  let src = "state s = 0; transaction t { s = s + 1; pkt.out = pkt.a + pkt.b; }" in
  match Codegen.compile ~target:(small_target ~depth:3 ~width:1 ()) (parse src) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected container overflow"

let test_layout_consistency () =
  let compiled = Spec.compile_exn (Spec.find_exn "flowlets") in
  let l = compiled.Codegen.c_layout in
  (* input and output containers are within the width *)
  let width = compiled.Codegen.c_target.Codegen.t_width in
  List.iter
    (fun (_, c) -> Alcotest.(check bool) "input container in range" true (c >= 0 && c < width))
    l.Codegen.l_inputs;
  List.iter
    (fun (_, c) -> Alcotest.(check bool) "output container in range" true (c >= 0 && c < width))
    l.Codegen.l_outputs;
  (* every state var is mapped and has an init vector *)
  List.iter
    (fun (v, (alu, _)) ->
      Alcotest.(check bool) ("init for " ^ v) true (List.mem_assoc alu l.Codegen.l_init))
    l.Codegen.l_state

let test_machine_code_is_complete () =
  (* the rule-based backend always emits every pair the pipeline needs, with
     every selector inside its control domain *)
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      match
        Machine_code.validate
          ~domains:(Druzhba_pipeline.Ir.control_domains compiled.Codegen.c_desc)
          compiled.Codegen.c_mc
      with
      | Ok () -> ()
      | Error violations ->
        Alcotest.failf "%s: %a" bm.Spec.bm_name
          Fmt.(list ~sep:comma Machine_code.pp_violation)
          violations)
    Spec.all

(* qcheck: compiled pipelines agree with the reference on random variants *)
let prop_variants_pass =
  QCheck.Test.make ~name:"benchmark variants pass fuzzing" ~count:12
    QCheck.(pair (int_range 2 60) (int_range 0 6))
    (fun (param, which) ->
      let with_variant =
        List.filter (fun (bm : Spec.benchmark) -> bm.Spec.bm_variant <> None) Spec.all
      in
      let bm = List.nth with_variant (which mod List.length with_variant) in
      let source = (Option.get bm.Spec.bm_variant) param in
      match Codegen.compile ~target:(Spec.target bm) (parse source) with
      | Error e -> QCheck.Test.fail_reportf "%s[%d]: %s" bm.Spec.bm_name param e
      | Ok compiled -> (
        match Testing.check ~n:300 compiled with
        | Fuzz.Pass _ -> true
        | o -> QCheck.Test.fail_reportf "%s[%d]: %a" bm.Spec.bm_name param Fuzz.pp_outcome o))

(* --- Printer --------------------------------------------------------------------------------- *)

module Printer = Druzhba_compiler.Printer

let test_printer_roundtrip_benchmarks () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let program = Spec.program bm in
      let printed = Printer.to_string program in
      match Frontend.parse_result printed with
      | Error e -> Alcotest.failf "%s: reparse failed: %s" bm.Spec.bm_name e
      | Ok reparsed ->
        Alcotest.(check bool) (bm.Spec.bm_name ^ " roundtrips") true (Ast.equal_program program reparsed))
    Spec.all

(* Random programs for the print/parse roundtrip property. *)
let gen_domino : Ast.program QCheck.Gen.t =
  let open QCheck.Gen in
  let field = oneofl [ "a"; "b"; "c" ] in
  let state_var = oneofl [ "s"; "t" ] in
  let rec gen_expr depth =
    if depth = 0 then
      oneof
        [
          map (fun n -> Ast.Int n) (int_bound 100);
          map (fun f -> Ast.Field f) field;
          map (fun v -> Ast.Var v) state_var;
        ]
    else
      frequency
        [
          (2, gen_expr 0);
          ( 3,
            map2
              (fun op (a, b) -> Ast.Binop (op, a, b))
              (oneofl Ast.[ Add; Sub; Mul; Div; Mod; Eq; Neq; Lt; Gt; Le; Ge; And; Or ])
              (pair (gen_expr (depth - 1)) (gen_expr (depth - 1))) );
          (1, map2 (fun op a -> Ast.Unop (op, a)) (oneofl Ast.[ Neg; Not ]) (gen_expr (depth - 1)));
        ]
  in
  let gen_assign =
    oneof
      [
        map2 (fun f e -> Ast.Assign (Ast.Lfield f, e)) (oneofl [ "x"; "y" ]) (gen_expr 2);
        map2 (fun v e -> Ast.Assign (Ast.Lvar v, e)) state_var (gen_expr 2);
      ]
  in
  let gen_stmt =
    frequency
      [
        (3, gen_assign);
        ( 1,
          map2
            (fun c (a, b) -> Ast.If ([ (c, [ a ]) ], [ b ]))
            (gen_expr 1) (pair gen_assign gen_assign) );
      ]
  in
  let* body = list_size (int_range 1 5) gen_stmt in
  return { Ast.name = "gen"; states = [ ("s", 0); ("t", 3) ]; body }

let prop_domino_roundtrip =
  QCheck.Test.make ~name:"parse (print program) = program" ~count:300
    (QCheck.make ~print:Printer.to_string gen_domino)
    (fun program ->
      match Frontend.parse_result (Printer.to_string program) with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok reparsed -> Ast.equal_program program reparsed)

(* Printing then recompiling produces equivalent machine code behaviour. *)
let test_printer_preserves_compilation () =
  List.iter
    (fun name ->
      let bm = Spec.find_exn name in
      let reparsed = Frontend.parse ~name (Printer.to_string (Spec.program bm)) in
      match Codegen.compile ~target:(Spec.target bm) reparsed with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok compiled -> (
        match Testing.check ~n:300 compiled with
        | Fuzz.Pass _ -> ()
        | o -> Alcotest.failf "%s: %a" name Fuzz.pp_outcome o))
    [ "sampling"; "flowlets"; "conga" ]

(* --- Synthesis backend ---------------------------------------------------------------------- *)

let synth_problem ?(bits = 10) ?(synth_bits = 10) ?(budget = 200_000) src =
  {
    Synth.p_program = parse src;
    p_target =
      Codegen.target ~depth:1 ~width:1 ~bits ~stateful:(Atoms.find_exn "pair")
        ~stateless:(Atoms.find_exn "stateless_full") ();
    p_synth_bits = synth_bits;
    p_examples = 16;
    p_budget = budget;
    p_seed = 42;
  }

let test_synth_finds_accumulator () =
  match Synth.synthesize (synth_problem "state s = 0; transaction t { s = s + pkt.a; }") with
  | Synth.Synthesized compiled -> (
    match Testing.check ~n:1000 compiled with
    | Fuzz.Pass _ -> ()
    | o -> Alcotest.failf "synthesized accumulator wrong: %a" Fuzz.pp_outcome o)
  | Synth.Budget_exhausted { candidates } ->
    Alcotest.failf "accumulator not found in %d candidates" candidates

let test_synth_narrow_width_range_failure () =
  (* synthesize at 4 bits a kernel whose threshold needs more bits; Druzhba's
     wide verification must catch it (case-study failure class 2) *)
  let p =
    synth_problem ~synth_bits:4
      "state s = 0; transaction t { if (pkt.a >= 100) { s = s + 1; } }"
  in
  match Synth.synthesize p with
  | Synth.Synthesized compiled -> (
    match Testing.check ~n:3000 compiled with
    | Fuzz.Mismatch _ -> () (* the expected range failure *)
    | Fuzz.Pass _ -> Alcotest.fail "4-bit machine code cannot be right at 10 bits"
    | o -> Alcotest.failf "unexpected: %a" Fuzz.pp_outcome o)
  | Synth.Budget_exhausted { candidates } ->
    Alcotest.failf "narrow synthesis should succeed, gave up after %d" candidates

let test_synth_wide_width_correct () =
  (* at full width the same kernel synthesizes correctly or honestly gives up *)
  let p =
    synth_problem ~synth_bits:10 ~budget:400_000
      "state s = 0; transaction t { if (pkt.a >= 100) { s = s + 1; } }"
  in
  match Synth.synthesize p with
  | Synth.Synthesized compiled -> (
    match Testing.check ~n:2000 compiled with
    | Fuzz.Pass _ -> ()
    | o -> Alcotest.failf "verified synthesis wrong: %a" Fuzz.pp_outcome o)
  | Synth.Budget_exhausted _ -> () (* allotted-time failure, as in the paper *)

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "compiler"
    [
      ( "frontend",
        [
          Alcotest.test_case "basic program" `Quick test_parse_basic;
          Alcotest.test_case "name precedence" `Quick test_parse_name_precedence;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "checker",
        [
          Alcotest.test_case "info" `Quick test_checker_info;
          Alcotest.test_case "rejects" `Quick test_checker_rejects;
          Alcotest.test_case "written-then-read is not input" `Quick
            test_field_written_then_read_not_input;
        ] );
      ( "semantics",
        [ Alcotest.test_case "matches hand references (all 12)" `Quick test_semantics_vs_reference ]
      );
      ( "predication",
        [
          Alcotest.test_case "unconditional" `Quick test_predicate_unconditional;
          Alcotest.test_case "conditional" `Quick test_predicate_conditional;
          Alcotest.test_case "sequencing" `Quick test_predicate_sequencing;
          Alcotest.test_case "strict-comparison normalization" `Quick
            test_predicate_lt_normalization;
          Alcotest.test_case "constant folding" `Quick test_predicate_folding;
          Alcotest.test_case "elif lowering" `Quick test_predicate_elif;
        ] );
      ( "atom matching",
        [
          Alcotest.test_case "raw accumulator" `Quick test_match_raw_accumulator;
          Alcotest.test_case "raw immediate" `Quick test_match_raw_immediate;
          Alcotest.test_case "raw rejects conditional" `Quick test_match_raw_rejects_conditional;
          Alcotest.test_case "pred_raw guarded" `Quick test_match_pred_raw_identity_else;
          Alcotest.test_case "if_else_raw sampling" `Quick test_match_if_else_raw_two_arms;
          Alcotest.test_case "pair two states" `Quick test_match_pair_two_states;
          Alcotest.test_case "sub direction" `Quick test_match_sub_direction;
          Alcotest.test_case "cross-group guard" `Quick test_match_cross_group_guard;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "all 12 compile at paper dims" `Quick test_all_benchmarks_compile;
          Alcotest.test_case "all 12 pass fuzzing" `Quick test_all_benchmarks_fuzz_pass;
          Alcotest.test_case "all optimization levels pass" `Quick test_fuzz_pass_all_levels;
          Alcotest.test_case "depth overflow rejected" `Quick test_compile_does_not_fit_depth;
          Alcotest.test_case "multiply rejected" `Quick test_compile_rejects_multiplication;
          Alcotest.test_case "conditional value rejected" `Quick
            test_compile_rejects_general_conditional_value;
          Alcotest.test_case "container overflow rejected" `Quick test_compile_too_many_live_values;
          Alcotest.test_case "layout consistency" `Quick test_layout_consistency;
          Alcotest.test_case "machine code complete" `Quick test_machine_code_is_complete;
        ]
        @ qsuite [ prop_variants_pass ] );
      ( "printer",
        [
          Alcotest.test_case "benchmark roundtrips" `Quick test_printer_roundtrip_benchmarks;
          Alcotest.test_case "print-compile equivalence" `Quick test_printer_preserves_compilation;
        ]
        @ qsuite [ prop_domino_roundtrip ] );
      ( "synthesis",
        [
          Alcotest.test_case "finds accumulator" `Quick test_synth_finds_accumulator;
          Alcotest.test_case "narrow-width range failure" `Quick
            test_synth_narrow_width_range_failure;
          Alcotest.test_case "wide-width correct" `Slow test_synth_wide_width_correct;
        ] );
    ]
