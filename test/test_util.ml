(* Unit and property tests for the substrate utilities. *)

module Value = Druzhba_util.Value
module Prng = Druzhba_util.Prng
module Hashing = Druzhba_util.Hashing
module Scanner = Druzhba_util.Scanner

let check_int = Alcotest.(check int)

(* --- Value ----------------------------------------------------------------- *)

let test_mask () =
  check_int "mask 8 256" 0 (Value.mask 8 256);
  check_int "mask 8 255" 255 (Value.mask 8 255);
  check_int "mask 4 100" 4 (Value.mask 4 100);
  check_int "mask 1 3" 1 (Value.mask 1 3);
  check_int "mask 32 id" 123456789 (Value.mask 32 123456789)

let test_wraparound () =
  check_int "add wraps" 0 (Value.add 8 255 1);
  check_int "sub wraps" 255 (Value.sub 8 0 1);
  check_int "mul wraps" 0 (Value.mul 4 4 4);
  check_int "neg" 255 (Value.neg 8 1);
  check_int "neg zero" 0 (Value.neg 8 0)

let test_div_by_zero () =
  check_int "div by zero" 0 (Value.div 8 42 0);
  check_int "mod by zero" 0 (Value.rem 8 42 0);
  check_int "div" 5 (Value.div 8 10 2);
  check_int "mod" 1 (Value.rem 8 10 3)

let test_booleans () =
  check_int "eq true" 1 (Value.eq 3 3);
  check_int "eq false" 0 (Value.eq 3 4);
  check_int "ge" 1 (Value.ge 4 4);
  check_int "lt" 1 (Value.lt 3 4);
  check_int "not 0" 1 (Value.logical_not 0);
  check_int "not 7" 0 (Value.logical_not 7);
  check_int "and" 1 (Value.logical_and 2 3);
  check_int "and false" 0 (Value.logical_and 2 0);
  check_int "or" 1 (Value.logical_or 0 9);
  check_int "or false" 0 (Value.logical_or 0 0)

let test_width_validation () =
  Alcotest.check_raises "width 0" (Invalid_argument "Value.width: 0 not in 1..62") (fun () ->
      ignore (Value.width 0));
  Alcotest.check_raises "width 63" (Invalid_argument "Value.width: 63 not in 1..62") (fun () ->
      ignore (Value.width 63));
  check_int "width 32 ok" 32 (Value.width 32)

let prop_mask_idempotent =
  QCheck.Test.make ~name:"mask is idempotent" ~count:500
    QCheck.(pair (int_range 1 62) (int_bound max_int))
    (fun (bits, v) -> Value.mask bits (Value.mask bits v) = Value.mask bits v)

let prop_add_commutes =
  QCheck.Test.make ~name:"masked add commutes" ~count:500
    QCheck.(triple (int_range 1 62) (int_bound max_int) (int_bound max_int))
    (fun (bits, a, b) -> Value.add bits a b = Value.add bits b a)

let prop_sub_add_roundtrip =
  QCheck.Test.make ~name:"(a + b) - b = a (mod 2^bits)" ~count:500
    QCheck.(triple (int_range 1 62) (int_bound max_int) (int_bound max_int))
    (fun (bits, a, b) -> Value.sub bits (Value.add bits a b) b = Value.mask bits a)

let prop_comparisons_are_boolean =
  QCheck.Test.make ~name:"comparisons return 0/1" ~count:500
    QCheck.(pair (int_bound max_int) (int_bound max_int))
    (fun (a, b) ->
      List.for_all
        (fun v -> v = 0 || v = 1)
        [ Value.eq a b; Value.neq a b; Value.lt a b; Value.gt a b; Value.le a b; Value.ge a b ])

(* --- Prng ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let sa = List.init 10 (fun _ -> Prng.next_int64 a) in
  let sb = List.init 10 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "different seeds differ" false (sa = sb)

let test_prng_copy () =
  let a = Prng.create 7 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy resumes identically" (Prng.next_int64 a) (Prng.next_int64 b)

let prop_prng_bits_in_range =
  QCheck.Test.make ~name:"Prng.bits stays in range" ~count:300
    QCheck.(pair (int_range 1 62) small_nat)
    (fun (bits, seed) ->
      let p = Prng.create seed in
      let v = Prng.bits p bits in
      v >= 0 && v <= Value.max_value bits)

let prop_prng_int_in_range =
  QCheck.Test.make ~name:"Prng.int stays in range" ~count:300
    QCheck.(pair (int_range 1 10000) small_nat)
    (fun (bound, seed) ->
      let p = Prng.create seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let test_prng_rough_uniformity () =
  (* Sanity check, not a statistical test: both halves of an 8-bit range
     should be hit a reasonable number of times. *)
  let p = Prng.create 3 in
  let low = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Prng.bits p 8 < 128 then incr low
  done;
  Alcotest.(check bool) "roughly balanced" true (!low > n / 3 && !low < 2 * n / 3)

(* --- Hashing ---------------------------------------------------------------- *)

let test_hash_determinism () =
  check_int "hash1" (Hashing.hash1 ~bits:16 99) (Hashing.hash1 ~bits:16 99);
  check_int "hash2" (Hashing.hash2 ~bits:16 1 2) (Hashing.hash2 ~bits:16 1 2);
  check_int "hash3" (Hashing.hash3 ~bits:16 1 2 3) (Hashing.hash3 ~bits:16 1 2 3)

let test_hash_width () =
  for x = 0 to 100 do
    let h = Hashing.hash1 ~bits:5 x in
    Alcotest.(check bool) "within width" true (h >= 0 && h < 32)
  done

let test_hash_indexed_independent () =
  let collisions = ref 0 in
  for x = 0 to 200 do
    if Hashing.indexed ~bits:16 0 x = Hashing.indexed ~bits:16 1 x then incr collisions
  done;
  Alcotest.(check bool) "indexed hashes differ" true (!collisions < 10)

(* --- Scanner ---------------------------------------------------------------- *)

let test_scanner_idents_and_ints () =
  let sc = Scanner.create "  foo_1  42 " in
  Scanner.skip_trivia sc;
  Alcotest.(check string) "ident" "foo_1" (Scanner.scan_ident sc);
  Scanner.skip_trivia sc;
  check_int "int" 42 (Scanner.scan_int sc);
  Scanner.skip_trivia sc;
  Alcotest.(check bool) "at end" true (Scanner.at_end sc)

let test_scanner_comments () =
  let sc = Scanner.create "# line comment\n// another\nx" in
  Scanner.skip_trivia sc;
  Alcotest.(check string) "ident after comments" "x" (Scanner.scan_ident sc)

let test_scanner_positions () =
  let sc = Scanner.create "a\nbb\nccc" in
  Scanner.skip_trivia sc;
  ignore (Scanner.scan_ident sc);
  Scanner.skip_trivia sc;
  let pos = Scanner.position sc in
  check_int "line" 2 pos.Scanner.line;
  check_int "column" 1 pos.Scanner.column

let test_scanner_try_string () =
  let sc = Scanner.create "==x" in
  Alcotest.(check bool) "matches" true (Scanner.try_string sc "==");
  Alcotest.(check bool) "no match leaves state" false (Scanner.try_string sc "==");
  Alcotest.(check string) "rest" "x" (Scanner.scan_ident sc)


(* Campaigns key every trial on [derive master index]; the edge indices and
   collision behaviour are load-bearing for checkpoint resume. *)
let test_derive_edge_indices () =
  let a = Prng.derive 0xD52ba 0 in
  Alcotest.(check bool) "index 0 is non-negative" true (a >= 0);
  Alcotest.(check int) "index 0 is stable" a (Prng.derive 0xD52ba 0);
  Alcotest.(check bool) "index 0 <> index 1" true (a <> Prng.derive 0xD52ba 1);
  let m = Prng.derive 0xD52ba max_int in
  Alcotest.(check bool) "max_int index accepted" true (m >= 0);
  Alcotest.(check int) "max_int index is stable" m (Prng.derive 0xD52ba max_int);
  match Prng.derive 0xD52ba (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative index accepted"

let test_derive_adjacent_no_collisions () =
  let seen = Hashtbl.create 4096 in
  let collisions = ref 0 in
  for i = 0 to 9_999 do
    let s = Prng.derive 42 i in
    if Hashtbl.mem seen s then incr collisions else Hashtbl.add seen s ()
  done;
  Alcotest.(check int) "10k adjacent trials, no seed collisions" 0 !collisions

let qsuite = List.map QCheck_alcotest.to_alcotest


let () =
  Alcotest.run "util"
    [
      ( "value",
        [
          Alcotest.test_case "masking" `Quick test_mask;
          Alcotest.test_case "wraparound" `Quick test_wraparound;
          Alcotest.test_case "division by zero" `Quick test_div_by_zero;
          Alcotest.test_case "booleans" `Quick test_booleans;
          Alcotest.test_case "width validation" `Quick test_width_validation;
        ]
        @ qsuite
            [
              prop_mask_idempotent;
              prop_add_commutes;
              prop_sub_add_roundtrip;
              prop_comparisons_are_boolean;
            ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "rough uniformity" `Quick test_prng_rough_uniformity;
          Alcotest.test_case "derive edge indices" `Quick test_derive_edge_indices;
          Alcotest.test_case "derive adjacent trials collide never" `Quick
            test_derive_adjacent_no_collisions;
        ]
        @ qsuite [ prop_prng_bits_in_range; prop_prng_int_in_range ] );
      ( "hashing",
        [
          Alcotest.test_case "determinism" `Quick test_hash_determinism;
          Alcotest.test_case "width" `Quick test_hash_width;
          Alcotest.test_case "indexed independence" `Quick test_hash_indexed_independent;
        ] );
      ( "scanner",
        [
          Alcotest.test_case "idents and ints" `Quick test_scanner_idents_and_ints;
          Alcotest.test_case "comments" `Quick test_scanner_comments;
          Alcotest.test_case "positions" `Quick test_scanner_positions;
          Alcotest.test_case "try_string" `Quick test_scanner_try_string;
        ] );
    ]
