(* Golden-trace regression fixtures.

   For every Table-1 program we commit the expected output trace + final
   state (test/golden/<name>.trace) of a fixed-seed simulation.  The test
   replays each program and diffs against the fixture, so a semantic
   regression anywhere in the stack — frontend, codegen, optimizer, either
   execution backend — fails loudly with the program named.

   Two layers of checking per benchmark:
   1. the reference configuration (interpreter, unoptimized description)
      must render byte-identically to the committed fixture;
   2. all six (backend x optimization level) configurations must produce a
      trace equal to the reference — the committed fixture therefore pins
      every configuration.

   Regenerating after an *intended* semantic change:

     GOLDEN_UPDATE=$PWD/test/golden dune exec test/test_golden.exe

   which rewrites the fixtures in the source tree instead of checking. *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile
module Optimizer = Druzhba_optimizer.Optimizer
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace
module Spec = Druzhba_spec.Spec
module Codegen = Druzhba_compiler.Codegen
module Oracle = Druzhba_campaign.Oracle
module Substrate = Druzhba_dsim.Substrate
module Drmt_substrate = Druzhba_dsim.Drmt_substrate
module P4 = Druzhba_drmt.P4
module Entries = Druzhba_drmt.Entries

let golden_seed = 0x601d
let golden_phvs = 10

let reference_trace (bm : Spec.benchmark) =
  let compiled = Spec.compile_exn bm in
  let desc = compiled.Codegen.c_desc in
  let mc = compiled.Codegen.c_mc in
  let init = compiled.Codegen.c_layout.Codegen.l_init in
  let inputs =
    Traffic.phvs (Traffic.create ~seed:golden_seed ~width:bm.Spec.bm_width ~bits:32) golden_phvs
  in
  (compiled, Engine.run ~init desc ~mc ~inputs, inputs)

let render (bm : Spec.benchmark) (trace : Trace.t) =
  Fmt.str "# golden trace: %s (%dx%d, seed %d, %d PHVs)@.%a@." bm.Spec.bm_name bm.Spec.bm_depth
    bm.Spec.bm_width golden_seed golden_phvs Trace.pp trace

let fixture_path bm = Filename.concat "golden" (bm.Spec.bm_name ^ ".trace")

(* --- dRMT fixture ---------------------------------------------------------------- *)

(* One committed fixture for the dRMT substrate: an exact + lpm + ternary
   pipeline with register side effects, replayed through both the sequential
   reference and the event-driven scheduler.  The fixture pins the sequential
   semantics; the event run must additionally equal the reference, so a
   regression in either the scheduler or the P4 interpreter fails loudly. *)

let drmt_name = "drmt_router"

let drmt_p4 =
  {|
header eth {
  dst : 48;
  etype : 16;
}
header ip {
  ttl : 8;
  src : 32;
  dst : 32;
}

action bridge(port) {
  meta.egress = port;
  reg.bridged = reg.bridged + 1;
}
action route(port) {
  meta.egress = port;
  ip.ttl = ip.ttl - 1;
  reg.routed = reg.routed + 1;
}
action toss() {
  drop;
  reg.tossed = reg.tossed + 1;
}
action audit() {
  reg.audited = reg.audited + 1;
}

table bridge_tbl {
  key : eth.dst;
  match : exact;
  actions : { bridge };
  default : bridge 1;
}
table route_tbl {
  key : ip.dst;
  match : lpm;
  actions : { route, toss };
  default : toss;
}
table audit_tbl {
  key : ip.src;
  match : ternary;
  actions : { audit, toss };
  default : audit;
}

control {
  apply bridge_tbl;
  apply route_tbl;
  apply audit_tbl;
}
|}

let drmt_entries_src =
  {|
# two learned MACs
entry bridge_tbl exact 51966 bridge 4
entry bridge_tbl exact 47806 bridge 6

# a /16 nested in a /8 over a catch-all: longest prefix must win, and the
# /0 keeps the field-mutating route action live on random traffic
entry route_tbl lpm 3232235520/8  route 2
entry route_tbl lpm 3232301056/16 route 8
entry route_tbl lpm 0/0 route 3

# sources with low byte 7 are tossed by the audit stage
entry audit_tbl ternary 7&255 toss
|}

let drmt_substrate mode =
  let p = P4.parse drmt_p4 in
  let entries =
    match Entries.parse drmt_entries_src with
    | Ok e -> e
    | Error msg -> failwith ("drmt golden entries: " ^ msg)
  in
  Drmt_substrate.create ~mode ~entries p

let run_substrate packed ~inputs =
  let buf =
    Trace.Buffer.create ~width:(Substrate.width packed) ~capacity:(max 1 (List.length inputs))
  in
  Substrate.run_into packed ~inputs buf;
  {
    Trace.inputs;
    outputs = Trace.Buffer.contents buf;
    final_state = Substrate.current_state packed;
  }

let drmt_reference_trace () =
  let sub = drmt_substrate Drmt_substrate.Sequential in
  let inputs = Drmt_substrate.traffic ~seed:golden_seed sub golden_phvs in
  (run_substrate (Drmt_substrate.pack sub) ~inputs, inputs)

let drmt_render (trace : Trace.t) =
  Fmt.str "# golden trace: %s (dRMT, seed %d, %d PHVs)@.%a@." drmt_name golden_seed golden_phvs
    Trace.pp trace

let drmt_fixture_path = Filename.concat "golden" (drmt_name ^ ".trace")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- Regeneration mode --------------------------------------------------------- *)

let update_fixtures dir =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let _, trace, _ = reference_trace bm in
      let path = Filename.concat dir (bm.Spec.bm_name ^ ".trace") in
      let oc = open_out_bin path in
      output_string oc (render bm trace);
      close_out oc;
      Printf.printf "wrote %s\n" path)
    Spec.all;
  let trace, _ = drmt_reference_trace () in
  let path = Filename.concat dir (drmt_name ^ ".trace") in
  let oc = open_out_bin path in
  output_string oc (drmt_render trace);
  close_out oc;
  Printf.printf "wrote %s\n" path

(* --- Checks ---------------------------------------------------------------------- *)

let test_fixture_matches (bm : Spec.benchmark) () =
  let _, trace, _ = reference_trace bm in
  let expected = read_file (fixture_path bm) in
  Alcotest.(check string) (bm.Spec.bm_name ^ " matches its golden trace") expected
    (render bm trace)

let test_all_configs_match (bm : Spec.benchmark) () =
  let compiled, reference, inputs = reference_trace bm in
  let desc = compiled.Codegen.c_desc in
  let mc = compiled.Codegen.c_mc in
  let init = compiled.Codegen.c_layout.Codegen.l_init in
  List.iter
    (fun level ->
      let optimized = Optimizer.apply ~level ~mc desc in
      let closure = Compile.compile optimized ~mc in
      List.iter
        (fun (backend_name, trace) ->
          if not (Trace.equal reference trace) then
            match Oracle.diff_traces ~reference ~actual:trace with
            | Some (kind, expected, actual) ->
              let where =
                match kind with
                | `Output (i, c) -> Printf.sprintf "output phv %d container %d" i c
                | `State (alu, slot) -> Printf.sprintf "state %s[%d]" alu slot
                | `Shape -> "trace shape"
              in
              Alcotest.failf "%s: %s@%s diverges from golden reference at %s (%d vs %d)"
                bm.Spec.bm_name backend_name (Optimizer.level_name level) where expected actual
            | None -> Alcotest.failf "%s: traces differ only in inputs?" bm.Spec.bm_name)
        [
          ("interpreter", Engine.run ~init optimized ~mc ~inputs);
          ("closures", Compiled.run_compiled ~init closure ~inputs);
        ])
    Oracle.all_levels

let test_drmt_fixture_matches () =
  let trace, _ = drmt_reference_trace () in
  let expected = read_file drmt_fixture_path in
  Alcotest.(check string) (drmt_name ^ " matches its golden trace") expected (drmt_render trace)

let test_drmt_event_matches_reference () =
  let reference, inputs = drmt_reference_trace () in
  let event = run_substrate (Drmt_substrate.pack (drmt_substrate Drmt_substrate.Event)) ~inputs in
  if not (Trace.equal reference event) then
    match Oracle.diff_traces ~reference ~actual:event with
    | Some (kind, expected, actual) ->
      let where =
        match kind with
        | `Output (i, c) -> Printf.sprintf "output phv %d container %d" i c
        | `State (reg, slot) -> Printf.sprintf "register %s[%d]" reg slot
        | `Shape -> "trace shape"
      in
      Alcotest.failf "%s: event substrate diverges from sequential reference at %s (%d vs %d)"
        drmt_name where expected actual
    | None -> Alcotest.failf "%s: traces differ only in inputs?" drmt_name

let () =
  match Sys.getenv_opt "GOLDEN_UPDATE" with
  | Some dir -> update_fixtures dir
  | None ->
    Alcotest.run "golden"
      [
        ( "fixtures",
          List.map
            (fun (bm : Spec.benchmark) ->
              Alcotest.test_case bm.Spec.bm_name `Quick (test_fixture_matches bm))
            Spec.all
          @ [ Alcotest.test_case drmt_name `Quick test_drmt_fixture_matches ] );
        ( "all configurations",
          List.map
            (fun (bm : Spec.benchmark) ->
              Alcotest.test_case bm.Spec.bm_name `Quick (test_all_configs_match bm))
            Spec.all
          @ [
              Alcotest.test_case (drmt_name ^ " event=sequential") `Quick
                test_drmt_event_matches_reference;
            ] );
      ]
