(* Golden-trace regression fixtures.

   For every Table-1 program we commit the expected output trace + final
   state (test/golden/<name>.trace) of a fixed-seed simulation.  The test
   replays each program and diffs against the fixture, so a semantic
   regression anywhere in the stack — frontend, codegen, optimizer, either
   execution backend — fails loudly with the program named.

   Two layers of checking per benchmark:
   1. the reference configuration (interpreter, unoptimized description)
      must render byte-identically to the committed fixture;
   2. all six (backend x optimization level) configurations must produce a
      trace equal to the reference — the committed fixture therefore pins
      every configuration.

   Regenerating after an *intended* semantic change:

     GOLDEN_UPDATE=$PWD/test/golden dune exec test/test_golden.exe

   which rewrites the fixtures in the source tree instead of checking. *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile
module Optimizer = Druzhba_optimizer.Optimizer
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace
module Spec = Druzhba_spec.Spec
module Codegen = Druzhba_compiler.Codegen
module Oracle = Druzhba_campaign.Oracle

let golden_seed = 0x601d
let golden_phvs = 10

let reference_trace (bm : Spec.benchmark) =
  let compiled = Spec.compile_exn bm in
  let desc = compiled.Codegen.c_desc in
  let mc = compiled.Codegen.c_mc in
  let init = compiled.Codegen.c_layout.Codegen.l_init in
  let inputs =
    Traffic.phvs (Traffic.create ~seed:golden_seed ~width:bm.Spec.bm_width ~bits:32) golden_phvs
  in
  (compiled, Engine.run ~init desc ~mc ~inputs, inputs)

let render (bm : Spec.benchmark) (trace : Trace.t) =
  Fmt.str "# golden trace: %s (%dx%d, seed %d, %d PHVs)@.%a@." bm.Spec.bm_name bm.Spec.bm_depth
    bm.Spec.bm_width golden_seed golden_phvs Trace.pp trace

let fixture_path bm = Filename.concat "golden" (bm.Spec.bm_name ^ ".trace")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- Regeneration mode --------------------------------------------------------- *)

let update_fixtures dir =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let _, trace, _ = reference_trace bm in
      let path = Filename.concat dir (bm.Spec.bm_name ^ ".trace") in
      let oc = open_out_bin path in
      output_string oc (render bm trace);
      close_out oc;
      Printf.printf "wrote %s\n" path)
    Spec.all

(* --- Checks ---------------------------------------------------------------------- *)

let test_fixture_matches (bm : Spec.benchmark) () =
  let _, trace, _ = reference_trace bm in
  let expected = read_file (fixture_path bm) in
  Alcotest.(check string) (bm.Spec.bm_name ^ " matches its golden trace") expected
    (render bm trace)

let test_all_configs_match (bm : Spec.benchmark) () =
  let compiled, reference, inputs = reference_trace bm in
  let desc = compiled.Codegen.c_desc in
  let mc = compiled.Codegen.c_mc in
  let init = compiled.Codegen.c_layout.Codegen.l_init in
  List.iter
    (fun level ->
      let optimized = Optimizer.apply ~level ~mc desc in
      let closure = Compile.compile optimized ~mc in
      List.iter
        (fun (backend_name, trace) ->
          if not (Trace.equal reference trace) then
            match Oracle.diff_traces ~reference ~actual:trace with
            | Some (kind, expected, actual) ->
              let where =
                match kind with
                | `Output (i, c) -> Printf.sprintf "output phv %d container %d" i c
                | `State (alu, slot) -> Printf.sprintf "state %s[%d]" alu slot
                | `Shape -> "trace shape"
              in
              Alcotest.failf "%s: %s@%s diverges from golden reference at %s (%d vs %d)"
                bm.Spec.bm_name backend_name (Optimizer.level_name level) where expected actual
            | None -> Alcotest.failf "%s: traces differ only in inputs?" bm.Spec.bm_name)
        [
          ("interpreter", Engine.run ~init optimized ~mc ~inputs);
          ("closures", Compiled.run_compiled ~init closure ~inputs);
        ])
    Oracle.all_levels

let () =
  match Sys.getenv_opt "GOLDEN_UPDATE" with
  | Some dir -> update_fixtures dir
  | None ->
    Alcotest.run "golden"
      [
        ( "fixtures",
          List.map
            (fun (bm : Spec.benchmark) ->
              Alcotest.test_case bm.Spec.bm_name `Quick (test_fixture_matches bm))
            Spec.all );
        ( "all configurations",
          List.map
            (fun (bm : Spec.benchmark) ->
              Alcotest.test_case bm.Spec.bm_name `Quick (test_all_configs_match bm))
            Spec.all );
      ]
