(* Hunting a realistic compiler bug in the stateful firewall.

   The paper's motivation: "severe damages can result from bugs whose effects
   can permeate across an entire network causing issues such as security
   vulnerabilities if ACLs aren't correctly implemented".  This example
   compiles the stateful firewall, then emulates a series of subtly broken
   compiler outputs — each a single machine-code value away from correct —
   and shows that trace-equivalence fuzzing catches every one, including the
   classic "allow everything" hole that per-packet eyeballing would miss.

   Run with:  dune exec examples/firewall_bughunt.exe *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba

let () =
  let bm = Spec.find_exn "stateful_firewall" in
  Fmt.pr "--- stateful firewall ---%s@." bm.Spec.bm_source;
  let compiled = Spec.compile_exn bm in
  let mc = compiled.Compiler.Codegen.c_mc in
  Fmt.pr "compiled: %d machine-code pairs on a %dx%d pipeline@.@."
    (Machine_code.cardinal mc) bm.Spec.bm_depth bm.Spec.bm_width;

  (* baseline: the correct machine code passes *)
  (match Compiler.Testing.check ~n:5000 compiled with
  | Fuzz.Pass _ -> Fmt.pr "baseline machine code: PASS@."
  | o -> Fmt.pr "baseline unexpectedly failed: %a@." Fuzz.pp_outcome o);

  (* mutation campaign: flip every machine-code value by +1 within its
     domain, one at a time, and count how many mutants the fuzzer kills.
     Mutants that survive are configurations the program's observable
     behaviour genuinely does not depend on (unused controls). *)
  let domains = Ir.control_domains compiled.Compiler.Codegen.c_desc in
  let killed = ref 0 and survived = ref 0 and tried = ref 0 in
  List.iter
    (fun (name, domain) ->
      let bound = match (domain : Ir.control_domain) with Ir.Selector n -> n | Ir.Immediate -> 8 in
      if bound > 1 then begin
        incr tried;
        let mutant = Machine_code.copy mc in
        Machine_code.set mutant name ((Machine_code.find mc name + 1) mod bound);
        match (Druzhba.Workflow.test_machine_code ~phvs:2000 compiled ~mc:mutant).outcome with
        | Fuzz.Pass _ -> incr survived
        | Fuzz.Mismatch _ | Fuzz.Missing_pairs _ | Fuzz.Out_of_range_selectors _ -> incr killed
      end)
    domains;
  Fmt.pr "mutation campaign: %d single-value mutants, %d killed by fuzzing, %d benign@." !tried
    !killed !survived;

  (* the security-relevant bug, explicitly: force the established-flow ALU to
     always record "established", opening the firewall to unsolicited inbound
     traffic. *)
  Fmt.pr "@.opening the ACL hole (condition forced true)...@.";
  let hole = Machine_code.copy mc in
  let sf_alu =
    List.find_map
      (fun (v, (alu, _)) -> if v = "established" then Some alu else None)
      compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_state
    |> Option.get
  in
  (* pred_raw's condition: rel_op(Opt(state_0), Mux3(...)); selecting
     opt = 1 (zero) and rel = '>=' against constant 0 makes it a tautology *)
  Machine_code.set hole (Names.slot ~alu_prefix:sf_alu ~slot_name:"rel_op_0") 0;
  Machine_code.set hole (Names.slot ~alu_prefix:sf_alu ~slot_name:"opt_0") 1;
  Machine_code.set hole (Names.slot ~alu_prefix:sf_alu ~slot_name:"mux3_0") 2;
  Machine_code.set hole (Names.slot ~alu_prefix:sf_alu ~slot_name:"const_0") 0;
  match (Druzhba.Workflow.test_machine_code ~phvs:5000 compiled ~mc:hole).outcome with
  | Fuzz.Mismatch mm ->
    Fmt.pr "CAUGHT the ACL hole: %a@." Fuzz.pp_outcome (Fuzz.Mismatch mm)
  | o -> Fmt.pr "hole not caught (unexpected): %a@." Fuzz.pp_outcome o
