(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) plus the ablations DESIGN.md calls out.

   Sections:
     1. Bechamel microbenchmarks — one Test.make per Table-1 program and
        optimization level (compiled descriptions, 500-PHV workload), giving
        statistically solid per-PHV costs.
     2. Table 1 — the paper's measurement verbatim: wall-clock time to
        simulate 50 000 PHVs per program at the three optimization levels,
        on closure-compiled descriptions (the rustc analogue).
     3. Ablation: the same sweep on the interpreted descriptions — shows
        what explicit inlining is worth without a compiling backend.
     4. Fig. 6 — generated-description sizes across the three versions.
        Plus the dead-ALU elimination ablation: description sizes after
        the liveness-based dead_elim pass, per Table-1 program.
     5. Case study (§5.2) — the compiler-testing campaign: 120+ programs,
        injected missing-pairs failures, narrow-width synthesis failures.
     6. dRMT (§4) — schedule quality and simulated throughput for the
        L2/L3 program across processor counts. *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba
module Table1 = Druzhba_experiments.Table1
module Casestudy = Druzhba_experiments.Casestudy
module Fig6 = Druzhba_experiments.Fig6
open Bechamel
open Toolkit

(* --- 1. Bechamel microbenchmarks -------------------------------------------------- *)

let bench_phvs = 500

let table1_tests () =
  let tests =
    List.concat_map
      (fun (bm : Spec.benchmark) ->
        let compiled = Spec.compile_exn bm in
        let mc = compiled.Compiler.Codegen.c_mc in
        let desc = compiled.Compiler.Codegen.c_desc in
        let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
        let inputs =
          Traffic.phvs (Traffic.create ~seed:0xBE5 ~width:bm.Spec.bm_width ~bits:32) bench_phvs
        in
        let v2 = Optimizer.scc_propagate ~mc desc in
        let v3 = Optimizer.inline_functions v2 in
        List.map
          (fun (level, d) ->
            let c = Compile.compile d ~mc in
            (* engine and output buffer preallocated outside the timed body:
               the benchmark measures the zero-allocation steady-state tick
               path, not construction or trace freezing *)
            let t = Compiled.create c in
            let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:bench_phvs in
            Test.make
              ~name:(Printf.sprintf "%s/%s" bm.Spec.bm_name level)
              (Staged.stage (fun () -> Compiled.run_into ~init t ~inputs buf)))
          [ ("unopt", desc); ("scc", v2); ("scc+inline", v3) ])
      Spec.all
  in
  Test.make_grouped ~name:"table1" ~fmt:"%s %s" tests

let run_bechamel () =
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.4) ~stabilize:false () in
  let instance = Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (table1_tests ()) in
  let ols =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance
      raw
  in
  Printf.printf "%-36s %14s\n" "benchmark (500 PHVs per run)" "time/run";
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] ->
           let ms = est /. 1_000_000. in
           Printf.printf "%-36s %11.3f ms\n" name ms
         | _ -> Printf.printf "%-36s %14s\n" name "n/a")

(* --- 4b. dead_elim size ablation --------------------------------------------------- *)

(* For each Table-1 program: description size after SCC propagation alone vs
   after the liveness-based dead-ALU elimination pass that follows it.  The
   delta is the number of IR nodes the machine code can never select. *)
let run_dead_elim_ablation () =
  Printf.printf "%-16s %12s %14s %10s\n" "program" "scc size" "scc+dead size" "removed";
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      let mc = compiled.Compiler.Codegen.c_mc in
      let desc = compiled.Compiler.Codegen.c_desc in
      let scc = Optimizer.scc_propagate ~mc desc in
      let pruned = Optimizer.dead_elim ~mc scc in
      let a = Ir.size scc and b = Ir.size pruned in
      Printf.printf "%-16s %12d %14d %10d\n" bm.Spec.bm_name a b (a - b))
    Spec.all

(* --- 5b. Campaign scaling across domains -------------------------------------------- *)

(* Throughput scaling of the multicore differential campaign: the same
   fixed-seed campaign at 1/2/4/8 domains.  Beyond the scaling curve this
   doubles as a determinism check — the JSON report must be byte-identical
   at every job count (per-trial seeds are derived from the master seed and
   the trial index, never from scheduling). *)
let run_campaign_scaling ~trials =
  let phvs = 80 in
  Printf.printf "campaign: %d trials x %d PHVs, differential oracle (6 configs/trial)\n" trials
    phvs;
  Printf.printf "%-6s %10s %10s %14s\n" "jobs" "wall (s)" "speedup" "JSON report";
  let baseline = ref 0.0 in
  let reference_json = ref "" in
  List.iter
    (fun jobs ->
      let cfg = Campaign.config ~trials ~jobs ~phvs () in
      let t0 = Unix.gettimeofday () in
      let report = Campaign.run cfg in
      let dt = Unix.gettimeofday () -. t0 in
      let json = Campaign.to_json report in
      if jobs = 1 then begin
        baseline := dt;
        reference_json := json
      end;
      Printf.printf "%-6d %10.2f %9.2fx %14s\n" jobs dt
        (if dt > 0. then !baseline /. dt else nan)
        (if String.equal json !reference_json then "identical" else "DIFFERS"))
    [ 1; 2; 4; 8 ]

(* --- 6. dRMT ------------------------------------------------------------------------ *)

let drmt_program =
  {|
header ethernet { dst : 48; etype : 16; }
header ipv4 { ttl : 8; src : 32; dst : 32; }
action set_port(port) { meta.out_port = port; }
action route(port) {
  meta.out_port = port;
  ipv4.ttl = ipv4.ttl - 1;
  reg.routed = reg.routed + 1;
}
action drop_packet() { drop; reg.dropped = reg.dropped + 1; }
action count_acl() { reg.acl_hits = reg.acl_hits + 1; }
table l2_forward { key : ethernet.dst; match : exact; actions : { set_port }; default : set_port 0; }
table ipv4_route { key : ipv4.dst; match : lpm; actions : { route, drop_packet }; default : drop_packet; }
table acl { key : ipv4.src; match : ternary; actions : { count_acl, drop_packet }; default : count_acl; }
control { apply l2_forward; apply ipv4_route; apply acl; }
|}

let drmt_entries =
  {|
entry l2_forward exact 43707 set_port 3
entry ipv4_route lpm 2886729728/8 route 9
entry ipv4_route lpm 2886737920/16 route 7
entry acl ternary 13&255 drop_packet
|}

let run_drmt_bench () =
  let p = Drmt.P4.parse drmt_program in
  let entries = match Drmt.Entries.parse drmt_entries with Ok e -> e | Error e -> failwith e in
  let dag = Drmt.Dag.build p in
  Printf.printf "program: %d tables; dependency DAG critical path = %d cycles\n"
    (List.length p.Drmt.P4.tables) (Drmt.Dag.critical_path dag);
  Printf.printf "%-6s %10s %12s %16s %22s\n" "procs" "makespan" "cycles" "pkts/cycle"
    "peak match (chip/proc)";
  List.iter
    (fun processors ->
      let cfg = Drmt.Scheduler.config ~processors ~match_capacity:2 ~action_capacity:4 () in
      match Drmt.Scheduler.schedule cfg dag with
      | exception Drmt.Scheduler.Infeasible why ->
        Printf.printf "%-6d %s\n" processors ("infeasible at line rate: " ^ why)
      | sched ->
        let packets = 20_000 in
        let t0 = Unix.gettimeofday () in
        let r = Drmt.Sim.run ~cfg ~entries ~packets p in
        let dt = Unix.gettimeofday () -. t0 in
        let s = r.Drmt.Sim.r_stats in
        Printf.printf "%-6d %10d %12d %16.3f %15d/%-6d   (%.0f ms wall)\n" processors
          sched.Drmt.Scheduler.makespan s.Drmt.Sim.st_cycles
          (float_of_int s.Drmt.Sim.st_packets /. float_of_int s.Drmt.Sim.st_cycles)
          s.Drmt.Sim.st_peak_match_per_cycle s.Drmt.Sim.st_peak_match_per_processor (dt *. 1000.))
    [ 1; 2; 4; 8 ]

(* --- JSON perf trajectory ------------------------------------------------------------ *)

(* Machine-readable benchmark report (BENCH_pr5.json): per Table-1 program
   and optimization level, the steady-state tick cost on the compiled
   substrate (ns/PHV, PHVs/sec) and the steady-state allocation rate
   (Gc.allocated_bytes per PHV — the zero-allocation engine must keep this
   at ~0).  Each level also carries a cross-backend agreement bit: the
   Engine and Compiled traces on a fixed-seed workload must be equal, so CI
   can fail the build on a divergence.  A "drmt" section measures the same
   program through both dRMT substrate modes (sequential reference vs
   event-driven scheduler) with its own agreement bit.  Future PRs diff
   their own report against this file to track the perf trajectory. *)

type level_sample = {
  ls_level : string;
  ls_ns_per_phv : float;
  ls_phvs_per_sec : float;
  ls_bytes_per_phv : float;
  ls_agree : bool; (* Engine trace = Compiled trace on the check workload *)
}

type program_sample = {
  ps_program : string;
  ps_depth : int;
  ps_width : int;
  ps_alu : string;
  ps_levels : level_sample list;
}

let json_check_phvs = 64

let measure_program ~phvs (bm : Spec.benchmark) : program_sample =
  let compiled = Spec.compile_exn bm in
  let mc = compiled.Compiler.Codegen.c_mc in
  let desc = compiled.Compiler.Codegen.c_desc in
  let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
  let inputs = Traffic.phvs (Traffic.create ~seed:0xD52ba ~width:bm.Spec.bm_width ~bits:32) phvs in
  let check_inputs =
    Traffic.phvs (Traffic.create ~seed:0x601d ~width:bm.Spec.bm_width ~bits:32) json_check_phvs
  in
  let v2 = Optimizer.scc_propagate ~mc desc in
  let v3 = Optimizer.inline_functions v2 in
  let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:phvs in
  let levels =
    List.map
      (fun (level, d) ->
        let c = Compile.compile d ~mc in
        let t = Compiled.create c in
        (* warm-up run, then one timed + allocation-counted run *)
        Compiled.run_into ~init t ~inputs buf;
        let a0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        Compiled.run_into ~init t ~inputs buf;
        let dt = Unix.gettimeofday () -. t0 in
        let a1 = Gc.allocated_bytes () in
        let n = float_of_int phvs in
        let engine_trace = Engine.run ~init d ~mc ~inputs:check_inputs in
        let compiled_trace = Compiled.run_compiled ~init c ~inputs:check_inputs in
        {
          ls_level = level;
          ls_ns_per_phv = dt *. 1e9 /. n;
          ls_phvs_per_sec = (if dt > 0. then n /. dt else infinity);
          ls_bytes_per_phv = (a1 -. a0) /. n;
          ls_agree = Trace.equal engine_trace compiled_trace;
        })
      [ ("unopt", desc); ("scc", v2); ("scc+inline", v3) ]
  in
  {
    ps_program = bm.Spec.bm_name;
    ps_depth = bm.Spec.bm_depth;
    ps_width = bm.Spec.bm_width;
    ps_alu = bm.Spec.bm_stateful;
    ps_levels = levels;
  }

(* dRMT rows: the bench l2l3 program run through the substrate interface in
   both modes, on identical derived-seed traffic.  Times the steady-state
   [run_into] path (substrate construction and trace freezing excluded). *)

type drmt_mode_sample = {
  dm_mode : string;
  dm_ns_per_phv : float;
  dm_phvs_per_sec : float;
}

type drmt_sample = {
  ds_program : string;
  ds_tables : int;
  ds_phvs : int;
  ds_modes : drmt_mode_sample list;
  ds_agree : bool; (* event trace = sequential trace on the same workload *)
}

let measure_drmt ~phvs : drmt_sample =
  let p = Drmt.P4.parse drmt_program in
  let entries = match Drmt.Entries.parse drmt_entries with Ok e -> e | Error e -> failwith e in
  let run mode =
    let sub = Drmt_substrate.create ~mode ~entries p in
    let inputs = Drmt_substrate.traffic ~seed:0xD52ba sub phvs in
    let packed = Drmt_substrate.pack sub in
    let buf = Trace.Buffer.create ~width:(Substrate.width packed) ~capacity:phvs in
    Substrate.run_into packed ~inputs buf;
    (* warm cache; run_into clears the buffer and re-arms, so time a fresh run *)
    let t0 = Unix.gettimeofday () in
    Substrate.run_into packed ~inputs buf;
    let dt = Unix.gettimeofday () -. t0 in
    let trace =
      {
        Trace.inputs;
        outputs = Trace.Buffer.contents buf;
        final_state = Substrate.current_state packed;
      }
    in
    (dt, trace)
  in
  let dt_seq, trace_seq = run Drmt_substrate.Sequential in
  let dt_ev, trace_ev = run Drmt_substrate.Event in
  let n = float_of_int phvs in
  let sample dm_mode dt =
    {
      dm_mode;
      dm_ns_per_phv = dt *. 1e9 /. n;
      dm_phvs_per_sec = (if dt > 0. then n /. dt else infinity);
    }
  in
  {
    ds_program = "l2l3";
    ds_tables = List.length p.Drmt.P4.tables;
    ds_phvs = phvs;
    ds_modes = [ sample "sequential" dt_seq; sample "event" dt_ev ];
    ds_agree = Trace.equal trace_seq trace_ev;
  }

let render_json ~quick ~phvs ~(drmt : drmt_sample) (samples : program_sample list) =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.bprintf b fmt in
  bpf "{\n";
  bpf "  \"schema\": \"druzhba-bench/1\",\n";
  bpf "  \"pr\": 5,\n";
  bpf "  \"quick\": %b,\n" quick;
  bpf "  \"phvs\": %d,\n" phvs;
  bpf "  \"check_phvs\": %d,\n" json_check_phvs;
  bpf "  \"programs\": [\n";
  List.iteri
    (fun i ps ->
      bpf "    {\n";
      bpf "      \"program\": \"%s\", \"depth\": %d, \"width\": %d, \"alu\": \"%s\",\n"
        ps.ps_program ps.ps_depth ps.ps_width ps.ps_alu;
      bpf "      \"levels\": [\n";
      List.iteri
        (fun j ls ->
          bpf
            "        {\"level\": \"%s\", \"ns_per_phv\": %.1f, \"phvs_per_sec\": %.0f, \
             \"bytes_per_phv\": %.2f, \"engine_compiled_agree\": %b}%s\n"
            ls.ls_level ls.ls_ns_per_phv ls.ls_phvs_per_sec ls.ls_bytes_per_phv ls.ls_agree
            (if j = 2 then "" else ","))
        ps.ps_levels;
      bpf "      ]\n";
      bpf "    }%s\n" (if i = List.length samples - 1 then "" else ","))
    samples;
  bpf "  ],\n";
  bpf "  \"drmt\": {\n";
  bpf "    \"program\": \"%s\", \"tables\": %d, \"phvs\": %d,\n" drmt.ds_program drmt.ds_tables
    drmt.ds_phvs;
  bpf "    \"modes\": [\n";
  List.iteri
    (fun i dm ->
      bpf "      {\"mode\": \"%s\", \"ns_per_phv\": %.1f, \"phvs_per_sec\": %.0f}%s\n" dm.dm_mode
        dm.dm_ns_per_phv dm.dm_phvs_per_sec
        (if i = List.length drmt.ds_modes - 1 then "" else ","))
    drmt.ds_modes;
  bpf "    ],\n";
  bpf "    \"event_sequential_agree\": %b\n" drmt.ds_agree;
  bpf "  },\n";
  let all_agree =
    drmt.ds_agree
    && List.for_all (fun ps -> List.for_all (fun ls -> ls.ls_agree) ps.ps_levels) samples
  in
  bpf "  \"all_agree\": %b\n" all_agree;
  bpf "}\n";
  (Buffer.contents b, all_agree)

let run_json_report ~quick ~path =
  let phvs = if quick then 5_000 else 50_000 in
  Printf.printf "perf trajectory: %d PHVs/run, compiled substrate, steady-state tick path\n" phvs;
  Printf.printf "%-18s %-12s %12s %14s %14s %8s\n" "program" "level" "ns/PHV" "PHVs/sec"
    "bytes/PHV" "agree";
  let samples =
    List.map
      (fun bm ->
        let ps = measure_program ~phvs bm in
        List.iter
          (fun ls ->
            Printf.printf "%-18s %-12s %12.1f %14.0f %14.2f %8s\n" ps.ps_program ls.ls_level
              ls.ls_ns_per_phv ls.ls_phvs_per_sec ls.ls_bytes_per_phv
              (if ls.ls_agree then "yes" else "NO"))
          ps.ps_levels;
        ps)
      Spec.all
  in
  let drmt = measure_drmt ~phvs:(if quick then 2_000 else 20_000) in
  List.iter
    (fun dm ->
      Printf.printf "%-18s %-12s %12.1f %14.0f %14s %8s\n" "drmt/l2l3" dm.dm_mode dm.dm_ns_per_phv
        dm.dm_phvs_per_sec "-"
        (if drmt.ds_agree then "yes" else "NO"))
    drmt.ds_modes;
  let json, all_agree = render_json ~quick ~phvs ~drmt samples in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" path;
  if not all_agree then
    Printf.printf "DIVERGENCE: a backend pair (Engine/Compiled or dRMT event/sequential) differs\n";
  all_agree

(* --- main --------------------------------------------------------------------------- *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  if Array.exists (( = ) "--json") Sys.argv then begin
    (* JSON trajectory mode: only the machine-readable report (plus the
       Engine/Compiled agreement gate); exits non-zero on divergence *)
    section "Perf trajectory (BENCH_pr5.json)";
    if not (run_json_report ~quick ~path:"BENCH_pr5.json") then exit 1
  end
  else begin
  let phvs = if quick then 5_000 else 50_000 in

  section "1. Bechamel microbenchmarks (compiled descriptions)";
  run_bechamel ();

  section (Printf.sprintf "2. Table 1 reproduction: %d PHVs, closure-compiled descriptions" phvs);
  let rows = Table1.run ~phvs ~mode:`Compiled () in
  Fmt.pr "%a@." Table1.pp rows;
  Fmt.pr "%a" Table1.summary rows;

  section (Printf.sprintf "3. Ablation: %d PHVs, interpreted descriptions" phvs);
  let rows_interp = Table1.run ~phvs ~mode:`Interpreted () in
  Fmt.pr "%a@." Table1.pp rows_interp;
  Fmt.pr "%a" Table1.summary rows_interp;

  section "4. Fig. 6: pipeline-description sizes across optimization versions";
  let v = Fig6.render () in
  Fmt.pr "%a@." Fig6.pp_summary v;
  let v45 = Fig6.render ~depth:4 ~width:5 ~stateful:"pred_raw" () in
  Fmt.pr "4x5 pred_raw pipeline: %a@." Fig6.pp_summary v45;

  section "4b. Dead-ALU elimination: description sizes after liveness pruning";
  run_dead_elim_ablation ();

  section "5. Case study (Sec 5.2): testing the compilers";
  let report =
    Casestudy.run
      ~phvs:(if quick then 300 else 1000)
      ~jobs:(Druzhba.Campaign.Runner.default_jobs ()) ()
  in
  Fmt.pr "%a@." Casestudy.pp report;

  section "5b. Campaign throughput scaling across domains (1/2/4/8)";
  run_campaign_scaling ~trials:(if quick then 50 else 200);

  section "6. dRMT (Sec 4): schedule and throughput";
  run_drmt_bench ();

  Printf.printf "\ndone.\n"
  end
