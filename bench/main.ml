(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) plus the ablations DESIGN.md calls out.

   Sections:
     1. Bechamel microbenchmarks — one Test.make per Table-1 program and
        optimization level (compiled descriptions, 500-PHV workload), giving
        statistically solid per-PHV costs.
     2. Table 1 — the paper's measurement verbatim: wall-clock time to
        simulate 50 000 PHVs per program at the three optimization levels,
        on closure-compiled descriptions (the rustc analogue).
     3. Ablation: the same sweep on the interpreted descriptions — shows
        what explicit inlining is worth without a compiling backend.
     4. Fig. 6 — generated-description sizes across the three versions.
        Plus the dead-ALU elimination ablation: description sizes after
        the liveness-based dead_elim pass, per Table-1 program.
     5. Case study (§5.2) — the compiler-testing campaign: 120+ programs,
        injected missing-pairs failures, narrow-width synthesis failures.
     6. dRMT (§4) — schedule quality and simulated throughput for the
        L2/L3 program across processor counts. *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba
module Table1 = Druzhba_experiments.Table1
module Casestudy = Druzhba_experiments.Casestudy
module Fig6 = Druzhba_experiments.Fig6
module Bench_report = Druzhba_experiments.Bench_report
module Interp = Druzhba_pipeline.Interp
open Bechamel
open Toolkit

(* --- 1. Bechamel microbenchmarks -------------------------------------------------- *)

let bench_phvs = 500

let table1_tests () =
  let tests =
    List.concat_map
      (fun (bm : Spec.benchmark) ->
        let compiled = Spec.compile_exn bm in
        let mc = compiled.Compiler.Codegen.c_mc in
        let desc = compiled.Compiler.Codegen.c_desc in
        let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
        let inputs =
          Traffic.phvs (Traffic.create ~seed:0xBE5 ~width:bm.Spec.bm_width ~bits:32) bench_phvs
        in
        let v2 = Optimizer.scc_propagate ~mc desc in
        let v3 = Optimizer.inline_functions v2 in
        List.map
          (fun (level, d) ->
            let c = Compile.compile d ~mc in
            (* engine and output buffer preallocated outside the timed body:
               the benchmark measures the zero-allocation steady-state tick
               path, not construction or trace freezing *)
            let t = Compiled.create c in
            let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:bench_phvs in
            Test.make
              ~name:(Printf.sprintf "%s/%s" bm.Spec.bm_name level)
              (Staged.stage (fun () -> Compiled.run_into ~init t ~inputs buf)))
          [ ("unopt", desc); ("scc", v2); ("scc+inline", v3) ])
      Spec.all
  in
  Test.make_grouped ~name:"table1" ~fmt:"%s %s" tests

let run_bechamel () =
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.4) ~stabilize:false () in
  let instance = Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (table1_tests ()) in
  let ols =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) instance
      raw
  in
  Printf.printf "%-36s %14s\n" "benchmark (500 PHVs per run)" "time/run";
  Hashtbl.fold (fun name result acc -> (name, result) :: acc) ols []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, result) ->
         match Analyze.OLS.estimates result with
         | Some [ est ] ->
           let ms = est /. 1_000_000. in
           Printf.printf "%-36s %11.3f ms\n" name ms
         | _ -> Printf.printf "%-36s %14s\n" name "n/a")

(* --- 4b. dead_elim size ablation --------------------------------------------------- *)

(* For each Table-1 program: description size after SCC propagation alone vs
   after the liveness-based dead-ALU elimination pass that follows it.  The
   delta is the number of IR nodes the machine code can never select. *)
let run_dead_elim_ablation () =
  Printf.printf "%-16s %12s %14s %10s\n" "program" "scc size" "scc+dead size" "removed";
  List.iter
    (fun (bm : Spec.benchmark) ->
      let compiled = Spec.compile_exn bm in
      let mc = compiled.Compiler.Codegen.c_mc in
      let desc = compiled.Compiler.Codegen.c_desc in
      let scc = Optimizer.scc_propagate ~mc desc in
      let pruned = Optimizer.dead_elim ~mc scc in
      let a = Ir.size scc and b = Ir.size pruned in
      Printf.printf "%-16s %12d %14d %10d\n" bm.Spec.bm_name a b (a - b))
    Spec.all

(* --- 5b. Campaign scaling across domains -------------------------------------------- *)

(* Throughput scaling of the multicore differential campaign: the same
   fixed-seed campaign at 1/2/4/8 domains.  Beyond the scaling curve this
   doubles as a determinism check — the JSON report must be byte-identical
   at every job count (per-trial seeds are derived from the master seed and
   the trial index, never from scheduling). *)
let run_campaign_scaling ~trials =
  let phvs = 80 in
  Printf.printf "campaign: %d trials x %d PHVs, differential oracle (6 configs/trial)\n" trials
    phvs;
  Printf.printf "%-6s %10s %10s %14s\n" "jobs" "wall (s)" "speedup" "JSON report";
  let baseline = ref 0.0 in
  let reference_json = ref "" in
  List.iter
    (fun jobs ->
      let cfg = Campaign.config ~trials ~jobs ~phvs () in
      let t0 = Unix.gettimeofday () in
      let report = Campaign.run cfg in
      let dt = Unix.gettimeofday () -. t0 in
      let json = Campaign.to_json report in
      if jobs = 1 then begin
        baseline := dt;
        reference_json := json
      end;
      Printf.printf "%-6d %10.2f %9.2fx %14s\n" jobs dt
        (if dt > 0. then !baseline /. dt else nan)
        (if String.equal json !reference_json then "identical" else "DIFFERS"))
    [ 1; 2; 4; 8 ]

(* --- 6. dRMT ------------------------------------------------------------------------ *)

let drmt_program =
  {|
header ethernet { dst : 48; etype : 16; }
header ipv4 { ttl : 8; src : 32; dst : 32; }
action set_port(port) { meta.out_port = port; }
action route(port) {
  meta.out_port = port;
  ipv4.ttl = ipv4.ttl - 1;
  reg.routed = reg.routed + 1;
}
action drop_packet() { drop; reg.dropped = reg.dropped + 1; }
action count_acl() { reg.acl_hits = reg.acl_hits + 1; }
table l2_forward { key : ethernet.dst; match : exact; actions : { set_port }; default : set_port 0; }
table ipv4_route { key : ipv4.dst; match : lpm; actions : { route, drop_packet }; default : drop_packet; }
table acl { key : ipv4.src; match : ternary; actions : { count_acl, drop_packet }; default : count_acl; }
control { apply l2_forward; apply ipv4_route; apply acl; }
|}

let drmt_entries =
  {|
entry l2_forward exact 43707 set_port 3
entry ipv4_route lpm 2886729728/8 route 9
entry ipv4_route lpm 2886737920/16 route 7
entry acl ternary 13&255 drop_packet
|}

let run_drmt_bench () =
  let p = Drmt.P4.parse drmt_program in
  let entries = match Drmt.Entries.parse drmt_entries with Ok e -> e | Error e -> failwith e in
  let dag = Drmt.Dag.build p in
  Printf.printf "program: %d tables; dependency DAG critical path = %d cycles\n"
    (List.length p.Drmt.P4.tables) (Drmt.Dag.critical_path dag);
  Printf.printf "%-6s %10s %12s %16s %22s\n" "procs" "makespan" "cycles" "pkts/cycle"
    "peak match (chip/proc)";
  List.iter
    (fun processors ->
      let cfg = Drmt.Scheduler.config ~processors ~match_capacity:2 ~action_capacity:4 () in
      match Drmt.Scheduler.schedule cfg dag with
      | exception Drmt.Scheduler.Infeasible why ->
        Printf.printf "%-6d %s\n" processors ("infeasible at line rate: " ^ why)
      | sched ->
        let packets = 20_000 in
        let t0 = Unix.gettimeofday () in
        let r = Drmt.Sim.run ~cfg ~entries ~packets p in
        let dt = Unix.gettimeofday () -. t0 in
        let s = r.Drmt.Sim.r_stats in
        Printf.printf "%-6d %10d %12d %16.3f %15d/%-6d   (%.0f ms wall)\n" processors
          sched.Drmt.Scheduler.makespan s.Drmt.Sim.st_cycles
          (float_of_int s.Drmt.Sim.st_packets /. float_of_int s.Drmt.Sim.st_cycles)
          s.Drmt.Sim.st_peak_match_per_cycle s.Drmt.Sim.st_peak_match_per_processor (dt *. 1000.))
    [ 1; 2; 4; 8 ]

(* --- JSON perf trajectory ------------------------------------------------------------ *)

(* Machine-readable benchmark report (BENCH_pr10.json, schema
   druzhba-bench/3): per Table-1 program and optimization level, the
   steady-state tick cost on the compiled substrate's *batched* path
   (ns/PHV, PHVs/sec, best of three timed runs), the sequential tick cost
   for comparison, and the steady-state allocation rate (Gc.allocated_bytes
   per PHV — the batched engine must keep this at ~0 too).  Each level
   carries two agreement bits CI gates on: Engine trace = Compiled trace
   (sequential, as in schema /1), and batched trace = sequential trace on
   both substrates.  Schema /3 adds, per level, the Dynlinked
   native-codegen substrate: "native_ns_per_phv" (batched),
   "native_seq_ns_per_phv", "native_phvs_per_sec" and a third agreement
   bit "native_agree" (native trace + final state = closure trace on the
   check workload, sequential and batched).  On a machine without the
   ocamlfind/ocamlopt toolchain those fields are omitted and a top-level
   "native_unavailable" string carries the probe's reason — the report is
   still valid and all other gates still apply.  Additional sections:
   "batch_sweep" (scc+inline cost across batch sizes 1/16/64/256),
   "probe_overhead" (the coverage-probe flag must cost nothing when
   disabled), and "drmt" as before.  Reports are read back by
   {!Druzhba_experiments.Bench_report}, which accepts schema /1, /2 and
   /3 — the speedup-vs-PR8 table below uses it. *)

type native_sample = {
  nv_ns_per_phv : float; (* batched path, same batch size as the closures *)
  nv_seq_ns_per_phv : float;
  nv_phvs_per_sec : float;
  nv_agree : bool; (* native trace + state = closure trace on the check workload *)
}

type level_sample = {
  ls_level : string;
  ls_ns_per_phv : float; (* batched path at the report's batch size *)
  ls_seq_ns_per_phv : float; (* sequential tick loop, same workload *)
  ls_phvs_per_sec : float;
  ls_bytes_per_phv : float;
  ls_agree : bool; (* Engine trace = Compiled trace on the check workload *)
  ls_batch_agree : bool; (* batched = sequential on both substrates *)
  ls_native : native_sample option; (* None when the toolchain is unavailable *)
}

type program_sample = {
  ps_program : string;
  ps_depth : int;
  ps_width : int;
  ps_alu : string;
  ps_levels : level_sample list;
}

let json_check_phvs = 64
let timed_reps = 3

(* Best (minimum) wall-clock of [timed_reps] runs: the workload is
   deterministic, so the minimum is the least-noise estimate of the
   steady-state cost. *)
let best_of_time f =
  let best = ref infinity in
  for _ = 1 to timed_reps do
    let t0 = Unix.gettimeofday () in
    let _ = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let buffers_equal (a : Trace.Buffer.t) (b : Trace.Buffer.t) =
  Trace.Buffer.length a = Trace.Buffer.length b
  &&
  let n = Trace.Buffer.length a in
  let rec go i = i >= n || (Trace.Buffer.row a i = Trace.Buffer.row b i && go (i + 1)) in
  go 0

(* Batched-vs-sequential equality through the packed substrate interface:
   trace rows and final state must be byte-identical. *)
let batch_agrees ~batch (packed : Substrate.packed) ~inputs =
  let width = Substrate.width packed in
  let capacity = List.length inputs in
  let seq_buf = Trace.Buffer.create ~width ~capacity in
  Substrate.run_into packed ~inputs seq_buf;
  let seq_state = Substrate.current_state packed in
  let bat_buf = Trace.Buffer.create ~width ~capacity in
  Substrate.run_batch_into ~batch packed ~inputs bat_buf;
  let bat_state = Substrate.current_state packed in
  buffers_equal seq_buf bat_buf && seq_state = bat_state

(* [native] gates the schema /3 rows: when false (toolchain probe failed)
   the closure and interpreter measurements still run, native fields are
   simply absent.  Substrate construction — which for native includes the
   out-of-process ocamlopt run, the analogue of the rustc time the paper
   excludes — sits outside every timer. *)
let measure_program ~phvs ~batch ~native (bm : Spec.benchmark) : program_sample =
  let compiled = Spec.compile_exn bm in
  let mc = compiled.Compiler.Codegen.c_mc in
  let desc = compiled.Compiler.Codegen.c_desc in
  let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
  let inputs = Traffic.phvs (Traffic.create ~seed:0xD52ba ~width:bm.Spec.bm_width ~bits:32) phvs in
  let check_inputs =
    Traffic.phvs (Traffic.create ~seed:0x601d ~width:bm.Spec.bm_width ~bits:32) json_check_phvs
  in
  let v2 = Optimizer.scc_propagate ~mc desc in
  let v3 = Optimizer.inline_functions v2 in
  let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:phvs in
  let levels =
    List.map
      (fun (level, d) ->
        let c = Compile.compile d ~mc in
        let t = Compiled.create c in
        (* warm-up run (pages in code paths and the lazy vectorization),
           then best-of-N timed runs and one allocation-counted run *)
        Compiled.run_batch_into ~init ~batch t ~inputs buf;
        let dt = best_of_time (fun () -> Compiled.run_batch_into ~init ~batch t ~inputs buf) in
        let a0 = Gc.allocated_bytes () in
        Compiled.run_batch_into ~init ~batch t ~inputs buf;
        let a1 = Gc.allocated_bytes () in
        Compiled.run_into ~init t ~inputs buf;
        let dt_seq = best_of_time (fun () -> Compiled.run_into ~init t ~inputs buf) in
        let n = float_of_int phvs in
        let engine_trace = Engine.run ~init d ~mc ~inputs:check_inputs in
        let compiled_trace = Compiled.run_compiled ~init c ~inputs:check_inputs in
        let ls_batch_agree =
          batch_agrees ~batch (Substrate.of_compiled ~init c) ~inputs:check_inputs
          && batch_agrees ~batch (Substrate.of_engine ~init d ~mc) ~inputs:check_inputs
        in
        let ls_native =
          if not native then None
          else
            match Native_substrate.create ~init d ~mc with
            | Error _ -> None
            | Ok packed ->
              Substrate.run_batch_into ~batch packed ~inputs buf;
              let ndt =
                best_of_time (fun () -> Substrate.run_batch_into ~batch packed ~inputs buf)
              in
              Substrate.run_into packed ~inputs buf;
              let ndt_seq = best_of_time (fun () -> Substrate.run_into packed ~inputs buf) in
              let nbuf =
                Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:json_check_phvs
              in
              Substrate.run_into packed ~inputs:check_inputs nbuf;
              let native_trace =
                {
                  Trace.inputs = check_inputs;
                  outputs = Trace.Buffer.contents nbuf;
                  final_state = Substrate.current_state packed;
                }
              in
              Some
                {
                  nv_ns_per_phv = ndt *. 1e9 /. n;
                  nv_seq_ns_per_phv = ndt_seq *. 1e9 /. n;
                  nv_phvs_per_sec = (if ndt > 0. then n /. ndt else infinity);
                  nv_agree =
                    Trace.equal native_trace compiled_trace
                    && batch_agrees ~batch packed ~inputs:check_inputs;
                }
        in
        {
          ls_level = level;
          ls_ns_per_phv = dt *. 1e9 /. n;
          ls_seq_ns_per_phv = dt_seq *. 1e9 /. n;
          ls_phvs_per_sec = (if dt > 0. then n /. dt else infinity);
          ls_bytes_per_phv = (a1 -. a0) /. n;
          ls_agree = Trace.equal engine_trace compiled_trace;
          ls_batch_agree;
          ls_native;
        })
      [ ("unopt", desc); ("scc", v2); ("scc+inline", v3) ]
  in
  {
    ps_program = bm.Spec.bm_name;
    ps_depth = bm.Spec.bm_depth;
    ps_width = bm.Spec.bm_width;
    ps_alu = bm.Spec.bm_stateful;
    ps_levels = levels;
  }

(* --- Batch-size sweep ---------------------------------------------------------------- *)

(* scc+inline cost across batch sizes: B = 1 degenerates to one lane per
   chunk (per-stage dispatch amortized over nothing), larger B amortizes
   dispatch and keeps the lanes cache-resident until the register file
   outgrows L1/L2. *)

let sweep_batches = [ 1; 16; 64; 256 ]

type sweep_row = { sw_program : string; sw_points : (int * float) list (* batch, ns/PHV *) }

let measure_sweep ~phvs (bm : Spec.benchmark) : sweep_row =
  let compiled = Spec.compile_exn bm in
  let mc = compiled.Compiler.Codegen.c_mc in
  let desc = compiled.Compiler.Codegen.c_desc in
  let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
  let inputs = Traffic.phvs (Traffic.create ~seed:0xD52ba ~width:bm.Spec.bm_width ~bits:32) phvs in
  let v3 = Optimizer.apply ~level:Optimizer.Scc_inline ~mc desc in
  let c = Compile.compile v3 ~mc in
  let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:phvs in
  let points =
    List.map
      (fun b ->
        let t = Compiled.create c in
        Compiled.run_batch_into ~init ~batch:b t ~inputs buf;
        let dt = best_of_time (fun () -> Compiled.run_batch_into ~init ~batch:b t ~inputs buf) in
        (b, dt *. 1e9 /. float_of_int phvs))
      sweep_batches
  in
  { sw_program = bm.Spec.bm_name; sw_points = points }

(* --- Coverage-probe overhead --------------------------------------------------------- *)

(* The interpreter's coverage hooks must be free when disabled: with no
   probe installed the per-ALU dispatch is a single branch on a preloaded
   flag.  Measured on the unoptimized description (the configuration
   coverage campaigns instrument): baseline = a never-instrumented engine,
   "off" = the same engine after a probe was installed and removed.  CI
   gates off/baseline < 1.5 (identical code paths; the margin is noise). *)

type probe_overhead = {
  po_program : string;
  po_phvs : int;
  po_baseline_ns : float;
  po_on_ns : float;
  po_off_ns : float;
}

let probe_ratio_bound = 1.5
let po_ratio po = if po.po_baseline_ns > 0. then po.po_off_ns /. po.po_baseline_ns else nan
let po_ok po = po_ratio po < probe_ratio_bound

let measure_probe_overhead ~phvs : probe_overhead =
  let bm = List.find (fun (b : Spec.benchmark) -> b.Spec.bm_name = "sampling") Spec.all in
  let compiled = Spec.compile_exn bm in
  let mc = compiled.Compiler.Codegen.c_mc in
  let desc = compiled.Compiler.Codegen.c_desc in
  let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
  let inputs = Traffic.phvs (Traffic.create ~seed:0xD52ba ~width:bm.Spec.bm_width ~bits:32) phvs in
  let buf = Trace.Buffer.create ~width:bm.Spec.bm_width ~capacity:phvs in
  let engine = Engine.create ~init desc ~mc in
  let time () =
    Engine.run_into engine ~inputs buf;
    best_of_time (fun () -> Engine.run_into engine ~inputs buf) *. 1e9 /. float_of_int phvs
  in
  let baseline = time () in
  let hits = ref 0 in
  let probe =
    {
      Interp.pr_branch = (fun ~alu:_ ~site:_ ~taken:_ -> incr hits);
      pr_latch = (fun ~alu:_ ~slot:_ -> incr hits);
      pr_output = (fun ~alu:_ ~returned:_ -> incr hits);
      pr_mux = (fun ~mux:_ ~ctrl:_ -> incr hits);
    }
  in
  Engine.instrument engine (Some probe);
  let on_ns = time () in
  Engine.instrument engine None;
  let off_ns = time () in
  {
    po_program = bm.Spec.bm_name;
    po_phvs = phvs;
    po_baseline_ns = baseline;
    po_on_ns = on_ns;
    po_off_ns = off_ns;
  }

(* dRMT rows: the bench l2l3 program run through the substrate interface in
   both modes, on identical derived-seed traffic.  Times the steady-state
   [run_into] path (substrate construction and trace freezing excluded). *)

type drmt_mode_sample = {
  dm_mode : string;
  dm_ns_per_phv : float;
  dm_phvs_per_sec : float;
}

type drmt_sample = {
  ds_program : string;
  ds_tables : int;
  ds_phvs : int;
  ds_modes : drmt_mode_sample list;
  ds_agree : bool; (* event trace = sequential trace on the same workload *)
}

let measure_drmt ~phvs : drmt_sample =
  let p = Drmt.P4.parse drmt_program in
  let entries = match Drmt.Entries.parse drmt_entries with Ok e -> e | Error e -> failwith e in
  let run mode =
    let sub = Drmt_substrate.create ~mode ~entries p in
    let inputs = Drmt_substrate.traffic ~seed:0xD52ba sub phvs in
    let packed = Drmt_substrate.pack sub in
    let buf = Trace.Buffer.create ~width:(Substrate.width packed) ~capacity:phvs in
    Substrate.run_into packed ~inputs buf;
    (* warm cache; run_into clears the buffer and re-arms, so time a fresh run *)
    let t0 = Unix.gettimeofday () in
    Substrate.run_into packed ~inputs buf;
    let dt = Unix.gettimeofday () -. t0 in
    let trace =
      {
        Trace.inputs;
        outputs = Trace.Buffer.contents buf;
        final_state = Substrate.current_state packed;
      }
    in
    (dt, trace)
  in
  let dt_seq, trace_seq = run Drmt_substrate.Sequential in
  let dt_ev, trace_ev = run Drmt_substrate.Event in
  let n = float_of_int phvs in
  let sample dm_mode dt =
    {
      dm_mode;
      dm_ns_per_phv = dt *. 1e9 /. n;
      dm_phvs_per_sec = (if dt > 0. then n /. dt else infinity);
    }
  in
  {
    ds_program = "l2l3";
    ds_tables = List.length p.Drmt.P4.tables;
    ds_phvs = phvs;
    ds_modes = [ sample "sequential" dt_seq; sample "event" dt_ev ];
    ds_agree = Trace.equal trace_seq trace_ev;
  }

let render_json ~quick ~phvs ~batch ~(native_unavailable : string option)
    ~(drmt : drmt_sample) ~(sweep : sweep_row list) ~(po : probe_overhead)
    (samples : program_sample list) =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.bprintf b fmt in
  bpf "{\n";
  bpf "  \"schema\": \"druzhba-bench/3\",\n";
  bpf "  \"pr\": 10,\n";
  bpf "  \"quick\": %b,\n" quick;
  bpf "  \"phvs\": %d,\n" phvs;
  bpf "  \"batch\": %d,\n" batch;
  (match native_unavailable with
  | Some reason -> bpf "  \"native_unavailable\": \"%s\",\n" (String.escaped reason)
  | None -> ());
  bpf "  \"timed_reps\": %d,\n" timed_reps;
  bpf "  \"check_phvs\": %d,\n" json_check_phvs;
  bpf "  \"programs\": [\n";
  List.iteri
    (fun i ps ->
      bpf "    {\n";
      bpf "      \"program\": \"%s\", \"depth\": %d, \"width\": %d, \"alu\": \"%s\",\n"
        ps.ps_program ps.ps_depth ps.ps_width ps.ps_alu;
      bpf "      \"levels\": [\n";
      List.iteri
        (fun j ls ->
          let native_fields =
            match ls.ls_native with
            | None -> ""
            | Some nv ->
              Printf.sprintf
                ", \"native_ns_per_phv\": %.1f, \"native_seq_ns_per_phv\": %.1f, \
                 \"native_phvs_per_sec\": %.0f, \"native_agree\": %b"
                nv.nv_ns_per_phv nv.nv_seq_ns_per_phv nv.nv_phvs_per_sec nv.nv_agree
          in
          bpf
            "        {\"level\": \"%s\", \"ns_per_phv\": %.1f, \"seq_ns_per_phv\": %.1f, \
             \"phvs_per_sec\": %.0f, \"bytes_per_phv\": %.2f, \"engine_compiled_agree\": %b, \
             \"batch_agree\": %b%s}%s\n"
            ls.ls_level ls.ls_ns_per_phv ls.ls_seq_ns_per_phv ls.ls_phvs_per_sec
            ls.ls_bytes_per_phv ls.ls_agree ls.ls_batch_agree native_fields
            (if j = 2 then "" else ","))
        ps.ps_levels;
      bpf "      ]\n";
      bpf "    }%s\n" (if i = List.length samples - 1 then "" else ","))
    samples;
  bpf "  ],\n";
  bpf "  \"batch_sweep\": [\n";
  List.iteri
    (fun i sw ->
      bpf "    {\"program\": \"%s\", \"level\": \"scc+inline\", \"points\": [" sw.sw_program;
      List.iteri
        (fun j (bsz, ns) ->
          bpf "{\"batch\": %d, \"ns_per_phv\": %.1f}%s" bsz ns
            (if j = List.length sw.sw_points - 1 then "" else ", "))
        sw.sw_points;
      bpf "]}%s\n" (if i = List.length sweep - 1 then "" else ","))
    sweep;
  bpf "  ],\n";
  bpf "  \"probe_overhead\": {\n";
  bpf "    \"program\": \"%s\", \"phvs\": %d,\n" po.po_program po.po_phvs;
  bpf "    \"baseline_ns_per_phv\": %.1f, \"on_ns_per_phv\": %.1f, \"off_ns_per_phv\": %.1f,\n"
    po.po_baseline_ns po.po_on_ns po.po_off_ns;
  bpf "    \"off_ratio\": %.3f, \"off_ratio_bound\": %.1f, \"within_bound\": %b\n" (po_ratio po)
    probe_ratio_bound (po_ok po);
  bpf "  },\n";
  bpf "  \"drmt\": {\n";
  bpf "    \"program\": \"%s\", \"tables\": %d, \"phvs\": %d,\n" drmt.ds_program drmt.ds_tables
    drmt.ds_phvs;
  bpf "    \"modes\": [\n";
  List.iteri
    (fun i dm ->
      bpf "      {\"mode\": \"%s\", \"ns_per_phv\": %.1f, \"phvs_per_sec\": %.0f}%s\n" dm.dm_mode
        dm.dm_ns_per_phv dm.dm_phvs_per_sec
        (if i = List.length drmt.ds_modes - 1 then "" else ","))
    drmt.ds_modes;
  bpf "    ],\n";
  bpf "    \"event_sequential_agree\": %b\n" drmt.ds_agree;
  bpf "  },\n";
  let all_agree =
    drmt.ds_agree
    && po_ok po
    && List.for_all
         (fun ps ->
           List.for_all
             (fun ls ->
               ls.ls_agree && ls.ls_batch_agree
               && match ls.ls_native with Some nv -> nv.nv_agree | None -> true)
             ps.ps_levels)
         samples
  in
  bpf "  \"all_agree\": %b\n" all_agree;
  bpf "}\n";
  (Buffer.contents b, all_agree)

(* Speedup table against the committed PR 5 report (sequential tick path),
   read back through the schema-tolerant {!Bench_report} parser. *)
let print_speedups ~path ~baseline_path =
  match (Bench_report.of_file baseline_path, Bench_report.of_file path) with
  | Error _, _ | _, Error _ ->
    Printf.printf "(no %s baseline found; skipping speedup table)\n" baseline_path
  | Ok baseline, Ok current ->
    let rows =
      Bench_report.speedups ~baseline ~current
      |> List.filter (fun (_, level, _) -> level = "scc+inline")
    in
    Printf.printf "\nspeedup vs %s (scc+inline, pr%d -> pr%d):\n" baseline_path
      baseline.Bench_report.br_pr current.Bench_report.br_pr;
    List.iter
      (fun (program, _, s) -> Printf.printf "  %-18s %6.1fx%s\n" program s
        (if s >= 5.0 then "" else "   (< 5x)"))
      rows;
    let over = List.length (List.filter (fun (_, _, s) -> s >= 5.0) rows) in
    Printf.printf "  %d/%d rows at >= 5x\n" over (List.length rows)

(* The PR 10 perf gate: the native substrate's batched cost against the
   committed PR 8 report's *sequential* scc+inline cost (the closure tick
   loop the emitted code replaces).  Reported per program; the headline
   claim is >= 5x on >= 9 of the 12 Table-1 rows. *)
let print_native_speedups ~path ~baseline_path =
  match (Bench_report.of_file baseline_path, Bench_report.of_file path) with
  | Error _, _ | _, Error _ ->
    Printf.printf "(no %s baseline found; skipping native speedup table)\n" baseline_path
  | Ok baseline, Ok current -> (
    match current.Bench_report.br_native_unavailable with
    | Some reason -> Printf.printf "\n(native substrate unavailable: %s)\n" reason
    | None ->
      let rows =
        current.Bench_report.br_rows
        |> List.filter_map (fun (r : Bench_report.level_row) ->
               match
                 ( r.Bench_report.br_level,
                   r.Bench_report.br_native_ns_per_phv,
                   Bench_report.find_row baseline ~program:r.Bench_report.br_program
                     ~level:"scc+inline" )
               with
               | "scc+inline", Some nns, Some b when nns > 0. -> (
                 match b.Bench_report.br_seq_ns_per_phv with
                 | Some seq -> Some (r.Bench_report.br_program, seq /. nns)
                 | None -> None)
               | _ -> None)
      in
      Printf.printf "\nnative (batched) vs %s sequential scc+inline:\n" baseline_path;
      List.iter
        (fun (program, s) ->
          Printf.printf "  %-18s %6.1fx%s\n" program s (if s >= 5.0 then "" else "   (< 5x)"))
        rows;
      let over = List.length (List.filter (fun (_, s) -> s >= 5.0) rows) in
      Printf.printf "  %d/%d rows at >= 5x\n" over (List.length rows))

let run_json_report ~quick ~batch ~path =
  let phvs = if quick then 5_000 else 50_000 in
  let native_unavailable =
    match Native_substrate.available () with Ok () -> None | Error reason -> Some reason
  in
  Printf.printf
    "perf trajectory: %d PHVs/run, compiled substrate, batched tick path (batch %d, best of %d)\n"
    phvs batch timed_reps;
  (match native_unavailable with
  | Some reason -> Printf.printf "native substrate unavailable (%s); native columns omitted\n" reason
  | None -> ());
  Printf.printf "%-18s %-12s %12s %12s %14s %12s %6s %6s %12s %6s\n" "program" "level" "ns/PHV"
    "seq ns" "PHVs/sec" "bytes/PHV" "agree" "batch" "native ns" "native";
  let samples =
    List.map
      (fun bm ->
        let ps = measure_program ~phvs ~batch ~native:(native_unavailable = None) bm in
        List.iter
          (fun ls ->
            Printf.printf "%-18s %-12s %12.1f %12.1f %14.0f %12.2f %6s %6s %12s %6s\n"
              ps.ps_program ls.ls_level ls.ls_ns_per_phv ls.ls_seq_ns_per_phv ls.ls_phvs_per_sec
              ls.ls_bytes_per_phv
              (if ls.ls_agree then "yes" else "NO")
              (if ls.ls_batch_agree then "yes" else "NO")
              (match ls.ls_native with
              | Some nv -> Printf.sprintf "%.1f" nv.nv_ns_per_phv
              | None -> "-")
              (match ls.ls_native with
              | Some nv -> if nv.nv_agree then "yes" else "NO"
              | None -> "-"))
          ps.ps_levels;
        ps)
      Spec.all
  in
  let sweep = List.map (measure_sweep ~phvs) Spec.all in
  Printf.printf "\nbatch sweep (scc+inline, ns/PHV):\n%-18s" "program";
  List.iter (fun b -> Printf.printf " %9s" (Printf.sprintf "B=%d" b)) sweep_batches;
  print_newline ();
  List.iter
    (fun sw ->
      Printf.printf "%-18s" sw.sw_program;
      List.iter (fun (_, ns) -> Printf.printf " %9.1f" ns) sw.sw_points;
      print_newline ())
    sweep;
  let po = measure_probe_overhead ~phvs:(if quick then 2_000 else 10_000) in
  Printf.printf
    "\nprobe overhead (%s, unopt interpreter): baseline %.1f ns/PHV, on %.1f, off %.1f \
     (off/baseline %.3f, bound %.1f)\n"
    po.po_program po.po_baseline_ns po.po_on_ns po.po_off_ns (po_ratio po) probe_ratio_bound;
  let drmt = measure_drmt ~phvs:(if quick then 2_000 else 20_000) in
  List.iter
    (fun dm ->
      Printf.printf "%-18s %-12s %12.1f %14.0f %14s %8s\n" "drmt/l2l3" dm.dm_mode dm.dm_ns_per_phv
        dm.dm_phvs_per_sec "-"
        (if drmt.ds_agree then "yes" else "NO"))
    drmt.ds_modes;
  let json, all_agree =
    render_json ~quick ~phvs ~batch ~native_unavailable ~drmt ~sweep ~po samples
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "\nwrote %s\n" path;
  print_speedups ~path ~baseline_path:"BENCH_pr5.json";
  print_native_speedups ~path ~baseline_path:"BENCH_pr8.json";
  if not all_agree then
    Printf.printf
      "DIVERGENCE: a backend pair differs (Engine/Compiled, batched/sequential, \
       native/closures, dRMT event/sequential) or the disabled coverage probe is not free\n";
  all_agree

(* --- main --------------------------------------------------------------------------- *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* --batch N selects the lane count for the batched measurements (default
   {!Substrate.default_batch}). *)
let batch_arg () =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--batch" then int_of_string_opt Sys.argv.(i + 1)
    else find (i + 1)
  in
  match find 1 with
  | Some b when b >= 1 -> b
  | Some _ -> failwith "--batch must be >= 1"
  | None -> Substrate.default_batch

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  if Array.exists (( = ) "--json") Sys.argv then begin
    (* JSON trajectory mode: only the machine-readable report (plus the
       agreement gates); exits non-zero on divergence *)
    section "Perf trajectory (BENCH_pr10.json)";
    if not (run_json_report ~quick ~batch:(batch_arg ()) ~path:"BENCH_pr10.json") then exit 1
  end
  else begin
  let phvs = if quick then 5_000 else 50_000 in

  section "1. Bechamel microbenchmarks (compiled descriptions)";
  run_bechamel ();

  section (Printf.sprintf "2. Table 1 reproduction: %d PHVs, closure-compiled descriptions" phvs);
  let rows = Table1.run ~phvs ~mode:"compiled" () in
  Fmt.pr "%a@." Table1.pp rows;
  Fmt.pr "%a" Table1.summary rows;

  section (Printf.sprintf "3. Ablation: %d PHVs, interpreted descriptions" phvs);
  let rows_interp = Table1.run ~phvs ~mode:"interpreter" () in
  Fmt.pr "%a@." Table1.pp rows_interp;
  Fmt.pr "%a" Table1.summary rows_interp;

  section (Printf.sprintf "3b. Native codegen: %d PHVs, Dynlinked emitted descriptions" phvs);
  (match Native_substrate.available () with
  | Error reason -> Printf.printf "(native substrate unavailable: %s)\n" reason
  | Ok () ->
    let rows_native = Table1.run ~phvs ~mode:"native" () in
    Fmt.pr "%a@." Table1.pp rows_native;
    Fmt.pr "%a" Table1.summary rows_native);

  section "4. Fig. 6: pipeline-description sizes across optimization versions";
  let v = Fig6.render () in
  Fmt.pr "%a@." Fig6.pp_summary v;
  let v45 = Fig6.render ~depth:4 ~width:5 ~stateful:"pred_raw" () in
  Fmt.pr "4x5 pred_raw pipeline: %a@." Fig6.pp_summary v45;

  section "4b. Dead-ALU elimination: description sizes after liveness pruning";
  run_dead_elim_ablation ();

  section "5. Case study (Sec 5.2): testing the compilers";
  let report =
    Casestudy.run
      ~phvs:(if quick then 300 else 1000)
      ~jobs:(Druzhba.Campaign.Runner.default_jobs ()) ()
  in
  Fmt.pr "%a@." Casestudy.pp report;

  section "5b. Campaign throughput scaling across domains (1/2/4/8)";
  run_campaign_scaling ~trials:(if quick then 50 else 200);

  section "6. dRMT (Sec 4): schedule and throughput";
  run_drmt_bench ();

  Printf.printf "\ndone.\n"
  end
