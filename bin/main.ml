(* The druzhba command-line tool.

   Subcommands mirror the paper's components:

     druzhba dgen       generate and print a pipeline description (Fig. 6)
     druzhba dsim       simulate machine code on a pipeline (RMT dsim)
     druzhba compile    compile a packet program to machine code
     druzhba lint       static checks on a pipeline + machine code
     druzhba vet        translation validation: prove the optimizer and backend correct
     druzhba fuzz       compiler-testing workflow of Fig. 5
     druzhba campaign   multicore differential fuzz campaign
     druzhba synth      synthesis backend + wide-width verification (§5.2)
     druzhba drmt       dRMT schedule + simulation (§4)
     druzhba table1     reproduce Table 1
     druzhba casestudy  reproduce the §5.2 case study
     druzhba benchmarks list the Table-1 programs *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- Shared arguments ---------------------------------------------------------- *)

let depth_arg =
  Arg.(value & opt int 2 & info [ "depth" ] ~docv:"N" ~doc:"Number of pipeline stages.")

let width_arg =
  Arg.(
    value & opt int 2
    & info [ "width" ] ~docv:"N" ~doc:"ALUs per stage and PHV containers.")

let bits_arg =
  Arg.(value & opt int 32 & info [ "bits" ] ~docv:"B" ~doc:"Datapath width in bits.")

let seed_arg = Arg.(value & opt int 0xD52ba & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")

let phvs_arg =
  Arg.(value & opt int 1000 & info [ "phvs" ] ~docv:"N" ~doc:"Number of random PHVs to simulate.")

let stateful_arg =
  Arg.(
    value & opt string "if_else_raw"
    & info [ "stateful-alu" ] ~docv:"ATOM|FILE"
        ~doc:"Stateful ALU: a built-in atom name or a .alu file in the ALU DSL.")

let stateless_arg =
  Arg.(
    value & opt string "stateless_full"
    & info [ "stateless-alu" ] ~docv:"ATOM|FILE"
        ~doc:"Stateless ALU: a built-in atom name or a .alu file in the ALU DSL.")

let level_arg =
  let levels =
    [ ("unoptimized", Optimizer.Unoptimized); ("scc", Optimizer.Scc); ("scc-inline", Optimizer.Scc_inline) ]
  in
  Arg.(
    value
    & opt (enum levels) Optimizer.Scc
    & info [ "optimize" ] ~docv:"LEVEL" ~doc:"Optimization level: unoptimized, scc, scc-inline.")

let atom_names = String.concat ", " Atoms.all_names

(* Exit-code discipline: 2 for usage errors (bad flags, unparseable
   inputs), 1 for genuine findings (divergences, lint errors, fuzz
   failures).  Everything user-supplied is parsed through the [Result]
   frontends so a malformed file is a diagnostic, not a backtrace. *)
let usage_error fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("druzhba: " ^ msg);
      exit 2)
    fmt

let resolve_alu spec =
  match Atoms.find spec with
  | Some alu -> alu
  | None ->
    if Sys.file_exists spec then
      match
        Alu_dsl.Parser.parse_result
          ~name:(Filename.remove_extension (Filename.basename spec))
          (read_file spec)
      with
      | Ok alu -> alu
      | Error e -> usage_error "%s: %s" spec e
    else usage_error "unknown atom and no such file: %s (built-ins: %s)" spec atom_names

let parse_mc_file path =
  match Machine_code.parse (read_file path) with
  | Ok mc -> mc
  | Error e -> usage_error "%s: %s" path e

(* --- dgen ------------------------------------------------------------------------ *)

let dgen_cmd =
  let run depth width bits stateful stateless mc_file level seed =
    let stateful = resolve_alu stateful and stateless = resolve_alu stateless in
    let desc = Dgen.generate (Dgen.config ~depth ~width ~bits ()) ~stateful ~stateless in
    let optimized =
      match (mc_file, level) with
      | None, Optimizer.Unoptimized -> desc
      | None, _ ->
        (* no machine code given: optimize against a random program *)
        let mc = Fuzz.random_mc (Prng.create seed) desc in
        Optimizer.apply ~level ~mc desc
      | Some path, level -> Optimizer.apply ~level ~mc:(parse_mc_file path) desc
    in
    print_string (Emit.to_string optimized);
    Printf.printf "\n(* %d IR nodes, %d helpers, %d machine-code controls *)\n"
      (Ir.size optimized) (Ir.helper_count optimized)
      (List.length (Ir.required_names optimized))
  in
  let doc = "Generate a pipeline description and print it (the Fig. 6 views)." in
  Cmd.v
    (Cmd.info "dgen" ~doc)
    Term.(
      const run $ depth_arg $ width_arg $ bits_arg $ stateful_arg $ stateless_arg
      $ Arg.(value & opt (some file) None & info [ "machine-code" ] ~docv:"FILE")
      $ level_arg $ seed_arg)

(* --- dsim ------------------------------------------------------------------------- *)

let dsim_cmd =
  let run depth width bits stateful stateless mc_file level seed phvs show_all =
    let stateful = resolve_alu stateful and stateless = resolve_alu stateless in
    let mc =
      match mc_file with
      | Some path -> parse_mc_file path
      | None ->
        let desc = Dgen.generate (Dgen.config ~depth ~width ~bits ()) ~stateful ~stateless in
        Fuzz.random_mc (Prng.create (seed + 1)) desc
    in
    let { sim_trace; _ } =
      simulate ~level ~bits ~seed ~depth ~width ~stateful ~stateless ~mc ~phvs ()
    in
    if show_all then Fmt.pr "%a@." Trace.pp sim_trace
    else begin
      let n = List.length sim_trace.Trace.outputs in
      List.iteri
        (fun i (input, output) ->
          if i < 10 || i >= n - 2 then
            Fmt.pr "phv %4d: in %a -> out %a@." i Phv.pp input Phv.pp output)
        (List.combine sim_trace.Trace.inputs sim_trace.Trace.outputs);
      if n > 12 then Fmt.pr "... (%d PHVs total)@." n;
      List.iter
        (fun (name, state) ->
          Fmt.pr "state %s = [%a]@." name Fmt.(array ~sep:(any "; ") int) state)
        sim_trace.Trace.final_state
    end
  in
  let doc = "Simulate random PHVs through a pipeline loaded with machine code (RMT dsim)." in
  Cmd.v
    (Cmd.info "dsim" ~doc)
    Term.(
      const run $ depth_arg $ width_arg $ bits_arg $ stateful_arg $ stateless_arg
      $ Arg.(value & opt (some file) None & info [ "machine-code" ] ~docv:"FILE")
      $ level_arg $ seed_arg $ phvs_arg
      $ Arg.(value & flag & info [ "full-trace" ] ~doc:"Print every PHV."))

(* --- compile ----------------------------------------------------------------------- *)

let program_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "program" ] ~docv:"FILE|BENCHMARK"
        ~doc:"Packet program: a .domino file or a Table-1 benchmark name.")

let load_program_and_target spec depth width bits stateful stateless =
  match Spec.find spec with
  | Some bm -> (Spec.program bm, Spec.target ~bits bm)
  | None ->
    if Sys.file_exists spec then
      let program =
        match
          Compiler.Frontend.parse_result
            ~name:(Filename.remove_extension (Filename.basename spec))
            (read_file spec)
        with
        | Ok program -> program
        | Error e -> usage_error "%s: %s" spec e
      in
      ( program,
        Compiler.Codegen.target ~depth ~width ~bits ~stateful:(resolve_alu stateful)
          ~stateless:(resolve_alu stateless) () )
    else usage_error "no such benchmark or file: %s" spec

let compile_cmd =
  let run program depth width bits stateful stateless =
    let program, target = load_program_and_target program depth width bits stateful stateless in
    match Compiler.Codegen.compile ~target program with
    | Error e ->
      Printf.eprintf "compile error: %s\n" e;
      exit 1
    | Ok compiled ->
      print_string (Machine_code.to_string compiled.Compiler.Codegen.c_mc);
      let l = compiled.Compiler.Codegen.c_layout in
      List.iter (fun (f, c) -> Printf.printf "# input  pkt.%s -> container %d\n" f c)
        l.Compiler.Codegen.l_inputs;
      List.iter (fun (f, c) -> Printf.printf "# output pkt.%s -> container %d\n" f c)
        l.Compiler.Codegen.l_outputs;
      List.iter
        (fun (v, (alu, slot)) -> Printf.printf "# state  %s -> %s[%d]\n" v alu slot)
        l.Compiler.Codegen.l_state
  in
  let doc = "Compile a packet program to Druzhba machine code (rule-based backend)." in
  Cmd.v
    (Cmd.info "compile" ~doc)
    Term.(
      const run $ program_arg $ depth_arg $ width_arg $ bits_arg $ stateful_arg $ stateless_arg)

(* --- lint -------------------------------------------------------------------------- *)

let lint_cmd =
  let run depth width bits stateful stateless mc_file program p4_file processors match_cap
      action_cap benchmarks json strict =
    (* lint keeps duplicate pairs visible instead of rejecting them: the
       tolerant [parse_pairs] feeds the duplicate-pair rule, and the
       last-wins [of_list] view is what the semantic rules check *)
    let parse_mc path =
      match Machine_code.parse_pairs (read_file path) with
      | Ok pairs -> (Machine_code.of_list pairs, pairs)
      | Error e -> usage_error "%s: %s" path e
    in
    let targets =
      match p4_file with
      | Some path ->
        (* dRMT mode: lint the table-dependency DAG of a P4 program for
           cycles and line-rate schedulability under the given crossbar *)
        let p =
          match Drmt.P4.parse_result (read_file path) with
          | Ok p -> p
          | Error e -> usage_error "%s: %s" path e
        in
        let cfg =
          Drmt.Scheduler.config ~processors ~match_capacity:match_cap
            ~action_capacity:action_cap ()
        in
        [ (Filename.remove_extension (Filename.basename path), Lint.check_p4 ~cfg p) ]
      | None ->
      if benchmarks then
        (* every Table-1 program, compiled by the rule-based backend *)
        List.map
          (fun (bm : Spec.benchmark) ->
            let compiled = Spec.compile_exn bm in
            ( bm.Spec.bm_name,
              Lint.check ~mc:compiled.Compiler.Codegen.c_mc compiled.Compiler.Codegen.c_desc ))
          Spec.all
      else
        match program with
        | Some p -> (
          let program, target = load_program_and_target p depth width bits stateful stateless in
          match Compiler.Codegen.compile ~target program with
          | Error e ->
            Printf.eprintf "compile error: %s\n" e;
            exit 2
          | Ok compiled ->
            (* --machine-code replaces the compiler's own output, so a
               third-party program can be checked against this pipeline *)
            let mc, pairs =
              match mc_file with
              | Some path -> parse_mc path
              | None -> (compiled.Compiler.Codegen.c_mc, [])
            in
            [ (program.Compiler.Ast.name, Lint.check ~mc ~pairs compiled.Compiler.Codegen.c_desc) ])
        | None ->
          let stateful = resolve_alu stateful and stateless = resolve_alu stateless in
          let desc = Dgen.generate (Dgen.config ~depth ~width ~bits ()) ~stateful ~stateless in
          let findings =
            match mc_file with
            | Some path ->
              let mc, pairs = parse_mc path in
              Lint.check ~mc ~pairs desc
            | None -> Lint.check desc (* description-only rules *)
          in
          [ ("pipeline", findings) ]
    in
    if json then
      print_string
        (Lint.report_to_json ~tool:"lint"
           (List.map (fun (name, findings) -> Lint.target ~name findings) targets)
        ^ "\n")
    else
      List.iter (fun (name, findings) -> Fmt.pr "@[<v>%s:@,%a@]@." name Lint.pp findings) targets;
    let failed =
      List.exists (fun (_, fs) -> Lint.has_errors fs || (strict && fs <> [])) targets
    in
    if failed then exit 1
  in
  let doc =
    "Statically check a pipeline description and machine code: missing and out-of-range \
     machine-code pairs, dead ALUs, write-only state slots, unreachable branches, helper-call \
     defects, unused ALU-DSL declarations.  With --p4, check a dRMT program's table-dependency \
     DAG for cycles and line-rate schedulability instead.  Exits non-zero on errors."
  in
  Cmd.v
    (Cmd.info "lint" ~doc)
    Term.(
      const run $ depth_arg $ width_arg $ bits_arg $ stateful_arg $ stateless_arg
      $ Arg.(
          value
          & opt (some file) None
          & info [ "machine-code" ] ~docv:"FILE" ~doc:"Machine-code program to check.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "program" ] ~docv:"FILE|BENCHMARK"
              ~doc:"Compile this packet program and lint the result.")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "p4" ] ~docv:"FILE"
              ~doc:
                "Lint a dRMT P4-subset program instead: flag cyclic and unschedulable \
                 table-dependency DAGs (offending tables named).")
      $ Arg.(
          value & opt int 4
          & info [ "processors" ] ~docv:"P" ~doc:"dRMT processors (with --p4).")
      $ Arg.(
          value & opt int 8
          & info [ "match-capacity" ] ~docv:"M"
              ~doc:"Crossbar match issues per cycle (with --p4).")
      $ Arg.(
          value & opt int 32
          & info [ "action-capacity" ] ~docv:"A"
              ~doc:"Crossbar action issues per cycle (with --p4).")
      $ Arg.(
          value & flag
          & info [ "benchmarks" ] ~doc:"Lint every Table-1 benchmark program (used by CI).")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output.")
      $ Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as failures."))

(* --- fuzz -------------------------------------------------------------------------- *)

(* On a divergence, backward-slice the provenance graph from the diverging
   observable so the report names the ALUs / controls involved.  A spec
   state index is mapped back to its (ALU, slot) through the layout. *)
let print_triage ~desc ~mc ~state_layout kind =
  let kind =
    match kind with
    | `Output c -> Some (`Output c)
    | `State idx -> (
      match List.find_opt (fun (_, _, i) -> i = idx) state_layout with
      | Some (alu, slot, _) -> Some (`State (alu, slot))
      | None -> None)
  in
  match kind with
  | None -> ()
  | Some kind -> Fmt.pr "%a@." Verify.pp_triage (Verify.triage ~desc ~mc kind)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"J"
        ~doc:
          "Shard trials across $(docv) OCaml domains.  0 means the runtime's recommended domain \
           count.  Results are independent of $(docv): per-trial seeds are derived from the \
           master seed and the trial index.")

let resolve_jobs jobs = if jobs = 0 then Campaign.Runner.default_jobs () else jobs

let fuzz_cmd =
  let run program depth width bits stateful stateless phvs seed level trials jobs =
    let program, target = load_program_and_target program depth width bits stateful stateless in
    match Compiler.Codegen.compile ~target program with
    | Error e ->
      Printf.eprintf "compile error: %s\n" e;
      exit 1
    | Ok compiled ->
      if trials <= 1 then begin
        let outcome = Compiler.Testing.check ~level ~seed ~n:phvs compiled in
        Fmt.pr "%s: %a@." program.Compiler.Ast.name Fuzz.pp_outcome outcome;
        (match outcome with
        | Fuzz.Mismatch mm ->
          print_triage ~desc:compiled.Compiler.Codegen.c_desc ~mc:compiled.Compiler.Codegen.c_mc
            ~state_layout:(Compiler.Testing.state_layout compiled) mm.Fuzz.mm_kind
        | _ -> ());
        if not (Fuzz.outcome_is_pass outcome) then exit 1
      end
      else begin
        (* campaign mode: [trials] independent fuzz runs with seeds derived
           from the master seed, sharded over domains *)
        Campaign.Runner.force_atoms ();
        let jobs = resolve_jobs jobs in
        let outcomes =
          Campaign.Runner.parallel_init ~jobs trials (fun i ->
              let trial_seed = Prng.derive seed i in
              (i, trial_seed, Compiler.Testing.check ~level ~seed:trial_seed ~n:phvs compiled))
        in
        let failures =
          Array.to_list outcomes |> List.filter (fun (_, _, o) -> not (Fuzz.outcome_is_pass o))
        in
        Fmt.pr "%s: %d trials (%d PHVs each, master seed %d): %d passed, %d failed@."
          program.Compiler.Ast.name trials phvs seed
          (trials - List.length failures)
          (List.length failures);
        List.iter
          (fun (i, trial_seed, o) ->
            Fmt.pr "  trial %d (seed %d): %a@." i trial_seed Fuzz.pp_outcome o)
          failures;
        if failures <> [] then exit 1
      end
  in
  let doc = "Run the compiler-testing workflow of Fig. 5: compile, simulate, compare traces." in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ program_arg $ depth_arg $ width_arg $ bits_arg $ stateful_arg $ stateless_arg
      $ phvs_arg $ seed_arg $ level_arg
      $ Arg.(
          value & opt int 1
          & info [ "trials" ] ~docv:"N"
              ~doc:"Run $(docv) independent fuzz trials with derived seeds.")
      $ jobs_arg)

(* --- witness files -------------------------------------------------------------------

   [druzhba vet --witnesses FILE] exports refutation witnesses and
   undecided-obligation candidates; [druzhba campaign --directed FILE]
   replays them as directed trials (the candidate packet first, from reset,
   then random traffic).  Line format:

     druzhba-witnesses/1
     depth 2
     width 2
     bits 10
     stateful if_else_raw
     stateless stateless_full
     trial <program> <subject-id> <v0,v1,...>                              *)

let witness_schema = "druzhba-witnesses/1"

let parse_witness_file path =
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None else Some l)
  in
  match lines with
  | [] -> usage_error "%s: empty witness file" path
  | schema :: rest ->
    if schema <> witness_schema then
      usage_error "%s: expected '%s', got '%s'" path witness_schema schema;
    let header = Hashtbl.create 8 in
    let trials = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "trial"; program; subject; vals ] ->
          let phv =
            List.map
              (fun v ->
                match int_of_string_opt v with
                | Some n -> n
                | None -> usage_error "%s: bad container value '%s'" path v)
              (String.split_on_char ',' vals)
          in
          trials := (program, subject, phv) :: !trials
        | [ key; value ] -> Hashtbl.replace header key value
        | _ -> usage_error "%s: malformed line '%s'" path line)
      rest;
    (header, List.rev !trials)

let run_directed path ~phvs ~seed ~report =
  let header, trials = parse_witness_file path in
  let get key default = Option.value (Hashtbl.find_opt header key) ~default in
  let geti key default =
    match int_of_string_opt (get key (string_of_int default)) with
    | Some n -> n
    | None -> usage_error "%s: bad header value for '%s'" path key
  in
  let depth = geti "depth" 2 and width = geti "width" 2 and bits = geti "bits" 32 in
  let stateful = get "stateful" "if_else_raw" and stateless = get "stateless" "stateless_full" in
  let programs =
    List.fold_left
      (fun acc (p, _, _) -> if List.mem p acc then acc else p :: acc)
      [] trials
    |> List.rev
  in
  let failures = ref 0 in
  let records = ref [] in
  List.iter
    (fun name ->
      let program, target = load_program_and_target name depth width bits stateful stateless in
      match Compiler.Codegen.compile ~target program with
      | Error e ->
        Printf.eprintf "compile error (%s): %s\n" name e;
        exit 2
      | Ok compiled ->
        let w = compiled.Compiler.Codegen.c_desc.Ir.d_width in
        List.iter
          (fun (p, subject, vals) ->
            if p = name then begin
              let phv = Array.make w 0 in
              List.iteri (fun i v -> if i < w then phv.(i) <- v) vals;
              (* maximal optimization level: directed trials exist to chase
                 what static validation could not prove about the optimizer *)
              let outcome =
                Compiler.Testing.check_directed ~level:Optimizer.Scc_inline ~seed
                  ~prefix:[ phv ] ~n:phvs compiled
              in
              Fmt.pr "directed %s %s: %a@." p subject Fuzz.pp_outcome outcome;
              let pass = Fuzz.outcome_is_pass outcome in
              if not pass then incr failures;
              records :=
                Campaign.Report.Obj
                  [
                    ("program", Campaign.Report.Str p);
                    ("subject", Campaign.Report.Str subject);
                    ("phv", Campaign.Report.phv phv);
                    ("pass", Campaign.Report.Bool pass);
                    ("outcome", Campaign.Report.Str (Fmt.str "%a" Fuzz.pp_outcome outcome));
                  ]
                :: !records
            end)
          trials)
    programs;
  Fmt.pr "%d directed trial(s), %d failure(s)@." (List.length trials) !failures;
  (* the directed report shares the campaign report's determinism contract:
     trials in witness-file order, nothing environmental, atomic write —
     so a restarted directed job reproduces the file byte-for-byte *)
  (match report with
  | None -> ()
  | Some path ->
    Campaign.Checkpoint.atomic_write_string path
      (Campaign.Report.to_string
         (Campaign.Report.Obj
            [
              ("campaign", Campaign.Report.Str "directed");
              ("seed", Campaign.Report.Int seed);
              ("phvs", Campaign.Report.Int phvs);
              ("trials", Campaign.Report.Int (List.length trials));
              ("failures", Campaign.Report.Int !failures);
              ("results", Campaign.Report.List (List.rev !records));
            ])
      ^ "\n"));
  if !failures > 0 then exit Campaign.Exit_code.findings

(* --- campaign ----------------------------------------------------------------------- *)

let campaign_cmd =
  let run trials jobs seed substrate phvs no_shrink max_probes fuel timeout max_failures faults
      fault_runs faults_per_run checkpoint resume checkpoint_every stop_after coverage corpus_dir
      sabotage_pass json out directed chaos_kill_after chaos_kill_file =
    match directed with
    | Some path -> run_directed path ~phvs ~seed ~report:out
    | None ->
    if resume && checkpoint = None then usage_error "--resume requires --checkpoint FILE";
    if corpus_dir <> None && not coverage then usage_error "--corpus requires --coverage";
    if coverage && (checkpoint <> None || resume) then
      usage_error "--coverage is incompatible with --checkpoint/--resume";
    if sabotage_pass && (checkpoint <> None || resume) then
      usage_error "--sabotage-pass is incompatible with --checkpoint/--resume";
    (* --trial-fuel is exact ticks; --trial-timeout converts seconds at the
       fixed nominal tick rate so the watchdog stays deterministic *)
    let fuel =
      match (fuel, timeout) with
      | Some _, Some _ -> usage_error "--trial-fuel and --trial-timeout are mutually exclusive"
      | Some f, None -> Some f
      | None, Some secs -> Some (secs * Budget.nominal_ticks_per_second)
      | None, None -> None
    in
    let faults_cfg =
      if faults then Some (Campaign.fault_config ~runs:fault_runs ~per_run:faults_per_run ())
      else None
    in
    (* chaos flags (testing aids for the service supervisor's fault-injection
       suite): at trial CHAOS_N the worker SIGKILLs itself — unconditionally
       (a poison job that dies on every attempt), or only when the arming
       file exists, consuming it first (a one-shot mid-run kill -9 whose
       restart then runs clean from the checkpoint). *)
    let chaos_hook =
      match chaos_kill_after with
      | None -> None
      | Some at ->
        Some
          (fun i ->
            if i = at then
              match chaos_kill_file with
              | None -> Unix.kill (Unix.getpid ()) Sys.sigkill
              | Some f ->
                if Sys.file_exists f then begin
                  Sys.remove f;
                  Unix.kill (Unix.getpid ()) Sys.sigkill
                end)
    in
    let cfg =
      try
        Campaign.config ~trials ~jobs:(resolve_jobs jobs) ~master_seed:seed ~substrate ~phvs
          ~shrink:(not no_shrink) ~max_probes ?fuel ?max_failures ?faults:faults_cfg
          ~checkpoint_every ~coverage ?corpus_dir ~sabotage_pass ?hook:chaos_hook ()
      with Invalid_argument msg -> usage_error "%s" msg
    in
    (* Graceful shutdown: SIGINT/SIGTERM cut the campaign at the next block
       boundary after its checkpoint is flushed, then exit with the distinct
       "interrupted" code — a supervisor-initiated stop is never data loss. *)
    let interrupted = ref false in
    let graceful = Sys.Signal_handle (fun _ -> interrupted := true) in
    Sys.set_signal Sys.sigint graceful;
    Sys.set_signal Sys.sigterm graceful;
    match
      Campaign.run_resumable ?checkpoint ~resume ?stop_after
        ~should_stop:(fun () -> !interrupted)
        cfg
    with
    | exception Campaign.Resume_error msg -> usage_error "%s" msg
    | None when !interrupted ->
      (match checkpoint with
      | Some path ->
        Fmt.pr "campaign interrupted; checkpoint flushed to %s — continue with --resume@." path
      | None ->
        Fmt.pr "campaign interrupted (no --checkpoint configured, progress not persisted)@.");
      exit Campaign.Exit_code.interrupted
    | None ->
      (* --stop-after simulated a kill; the checkpoint holds the progress *)
      Fmt.pr "campaign stopped by --stop-after; continue with --checkpoint %s --resume@."
        (Option.value checkpoint ~default:"FILE")
    | Some report ->
      (match out with
      | Some path -> Campaign.Checkpoint.atomic_write_string path (Campaign.to_json report ^ "\n")
      | None -> ());
      if json then print_string (Campaign.to_json report ^ "\n")
      else Fmt.pr "%a@." Campaign.pp report;
      let code = Campaign.Exit_code.of_report report in
      if code <> Campaign.Exit_code.ok then exit code
  in
  let doc =
    "Run a multicore differential fuzz campaign.  --substrate rmt runs random machine code on \
     random small pipelines, executed on both simulation backends (interpreter and \
     closure-compiled) at all three optimization levels; --substrate drmt runs random P4 \
     programs and table entries on the event-driven dRMT model against the sequential P4 \
     reference semantics; --substrate all alternates; --substrate native emits real OCaml from \
     the pipeline IR, compiles and Dynlinks it, and diffs it against the interpreted \
     backends.  Cross-substrate divergences are shrunk \
     and reported.  Trials are crash-contained and watchdogged \
     (--trial-fuel/--trial-timeout); --max-failures stops early; --checkpoint/--resume survive \
     kills; --faults adds hardware fault injection.  The JSON report is byte-identical for a \
     fixed master seed regardless of --jobs."
  in
  Cmd.v
    (Cmd.info "campaign" ~doc)
    Term.(
      const run
      $ Arg.(value & opt int 100 & info [ "trials" ] ~docv:"N" ~doc:"Number of trials.")
      $ jobs_arg $ seed_arg
      $ Arg.(
          value
          & opt
              (enum (List.map (fun n -> (n, n)) Campaign.substrate_names))
              "rmt"
          & info [ "substrate" ] ~docv:"FAMILY"
              ~doc:
                "Substrate selection from the registry: $(b,rmt) (interpreter vs closure \
                 compiler at all optimization levels), $(b,drmt) (event-driven dRMT vs \
                 sequential P4 reference semantics), $(b,all) (trials alternate between the \
                 two), or $(b,native) (interpreter and closures vs the Dynlinked native-codegen \
                 artifact; degrades to an interpreted fallback without the OCaml toolchain).")
      $ Arg.(value & opt int 100 & info [ "phvs" ] ~docv:"N" ~doc:"PHVs simulated per trial.")
      $ Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip counterexample shrinking.")
      $ Arg.(
          value & opt int 400
          & info [ "max-probes" ] ~docv:"N" ~doc:"Shrinking budget (oracle re-runs).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "trial-fuel" ] ~docv:"TICKS"
              ~doc:"Per-trial watchdog budget in simulation ticks (deterministic).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "trial-timeout" ] ~docv:"SECONDS"
              ~doc:
                "Per-trial watchdog as approximate seconds, converted to ticks at a fixed \
                 nominal rate (so reports stay machine-independent).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "max-failures" ] ~docv:"N"
              ~doc:"Circuit breaker: stop after the $(docv)th failing trial (partial report).")
      $ Arg.(
          value & flag
          & info [ "faults" ]
              ~doc:
                "Fault-injection mode: stress every agreeing trial under seeded bit flips, \
                 stuck-at state slots and dropped PHVs; both substrates must agree under faults \
                 and fault-free replays must stay pristine.")
      $ Arg.(
          value & opt int 8
          & info [ "fault-runs" ] ~docv:"N" ~doc:"Fault scenarios per trial (with --faults).")
      $ Arg.(
          value & opt int 2
          & info [ "faults-per-run" ] ~docv:"N" ~doc:"Faults drawn per scenario (with --faults).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "checkpoint" ] ~docv:"FILE"
              ~doc:"Persist campaign progress to $(docv) after every block of trials.")
      $ Arg.(
          value & flag
          & info [ "resume" ]
              ~doc:"Continue a killed campaign from --checkpoint; the final report is \
                    byte-identical to an uninterrupted run.")
      $ Arg.(
          value & opt int 64
          & info [ "checkpoint-every" ] ~docv:"N"
              ~doc:"Trials per execution block (checkpoint granularity).")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "stop-after" ] ~docv:"N"
              ~doc:"Testing aid: abort the campaign after $(docv) trials as if killed.")
      $ Arg.(
          value & flag
          & info [ "coverage" ]
              ~doc:
                "Coverage-guided mode: track the structural coverage each trial exercises \
                 (ALU branch arms, output-mux selector arms, stateful latch paths, \
                 machine-code value classes, dRMT DAG shapes), keep coverage-novel programs \
                 in a corpus, and bias later trials toward structural mutations of corpus \
                 members.  Corpus evolution is deterministic and byte-identical across \
                 --jobs; the report gains a druzhba-coverage/1 section.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "corpus" ] ~docv:"DIR"
              ~doc:"Persist the evolved corpus to $(docv) (requires --coverage).")
      $ Arg.(
          value & flag
          & info [ "sabotage-pass" ]
              ~doc:
                "Testing aid: plant a buggy optimizer pass whose trigger needs a boundary \
                 immediate value that uniform-random generation cannot produce — the \
                 acceptance gate showing coverage-guided mode finds what random misses.")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Print the JSON report to stdout.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "report" ] ~docv:"FILE" ~doc:"Write the JSON report to $(docv).")
      $ Arg.(
          value
          & opt (some file) None
          & info [ "directed" ] ~docv:"FILE"
              ~doc:
                "Replay the witness candidates in $(docv) (from $(b,druzhba vet --witnesses)) \
                 as directed trials instead of a random campaign: each candidate packet is fed \
                 first, from the reset state, followed by --phvs random PHVs.  Exits non-zero \
                 if any directed trial diverges.")
      $ Arg.(
          value
          & opt (some int) None
          & info [ "chaos-kill-after" ] ~docv:"N"
              ~doc:
                "Testing aid (service fault injection): SIGKILL this process at trial $(docv) — \
                 on every attempt, or once if --chaos-kill-file is armed.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "chaos-kill-file" ] ~docv:"FILE"
              ~doc:
                "Testing aid: with --chaos-kill-after, only die while $(docv) exists, removing \
                 it first — so a supervisor restart from the checkpoint runs clean."))

(* --- synth -------------------------------------------------------------------------- *)

let synth_cmd =
  let run program depth width bits stateful stateless synth_bits budget phvs =
    let program, target = load_program_and_target program depth width bits stateful stateless in
    match
      Compiler.Synth.synthesize
        {
          Compiler.Synth.p_program = program;
          p_target = target;
          p_synth_bits = synth_bits;
          p_examples = 16;
          p_budget = budget;
          p_seed = 42;
        }
    with
    | Compiler.Synth.Budget_exhausted { candidates } ->
      Printf.printf "synthesis failed: budget exhausted after %d candidates\n" candidates;
      exit 1
    | Compiler.Synth.Synthesized compiled ->
      Printf.printf "# synthesized at %d bits\n" synth_bits;
      print_string (Machine_code.to_string compiled.Compiler.Codegen.c_mc);
      let outcome = Compiler.Testing.check ~n:phvs compiled in
      Fmt.pr "# verification at %d bits: %a@." bits Fuzz.pp_outcome outcome
  in
  let doc = "Synthesize machine code (CEGIS, Chipmunk-style) and verify it by fuzzing." in
  Cmd.v
    (Cmd.info "synth" ~doc)
    Term.(
      const run $ program_arg
      $ Arg.(value & opt int 1 & info [ "depth" ] ~docv:"N")
      $ Arg.(value & opt int 1 & info [ "width" ] ~docv:"N")
      $ Arg.(value & opt int 10 & info [ "bits" ] ~docv:"B" ~doc:"Verification width.")
      $ Arg.(value & opt string "pair" & info [ "stateful-alu" ] ~docv:"ATOM|FILE")
      $ stateless_arg
      $ Arg.(value & opt int 4 & info [ "synth-bits" ] ~docv:"B" ~doc:"Synthesis width.")
      $ Arg.(value & opt int 150_000 & info [ "budget" ] ~docv:"N" ~doc:"Candidate budget.")
      $ phvs_arg)

(* --- verify ------------------------------------------------------------------------- *)

let verify_cmd =
  let run program depth width bits stateful stateless max_states =
    let program, target = load_program_and_target program depth width bits stateful stateless in
    match Compiler.Codegen.compile ~target program with
    | Error e ->
      Printf.eprintf "compile error: %s\n" e;
      exit 1
    | Ok compiled ->
      let result =
        Druzhba_fuzz.Verify.exhaustive_check ~max_states
          ~desc:compiled.Compiler.Codegen.c_desc ~mc:compiled.Compiler.Codegen.c_mc
          ~spec:(Compiler.Testing.spec_of compiled)
          ~observed:(Compiler.Testing.observed compiled)
          ~state_layout:(Compiler.Testing.state_layout compiled)
          ~init:compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init ()
      in
      Fmt.pr "%s at %d bits: %a@." program.Compiler.Ast.name bits Druzhba_fuzz.Verify.pp_result
        result;
      (match result with
      | Druzhba_fuzz.Verify.Counterexample cx ->
        print_triage ~desc:compiled.Compiler.Codegen.c_desc ~mc:compiled.Compiler.Codegen.c_mc
          ~state_layout:(Compiler.Testing.state_layout compiled) cx.Druzhba_fuzz.Verify.cx_kind;
        exit 1
      | _ -> ())
  in
  let doc =
    "Exhaustively verify a compiled program against its specification at a small datapath width \
     (all inputs, all reachable states)."
  in
  Cmd.v
    (Cmd.info "verify" ~doc)
    Term.(
      const run $ program_arg $ depth_arg $ width_arg
      $ Arg.(value & opt int 3 & info [ "bits" ] ~docv:"B" ~doc:"Datapath width (keep small).")
      $ stateful_arg $ stateless_arg
      $ Arg.(value & opt int 500_000 & info [ "max-states" ] ~docv:"N" ~doc:"State budget."))

(* --- vet ---------------------------------------------------------------------------- *)

(* Translation validation (static, no PHV ever executed): prove each
   optimizer pass and the backend's machine code correct by symbolic
   equivalence, and emit what cannot be proved as directed-trial witness
   candidates for the fuzzing campaign. *)

(* A witness candidate's PHV part: the [Aphv] atoms of an assignment laid
   out as an input packet (unconstrained containers are 0). *)
let phv_of_assign ~width assign =
  let phv = Array.make width 0 in
  List.iter
    (function Symbolic.Aphv k, v when k < width -> phv.(k) <- v | _ -> ())
    assign;
  phv

let write_witness_file path ~bits ~depth ~width ~stateful ~stateless trials =
  let oc = open_out path in
  Printf.fprintf oc "%s\n" witness_schema;
  Printf.fprintf oc "depth %d\nwidth %d\nbits %d\nstateful %s\nstateless %s\n" depth width bits
    stateful stateless;
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  List.iter
    (fun (program, subject, phv) ->
      let key = (program, Array.to_list phv) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        incr count;
        Printf.fprintf oc "trial %s %s %s\n" program subject
          (String.concat "," (List.map string_of_int (Array.to_list phv)))
      end)
    trials;
  close_out oc;
  !count

let vet_cmd =
  let run program benchmarks depth width bits stateful stateless levels synth synth_bits budget
      json witnesses =
    let max_level =
      let names = String.split_on_char ',' levels in
      if List.mem "scc-inline" names then Optimizer.Scc_inline
      else if List.mem "scc" names then Optimizer.Scc
      else if names = [ "unoptimized" ] then Optimizer.Unoptimized
      else usage_error "--opt-levels: unknown level in '%s' (unoptimized, scc, scc-inline)" levels
    in
    let compile_target name =
      let program, target = load_program_and_target name depth width bits stateful stateless in
      if synth then
        match
          Compiler.Synth.synthesize
            {
              Compiler.Synth.p_program = program;
              p_target = target;
              p_synth_bits = synth_bits;
              p_examples = 16;
              p_budget = budget;
              p_seed = 42;
            }
        with
        | Compiler.Synth.Budget_exhausted { candidates } ->
          usage_error "%s: synthesis budget exhausted after %d candidates" name candidates
        | Compiler.Synth.Synthesized compiled -> (program.Compiler.Ast.name, compiled)
      else
        match Compiler.Codegen.compile ~target program with
        | Error e ->
          Printf.eprintf "compile error: %s\n" e;
          exit 2
        | Ok compiled -> (program.Compiler.Ast.name, compiled)
    in
    let names =
      if benchmarks then List.map (fun (bm : Spec.benchmark) -> bm.Spec.bm_name) Spec.all
      else
        match program with
        | Some p -> [ p ]
        | None -> usage_error "vet needs --program or --benchmarks"
    in
    let any_refuted = ref false in
    let witness_trials = ref [] in
    let vet_target spec_name =
      (* [spec_name] (the benchmark name or file path, reloadable by
         [campaign --directed]) identifies witness trials; the parsed
         program name labels the report *)
      let name, compiled = compile_target spec_name in
      let desc = compiled.Compiler.Codegen.c_desc and mc = compiled.Compiler.Codegen.c_mc in
      (* obligations, two families: consecutive optimizer passes against each
         other (per-pass IR snapshots from [apply_staged]), and the final
         artifact against the program's reference semantics at full width *)
      let chain =
        ("unoptimized", desc)
        :: List.map
             (fun st -> (st.Optimizer.st_pass, st.Optimizer.st_desc))
             (Optimizer.apply_staged ~level:max_level ~mc desc)
      in
      let pass_obs = Equiv.check_chain ~mc chain in
      let spec_obs = Compiler.Vet.check compiled in
      let statuses =
        List.map (fun ob -> ob.Equiv.ob_status) pass_obs
        @ List.map (fun ob -> ob.Compiler.Vet.vo_status) spec_obs
      in
      let counts =
        List.map
          (fun b ->
            (b, List.length (List.filter (fun st -> Equiv.taxonomy st = b) statuses)))
          Equiv.buckets
      in
      (* harvest witness candidates: refuted witnesses replay the bug,
         deferred candidates direct the fuzzer at what symbolic analysis
         could not decide *)
      let width = desc.Ir.d_width in
      let harvest subject = function
        | Equiv.Refuted (_, w) ->
          witness_trials :=
            (spec_name, subject, phv_of_assign ~width w.Equiv.w_assign) :: !witness_trials
        | Equiv.Deferred candidates ->
          List.iter
            (fun assign ->
              witness_trials :=
                (spec_name, subject, phv_of_assign ~width assign) :: !witness_trials)
            candidates
        | Equiv.Proved _ -> ()
      in
      List.iter (fun ob -> harvest (Equiv.subject_id ob.Equiv.ob_subject) ob.Equiv.ob_status)
        pass_obs;
      List.iter
        (fun ob -> harvest (Compiler.Vet.subject_id ob.Compiler.Vet.vo_subject) ob.Compiler.Vet.vo_status)
        spec_obs;
      let refuted_pass = List.filter Equiv.is_refuted pass_obs in
      let refuted_spec = List.filter Compiler.Vet.is_refuted spec_obs in
      if refuted_pass <> [] || refuted_spec <> [] then any_refuted := true;
      if not json then begin
        Fmt.pr "@[<v>%s: %d obligations (%s)@]@." name (List.length statuses)
          (String.concat ", "
             (List.filter_map
                (fun (b, n) -> if n > 0 then Some (Printf.sprintf "%d %s" n b) else None)
                counts));
        (* a refutation names the pass pair, the subject, the witness, and —
           via the provenance slice — the machine-code pairs that steer it *)
        List.iter
          (fun ob ->
            Fmt.pr "  REFUTED %a@." Equiv.pp_obligation ob;
            let kind =
              match ob.Equiv.ob_subject with
              | Equiv.Container (stage, c) -> `Container (stage, c)
              | Equiv.State_slot (alu, k) -> `State (alu, k)
            in
            Fmt.pr "  %a@." Verify.pp_triage (Verify.triage ~desc ~mc kind))
          refuted_pass;
        List.iter
          (fun ob ->
            Fmt.pr "  REFUTED %a@." Compiler.Vet.pp_obligation ob;
            let kind =
              match ob.Compiler.Vet.vo_subject with
              | Compiler.Vet.Output (_, c) -> `Output c
              | Compiler.Vet.State (_, alu, k) -> `State (alu, k)
            in
            Fmt.pr "  %a@." Verify.pp_triage (Verify.triage ~desc ~mc kind))
          refuted_spec;
        List.iter
          (fun ob ->
            match ob.Equiv.ob_status with
            | Equiv.Deferred _ -> Fmt.pr "  deferred %a@." Equiv.pp_obligation ob
            | _ -> ())
          pass_obs
      end;
      (* findings for the shared druzhba-report/1 schema *)
      let finding_of_status subject lhs rhs status =
        let message =
          Fmt.str "%s vs %s: %a" lhs rhs Equiv.pp_status status
        in
        match status with
        | Equiv.Refuted _ ->
          Some
            { Lint.f_rule = "refuted-obligation"; f_severity = Lint.Error; f_subject = subject;
              f_message = message }
        | Equiv.Deferred _ ->
          Some
            { Lint.f_rule = "deferred-obligation"; f_severity = Lint.Warning; f_subject = subject;
              f_message = message }
        | Equiv.Proved _ -> None
      in
      let findings =
        List.filter_map
          (fun ob ->
            finding_of_status (Equiv.subject_id ob.Equiv.ob_subject) ob.Equiv.ob_lhs_name
              ob.Equiv.ob_rhs_name ob.Equiv.ob_status)
          pass_obs
        @ List.filter_map
            (fun ob ->
              finding_of_status
                (Compiler.Vet.subject_id ob.Compiler.Vet.vo_subject)
                "spec" "pipeline" ob.Compiler.Vet.vo_status)
            spec_obs
      in
      let taxonomy_json =
        "{"
        ^ String.concat ","
            (List.map (fun (b, n) -> Printf.sprintf "\"%s\":%d" b n) counts)
        ^ "}"
      in
      Lint.target ~extra:[ ("taxonomy", taxonomy_json) ] ~name findings
    in
    let targets = List.map vet_target names in
    if json then print_string (Lint.report_to_json ~tool:"vet" targets ^ "\n");
    (match witnesses with
    | None -> ()
    | Some path ->
      let n =
        write_witness_file path ~bits ~depth ~width ~stateful ~stateless
          (List.rev !witness_trials)
      in
      if not json then Fmt.pr "%d witness candidate(s) written to %s@." n path);
    if !any_refuted then exit 1
  in
  let doc =
    "Translation validation: statically prove, per output container and state slot, that every \
     optimizer pass preserves the pipeline's symbolic transfer function, and that the compiled \
     (or synthesized) machine code implements the program's reference semantics at the full \
     datapath width — no PHV is ever executed.  Refutations come with replayable witness \
     packets and a provenance slice naming the pass, the container, and the machine-code pairs \
     involved; undecided obligations are exported with --witnesses as directed trials for \
     $(b,druzhba campaign --directed).  Exits non-zero if any obligation is refuted."
  in
  Cmd.v
    (Cmd.info "vet" ~doc)
    Term.(
      const run
      $ Arg.(
          value
          & opt (some string) None
          & info [ "program" ] ~docv:"FILE|BENCHMARK"
              ~doc:"Packet program: a .domino file or a Table-1 benchmark name.")
      $ Arg.(
          value & flag
          & info [ "benchmarks" ] ~doc:"Vet every Table-1 benchmark program (used by CI).")
      $ depth_arg $ width_arg $ bits_arg $ stateful_arg $ stateless_arg
      $ Arg.(
          value & opt string "scc,scc-inline"
          & info [ "opt-levels" ] ~docv:"LEVELS"
              ~doc:
                "Comma-separated optimization levels whose passes to validate (the maximal one \
                 determines the pass chain): unoptimized, scc, scc-inline.")
      $ Arg.(
          value & flag
          & info [ "synth" ]
              ~doc:"Vet the synthesis backend's output instead of the rule-based compiler's.")
      $ Arg.(
          value & opt int 4
          & info [ "synth-bits" ] ~docv:"B" ~doc:"Synthesis width (with --synth).")
      $ Arg.(
          value & opt int 150_000
          & info [ "budget" ] ~docv:"N" ~doc:"Synthesis candidate budget (with --synth).")
      $ Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable druzhba-report/1 JSON output.")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "witnesses" ] ~docv:"FILE"
              ~doc:
                "Write refutation witnesses and undecided-obligation candidates to $(docv) as \
                 directed trials for the fuzzing campaign."))

(* --- drmt --------------------------------------------------------------------------- *)

let drmt_cmd =
  let run p4_file entries_file packets processors match_cap action_cap seed =
    let p =
      match Drmt.P4.parse_result (read_file p4_file) with
      | Ok p -> p
      | Error e -> usage_error "%s: %s" p4_file e
    in
    let entries =
      match entries_file with
      | None -> []
      | Some path -> (
        match Drmt.Entries.parse (read_file path) with
        | Ok e -> e
        | Error e -> usage_error "%s: %s" path e)
    in
    let dag = Drmt.Dag.build p in
    let cfg =
      Drmt.Scheduler.config ~processors ~match_capacity:match_cap ~action_capacity:action_cap ()
    in
    let sched = Drmt.Scheduler.schedule cfg dag in
    Fmt.pr "%a@." Drmt.Scheduler.pp sched;
    let r = Drmt.Sim.run ~seed ~cfg ~entries ~packets p in
    let s = r.Drmt.Sim.r_stats in
    Fmt.pr "simulated %d packets in %d cycles (%d matches, %d actions)@."
      s.Drmt.Sim.st_packets s.Drmt.Sim.st_cycles s.Drmt.Sim.st_matches s.Drmt.Sim.st_actions;
    Fmt.pr "peak crossbar usage per cycle: %d matches, %d actions@."
      s.Drmt.Sim.st_peak_match_per_cycle s.Drmt.Sim.st_peak_action_per_cycle;
    List.iter (fun (t, n) -> Fmt.pr "table %s: %d hits@." t n) s.Drmt.Sim.st_table_hits;
    List.iter (fun (r, v) -> Fmt.pr "register %s = %d@." r v) r.Drmt.Sim.r_registers
  in
  let doc = "Schedule and simulate a P4-subset program on the dRMT model." in
  Cmd.v
    (Cmd.info "drmt" ~doc)
    Term.(
      const run
      $ Arg.(required & opt (some file) None & info [ "p4" ] ~docv:"FILE")
      $ Arg.(value & opt (some file) None & info [ "entries" ] ~docv:"FILE")
      $ Arg.(value & opt int 1000 & info [ "packets" ] ~docv:"N")
      $ Arg.(value & opt int 4 & info [ "processors" ] ~docv:"P")
      $ Arg.(value & opt int 8 & info [ "match-capacity" ] ~docv:"M")
      $ Arg.(value & opt int 32 & info [ "action-capacity" ] ~docv:"A")
      $ seed_arg)

(* --- experiments ----------------------------------------------------------------------- *)

let table1_cmd =
  let run phvs interpreted backend =
    let mode =
      match backend with
      | Some name -> name
      | None -> if interpreted then "interpreter" else "compiled"
    in
    let rows = Druzhba_experiments.Table1.run ~phvs ~mode () in
    Fmt.pr "%a@." Druzhba_experiments.Table1.pp rows;
    Fmt.pr "%a@." Druzhba_experiments.Table1.summary rows
  in
  let doc = "Reproduce Table 1: RMT runtimes with and without optimizations." in
  Cmd.v
    (Cmd.info "table1" ~doc)
    Term.(
      const run
      $ Arg.(value & opt int 50_000 & info [ "phvs" ] ~docv:"N" ~doc:"PHVs per run (paper: 50000).")
      $ Arg.(value & flag & info [ "interpreted" ] ~doc:"Interpret the description IR instead.")
      $ Arg.(
          value
          & opt (some (enum (List.map (fun n -> (n, n)) (Backends.names ())))) None
          & info [ "backend" ] ~docv:"NAME"
              ~doc:
                "Execution backend from the registry (interpreter, compiled, native); overrides \
                 --interpreted."))

let casestudy_cmd =
  let run phvs budget jobs =
    let report =
      Druzhba_experiments.Casestudy.run ~phvs ~synth_budget:budget ~jobs:(resolve_jobs jobs) ()
    in
    Fmt.pr "%a@." Druzhba_experiments.Casestudy.pp report
  in
  let doc = "Reproduce the case study of §5.2 (compiler testing at scale)." in
  Cmd.v
    (Cmd.info "casestudy" ~doc)
    Term.(
      const run
      $ Arg.(value & opt int 1000 & info [ "phvs" ] ~docv:"N")
      $ Arg.(value & opt int 120_000 & info [ "synth-budget" ] ~docv:"N")
      $ jobs_arg)

(* --- serve -------------------------------------------------------------------------- *)

let serve_cmd =
  let run root port workers max_queue retry_budget backoff_base backoff_cap heartbeat_timeout
      job_timeout request_timeout grace worker_jobs worker_exe =
    let worker_exe =
      let exe = match worker_exe with Some e -> e | None -> Sys.executable_name in
      (* workers chdir into their job directory before execv, so the path
         must survive that *)
      if Filename.is_relative exe then Filename.concat (Sys.getcwd ()) exe else exe
    in
    if not (Sys.file_exists worker_exe) then
      usage_error "worker executable %s does not exist" worker_exe;
    let root = if Filename.is_relative root then Filename.concat (Sys.getcwd ()) root else root in
    let cfg =
      {
        Druzhba_service.Server.s_root = root;
        s_port = port;
        s_max_queue = max_queue;
        s_request_timeout = request_timeout;
        s_grace = grace;
        s_sv =
          {
            Druzhba_service.Supervisor.sv_workers = workers;
            sv_retry_budget = retry_budget;
            sv_backoff_base = backoff_base;
            sv_backoff_cap = backoff_cap;
            sv_heartbeat_timeout = heartbeat_timeout;
            sv_job_timeout = job_timeout;
            sv_worker_exe = worker_exe;
            sv_worker_jobs = worker_jobs;
          };
      }
    in
    exit (Druzhba_service.Server.run cfg)
  in
  let doc =
    "Run the fuzzing-farm daemon: an HTTP API that schedules submitted campaigns across a \
     supervised pool of worker processes, with checkpoint-based crash recovery and a durable \
     job journal."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run
      $ Arg.(
          required
          & opt (some string) None
          & info [ "root" ] ~docv:"DIR"
              ~doc:"State directory: job journal, per-job workspaces, findings store.")
      $ Arg.(
          value & opt int 0
          & info [ "port" ] ~docv:"P"
              ~doc:"TCP port on 127.0.0.1 (0 = ephemeral; the bound port is written to \
                    $(b,DIR/port)).")
      $ Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"Worker pool size.")
      $ Arg.(
          value & opt int 16
          & info [ "max-queue" ] ~docv:"N"
              ~doc:"Queued-job bound; beyond it submissions are shed with 503.")
      $ Arg.(
          value & opt int 3
          & info [ "retry-budget" ] ~docv:"N"
              ~doc:"Worker launches per job before it is quarantined as poison.")
      $ Arg.(
          value & opt float 0.5
          & info [ "backoff-base" ] ~docv:"SECONDS" ~doc:"First retry delay.")
      $ Arg.(
          value & opt float 5.0
          & info [ "backoff-cap" ] ~docv:"SECONDS" ~doc:"Retry delay ceiling.")
      $ Arg.(
          value & opt float 60.
          & info [ "heartbeat-timeout" ] ~docv:"SECONDS"
              ~doc:"Kill a campaign worker whose checkpoint stops advancing for this long \
                    (0 disables).")
      $ Arg.(
          value & opt float 0.
          & info [ "job-timeout" ] ~docv:"SECONDS"
              ~doc:"Absolute deadline per worker attempt (0 disables).")
      $ Arg.(
          value & opt float 10.
          & info [ "request-timeout" ] ~docv:"SECONDS"
              ~doc:"Deadline for a client to deliver a complete HTTP request.")
      $ Arg.(
          value & opt float 10.
          & info [ "grace" ] ~docv:"SECONDS"
              ~doc:"Shutdown grace period before stragglers are SIGKILLed.")
      $ Arg.(
          value & opt int 1
          & info [ "worker-jobs" ] ~docv:"J" ~doc:"Domains per campaign worker (--jobs).")
      $ Arg.(
          value
          & opt (some string) None
          & info [ "worker-exe" ] ~docv:"FILE"
              ~doc:"Worker executable (default: this binary)."))

let benchmarks_cmd =
  let run () =
    Printf.printf "%-20s %-5s %-12s %s\n" "name" "d,w" "atom" "description";
    List.iter
      (fun (bm : Spec.benchmark) ->
        Printf.printf "%-20s %d,%-3d %-12s %s\n" bm.Spec.bm_name bm.Spec.bm_depth bm.Spec.bm_width
          bm.Spec.bm_stateful bm.Spec.bm_description)
      Spec.all;
    Printf.printf "\nbuilt-in ALUs: %s\n" atom_names
  in
  let doc = "List the Table-1 benchmark programs and built-in ALUs." in
  Cmd.v (Cmd.info "benchmarks" ~doc) Term.(const run $ const ())

let () =
  let doc = "Druzhba: switch hardware simulation for testing programmable-switch compilers" in
  let info = Cmd.info "druzhba" ~version:Druzhba.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            dgen_cmd;
            dsim_cmd;
            compile_cmd;
            lint_cmd;
            vet_cmd;
            fuzz_cmd;
            campaign_cmd;
            serve_cmd;
            verify_cmd;
            synth_cmd;
            drmt_cmd;
            table1_cmd;
            casestudy_cmd;
            benchmarks_cmd;
          ]))
