lib/optimizer/optimizer.ml: Array Druzhba_machine_code Druzhba_pipeline Druzhba_util Hashtbl List String
