(* Reproduction of the paper's Fig. 6: the same pipeline description at the
   three optimization levels — version 1 (unoptimized: machine-code values
   are runtime hash-table lookups and every construct is a helper-function
   call), version 2 (after SCC propagation), version 3 (after function
   inlining).  Renders the generated code and reports the size reduction. *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba

type versions = {
  v1 : string;
  v2 : string;
  v3 : string;
  v1_size : int; (* IR nodes *)
  v2_size : int;
  v3_size : int;
  v1_helpers : int;
  v3_helpers : int;
}

(* Renders the description of a [depth] x [width] pipeline of
   [stateful]/[stateless] ALUs under [mc] (defaults: the Fig. 6 setting — a
   small pipeline with machine code baked in). *)
let render ?(depth = 1) ?(width = 1) ?(stateful = "if_else_raw") ?(stateless = "stateless_full")
    ?(seed = 1) () =
  let desc =
    Dgen.generate
      (Dgen.config ~depth ~width ())
      ~stateful:(Atoms.find_exn stateful) ~stateless:(Atoms.find_exn stateless)
  in
  let mc = Fuzz.random_mc (Prng.create seed) desc in
  let v2d = Optimizer.scc_propagate ~mc desc in
  let v3d = Optimizer.inline_functions v2d in
  {
    v1 = Emit.to_string desc;
    v2 = Emit.to_string v2d;
    v3 = Emit.to_string v3d;
    v1_size = Ir.size desc;
    v2_size = Ir.size v2d;
    v3_size = Ir.size v3d;
    v1_helpers = Ir.helper_count desc;
    v3_helpers = Ir.helper_count v3d;
  }

let pp_summary ppf v =
  Fmt.pf ppf
    "description size: v1 = %d nodes (%d helpers), v2 = %d nodes, v3 = %d nodes (%d helpers)"
    v.v1_size v.v1_helpers v.v2_size v.v3_size v.v3_helpers
