lib/experiments/fig6.ml: Atoms Dgen Druzhba_core Emit Fmt Fuzz Ir Optimizer Prng
