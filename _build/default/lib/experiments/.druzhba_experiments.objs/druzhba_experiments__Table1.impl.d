lib/experiments/table1.ml: Compile Compiled Compiler Druzhba_core Engine Fmt List Optimizer Spec Traffic Unix
