lib/experiments/casestudy.ml: Array Atoms Compiler Druzhba_core Fmt Fuzz Ir List Machine_code Printf Spec
