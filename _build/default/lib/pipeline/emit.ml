(* Source emission for pipeline descriptions.

   The original dgen writes the pipeline description to disk as Rust source
   that is compiled together with dsim; our dgen produces an in-memory IR
   that the simulator interprets.  This module renders that IR as readable
   OCaml-style source, which reproduces the paper's Fig. 6 — the same
   description can be printed unoptimized (version 1), after SCC propagation
   (version 2), and after inlining (version 3) — and doubles as a debugging
   aid (the paper notes inlining was introduced partly to make the generated
   code legible). *)

let binop_symbol (op : Ir.binop) =
  match op with
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf (e : Ir.expr) =
  match e with
  | Ir.Const n -> Fmt.int ppf n
  | Ir.Var v -> Fmt.string ppf v
  | Ir.Mc name -> Fmt.pf ppf "values[%S]" name
  | Ir.Trunc a -> Fmt.pf ppf "trunc (%a)" pp_expr a
  | Ir.Phv k -> Fmt.pf ppf "phv[%d]" k
  | Ir.State k -> Fmt.pf ppf "state[%d]" k
  | Ir.Unop (Neg, a) -> Fmt.pf ppf "-(%a)" pp_expr a
  | Ir.Unop (Not, a) -> Fmt.pf ppf "!(%a)" pp_expr a
  | Ir.Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Ir.Cond (c, a, b) -> Fmt.pf ppf "(if %a then %a else %a)" pp_expr c pp_expr a pp_expr b
  | Ir.Call (name, args) ->
    Fmt.pf ppf "%s (%a)" name Fmt.(list ~sep:(any ", ") pp_expr) args

let rec pp_stmt ~indent ppf (s : Ir.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ir.Let (x, e) -> Fmt.pf ppf "%slet %s = %a in" pad x pp_expr e
  | Ir.Store (k, e) -> Fmt.pf ppf "%sstate[%d] <- %a;" pad k pp_expr e
  | Ir.Return e -> Fmt.pf ppf "%sreturn %a" pad pp_expr e
  | Ir.If (c, a, b) ->
    Fmt.pf ppf "%sif %a then begin@," pad pp_expr c;
    List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:(indent + 2)) s) a;
    if b = [] then Fmt.pf ppf "%send" pad
    else begin
      Fmt.pf ppf "%send else begin@," pad;
      List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:(indent + 2)) s) b;
      Fmt.pf ppf "%send" pad
    end

let pp_helper ppf (h : Ir.helper) =
  Fmt.pf ppf "@[<v>let %s %a =@,  %a@]" h.h_name
    Fmt.(list ~sep:(any " ") string)
    (if h.h_params = [] then [ "()" ] else h.h_params)
    pp_expr h.h_body

let pp_alu ppf (a : Ir.alu) =
  Fmt.pf ppf "@[<v>let %s phv state =@," a.a_name;
  List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:2) s) a.a_body;
  Fmt.pf ppf "  (* default output *) %a@]" pp_expr a.a_default_output

(* Renders the full description: all helpers in name order, then the ALU
   functions stage by stage, then the output-mux wiring summary. *)
let pp ppf (d : Ir.t) =
  let helpers =
    Hashtbl.fold (fun _ h acc -> h :: acc) d.Ir.d_helpers []
    |> List.sort (fun (a : Ir.helper) b -> String.compare a.h_name b.h_name)
  in
  Fmt.pf ppf "@[<v>(* pipeline description: depth=%d width=%d bits=%d *)@,@," d.Ir.d_depth
    d.Ir.d_width d.Ir.d_bits;
  List.iter (fun h -> Fmt.pf ppf "%a@,@," pp_helper h) helpers;
  Array.iter
    (fun (st : Ir.stage) ->
      Fmt.pf ppf "(* ---- stage %d ---- *)@,@," st.Ir.s_index;
      Array.iter (fun a -> Fmt.pf ppf "%a@,@," pp_alu a) st.Ir.s_stateless;
      Array.iter (fun a -> Fmt.pf ppf "%a@,@," pp_alu a) st.Ir.s_stateful;
      Array.iteri
        (fun c name -> Fmt.pf ppf "(* container %d written by %s *)@," c name)
        st.Ir.s_output_muxes;
      Fmt.pf ppf "@,")
    d.Ir.d_stages;
  Fmt.pf ppf "@]"

let to_string d = Fmt.str "%a" pp d
