lib/pipeline/ir.pp.ml: Array Druzhba_alu_dsl Druzhba_util Hashtbl List Ppx_deriving_runtime Printf String
