lib/pipeline/names.pp.ml: Printf
