lib/pipeline/compile.pp.ml: Array Druzhba_machine_code Druzhba_util Hashtbl Interp Ir List Printf String
