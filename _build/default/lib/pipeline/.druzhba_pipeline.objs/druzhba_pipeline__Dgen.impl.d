lib/pipeline/dgen.pp.ml: Array Druzhba_alu_dsl Druzhba_util Hashtbl Ir List Names Printf
