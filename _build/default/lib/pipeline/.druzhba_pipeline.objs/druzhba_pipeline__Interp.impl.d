lib/pipeline/interp.pp.ml: Array Druzhba_machine_code Druzhba_util Hashtbl Ir List Printf String
