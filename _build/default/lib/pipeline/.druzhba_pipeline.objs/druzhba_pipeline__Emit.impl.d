lib/pipeline/emit.pp.ml: Array Fmt Hashtbl Ir List String
