(* Machine-code naming scheme.

   The paper requires machine-code strings to "succinctly denote the
   primitive that the pair corresponds to and the primitive's location within
   the pipeline" (§3.1).  Every name is built from a stage prefix, an ALU
   position, and the slot name produced by {!Druzhba_alu_dsl.Analysis}. *)

let stage i = Printf.sprintf "pipeline_stage_%d" i

let stateful_alu ~stage:i ~alu:j = Printf.sprintf "%s_stateful_alu_%d" (stage i) j
let stateless_alu ~stage:i ~alu:j = Printf.sprintf "%s_stateless_alu_%d" (stage i) j

(* Control of the input mux feeding operand [operand] of an ALU. *)
let input_mux ~alu_prefix ~operand = Printf.sprintf "%s_input_mux_%d" alu_prefix operand

(* Control of the output mux writing PHV container [container] of a stage. *)
let output_mux ~stage:i ~container = Printf.sprintf "%s_output_mux_%d" (stage i) container

(* Control of a machine-code slot inside an ALU body (mux/opt/const/opcode or
   a declared hole variable). *)
let slot ~alu_prefix ~slot_name = Printf.sprintf "%s_%s" alu_prefix slot_name

(* Output-mux selector values (must match the choice order built by
   [Dgen.output_mux_helper]). *)
module Select = struct
  let stateless_output ~width:_ j = j
  let stateful_output ~width j = width + j
  let stateful_new_state ~width j = (2 * width) + j
  let passthrough ~width = 3 * width
end
