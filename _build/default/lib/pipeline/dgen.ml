(* dgen: pipeline code generation (paper §3.1–3.2).

   Takes the pipeline dimensions (depth = number of stages, width = ALUs per
   stage = PHV containers), the stateful and stateless ALU descriptions in
   the ALU DSL, and produces the *pipeline description*: helper functions for
   every mux / opcode construct plus a function body per ALU instance, wired
   to PHV containers through input and output multiplexers.

   The generated description corresponds to "version 1" of the paper's
   Fig. 6: every machine-code value is looked up at simulation time ([Ir.Mc]
   nodes appear at helper call sites) and every construct goes through a
   helper function call. *)

module Ast = Druzhba_alu_dsl.Ast
module Analysis = Druzhba_alu_dsl.Analysis
module Value = Druzhba_util.Value

type config = {
  depth : int; (* number of pipeline stages *)
  width : int; (* ALUs per stage and PHV containers *)
  bits : Value.width; (* datapath width of containers and state *)
}

let config ~depth ~width ?(bits = 32) () =
  if depth < 1 then invalid_arg "Dgen.config: depth must be >= 1";
  if width < 1 then invalid_arg "Dgen.config: width must be >= 1";
  { depth; width; bits = Value.width bits }

(* Builds the conditional chain selecting among [choices] based on [ctrl]:
   if ctrl == 0 then c0 else if ctrl == 1 then c1 else ... else c_last. *)
let selector_chain ctrl choices =
  let rec go i = function
    | [] -> invalid_arg "selector_chain: no choices"
    | [ last ] -> last
    | c :: rest -> Ir.Cond (Ir.Binop (Eq, ctrl, Const i), c, go (i + 1) rest)
  in
  go 0 choices

(* --- Helper construction -------------------------------------------------

   Each helper has exactly one call site; its name doubles as the
   machine-code name of the control that configures it. *)

let mux_helper name arity =
  let params = List.init arity (Printf.sprintf "op%d") @ [ "ctrl" ] in
  let choices = List.init arity (fun i -> Ir.Var (Printf.sprintf "op%d" i)) in
  {
    Ir.h_name = name;
    h_params = params;
    h_body = selector_chain (Ir.Var "ctrl") choices;
    h_ctrl = Some arity;
  }

let opt_helper name =
  (* ctrl = 0 returns the argument, anything else returns 0 (paper Fig. 4:
     "Opt() ... either returns 0 or its argument"). *)
  {
    Ir.h_name = name;
    h_params = [ "arg"; "ctrl" ];
    h_body = Ir.Cond (Var "ctrl", Const 0, Var "arg");
    h_ctrl = Some 2;
  }

let rel_op_helper name =
  let a = Ir.Var "op0" and b = Ir.Var "op1" in
  {
    Ir.h_name = name;
    h_params = [ "op0"; "op1"; "ctrl" ];
    h_body =
      selector_chain (Ir.Var "ctrl")
        [ Ir.Binop (Ge, a, b); Ir.Binop (Le, a, b); Ir.Binop (Eq, a, b); Ir.Binop (Neq, a, b) ];
    h_ctrl = Some 4;
  }

let arith_op_helper name =
  let a = Ir.Var "op0" and b = Ir.Var "op1" in
  {
    Ir.h_name = name;
    h_params = [ "op0"; "op1"; "ctrl" ];
    h_body = selector_chain (Ir.Var "ctrl") [ Ir.Binop (Add, a, b); Ir.Binop (Sub, a, b) ];
    h_ctrl = Some 2;
  }

let input_mux_helper name width =
  let params = List.init width (Printf.sprintf "phv%d") @ [ "ctrl" ] in
  let choices = List.init width (fun i -> Ir.Var (Printf.sprintf "phv%d" i)) in
  {
    Ir.h_name = name;
    h_params = params;
    h_body = selector_chain (Ir.Var "ctrl") choices;
    h_ctrl = Some width;
  }

(* Output mux for one PHV container: selects among the stage's [width]
   stateless outputs, the [width] stateful ALU outputs (explicit return, or
   the Banzai read-modify-write convention of the pre-execution state_0),
   the [width] stateful ALUs' post-execution state_0 values, or the
   container's incoming value (pass-through), in that machine-code order.
   Exposing both state halves mirrors hardware stateful ALUs, whose read and
   write datapaths are both visible to the action crossbar; programs like
   flowlets consume the written value while programs like the learn filter
   consume the read value. *)
let output_mux_helper name width =
  let params =
    List.init width (Printf.sprintf "stateless%d")
    @ List.init width (Printf.sprintf "stateful%d")
    @ List.init width (Printf.sprintf "stateful_new%d")
    @ [ "old"; "ctrl" ]
  in
  let choices =
    List.init width (fun i -> Ir.Var (Printf.sprintf "stateless%d" i))
    @ List.init width (fun i -> Ir.Var (Printf.sprintf "stateful%d" i))
    @ List.init width (fun i -> Ir.Var (Printf.sprintf "stateful_new%d" i))
    @ [ Ir.Var "old" ]
  in
  {
    Ir.h_name = name;
    h_params = params;
    h_body = selector_chain (Ir.Var "ctrl") choices;
    h_ctrl = Some ((3 * width) + 1);
  }

(* --- ALU translation ----------------------------------------------------- *)

type alu_env = {
  alu_prefix : string;
  spec : Ast.t;
  bits : Value.width; (* DSL literals are truncated to the datapath width *)
  state_index : string -> int option;
  register : Ir.helper -> unit; (* adds a helper to the description table *)
}

let slot_mc env slot_name = Ir.Mc (Names.slot ~alu_prefix:env.alu_prefix ~slot_name)

let rec translate_expr env (e : Ast.expr) : Ir.expr =
  match e with
  | Ast.Const n -> Ir.Const (Value.mask env.bits n)
  | Ast.Var v -> (
    match env.state_index v with
    | Some k -> Ir.State k
    | None ->
      if List.mem v env.spec.hole_vars then Ir.Trunc (slot_mc env v)
      else Ir.Var v (* packet-field operand, let-bound in the body prelude *))
  | Ast.Unop (op, a) -> Ir.Unop (op, translate_expr env a)
  | Ast.Binop (op, a, b) -> Ir.Binop (op, translate_expr env a, translate_expr env b)
  | Ast.Hole_const i -> Ir.Trunc (slot_mc env (Analysis.const_slot_name i))
  | Ast.Opt (i, a) ->
    let name = Names.slot ~alu_prefix:env.alu_prefix ~slot_name:(Analysis.opt_slot_name i) in
    env.register (opt_helper name);
    Ir.Call (name, [ translate_expr env a; Ir.Mc name ])
  | Ast.Mux (i, es) ->
    let arity = List.length es in
    let name =
      Names.slot ~alu_prefix:env.alu_prefix ~slot_name:(Analysis.mux_slot_name ~arity i)
    in
    env.register (mux_helper name arity);
    Ir.Call (name, List.map (translate_expr env) es @ [ Ir.Mc name ])
  | Ast.Rel_op (i, a, b) ->
    let name = Names.slot ~alu_prefix:env.alu_prefix ~slot_name:(Analysis.rel_op_slot_name i) in
    env.register (rel_op_helper name);
    Ir.Call (name, [ translate_expr env a; translate_expr env b; Ir.Mc name ])
  | Ast.Arith_op (i, a, b) ->
    let name = Names.slot ~alu_prefix:env.alu_prefix ~slot_name:(Analysis.arith_op_slot_name i) in
    env.register (arith_op_helper name);
    Ir.Call (name, [ translate_expr env a; translate_expr env b; Ir.Mc name ])

let rec translate_stmt env (s : Ast.stmt) : Ir.stmt =
  match s with
  | Ast.Assign (v, e) -> (
    match env.state_index v with
    | Some k -> Ir.Store (k, translate_expr env e)
    | None -> invalid_arg (Printf.sprintf "Dgen: assignment to non-state variable '%s'" v))
  | Ast.Return e -> Ir.Return (translate_expr env e)
  | Ast.If (branches, els) ->
    let rec chain = function
      | [] -> List.map (translate_stmt env) els
      | (cond, body) :: rest ->
        [ Ir.If (translate_expr env cond, List.map (translate_stmt env) body, chain rest) ]
    in
    (match chain branches with
    | [ s ] -> s
    | _ -> assert false (* chain of a non-empty list yields one statement *))

(* Instantiates one ALU at a pipeline position. *)
let instantiate_alu ~register ~width ~bits ~alu_prefix (spec : Ast.t) : Ir.alu =
  let state_index v =
    let rec idx k = function
      | [] -> None
      | s :: _ when s = v -> Some k
      | _ :: rest -> idx (k + 1) rest
    in
    idx 0 spec.state_vars
  in
  let env = { alu_prefix; spec; bits; state_index; register } in
  (* Operand prelude: one input mux per declared packet field. *)
  let prelude =
    List.mapi
      (fun k field ->
        let name = Names.input_mux ~alu_prefix ~operand:k in
        register (input_mux_helper name width);
        let args = List.init width (fun c -> Ir.Phv c) @ [ Ir.Mc name ] in
        Ir.Let (field, Ir.Call (name, args)))
      spec.packet_fields
  in
  let body = List.map (translate_stmt env) spec.body in
  {
    Ir.a_name = alu_prefix;
    a_kind = (match spec.kind with Ast.Stateful -> Ir.Kstateful | Ast.Stateless -> Ir.Kstateless);
    a_state_size = List.length spec.state_vars;
    a_body = prelude @ body;
    a_default_output = (match spec.kind with Ast.Stateful -> Ir.State 0 | Ast.Stateless -> Ir.Const 0);
  }

(* Generates the full pipeline description ("version 1"). *)
let generate (cfg : config) ~(stateful : Ast.t) ~(stateless : Ast.t) : Ir.t =
  Analysis.validate_exn stateful;
  Analysis.validate_exn stateless;
  if stateful.kind <> Ast.Stateful then invalid_arg "Dgen.generate: 'stateful' ALU is stateless";
  if stateless.kind <> Ast.Stateless then invalid_arg "Dgen.generate: 'stateless' ALU is stateful";
  let helpers = Hashtbl.create 256 in
  let register (h : Ir.helper) = Hashtbl.replace helpers h.Ir.h_name h in
  let stages =
    Array.init cfg.depth (fun i ->
        let stateless_alus =
          Array.init cfg.width (fun j ->
              instantiate_alu ~register ~width:cfg.width ~bits:cfg.bits
                ~alu_prefix:(Names.stateless_alu ~stage:i ~alu:j)
                stateless)
        in
        let stateful_alus =
          Array.init cfg.width (fun j ->
              instantiate_alu ~register ~width:cfg.width ~bits:cfg.bits
                ~alu_prefix:(Names.stateful_alu ~stage:i ~alu:j)
                stateful)
        in
        let output_muxes =
          Array.init cfg.width (fun c ->
              let name = Names.output_mux ~stage:i ~container:c in
              register (output_mux_helper name cfg.width);
              name)
        in
        { Ir.s_index = i; s_stateless = stateless_alus; s_stateful = stateful_alus; s_output_muxes = output_muxes })
  in
  {
    Ir.d_depth = cfg.depth;
    d_width = cfg.width;
    d_bits = cfg.bits;
    d_stages = stages;
    d_helpers = helpers;
    d_stateful_spec = stateful;
    d_stateless_spec = stateless;
  }
