(* Pretty-printer emitting ALU DSL concrete syntax.

   Printing then re-parsing an ALU yields a structurally equal AST (machine
   code construct indices are re-assigned in the same order), which the
   property tests rely on. *)

open Ast

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

(* Precedence levels matching the parser, used to print minimal parentheses. *)
let binop_level = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Gt | Le | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let rec pp_expr_prec level ppf e =
  match e with
  | Const n -> Fmt.int ppf n
  | Var v -> Fmt.string ppf v
  | Unop (Neg, e) -> Fmt.pf ppf "-%a" (pp_expr_prec 6) e
  | Unop (Not, e) -> Fmt.pf ppf "!%a" (pp_expr_prec 6) e
  | Binop (op, a, b) ->
    let l = binop_level op in
    (* Comparisons are non-associative in the grammar, so both operands need
       a strictly higher level; other operators are left-associative. *)
    let left_level = match op with Eq | Neq | Lt | Gt | Le | Ge -> l + 1 | _ -> l in
    let doc ppf () =
      Fmt.pf ppf "%a %s %a" (pp_expr_prec left_level) a (binop_symbol op) (pp_expr_prec (l + 1)) b
    in
    if l < level then Fmt.parens doc ppf () else doc ppf ()
  | Hole_const _ -> Fmt.string ppf "C()"
  | Opt (_, e) -> Fmt.pf ppf "Opt(%a)" (pp_expr_prec 0) e
  | Mux (_, es) ->
    Fmt.pf ppf "Mux%d(%a)" (List.length es) Fmt.(list ~sep:(any ", ") (pp_expr_prec 0)) es
  | Rel_op (_, a, b) -> Fmt.pf ppf "rel_op(%a, %a)" (pp_expr_prec 0) a (pp_expr_prec 0) b
  | Arith_op (_, a, b) -> Fmt.pf ppf "arith_op(%a, %a)" (pp_expr_prec 0) a (pp_expr_prec 0) b

let pp_expr = pp_expr_prec 0

let rec pp_stmt ~indent ppf s =
  let pad = String.make indent ' ' in
  match s with
  | Assign (v, e) -> Fmt.pf ppf "%s%s = %a;" pad v pp_expr e
  | Return e -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | If (branches, els) ->
    let pp_block ppf body =
      List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:(indent + 2)) s) body
    in
    List.iteri
      (fun i (cond, body) ->
        let kw = if i = 0 then "if" else "elif" in
        Fmt.pf ppf "%s%s (%a) {@,%a%s}" pad kw pp_expr cond pp_block body pad;
        if i < List.length branches - 1 || els <> [] then Fmt.pf ppf "@,")
      branches;
    if els <> [] then Fmt.pf ppf "%selse {@,%a%s}" pad pp_block els pad

let pp_idents ppf ids = Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) ids

let pp ppf (alu : t) =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "type : %s@," (match alu.kind with Stateful -> "stateful" | Stateless -> "stateless");
  Fmt.pf ppf "state variables : %a@," pp_idents alu.state_vars;
  Fmt.pf ppf "hole variables : %a@," pp_idents alu.hole_vars;
  Fmt.pf ppf "packet fields : %a@," pp_idents alu.packet_fields;
  List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:0) s) alu.body;
  Fmt.pf ppf "@]"

let to_string alu = Fmt.str "%a" pp alu
