(* Lexer for the ALU DSL, built on the shared character scanner. *)

module Scanner = Druzhba_util.Scanner

type token =
  | IDENT of string
  | INT of int
  | COLON
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | SEMI
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | BANG
  | ASSIGN (* = *)
  | EQEQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | ANDAND
  | OROR
  | EOF
[@@deriving eq, show { with_path = false }]

type located = { token : token; pos : Scanner.position }

exception Error of Scanner.position * string

let token_of_char sc c =
  match c with
  | ':' -> COLON
  | '{' -> LBRACE
  | '}' -> RBRACE
  | '(' -> LPAREN
  | ')' -> RPAREN
  | ',' -> COMMA
  | ';' -> SEMI
  | '+' -> PLUS
  | '-' -> MINUS
  | '*' -> STAR
  | '/' -> SLASH
  | '%' -> PERCENT
  | c -> raise (Error (Scanner.position sc, Printf.sprintf "unexpected character %C" c))

let next_token sc =
  Scanner.skip_trivia sc;
  let pos = Scanner.position sc in
  let token =
    match Scanner.peek sc with
    | None -> EOF
    | Some c when Scanner.is_digit c -> INT (Scanner.scan_int sc)
    | Some c when Scanner.is_alpha c -> IDENT (Scanner.scan_ident sc)
    | Some '=' -> if Scanner.try_string sc "==" then EQEQ else (Scanner.advance sc; ASSIGN)
    | Some '!' -> if Scanner.try_string sc "!=" then NEQ else (Scanner.advance sc; BANG)
    | Some '<' -> if Scanner.try_string sc "<=" then LE else (Scanner.advance sc; LT)
    | Some '>' -> if Scanner.try_string sc ">=" then GE else (Scanner.advance sc; GT)
    | Some '&' ->
      if Scanner.try_string sc "&&" then ANDAND
      else raise (Error (pos, "expected '&&'"))
    | Some '|' ->
      if Scanner.try_string sc "||" then OROR
      else raise (Error (pos, "expected '||'"))
    | Some c ->
      let t = token_of_char sc c in
      Scanner.advance sc;
      t
  in
  { token; pos }

let tokenize src =
  let sc = Scanner.create src in
  let rec go acc =
    let t = try next_token sc with Scanner.Error (p, m) -> raise (Error (p, m)) in
    if t.token = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
