lib/alu_dsl/analysis.pp.ml: Ast Format List Ppx_deriving_runtime Printf String
