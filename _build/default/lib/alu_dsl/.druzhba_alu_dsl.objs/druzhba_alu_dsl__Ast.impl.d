lib/alu_dsl/ast.pp.ml: List Ppx_deriving_runtime
