lib/alu_dsl/printer.pp.ml: Ast Fmt List String
