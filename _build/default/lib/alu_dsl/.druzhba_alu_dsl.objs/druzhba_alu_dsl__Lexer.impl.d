lib/alu_dsl/lexer.pp.ml: Druzhba_util List Ppx_deriving_runtime Printf
