lib/alu_dsl/parser.pp.ml: Ast Druzhba_util Fmt Lexer List Printf String
