(* Abstract syntax of the ALU DSL (paper Fig. 3/4).

   An ALU description declares whether the unit is stateful or stateless, its
   state variables, hole variables (extra machine-code-controlled values) and
   packet-field operands, followed by a body of assignments, conditionals and
   returns.  The machine-code-controlled constructs — [Mux], [Opt], [C()],
   [rel_op], [arith_op] — each carry the instance index assigned by the
   parser in order of appearance; the index determines the machine-code name
   of the control that configures the construct (see {!Analysis}). *)

type kind =
  | Stateful
  | Stateless
[@@deriving eq, show { with_path = false }]

type unop =
  | Neg  (* arithmetic negation, wraps to the datapath width *)
  | Not  (* logical negation: 0 -> 1, nonzero -> 0 *)
[@@deriving eq, show { with_path = false }]

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | And
  | Or
[@@deriving eq, show { with_path = false }]

type expr =
  | Const of int  (* literal appearing in the DSL source *)
  | Var of string (* state variable, hole variable, or packet field *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Hole_const of int (* [C()]: immediate supplied by machine code *)
  | Opt of int * expr (* [Opt(e)]: machine code selects [e] or 0 *)
  | Mux of int * expr list (* [MuxN(e1,..,eN)]: machine code selects one *)
  | Rel_op of int * expr * expr (* relational operator chosen by machine code *)
  | Arith_op of int * expr * expr (* + or - chosen by machine code *)
[@@deriving eq, show { with_path = false }]

type stmt =
  | Assign of string * expr (* state-variable update *)
  | If of (expr * stmt list) list * stmt list (* if/elif*/else; else may be [] *)
  | Return of expr (* ALU output value *)
[@@deriving eq, show { with_path = false }]

type t = {
  name : string; (* e.g. "if_else_raw"; supplied by the caller, not the file *)
  kind : kind;
  state_vars : string list;
  hole_vars : string list;
  packet_fields : string list;
  body : stmt list;
}
[@@deriving eq, show { with_path = false }]

let is_stateful t = t.kind = Stateful

(* Number of PHV-container operands the ALU consumes. *)
let arity t = List.length t.packet_fields

(* The relational operators selectable by [rel_op], in machine-code order:
   0 -> >=, 1 -> <=, 2 -> ==, 3 -> != (the four the paper's grammar lists). *)
let rel_op_count = 4

(* The arithmetic operators selectable by [arith_op], in machine-code order:
   0 -> +, 1 -> - (as in the paper's Fig. 6 example). *)
let arith_op_count = 2
