(* Recursive-descent parser for the ALU DSL.

   Grammar (paper Fig. 3, plus the [elif] keyword used by the atom files):

   {v
   alu      := header stmt*
   header   := "type" ":" ("stateful" | "stateless")
               "state" "variables" ":" "{" idents "}"
               "hole" "variables" ":" "{" idents "}"
               "packet" "fields" ":" "{" idents "}"
   stmt     := "if" "(" expr ")" block ("elif" "(" expr ")" block)*
               ("else" block)?
             | "return" expr ";"
             | ident "=" expr ";"
   block    := "{" stmt* "}"
   expr     := C-style precedence over ||, &&, comparisons, additive and
               multiplicative operators,
               with unary - and !, parentheses, integer literals, identifiers,
               and the machine-code constructs MuxN(e,..), Opt(e), C(),
               rel_op(e, e), arith_op(e, e)
   v}

   Every machine-code construct receives an instance index in order of
   appearance; the indices key the machine-code slot names (see
   {!Analysis.slots}). *)

module Scanner = Druzhba_util.Scanner

exception Error of Scanner.position * string

type state = {
  mutable tokens : Lexer.located list;
  mutable counters : counters;
}

and counters = { mutable mux : int; mutable opt : int; mutable const : int; mutable rel : int; mutable arith : int }

let fresh_counters () = { mux = 0; opt = 0; const = 0; rel = 0; arith = 0 }

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] -> assert false (* the token list always ends with EOF *)

let advance st =
  match st.tokens with
  | _ :: rest when rest <> [] -> st.tokens <- rest
  | _ -> ()

let error_at (t : Lexer.located) msg = raise (Error (t.pos, msg))

let expect st token msg =
  let t = peek st in
  if Lexer.equal_token t.token token then advance st else error_at t msg

let expect_ident st =
  let t = peek st in
  match t.token with
  | Lexer.IDENT s ->
    advance st;
    s
  | _ -> error_at t "expected identifier"

let expect_keyword st kw =
  let t = peek st in
  match t.token with
  | Lexer.IDENT s when s = kw -> advance st
  | _ -> error_at t (Printf.sprintf "expected '%s'" kw)

(* Parses "{ id, id, ... }" (possibly empty). *)
let parse_ident_set st =
  expect st Lexer.LBRACE "expected '{'";
  let rec go acc =
    match (peek st).token with
    | Lexer.RBRACE ->
      advance st;
      List.rev acc
    | Lexer.COMMA when acc <> [] ->
      advance st;
      go acc
    | _ -> go (expect_ident st :: acc)
  in
  go []

(* Returns [Some n] if [name] is a mux constructor "MuxN" with N >= 2. *)
let mux_arity name =
  let prefix = "Mux" in
  let plen = String.length prefix in
  if String.length name > plen && String.sub name 0 plen = prefix then
    match int_of_string_opt (String.sub name plen (String.length name - plen)) with
    | Some n when n >= 2 -> Some n
    | Some _ | None -> None
  else None

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  let rec go lhs =
    match (peek st).token with
    | Lexer.OROR ->
      advance st;
      go (Ast.Binop (Ast.Or, lhs, parse_and st))
    | _ -> lhs
  in
  go lhs

and parse_and st =
  let lhs = parse_cmp st in
  let rec go lhs =
    match (peek st).token with
    | Lexer.ANDAND ->
      advance st;
      go (Ast.Binop (Ast.And, lhs, parse_cmp st))
    | _ -> lhs
  in
  go lhs

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (peek st).token with
    | Lexer.EQEQ -> Some Ast.Eq
    | Lexer.NEQ -> Some Ast.Neq
    | Lexer.LT -> Some Ast.Lt
    | Lexer.GT -> Some Ast.Gt
    | Lexer.LE -> Some Ast.Le
    | Lexer.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_add st)

and parse_add st =
  let lhs = parse_mul st in
  let rec go lhs =
    match (peek st).token with
    | Lexer.PLUS ->
      advance st;
      go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Lexer.MINUS ->
      advance st;
      go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go lhs

and parse_mul st =
  let lhs = parse_unary st in
  let rec go lhs =
    match (peek st).token with
    | Lexer.STAR ->
      advance st;
      go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Lexer.SLASH ->
      advance st;
      go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | Lexer.PERCENT ->
      advance st;
      go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go lhs

and parse_unary st =
  match (peek st).token with
  | Lexer.MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | Lexer.BANG ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = peek st in
  match t.token with
  | Lexer.INT n ->
    advance st;
    Ast.Const n
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN "expected ')'";
    e
  | Lexer.IDENT name -> (
    advance st;
    match (peek st).token with
    | Lexer.LPAREN -> parse_call st t name
    | _ -> Ast.Var name)
  | _ -> error_at t "expected expression"

and parse_call st at name =
  expect st Lexer.LPAREN "expected '('";
  let args () =
    let rec go acc =
      match (peek st).token with
      | Lexer.RPAREN ->
        advance st;
        List.rev acc
      | Lexer.COMMA when acc <> [] ->
        advance st;
        go acc
      | _ -> go (parse_expr st :: acc)
    in
    go []
  in
  (* Instance indices are reserved *before* the arguments are parsed so that
     constructs are numbered in textual (pre-order) appearance order, e.g. in
     Opt(Opt(s)) the outer Opt is instance 0. *)
  let c = st.counters in
  match name with
  | "C" ->
    let i = c.const in
    c.const <- i + 1;
    (match args () with
    | [] -> Ast.Hole_const i
    | _ -> error_at at "C() takes no arguments")
  | "Opt" ->
    let i = c.opt in
    c.opt <- i + 1;
    (match args () with
    | [ e ] -> Ast.Opt (i, e)
    | _ -> error_at at "Opt(e) takes exactly one argument")
  | "rel_op" ->
    let i = c.rel in
    c.rel <- i + 1;
    (match args () with
    | [ a; b ] -> Ast.Rel_op (i, a, b)
    | _ -> error_at at "rel_op(a, b) takes exactly two arguments")
  | "arith_op" ->
    let i = c.arith in
    c.arith <- i + 1;
    (match args () with
    | [ a; b ] -> Ast.Arith_op (i, a, b)
    | _ -> error_at at "arith_op(a, b) takes exactly two arguments")
  | _ -> (
    match mux_arity name with
    | Some arity ->
      let i = c.mux in
      c.mux <- i + 1;
      let es = args () in
      if List.length es <> arity then
        error_at at (Printf.sprintf "%s takes exactly %d arguments" name arity)
      else Ast.Mux (i, es)
    | None -> error_at at (Printf.sprintf "unknown function '%s'" name))

let rec parse_stmt st =
  let t = peek st in
  match t.token with
  | Lexer.IDENT "if" ->
    advance st;
    parse_if st
  | Lexer.IDENT "return" ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.SEMI "expected ';' after return";
    Ast.Return e
  | Lexer.IDENT name ->
    advance st;
    expect st Lexer.ASSIGN "expected '=' in assignment";
    let e = parse_expr st in
    expect st Lexer.SEMI "expected ';' after assignment";
    Ast.Assign (name, e)
  | _ -> error_at t "expected statement"

and parse_if st =
  expect st Lexer.LPAREN "expected '(' after if";
  let cond = parse_expr st in
  expect st Lexer.RPAREN "expected ')'";
  let body = parse_block st in
  let rec branches acc =
    match (peek st).token with
    | Lexer.IDENT "elif" ->
      advance st;
      expect st Lexer.LPAREN "expected '(' after elif";
      let c = parse_expr st in
      expect st Lexer.RPAREN "expected ')'";
      let b = parse_block st in
      branches ((c, b) :: acc)
    | Lexer.IDENT "else" ->
      advance st;
      (List.rev acc, parse_block st)
    | _ -> (List.rev acc, [])
  in
  let elifs, els = branches [] in
  Ast.If ((cond, body) :: elifs, els)

and parse_block st =
  expect st Lexer.LBRACE "expected '{'";
  let rec go acc =
    match (peek st).token with
    | Lexer.RBRACE ->
      advance st;
      List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

let parse_header st =
  expect_keyword st "type";
  expect st Lexer.COLON "expected ':' after 'type'";
  let kind =
    match expect_ident st with
    | "stateful" -> Ast.Stateful
    | "stateless" -> Ast.Stateless
    | other -> error_at (peek st) (Printf.sprintf "unknown ALU type '%s'" other)
  in
  expect_keyword st "state";
  expect_keyword st "variables";
  expect st Lexer.COLON "expected ':' after 'state variables'";
  let state_vars = parse_ident_set st in
  expect_keyword st "hole";
  expect_keyword st "variables";
  expect st Lexer.COLON "expected ':' after 'hole variables'";
  let hole_vars = parse_ident_set st in
  expect_keyword st "packet";
  expect_keyword st "fields";
  expect st Lexer.COLON "expected ':' after 'packet fields'";
  let packet_fields = parse_ident_set st in
  (kind, state_vars, hole_vars, packet_fields)

let parse ~name src =
  let tokens = try Lexer.tokenize src with Lexer.Error (p, m) -> raise (Error (p, m)) in
  let st = { tokens; counters = fresh_counters () } in
  let kind, state_vars, hole_vars, packet_fields = parse_header st in
  let rec body acc =
    match (peek st).token with
    | Lexer.EOF -> List.rev acc
    | _ -> body (parse_stmt st :: acc)
  in
  let body = body [] in
  { Ast.name; kind; state_vars; hole_vars; packet_fields; body }

let parse_result ~name src =
  match parse ~name src with
  | alu -> Ok alu
  | exception Error (pos, msg) ->
    Error (Fmt.str "%s: %a: %s" name Scanner.pp_position pos msg)
