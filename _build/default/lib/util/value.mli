(** Fixed-width unsigned integer algebra.

    Every datapath value in the simulator — PHV containers, ALU state,
    immediates — is an unsigned integer of a configurable bit width.
    Arithmetic wraps modulo [2{^bits}]; division and modulo by zero return 0
    (hardware convention).  Booleans are encoded as 0/1 as in the ALU DSL. *)

type width = int
(** A bit width in [1..62] (so values fit a native [int]). *)

val max_width : int

val width : int -> width
(** [width bits] validates a bit width. @raise Invalid_argument if outside
    [1..max_width]. *)

val mask : width -> int -> int
(** [mask bits v] truncates [v] to its low [bits] bits. *)

val truncate : width -> int -> int
(** Alias of {!mask}. *)

val max_value : width -> int
(** Largest representable value, [2{^bits} - 1]. *)

val add : width -> int -> int -> int
val sub : width -> int -> int -> int
val mul : width -> int -> int -> int

val div : width -> int -> int -> int
(** Unsigned division; division by zero yields 0. *)

val rem : width -> int -> int -> int
(** Unsigned remainder; modulo by zero yields 0. *)

val neg : width -> int -> int
(** Two's-complement negation truncated to the width. *)

val of_bool : bool -> int
val is_true : int -> bool

val logical_not : int -> int
val logical_and : int -> int -> int
val logical_or : int -> int -> int

val eq : int -> int -> int
val neq : int -> int -> int
val lt : int -> int -> int
val gt : int -> int -> int
val le : int -> int -> int
val ge : int -> int -> int

val pp : int Fmt.t
