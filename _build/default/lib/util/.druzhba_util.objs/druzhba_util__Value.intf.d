lib/util/value.mli: Fmt
