lib/util/value.ml: Fmt Printf
