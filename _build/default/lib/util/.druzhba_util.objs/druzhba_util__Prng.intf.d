lib/util/prng.mli:
