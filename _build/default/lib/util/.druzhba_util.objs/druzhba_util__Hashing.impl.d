lib/util/hashing.ml: Value
