lib/util/scanner.ml: Fmt Printf String
