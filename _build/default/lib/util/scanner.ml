(* Character-stream scanner shared by the three front ends (ALU DSL, Domino
   subset, P4 subset).  Tracks line/column for error reporting and provides
   the common lexical building blocks: whitespace and comment skipping,
   identifier and integer scanning. *)

type position = { line : int; column : int }

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

exception Error of position * string

let create src = { src; pos = 0; line = 1; bol = 0 }

let position t = { line = t.line; column = t.pos - t.bol + 1 }

let error t msg = raise (Error (position t, msg))

let pp_position ppf { line; column } = Fmt.pf ppf "line %d, column %d" line column

let at_end t = t.pos >= String.length t.src

let peek t = if at_end t then None else Some t.src.[t.pos]

let peek2 t =
  if t.pos + 1 >= String.length t.src then None else Some t.src.[t.pos + 1]

let advance t =
  (match peek t with
  | Some '\n' ->
    t.line <- t.line + 1;
    t.bol <- t.pos + 1
  | Some _ | None -> ());
  t.pos <- t.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

(* Skips spaces, tabs, newlines, and comments.  Both comment styles used by
   our inputs are supported: [//] and [#] to end of line. *)
let rec skip_trivia t =
  match peek t with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance t;
    skip_trivia t
  | Some '#' ->
    skip_line t;
    skip_trivia t
  | Some '/' when peek2 t = Some '/' ->
    skip_line t;
    skip_trivia t
  | Some _ | None -> ()

and skip_line t =
  match peek t with
  | Some '\n' -> advance t
  | Some _ ->
    advance t;
    skip_line t
  | None -> ()

let scan_while t pred =
  let start = t.pos in
  let rec go () =
    match peek t with
    | Some c when pred c ->
      advance t;
      go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub t.src start (t.pos - start)

let scan_ident t =
  match peek t with
  | Some c when is_alpha c -> scan_while t is_alnum
  | Some c -> error t (Printf.sprintf "expected identifier, found %C" c)
  | None -> error t "expected identifier, found end of input"

let scan_int t =
  match peek t with
  | Some c when is_digit c ->
    let digits = scan_while t is_digit in
    (try int_of_string digits with Failure _ -> error t "integer literal too large")
  | Some c -> error t (Printf.sprintf "expected integer, found %C" c)
  | None -> error t "expected integer, found end of input"

(* Consumes [s] if it is next in the stream; returns whether it did. *)
let try_string t s =
  let n = String.length s in
  if t.pos + n <= String.length t.src && String.sub t.src t.pos n = s then begin
    for _ = 1 to n do
      advance t
    done;
    true
  end
  else false
