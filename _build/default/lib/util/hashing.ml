(* Small integer hash functions.

   Several of the Table-1 packet programs (flowlets, CONGA, learn filter)
   hash packet fields.  A switch would use hardware hash units; we model them
   with cheap multiplicative mixers that both the specification and the
   compiled pipeline share, so equivalence testing is meaningful. *)

let mix_factor = 0x2545F4914F6CDD1D

(* 64-bit finalizer-style mixer truncated to the requested width. *)
let hash1 ~bits x =
  let h = x * mix_factor in
  let h = h lxor (h lsr 29) in
  Value.mask bits h

let hash2 ~bits x y =
  let h = (x * 0x9E3779B1 + y) * mix_factor in
  let h = h lxor (h lsr 31) in
  Value.mask bits h

let hash3 ~bits x y z =
  let h = ((x * 0x9E3779B1 + y) * 0x85EBCA77 + z) * mix_factor in
  let h = h lxor (h lsr 27) in
  Value.mask bits h

(* A family of independent hash functions indexed by [i], used by the learn
   filter's Bloom-style stages. *)
let indexed ~bits i x =
  let h = (x + (i + 1) * 0xC2B2AE3D) * mix_factor in
  let h = h lxor (h lsr 33) in
  Value.mask bits h
