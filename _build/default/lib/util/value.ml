(* Fixed-width unsigned integer algebra.

   PHV containers, switch state, and ALU datapaths in Druzhba are unsigned
   integers of a configurable bit width (the paper's case study hinges on the
   difference between narrow synthesis widths and wider verification widths).
   All arithmetic wraps modulo [2^bits]; division and modulo by zero return 0,
   the usual hardware convention.  Widths are limited to 1..62 so every value
   fits in a native OCaml [int]. *)

type width = int

let max_width = 62

let width bits =
  if bits < 1 || bits > max_width then
    invalid_arg (Printf.sprintf "Value.width: %d not in 1..%d" bits max_width)
  else bits

let mask bits v = v land ((1 lsl bits) - 1)

let truncate = mask

let max_value bits = (1 lsl bits) - 1

let add bits a b = mask bits (a + b)
let sub bits a b = mask bits (a - b)
let mul bits a b = mask bits (a * b)
let div bits a b = if b = 0 then 0 else mask bits (a / b)
let rem bits a b = if b = 0 then 0 else mask bits (a mod b)
let neg bits a = mask bits (- a)

let of_bool b = if b then 1 else 0
let is_true v = v <> 0

let logical_not v = of_bool (v = 0)
let logical_and a b = of_bool (a <> 0 && b <> 0)
let logical_or a b = of_bool (a <> 0 || b <> 0)

let eq a b = of_bool (a = b)
let neq a b = of_bool (a <> b)
let lt a b = of_bool (a < b)
let gt a b = of_bool (a > b)
let le a b = of_bool (a <= b)
let ge a b = of_bool (a >= b)

let pp = Fmt.int
