lib/fuzz/verify.ml: Array Druzhba_dsim Druzhba_machine_code Druzhba_pipeline Druzhba_util Fmt Fuzz Hashtbl List Queue
