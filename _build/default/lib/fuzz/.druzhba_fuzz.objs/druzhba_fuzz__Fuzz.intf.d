lib/fuzz/fuzz.mli: Druzhba_dsim Druzhba_machine_code Druzhba_optimizer Druzhba_pipeline Druzhba_util Fmt
