(* Input/output packet traces (§3.3).

   After a simulation the output trace holds one PHV per input PHV (in
   order) plus the final per-ALU state vectors; fuzz testing compares these
   against the trace produced by a high-level specification. *)

type t = {
  inputs : Phv.t list;
  outputs : Phv.t list;
  (* Final state of every stateful ALU, keyed by its position-encoding name
     ("pipeline_stage_i_stateful_alu_j"). *)
  final_state : (string * int array) list;
}

let find_state t name = List.assoc_opt name t.final_state

(* One line per packet, then the state vectors. *)
let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun i (input, output) -> Fmt.pf ppf "phv %4d: in %a -> out %a@," i Phv.pp input Phv.pp output)
    (List.combine t.inputs t.outputs);
  List.iter
    (fun (name, state) ->
      Fmt.pf ppf "state %s = [%a]@," name Fmt.(array ~sep:(any "; ") int) state)
    t.final_state;
  Fmt.pf ppf "@]"
