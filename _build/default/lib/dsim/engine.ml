(* RMT dsim: the feed-forward tick engine (§3.3).

   At every tick one PHV enters stage 0 and the PHVs occupying later stages
   advance exactly one stage.  The paper models each PHV as a read half and
   a write half so a stage cannot read a PHV in the same tick it was written;
   we obtain the same semantics by computing every stage's result from the
   registers as they stood at the beginning of the tick (stages are processed
   last-to-first, so a stage's input register is consumed before the previous
   stage overwrites it). *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Interp = Druzhba_pipeline.Interp

type t = {
  desc : Ir.t;
  ctx : Interp.ctx;
  (* regs.(s) = PHV waiting at the input of stage s (the "read half");
     regs.(depth) = PHV that exited the pipeline on the last tick. *)
  regs : Phv.t option array;
  (* state.(s).(j) = persistent state vector of stateful ALU j in stage s. *)
  state : int array array array;
  mutable tick : int;
}

(* [init] optionally preloads stateful-ALU state vectors (keyed by ALU
   name), modelling control-plane register initialization. *)
let create ?(init = []) (desc : Ir.t) ~mc =
  let depth = desc.Ir.d_depth in
  let state =
    Array.map
      (fun (st : Ir.stage) ->
        Array.map
          (fun (a : Ir.alu) ->
            let vec = Array.make (max 1 a.Ir.a_state_size) 0 in
            (match List.assoc_opt a.Ir.a_name init with
            | Some values -> Array.blit values 0 vec 0 (min (Array.length values) (Array.length vec))
            | None -> ());
            vec)
          st.Ir.s_stateful)
      desc.Ir.d_stages
  in
  { desc; ctx = Interp.ctx_of desc ~mc; regs = Array.make (depth + 1) None; state; tick = 0 }

let no_state : int array = [||]

(* Executes one stage on an incoming PHV: run all stateless and stateful
   ALUs on the read half, then let each output mux pick the value written to
   its container of the outgoing PHV. *)
let exec_stage t (st : Ir.stage) (phv : Phv.t) : Phv.t =
  let ctx = t.ctx in
  let width = t.desc.Ir.d_width in
  let stateless_out =
    Array.map (fun alu -> Interp.run_alu ctx alu ~phv ~state:no_state) st.Ir.s_stateless
  in
  let stateful_out =
    Array.mapi
      (fun j alu -> Interp.run_alu ctx alu ~phv ~state:t.state.(st.Ir.s_index).(j))
      st.Ir.s_stateful
  in
  (* Post-execution state_0 of each stateful ALU ("write half" of the state
     datapath), also selectable by the output muxes. *)
  let stateful_new = Array.map (fun state -> state.(0)) t.state.(st.Ir.s_index) in
  Array.init width (fun c ->
      let args =
        Array.to_list stateless_out @ Array.to_list stateful_out
        @ Array.to_list stateful_new @ [ phv.(c) ]
      in
      Interp.apply_output_mux ctx st.Ir.s_output_muxes.(c) ~args)

(* Advances the pipeline by one tick.  [input] (if any) enters stage 0 and is
   executed by it this very tick (§3.3); every in-flight PHV advances exactly
   one stage.  The result is the PHV exiting the last stage on this tick. *)
let step t ~input =
  let depth = t.desc.Ir.d_depth in
  t.regs.(0) <- input;
  for s = depth - 1 downto 0 do
    t.regs.(s + 1) <- Option.map (exec_stage t t.desc.Ir.d_stages.(s)) t.regs.(s)
  done;
  t.tick <- t.tick + 1;
  t.regs.(depth)

let current_state t =
  let acc = ref [] in
  Array.iteri
    (fun s per_stage ->
      Array.iteri
        (fun j st ->
          let name = t.desc.Ir.d_stages.(s).Ir.s_stateful.(j).Ir.a_name in
          acc := (name, Array.copy st) :: !acc)
        per_stage)
    t.state;
  List.rev !acc

(* Runs a complete simulation: feeds [inputs] one per tick, then drains the
   pipeline, returning the output trace.

   @raise Machine_code.Missing if the machine code lacks a required pair
   (only possible on the unoptimized description; optimized descriptions
   have the machine code compiled in). *)
let run ?init (desc : Ir.t) ~mc ~inputs : Trace.t =
  let t = create ?init desc ~mc in
  let outputs = ref [] in
  let push = function Some phv -> outputs := phv :: !outputs | None -> () in
  List.iter (fun phv -> push (step t ~input:(Some phv))) inputs;
  for _ = 1 to desc.Ir.d_depth do
    push (step t ~input:None)
  done;
  { Trace.inputs; outputs = List.rev !outputs; final_state = current_state t }
