(* dsim over closure-compiled pipeline descriptions (see
   {!Druzhba_pipeline.Compile}).  Semantics are identical to {!Engine}; only
   the execution substrate differs — this is the configuration the
   benchmarks use, mirroring the paper's rustc-compiled pipeline
   descriptions. *)

module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile
module Machine_code = Druzhba_machine_code.Machine_code

type t = {
  compiled : Compile.t;
  regs : Phv.t option array;
  mutable tick : int;
}

let create (compiled : Compile.t) =
  { compiled; regs = Array.make (compiled.Compile.c_depth + 1) None; tick = 0 }

let exec_stage t (cs : Compile.compiled_stage) (phv : Phv.t) : Phv.t =
  let width = t.compiled.Compile.c_width in
  let run_on (alu : Compile.compiled_alu) =
    alu.Compile.ca_env.Compile.phv <- phv;
    alu.Compile.ca_run ()
  in
  let stateless_out = Array.map run_on cs.Compile.cs_stateless in
  let stateful_out = Array.map run_on cs.Compile.cs_stateful in
  let n = (3 * width) + 1 in
  let args = Array.make n 0 in
  Array.blit stateless_out 0 args 0 width;
  Array.blit stateful_out 0 args width width;
  Array.iteri
    (fun j (alu : Compile.compiled_alu) ->
      args.((2 * width) + j) <- alu.Compile.ca_env.Compile.state.(0))
    cs.Compile.cs_stateful;
  Array.init width (fun c ->
      args.(n - 1) <- phv.(c);
      cs.Compile.cs_output_muxes.(c) args)

let step t ~input =
  let depth = t.compiled.Compile.c_depth in
  t.regs.(0) <- input;
  for s = depth - 1 downto 0 do
    t.regs.(s + 1) <- Option.map (exec_stage t t.compiled.Compile.c_stages.(s)) t.regs.(s)
  done;
  t.tick <- t.tick + 1;
  t.regs.(depth)

let current_state t =
  Array.to_list t.compiled.Compile.c_stages
  |> List.concat_map (fun (cs : Compile.compiled_stage) ->
         Array.to_list cs.Compile.cs_stateful
         |> List.map (fun (alu : Compile.compiled_alu) ->
                (alu.Compile.ca_name, Array.copy alu.Compile.ca_env.Compile.state)))

(* Zeroes all persistent ALU state, so a compiled pipeline can be reused for
   independent simulations (e.g. benchmark iterations). *)
let reset (compiled : Compile.t) =
  Array.iter
    (fun (cs : Compile.compiled_stage) ->
      Array.iter
        (fun (alu : Compile.compiled_alu) -> Array.fill alu.Compile.ca_env.Compile.state 0 (Array.length alu.Compile.ca_env.Compile.state) 0)
        cs.Compile.cs_stateful)
    compiled.Compile.c_stages

(* Preloads stateful-ALU state vectors (keyed by ALU name), modelling
   control-plane register initialization. *)
let load_state (compiled : Compile.t) init =
  Array.iter
    (fun (cs : Compile.compiled_stage) ->
      Array.iter
        (fun (alu : Compile.compiled_alu) ->
          match List.assoc_opt alu.Compile.ca_name init with
          | Some values ->
            let vec = alu.Compile.ca_env.Compile.state in
            Array.blit values 0 vec 0 (min (Array.length values) (Array.length vec))
          | None -> ())
        cs.Compile.cs_stateful)
    compiled.Compile.c_stages

(* Runs a complete simulation on a pre-compiled pipeline, starting from
   all-zero (or [init]-preloaded) state. *)
let run_compiled ?(init = []) (compiled : Compile.t) ~inputs : Trace.t =
  reset compiled;
  load_state compiled init;
  let t = create compiled in
  let outputs = ref [] in
  let push = function Some phv -> outputs := phv :: !outputs | None -> () in
  List.iter (fun phv -> push (step t ~input:(Some phv))) inputs;
  for _ = 1 to compiled.Compile.c_depth do
    push (step t ~input:None)
  done;
  { Trace.inputs; outputs = List.rev !outputs; final_state = current_state t }

(* Convenience: compile then run. *)
let run ?init (desc : Ir.t) ~mc ~inputs : Trace.t =
  run_compiled ?init (Compile.compile desc ~mc) ~inputs
