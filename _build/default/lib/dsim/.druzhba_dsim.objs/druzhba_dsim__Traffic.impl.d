lib/dsim/traffic.ml: Druzhba_util List Phv
