lib/dsim/engine.ml: Array Druzhba_machine_code Druzhba_pipeline List Option Phv Trace
