lib/dsim/phv.ml: Array Druzhba_util Fmt
