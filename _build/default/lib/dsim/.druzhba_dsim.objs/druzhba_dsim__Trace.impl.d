lib/dsim/trace.ml: Fmt List Phv
