lib/dsim/debugger.ml: Array Druzhba_machine_code Druzhba_pipeline Engine Fmt List Option Phv
