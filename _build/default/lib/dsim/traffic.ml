(* Traffic generator (§3.3): produces a sequence of PHVs whose containers are
   uniform random unsigned integers of the datapath width.  Deterministic in
   the seed so failing fuzz runs can be replayed. *)

module Prng = Druzhba_util.Prng

type t = { prng : Prng.t; width : int; bits : int }

let create ~seed ~width ~bits = { prng = Prng.create seed; width; bits }

let next t = Phv.random t.prng ~width:t.width ~bits:t.bits

let phvs t n = List.init n (fun _ -> next t)
