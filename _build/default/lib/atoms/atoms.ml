(* The ALU library: 6 stateful and 5 stateless ALUs written in the ALU DSL,
   modelling the behaviour of the atoms of Banzai (the Domino compiler's
   switch machine model), as described in §3.1 of the paper.  The paper's
   Table 1 names the stateful atoms it uses: raw, sub, pred_raw,
   if_else_raw, pair; nested_ifs completes Banzai's predication family.

   Each definition is DSL source; [stateful]/[stateless] parse them on
   demand.  The Mux/Opt/C/rel_op/arith_op constructs are the machine-code
   degrees of freedom a compiler programs. *)

module Ast = Druzhba_alu_dsl.Ast
module Parser = Druzhba_alu_dsl.Parser

(* --- Stateful atoms ------------------------------------------------------- *)

(* Read-add-write: unconditionally accumulates a packet field or an
   immediate into the state; outputs the old state (implicit). *)
let raw_src =
  {|
type : stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0}
state_0 = state_0 + Mux2(pkt_0, C());
|}

(* Like raw, but the accumulation direction (add or subtract) is chosen by
   machine code. *)
let sub_src =
  {|
type : stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}
state_0 = arith_op(state_0, Mux3(pkt_0, pkt_1, C()));
|}

(* Predicated read-add-write: the update fires only when the relational
   predicate holds. *)
let pred_raw_src =
  {|
type : stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}
if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
  state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
}
|}

(* If-else read-add-write, exactly the paper's Fig. 4. *)
let if_else_raw_src =
  {|
type : stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}
if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
  state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
}
else {
  state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
}
|}

(* Two-level predication: four independently programmable update arms. *)
let nested_ifs_src =
  {|
type : stateful
state variables : {state_0}
hole variables : {}
packet fields : {pkt_0, pkt_1}
if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
  if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
    state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
  }
  else {
    state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
  }
}
else {
  if (rel_op(Opt(state_0), Mux3(pkt_0, pkt_1, C()))) {
    state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
  }
  else {
    state_0 = Opt(state_0) + Mux3(pkt_0, pkt_1, C());
  }
}
|}

(* Paired-state update: two state variables updated under a shared
   predicate whose operands can each be state, a packet field, or an
   immediate; the most capable (and most expensive) Banzai atom. *)
let pair_src =
  {|
type : stateful
state variables : {state_0, state_1}
hole variables : {}
packet fields : {pkt_0, pkt_1}
if (rel_op(Mux4(state_0, state_1, pkt_0, C()), Mux4(state_0, state_1, pkt_1, C()))) {
  state_0 = Opt(Mux2(state_0, state_1)) + Mux3(pkt_0, pkt_1, C());
  state_1 = Opt(Mux2(state_0, state_1)) + Mux3(pkt_0, pkt_1, C());
}
else {
  state_0 = Opt(Mux2(state_0, state_1)) + Mux3(pkt_0, pkt_1, C());
  state_1 = Opt(Mux2(state_0, state_1)) + Mux3(pkt_0, pkt_1, C());
}
|}

(* --- Stateless ALUs -------------------------------------------------------- *)

(* Add/subtract of two muxed operands. *)
let stateless_arith_src =
  {|
type : stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}
return arith_op(Mux2(pkt_0, C()), Mux2(pkt_1, C()));
|}

(* Relational comparison producing 0/1. *)
let stateless_rel_src =
  {|
type : stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}
return rel_op(Mux2(pkt_0, C()), Mux2(pkt_1, C()));
|}

(* Pure selection: forwards a field or an immediate. *)
let stateless_mux_src =
  {|
type : stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}
return Mux3(pkt_0, pkt_1, C());
|}

(* Conjunction/disjunction of two relational tests. *)
let stateless_logical_src =
  {|
type : stateless
state variables : {}
hole variables : {}
packet fields : {pkt_0, pkt_1}
if (rel_op(pkt_0, C()) && rel_op(pkt_1, C())) {
  return 1;
}
else {
  return 0;
}
|}

(* Opcode-dispatched general-purpose stateless ALU: the hole variable
   [opcode] selects among arithmetic, selection, relational and immediate
   behaviours — the workhorse used as the stateless side of the Table 1
   pipelines. *)
let stateless_full_src =
  {|
type : stateless
state variables : {}
hole variables : {opcode}
packet fields : {pkt_0, pkt_1}
if (opcode == 0) {
  return pkt_0 + Mux2(pkt_1, C());
}
elif (opcode == 1) {
  return pkt_0 - Mux2(pkt_1, C());
}
elif (opcode == 2) {
  return Mux3(pkt_0, pkt_1, C());
}
elif (opcode == 3) {
  return rel_op(pkt_0, Mux2(pkt_1, C()));
}
elif (opcode == 4) {
  return rel_op(pkt_0, Mux2(pkt_1, C())) && rel_op(pkt_1, C());
}
else {
  return C();
}
|}

let parse name src = Parser.parse ~name src

let raw = lazy (parse "raw" raw_src)
let sub = lazy (parse "sub" sub_src)
let pred_raw = lazy (parse "pred_raw" pred_raw_src)
let if_else_raw = lazy (parse "if_else_raw" if_else_raw_src)
let nested_ifs = lazy (parse "nested_ifs" nested_ifs_src)
let pair = lazy (parse "pair" pair_src)

let stateless_arith = lazy (parse "stateless_arith" stateless_arith_src)
let stateless_rel = lazy (parse "stateless_rel" stateless_rel_src)
let stateless_mux = lazy (parse "stateless_mux" stateless_mux_src)
let stateless_logical = lazy (parse "stateless_logical" stateless_logical_src)
let stateless_full = lazy (parse "stateless_full" stateless_full_src)

let stateful_atoms =
  [
    ("raw", raw);
    ("sub", sub);
    ("pred_raw", pred_raw);
    ("if_else_raw", if_else_raw);
    ("nested_ifs", nested_ifs);
    ("pair", pair);
  ]

let stateless_atoms =
  [
    ("stateless_arith", stateless_arith);
    ("stateless_rel", stateless_rel);
    ("stateless_mux", stateless_mux);
    ("stateless_logical", stateless_logical);
    ("stateless_full", stateless_full);
  ]

let find name =
  match List.assoc_opt name (stateful_atoms @ stateless_atoms) with
  | Some l -> Some (Lazy.force l)
  | None -> None

let find_exn name =
  match find name with
  | Some alu -> alu
  | None -> invalid_arg (Printf.sprintf "Atoms.find_exn: unknown ALU '%s'" name)

let all_names = List.map fst stateful_atoms @ List.map fst stateless_atoms
