(** The ALU library: Banzai-style atoms written in the ALU DSL (paper §3.1).

    Six stateful atoms model Banzai's packet-processing atoms — the paper's
    Table 1 uses [raw], [sub], [pred_raw], [if_else_raw] (its Fig. 4) and
    [pair]; [nested_ifs] completes the predication family.  Five stateless
    ALUs provide the computation menu of the pipeline's stateless side, with
    [stateless_full] (opcode-dispatched add/sub/select/compare/and/const)
    being the workhorse the rule-based compiler targets.

    Each value is the parsed DSL description; the sources ([*_src]) are also
    exposed so tools can display or re-parse them. *)

module Ast = Druzhba_alu_dsl.Ast

(** {1 DSL sources} *)

val raw_src : string
val sub_src : string
val pred_raw_src : string

val if_else_raw_src : string
(** Exactly the paper's Fig. 4. *)

val nested_ifs_src : string
val pair_src : string
val stateless_arith_src : string
val stateless_rel_src : string
val stateless_mux_src : string
val stateless_logical_src : string
val stateless_full_src : string

(** {1 Parsed atoms} *)

val raw : Ast.t lazy_t
val sub : Ast.t lazy_t
val pred_raw : Ast.t lazy_t
val if_else_raw : Ast.t lazy_t
val nested_ifs : Ast.t lazy_t
val pair : Ast.t lazy_t
val stateless_arith : Ast.t lazy_t
val stateless_rel : Ast.t lazy_t
val stateless_mux : Ast.t lazy_t
val stateless_logical : Ast.t lazy_t
val stateless_full : Ast.t lazy_t

(** {1 Registry} *)

val stateful_atoms : (string * Ast.t lazy_t) list
val stateless_atoms : (string * Ast.t lazy_t) list

val find : string -> Ast.t option
(** Looks up any atom (stateful or stateless) by name. *)

val find_exn : string -> Ast.t
(** @raise Invalid_argument on unknown names. *)

val all_names : string list
