lib/atoms/atoms.ml: Druzhba_alu_dsl Lazy List Printf
