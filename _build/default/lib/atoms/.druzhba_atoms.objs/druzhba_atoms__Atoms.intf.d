lib/atoms/atoms.mli: Druzhba_alu_dsl
