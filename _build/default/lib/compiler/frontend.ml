(* Lexer and parser for the Domino-like packet-transaction language.

   Concrete syntax:

   {v
   state count = 0;
   state last_time = 0;

   transaction sampling {
     if (count == 9) {
       count = 0;
       pkt.sample = 1;
     } else {
       count = count + 1;
       pkt.sample = 0;
     }
   }
   v}

   Statements: assignments to "pkt.<field>" or a state variable,
   "local x = e;" bindings, and if/elif/else.  Expression syntax and
   precedence are the same as the ALU DSL's. *)

module Scanner = Druzhba_util.Scanner

exception Error of Scanner.position * string

type token =
  | IDENT of string
  | INT of int
  | FIELD of string (* pkt.x, lexed as one token *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | BANG
  | ASSIGN
  | EQEQ
  | NEQ
  | LT
  | GT
  | LE
  | GE
  | ANDAND
  | OROR
  | EOF
[@@deriving eq, show { with_path = false }]

type located = { token : token; pos : Scanner.position }

let next_token sc =
  Scanner.skip_trivia sc;
  let pos = Scanner.position sc in
  let fail msg = raise (Error (pos, msg)) in
  let token =
    match Scanner.peek sc with
    | None -> EOF
    | Some c when Scanner.is_digit c -> INT (Scanner.scan_int sc)
    | Some c when Scanner.is_alpha c -> (
      let id = Scanner.scan_ident sc in
      if id = "pkt" && Scanner.peek sc = Some '.' then begin
        Scanner.advance sc;
        FIELD (Scanner.scan_ident sc)
      end
      else IDENT id)
    | Some '=' -> if Scanner.try_string sc "==" then EQEQ else (Scanner.advance sc; ASSIGN)
    | Some '!' -> if Scanner.try_string sc "!=" then NEQ else (Scanner.advance sc; BANG)
    | Some '<' -> if Scanner.try_string sc "<=" then LE else (Scanner.advance sc; LT)
    | Some '>' -> if Scanner.try_string sc ">=" then GE else (Scanner.advance sc; GT)
    | Some '&' -> if Scanner.try_string sc "&&" then ANDAND else fail "expected '&&'"
    | Some '|' -> if Scanner.try_string sc "||" then OROR else fail "expected '||'"
    | Some '{' -> Scanner.advance sc; LBRACE
    | Some '}' -> Scanner.advance sc; RBRACE
    | Some '(' -> Scanner.advance sc; LPAREN
    | Some ')' -> Scanner.advance sc; RPAREN
    | Some ';' -> Scanner.advance sc; SEMI
    | Some '+' -> Scanner.advance sc; PLUS
    | Some '-' -> Scanner.advance sc; MINUS
    | Some '*' -> Scanner.advance sc; STAR
    | Some '/' -> Scanner.advance sc; SLASH
    | Some '%' -> Scanner.advance sc; PERCENT
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  { token; pos }

let tokenize src =
  let sc = Scanner.create src in
  let rec go acc =
    let t = try next_token sc with Scanner.Error (p, m) -> raise (Error (p, m)) in
    if t.token = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []

(* --- Parser ------------------------------------------------------------- *)

type state = { mutable tokens : located list }

let peek st = match st.tokens with t :: _ -> t | [] -> assert false

let advance st = match st.tokens with _ :: (_ :: _ as rest) -> st.tokens <- rest | _ -> ()

let error_at (t : located) msg = raise (Error (t.pos, msg))

let expect st token msg =
  let t = peek st in
  if equal_token t.token token then advance st else error_at t msg

let expect_ident st =
  let t = peek st in
  match t.token with
  | IDENT s ->
    advance st;
    s
  | _ -> error_at t "expected identifier"

let rec parse_expr st = parse_or st

and parse_or st =
  let rec go lhs =
    match (peek st).token with
    | OROR ->
      advance st;
      go (Ast.Binop (Ast.Or, lhs, parse_and st))
    | _ -> lhs
  in
  go (parse_and st)

and parse_and st =
  let rec go lhs =
    match (peek st).token with
    | ANDAND ->
      advance st;
      go (Ast.Binop (Ast.And, lhs, parse_cmp st))
    | _ -> lhs
  in
  go (parse_cmp st)

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match (peek st).token with
    | EQEQ -> Some Ast.Eq
    | NEQ -> Some Ast.Neq
    | LT -> Some Ast.Lt
    | GT -> Some Ast.Gt
    | LE -> Some Ast.Le
    | GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_add st)

and parse_add st =
  let rec go lhs =
    match (peek st).token with
    | PLUS ->
      advance st;
      go (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | MINUS ->
      advance st;
      go (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  go (parse_mul st)

and parse_mul st =
  let rec go lhs =
    match (peek st).token with
    | STAR ->
      advance st;
      go (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | SLASH ->
      advance st;
      go (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | PERCENT ->
      advance st;
      go (Ast.Binop (Ast.Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  go (parse_unary st)

and parse_unary st =
  match (peek st).token with
  | MINUS ->
    advance st;
    Ast.Unop (Ast.Neg, parse_unary st)
  | BANG ->
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = peek st in
  match t.token with
  | INT n ->
    advance st;
    Ast.Int n
  | FIELD f ->
    advance st;
    Ast.Field f
  | IDENT v ->
    advance st;
    Ast.Var v
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN "expected ')'";
    e
  | _ -> error_at t "expected expression"

let rec parse_stmt st =
  let t = peek st in
  match t.token with
  | IDENT "if" ->
    advance st;
    parse_if st
  | IDENT "local" ->
    advance st;
    let name = expect_ident st in
    expect st ASSIGN "expected '=' in local binding";
    let e = parse_expr st in
    expect st SEMI "expected ';'";
    Ast.Local (name, e)
  | FIELD f ->
    advance st;
    expect st ASSIGN "expected '=' in assignment";
    let e = parse_expr st in
    expect st SEMI "expected ';'";
    Ast.Assign (Ast.Lfield f, e)
  | IDENT v ->
    advance st;
    expect st ASSIGN "expected '=' in assignment";
    let e = parse_expr st in
    expect st SEMI "expected ';'";
    Ast.Assign (Ast.Lvar v, e)
  | _ -> error_at t "expected statement"

and parse_if st =
  expect st LPAREN "expected '(' after if";
  let cond = parse_expr st in
  expect st RPAREN "expected ')'";
  let body = parse_block st in
  let rec branches acc =
    match (peek st).token with
    | IDENT "elif" ->
      advance st;
      expect st LPAREN "expected '(' after elif";
      let c = parse_expr st in
      expect st RPAREN "expected ')'";
      let b = parse_block st in
      branches ((c, b) :: acc)
    | IDENT "else" ->
      advance st;
      (List.rev acc, parse_block st)
    | _ -> (List.rev acc, [])
  in
  let elifs, els = branches [] in
  Ast.If ((cond, body) :: elifs, els)

and parse_block st =
  expect st LBRACE "expected '{'";
  let rec go acc =
    match (peek st).token with
    | RBRACE ->
      advance st;
      List.rev acc
    | _ -> go (parse_stmt st :: acc)
  in
  go []

let parse ?name src =
  let st = { tokens = tokenize src } in
  let rec states acc =
    match (peek st).token with
    | IDENT "state" ->
      advance st;
      let v = expect_ident st in
      expect st ASSIGN "expected '=' in state declaration";
      let init =
        match (peek st).token with
        | INT n ->
          advance st;
          n
        | MINUS ->
          advance st;
          (match (peek st).token with
          | INT n ->
            advance st;
            -n
          | _ -> error_at (peek st) "expected integer initializer")
        | _ -> error_at (peek st) "expected integer initializer"
      in
      expect st SEMI "expected ';'";
      states ((v, init) :: acc)
    | _ -> List.rev acc
  in
  let states = states [] in
  let t = peek st in
  (match t.token with
  | IDENT "transaction" -> advance st
  | _ -> error_at t "expected 'transaction'");
  let declared_name =
    match (peek st).token with
    | IDENT n when n <> "if" ->
      advance st;
      Some n
    | _ -> None
  in
  let body = parse_block st in
  (match (peek st).token with
  | EOF -> ()
  | _ -> error_at (peek st) "trailing input after transaction");
  let name =
    match (name, declared_name) with
    | Some n, _ -> n
    | None, Some n -> n
    | None, None -> "anonymous"
  in
  { Ast.name; states; body }

let parse_result ?name src =
  match parse ?name src with
  | p -> Ok p
  | exception Error (pos, msg) -> Error (Fmt.str "%a: %s" Scanner.pp_position pos msg)
