(* The rule-based backend: maps a packet transaction onto a Druzhba pipeline.

   Stages of the translation:

   1. {!Predicate.predicate} removes branches, leaving one write-once
      expression per state variable and output field.
   2. State variables are grouped: variables that appear in each other's
      update expressions must share a stateful ALU (Domino's constraint that
      state is local to one atom); a group is realized on the target atom by
      {!Match_atom.match_group}, yielding slot values plus the operand
      expressions the atom consumes.
   3. Operand expressions and output-field expressions are lowered to a DAG
      of stateless_full operations (add/sub/move/rel/and/const); reads of
      old state become the stateful ALU's output, and subtrees equal to a
      group's update expression become its new-state output.  Groups are
      processed in dependency order (a cycle between groups cannot be laid
      out on a feed-forward pipeline and is a compile error).
   4. Nodes and groups are placed ASAP into the depth x width grid subject
      to per-stage ALU capacity; containers are assigned by linear scan over
      live intervals.  Exceeding depth, width, or containers is a compile
      error — the all-or-nothing property of real pipelines.
   5. Machine code is emitted: a neutral program (all controls zero, output
      muxes pass-through) overlaid with the placements.

   The result carries the machine code, the generated pipeline description,
   and the layout (field-to-container and state-to-ALU maps) that the fuzz
   harness uses to compare simulation traces against the reference
   semantics. *)

module Aast = Druzhba_alu_dsl.Ast
module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Names = Druzhba_pipeline.Names

open Predicate

exception Error of string

let fail fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

(* --- Target ------------------------------------------------------------------ *)

type target = {
  t_depth : int;
  t_width : int;
  t_bits : Value.width;
  t_stateful : Aast.t; (* the atom *)
  t_stateless : Aast.t; (* must be stateless_full: the lowering menu below *)
}

let target ~depth ~width ?(bits = 32) ~stateful ~stateless () =
  if stateless.Aast.name <> "stateless_full" then
    invalid_arg "Codegen.target: the rule-based backend requires the stateless_full ALU";
  {
    t_depth = depth;
    t_width = width;
    t_bits = Value.width bits;
    t_stateful = stateful;
    t_stateless = stateless;
  }

(* --- Placement IR ------------------------------------------------------------- *)

(* A reference to a value that will live in a container. *)
type opref =
  | Rin of string (* input packet field *)
  | Rnode of int (* stateless node result *)
  | Rold of int (* group's pre-update state_0 output *)
  | Rnew of int (* group's post-update state_0 output *)
  | Rimm of int (* immediate; allowed only where the ALU has a C() slot *)

type rel = Ge | Le | Eq | Neq

let rel_code = function Ge -> 0 | Le -> 1 | Eq -> 2 | Neq -> 3

(* One stateless_full operation.  The second operand of add/sub/rel may be an
   immediate (the ALU has a C() slot there). *)
type node_kind =
  | Kadd of opref * opref
  | Ksub of opref * opref
  | Kmove of opref
  | Krel of rel * opref * opref
  | Kand of opref * opref (* logical-and of two truth values *)
  | Kconst of int

type node = { n_stage : int; n_kind : node_kind }

type group = {
  g_id : int;
  g_members : string list; (* program state vars *)
  g_slots : (string * int) list; (* program state var -> atom state slot *)
  g_binding : Match_atom.binding;
  mutable g_operands : (string * opref option) list; (* atom field -> source *)
  mutable g_stage : int;
  mutable g_placed : bool;
  mutable g_old_used : bool;
  mutable g_new_used : bool;
}

(* --- Compilation result -------------------------------------------------------- *)

type layout = {
  l_inputs : (string * int) list; (* input field -> container *)
  l_outputs : (string * int) list; (* output field -> container *)
  l_state : (string * (string * int)) list; (* state var -> (ALU name, slot) *)
  l_init : (string * int array) list; (* ALU name -> initial state vector *)
}

type compiled = {
  c_program : Ast.program;
  c_target : target;
  c_mc : Machine_code.t;
  c_desc : Ir.t; (* unoptimized description of the target pipeline *)
  c_layout : layout;
}

(* --- State grouping -------------------------------------------------------------- *)

(* State variables that must share a stateful ALU: the strongly connected
   components of the "update of v reads w" relation.  Mutually dependent
   variables cannot be split across stages (each would need the other's
   same-packet value), whereas a one-directional read can flow through the
   PHV from an earlier stage. *)
let group_states (pred : Predicate.t) : string list list =
  let vars = List.map fst pred.state_updates in
  let n = List.length vars in
  let index v =
    let rec go i = function [] -> assert false | x :: r -> if x = v then i else go (i + 1) r in
    go 0 vars
  in
  let reaches = Array.make_matrix n n false in
  List.iter
    (fun (v, update) ->
      List.iter
        (fun w -> if List.mem w vars then reaches.(index v).(index w) <- true)
        (state_vars_of [] update))
    pred.state_updates;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reaches.(i).(k) && reaches.(k).(j) then reaches.(i).(j) <- true
      done
    done
  done;
  let assigned = Array.make n false in
  List.concat
    (List.mapi
       (fun i v ->
         if assigned.(i) then []
         else begin
           assigned.(i) <- true;
           let members = ref [ v ] in
           List.iteri
             (fun j w ->
               if (not assigned.(j)) && reaches.(i).(j) && reaches.(j).(i) then begin
                 assigned.(j) <- true;
                 members := !members @ [ w ]
               end)
             vars;
           [ !members ]
         end)
       vars)

(* One-directional dependency between two groups: some member of one reads a
   member of the other. *)
let groups_related (pred : Predicate.t) a b =
  let reads members other =
    List.exists
      (fun v ->
        let update = List.assoc v pred.state_updates in
        List.exists (fun w -> List.mem w other) (state_vars_of [] update))
      members
  in
  reads a b || reads b a

(* Groups variables, then greedily merges dependent groups into one ALU when
   the atom has the state capacity and the merged updates still match it.
   Merging saves the PHV round-trip a cross-group read costs (one-directional
   reads work across stages, but e.g. CONGA on a 1-stage pipeline needs both
   variables in one pair atom).  Returns each final group with its match. *)
let grouped_matches ~bits ~(atom : Aast.t) (pred : Predicate.t) :
    (string list * Match_atom.result) list =
  let capacity = List.length atom.Aast.state_vars in
  let match_of members =
    let updates = List.map (fun v -> (v, List.assoc v pred.state_updates)) members in
    Match_atom.match_group ~bits ~atom ~updates
  in
  let rec merge groups =
    let rec find_mergeable = function
      | [] -> None
      | a :: rest -> (
        let candidate =
          List.find_map
            (fun b ->
              if List.length a + List.length b <= capacity && groups_related pred a b then
                match match_of (a @ b) with Some m -> Some (b, a @ b, m) | None -> None
              else None)
            rest
        in
        match candidate with
        | Some (b, merged, _) ->
          Some (merged :: List.filter (fun g -> g != b) rest)
        | None -> Option.map (fun gs -> a :: gs) (find_mergeable rest))
    in
    match find_mergeable groups with Some groups' -> merge groups' | None -> groups
  in
  let final = merge (group_states pred) in
  List.map
    (fun members ->
      match match_of members with
      | Some m -> (members, m)
      | None ->
        fail "state group {%s} cannot be realized on the '%s' atom" (String.concat ", " members)
          atom.Aast.name)
    final

(* --- The builder ------------------------------------------------------------------ *)

type builder = {
  target : target;
  pred : Predicate.t;
  program : Ast.program;
  mutable nodes : node list; (* reverse creation order *)
  mutable node_count : int;
  mutable groups : group list; (* in group-id order *)
  mutable memo : (sexpr * opref) list; (* lowered expressions, newest first *)
  var_group : (string, int) Hashtbl.t; (* program state var -> group id *)
  stateless_load : int array; (* per-stage occupancy *)
  stateful_load : int array;
}

let group_by_id b gid = List.find (fun g -> g.g_id = gid) b.groups

let node_by_id b id = List.nth b.nodes (b.node_count - 1 - id)

(* Def stage of a value: the stage whose output mux writes it (inputs and
   immediates are available from the start). *)
let def_stage b = function
  | Rin _ | Rimm _ -> -1
  | Rnode id -> (node_by_id b id).n_stage
  | Rold gid | Rnew gid ->
    let g = group_by_id b gid in
    if not g.g_placed then fail "internal: group %d consumed before placement" gid;
    g.g_stage

let operand_ready b r = def_stage b r + 1

(* Allocates a stateless node at the earliest stage with capacity, no
   earlier than [min_stage]. *)
let place_node b ~min_stage kind =
  let rec find stage =
    if stage >= b.target.t_depth then
      fail "program does not fit: needs a stateless ALU at stage >= %d but depth is %d" stage
        b.target.t_depth
    else if b.stateless_load.(stage) < b.target.t_width then stage
    else find (stage + 1)
  in
  let stage = find (max 0 min_stage) in
  b.stateless_load.(stage) <- b.stateless_load.(stage) + 1;
  let id = b.node_count in
  b.node_count <- id + 1;
  b.nodes <- { n_stage = stage; n_kind = kind } :: b.nodes;
  Rnode id

(* --- Lowering ------------------------------------------------------------------------ *)

let use_old_state b v =
  match Hashtbl.find_opt b.var_group v with
  | None -> fail "internal: state variable '%s' has no group" v
  | Some gid ->
    let g = group_by_id b gid in
    (* Only state_0 of an ALU is exposed to the output crossbar. *)
    if List.assoc v g.g_slots <> 0 then
      fail "state variable '%s' is not state_0 of its ALU, so its value cannot be read out" v;
    g.g_old_used <- true;
    Rold gid

let use_new_state b v =
  match Hashtbl.find_opt b.var_group v with
  | None -> fail "internal: state variable '%s' has no group" v
  | Some gid ->
    let g = group_by_id b gid in
    if List.assoc v g.g_slots <> 0 then
      fail "updated value of state variable '%s' is not exposed: it is not state_0 of its ALU" v;
    g.g_new_used <- true;
    Rnew gid

let is_boolean_shaped = function
  | SBin ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.And | Ast.Or), _, _)
  | SUn (Ast.Not, _) ->
    true
  | _ -> false

let rec lower b (e : sexpr) : opref =
  match List.find_opt (fun (k, _) -> equal_sexpr k e) b.memo with
  | Some (_, r) -> r
  | None ->
    let r = lower_uncached b e in
    b.memo <- (e, r) :: b.memo;
    r

and lower_uncached b (e : sexpr) : opref =
  (* A non-leaf subtree equal to a group's (non-identity) update expression
     is that group's new-state output.  Leaves are always cheaper to read
     directly, and restricting to placed groups keeps a group's own operand
     lowering (which runs before its placement) from matching its own update
     — e.g. flowlets' "last_time = pkt.arrival", whose operand is exactly
     pkt.arrival. *)
  let is_leaf = match e with SInt _ | SIn _ | SState _ -> true | _ -> false in
  let as_new_state =
    if is_leaf then None
    else
      List.find_map
        (fun (v, update) ->
          if
            (not (equal_sexpr update (SState v)))
            && equal_sexpr e update
            && (match Hashtbl.find_opt b.var_group v with
               | Some gid -> (group_by_id b gid).g_placed
               | None -> false)
          then Some v
          else None)
        b.pred.state_updates
  in
  match as_new_state with
  | Some v -> use_new_state b v
  | None -> (
    match e with
    | SInt n -> Rimm n
    | SIn f -> Rin f
    | SState v -> use_old_state b v
    | SBin (Ast.Add, x, y) ->
      let rx = lower b x and ry = lower b y in
      (* the immediate slot is on the second operand *)
      let rx, ry = match rx with Rimm _ -> (ry, rx) | _ -> (rx, ry) in
      let rx = ensure_container b rx in
      place_node b ~min_stage:(max (operand_ready b rx) (operand_ready b ry)) (Kadd (rx, ry))
    | SBin (Ast.Sub, x, y) ->
      let rx = ensure_container b (lower b x) in
      let ry = lower b y in
      place_node b ~min_stage:(max (operand_ready b rx) (operand_ready b ry)) (Ksub (rx, ry))
    | SBin (Ast.Ge, x, y) -> lower_rel b Ge x y
    | SBin (Ast.Le, x, y) -> lower_rel b Le x y
    | SBin (Ast.Eq, x, y) -> lower_rel b Eq x y
    | SBin (Ast.Neq, x, y) -> lower_rel b Neq x y
    | SBin (Ast.Lt, x, y) -> lower b (SUn (Ast.Not, SBin (Ast.Ge, x, y)))
    | SBin (Ast.Gt, x, y) -> lower b (SUn (Ast.Not, SBin (Ast.Le, x, y)))
    | SBin (Ast.And, x, y) ->
      let rx = ensure_container b (lower b x) in
      let ry = ensure_container b (lower b y) in
      place_node b ~min_stage:(max (operand_ready b rx) (operand_ready b ry)) (Kand (rx, ry))
    | SBin (Ast.Or, x, y) ->
      (* x || y  <=>  !(!x && !y) *)
      lower b (SUn (Ast.Not, SBin (Ast.And, SUn (Ast.Not, x), SUn (Ast.Not, y))))
    | SBin ((Ast.Mul | Ast.Div | Ast.Mod), _, _) ->
      fail "the stateless instruction set has no multiply/divide/modulo unit"
    | SUn (Ast.Not, x) -> lower_rel b Eq x (SInt 0)
    | SUn (Ast.Neg, x) ->
      let zero = ensure_container b (Rimm 0) in
      let rx = ensure_container b (lower b x) in
      place_node b ~min_stage:(max (operand_ready b zero) (operand_ready b rx)) (Ksub (zero, rx))
    | SCond (g, SInt 1, SInt 0) -> lower_bool b g
    | SCond (g, SInt 0, SInt 1) -> lower b (SUn (Ast.Not, g))
    | SCond _ ->
      fail
        "conditional packet value is not expressible by the stateless units (pipelines have no \
         per-packet result mux); carry the value through state instead")

and lower_rel b rel x y =
  let rx = ensure_container b (lower b x) in
  let ry = lower b y in
  place_node b ~min_stage:(max (operand_ready b rx) (operand_ready b ry)) (Krel (rel, rx, ry))

(* Lowers an expression used for its truth value into a 0/1 container. *)
and lower_bool b (g : sexpr) : opref =
  if is_boolean_shaped g then lower b g
  else
    let rg = ensure_container b (lower b g) in
    place_node b ~min_stage:(operand_ready b rg) (Krel (Neq, rg, Rimm 0))

(* Materializes an immediate into a container where the consuming position
   has no C() slot. *)
and ensure_container b (r : opref) : opref =
  match r with
  | Rimm n -> (
    let key = SBin (Ast.Add, SInt n, SInt max_int) (* private memo key for materialized consts *) in
    match List.find_opt (fun (k, _) -> equal_sexpr k key) b.memo with
    | Some (_, r) -> r
    | None ->
      let r = place_node b ~min_stage:0 (Kconst n) in
      b.memo <- (key, r) :: b.memo;
      r)
  | r -> r

(* --- Group ordering and placement --------------------------------------------------- *)

(* Other groups referenced by a group's operand expressions. *)
let group_deps b (g : group) =
  List.concat_map
    (fun (_, e) ->
      List.filter_map (fun v -> Hashtbl.find_opt b.var_group v) (state_vars_of [] e))
    g.g_binding.Match_atom.b_fields
  |> List.filter (fun gid -> gid <> g.g_id)
  |> List.sort_uniq compare

let place_group b (g : group) =
  let operands =
    List.map
      (fun field ->
        match List.assoc_opt field g.g_binding.Match_atom.b_fields with
        | Some e -> (field, Some (ensure_container b (lower b e)))
        | None -> (field, None) (* unconstrained operand: reads container 0 *))
      b.target.t_stateful.Aast.packet_fields
  in
  g.g_operands <- operands;
  let min_stage =
    List.fold_left
      (fun acc (_, r) -> match r with Some r -> max acc (operand_ready b r) | None -> acc)
      0 operands
  in
  let rec find stage =
    if stage >= b.target.t_depth then
      fail "program does not fit: needs a stateful ALU at stage >= %d but depth is %d" stage
        b.target.t_depth
    else if b.stateful_load.(stage) < b.target.t_width then stage
    else find (stage + 1)
  in
  let stage = find min_stage in
  b.stateful_load.(stage) <- b.stateful_load.(stage) + 1;
  g.g_stage <- stage;
  g.g_placed <- true

(* Places all groups in dependency order; a dependency cycle between state
   groups cannot be laid out feed-forward. *)
let place_groups b =
  let placed = Hashtbl.create 8 in
  let in_progress = Hashtbl.create 8 in
  let rec visit gid =
    if Hashtbl.mem placed gid then ()
    else if Hashtbl.mem in_progress gid then
      fail "state groups form a dependency cycle; a feed-forward pipeline cannot implement it"
    else begin
      Hashtbl.replace in_progress gid ();
      let g = group_by_id b gid in
      List.iter visit (group_deps b g);
      place_group b g;
      Hashtbl.remove in_progress gid;
      Hashtbl.replace placed gid ()
    end
  in
  List.iter (fun g -> visit g.g_id) b.groups

(* --- Container allocation ------------------------------------------------------------ *)

let allocate_containers b ~(outputs : (string * opref) list) =
  let width = b.target.t_width in
  let last_use : (opref, int) Hashtbl.t = Hashtbl.create 32 in
  let touch r stage =
    match r with
    | Rimm _ -> ()
    | r ->
      let prev = try Hashtbl.find last_use r with Not_found -> -1 in
      if stage > prev then Hashtbl.replace last_use r stage
  in
  List.iter
    (fun (n : node) ->
      match n.n_kind with
      | Kadd (a, c) | Ksub (a, c) | Kand (a, c) | Krel (_, a, c) ->
        touch a n.n_stage;
        touch c n.n_stage
      | Kmove a -> touch a n.n_stage
      | Kconst _ -> ())
    b.nodes;
  List.iter
    (fun g ->
      List.iter (fun (_, r) -> Option.iter (fun r -> touch r g.g_stage) r) g.g_operands)
    b.groups;
  List.iter (fun (_, r) -> touch r b.target.t_depth) outputs;
  (* Every input field keeps a container through stage 0 even if unused, so
     the specification adapter can always find its value. *)
  List.iter (fun f -> touch (Rin f) 0) b.pred.info.Checker.input_fields;
  let intervals = ref [] in
  let add_interval r def =
    match Hashtbl.find_opt last_use r with
    | Some last -> intervals := (r, def, last) :: !intervals
    | None -> ()
  in
  List.iter (fun f -> add_interval (Rin f) (-1)) b.pred.info.Checker.input_fields;
  List.iteri (fun i (n : node) -> add_interval (Rnode (b.node_count - 1 - i)) n.n_stage) b.nodes;
  List.iter
    (fun g ->
      if g.g_old_used then add_interval (Rold g.g_id) g.g_stage;
      if g.g_new_used then add_interval (Rnew g.g_id) g.g_stage)
    b.groups;
  (* Linear scan ordered by def stage.  A container is reusable once its
     occupant's last consumer stage has passed: an overwrite at stage s still
     lets stage-s consumers read the old value on the stage's input. *)
  let sorted = List.sort (fun (_, d1, l1) (_, d2, l2) -> compare (d1, l1) (d2, l2)) !intervals in
  let busy_until = Array.make width (-2) in
  List.fold_left
    (fun acc (r, def, last) ->
      let rec pick c =
        if c >= width then
          fail "program does not fit: more than %d simultaneously live values (PHV containers)"
            width
        else if busy_until.(c) <= def then c
        else pick (c + 1)
      in
      let c = pick 0 in
      busy_until.(c) <- last;
      (r, c) :: acc)
    [] sorted

(* --- Machine-code emission ------------------------------------------------------------ *)

(* Neutral program: all controls zero, all output muxes pass-through. *)
let neutral_mc (desc : Ir.t) =
  let mc = Machine_code.empty () in
  List.iter (fun (name, _) -> Machine_code.set mc name 0) (Ir.control_domains desc);
  Array.iter
    (fun (st : Ir.stage) ->
      Array.iter
        (fun name -> Machine_code.set mc name (Names.Select.passthrough ~width:desc.Ir.d_width))
        st.Ir.s_output_muxes)
    desc.Ir.d_stages;
  mc

(* stateless_full slot names, fixed by its DSL source (see {!Atoms}). *)
module Full = struct
  let opcode = "opcode"
  let add_mux = "mux2_0"
  let add_const = "const_0"
  let sub_mux = "mux2_1"
  let sub_const = "const_1"
  let move_mux = "mux3_2"
  let rel_op = "rel_op_0"
  let rel_mux = "mux2_3"
  let rel_const = "const_3"
  let and_rel0 = "rel_op_1"
  let and_mux = "mux2_4"
  let and_const0 = "const_4"
  let and_rel1 = "rel_op_2"
  let and_const1 = "const_5"
  let const_const = "const_6"
end

let emit b ~containers =
  let t = b.target in
  let desc =
    Dgen.generate
      (Dgen.config ~depth:t.t_depth ~width:t.t_width ~bits:t.t_bits ())
      ~stateful:t.t_stateful ~stateless:t.t_stateless
  in
  let mc = neutral_mc desc in
  let container_of r =
    match List.assoc_opt r containers with
    | Some c -> c
    | None -> fail "internal: value has no container"
  in
  let set = Machine_code.set mc in
  (* stateless nodes, packed per stage in creation order *)
  let sl_counter = Array.make t.t_depth 0 in
  let nodes_in_order = List.rev b.nodes in
  List.iteri
    (fun id (n : node) ->
      let stage = n.n_stage in
      let j = sl_counter.(stage) in
      sl_counter.(stage) <- j + 1;
      let prefix = Names.stateless_alu ~stage ~alu:j in
      let slot name = Names.slot ~alu_prefix:prefix ~slot_name:name in
      let in_mux k c = set (Names.input_mux ~alu_prefix:prefix ~operand:k) c in
      let second_operand ~mux ~const c =
        match c with
        | Rimm v ->
          set (slot mux) 1;
          set (slot const) v
        | c ->
          set (slot mux) 0;
          in_mux 1 (container_of c)
      in
      (match n.n_kind with
      | Kadd (a, c) ->
        set (slot Full.opcode) 0;
        in_mux 0 (container_of a);
        second_operand ~mux:Full.add_mux ~const:Full.add_const c
      | Ksub (a, c) ->
        set (slot Full.opcode) 1;
        in_mux 0 (container_of a);
        second_operand ~mux:Full.sub_mux ~const:Full.sub_const c
      | Kmove a ->
        set (slot Full.opcode) 2;
        set (slot Full.move_mux) 0;
        in_mux 0 (container_of a)
      | Krel (rel, a, c) ->
        set (slot Full.opcode) 3;
        set (slot Full.rel_op) (rel_code rel);
        in_mux 0 (container_of a);
        second_operand ~mux:Full.rel_mux ~const:Full.rel_const c
      | Kand (x, y) ->
        (* (x != 0) && (y != 0) *)
        set (slot Full.opcode) 4;
        set (slot Full.and_rel0) 3;
        set (slot Full.and_mux) 1;
        set (slot Full.and_const0) 0;
        set (slot Full.and_rel1) 3;
        set (slot Full.and_const1) 0;
        in_mux 0 (container_of x);
        in_mux 1 (container_of y)
      | Kconst v ->
        set (slot Full.opcode) 5;
        set (slot Full.const_const) v);
      match List.assoc_opt (Rnode id) containers with
      | Some c ->
        set (Names.output_mux ~stage ~container:c) (Names.Select.stateless_output ~width:t.t_width j)
      | None -> ())
    nodes_in_order;
  (* stateful groups, packed per stage in placement (dependency) order is not
     tracked; pack in group-id order, which also respects per-stage capacity
     because stages were reserved during placement *)
  let sf_counter = Array.make t.t_depth 0 in
  let positions = Hashtbl.create 8 in
  List.iter
    (fun g ->
      let stage = g.g_stage in
      let j = sf_counter.(stage) in
      sf_counter.(stage) <- j + 1;
      Hashtbl.replace positions g.g_id (stage, j);
      let prefix = Names.stateful_alu ~stage ~alu:j in
      List.iter
        (fun (slot_name, v) ->
          set (Names.slot ~alu_prefix:prefix ~slot_name) (Value.mask t.t_bits v))
        g.g_binding.Match_atom.b_slots;
      List.iteri
        (fun k (_, r) ->
          match r with
          | Some r -> set (Names.input_mux ~alu_prefix:prefix ~operand:k) (container_of r)
          | None -> ())
        g.g_operands;
      if g.g_old_used then
        set
          (Names.output_mux ~stage ~container:(container_of (Rold g.g_id)))
          (Names.Select.stateful_output ~width:t.t_width j);
      if g.g_new_used then
        set
          (Names.output_mux ~stage ~container:(container_of (Rnew g.g_id)))
          (Names.Select.stateful_new_state ~width:t.t_width j))
    b.groups;
  (desc, mc, positions)

(* --- Entry point --------------------------------------------------------------------- *)

let compile ~(target : target) (program : Ast.program) : (compiled, string) result =
  try
    let bits = target.t_bits in
    let pred = Predicate.predicate ~bits program in
    let b =
      {
        target;
        pred;
        program;
        nodes = [];
        node_count = 0;
        groups = [];
        memo = [];
        var_group = Hashtbl.create 8;
        stateless_load = Array.make target.t_depth 0;
        stateful_load = Array.make target.t_depth 0;
      }
    in
    (* 1. group states and match each group against the atom *)
    List.iteri
      (fun gid (members, { Match_atom.r_binding; r_slots }) ->
        let g =
          {
            g_id = gid;
            g_members = members;
            g_slots = r_slots;
            g_binding = r_binding;
            g_operands = [];
            g_stage = 0;
            g_placed = false;
            g_old_used = false;
            g_new_used = false;
          }
        in
        List.iter (fun v -> Hashtbl.replace b.var_group v gid) members;
        b.groups <- b.groups @ [ g ])
      (grouped_matches ~bits ~atom:target.t_stateful pred);
    (* 2. lower operands and place groups in dependency order *)
    place_groups b;
    (* 3. lower output-field expressions *)
    let outputs =
      List.map (fun (f, e) -> (f, ensure_container b (lower b e))) pred.field_updates
    in
    (* 4. containers *)
    let containers = allocate_containers b ~outputs in
    (* 5. emit *)
    let desc, mc, positions = emit b ~containers in
    let input_containers =
      List.map (fun f -> (f, List.assoc (Rin f) containers)) pred.info.Checker.input_fields
    in
    let output_containers = List.map (fun (f, r) -> (f, List.assoc r containers)) outputs in
    let state_map, init =
      List.fold_left
        (fun (sm, init) g ->
          let stage, j = Hashtbl.find positions g.g_id in
          let name = Names.stateful_alu ~stage ~alu:j in
          let vec = Array.make (List.length target.t_stateful.Aast.state_vars) 0 in
          List.iter
            (fun (v, slot) -> vec.(slot) <- Value.mask bits (List.assoc v program.Ast.states))
            g.g_slots;
          ( sm @ List.map (fun (v, slot) -> (v, (name, slot))) g.g_slots,
            init @ [ (name, vec) ] ))
        ([], []) b.groups
    in
    Ok
      {
        c_program = program;
        c_target = target;
        c_mc = mc;
        c_desc = desc;
        c_layout =
          {
            l_inputs = input_containers;
            l_outputs = output_containers;
            l_state = state_map;
            l_init = init;
          };
      }
  with
  | Error msg -> Result.Error (Printf.sprintf "%s: %s" program.Ast.name msg)
  | Invalid_argument msg -> Result.Error (Printf.sprintf "%s: %s" program.Ast.name msg)
