(* Branch removal (predication).

   The standard Domino-style transform: the transaction's control flow is
   eliminated by symbolic execution, leaving one *write-once* expression per
   state variable and per output packet field, phrased entirely over the
   transaction's inputs (packet input fields and state values at transaction
   start).  Conditionals become [SCond] nodes.  This form is what the
   rule-based backend schedules and what the atom matcher unifies against
   the ALU templates. *)

module Value = Druzhba_util.Value

type sexpr =
  | SInt of int
  | SIn of string (* input packet field, value at transaction start *)
  | SState of string (* state variable, value at transaction start *)
  | SBin of Ast.binop * sexpr * sexpr
  | SUn of Ast.unop * sexpr
  | SCond of sexpr * sexpr * sexpr (* if g <> 0 then a else b *)
[@@deriving eq, show { with_path = false }]

(* Constant folding with guard normalization: strict comparisons — which the
   switch's relational units do not implement (the paper's grammar has only
   >=, <=, ==, !=) — are rewritten at SCond level by swapping arms, and
   [Not]-guards are eliminated the same way. *)
let rec fold bits (e : sexpr) : sexpr =
  match e with
  | SInt _ | SIn _ | SState _ -> e
  | SUn (op, a) -> (
    match fold bits a with
    | SInt v -> SInt (Semantics.apply_unop bits op v)
    | a -> SUn (op, a))
  | SBin (op, a, b) -> (
    let a = fold bits a and b = fold bits b in
    match (a, b) with
    | SInt x, SInt y -> SInt (Semantics.apply_binop bits op x y)
    | a, SInt 0 when op = Ast.Add || op = Ast.Sub -> a
    | SInt 0, b when op = Ast.Add -> b
    | a, b -> SBin (op, a, b))
  | SCond (g, a, b) -> (
    match fold bits g with
    | SInt v -> if Value.is_true v then fold bits a else fold bits b
    | SBin (Ast.Lt, x, y) -> fold bits (SCond (SBin (Ast.Ge, x, y), b, a))
    | SBin (Ast.Gt, x, y) -> fold bits (SCond (SBin (Ast.Le, x, y), b, a))
    | SUn (Ast.Not, g) -> fold bits (SCond (g, b, a))
    | g ->
      let a = fold bits a and b = fold bits b in
      if equal_sexpr a b then a else SCond (g, a, b))

(* Result of predication: the final symbolic value of every state variable
   and every written packet field. *)
type t = {
  state_updates : (string * sexpr) list; (* in declaration order *)
  field_updates : (string * sexpr) list; (* in first-write order *)
  info : Checker.info;
}

(* Symbolic environment: current symbolic value of every name. *)
module Env = Map.Make (String)

let predicate ~bits (p : Ast.program) : t =
  let info = Checker.analyze_exn p in
  (* Pre-branch symbolic value of a name that one branch left unwritten.
     Locals have no pre-branch value; the binding is dropped, and any later
     use fails in [eval]. *)
  let default name =
    match String.index_opt name '.' with
    | Some 3 when String.sub name 0 4 = "pkt." ->
      Some (SIn (String.sub name 4 (String.length name - 4)))
    | _ -> if List.mem_assoc name p.Ast.states then Some (SState name) else None
  in
  let rec eval env (e : Ast.expr) : sexpr =
    match e with
    | Ast.Int n -> SInt (Value.mask bits n)
    | Ast.Field f -> (
      match Env.find_opt ("pkt." ^ f) env with Some s -> s | None -> SIn f)
    | Ast.Var v -> (
      match Env.find_opt v env with
      | Some s -> s
      | None ->
        if List.mem_assoc v p.Ast.states then SState v (* unwritten so far *)
        else
          invalid_arg
            (Printf.sprintf
               "predication: local '%s' is used outside the conditional branch that binds it" v))
    | Ast.Binop (op, a, b) -> fold bits (SBin (op, eval env a, eval env b))
    | Ast.Unop (op, a) -> fold bits (SUn (op, eval env a))
  in
  let rec exec env (stmts : Ast.stmt list) =
    List.fold_left
      (fun env (s : Ast.stmt) ->
        match s with
        | Ast.Assign (Ast.Lfield f, e) -> Env.add ("pkt." ^ f) (eval env e) env
        | Ast.Assign (Ast.Lvar v, e) | Ast.Local (v, e) -> Env.add v (eval env e) env
        | Ast.If (branches, els) ->
          (* Lower elif chains to nested two-way merges. *)
          let rec chain env = function
            | [] -> exec env els
            | (c, body) :: rest ->
              let g = eval env c in
              let env_then = exec env body in
              let env_else = chain env rest in
              merge g env_then env_else
          in
          chain env branches)
      env stmts
  and merge g env_then env_else =
    (* A name bound in both branches gets a conditional merge; a name bound
       in only one branch merges with its pre-branch symbolic value (state
       variables and packet fields), while branch-scoped locals are
       dropped. *)
    Env.merge
      (fun name a b ->
        match (a, b) with
        | Some a, Some b -> Some (if equal_sexpr a b then a else fold bits (SCond (g, a, b)))
        | Some a, None -> (
          match default name with
          | Some d -> Some (fold bits (SCond (g, a, d)))
          | None -> None)
        | None, Some b -> (
          match default name with
          | Some d -> Some (fold bits (SCond (g, d, b)))
          | None -> None)
        | None, None -> None)
      env_then env_else
  in
  let final = exec Env.empty p.Ast.body in
  let state_updates =
    List.map
      (fun (v, _) ->
        match Env.find_opt v final with
        | Some s -> (v, fold bits s)
        | None -> (v, SState v) (* never written: identity *))
      p.Ast.states
  in
  let field_updates =
    List.map
      (fun f ->
        match Env.find_opt ("pkt." ^ f) final with
        | Some s -> (f, fold bits s)
        | None -> assert false (* outputs are written by definition *))
      info.Checker.output_fields
  in
  { state_updates; field_updates; info }

(* --- Queries used by the backend ------------------------------------------- *)

let rec state_vars_of acc (e : sexpr) =
  match e with
  | SInt _ | SIn _ -> acc
  | SState v -> if List.mem v acc then acc else v :: acc
  | SBin (_, a, b) -> state_vars_of (state_vars_of acc a) b
  | SUn (_, a) -> state_vars_of acc a
  | SCond (g, a, b) -> state_vars_of (state_vars_of (state_vars_of acc g) a) b

let state_free e = state_vars_of [] e = []

let rec input_fields_of acc (e : sexpr) =
  match e with
  | SInt _ | SState _ -> acc
  | SIn f -> if List.mem f acc then acc else f :: acc
  | SBin (_, a, b) -> input_fields_of (input_fields_of acc a) b
  | SUn (_, a) -> input_fields_of acc a
  | SCond (g, a, b) -> input_fields_of (input_fields_of (input_fields_of acc g) a) b
