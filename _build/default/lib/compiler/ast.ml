(* Abstract syntax of the Domino-like packet-transaction language.

   This is the high-level language on the left of the paper's Fig. 1: a
   program declares switch state and a transaction body that runs once per
   packet, reading and writing packet fields ("pkt.x") and state.  The
   compiler under test maps such programs to Druzhba machine code; the
   reference semantics in {!Semantics} doubles as the specification of
   Fig. 5. *)

(* Operators are shared with the ALU DSL: the datapath algebra is the same. *)
type binop = Druzhba_alu_dsl.Ast.binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | And
  | Or
[@@deriving eq, show { with_path = false }]

type unop = Druzhba_alu_dsl.Ast.unop = Neg | Not [@@deriving eq, show { with_path = false }]

type expr =
  | Int of int
  | Field of string (* pkt.x *)
  | Var of string (* state variable or local *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
[@@deriving eq, show { with_path = false }]

type lvalue =
  | Lfield of string (* pkt.x = ... *)
  | Lvar of string (* state variable = ... *)
[@@deriving eq, show { with_path = false }]

type stmt =
  | Assign of lvalue * expr
  | Local of string * expr (* local x = e; introduces a transaction-scoped name *)
  | If of (expr * stmt list) list * stmt list (* if/elif*/else *)
[@@deriving eq, show { with_path = false }]

type program = {
  name : string;
  states : (string * int) list; (* state declarations with initial values *)
  body : stmt list;
}
[@@deriving eq, show { with_path = false }]
