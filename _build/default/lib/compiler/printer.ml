(* Pretty-printer for the Domino-subset language.

   Emits concrete syntax that {!Frontend.parse} reads back to a structurally
   equal program — the property tests rely on that — and is used by tooling
   that round-trips programs (e.g. writing case-study corpus entries to
   disk). *)

open Ast

let binop_symbol = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

(* Precedence levels matching {!Frontend}'s grammar. *)
let binop_level = function
  | Or -> 1
  | And -> 2
  | Eq | Neq | Lt | Gt | Le | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let rec pp_expr_prec level ppf (e : expr) =
  match e with
  | Int n -> Fmt.int ppf n
  | Field f -> Fmt.pf ppf "pkt.%s" f
  | Var v -> Fmt.string ppf v
  | Unop (Neg, a) -> Fmt.pf ppf "-%a" (pp_expr_prec 6) a
  | Unop (Not, a) -> Fmt.pf ppf "!%a" (pp_expr_prec 6) a
  | Binop (op, a, b) ->
    let l = binop_level op in
    (* comparisons are non-associative; the rest left-associative *)
    let left_level = match op with Eq | Neq | Lt | Gt | Le | Ge -> l + 1 | _ -> l in
    let doc ppf () =
      Fmt.pf ppf "%a %s %a" (pp_expr_prec left_level) a (binop_symbol op) (pp_expr_prec (l + 1)) b
    in
    if l < level then Fmt.parens doc ppf () else doc ppf ()

let pp_expr = pp_expr_prec 0

let rec pp_stmt ~indent ppf (s : stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Assign (Lfield f, e) -> Fmt.pf ppf "%spkt.%s = %a;" pad f pp_expr e
  | Assign (Lvar v, e) -> Fmt.pf ppf "%s%s = %a;" pad v pp_expr e
  | Local (v, e) -> Fmt.pf ppf "%slocal %s = %a;" pad v pp_expr e
  | If (branches, els) ->
    let pp_block ppf body =
      List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:(indent + 2)) s) body
    in
    List.iteri
      (fun i (cond, body) ->
        let kw = if i = 0 then "if" else "elif" in
        Fmt.pf ppf "%s%s (%a) {@,%a%s}" pad kw pp_expr cond pp_block body pad;
        if i < List.length branches - 1 || els <> [] then Fmt.pf ppf "@,")
      branches;
    if els <> [] then Fmt.pf ppf "%selse {@,%a%s}" pad pp_block els pad

let pp ppf (p : program) =
  Fmt.pf ppf "@[<v>";
  List.iter (fun (v, init) -> Fmt.pf ppf "state %s = %d;@," v init) p.states;
  Fmt.pf ppf "transaction %s {@," p.name;
  List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:2) s) p.body;
  Fmt.pf ppf "}@]"

let to_string p = Fmt.str "%a" pp p
