(* Reference semantics of packet transactions.

   This is the "program spec" of the paper's Fig. 5: the golden model whose
   output trace the pipeline simulation must reproduce.  The transaction runs
   sequentially, once per packet, on the same fixed-width unsigned algebra as
   the simulator ({!Druzhba_util.Value}). *)

module Value = Druzhba_util.Value

type env = {
  bits : Value.width;
  state : (string, int) Hashtbl.t;
  fields : (string, int) Hashtbl.t; (* packet fields, mutated in place *)
  locals : (string, int) Hashtbl.t;
}

let lookup tbl kind name =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Semantics: unbound %s '%s'" kind name)

let apply_binop bits (op : Ast.binop) a b =
  match op with
  | Ast.Add -> Value.add bits a b
  | Ast.Sub -> Value.sub bits a b
  | Ast.Mul -> Value.mul bits a b
  | Ast.Div -> Value.div bits a b
  | Ast.Mod -> Value.rem bits a b
  | Ast.Eq -> Value.eq a b
  | Ast.Neq -> Value.neq a b
  | Ast.Lt -> Value.lt a b
  | Ast.Gt -> Value.gt a b
  | Ast.Le -> Value.le a b
  | Ast.Ge -> Value.ge a b
  | Ast.And -> Value.logical_and a b
  | Ast.Or -> Value.logical_or a b

let apply_unop bits (op : Ast.unop) a =
  match op with Ast.Neg -> Value.neg bits a | Ast.Not -> Value.logical_not a

let rec eval env (e : Ast.expr) =
  match e with
  | Ast.Int n -> Value.mask env.bits n
  | Ast.Field f -> lookup env.fields "packet field" f
  | Ast.Var v -> (
    match Hashtbl.find_opt env.locals v with
    | Some x -> x
    | None -> lookup env.state "state variable" v)
  | Ast.Binop (op, a, b) -> apply_binop env.bits op (eval env a) (eval env b)
  | Ast.Unop (op, a) -> apply_unop env.bits op (eval env a)

let rec exec env (stmts : Ast.stmt list) =
  List.iter
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Assign (Ast.Lfield f, e) -> Hashtbl.replace env.fields f (eval env e)
      | Ast.Assign (Ast.Lvar v, e) -> Hashtbl.replace env.state v (eval env e)
      | Ast.Local (v, e) -> Hashtbl.replace env.locals v (eval env e)
      | Ast.If (branches, els) ->
        let rec pick = function
          | [] -> exec env els
          | (c, body) :: rest -> if Value.is_true (eval env c) then exec env body else pick rest
        in
        pick branches)
    stmts

(* Fresh state table with the program's declared initial values. *)
let initial_state ~bits (p : Ast.program) =
  let state = Hashtbl.create 8 in
  List.iter (fun (v, init) -> Hashtbl.replace state v (Value.mask bits init)) p.Ast.states;
  state

(* Runs the transaction once: [fields] must contain every input field and is
   mutated with the outputs; [state] carries over between packets. *)
let run_transaction ~bits (p : Ast.program) ~state ~fields =
  let env = { bits; state; fields; locals = Hashtbl.create 8 } in
  exec env p.Ast.body
