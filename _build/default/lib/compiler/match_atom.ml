(* Structural matching of predicated state updates against stateful-atom
   templates.

   Given the (branch-removed) update expression of each state variable in a
   group and the ALU DSL description of the target atom, this module searches
   for an assignment of the atom's machine-code slots — mux selectors, Opt
   selectors, rel_op/arith_op opcodes, immediates — together with a binding
   of the atom's packet-field operands to (pipeline-computable) operand
   expressions, such that the configured atom computes exactly the updates.

   This is the heart of the rule-based backend: the same unifier drives all
   six atoms, because it walks the atom's own parsed AST rather than
   hard-coding per-atom rules.  Matching assumes the simulator's latched
   state-read semantics (all state operands are pre-execution values), which
   is also what predication produces.

   Soundness over completeness: every returned binding is correct by
   construction (slot values are derived from structural identities), but a
   mappable program can be missed — in which case compilation fails, which
   on an all-or-nothing pipeline is the honest outcome. *)

module Aast = Druzhba_alu_dsl.Ast
module Analysis = Druzhba_alu_dsl.Analysis
module Value = Druzhba_util.Value

open Predicate

type binding = {
  b_slots : (string * int) list; (* atom slot name -> machine-code value *)
  b_fields : (string * sexpr) list; (* atom packet field -> operand expression *)
}

let empty_binding = { b_slots = []; b_fields = [] }

let ( let* ) = Option.bind

(* Tries alternatives in order; the first success wins. *)
let first_of fs b = List.find_map (fun f -> f b) fs

let add_slot name v b =
  match List.assoc_opt name b.b_slots with
  | Some v' -> if v = v' then Some b else None
  | None -> Some { b with b_slots = (name, v) :: b.b_slots }

(* Binds an atom packet field to an operand expression.  Operands may refer
   to inputs and to *other* groups' state (routed through state-output
   containers by the scheduler) but never to this group's own state. *)
let add_field ~own_states name e b =
  if List.exists (fun v -> List.mem v own_states) (Predicate.state_vars_of [] e) then None
  else
    match List.assoc_opt name b.b_fields with
    | Some e' -> if equal_sexpr e e' then Some b else None
    | None -> Some { b with b_fields = (name, e) :: b.b_fields }

(* Machine-code encodings fixed by dgen's helper construction. *)
let rel_code = function Ast.Ge -> Some 0 | Ast.Le -> Some 1 | Ast.Eq -> Some 2 | Ast.Neq -> Some 3 | _ -> None

let rel_flip = function Ast.Ge -> Ast.Le | Ast.Le -> Ast.Ge | op -> op
let rel_negate = function Ast.Eq -> Some Ast.Neq | Ast.Neq -> Some Ast.Eq | _ -> None

type ctx = {
  atom : Aast.t;
  state_map : (string * string) list; (* atom state var -> program state var *)
  own_states : string list; (* program state vars of this group *)
  bits : Value.width;
}

let mapped ctx v = List.assoc_opt v ctx.state_map

(* --- Expression unification ------------------------------------------------ *)

let rec unify ctx (template : Aast.expr) (target : sexpr) b : binding option =
  match template with
  | Aast.Const n -> if target = SInt (Value.mask ctx.bits n) then Some b else None
  | Aast.Var v -> (
    match mapped ctx v with
    | Some pv -> if target = SState pv then Some b else None
    | None ->
      if List.mem v ctx.atom.Aast.hole_vars then
        match target with SInt n -> add_slot v n b | _ -> None
      else add_field ~own_states:ctx.own_states v target b)
  | Aast.Hole_const i -> (
    match target with SInt n -> add_slot (Analysis.const_slot_name i) n b | _ -> None)
  | Aast.Opt (i, inner) ->
    let slot = Analysis.opt_slot_name i in
    first_of
      [
        (fun b ->
          let* b = add_slot slot 0 b in
          unify ctx inner target b);
        (fun b -> if target = SInt 0 then add_slot slot 1 b else None);
      ]
      b
  | Aast.Mux (i, choices) ->
    let slot = Analysis.mux_slot_name ~arity:(List.length choices) i in
    (* Packet-field choices are tried last: binding a field operand to a
       constant is legal but wasteful (it costs an extra stateless unit and a
       pipeline stage to materialize), so prefer the C()/state choices. *)
    let indexed = List.mapi (fun k c -> (k, c)) choices in
    let is_field = function
      | Aast.Var v -> not (List.mem_assoc v ctx.state_map)
      | _ -> false
    in
    let preferred, fields = List.partition (fun (_, c) -> not (is_field c)) indexed in
    first_of
      (List.map
         (fun (k, choice) b ->
           let* b = add_slot slot k b in
           unify ctx choice target b)
         (preferred @ fields))
      b
  | Aast.Rel_op (i, ta, tb) -> (
    let slot = Analysis.rel_op_slot_name i in
    match target with
    | SBin (op, x, y) when rel_code op <> None ->
      first_of
        [
          (fun b ->
            let* b = add_slot slot (Option.get (rel_code op)) b in
            let* b = unify ctx ta x b in
            unify ctx tb y b);
          (* x >= y  <=>  y <= x : try the operand-swapped encoding *)
          (fun b ->
            let* b = add_slot slot (Option.get (rel_code (rel_flip op))) b in
            let* b = unify ctx ta y b in
            unify ctx tb x b);
        ]
        b
    | _ -> None)
  | Aast.Arith_op (i, ta, tb) ->
    let slot = Analysis.arith_op_slot_name i in
    first_of
      [
        (fun b ->
          match target with
          | SBin (Ast.Add, x, y) ->
            first_of
              [
                (fun b ->
                  let* b = add_slot slot 0 b in
                  let* b = unify ctx ta x b in
                  unify ctx tb y b);
                (fun b ->
                  let* b = add_slot slot 0 b in
                  let* b = unify ctx ta y b in
                  unify ctx tb x b);
              ]
              b
          | SBin (Ast.Sub, x, y) ->
            let* b = add_slot slot 1 b in
            let* b = unify ctx ta x b in
            unify ctx tb y b
          | _ -> None);
        (* t = t + 0 = t - 0: absorb the whole target into one operand *)
        (fun b ->
          let* b = add_slot slot 0 b in
          let* b = unify ctx tb (SInt 0) b in
          unify ctx ta target b);
        (fun b ->
          let* b = add_slot slot 0 b in
          let* b = unify ctx ta (SInt 0) b in
          unify ctx tb target b);
      ]
      b
  | Aast.Binop (Ast.Add, ta, tb) ->
    first_of
      [
        (fun b ->
          match target with
          | SBin (Ast.Add, x, y) ->
            first_of
              [
                (fun b ->
                  let* b = unify ctx ta x b in
                  unify ctx tb y b);
                (fun b ->
                  let* b = unify ctx ta y b in
                  unify ctx tb x b);
              ]
              b
          | _ -> None);
        (* t = t + 0: one side absorbs the target, the other matches zero *)
        (fun b ->
          let* b = unify ctx tb (SInt 0) b in
          unify ctx ta target b);
        (fun b ->
          let* b = unify ctx ta (SInt 0) b in
          unify ctx tb target b);
      ]
      b
  | Aast.Binop (Ast.Sub, ta, tb) ->
    first_of
      [
        (fun b ->
          match target with
          | SBin (Ast.Sub, x, y) ->
            let* b = unify ctx ta x b in
            unify ctx tb y b
          | _ -> None);
        (fun b ->
          let* b = unify ctx tb (SInt 0) b in
          unify ctx ta target b);
      ]
      b
  | Aast.Binop (op, ta, tb) -> (
    match target with
    | SBin (op', x, y) when op = op' ->
      let* b = unify ctx ta x b in
      unify ctx tb y b
    | _ -> None)
  | Aast.Unop (op, ta) -> (
    match target with
    | SUn (op', x) when op = op' -> unify ctx ta x b
    | _ -> None)

(* Unifies a template guard against [Some g] (a target guard) or, when the
   target update is unconditional, against a tautology so the guarded branch
   always fires. *)
let tautology = SBin (Ast.Ge, SInt 0, SInt 0)

(* --- Statement-level matching ----------------------------------------------- *)

(* [targets]: program state var -> its required value at the end of this
   control path (phrased over transaction-start values). *)
let rec unify_stmts ctx (stmts : Aast.stmt list) targets b : binding option =
  match stmts with
  | [] ->
    (* Whatever this path does not assign must be left unchanged. *)
    if List.for_all (fun (v, t) -> equal_sexpr t (SState v)) targets then Some b else None
  | Aast.Assign (av, te) :: rest -> (
    match mapped ctx av with
    | None -> None (* atoms only assign state variables *)
    | Some pv ->
      let* target = List.assoc_opt pv targets in
      let* b = unify ctx te target b in
      unify_stmts ctx rest (List.remove_assoc pv targets) b)
  | Aast.Return _ :: rest ->
    (* A return does not affect state; outputs are handled by the machine
       model (old/new state outputs). *)
    unify_stmts ctx rest targets b
  | [ Aast.If ([ (cond, then_stmts) ], else_stmts) ] ->
    let split_on guard =
      List.map
        (fun (v, t) ->
          match t with
          | SCond (g, a, bb) when equal_sexpr g guard -> (v, a, bb)
          | t -> (v, t, t))
        targets
    in
    let candidate_guards =
      List.filter_map (fun (_, t) -> match t with SCond (g, _, _) -> Some g | _ -> None) targets
    in
    let try_guard guard ~negated b =
      let arms = split_on guard in
      let thens = List.map (fun (v, a, bb) -> if negated then (v, bb) else (v, a)) arms in
      let elses = List.map (fun (v, a, bb) -> if negated then (v, a) else (v, bb)) arms in
      let guard_expr =
        if negated then
          match guard with
          | SBin (op, x, y) when rel_negate op <> None ->
            Some (SBin (Option.get (rel_negate op), x, y))
          (* no relational negation available: encode as "guard == 0" via the
             truthiness fallback in [unify_guard] *)
          | g -> Some (SUn (Ast.Not, g))
        else Some guard
      in
      let* guard_expr in
      let* b = unify_guard ctx cond guard_expr b in
      let* b = unify_stmts ctx then_stmts thens b in
      unify_stmts ctx else_stmts elses b
    in
    first_of
      (List.concat_map
         (fun g -> [ try_guard g ~negated:false; try_guard g ~negated:true ])
         candidate_guards
      @ [
          (* unconditional targets: make the guard a tautology and implement
             everything in the then-branch (the else-branch, if any, must
             also match, but with equal arms that is automatic) *)
          (fun b ->
            let* b = unify_guard ctx cond tautology b in
            let* b = unify_stmts ctx then_stmts targets b in
            if else_stmts = [] then Some b else unify_stmts ctx else_stmts targets b);
        ])
      b
  | Aast.If _ :: _ -> None (* atoms use a single trailing conditional *)

(* Guard unification: the template guard is a rel_op in all our atoms; in
   addition to direct comparison matching, an arbitrary boolean target [g]
   can be encoded as [g != 0], and a negated target [!g] as [g == 0], with
   either operand of the rel_op carrying [g] (the operand is then computed
   by an earlier stateless stage). *)
and unify_guard ctx (cond : Aast.expr) guard b : binding option =
  let truthiness rel_value g (i, ta, tb) b =
    let slot = Analysis.rel_op_slot_name i in
    first_of
      [
        (fun b ->
          let* b = add_slot slot rel_value b in
          let* b = unify ctx ta g b in
          unify ctx tb (SInt 0) b);
        (fun b ->
          let* b = add_slot slot rel_value b in
          let* b = unify ctx ta (SInt 0) b in
          unify ctx tb g b);
      ]
      b
  in
  first_of
    [
      (fun b -> unify ctx cond guard b);
      (fun b ->
        match cond with
        | Aast.Rel_op (i, ta, tb) -> (
          match guard with
          | SUn (Ast.Not, g) -> truthiness 2 (* == 0 *) g (i, ta, tb) b
          | g -> truthiness 3 (* != 0 *) g (i, ta, tb) b)
        | _ -> None);
    ]
    b

(* --- Entry point ------------------------------------------------------------- *)

(* A successful match: the slot/field binding plus which atom state slot
   (index into the atom's state vector) each program variable landed in. *)
type result = { r_binding : binding; r_slots : (string * int) list }

(* Attempts to realize the update expressions of one state group on [atom].
   [updates]: program state var -> update sexpr.  Tries every assignment of
   the group's variables to the atom's state slots. *)
let match_group ~bits ~(atom : Aast.t) ~(updates : (string * sexpr) list) : result option =
  let program_vars = List.map fst updates in
  let atom_vars = atom.Aast.state_vars in
  if List.length program_vars > List.length atom_vars then None
  else begin
    (* All injective assignments of program vars to atom state slots.  Unused
       atom slots get identity targets (their junk updates are confined to
       slots no program variable lives in — but an atom always updates its
       declared slots, so we require the identity to be *expressible*; the
       matcher verifies that by unifying those targets too). *)
    let rec assignments avs pvs =
      match avs with
      | [] -> if pvs = [] then [ [] ] else []
      | av :: rest ->
        let without =
          if List.length pvs <= List.length rest then
            List.map (fun m -> (av, None) :: m) (assignments rest pvs)
          else []
        in
        let with_each =
          List.concat_map
            (fun pv ->
              List.map (fun m -> (av, Some pv) :: m) (assignments rest (List.filter (( <> ) pv) pvs)))
            pvs
        in
        with_each @ without
    in
    let slot_index av =
      let rec go i = function
        | [] -> assert false
        | v :: rest -> if v = av then i else go (i + 1) rest
      in
      go 0 atom_vars
    in
    let try_assignment assign =
      let state_map = List.filter_map (fun (av, pv) -> Option.map (fun p -> (av, p)) pv) assign in
      (* Unmapped atom state slots must stay harmless: give them fresh
         phantom program variables whose target is identity, so the matcher
         must configure those updates as no-ops. *)
      let phantom =
        List.filter_map
          (fun (av, pv) -> if pv = None then Some (av, "__phantom_" ^ av) else None)
          assign
      in
      let ctx = { atom; state_map = state_map @ phantom; own_states = program_vars; bits } in
      let targets = updates @ List.map (fun (_, ph) -> (ph, SState ph)) phantom in
      match unify_stmts ctx atom.Aast.body targets empty_binding with
      | Some b ->
        Some { r_binding = b; r_slots = List.map (fun (av, pv) -> (pv, slot_index av)) state_map }
      | None -> None
    in
    List.find_map try_assignment (assignments atom_vars program_vars)
  end
