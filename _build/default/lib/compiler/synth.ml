(* Enumerative CEGIS synthesis backend — the stand-in for Chipmunk, the
   program-synthesis compiler the paper's case study tests (§5.2).

   Chipmunk generates machine code "in the form of constant integers from a
   given Domino file through the use of program synthesis".  This backend
   does the same with counterexample-guided enumerative search:

   - the search space is the machine-code controls of the stateful ALUs and
     the output muxes of the program's output containers (stateless units
     are held neutral — a structural prior that keeps the space enumerable);
   - immediates range over constants mined from the program, masked to the
     *synthesis* bit width;
   - candidates are screened against input/output examples produced by the
     reference semantics, a verification pass samples fresh random inputs,
     and counterexamples feed back into the example set.

   Crucially, synthesis runs at a configurable narrow bit width.  The paper
   reports that 6 of Chipmunk's 8 failures were machine code that "only
   satisfied a limited range of values" because "the synthesis engine failed
   to find machine code to satisfy 10-bit inputs in the allotted time" —
   running this backend with [synth_bits] of 4 and then fuzz-verifying the
   result on a wider pipeline reproduces exactly that failure class (e.g. a
   threshold of 100 cannot even be represented in 4 bits). *)

module Value = Druzhba_util.Value
module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Names = Druzhba_pipeline.Names
module Engine = Druzhba_dsim.Engine
module Phv = Druzhba_dsim.Phv

type problem = {
  p_program : Ast.program;
  p_target : Codegen.target; (* full-width pipeline the result must serve *)
  p_synth_bits : int; (* bit width used during synthesis (<= target width) *)
  p_examples : int; (* initial example count *)
  p_budget : int; (* maximum candidates to evaluate *)
  p_seed : int;
}

type outcome =
  | Synthesized of Codegen.compiled (* machine code + layout at full width *)
  | Budget_exhausted of { candidates : int }

(* --- Fixed layout ------------------------------------------------------------

   Unlike the rule-based backend, synthesis fixes the container layout up
   front (it is part of the problem statement): input fields occupy
   containers 0..n-1 in first-use order, output fields follow, and the
   program's single state group lives in stateful ALU 0 of stage 0. *)

let layout_of (target : Codegen.target) (program : Ast.program) info =
  let inputs = List.mapi (fun i f -> (f, i)) info.Checker.input_fields in
  let n = List.length inputs in
  let outputs = List.mapi (fun i f -> (f, n + i)) info.Checker.output_fields in
  if n + List.length outputs > target.Codegen.t_width then
    invalid_arg "Synth: fields do not fit the pipeline width";
  let alu = Names.stateful_alu ~stage:0 ~alu:0 in
  let state = List.mapi (fun i (v, _) -> (v, (alu, i))) program.Ast.states in
  (* the init vector is sized to the atom, not the program: extra atom state
     slots start at zero and are unconstrained *)
  let atom_slots = List.length target.Codegen.t_stateful.Druzhba_alu_dsl.Ast.state_vars in
  if List.length program.Ast.states > atom_slots then
    invalid_arg "Synth: more state variables than atom state slots";
  let vec = Array.make atom_slots 0 in
  List.iteri
    (fun i (_, init) -> vec.(i) <- Value.mask target.Codegen.t_bits init)
    program.Ast.states;
  { Codegen.l_inputs = inputs; l_outputs = outputs; l_state = state; l_init = [ (alu, vec) ] }

(* --- Search space -------------------------------------------------------------- *)

type dimension = { dim_name : string; dim_choices : int array }

(* The controls the synthesizer may program: every slot and input mux of
   every stateful ALU, plus the output muxes of the output containers.
   Everything else stays at the neutral default. *)
let search_space (desc : Ir.t) ~constants ~output_containers =
  let stateful_prefixes =
    Array.to_list desc.Ir.d_stages
    |> List.concat_map (fun (st : Ir.stage) ->
           Array.to_list st.Ir.s_stateful |> List.map (fun (a : Ir.alu) -> a.Ir.a_name))
  in
  let is_searchable name =
    List.exists
      (fun p -> String.length name >= String.length p && String.sub name 0 (String.length p) = p)
      stateful_prefixes
  in
  let consts = Array.of_list constants in
  let dims =
    List.filter_map
      (fun (name, domain) ->
        if is_searchable name then
          match (domain : Ir.control_domain) with
          | Ir.Selector n -> Some { dim_name = name; dim_choices = Array.init n Fun.id }
          | Ir.Immediate -> Some { dim_name = name; dim_choices = consts }
        else None)
      (Ir.control_domains desc)
  in
  let out_dims =
    List.map
      (fun c ->
        let name = Names.output_mux ~stage:(desc.Ir.d_depth - 1) ~container:c in
        { dim_name = name; dim_choices = Array.init ((3 * desc.Ir.d_width) + 1) Fun.id })
      output_containers
  in
  dims @ out_dims

let space_size dims =
  List.fold_left
    (fun acc d ->
      let n = max 1 (Array.length d.dim_choices) in
      if acc > max_int / n then max_int else acc * n)
    1 dims

(* --- Candidate evaluation --------------------------------------------------------- *)

(* Examples: an input sequence with the expected output PHVs and the spec's
   final state vector (state accumulates across the whole sequence, matching
   how the pipeline carries state between packets). *)
type example_set = {
  ex_inputs : Phv.t list;
  ex_outputs : Phv.t list; (* expected; compared on observed containers *)
  ex_state : int array; (* expected final spec state (indexed as l_state) *)
}

let examples_of_inputs ~(spec : Druzhba_fuzz.Fuzz.spec) inputs =
  let state = spec.Druzhba_fuzz.Fuzz.spec_init () in
  let outputs = List.map (fun phv -> spec.Druzhba_fuzz.Fuzz.spec_step state phv) inputs in
  { ex_inputs = inputs; ex_outputs = outputs; ex_state = state }

let make_examples ~bits ~spec ~width prng n =
  examples_of_inputs ~spec (List.init n (fun _ -> Phv.random prng ~width ~bits))

(* [state_triples]: (ALU name, state slot, spec state index), as in
   {!Druzhba_fuzz.Fuzz.state_layout}.  [run] executes the candidate pipeline
   on an input sequence; the search uses the interpreter so that candidates
   need no per-candidate closure compilation. *)
let check_candidate ~run ~state_triples ~observed examples =
  let trace : Druzhba_dsim.Trace.t = run examples.ex_inputs in
  let outputs_ok =
    List.for_all2
      (fun (expected : Phv.t) (actual : Phv.t) ->
        List.for_all (fun c -> expected.(c) = actual.(c)) observed)
      examples.ex_outputs trace.Druzhba_dsim.Trace.outputs
  in
  outputs_ok
  && List.for_all
       (fun (alu, slot, idx) ->
         match Druzhba_dsim.Trace.find_state trace alu with
         | Some vec -> vec.(slot) = examples.ex_state.(idx)
         | None -> false)
       state_triples

(* --- The search -------------------------------------------------------------------- *)

let synthesize (p : problem) : outcome =
  let program = p.p_program in
  let info = Checker.analyze_exn program in
  let full = p.p_target in
  let synth_bits = Value.width p.p_synth_bits in
  (* narrow-width pipeline used during the search *)
  let synth_target = { full with Codegen.t_bits = synth_bits } in
  let synth_desc =
    Dgen.generate
      (Dgen.config ~depth:synth_target.Codegen.t_depth ~width:synth_target.Codegen.t_width
         ~bits:synth_bits ())
      ~stateful:synth_target.Codegen.t_stateful ~stateless:synth_target.Codegen.t_stateless
  in
  let layout = layout_of synth_target program info in
  let observed = List.map snd layout.Codegen.l_outputs in
  let constants =
    List.sort_uniq compare (List.map (Value.mask synth_bits) info.Checker.constants)
  in
  let dims = search_space synth_desc ~constants ~output_containers:observed in
  let prng = Prng.create p.p_seed in
  (* the spec at synthesis width *)
  let spec_compiled_stub =
    {
      Codegen.c_program = program;
      c_target = synth_target;
      c_mc = Machine_code.empty ();
      c_desc = synth_desc;
      c_layout = layout;
    }
  in
  let spec = Testing.spec_of spec_compiled_stub in
  let state_triples =
    List.mapi (fun idx (_, (alu, slot)) -> (alu, slot, idx)) layout.Codegen.l_state
  in
  let examples =
    ref
      (make_examples ~bits:synth_bits ~spec ~width:synth_target.Codegen.t_width
         (Prng.create (p.p_seed + 1))
         p.p_examples)
  in
  let base_mc = Codegen.neutral_mc synth_desc in
  let ndims = List.length dims in
  let dims_arr = Array.of_list dims in
  let assignment = Array.make ndims 0 in
  let exhaustive = space_size dims <= p.p_budget in
  let candidates = ref 0 in
  let mc_of_assignment () =
    let mc = Machine_code.copy base_mc in
    Array.iteri
      (fun i choice -> Machine_code.set mc dims_arr.(i).dim_name dims_arr.(i).dim_choices.(choice))
      assignment;
    mc
  in
  let verify mc =
    (* fresh random verification at synthesis width: two independent rounds
       of 2048 inputs, so near-miss candidates that diverge on rare inputs
       (e.g. only when an operand collides with the state value) are almost
       always caught and fed back as counterexamples *)
    let run inputs = Engine.run ~init:layout.Codegen.l_init synth_desc ~mc ~inputs in
    let vex =
      examples_of_inputs ~spec
        (List.init 4096 (fun _ ->
             Phv.random (Prng.split prng) ~width:synth_target.Codegen.t_width ~bits:synth_bits))
    in
    if check_candidate ~run ~state_triples ~observed vex then true
    else begin
      (* counterexamples join the screening set; expected outputs and state
         are recomputed over the concatenated input sequence, since the
         pipeline accumulates state across it *)
      (* cap the screening set so repeated verification failures don't make
         screening quadratically expensive *)
      let combined = !examples.ex_inputs @ vex.ex_inputs in
      let keep = 128 in
      let len = List.length combined in
      let trimmed =
        if len <= keep then combined else List.filteri (fun i _ -> i >= len - keep) combined
      in
      examples := examples_of_inputs ~spec trimmed;
      false
    end
  in
  let try_current () =
    incr candidates;
    let mc = mc_of_assignment () in
    let run inputs = Engine.run ~init:layout.Codegen.l_init synth_desc ~mc ~inputs in
    if check_candidate ~run ~state_triples ~observed !examples && verify mc then Some mc else None
  in
  let result = ref None in
  if ndims = 0 then (match try_current () with Some mc -> result := Some mc | None -> ())
  else if exhaustive then begin
    (* odometer enumeration over the full space *)
    let finished = ref false in
    while !result = None && not !finished do
      (match try_current () with Some mc -> result := Some mc | None -> ());
      (* advance the odometer *)
      let rec inc j =
        if j < 0 then finished := true
        else if assignment.(j) + 1 < Array.length dims_arr.(j).dim_choices then
          assignment.(j) <- assignment.(j) + 1
        else begin
          assignment.(j) <- 0;
          inc (j - 1)
        end
      in
      inc (ndims - 1)
    done
  end
  else
    (* random search within the candidate budget ("allotted time") *)
    while !result = None && !candidates < p.p_budget do
      Array.iteri
        (fun i _ -> assignment.(i) <- Prng.int prng (max 1 (Array.length dims_arr.(i).dim_choices)))
        assignment;
      match try_current () with Some mc -> result := Some mc | None -> ()
    done;
  match !result with
  | None -> Budget_exhausted { candidates = !candidates }
  | Some mc ->
    (* Package the result against the FULL-width target: the machine code is
       whatever synthesis found at the narrow width — if it only satisfies
       narrow values, wide-width fuzzing will catch it (the case study's
       second failure class). *)
    let full_desc =
      Dgen.generate
        (Dgen.config ~depth:full.Codegen.t_depth ~width:full.Codegen.t_width
           ~bits:full.Codegen.t_bits ())
        ~stateful:full.Codegen.t_stateful ~stateless:full.Codegen.t_stateless
    in
    let full_layout = layout_of full program info in
    Synthesized
      {
        Codegen.c_program = program;
        c_target = full;
        c_mc = mc;
        c_desc = full_desc;
        c_layout = full_layout;
      }
