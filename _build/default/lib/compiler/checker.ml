(* Semantic analysis of packet transactions: name resolution and the
   program "signature" that everything downstream keys on — which packet
   fields are inputs (read before written), which are outputs (written), and
   which integer constants appear (mined by the synthesis backend to bound
   its search space). *)

type info = {
  input_fields : string list; (* read before written, in first-use order *)
  output_fields : string list; (* written, in first-write order *)
  state_vars : string list;
  locals : string list;
  constants : int list; (* distinct literals, ascending *)
}

type error = string

let add_unique x xs = if List.mem x xs then xs else xs @ [ x ]

let analyze (p : Ast.program) : (info, error list) result =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let state_vars = List.map fst p.states in
  (let rec dups = function
     | [] -> ()
     | v :: rest -> if List.mem v rest then err "duplicate state variable '%s'" v else dups rest
   in
   dups state_vars);
  let inputs = ref [] in
  let outputs = ref [] in
  let locals = ref [] in
  let constants = ref [] in
  (* [written] tracks fields already assigned on the current path; a field
     read before any write is an input.  Conditional writes are treated as
     writes for input classification only if they dominate the read — to keep
     the analysis simple and sound we are conservative: a field counts as an
     input unless it was written on *every* path before the read, which we
     approximate by only recording writes that happen unconditionally before
     the read. *)
  let rec expr ~written (e : Ast.expr) =
    match e with
    | Ast.Int n -> constants := add_unique n !constants
    | Ast.Field f -> if not (List.mem f written) then inputs := add_unique f !inputs
    | Ast.Var v ->
      if not (List.mem v state_vars || List.mem v !locals) then
        err "use of undeclared variable '%s' (not a state variable or local)" v
    | Ast.Binop (_, a, b) ->
      expr ~written a;
      expr ~written b
    | Ast.Unop (_, a) -> expr ~written a
  in
  let rec stmts ~written ~conditional body =
    List.fold_left
      (fun written (s : Ast.stmt) ->
        match s with
        | Ast.Assign (Ast.Lfield f, e) ->
          expr ~written e;
          outputs := add_unique f !outputs;
          if conditional then written else f :: written
        | Ast.Assign (Ast.Lvar v, e) ->
          expr ~written e;
          if List.mem v !locals then err "locals are single-assignment; '%s' reassigned" v
          else if not (List.mem v state_vars) then err "assignment to undeclared variable '%s'" v;
          written
        | Ast.Local (v, e) ->
          expr ~written e;
          if List.mem v state_vars then err "local '%s' shadows a state variable" v
          else if List.mem v !locals then err "duplicate local '%s'" v
          else locals := add_unique v !locals;
          written
        | Ast.If (branches, els) ->
          List.iter
            (fun (c, b) ->
              expr ~written c;
              ignore (stmts ~written ~conditional:true b))
            branches;
          ignore (stmts ~written ~conditional:true els);
          written)
      written body
  in
  ignore (stmts ~written:[] ~conditional:false p.body);
  List.iter (fun (_, init) -> constants := add_unique init !constants) p.states;
  match List.rev !errors with
  | [] ->
    Ok
      {
        input_fields = !inputs;
        output_fields = !outputs;
        state_vars;
        locals = !locals;
        constants = List.sort_uniq compare (0 :: 1 :: !constants);
      }
  | errs -> Error errs

let analyze_exn p =
  match analyze p with
  | Ok info -> info
  | Error errs ->
    invalid_arg (Printf.sprintf "program '%s': %s" p.Ast.name (String.concat "; " errs))
