lib/compiler/printer.pp.ml: Ast Fmt List String
