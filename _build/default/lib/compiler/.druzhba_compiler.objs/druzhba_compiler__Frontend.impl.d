lib/compiler/frontend.pp.ml: Ast Druzhba_util Fmt List Ppx_deriving_runtime Printf
