lib/compiler/match_atom.pp.ml: Ast Druzhba_alu_dsl Druzhba_util List Option Predicate
