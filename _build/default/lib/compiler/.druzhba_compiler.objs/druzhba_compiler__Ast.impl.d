lib/compiler/ast.pp.ml: Druzhba_alu_dsl List Ppx_deriving_runtime
