lib/compiler/synth.pp.ml: Array Ast Checker Codegen Druzhba_alu_dsl Druzhba_dsim Druzhba_fuzz Druzhba_machine_code Druzhba_pipeline Druzhba_util Fun List String Testing
