lib/compiler/predicate.pp.ml: Ast Checker Druzhba_util List Map Ppx_deriving_runtime Printf Semantics String
