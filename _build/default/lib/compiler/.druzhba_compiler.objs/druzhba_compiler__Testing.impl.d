lib/compiler/testing.pp.ml: Array Ast Codegen Druzhba_dsim Druzhba_fuzz Druzhba_util Hashtbl List Semantics
