lib/compiler/codegen.pp.ml: Array Ast Checker Druzhba_alu_dsl Druzhba_machine_code Druzhba_pipeline Druzhba_util Format Hashtbl List Match_atom Option Predicate Printf Result String
