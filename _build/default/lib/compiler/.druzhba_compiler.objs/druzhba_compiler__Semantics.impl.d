lib/compiler/semantics.pp.ml: Ast Druzhba_util Hashtbl List Printf
