lib/compiler/checker.pp.ml: Ast Format List Printf String
