lib/machine_code/machine_code.ml: Fmt Hashtbl List Printf String
