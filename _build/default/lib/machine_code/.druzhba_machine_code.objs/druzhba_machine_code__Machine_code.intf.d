lib/machine_code/machine_code.mli: Fmt
