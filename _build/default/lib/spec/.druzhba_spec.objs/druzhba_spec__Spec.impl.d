lib/spec/spec.ml: Array Druzhba_atoms Druzhba_compiler Druzhba_util List Printf
