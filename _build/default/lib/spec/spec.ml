(* The twelve packet-processing programs of the paper's Table 1.

   Each benchmark carries: the Domino-subset source (the high-level program
   of Fig. 1/Fig. 5), the pipeline dimensions and Banzai atom the paper lists
   for it, and an independently hand-written OCaml reference used to
   cross-validate the Domino interpreter itself.

   The exact Domino sources used by the paper are not published; these are
   reconstructions of the well-known algorithms (BLUE, flowlet switching,
   Marple queries, SNAP/RCP/CONGA kernels, ...) written against the atom and
   dimensions Table 1 reports.  Hash values that the real programs compute in
   dedicated hash units arrive here as packet input fields, the standard
   Domino benchmark convention. *)

module Value = Druzhba_util.Value
module Atoms = Druzhba_atoms.Atoms
module Frontend = Druzhba_compiler.Frontend
module Codegen = Druzhba_compiler.Codegen

type benchmark = {
  bm_name : string;
  bm_description : string;
  bm_source : string;
  bm_depth : int; (* pipeline depth from Table 1 *)
  bm_width : int; (* pipeline width from Table 1 *)
  bm_stateful : string; (* Banzai atom from Table 1 *)
  (* Hand-written reference: mutates [state] (indexed in state-declaration
     order) and maps input fields to output fields. *)
  bm_reference : bits:int -> int array -> (string * int) list -> (string * int) list;
  (* Parameterized source for programs with a natural tuning constant
     (sampling rate, threshold, freeze window, ...): used by the case-study
     harness to generate many distinct machine-code programs per benchmark. *)
  bm_variant : (int -> string) option;
}

(* --- 1. BLUE (decrease) ------------------------------------------------------- *)

let blue_decrease_src dec =
  Printf.sprintf
    {|
state p_mark = 0;
transaction blue_decrease {
  pkt.mark = pkt.rand <= p_mark;
  p_mark = p_mark - %d;
}
|}
    dec

let blue_decrease =
  {
    bm_name = "blue_decrease";
    bm_description = "BLUE AQM: decrease the marking probability on idle events";
    bm_depth = 4;
    bm_width = 2;
    bm_stateful = "sub";
    bm_source = blue_decrease_src 2;
    bm_reference =
      (fun ~bits state inputs ->
        let rand = List.assoc "rand" inputs in
        let mark = Value.le rand state.(0) in
        state.(0) <- Value.sub bits state.(0) 2;
        [ ("mark", mark) ]);
    bm_variant = Some blue_decrease_src;
  }

(* --- 2. BLUE (increase) ------------------------------------------------------- *)

let blue_increase_src freeze =
  Printf.sprintf
    {|
state p_mark = 0;
state last_update = 0;
transaction blue_increase {
  if (last_update <= pkt.now - %d) {
    p_mark = p_mark + 2;
    last_update = pkt.now;
  }
}
|}
    freeze

let blue_increase =
  {
    bm_name = "blue_increase";
    bm_description = "BLUE AQM: increase the marking probability, rate-limited by a freeze window";
    bm_depth = 4;
    bm_width = 2;
    bm_stateful = "pair";
    bm_source = blue_increase_src 10;
    bm_reference =
      (fun ~bits state inputs ->
        let now = List.assoc "now" inputs in
        if state.(1) <= Value.sub bits now 10 then begin
          state.(0) <- Value.add bits state.(0) 2;
          state.(1) <- now
        end;
        []);
    bm_variant = Some blue_increase_src;
  }

(* --- 3. Sampling --------------------------------------------------------------- *)

let sampling_src n =
  Printf.sprintf
    {|
state count = 0;
transaction sampling {
  if (count == %d) {
    count = 0;
    pkt.sample = 1;
  } else {
    count = count + 1;
    pkt.sample = 0;
  }
}
|}
    (n - 1)

let sampling =
  {
    bm_name = "sampling";
    bm_description = "Mark every 10th packet for sampling";
    bm_depth = 2;
    bm_width = 1;
    bm_stateful = "if_else_raw";
    bm_source = sampling_src 10;
    bm_reference =
      (fun ~bits state _inputs ->
        if state.(0) = 9 then begin
          state.(0) <- 0;
          [ ("sample", 1) ]
        end
        else begin
          state.(0) <- Value.add bits state.(0) 1;
          [ ("sample", 0) ]
        end);
    bm_variant = Some sampling_src;
  }

(* --- 4. Marple new flow --------------------------------------------------------- *)

let marple_new_flow =
  {
    bm_name = "marple_new_flow";
    bm_description = "Marple query: flag packets that start a new flow";
    bm_depth = 2;
    bm_width = 2;
    bm_stateful = "pred_raw";
    bm_source =
      {|
state last_seen = 0;
transaction marple_new_flow {
  if (last_seen != pkt.flow_id) {
    pkt.new_flow = 1;
  } else {
    pkt.new_flow = 0;
  }
  last_seen = pkt.flow_id;
}
|};
    bm_reference =
      (fun ~bits:_ state inputs ->
        let flow_id = List.assoc "flow_id" inputs in
        let new_flow = if state.(0) <> flow_id then 1 else 0 in
        state.(0) <- flow_id;
        [ ("new_flow", new_flow) ]);
    bm_variant = None;
  }

(* --- 5. Marple TCP non-monotonic ------------------------------------------------- *)

let marple_tcp_nmo =
  {
    bm_name = "marple_tcp_nmo";
    bm_description = "Marple query: count TCP segments with non-monotonic sequence numbers";
    bm_depth = 3;
    bm_width = 2;
    bm_stateful = "pred_raw";
    bm_source =
      {|
state max_seq = 0;
state nm_count = 0;
transaction marple_tcp_nmo {
  if (max_seq <= pkt.seq) {
    max_seq = pkt.seq;
  } else {
    nm_count = nm_count + 1;
  }
}
|};
    bm_reference =
      (fun ~bits state inputs ->
        let seq = List.assoc "seq" inputs in
        if state.(0) <= seq then state.(0) <- seq
        else state.(1) <- Value.add bits state.(1) 1;
        []);
    bm_variant = None;
  }

(* --- 6. SNAP heavy hitter --------------------------------------------------------- *)

let snap_heavy_hitter_src threshold =
  Printf.sprintf
    {|
state count = 0;
transaction snap_heavy_hitter {
  if (pkt.size >= %d) {
    count = count + pkt.size;
  }
}
|}
    threshold

let snap_heavy_hitter =
  {
    bm_name = "snap_heavy_hitter";
    bm_description = "SNAP kernel: accumulate bytes of large packets";
    bm_depth = 1;
    bm_width = 1;
    bm_stateful = "pair";
    bm_source = snap_heavy_hitter_src 100;
    bm_reference =
      (fun ~bits state inputs ->
        let size = List.assoc "size" inputs in
        if size >= 100 then state.(0) <- Value.add bits state.(0) size;
        []);
    bm_variant = Some snap_heavy_hitter_src;
  }

(* --- 7. Stateful firewall ----------------------------------------------------------- *)

let stateful_firewall =
  {
    bm_name = "stateful_firewall";
    bm_description = "Stateful firewall: outbound traffic opens the hole inbound traffic needs";
    bm_depth = 4;
    bm_width = 5;
    bm_stateful = "pred_raw";
    bm_source =
      {|
state established = 0;
transaction stateful_firewall {
  if (pkt.dir == 0) {
    established = 1;
  }
  pkt.allow = !(pkt.dir && !established);
}
|};
    bm_reference =
      (fun ~bits:_ state inputs ->
        let dir = List.assoc "dir" inputs in
        if dir = 0 then state.(0) <- 1;
        let allow = if dir <> 0 && state.(0) = 0 then 0 else 1 in
        [ ("allow", allow) ]);
    bm_variant = None;
  }

(* --- 8. Flowlets --------------------------------------------------------------------- *)

let flowlets_src gap =
  Printf.sprintf
    {|
state saved_hop = 0;
state last_time = 0;
transaction flowlets {
  if (pkt.arrival - last_time >= %d) {
    saved_hop = pkt.new_hop;
  }
  last_time = pkt.arrival;
  pkt.next_hop = saved_hop;
}
|}
    gap

let flowlets =
  {
    bm_name = "flowlets";
    bm_description = "Flowlet switching: pick a new next hop when the inter-packet gap is large";
    bm_depth = 4;
    bm_width = 5;
    bm_stateful = "pred_raw";
    bm_source = flowlets_src 5;
    bm_reference =
      (fun ~bits state inputs ->
        let arrival = List.assoc "arrival" inputs in
        let new_hop = List.assoc "new_hop" inputs in
        if Value.sub bits arrival state.(1) >= 5 then state.(0) <- new_hop;
        state.(1) <- arrival;
        [ ("next_hop", state.(0)) ]);
    bm_variant = Some flowlets_src;
  }

(* --- 9. Learn filter ------------------------------------------------------------------ *)

let learn_filter =
  {
    bm_name = "learn_filter";
    bm_description = "Counting Bloom filter: query membership on the old state, then insert";
    bm_depth = 3;
    bm_width = 5;
    bm_stateful = "raw";
    bm_source =
      {|
state f1 = 0;
state f2 = 0;
state f3 = 0;
transaction learn_filter {
  pkt.member = f1 && f2 && f3;
  f1 = f1 + pkt.b1;
  f2 = f2 + pkt.b2;
  f3 = f3 + pkt.b3;
}
|};
    bm_reference =
      (fun ~bits state inputs ->
        let member = if state.(0) <> 0 && state.(1) <> 0 && state.(2) <> 0 then 1 else 0 in
        state.(0) <- Value.add bits state.(0) (List.assoc "b1" inputs);
        state.(1) <- Value.add bits state.(1) (List.assoc "b2" inputs);
        state.(2) <- Value.add bits state.(2) (List.assoc "b3" inputs);
        [ ("member", member) ]);
    bm_variant = None;
  }

(* --- 10. RCP ----------------------------------------------------------------------------- *)

let rcp_src ceiling =
  Printf.sprintf
    {|
state sum_rtt = 0;
state num_pkts = 0;
transaction rcp {
  if (pkt.rtt <= %d) {
    sum_rtt = sum_rtt + pkt.rtt;
    num_pkts = num_pkts + 1;
  }
}
|}
    ceiling

let rcp =
  {
    bm_name = "rcp";
    bm_description = "RCP kernel: accumulate RTT sum and packet count below an RTT ceiling";
    bm_depth = 3;
    bm_width = 3;
    bm_stateful = "pred_raw";
    bm_source = rcp_src 30;
    bm_reference =
      (fun ~bits state inputs ->
        let rtt = List.assoc "rtt" inputs in
        if rtt <= 30 then begin
          state.(0) <- Value.add bits state.(0) rtt;
          state.(1) <- Value.add bits state.(1) 1
        end;
        []);
    bm_variant = Some rcp_src;
  }

(* --- 11. CONGA ----------------------------------------------------------------------------- *)

let conga =
  {
    bm_name = "conga";
    bm_description = "CONGA kernel: remember the best path and its utilization";
    bm_depth = 1;
    bm_width = 5;
    bm_stateful = "pair";
    bm_source =
      {|
state best_util = 0;
state best_path = 0;
transaction conga {
  if (pkt.util >= best_util) {
    best_util = pkt.util;
    best_path = pkt.path;
  }
}
|};
    bm_reference =
      (fun ~bits:_ state inputs ->
        let util = List.assoc "util" inputs in
        let path = List.assoc "path" inputs in
        if util >= state.(0) then begin
          state.(0) <- util;
          state.(1) <- path
        end;
        []);
    bm_variant = None;
  }

(* --- 12. Spam detection ------------------------------------------------------------------- *)

let spam_detection_src increment =
  Printf.sprintf
    {|
state score = 0;
transaction spam_detection {
  if (pkt.flagged == 1) {
    score = score + %d;
  }
}
|}
    increment

let spam_detection =
  {
    bm_name = "spam_detection";
    bm_description = "Spam detection kernel: accumulate a sender score on flagged packets";
    bm_depth = 1;
    bm_width = 1;
    bm_stateful = "pair";
    bm_source = spam_detection_src 5;
    bm_reference =
      (fun ~bits state inputs ->
        if List.assoc "flagged" inputs = 1 then state.(0) <- Value.add bits state.(0) 5;
        []);
    bm_variant = Some spam_detection_src;
  }

(* --- Registry -------------------------------------------------------------------------------- *)

let all =
  [
    blue_decrease;
    blue_increase;
    sampling;
    marple_new_flow;
    marple_tcp_nmo;
    snap_heavy_hitter;
    stateful_firewall;
    flowlets;
    learn_filter;
    rcp;
    conga;
    spam_detection;
  ]

let find name = List.find_opt (fun bm -> bm.bm_name = name) all

let find_exn name =
  match find name with
  | Some bm -> bm
  | None -> invalid_arg (Printf.sprintf "Spec.find_exn: unknown benchmark '%s'" name)

let program bm = Frontend.parse ~name:bm.bm_name bm.bm_source

(* Table-1 compilation target for a benchmark. *)
let target ?(bits = 32) bm =
  Codegen.target ~depth:bm.bm_depth ~width:bm.bm_width ~bits
    ~stateful:(Atoms.find_exn bm.bm_stateful)
    ~stateless:(Atoms.find_exn "stateless_full") ()

(* Compiles a benchmark at its Table-1 dimensions. *)
let compile ?bits bm = Codegen.compile ~target:(target ?bits bm) (program bm)

let compile_exn ?bits bm =
  match compile ?bits bm with
  | Ok c -> c
  | Error e -> invalid_arg (Printf.sprintf "Spec.compile_exn: %s" e)

