(* The dRMT scheduler (paper §4.1).

   dRMT runs the same program on P processors, with one new packet admitted
   per cycle and assigned round robin, so processor p starts packet k (where
   k ≡ p mod P) at cycle k.  Every processor executes the *same* static
   schedule: node n of the program runs at cycle (arrival + time n).  The
   crossbar to the centralized memory clusters bounds the whole chip to at
   most [match_capacity] match issues and [action_capacity] action issues per
   cycle.  Because arrivals are 1 per cycle and the schedule repeats every P
   cycles, the chip-wide constraint reduces to a constraint on residues:

     for every residue r mod P:
        #{ match nodes with time ≡ r }  <= match_capacity
        #{ action nodes with time ≡ r } <= action_capacity

   The exact problem is NP-hard (the paper formulates it as an ILP); we use
   deterministic greedy list scheduling — earliest feasible slot in
   topological order — which is the standard heuristic and is optimal on the
   small programs the simulator runs.  [validate] checks the two invariants
   (precedence and residue capacity) of any schedule, so alternative
   schedulers can be dropped in and verified. *)

type config = {
  processors : int;
  match_capacity : int; (* chip-wide match issues per cycle *)
  action_capacity : int; (* chip-wide action issues per cycle *)
}

let config ?(processors = 4) ?(match_capacity = 8) ?(action_capacity = 32) () =
  if processors < 1 then invalid_arg "Scheduler.config: processors must be >= 1";
  { processors; match_capacity; action_capacity }

type t = {
  times : (Dag.node * int) list; (* start cycle of each node, packet-relative *)
  makespan : int; (* cycles from packet arrival to last node issue *)
  cfg : config;
}

let time_of t node =
  match List.find_opt (fun (n, _) -> Dag.equal_node n node) t.times with
  | Some (_, time) -> time
  | None -> invalid_arg "Scheduler.time_of: unscheduled node"

let is_match = function Dag.Match _ -> true | Dag.Action _ -> false

exception Infeasible of string

(* A program fits at line rate only if each processor can issue all of its
   matches (actions) within its P residue classes: P * capacity slots. *)
let check_feasible (cfg : config) (dag : Dag.t) =
  let matches = List.length (List.filter is_match dag.Dag.nodes) in
  let actions = List.length dag.Dag.nodes - matches in
  if matches > cfg.processors * cfg.match_capacity then
    raise
      (Infeasible
         (Printf.sprintf
            "%d match nodes exceed %d processors x %d match issues per cycle; add processors or \
             reduce the program"
            matches cfg.processors cfg.match_capacity));
  if actions > cfg.processors * cfg.action_capacity then
    raise
      (Infeasible
         (Printf.sprintf "%d action nodes exceed %d processors x %d action issues per cycle"
            actions cfg.processors cfg.action_capacity))

(* Greedy list scheduling with residue-class capacity accounting.

   @raise Infeasible when the program cannot run at line rate on [cfg] (the
   all-or-nothing property, disaggregated edition). *)
let schedule (cfg : config) (dag : Dag.t) : t =
  check_feasible cfg dag;
  let p = cfg.processors in
  let match_load = Hashtbl.create 16 (* residue -> issues *) in
  let action_load = Hashtbl.create 16 in
  let load tbl r = try Hashtbl.find tbl r with Not_found -> 0 in
  let times = Hashtbl.create 16 in
  let scheduled = ref [] in
  List.iter
    (fun node ->
      let earliest =
        List.fold_left
          (fun acc (e : Dag.edge) -> max acc (Hashtbl.find times e.Dag.e_from + e.Dag.e_latency))
          0 (Dag.predecessors dag node)
      in
      let tbl, cap =
        if is_match node then (match_load, cfg.match_capacity)
        else (action_load, cfg.action_capacity)
      in
      let rec fit time =
        (* A schedule always exists: each node adds one issue to one residue,
           and time can grow until a residue has room (cap >= 1). *)
        if load tbl (time mod p) < cap then time else fit (time + 1)
      in
      let time = fit earliest in
      Hashtbl.replace tbl (time mod p) (load tbl (time mod p) + 1);
      Hashtbl.replace times node time;
      scheduled := (node, time) :: !scheduled)
    (Dag.topological dag);
  let makespan = List.fold_left (fun acc (_, time) -> max acc time) 0 !scheduled in
  { times = List.rev !scheduled; makespan; cfg }

(* --- Validation (the scheduler's contract) ----------------------------------- *)

type violation =
  | Precedence of Dag.edge * int * int (* edge, from-time, to-time *)
  | Capacity of [ `Match | `Action ] * int * int (* residue, load *)

let pp_violation ppf = function
  | Precedence (e, tf, tt) ->
    Fmt.pf ppf "precedence: %s@%d -> %s@%d needs %d cycles" (Dag.show_node e.Dag.e_from) tf
      (Dag.show_node e.Dag.e_to) tt e.Dag.e_latency
  | Capacity (kind, residue, n) ->
    Fmt.pf ppf "%s capacity exceeded at residue %d: %d issues"
      (match kind with `Match -> "match" | `Action -> "action")
      residue n

let validate (dag : Dag.t) (t : t) : violation list =
  let p = t.cfg.processors in
  let violations = ref [] in
  List.iter
    (fun (e : Dag.edge) ->
      let tf = time_of t e.Dag.e_from and tt = time_of t e.Dag.e_to in
      if tt - tf < e.Dag.e_latency then violations := Precedence (e, tf, tt) :: !violations)
    dag.Dag.edges;
  let count kind pred =
    let loads = Hashtbl.create 8 in
    List.iter
      (fun (node, time) ->
        if pred node then
          Hashtbl.replace loads (time mod p) (1 + (try Hashtbl.find loads (time mod p) with Not_found -> 0)))
      t.times;
    Hashtbl.iter
      (fun residue n ->
        let cap =
          match kind with `Match -> t.cfg.match_capacity | `Action -> t.cfg.action_capacity
        in
        if n > cap then violations := Capacity (kind, residue, n) :: !violations)
      loads
  in
  count `Match is_match;
  count `Action (fun n -> not (is_match n));
  List.rev !violations

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>schedule (P=%d, makespan=%d):@," t.cfg.processors t.makespan;
  List.iter
    (fun (node, time) -> Fmt.pf ppf "  cycle %3d: %s@," time (Dag.show_node node))
    (List.sort (fun (_, a) (_, b) -> compare a b) t.times);
  Fmt.pf ppf "@]"
