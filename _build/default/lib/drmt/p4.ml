(* P4-subset programs for the dRMT model (paper §4).

   The paper's dRMT path models programs "at the level of matches and
   actions": dgen consumes a P4 program, extracts header types, packet
   fields, actions, matches and the match+action table dependencies, and
   packages them for dsim.  This module defines the program representation
   and its textual format:

   {v
   header ipv4 {
     ttl : 8;
     dst : 32;
   }

   action set_port(port) {
     meta.out_port = port;
   }
   action decrement_ttl() {
     ipv4.ttl = ipv4.ttl - 1;
   }

   table ipv4_route {
     key : ipv4.dst;
     match : lpm;
     actions : { set_port, decrement_ttl };
     default : set_port 0;
   }

   control {
     apply ipv4_route;
   }
   v}

   Field references are [header.field]; [meta.x] names 32-bit per-packet
   metadata and [reg.x] names global stateful registers (the "stateful
   memories (e.g. registers, meters, counters)" of §4.2). *)

module Scanner = Druzhba_util.Scanner

type match_kind =
  | Exact
  | Ternary
  | Lpm
[@@deriving eq, show { with_path = false }]

type field_ref =
  | Header of string * string (* header.field *)
  | Meta of string (* meta.x: 32-bit packet metadata *)
  | Reg of string (* reg.x: global register *)
[@@deriving eq, show { with_path = false }]

type expr =
  | Int of int
  | Ref of field_ref
  | Param of string (* action parameter, bound by the table entry *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
[@@deriving eq, show { with_path = false }]

and binop = Add | Sub | Mul | Div | Mod | Eq | Neq | Lt | Gt | Le | Ge | And | Or
[@@deriving eq, show { with_path = false }]

and unop = Neg | Not [@@deriving eq, show { with_path = false }]

type primitive =
  | Assign of field_ref * expr
  | Drop (* mark the packet dropped *)
  | Noop
[@@deriving eq, show { with_path = false }]

type action = {
  a_name : string;
  a_params : string list;
  a_body : primitive list;
}
[@@deriving eq, show { with_path = false }]

type table = {
  t_name : string;
  t_key : field_ref;
  t_match : match_kind;
  t_actions : string list; (* names of invocable actions *)
  t_default : string * int list; (* default action and its arguments *)
}
[@@deriving eq, show { with_path = false }]

type header = { h_name : string; h_fields : (string * int) list (* field, bit width *) }
[@@deriving eq, show { with_path = false }]

type t = {
  headers : header list;
  actions : action list;
  tables : table list;
  control : string list; (* table application order *)
}
[@@deriving eq, show { with_path = false }]

let find_table p name = List.find_opt (fun t -> t.t_name = name) p.tables
let find_action p name = List.find_opt (fun a -> a.a_name = name) p.actions

let field_width p = function
  | Header (h, f) -> (
    match List.find_opt (fun hd -> hd.h_name = h) p.headers with
    | Some hd -> (
      match List.assoc_opt f hd.h_fields with
      | Some w -> Some w
      | None -> None)
    | None -> None)
  | Meta _ | Reg _ -> Some 32

(* All packet fields (header fields and metadata do; registers are switch
   state, not packet data). *)
let packet_fields p =
  List.concat_map (fun h -> List.map (fun (f, w) -> (Header (h.h_name, f), w)) h.h_fields) p

(* --- Static analysis: read/write sets (used by the dependency DAG) ---------- *)

let rec expr_reads acc = function
  | Int _ | Param _ -> acc
  | Ref r -> r :: acc
  | Binop (_, a, b) -> expr_reads (expr_reads acc a) b
  | Unop (_, a) -> expr_reads acc a

let action_reads (a : action) =
  List.fold_left
    (fun acc p -> match p with Assign (_, e) -> expr_reads acc e | Drop | Noop -> acc)
    [] a.a_body
  |> List.sort_uniq compare

let action_writes (a : action) =
  List.filter_map (function Assign (r, _) -> Some r | Drop | Noop -> None) a.a_body
  |> List.sort_uniq compare

(* Union over every action a table can invoke (including the default). *)
let table_reads p (t : table) =
  let names = fst t.t_default :: t.t_actions in
  List.concat_map
    (fun n -> match find_action p n with Some a -> action_reads a | None -> [])
    names
  |> List.sort_uniq compare

let table_writes p (t : table) =
  let names = fst t.t_default :: t.t_actions in
  List.concat_map
    (fun n -> match find_action p n with Some a -> action_writes a | None -> [])
    names
  |> List.sort_uniq compare

(* --- Validation ------------------------------------------------------------- *)

let validate (p : t) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun m -> errs := m :: !errs) fmt in
  let check_ref where r =
    match r with
    | Header (h, f) -> (
      match List.find_opt (fun hd -> hd.h_name = h) p.headers with
      | None -> err "%s: unknown header '%s'" where h
      | Some hd -> if not (List.mem_assoc f hd.h_fields) then err "%s: unknown field '%s.%s'" where h f)
    | Meta _ | Reg _ -> ()
  in
  List.iter
    (fun (a : action) ->
      List.iter
        (function
          | Assign (r, e) ->
            check_ref ("action " ^ a.a_name) r;
            (match r with
            | Reg _ | Meta _ | Header _ -> ());
            List.iter (check_ref ("action " ^ a.a_name)) (expr_reads [] e)
          | Drop | Noop -> ())
        a.a_body)
    p.actions;
  List.iter
    (fun (t : table) ->
      check_ref ("table " ^ t.t_name) t.t_key;
      List.iter
        (fun n -> if find_action p n = None then err "table %s: unknown action '%s'" t.t_name n)
        (fst t.t_default :: t.t_actions);
      (match find_action p (fst t.t_default) with
      | Some a ->
        if List.length a.a_params <> List.length (snd t.t_default) then
          err "table %s: default action '%s' arity mismatch" t.t_name (fst t.t_default)
      | None -> ()))
    p.tables;
  List.iter
    (fun n -> if find_table p n = None then err "control: unknown table '%s'" n)
    p.control;
  match !errs with [] -> Ok () | errs -> Error (List.rev errs)

(* --- Parser ------------------------------------------------------------------- *)

exception Parse_error of Scanner.position * string

let parse src : t =
  let sc = Scanner.create src in
  let fail msg = raise (Parse_error (Scanner.position sc, msg)) in
  let skip () = Scanner.skip_trivia sc in
  let expect_char c =
    skip ();
    match Scanner.peek sc with
    | Some x when x = c -> Scanner.advance sc
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let try_char c =
    skip ();
    match Scanner.peek sc with
    | Some x when x = c ->
      Scanner.advance sc;
      true
    | _ -> false
  in
  let ident () =
    skip ();
    Scanner.scan_ident sc
  in
  let int () =
    skip ();
    Scanner.scan_int sc
  in
  let field_ref () =
    let base = ident () in
    if not (try_char '.') then fail "expected '.' in field reference"
    else
      let f = ident () in
      match base with
      | "meta" -> Meta f
      | "reg" -> Reg f
      | h -> Header (h, f)
  in
  (* expressions with the usual precedence *)
  let rec expr () = expr_or ()
  and expr_or () =
    let rec go lhs = if Scanner.try_string sc "||" then go (Binop (Or, lhs, expr_and ())) else lhs in
    let lhs = expr_and () in
    skip ();
    go lhs
  and expr_and () =
    let rec go lhs =
      skip ();
      if Scanner.try_string sc "&&" then go (Binop (And, lhs, expr_cmp ())) else lhs
    in
    go (expr_cmp ())
  and expr_cmp () =
    let lhs = expr_add () in
    skip ();
    if Scanner.try_string sc "==" then Binop (Eq, lhs, expr_add ())
    else if Scanner.try_string sc "!=" then Binop (Neq, lhs, expr_add ())
    else if Scanner.try_string sc "<=" then Binop (Le, lhs, expr_add ())
    else if Scanner.try_string sc ">=" then Binop (Ge, lhs, expr_add ())
    else if Scanner.try_string sc "<" then Binop (Lt, lhs, expr_add ())
    else if Scanner.try_string sc ">" then Binop (Gt, lhs, expr_add ())
    else lhs
  and expr_add () =
    let rec go lhs =
      skip ();
      match Scanner.peek sc with
      | Some '+' ->
        Scanner.advance sc;
        go (Binop (Add, lhs, expr_mul ()))
      | Some '-' ->
        Scanner.advance sc;
        go (Binop (Sub, lhs, expr_mul ()))
      | _ -> lhs
    in
    go (expr_mul ())
  and expr_mul () =
    let rec go lhs =
      skip ();
      match Scanner.peek sc with
      | Some '*' ->
        Scanner.advance sc;
        go (Binop (Mul, lhs, expr_unary ()))
      | Some '/' when Scanner.peek2 sc <> Some '/' ->
        Scanner.advance sc;
        go (Binop (Div, lhs, expr_unary ()))
      | Some '%' ->
        Scanner.advance sc;
        go (Binop (Mod, lhs, expr_unary ()))
      | _ -> lhs
    in
    go (expr_unary ())
  and expr_unary () =
    skip ();
    match Scanner.peek sc with
    | Some '-' ->
      Scanner.advance sc;
      Unop (Neg, expr_unary ())
    | Some '!' when Scanner.peek2 sc <> Some '=' ->
      Scanner.advance sc;
      Unop (Not, expr_unary ())
    | _ -> expr_primary ()
  and expr_primary () =
    skip ();
    match Scanner.peek sc with
    | Some '(' ->
      Scanner.advance sc;
      let e = expr () in
      expect_char ')';
      e
    | Some c when Scanner.is_digit c -> Int (Scanner.scan_int sc)
    | Some c when Scanner.is_alpha c ->
      let base = Scanner.scan_ident sc in
      if try_char '.' then
        let f = ident () in
        Ref (match base with "meta" -> Meta f | "reg" -> Reg f | h -> Header (h, f))
      else Param base
    | _ -> fail "expected expression"
  in
  let headers = ref [] in
  let actions = ref [] in
  let tables = ref [] in
  let control = ref None in
  let parse_header () =
    let name = ident () in
    expect_char '{';
    let fields = ref [] in
    let rec go () =
      skip ();
      if try_char '}' then ()
      else begin
        let f = ident () in
        expect_char ':';
        let w = int () in
        expect_char ';';
        fields := (f, w) :: !fields;
        go ()
      end
    in
    go ();
    headers := { h_name = name; h_fields = List.rev !fields } :: !headers
  in
  let parse_action () =
    let name = ident () in
    expect_char '(';
    let params = ref [] in
    (let rec go first =
       skip ();
       if try_char ')' then ()
       else begin
         if not first then expect_char ',';
         params := ident () :: !params;
         go false
       end
     in
     go true);
    expect_char '{';
    let body = ref [] in
    let rec go () =
      skip ();
      if try_char '}' then ()
      else begin
        (match Scanner.peek sc with
        | Some c when Scanner.is_alpha c -> (
          (* lookahead: "drop;" / "noop;" or an assignment *)
          let save = Scanner.position sc in
          ignore save;
          let base = ident () in
          match base with
          | "drop" ->
            expect_char ';';
            body := Drop :: !body
          | "noop" ->
            expect_char ';';
            body := Noop :: !body
          | base ->
            if not (try_char '.') then fail "expected '.' in assignment target"
            else begin
              let f = ident () in
              let target =
                match base with "meta" -> Meta f | "reg" -> Reg f | h -> Header (h, f)
              in
              expect_char '=';
              let e = expr () in
              expect_char ';';
              body := Assign (target, e) :: !body
            end)
        | _ -> fail "expected primitive");
        go ()
      end
    in
    go ();
    actions := { a_name = name; a_params = List.rev !params; a_body = List.rev !body } :: !actions
  in
  let parse_table () =
    let name = ident () in
    expect_char '{';
    let key = ref None and kind = ref None and acts = ref [] and default = ref None in
    let rec go () =
      skip ();
      if try_char '}' then ()
      else begin
        (match ident () with
        | "key" ->
          expect_char ':';
          key := Some (field_ref ());
          expect_char ';'
        | "match" ->
          expect_char ':';
          (kind :=
             match ident () with
             | "exact" -> Some Exact
             | "ternary" -> Some Ternary
             | "lpm" -> Some Lpm
             | k -> fail (Printf.sprintf "unknown match kind '%s'" k));
          expect_char ';'
        | "actions" ->
          expect_char ':';
          expect_char '{';
          let rec names first =
            skip ();
            if try_char '}' then ()
            else begin
              if not first then expect_char ',';
              acts := ident () :: !acts;
              names false
            end
          in
          names true;
          expect_char ';'
        | "default" ->
          expect_char ':';
          let n = ident () in
          let args = ref [] in
          let rec more () =
            skip ();
            match Scanner.peek sc with
            | Some c when Scanner.is_digit c ->
              args := int () :: !args;
              more ()
            | _ -> ()
          in
          more ();
          expect_char ';';
          default := Some (n, List.rev !args)
        | k -> fail (Printf.sprintf "unknown table clause '%s'" k));
        go ()
      end
    in
    go ();
    match (!key, !kind, !default) with
    | Some key, Some kind, Some default ->
      tables :=
        { t_name = name; t_key = key; t_match = kind; t_actions = List.rev !acts; t_default = default }
        :: !tables
    | _ -> fail (Printf.sprintf "table '%s' is missing key, match, or default" name)
  in
  let parse_control () =
    expect_char '{';
    let order = ref [] in
    let rec go () =
      skip ();
      if try_char '}' then ()
      else
        match ident () with
        | "apply" ->
          order := ident () :: !order;
          expect_char ';';
          go ()
        | k -> fail (Printf.sprintf "unknown control statement '%s'" k)
    in
    go ();
    control := Some (List.rev !order)
  in
  let rec toplevel () =
    skip ();
    if Scanner.at_end sc then ()
    else begin
      (match ident () with
      | "header" -> parse_header ()
      | "action" -> parse_action ()
      | "table" -> parse_table ()
      | "control" -> parse_control ()
      | k -> fail (Printf.sprintf "unknown declaration '%s'" k));
      toplevel ()
    end
  in
  toplevel ();
  let p =
    {
      headers = List.rev !headers;
      actions = List.rev !actions;
      tables = List.rev !tables;
      control = (match !control with Some c -> c | None -> fail "missing control block");
    }
  in
  match validate p with
  | Ok () -> p
  | Error errs -> fail (String.concat "; " errs)

let parse_result src =
  match parse src with
  | p -> Ok p
  | exception Parse_error (pos, msg) -> Error (Fmt.str "%a: %s" Scanner.pp_position pos msg)
