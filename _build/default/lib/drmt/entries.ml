(* Table-entries configuration format (paper §4.2).

   "The configuration format for the table entries primarily consists of
   (1) the table that the entry will be added to, (2) the packet field to be
   matched on, (3) the type of match to perform (e.g. ternary, exact), and
   (4) the corresponding action to be executed if there is a match."

   One entry per line:

   {v
   # table   match-kind  pattern          action [args...]
   entry ipv4_route lpm     167772160/8   set_port 7
   entry l2_forward exact   43707         set_port 3
   entry acl        ternary 168430090&4294901760 drop
   v}

   Patterns: exact = value; lpm = value/prefix_len (on the key field's
   width); ternary = value&mask.  Earlier entries have higher priority for
   ternary; lpm uses the longest prefix. *)

type pattern =
  | Pexact of int
  | Plpm of int * int (* value, prefix length *)
  | Pternary of int * int (* value, mask *)
[@@deriving eq, show { with_path = false }]

type entry = {
  en_table : string;
  en_pattern : pattern;
  en_action : string;
  en_args : int list;
}
[@@deriving eq, show { with_path = false }]

type t = entry list

let matches ~key_width (pattern : pattern) key =
  match pattern with
  | Pexact v -> key = v
  | Plpm (v, plen) ->
    let shift = max 0 (key_width - plen) in
    key lsr shift = v lsr shift
  | Pternary (v, mask) -> key land mask = v land mask

(* Higher is more specific; used for lpm longest-prefix selection. *)
let specificity = function
  | Pexact _ -> max_int
  | Plpm (_, plen) -> plen
  | Pternary _ -> 0

(* Looks up [key] in [entries] restricted to [table]: exact/ternary use
   first-match (priority = file order), lpm uses the longest prefix. *)
let lookup (entries : t) ~table ~key_width key =
  let candidates =
    List.filter
      (fun e -> e.en_table = table && matches ~key_width e.en_pattern key)
      entries
  in
  match candidates with
  | [] -> None
  | first :: _ -> (
    match first.en_pattern with
    | Pexact _ | Pternary _ -> Some first
    | Plpm _ ->
      Some
        (List.fold_left
           (fun best e -> if specificity e.en_pattern > specificity best.en_pattern then e else best)
           first candidates))

(* --- Text format ----------------------------------------------------------------- *)

let parse_pattern kind text =
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "invalid integer '%s'" s)
  in
  match kind with
  | "exact" -> Result.map (fun v -> Pexact v) (int_of text)
  | "lpm" -> (
    match String.index_opt text '/' with
    | None -> Error "lpm pattern must be value/prefix_len"
    | Some i ->
      let v = String.sub text 0 i and p = String.sub text (i + 1) (String.length text - i - 1) in
      Result.bind (int_of v) (fun v -> Result.map (fun p -> Plpm (v, p)) (int_of p)))
  | "ternary" -> (
    match String.index_opt text '&' with
    | None -> Error "ternary pattern must be value&mask"
    | Some i ->
      let v = String.sub text 0 i and m = String.sub text (i + 1) (String.length text - i - 1) in
      Result.bind (int_of v) (fun v -> Result.map (fun m -> Pternary (v, m)) (int_of m)))
  | k -> Error (Printf.sprintf "unknown match kind '%s'" k)

let parse src : (t, string) result =
  let errors = ref [] in
  let entries = ref [] in
  String.split_on_char '\n' src
  |> List.iteri (fun lineno line ->
         let err msg = errors := Printf.sprintf "line %d: %s" (lineno + 1) msg :: !errors in
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let words =
           String.split_on_char ' ' line |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "")
         in
         match words with
         | [] -> ()
         | "entry" :: table :: kind :: pattern :: action :: args -> (
           match parse_pattern kind pattern with
           | Error m -> err m
           | Ok p -> (
             match List.map int_of_string_opt args with
             | ints when List.for_all Option.is_some ints ->
               entries :=
                 {
                   en_table = table;
                   en_pattern = p;
                   en_action = action;
                   en_args = List.map Option.get ints;
                 }
                 :: !entries
             | _ -> err "invalid action arguments"))
         | "entry" :: _ -> err "expected: entry <table> <kind> <pattern> <action> [args...]"
         | w :: _ -> err (Printf.sprintf "unknown directive '%s'" w));
  match !errors with
  | [] -> Ok (List.rev !entries)
  | errs -> Error (String.concat "\n" (List.rev errs))

let pp_entry ppf e =
  let pattern =
    match e.en_pattern with
    | Pexact v -> string_of_int v
    | Plpm (v, p) -> Printf.sprintf "%d/%d" v p
    | Pternary (v, m) -> Printf.sprintf "%d&%d" v m
  in
  let kind =
    match e.en_pattern with Pexact _ -> "exact" | Plpm _ -> "lpm" | Pternary _ -> "ternary"
  in
  Fmt.pf ppf "entry %s %s %s %s%a" e.en_table kind pattern e.en_action
    Fmt.(list ~sep:nop (fun ppf -> pf ppf " %d"))
    e.en_args
