lib/drmt/dag.pp.ml: Hashtbl List P4 Ppx_deriving_runtime
