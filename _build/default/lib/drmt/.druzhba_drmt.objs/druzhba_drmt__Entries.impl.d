lib/drmt/entries.pp.ml: Fmt List Option Ppx_deriving_runtime Printf Result String
