lib/drmt/scheduler.pp.ml: Dag Fmt Hashtbl List Printf
