lib/drmt/p4.pp.ml: Druzhba_util Fmt Format List Ppx_deriving_runtime Printf String
