lib/drmt/sim.pp.ml: Dag Druzhba_util Entries Fmt Hashtbl List Option P4 Printf Scheduler String
