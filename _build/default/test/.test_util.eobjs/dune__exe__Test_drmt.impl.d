test/test_drmt.ml: Alcotest Druzhba_drmt Fmt Hashtbl List Option Printf QCheck QCheck_alcotest
