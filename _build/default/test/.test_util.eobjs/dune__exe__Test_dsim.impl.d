test/test_dsim.ml: Alcotest Array Druzhba_atoms Druzhba_compiler Druzhba_dsim Druzhba_fuzz Druzhba_machine_code Druzhba_pipeline Druzhba_spec Druzhba_util Fmt List Option String
