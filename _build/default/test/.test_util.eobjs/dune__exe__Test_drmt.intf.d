test/test_drmt.mli:
