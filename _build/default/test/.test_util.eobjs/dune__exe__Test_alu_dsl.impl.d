test/test_alu_dsl.ml: Alcotest Druzhba_alu_dsl Druzhba_atoms Fmt List QCheck QCheck_alcotest String
