test/test_machine_code.mli:
