test/test_spec.ml: Alcotest Druzhba_compiler Druzhba_fuzz Druzhba_spec List String
