test/test_core.ml: Alcotest Atoms Compiler Dgen Druzhba_core Druzhba_experiments Fmt Fuzz Ir List Machine_code Names Optimizer Prng Spec String Trace
