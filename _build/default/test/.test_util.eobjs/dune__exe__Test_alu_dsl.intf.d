test/test_alu_dsl.mli:
