test/test_machine_code.ml: Alcotest Druzhba_machine_code
