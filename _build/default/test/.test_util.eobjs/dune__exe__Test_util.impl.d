test/test_util.ml: Alcotest Druzhba_util List QCheck QCheck_alcotest
