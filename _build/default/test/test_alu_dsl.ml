(* Tests for the ALU DSL front end: lexer, parser, analysis, printer. *)

module Ast = Druzhba_alu_dsl.Ast
module Lexer = Druzhba_alu_dsl.Lexer
module Parser = Druzhba_alu_dsl.Parser
module Analysis = Druzhba_alu_dsl.Analysis
module Printer = Druzhba_alu_dsl.Printer
module Atoms = Druzhba_atoms.Atoms

let alu_testable = Alcotest.testable Ast.pp Ast.equal

let parse ?(name = "test") src = Parser.parse ~name src

(* --- Lexer ------------------------------------------------------------------ *)

let tokens src = List.map (fun (t : Lexer.located) -> t.token) (Lexer.tokenize src)

let test_lexer_operators () =
  Alcotest.(check bool)
    "all operators" true
    (tokens "== != <= >= < > && || + - * / % ! ="
    = Lexer.
        [
          EQEQ; NEQ; LE; GE; LT; GT; ANDAND; OROR; PLUS; MINUS; STAR; SLASH; PERCENT; BANG; ASSIGN; EOF;
        ])

let test_lexer_mixed () =
  Alcotest.(check bool)
    "header line" true
    (tokens "state variables : {state_0}"
    = Lexer.[ IDENT "state"; IDENT "variables"; COLON; LBRACE; IDENT "state_0"; RBRACE; EOF ])

let test_lexer_error () =
  match Lexer.tokenize "a @ b" with
  | _ -> Alcotest.fail "expected lexer error"
  | exception Lexer.Error (_, _) -> ()

(* --- Parser ------------------------------------------------------------------ *)

let minimal_stateful =
  {|
type : stateful
state variables : {s}
hole variables : {}
packet fields : {p}
s = s + p;
|}

let test_parse_minimal () =
  let alu = parse minimal_stateful in
  Alcotest.(check bool) "stateful" true (Ast.is_stateful alu);
  Alcotest.(check (list string)) "state vars" [ "s" ] alu.Ast.state_vars;
  Alcotest.(check (list string)) "packet fields" [ "p" ] alu.Ast.packet_fields;
  Alcotest.(check int) "arity" 1 (Ast.arity alu)

let test_parse_fig4 () =
  (* The paper's Fig. 4 If-Else-RAW atom parses and has the expected shape. *)
  let alu = Atoms.find_exn "if_else_raw" in
  match alu.Ast.body with
  | [ Ast.If ([ (Ast.Rel_op (0, _, _), [ Ast.Assign ("state_0", _) ]) ], [ Ast.Assign ("state_0", _) ]) ]
    -> ()
  | _ -> Alcotest.fail "unexpected Fig. 4 structure"

let test_instance_numbering () =
  let alu =
    parse
      {|
type : stateful
state variables : {s}
hole variables : {}
packet fields : {p, q}
s = Mux2(p, C()) + Mux3(p, q, C());
|}
  in
  match alu.Ast.body with
  | [ Ast.Assign (_, Ast.Binop (Ast.Add, Ast.Mux (0, [ _; Ast.Hole_const 0 ]), Ast.Mux (1, [ _; _; Ast.Hole_const 1 ]))) ]
    -> ()
  | _ -> Alcotest.fail "instances not numbered in order of appearance"

let test_precedence () =
  let alu =
    parse
      {|
type : stateful
state variables : {s}
hole variables : {}
packet fields : {p, q}
s = p + q * 2 == p && q != 0 || s == 1;
|}
  in
  (* || at top, && under it, comparisons under that, * under +. *)
  match alu.Ast.body with
  | [
   Ast.Assign
     ( _,
       Ast.Binop
         ( Ast.Or,
           Ast.Binop
             ( Ast.And,
               Ast.Binop (Ast.Eq, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)), _),
               Ast.Binop (Ast.Neq, _, _) ),
           Ast.Binop (Ast.Eq, _, _) ) );
  ] ->
    ()
  | _ -> Alcotest.fail "unexpected precedence parse"

let test_unary () =
  let alu =
    parse
      {|
type : stateful
state variables : {s}
hole variables : {}
packet fields : {p}
s = -p + !s;
|}
  in
  match alu.Ast.body with
  | [ Ast.Assign (_, Ast.Binop (Ast.Add, Ast.Unop (Ast.Neg, _), Ast.Unop (Ast.Not, _))) ] -> ()
  | _ -> Alcotest.fail "unexpected unary parse"

let test_elif_chain () =
  let alu =
    parse
      {|
type : stateless
state variables : {}
hole variables : {}
packet fields : {p}
if (p == 0) { return 1; }
elif (p == 1) { return 2; }
elif (p == 2) { return 3; }
else { return 4; }
|}
  in
  match alu.Ast.body with
  | [ Ast.If (branches, els) ] ->
    Alcotest.(check int) "three branches" 3 (List.length branches);
    Alcotest.(check int) "else" 1 (List.length els)
  | _ -> Alcotest.fail "unexpected elif parse"

let test_parse_errors () =
  let expect_error src =
    match Parser.parse_result ~name:"bad" src with
    | Ok _ -> Alcotest.fail ("expected parse error for: " ^ src)
    | Error _ -> ()
  in
  expect_error "type : bogus\nstate variables : {}\nhole variables : {}\npacket fields : {}";
  expect_error "type : stateful\nstate variables : {s}\nhole variables : {}\npacket fields : {p}\ns = C(1);";
  expect_error "type : stateful\nstate variables : {s}\nhole variables : {}\npacket fields : {p}\ns = Mux2(p);";
  expect_error "type : stateful\nstate variables : {s}\nhole variables : {}\npacket fields : {p}\ns = Unknown(p);";
  expect_error "type : stateful\nstate variables : {s}\nhole variables : {}\npacket fields : {p}\ns = p";
  expect_error "type : stateful\nstate variables : {s}\nhole variables : {}";
  expect_error
    "type : stateful\nstate variables : {s}\nhole variables : {}\npacket fields : {p}\nif p { s = 1; }"

let test_all_atoms_parse () =
  List.iter
    (fun name ->
      match Atoms.find name with
      | Some alu -> Alcotest.(check string) "name" name alu.Ast.name
      | None -> Alcotest.fail ("atom did not parse: " ^ name))
    Atoms.all_names

(* --- Analysis ----------------------------------------------------------------- *)

let test_slots_if_else_raw () =
  let alu = Atoms.find_exn "if_else_raw" in
  let slots = Analysis.slots alu in
  let names = List.map (fun (s : Analysis.slot) -> s.slot_name) slots in
  (* 1 rel_op, 3 opts, 3 mux3s, 3 consts *)
  Alcotest.(check (list string))
    "slot names"
    [
      "rel_op_0"; "opt_0"; "mux3_0"; "const_0"; "opt_1"; "mux3_1"; "const_1"; "opt_2"; "mux3_2"; "const_2";
    ]
    names

let test_slot_domains () =
  let alu = Atoms.find_exn "sub" in
  let slots = Analysis.slots alu in
  let find n = (List.find (fun (s : Analysis.slot) -> s.slot_name = n) slots).Analysis.domain in
  Alcotest.(check bool) "arith domain" true (find "arith_op_0" = Analysis.Range 2);
  Alcotest.(check bool) "mux3 domain" true (find "mux3_0" = Analysis.Range 3);
  Alcotest.(check bool) "const domain" true (find "const_0" = Analysis.Immediate)

let test_hole_var_slots () =
  let alu = Atoms.find_exn "stateless_full" in
  let slots = Analysis.slots alu in
  match slots with
  | { slot_name = "opcode"; domain = Analysis.Immediate } :: _ -> ()
  | _ -> Alcotest.fail "hole variable should be the first slot"

let test_validate_atoms () =
  List.iter
    (fun name ->
      match Analysis.validate (Atoms.find_exn name) with
      | Ok () -> ()
      | Error errs -> Alcotest.fail (name ^ ": " ^ String.concat "; " errs))
    Atoms.all_names

let test_validate_rejects () =
  let expect_invalid src =
    match Analysis.validate (parse src) with
    | Ok () -> Alcotest.fail "expected validation error"
    | Error _ -> ()
  in
  (* undeclared variable *)
  expect_invalid
    "type : stateful\nstate variables : {s}\nhole variables : {}\npacket fields : {p}\ns = bogus;";
  (* assignment to packet field *)
  expect_invalid
    "type : stateful\nstate variables : {s}\nhole variables : {}\npacket fields : {p}\np = s;";
  (* stateless with state vars *)
  expect_invalid
    "type : stateless\nstate variables : {s}\nhole variables : {}\npacket fields : {p}\nreturn p;";
  (* stateful without state vars *)
  expect_invalid
    "type : stateful\nstate variables : {}\nhole variables : {}\npacket fields : {p}\nreturn p;";
  (* stateless missing return on some path *)
  expect_invalid
    "type : stateless\nstate variables : {}\nhole variables : {}\npacket fields : {p}\nif (p == 0) { return 1; }";
  (* duplicate declaration *)
  expect_invalid
    "type : stateful\nstate variables : {s}\nhole variables : {s}\npacket fields : {p}\ns = p;"

let test_validate_if_without_else_returns () =
  (* A stateless ALU whose if lacks an else but has a trailing return is fine. *)
  let alu =
    parse
      {|
type : stateless
state variables : {}
hole variables : {}
packet fields : {p}
if (p == 0) { return 1; }
return 0;
|}
  in
  match Analysis.validate alu with
  | Ok () -> ()
  | Error errs -> Alcotest.fail (String.concat "; " errs)

(* --- Printer ------------------------------------------------------------------ *)

let test_roundtrip_atoms () =
  List.iter
    (fun name ->
      let alu = Atoms.find_exn name in
      let printed = Printer.to_string alu in
      let reparsed = Parser.parse ~name printed in
      Alcotest.check alu_testable ("roundtrip " ^ name) alu reparsed)
    Atoms.all_names

(* Random ALU generator for the parse/print roundtrip property. *)
let gen_alu : Ast.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var_pool = [ "s"; "p"; "q" ] in
  let rec gen_expr depth =
    if depth = 0 then
      oneof [ map (fun n -> Ast.Const n) (int_bound 100); oneofl (List.map (fun v -> Ast.Var v) var_pool) ]
    else
      frequency
        [
          (2, gen_expr 0);
          (2, map2 (fun op (a, b) -> Ast.Binop (op, a, b))
               (oneofl Ast.[ Add; Sub; Mul; Div; Mod; Eq; Neq; Lt; Gt; Le; Ge; And; Or ])
               (pair (gen_expr (depth - 1)) (gen_expr (depth - 1))));
          (1, map2 (fun op a -> Ast.Unop (op, a)) (oneofl Ast.[ Neg; Not ]) (gen_expr (depth - 1)));
          (1, map (fun a -> Ast.Opt (0, a)) (gen_expr (depth - 1)));
          (1, map2 (fun a b -> Ast.Mux (0, [ a; b ])) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (1, map2 (fun a b -> Ast.Rel_op (0, a, b)) (gen_expr (depth - 1)) (gen_expr (depth - 1)));
          (1, return (Ast.Hole_const 0));
        ]
  in
  let gen_stmt depth =
    if depth = 0 then map (fun e -> Ast.Assign ("s", e)) (gen_expr 2)
    else
      frequency
        [
          (3, map (fun e -> Ast.Assign ("s", e)) (gen_expr 2));
          ( 1,
            map2
              (fun c body -> Ast.If ([ (c, [ body ]) ], [ Ast.Assign ("s", Ast.Const 0) ]))
              (gen_expr 1)
              (map (fun e -> Ast.Assign ("s", e)) (gen_expr 1)) );
        ]
  in
  let* body = list_size (int_range 1 4) (gen_stmt 1) in
  return
    {
      Ast.name = "gen";
      kind = Ast.Stateful;
      state_vars = [ "s" ];
      hole_vars = [];
      packet_fields = [ "p"; "q" ];
      body;
    }

(* Renumbers machine-code construct instances in textual order, as the parser
   would assign them. *)
let renumber (alu : Ast.t) : Ast.t =
  let c = ref (0, 0, 0, 0, 0) in
  let next sel =
    let m, o, k, r, a = !c in
    match sel with
    | `Mux ->
      c := (m + 1, o, k, r, a);
      m
    | `Opt ->
      c := (m, o + 1, k, r, a);
      o
    | `Const ->
      c := (m, o, k + 1, r, a);
      k
    | `Rel ->
      c := (m, o, k, r + 1, a);
      r
    | `Arith ->
      c := (m, o, k, r, a + 1);
      a
  in
  let rec expr (e : Ast.expr) =
    match e with
    | Ast.Const _ | Ast.Var _ -> e
    | Ast.Unop (op, x) -> Ast.Unop (op, expr x)
    | Ast.Binop (op, x, y) ->
      let x = expr x in
      let y = expr y in
      Ast.Binop (op, x, y)
    | Ast.Hole_const _ -> Ast.Hole_const (next `Const)
    | Ast.Opt (_, x) ->
      let i = next `Opt in
      Ast.Opt (i, expr x)
    | Ast.Mux (_, xs) ->
      let i = next `Mux in
      Ast.Mux (i, List.map expr xs)
    | Ast.Rel_op (_, x, y) ->
      let i = next `Rel in
      let x = expr x in
      let y = expr y in
      Ast.Rel_op (i, x, y)
    | Ast.Arith_op (_, x, y) ->
      let i = next `Arith in
      let x = expr x in
      let y = expr y in
      Ast.Arith_op (i, x, y)
  in
  let rec stmt (s : Ast.stmt) =
    match s with
    | Ast.Assign (v, e) -> Ast.Assign (v, expr e)
    | Ast.Return e -> Ast.Return (expr e)
    | Ast.If (branches, els) ->
      let branches = List.map (fun (c, b) -> let c = expr c in (c, List.map stmt b)) branches in
      Ast.If (branches, List.map stmt els)
  in
  { alu with body = List.map stmt alu.body }

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"parse (print alu) = renumber alu" ~count:200
    (QCheck.make ~print:(fun alu -> Printer.to_string alu ^ "\n" ^ Ast.show alu) gen_alu)
    (fun alu ->
      let printed = Fmt.str "%a" Printer.pp alu in
      match Parser.parse_result ~name:"gen" printed with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s@.source:@.%s" e printed
      | Ok reparsed -> Ast.equal reparsed (renumber { alu with name = "gen" }))

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "alu_dsl"
    [
      ( "lexer",
        [
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "mixed" `Quick test_lexer_mixed;
          Alcotest.test_case "error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal stateful" `Quick test_parse_minimal;
          Alcotest.test_case "fig4 if_else_raw" `Quick test_parse_fig4;
          Alcotest.test_case "instance numbering" `Quick test_instance_numbering;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "unary" `Quick test_unary;
          Alcotest.test_case "elif chain" `Quick test_elif_chain;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "all atoms parse" `Quick test_all_atoms_parse;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "if_else_raw slots" `Quick test_slots_if_else_raw;
          Alcotest.test_case "slot domains" `Quick test_slot_domains;
          Alcotest.test_case "hole var slots" `Quick test_hole_var_slots;
          Alcotest.test_case "atoms validate" `Quick test_validate_atoms;
          Alcotest.test_case "validation rejects" `Quick test_validate_rejects;
          Alcotest.test_case "if without else + trailing return" `Quick
            test_validate_if_without_else_returns;
        ] );
      ( "printer",
        [ Alcotest.test_case "atom roundtrip" `Quick test_roundtrip_atoms ]
        @ qsuite [ prop_print_parse_roundtrip ] );
    ]
