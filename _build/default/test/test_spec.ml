(* Tests for the benchmark registry: Table-1 metadata, source validity,
   variants, and exhaustive small-width verification of compiled benchmarks
   (the future-work extension applied to the paper's own programs). *)

module Spec = Druzhba_spec.Spec
module Codegen = Druzhba_compiler.Codegen
module Testing = Druzhba_compiler.Testing
module Checker = Druzhba_compiler.Checker
module Frontend = Druzhba_compiler.Frontend
module Verify = Druzhba_fuzz.Verify
module Fuzz = Druzhba_fuzz.Fuzz

(* The exact Table-1 rows from the paper. *)
let table1_rows =
  [
    ("blue_decrease", 4, 2, "sub");
    ("blue_increase", 4, 2, "pair");
    ("sampling", 2, 1, "if_else_raw");
    ("marple_new_flow", 2, 2, "pred_raw");
    ("marple_tcp_nmo", 3, 2, "pred_raw");
    ("snap_heavy_hitter", 1, 1, "pair");
    ("stateful_firewall", 4, 5, "pred_raw");
    ("flowlets", 4, 5, "pred_raw");
    ("learn_filter", 3, 5, "raw");
    ("rcp", 3, 3, "pred_raw");
    ("conga", 1, 5, "pair");
    ("spam_detection", 1, 1, "pair");
  ]

let test_registry_matches_table1 () =
  Alcotest.(check int) "12 benchmarks" 12 (List.length Spec.all);
  List.iter
    (fun (name, depth, width, alu) ->
      match Spec.find name with
      | None -> Alcotest.fail ("missing benchmark: " ^ name)
      | Some bm ->
        Alcotest.(check int) (name ^ " depth") depth bm.Spec.bm_depth;
        Alcotest.(check int) (name ^ " width") width bm.Spec.bm_width;
        Alcotest.(check string) (name ^ " atom") alu bm.Spec.bm_stateful)
    table1_rows

let test_sources_parse_and_check () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      let program = Spec.program bm in
      Alcotest.(check string) "program name" bm.Spec.bm_name program.Druzhba_compiler.Ast.name;
      match Checker.analyze program with
      | Ok _ -> ()
      | Error errs -> Alcotest.failf "%s: %s" bm.Spec.bm_name (String.concat "; " errs))
    Spec.all

let test_find_exn () =
  Alcotest.check_raises "unknown benchmark"
    (Invalid_argument "Spec.find_exn: unknown benchmark 'nope'") (fun () ->
      ignore (Spec.find_exn "nope"))

let test_variants_parse () =
  List.iter
    (fun (bm : Spec.benchmark) ->
      match bm.Spec.bm_variant with
      | None -> ()
      | Some variant ->
        List.iter
          (fun param ->
            match Frontend.parse_result (variant param) with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s[%d]: %s" bm.Spec.bm_name param e)
          [ 1; 7; 63; 4095 ])
    Spec.all

let test_default_source_is_variant_default () =
  (* the canonical source of parameterized benchmarks equals one variant
     instantiation, so corpus results cover the canonical program *)
  List.iter
    (fun (bm : Spec.benchmark) ->
      match bm.Spec.bm_variant with
      | None -> ()
      | Some variant ->
        Alcotest.(check bool)
          (bm.Spec.bm_name ^ " default is an instance")
          true
          (List.exists (fun p -> variant p = bm.Spec.bm_source) [ 2; 5; 10; 30; 100 ]))
    Spec.all

(* Exhaustive small-width verification of compiled benchmarks whose state
   space stays tractable at 2 bits. *)
let test_exhaustive_verification_small_width () =
  let verify name =
    let bm = Spec.find_exn name in
    let compiled = Spec.compile_exn ~bits:2 bm in
    Verify.exhaustive_check ~max_states:60_000 ~desc:compiled.Codegen.c_desc
      ~mc:compiled.Codegen.c_mc ~spec:(Testing.spec_of compiled)
      ~observed:(Testing.observed compiled) ~state_layout:(Testing.state_layout compiled)
      ~init:compiled.Codegen.c_layout.Codegen.l_init ()
  in
  List.iter
    (fun name ->
      match verify name with
      | Verify.Proved _ -> ()
      | r -> Alcotest.failf "%s at 2 bits: %a" name Verify.pp_result r)
    [ "sampling"; "marple_new_flow"; "snap_heavy_hitter"; "spam_detection"; "conga" ]

let test_compile_at_other_widths () =
  (* benchmarks compile at 8 and 16 bits too (constants are masked) *)
  List.iter
    (fun bits ->
      List.iter
        (fun (bm : Spec.benchmark) ->
          match Spec.compile ~bits bm with
          | Ok compiled -> (
            match Testing.check ~n:200 compiled with
            | Fuzz.Pass _ -> ()
            | o -> Alcotest.failf "%s at %d bits: %a" bm.Spec.bm_name bits Fuzz.pp_outcome o)
          | Error e -> Alcotest.failf "%s at %d bits: %s" bm.Spec.bm_name bits e)
        Spec.all)
    [ 8; 16 ]

let () =
  Alcotest.run "spec"
    [
      ( "registry",
        [
          Alcotest.test_case "matches Table 1" `Quick test_registry_matches_table1;
          Alcotest.test_case "sources parse and check" `Quick test_sources_parse_and_check;
          Alcotest.test_case "find_exn" `Quick test_find_exn;
          Alcotest.test_case "variants parse" `Quick test_variants_parse;
          Alcotest.test_case "default is a variant instance" `Quick
            test_default_source_is_variant_default;
        ] );
      ( "verification",
        [
          Alcotest.test_case "exhaustive proof at 2 bits" `Quick
            test_exhaustive_verification_small_width;
          Alcotest.test_case "other datapath widths" `Quick test_compile_at_other_widths;
        ] );
    ]
