(* Integration tests for dgen (pipeline generation), the interpreter, the
   dsim engine, and the optimizer: hand-computed simulations, structural
   checks on the three description versions of Fig. 6, and the central
   property that all three versions are observationally equivalent. *)

module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Names = Druzhba_pipeline.Names
module Emit = Druzhba_pipeline.Emit
module Optimizer = Druzhba_optimizer.Optimizer
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Phv = Druzhba_dsim.Phv
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace
module Atoms = Druzhba_atoms.Atoms
module Fuzz = Druzhba_fuzz.Fuzz

let gen ~depth ~width ?(bits = 32) ?(stateful = "raw") ?(stateless = "stateless_full") () =
  Dgen.generate
    (Dgen.config ~depth ~width ~bits ())
    ~stateful:(Atoms.find_exn stateful) ~stateless:(Atoms.find_exn stateless)

(* All controls zero, output muxes pass-through: the identity pipeline. *)
let neutral_mc (desc : Ir.t) =
  let mc = Machine_code.empty () in
  List.iter (fun (name, _) -> Machine_code.set mc name 0) (Ir.control_domains desc);
  Array.iter
    (fun (st : Ir.stage) ->
      Array.iter
        (fun name -> Machine_code.set mc name (Names.Select.passthrough ~width:desc.Ir.d_width))
        st.Ir.s_output_muxes)
    desc.Ir.d_stages;
  mc

let run_outputs desc mc inputs =
  let trace = Engine.run desc ~mc ~inputs in
  trace.Trace.outputs

(* --- Structural checks ------------------------------------------------------ *)

let test_required_names_shape () =
  let desc = gen ~depth:2 ~width:2 () in
  let names = Ir.required_names desc in
  Alcotest.(check bool) "nonempty" true (List.length names > 0);
  List.iter
    (fun n ->
      Alcotest.(check bool) ("prefixed: " ^ n) true
        (String.length n > 15 && String.sub n 0 15 = "pipeline_stage_"))
    names;
  (* output muxes for both stages and containers are required *)
  List.iter
    (fun i ->
      List.iter
        (fun c ->
          let n = Names.output_mux ~stage:i ~container:c in
          Alcotest.(check bool) ("has " ^ n) true (List.mem n names))
        [ 0; 1 ])
    [ 0; 1 ]

let test_alu_count () =
  let desc = gen ~depth:3 ~width:4 () in
  Alcotest.(check int) "stages" 3 (Array.length desc.Ir.d_stages);
  Array.iter
    (fun (st : Ir.stage) ->
      Alcotest.(check int) "stateless per stage" 4 (Array.length st.Ir.s_stateless);
      Alcotest.(check int) "stateful per stage" 4 (Array.length st.Ir.s_stateful);
      Alcotest.(check int) "output muxes" 4 (Array.length st.Ir.s_output_muxes))
    desc.Ir.d_stages

let test_control_domains () =
  let desc = gen ~depth:1 ~width:2 ~stateful:"sub" () in
  let domains = Ir.control_domains desc in
  let find n = List.assoc n domains in
  let sf = Names.stateful_alu ~stage:0 ~alu:0 in
  Alcotest.(check bool) "arith op domain" true
    (find (Names.slot ~alu_prefix:sf ~slot_name:"arith_op_0") = Ir.Selector 2);
  Alcotest.(check bool) "mux3 domain" true
    (find (Names.slot ~alu_prefix:sf ~slot_name:"mux3_0") = Ir.Selector 3);
  Alcotest.(check bool) "const domain" true
    (find (Names.slot ~alu_prefix:sf ~slot_name:"const_0") = Ir.Immediate);
  Alcotest.(check bool) "input mux domain" true
    (find (Names.input_mux ~alu_prefix:sf ~operand:0) = Ir.Selector 2);
  Alcotest.(check bool) "output mux domain" true
    (find (Names.output_mux ~stage:0 ~container:0) = Ir.Selector 7)

(* --- Hand-computed simulations ---------------------------------------------- *)

(* width 1, depth 1, raw atom accumulating pkt_0 into state_0. *)
let accumulator_setup () =
  let desc = gen ~depth:1 ~width:1 ~stateful:"raw" () in
  let mc = neutral_mc desc in
  (desc, mc)

let sf0 = Names.stateful_alu ~stage:0 ~alu:0
let out0 = Names.output_mux ~stage:0 ~container:0

let test_accumulator_old_state () =
  let desc, mc = accumulator_setup () in
  (* output mux selects the stateful ALU's output = pre-execution state_0 *)
  Machine_code.set mc out0 (Names.Select.stateful_output ~width:1 0);
  let outputs = run_outputs desc mc [ [| 5 |]; [| 7 |]; [| 9 |] ] in
  Alcotest.(check (list (list int)))
    "running sum, delayed"
    [ [ 0 ]; [ 5 ]; [ 12 ] ]
    (List.map Array.to_list outputs);
  let trace = Engine.run desc ~mc ~inputs:[ [| 5 |]; [| 7 |]; [| 9 |] ] in
  Alcotest.(check (option (list int)))
    "final state" (Some [ 21 ])
    (Option.map Array.to_list (Trace.find_state trace sf0))

let test_accumulator_new_state () =
  let desc, mc = accumulator_setup () in
  Machine_code.set mc out0 (Names.Select.stateful_new_state ~width:1 0);
  let outputs = run_outputs desc mc [ [| 5 |]; [| 7 |]; [| 9 |] ] in
  Alcotest.(check (list (list int)))
    "post-update sums"
    [ [ 5 ]; [ 12 ]; [ 21 ] ]
    (List.map Array.to_list outputs)

let test_passthrough () =
  let desc, mc = accumulator_setup () in
  (* neutral mc already selects pass-through *)
  let outputs = run_outputs desc mc [ [| 1 |]; [| 2 |]; [| 3 |] ] in
  Alcotest.(check (list (list int)))
    "identity" [ [ 1 ]; [ 2 ]; [ 3 ] ]
    (List.map Array.to_list outputs)

let test_stateless_const () =
  let desc, mc = accumulator_setup () in
  let sl0 = Names.stateless_alu ~stage:0 ~alu:0 in
  (* stateless_full opcode 5 returns C() (its 7th const instance) *)
  Machine_code.set mc (Names.slot ~alu_prefix:sl0 ~slot_name:"opcode") 5;
  Machine_code.set mc (Names.slot ~alu_prefix:sl0 ~slot_name:"const_6") 99;
  Machine_code.set mc out0 (Names.Select.stateless_output ~width:1 0);
  let outputs = run_outputs desc mc [ [| 1 |]; [| 2 |] ] in
  Alcotest.(check (list (list int))) "const" [ [ 99 ]; [ 99 ] ] (List.map Array.to_list outputs)

let test_raw_immediate_increment () =
  (* raw with mux2 selecting C()=3: state += 3 per PHV regardless of input *)
  let desc, mc = accumulator_setup () in
  Machine_code.set mc (Names.slot ~alu_prefix:sf0 ~slot_name:"mux2_0") 1;
  Machine_code.set mc (Names.slot ~alu_prefix:sf0 ~slot_name:"const_0") 3;
  Machine_code.set mc out0 (Names.Select.stateful_new_state ~width:1 0);
  let outputs = run_outputs desc mc [ [| 100 |]; [| 100 |] ] in
  Alcotest.(check (list (list int))) "increments" [ [ 3 ]; [ 6 ] ] (List.map Array.to_list outputs)

let test_pipeline_latency_and_order () =
  (* depth 3 pass-through: distinct PHVs exit in order, one per tick after the
     pipeline fills (the two-halves rule: one stage per tick). *)
  let desc = gen ~depth:3 ~width:1 () in
  let mc = neutral_mc desc in
  let eng = Engine.create desc ~mc in
  Alcotest.(check (option (list int)))
    "tick 1: nothing out" None
    (Option.map Array.to_list (Engine.step eng ~input:(Some [| 10 |])));
  Alcotest.(check (option (list int)))
    "tick 2: nothing out" None
    (Option.map Array.to_list (Engine.step eng ~input:(Some [| 20 |])));
  Alcotest.(check (option (list int)))
    "tick 3: first PHV exits" (Some [ 10 ])
    (Option.map Array.to_list (Engine.step eng ~input:(Some [| 30 |])));
  Alcotest.(check (option (list int)))
    "tick 4: second PHV exits" (Some [ 20 ])
    (Option.map Array.to_list (Engine.step eng ~input:None));
  Alcotest.(check (option (list int)))
    "tick 5: third PHV exits" (Some [ 30 ])
    (Option.map Array.to_list (Engine.step eng ~input:None))

let test_state_visible_to_next_phv () =
  (* Back-to-back PHVs at the same stateful ALU observe strictly increasing
     state: writes are visible to the next PHV (§2.2). *)
  let desc, mc = accumulator_setup () in
  Machine_code.set mc out0 (Names.Select.stateful_output ~width:1 0);
  let outputs = run_outputs desc mc [ [| 1 |]; [| 1 |]; [| 1 |]; [| 1 |] ] in
  Alcotest.(check (list (list int)))
    "monotone" [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ] ]
    (List.map Array.to_list outputs)

let test_bits_wraparound () =
  (* 4-bit pipeline: the accumulator wraps modulo 16. *)
  let desc = gen ~depth:1 ~width:1 ~bits:4 () in
  let mc = neutral_mc desc in
  Machine_code.set mc out0 (Names.Select.stateful_new_state ~width:1 0);
  let outputs = run_outputs desc mc [ [| 9 |]; [| 9 |] ] in
  Alcotest.(check (list (list int))) "wraps" [ [ 9 ]; [ 2 ] ] (List.map Array.to_list outputs)

let test_if_else_raw_semantics () =
  (* if_else_raw programmed as the sampling update: if (s == 9) s = 0 else
     s = s + 1.  Machine code: rel_op '=='; then-branch Opt -> 0 and
     Mux3 -> C()=0; else-branch Opt -> s and Mux3 -> C()=1. *)
  let desc = gen ~depth:1 ~width:1 ~stateful:"if_else_raw" () in
  let mc = neutral_mc desc in
  let set slot v = Machine_code.set mc (Names.slot ~alu_prefix:sf0 ~slot_name:slot) v in
  set "rel_op_0" 2 (* == *);
  set "opt_0" 0 (* state_0 *);
  set "mux3_0" 2 (* C() *);
  set "const_0" 9;
  set "opt_1" 1 (* then: 0 *);
  set "mux3_1" 2;
  set "const_1" 0;
  set "opt_2" 0 (* else: state_0 *);
  set "mux3_2" 2;
  set "const_2" 1;
  Machine_code.set mc out0 (Names.Select.stateful_new_state ~width:1 0);
  let inputs = List.init 21 (fun _ -> [| 0 |]) in
  let outputs = run_outputs desc mc inputs |> List.map (fun p -> p.(0)) in
  let expected = List.init 21 (fun i -> (i + 1) mod 10) in
  Alcotest.(check (list int)) "sampling counter" expected outputs

(* --- Optimizer --------------------------------------------------------------- *)

let random_setup ?(stateful = "if_else_raw") ?(depth = 2) ?(width = 2) ?(seed = 1) () =
  let desc = gen ~depth ~width ~stateful () in
  let mc = Fuzz.random_mc (Prng.create seed) desc in
  (desc, mc)

let test_scc_removes_mc_nodes () =
  let desc, mc = random_setup () in
  let v2 = Optimizer.scc_propagate ~mc desc in
  Alcotest.(check (list string)) "no machine-code names needed" [] (Ir.required_names v2);
  Alcotest.(check bool) "smaller" true (Ir.size v2 < Ir.size desc)

let count_calls (d : Ir.t) =
  let count acc (e : Ir.expr) = match e with Ir.Call _ -> acc + 1 | _ -> acc in
  let n = ref 0 in
  Array.iter
    (fun (st : Ir.stage) ->
      let alu (a : Ir.alu) = n := List.fold_left (Ir.fold_stmt count) !n a.Ir.a_body in
      Array.iter alu st.Ir.s_stateless;
      Array.iter alu st.Ir.s_stateful)
    d.Ir.d_stages;
  !n

let test_inline_removes_calls () =
  let desc, mc = random_setup () in
  let v2 = Optimizer.scc_propagate ~mc desc in
  let v3 = Optimizer.inline_functions v2 in
  Alcotest.(check bool) "v2 has calls" true (count_calls v2 > 0);
  Alcotest.(check int) "v3 call-free" 0 (count_calls v3);
  Alcotest.(check bool) "v3 not larger than v2" true (Ir.size v3 <= Ir.size v2)

let test_scc_is_pure () =
  let desc, mc = random_setup () in
  let before = Ir.size desc in
  let required_before = Ir.required_names desc in
  ignore (Optimizer.scc_propagate ~mc desc);
  ignore (Optimizer.inline_functions (Optimizer.scc_propagate ~mc desc));
  Alcotest.(check int) "size unchanged" before (Ir.size desc);
  Alcotest.(check (list string)) "required unchanged" required_before (Ir.required_names desc)

let test_scc_missing_pair_raises () =
  let desc, mc = random_setup () in
  let name = List.hd (Ir.required_names desc) in
  Machine_code.remove mc name;
  match Optimizer.scc_propagate ~mc desc with
  | _ -> Alcotest.fail "expected Missing"
  | exception Machine_code.Missing n -> Alcotest.(check string) "name" name n

let equal_traces (a : Trace.t) (b : Trace.t) =
  List.for_all2 Phv.equal a.Trace.outputs b.Trace.outputs
  && List.for_all2
       (fun (n1, s1) (n2, s2) -> n1 = n2 && s1 = s2)
       a.Trace.final_state b.Trace.final_state

let check_three_versions ~stateful ~depth ~width ~seed =
  let desc = gen ~depth ~width ~stateful () in
  let prng = Prng.create seed in
  let mc = Fuzz.random_mc prng desc in
  let traffic = Traffic.create ~seed:(seed + 1) ~width ~bits:32 in
  let inputs = Traffic.phvs traffic 40 in
  let v2 = Optimizer.scc_propagate ~mc desc in
  let v3 = Optimizer.apply ~level:Optimizer.Scc_inline ~mc desc in
  let t1 = Engine.run desc ~mc ~inputs in
  let t2 = Engine.run v2 ~mc ~inputs in
  let t3 = Engine.run v3 ~mc ~inputs in
  (* the closure-compiled engine agrees with the interpreter on all versions *)
  let c1 = Compiled.run desc ~mc ~inputs in
  let c2 = Compiled.run v2 ~mc ~inputs in
  let c3 = Compiled.run v3 ~mc ~inputs in
  List.for_all (equal_traces t1) [ t2; t3; c1; c2; c3 ]

(* Machine code with out-of-domain selector values (e.g. a hand-written
   program with a selector beyond the mux arity): the selector chain falls
   through to its last choice in every version and every backend — no crash,
   no divergence between versions. *)
let prop_out_of_domain_selectors =
  QCheck.Test.make ~name:"out-of-domain selectors are total and consistent" ~count:30
    QCheck.(pair small_nat (int_range 1 3))
    (fun (seed, width) ->
      let desc = gen ~depth:2 ~width ~stateful:"pair" () in
      let prng = Prng.create seed in
      (* draw selectors far outside their domains and immediates over the
         full width *)
      let mc = Machine_code.empty () in
      List.iter
        (fun (name, domain) ->
          let v =
            match (domain : Ir.control_domain) with
            | Ir.Selector n -> Prng.int prng (n * 5)
            | Ir.Immediate -> Prng.bits prng 32
          in
          Machine_code.set mc name v)
        (Ir.control_domains desc);
      let inputs = Traffic.phvs (Traffic.create ~seed:(seed + 1) ~width ~bits:32) 25 in
      let t1 = Engine.run desc ~mc ~inputs in
      let t2 = Engine.run (Optimizer.scc_propagate ~mc desc) ~mc ~inputs in
      let c3 = Compiled.run (Optimizer.apply ~level:Optimizer.Scc_inline ~mc desc) ~mc ~inputs in
      equal_traces t1 t2 && equal_traces t1 c3)

let prop_optimizer_equivalence =
  QCheck.Test.make ~name:"v1 = v2 = v3 on random machine code" ~count:60
    QCheck.(
      quad
        (oneofl [ "raw"; "sub"; "pred_raw"; "if_else_raw"; "nested_ifs"; "pair" ])
        (int_range 1 3) (int_range 1 3) small_nat)
    (fun (stateful, depth, width, seed) -> check_three_versions ~stateful ~depth ~width ~seed)

let test_equivalence_all_stateless () =
  List.iter
    (fun stateless ->
      let desc = gen ~depth:2 ~width:2 ~stateless () in
      let mc = Fuzz.random_mc (Prng.create 7) desc in
      let inputs = Traffic.phvs (Traffic.create ~seed:8 ~width:2 ~bits:32) 30 in
      let t1 = Engine.run desc ~mc ~inputs in
      let t2 = Engine.run (Optimizer.scc_propagate ~mc desc) ~mc ~inputs in
      Alcotest.(check bool) ("equivalent: " ^ stateless) true (equal_traces t1 t2))
    [ "stateless_arith"; "stateless_rel"; "stateless_mux"; "stateless_logical"; "stateless_full" ]

(* --- Emission (Fig. 6) -------------------------------------------------------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_emit_versions () =
  let desc, mc = random_setup ~depth:1 ~width:1 () in
  let v1 = Emit.to_string desc in
  let v2 = Emit.to_string (Optimizer.scc_propagate ~mc desc) in
  let v3 = Emit.to_string (Optimizer.apply ~level:Optimizer.Scc_inline ~mc desc) in
  (* v1 looks up machine code at runtime; v2 and v3 do not. *)
  Alcotest.(check bool) "v1 has values[...]" true (contains ~sub:"values[" v1);
  Alcotest.(check bool) "v2 has no values[...]" false (contains ~sub:"values[" v2);
  Alcotest.(check bool) "v3 has no values[...]" false (contains ~sub:"values[" v3);
  (* v3 inlines the mux helpers out of the ALU bodies. *)
  Alcotest.(check bool) "v1 calls input mux" true (contains ~sub:"input_mux_0 (" v1);
  Alcotest.(check bool) "v3 does not call input mux" false (contains ~sub:"input_mux_0 (" v3);
  (* emission is deterministic *)
  Alcotest.(check string) "deterministic" v1 (Emit.to_string desc)

(* --- Fuzz harness -------------------------------------------------------------- *)

let test_fuzz_missing_pairs_detected () =
  let desc, mc = random_setup () in
  let name = List.hd (Ir.required_names desc) in
  Machine_code.remove mc name;
  let spec =
    { Fuzz.spec_init = (fun () -> [||]); spec_step = (fun _ phv -> phv) }
  in
  match
    Fuzz.run_equivalence ~desc ~mc ~spec ~observed:[] ~state_layout:[] ~n:5 ()
  with
  | Fuzz.Missing_pairs [ n ] -> Alcotest.(check string) "name" name n
  | _ -> Alcotest.fail "expected Missing_pairs"

let test_fuzz_passthrough_spec_passes () =
  let desc = gen ~depth:2 ~width:2 () in
  let mc = neutral_mc desc in
  let spec = { Fuzz.spec_init = (fun () -> [||]); spec_step = (fun _ phv -> phv) } in
  match
    Fuzz.run_equivalence ~desc ~mc ~spec ~observed:[ 0; 1 ] ~state_layout:[] ~n:50 ()
  with
  | Fuzz.Pass { phvs = 50 } -> ()
  | o -> Alcotest.failf "expected pass, got %a" Fuzz.pp_outcome o

let test_fuzz_detects_wrong_spec () =
  let desc = gen ~depth:1 ~width:1 () in
  let mc = neutral_mc desc in
  (* spec claims the pipeline increments container 0; the pipeline is identity *)
  let spec =
    {
      Fuzz.spec_init = (fun () -> [||]);
      spec_step = (fun _ phv -> [| (phv.(0) + 1) land 0xFFFFFFFF |]);
    }
  in
  match Fuzz.run_equivalence ~desc ~mc ~spec ~observed:[ 0 ] ~state_layout:[] ~n:20 () with
  | Fuzz.Mismatch { mm_index = 0; mm_kind = `Output 0; _ } -> ()
  | o -> Alcotest.failf "expected mismatch at phv 0, got %a" Fuzz.pp_outcome o

let test_fuzz_state_layout_mismatch () =
  let desc, mc = accumulator_setup () in
  (* spec expects the accumulator state to be the sum *plus one* *)
  let spec =
    {
      Fuzz.spec_init = (fun () -> [| 1 |]);
      spec_step =
        (fun st phv ->
          st.(0) <- st.(0) + phv.(0);
          phv);
    }
  in
  match
    Fuzz.run_equivalence ~desc ~mc ~spec ~observed:[] ~state_layout:[ (sf0, 0, 0) ] ~n:10 ()
  with
  | Fuzz.Mismatch { mm_kind = `State 0; mm_index = -1; _ } -> ()
  | o -> Alcotest.failf "expected state mismatch, got %a" Fuzz.pp_outcome o

let test_random_mc_in_domain () =
  let desc = gen ~depth:2 ~width:3 ~stateful:"pair" () in
  let prng = Prng.create 11 in
  for _ = 1 to 20 do
    let mc = Fuzz.random_mc prng desc in
    List.iter
      (fun (name, domain) ->
        let v = Machine_code.find mc name in
        match (domain : Ir.control_domain) with
        | Ir.Selector n ->
          Alcotest.(check bool) ("selector in domain: " ^ name) true (v >= 0 && v < n)
        | Ir.Immediate -> Alcotest.(check bool) ("immediate in width: " ^ name) true (v >= 0))
      (Ir.control_domains desc)
  done

let qsuite = List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "pipeline"
    [
      ( "structure",
        [
          Alcotest.test_case "required names" `Quick test_required_names_shape;
          Alcotest.test_case "alu counts" `Quick test_alu_count;
          Alcotest.test_case "control domains" `Quick test_control_domains;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "accumulator old state" `Quick test_accumulator_old_state;
          Alcotest.test_case "accumulator new state" `Quick test_accumulator_new_state;
          Alcotest.test_case "passthrough" `Quick test_passthrough;
          Alcotest.test_case "stateless const" `Quick test_stateless_const;
          Alcotest.test_case "raw immediate increment" `Quick test_raw_immediate_increment;
          Alcotest.test_case "latency and order" `Quick test_pipeline_latency_and_order;
          Alcotest.test_case "state visible to next phv" `Quick test_state_visible_to_next_phv;
          Alcotest.test_case "bit-width wraparound" `Quick test_bits_wraparound;
          Alcotest.test_case "if_else_raw sampling" `Quick test_if_else_raw_semantics;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "scc removes mc nodes" `Quick test_scc_removes_mc_nodes;
          Alcotest.test_case "inline removes calls" `Quick test_inline_removes_calls;
          Alcotest.test_case "passes are pure" `Quick test_scc_is_pure;
          Alcotest.test_case "missing pair raises" `Quick test_scc_missing_pair_raises;
          Alcotest.test_case "equivalence across stateless alus" `Quick
            test_equivalence_all_stateless;
        ]
        @ qsuite [ prop_optimizer_equivalence; prop_out_of_domain_selectors ] );
      ("emission", [ Alcotest.test_case "fig6 versions" `Quick test_emit_versions ]);
      ( "fuzz",
        [
          Alcotest.test_case "missing pairs detected" `Quick test_fuzz_missing_pairs_detected;
          Alcotest.test_case "passthrough spec passes" `Quick test_fuzz_passthrough_spec_passes;
          Alcotest.test_case "wrong spec detected" `Quick test_fuzz_detects_wrong_spec;
          Alcotest.test_case "state layout mismatch" `Quick test_fuzz_state_layout_mismatch;
          Alcotest.test_case "random mc in domain" `Quick test_random_mc_in_domain;
        ] );
    ]
