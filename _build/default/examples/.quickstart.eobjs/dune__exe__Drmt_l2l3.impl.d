examples/drmt_l2l3.ml: Drmt Druzhba_core Fmt List
