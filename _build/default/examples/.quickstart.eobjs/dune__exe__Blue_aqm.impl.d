examples/blue_aqm.ml: Compile Compiled Compiler Druzhba_core Fmt Fuzz List Optimizer Spec Sys Traffic
