examples/drmt_l2l3.mli:
