examples/time_travel_debug.mli:
