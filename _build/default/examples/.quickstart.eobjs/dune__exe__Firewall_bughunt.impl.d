examples/firewall_bughunt.ml: Compiler Druzhba_core Fmt Fuzz Ir List Machine_code Names Option Spec
