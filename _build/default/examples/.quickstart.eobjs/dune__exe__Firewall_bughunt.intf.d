examples/firewall_bughunt.mli:
