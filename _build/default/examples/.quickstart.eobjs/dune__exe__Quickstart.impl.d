examples/quickstart.ml: Alu_dsl Array Atoms Dgen Druzhba_core Engine Fmt Ir List Machine_code Names Optimizer Trace Traffic
