examples/blue_aqm.mli:
