examples/time_travel_debug.ml: Compiler Druzhba_core Druzhba_dsim Fmt List Machine_code Names Spec Traffic
