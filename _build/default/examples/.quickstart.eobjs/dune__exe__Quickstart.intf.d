examples/quickstart.mli:
