examples/flowlets_testing.ml: Compiler Druzhba_core Fmt Fuzz List Machine_code Names Spec
