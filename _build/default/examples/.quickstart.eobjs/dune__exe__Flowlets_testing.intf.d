examples/flowlets_testing.mli:
