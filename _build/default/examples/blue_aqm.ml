(* BLUE active queue management: both halves of the algorithm, plus a
   look at what the optimizations do to simulation time (a single-program
   slice of the paper's Table 1).

   BLUE (Feng et al.) maintains a marking probability: increased when the
   queue overflows (rate limited by a freeze window) and decreased when the
   link goes idle.  Table 1 runs the two transactions on 4x2 pipelines — the
   increase on `pair` atoms (two state variables: probability and the last
   update time), the decrease on `sub` atoms.

   Run with:  dune exec examples/blue_aqm.exe *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba

let time_ms f =
  let t0 = Sys.time () in
  let _ = f () in
  (Sys.time () -. t0) *. 1000.

let () =
  List.iter
    (fun name ->
      let bm = Spec.find_exn name in
      Fmt.pr "=== %s (%s atom, %dx%d pipeline) ===%s@." bm.Spec.bm_name bm.Spec.bm_stateful
        bm.Spec.bm_depth bm.Spec.bm_width bm.Spec.bm_source;
      let compiled = Spec.compile_exn bm in
      (match Compiler.Testing.check ~n:5000 compiled with
      | Fuzz.Pass { phvs } -> Fmt.pr "fuzzing: PASS on %d PHVs@." phvs
      | o -> Fmt.pr "fuzzing: %a@." Fuzz.pp_outcome o);
      (* Table-1-style measurement for this program: 50 000 PHVs through the
         three description versions, closure-compiled like the paper's
         rustc-compiled descriptions *)
      let mc = compiled.Compiler.Codegen.c_mc in
      let desc = compiled.Compiler.Codegen.c_desc in
      let init = compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_init in
      let inputs = Traffic.phvs (Traffic.create ~seed:3 ~width:bm.Spec.bm_width ~bits:32) 50_000 in
      let v2 = Optimizer.scc_propagate ~mc desc in
      let v3 = Optimizer.inline_functions v2 in
      let measure d =
        let c = Compile.compile d ~mc in
        time_ms (fun () -> Compiled.run_compiled ~init c ~inputs)
      in
      Fmt.pr "50000 PHVs: unoptimized %.0f ms | scc %.0f ms | scc+inline %.0f ms@.@."
        (measure desc) (measure v2) (measure v3))
    [ "blue_increase"; "blue_decrease" ]
