(* Time-travel debugging a mis-compiled pipeline (paper §7).

   The paper proposes a time-travel debugger so testers can "rewind pipeline
   simulation ticks to past pipeline states to trace origins of erroneous
   behavior".  This example stages that exact investigation:

   1. compile the sampling benchmark and plant a subtle machine-code bug
      (the counter's reset constant becomes 2 instead of 0);
   2. run the correct and buggy pipelines side by side until their output
      traces first diverge;
   3. rewind the buggy session from the divergence, watching the state
      history to find the tick where the corruption entered.

   Run with:  dune exec examples/time_travel_debug.exe *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba
module Debugger = Druzhba_dsim.Debugger

let () =
  let bm = Spec.find_exn "sampling" in
  let compiled = Spec.compile_exn bm in
  let mc = compiled.Compiler.Codegen.c_mc in
  let desc = compiled.Compiler.Codegen.c_desc in
  let alu, _ = List.assoc "count" compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_state in

  (* the planted compiler bug: reset lands on 2, not 0 *)
  let buggy = Machine_code.copy mc in
  Machine_code.set buggy (Names.slot ~alu_prefix:alu ~slot_name:"const_1") 2;

  let inputs = Traffic.phvs (Traffic.create ~seed:11 ~width:1 ~bits:32) 60 in
  let good = Debugger.start desc ~mc ~inputs in
  let bad = Debugger.start desc ~mc:buggy ~inputs in

  (* 1. find the first output divergence *)
  let observed = List.map snd compiled.Compiler.Codegen.c_layout.Compiler.Codegen.l_outputs in
  (match Debugger.first_divergence ~observed good bad with
  | None -> Fmt.pr "no divergence (unexpected)@."
  | Some tick ->
    Fmt.pr "outputs first diverge at tick %d@." tick;
    Fmt.pr "correct session: %a@." Debugger.pp_snapshot (Debugger.goto good tick);
    Fmt.pr "buggy session:   %a@." Debugger.pp_snapshot (Debugger.goto bad tick);

    (* 2. rewind the buggy session to where its state went bad: the counter
       should never hold 2 right after a reset tick (state 10 -> reset).
       Walk backwards until the two sessions' state last agreed. *)
    let diverged_state snap_tick =
      Debugger.state (Debugger.goto bad snap_tick |> fun _ -> bad) ~alu ~slot:0
      <> Debugger.state (Debugger.goto good snap_tick |> fun _ -> good) ~alu ~slot:0
    in
    let rec find_origin t = if t = 0 then 0 else if diverged_state (t - 1) then find_origin (t - 1) else t in
    let origin = find_origin tick in
    Fmt.pr "@.state histories agree up to tick %d and split at tick %d:@." (origin - 1) origin;
    List.iter
      (fun t ->
        let g = Debugger.goto good t |> fun _ -> Debugger.state good ~alu ~slot:0 in
        let b = Debugger.goto bad t |> fun _ -> Debugger.state bad ~alu ~slot:0 in
        Fmt.pr "  tick %2d: count = %a (correct %a)%s@." t
          Fmt.(option ~none:(any "-") int)
          b
          Fmt.(option ~none:(any "-") int)
          g
          (if g <> b then "   <-- corruption" else ""))
      (List.init 4 (fun i -> max 0 (origin - 2) + i));
    Fmt.pr
      "@.the corrupted value first appears when the counter wraps: the reset constant is wrong.@.")
