(* dRMT: an L2/L3 switch program on the disaggregated model (paper §4).

   A small L2-forward + IPv4-route program in the P4 subset is converted to
   a table-dependency DAG, scheduled onto match+action processors under
   crossbar capacity constraints, populated with table entries, and
   simulated against round-robin traffic.  The scheduled execution is
   checked against sequential P4 semantics.

   Run with:  dune exec examples/drmt_l2l3.exe *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba

let p4_program =
  {|
header ethernet {
  dst : 48;
  etype : 16;
}
header ipv4 {
  ttl : 8;
  src : 32;
  dst : 32;
}

action set_port(port) {
  meta.out_port = port;
}
action route(port) {
  meta.out_port = port;
  ipv4.ttl = ipv4.ttl - 1;
  reg.routed = reg.routed + 1;
}
action drop_packet() {
  drop;
  reg.dropped = reg.dropped + 1;
}
action count_acl() {
  reg.acl_hits = reg.acl_hits + 1;
}

table l2_forward {
  key : ethernet.dst;
  match : exact;
  actions : { set_port };
  default : set_port 0;
}
table ipv4_route {
  key : ipv4.dst;
  match : lpm;
  actions : { route, drop_packet };
  default : drop_packet;
}
table acl {
  key : ipv4.src;
  match : ternary;
  actions : { count_acl, drop_packet };
  default : count_acl;
}

control {
  apply l2_forward;
  apply ipv4_route;
  apply acl;
}
|}

let table_entries =
  {|
# L2: two known destinations
entry l2_forward exact 43707 set_port 3
entry l2_forward exact 48059 set_port 5

# L3: a /16 inside a /8 (longest prefix wins)
entry ipv4_route lpm 2886729728/8  route 9
entry ipv4_route lpm 2886737920/16 route 7

# ACL: drop sources whose low byte is 13
entry acl ternary 13&255 drop_packet
|}

let () =
  let p = Drmt.P4.parse p4_program in
  let entries =
    match Drmt.Entries.parse table_entries with Ok e -> e | Error e -> failwith e
  in

  (* the dependency DAG dgen extracts (paper §4.1) *)
  let dag = Drmt.Dag.build p in
  Fmt.pr "dependency DAG: %d nodes, %d edges, critical path %d cycles@."
    (List.length dag.Drmt.Dag.nodes)
    (List.length dag.Drmt.Dag.edges)
    (Drmt.Dag.critical_path dag);

  (* schedule for 4 processors under crossbar limits *)
  let cfg = Drmt.Scheduler.config ~processors:4 ~match_capacity:2 ~action_capacity:4 () in
  let sched = Drmt.Scheduler.schedule cfg dag in
  Fmt.pr "%a@." Drmt.Scheduler.pp sched;
  assert (Drmt.Scheduler.validate dag sched = []);

  (* simulate 2000 packets, round robin across the processors *)
  let r = Drmt.Sim.run ~cfg ~entries ~packets:2000 p in
  let s = r.Drmt.Sim.r_stats in
  Fmt.pr "simulated %d packets in %d cycles (throughput %.3f packets/cycle)@."
    s.Drmt.Sim.st_packets s.Drmt.Sim.st_cycles
    (float_of_int s.Drmt.Sim.st_packets /. float_of_int s.Drmt.Sim.st_cycles);
  Fmt.pr "crossbar peaks: %d matches/cycle (cap 2), %d actions/cycle (cap 4)@."
    s.Drmt.Sim.st_peak_match_per_cycle s.Drmt.Sim.st_peak_action_per_cycle;
  List.iter (fun (t, n) -> Fmt.pr "  table %-12s %4d hits@." t n) s.Drmt.Sim.st_table_hits;
  List.iter (fun (name, v) -> Fmt.pr "  register %-10s = %d@." name v) r.Drmt.Sim.r_registers;

  (* differential check against sequential P4 semantics *)
  let seq = Drmt.Sim.run_sequential ~entries ~packets:2000 p in
  Fmt.pr "scheduled execution matches sequential semantics: %b@."
    (Drmt.Sim.packets_agree r seq)
