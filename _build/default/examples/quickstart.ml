(* Quickstart: the machine model by hand.

   This example builds the smallest interesting Druzhba pipeline — one stage,
   one ALU column, using the paper's Fig. 4 If-Else-RAW atom — writes the
   machine code by hand, and watches PHVs flow through it.  It exercises the
   public API end to end without the compiler: dgen (pipeline generation from
   the ALU DSL), machine code, the optimizer, and dsim.

   Run with:  dune exec examples/quickstart.exe *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba

let () =
  (* 1. The hardware specification: the Fig. 4 atom, parsed from ALU DSL
     source; one pipeline stage; one PHV container. *)
  let stateful = Atoms.find_exn "if_else_raw" in
  let stateless = Atoms.find_exn "stateless_full" in
  Fmt.pr "--- the If-Else-RAW atom (paper Fig. 4), pretty-printed ---@.%s@."
    (Alu_dsl.Printer.to_string stateful);
  let desc = Dgen.generate (Dgen.config ~depth:1 ~width:1 ()) ~stateful ~stateless in
  Fmt.pr "pipeline: depth 1, width 1 -> %d machine-code controls@.@."
    (List.length (Ir.required_names desc));

  (* 2. Machine code, written by hand.  We program the atom as the sampling
     counter: if (state == 9) state = 0 else state = state + 1, and route the
     post-update state to the output. *)
  let mc = Machine_code.empty () in
  List.iter (fun (name, _) -> Machine_code.set mc name 0) (Ir.control_domains desc);
  let sf = Names.stateful_alu ~stage:0 ~alu:0 in
  let set slot v = Machine_code.set mc (Names.slot ~alu_prefix:sf ~slot_name:slot) v in
  set "rel_op_0" 2 (* == *);
  set "opt_0" 0 (* condition LHS: state_0 *);
  set "mux3_0" 2 (* condition RHS: C() *);
  set "const_0" 9;
  set "opt_1" 1 (* then-arm: 0 + ... *);
  set "mux3_1" 2;
  set "const_1" 0 (* ... + 0 = reset *);
  set "opt_2" 0 (* else-arm: state_0 + ... *);
  set "mux3_2" 2;
  set "const_2" 1 (* ... + 1 = increment *);
  Machine_code.set mc
    (Names.output_mux ~stage:0 ~container:0)
    (Names.Select.stateful_new_state ~width:1 0);

  (* 3. Optimize: SCC propagation folds the machine code into the pipeline
     description (the paper's Fig. 6 version 1 -> version 2). *)
  let optimized = Optimizer.scc_propagate ~mc desc in
  Fmt.pr "description size: %d IR nodes unoptimized, %d after SCC propagation@.@." (Ir.size desc)
    (Ir.size optimized);

  (* 4. Simulate 25 PHVs and watch the counter wrap around. *)
  let inputs = Traffic.phvs (Traffic.create ~seed:7 ~width:1 ~bits:32) 25 in
  let trace = Engine.run optimized ~mc ~inputs in
  Fmt.pr "counter values leaving the pipeline:@.";
  List.iteri (fun i out -> Fmt.pr "%s%d" (if i = 0 then "  " else " ") out.(0)) trace.Trace.outputs;
  Fmt.pr "@.";
  List.iter
    (fun (name, state) ->
      Fmt.pr "final state of %s = [%a]@." name Fmt.(array ~sep:(any "; ") int) state)
    trace.Trace.final_state;

  (* 5. The same trace on the unoptimized description: identical behaviour,
     the optimization only changes how fast dsim gets there. *)
  let trace_v1 = Engine.run desc ~mc ~inputs in
  Fmt.pr "unoptimized description produces the same trace: %b@."
    (trace_v1.Trace.outputs = trace.Trace.outputs)
