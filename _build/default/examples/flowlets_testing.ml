(* Flowlet switching through the full compiler-testing workflow (Fig. 5).

   The flowlets program — pick a new next hop whenever the inter-packet gap
   exceeds a threshold — is compiled by the rule-based backend onto the
   paper's Table-1 pipeline for it (4 stages x 5 ALUs, pred_raw atoms); the
   resulting machine code is loaded into the simulated pipeline; random PHVs
   are run through both the pipeline and the program specification; and the
   output traces are compared.

   Run with:  dune exec examples/flowlets_testing.exe *)

module Druzhba = Druzhba_core.Druzhba
open Druzhba

let () =
  let bm = Spec.find_exn "flowlets" in
  Fmt.pr "--- program (Domino subset) ---%s@." bm.Spec.bm_source;

  (* compile at the paper's Table-1 dimensions *)
  let compiled = Spec.compile_exn bm in
  let layout = compiled.Compiler.Codegen.c_layout in
  Fmt.pr "compiled onto a %d x %d pipeline of '%s' atoms: %d machine-code pairs@."
    bm.Spec.bm_depth bm.Spec.bm_width bm.Spec.bm_stateful
    (Machine_code.cardinal compiled.Compiler.Codegen.c_mc);
  List.iter
    (fun (f, c) -> Fmt.pr "  input  pkt.%-8s -> container %d@." f c)
    layout.Compiler.Codegen.l_inputs;
  List.iter
    (fun (f, c) -> Fmt.pr "  output pkt.%-8s -> container %d@." f c)
    layout.Compiler.Codegen.l_outputs;
  List.iter
    (fun (v, (alu, slot)) -> Fmt.pr "  state  %-10s -> %s[%d]@." v alu slot)
    layout.Compiler.Codegen.l_state;

  (* the Fig. 5 loop: simulate random PHVs, compare against the spec *)
  Fmt.pr "@.fuzzing 10000 PHVs against the specification...@.";
  (match Compiler.Testing.check ~n:10_000 compiled with
  | Fuzz.Pass { phvs } -> Fmt.pr "PASS: pipeline and specification agree on %d PHVs@." phvs
  | o -> Fmt.pr "FAIL: %a@." Fuzz.pp_outcome o);

  (* now sabotage the machine code the way a buggy compiler would: pick the
     wrong relational operator for the flowlet-gap test *)
  Fmt.pr "@.injecting a compiler bug (wrong relational opcode)...@.";
  let buggy = Machine_code.copy compiled.Compiler.Codegen.c_mc in
  let victim =
    (* flip the relational opcode of the stateful ALU that holds saved_hop:
       its predicate decides when the flowlet switches next hops *)
    let alu, _ = List.assoc "saved_hop" layout.Compiler.Codegen.l_state in
    Names.slot ~alu_prefix:alu ~slot_name:"rel_op_0"
  in
  Machine_code.set buggy victim ((Machine_code.find buggy victim + 1) mod 4);
  (match Druzhba.Workflow.test_machine_code ~phvs:10_000 compiled ~mc:buggy with
  | { Druzhba.Workflow.outcome = Fuzz.Mismatch mm; _ } ->
    Fmt.pr "CAUGHT: %a@." Fuzz.pp_outcome (Fuzz.Mismatch mm)
  | { Druzhba.Workflow.outcome; _ } ->
    Fmt.pr "NOT CAUGHT (unexpected): %a@." Fuzz.pp_outcome outcome);

  (* and the paper's other failure class: deleting the output-mux pairs *)
  Fmt.pr "@.injecting the case study's missing-pairs failure...@.";
  let missing = Machine_code.copy compiled.Compiler.Codegen.c_mc in
  Machine_code.remove missing (Names.output_mux ~stage:0 ~container:0);
  match Druzhba.Workflow.test_machine_code ~phvs:100 compiled ~mc:missing with
  | { Druzhba.Workflow.outcome = Fuzz.Missing_pairs names; _ } ->
    Fmt.pr "CAUGHT: missing machine code pairs: %a@." Fmt.(list ~sep:(any ", ") string) names
  | { Druzhba.Workflow.outcome; _ } -> Fmt.pr "NOT CAUGHT (unexpected): %a@." Fuzz.pp_outcome outcome
