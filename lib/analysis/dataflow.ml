(* Static dataflow analysis over pipeline descriptions.

   Druzhba detects mis-compiled machine code *dynamically*, by diffing
   simulation traces (paper §3.3).  This module adds the static layer: an
   abstract interpreter over {!Druzhba_pipeline.Ir} that computes, without
   running a single PHV,

   - a constant-interval approximation of every value ({!interval}),
   - the definition sites each value can flow from ({!Deps}): PHV
     containers, state slots, and machine-code controls,
   - which output-mux arm each container selects under a given machine-code
     program ({!liveness}), and hence which ALUs are dead,
   - a whole-pipeline provenance graph ({!provenance}) whose backward
     {!slice} answers "which ALUs / controls / containers can this output
     have flowed through" — the Gauntlet-style triage used by the fuzz
     workflow on a trace mismatch.

   Precision comes from evaluating helper calls at their call site: the
   trailing "ctrl" argument of a mux helper is an [Ir.Mc] lookup, so with a
   machine-code program in hand its interval is a single constant, the
   selector chain in the helper body folds to one arm, and only that arm's
   operand contributes dependencies — the static analogue of SCC
   propagation (§3.4).  Without machine code, selector intervals fall back
   to the control domain [[0, n)] from [Ir.control_domains] and the
   analysis is conservative (every arm reachable, every ALU live).

   The IR is loop-free (straight-line statements, expression conditionals),
   so abstract evaluation terminates without widening. *)

module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir

(* --- Constant intervals --------------------------------------------------- *)

(* [Iv (lo, hi)] is the inclusive range; [Top] is an unknown value outside
   any bound (raw machine-code immediates live in control space and are only
   bounded once a [Trunc] brings them onto the datapath). *)
type interval = Top | Iv of int * int

let pp_interval ppf = function
  | Top -> Fmt.string ppf "top"
  | Iv (lo, hi) when lo = hi -> Fmt.int ppf lo
  | Iv (lo, hi) -> Fmt.pf ppf "[%d, %d]" lo hi

let full bits = Iv (0, Value.max_value bits)
let of_const n = Iv (n, n)

let join a b =
  match (a, b) with
  | Top, _ | _, Top -> Top
  | Iv (al, ah), Iv (bl, bh) -> Iv (min al bl, max ah bh)

let trunc bits = function
  | Iv (lo, hi) when lo >= 0 && hi <= Value.max_value bits -> Iv (lo, hi)
  | Top | Iv _ -> full bits

(* Three-valued truthiness (the DSL encodes booleans as zero / non-zero). *)
let truth = function
  | Iv (0, 0) -> `False
  | Iv (lo, _) when lo > 0 -> `True
  | Iv (_, hi) when hi < 0 -> `True
  | Top | Iv _ -> `Unknown

let bool3 = function `True -> Iv (1, 1) | `False -> Iv (0, 0) | `Unknown -> Iv (0, 1)

let abs_unop bits (op : Ir.unop) a =
  match op with
  | Ir.Neg -> ( match a with Iv (0, 0) -> Iv (0, 0) | _ -> full bits)
  | Ir.Not -> (
    match truth a with `True -> Iv (0, 0) | `False -> Iv (1, 1) | `Unknown -> Iv (0, 1))

(* Keeps an arithmetic result interval only when no wrap-around is possible
   at the datapath width. *)
let clamp bits lo hi = if lo >= 0 && hi <= Value.max_value bits then Iv (lo, hi) else full bits

(* Native-int overflow guard for abstract multiplication. *)
let mul_safe v = v > -0x4000_0000 && v < 0x4000_0000

let rec abs_binop bits (op : Ir.binop) a b =
  match op with
  | Ir.Add -> (
    match (a, b) with Iv (al, ah), Iv (bl, bh) -> clamp bits (al + bl) (ah + bh) | _ -> full bits)
  | Ir.Sub -> (
    match (a, b) with Iv (al, ah), Iv (bl, bh) -> clamp bits (al - bh) (ah - bl) | _ -> full bits)
  | Ir.Mul -> (
    match (a, b) with
    | Iv (al, ah), Iv (bl, bh) when List.for_all mul_safe [ al; ah; bl; bh ] ->
      let ps = [ al * bl; al * bh; ah * bl; ah * bh ] in
      clamp bits (List.fold_left min max_int ps) (List.fold_left max min_int ps)
    | _ -> full bits)
  | Ir.Div | Ir.Mod -> full bits
  | Ir.Eq -> (
    match (a, b) with
    | Iv (al, ah), Iv (bl, bh) ->
      if al = ah && bl = bh && al = bl then Iv (1, 1)
      else if ah < bl || bh < al then Iv (0, 0)
      else Iv (0, 1)
    | _ -> Iv (0, 1))
  | Ir.Neq -> (
    match abs_binop bits Ir.Eq a b with
    | Iv (1, 1) -> Iv (0, 0)
    | Iv (0, 0) -> Iv (1, 1)
    | _ -> Iv (0, 1))
  | Ir.Lt -> (
    match (a, b) with
    | Iv (al, ah), Iv (bl, bh) ->
      if ah < bl then Iv (1, 1) else if al >= bh then Iv (0, 0) else Iv (0, 1)
    | _ -> Iv (0, 1))
  | Ir.Gt -> (
    match (a, b) with
    | Iv (al, ah), Iv (bl, bh) ->
      if al > bh then Iv (1, 1) else if ah <= bl then Iv (0, 0) else Iv (0, 1)
    | _ -> Iv (0, 1))
  | Ir.Le -> (
    match (a, b) with
    | Iv (al, ah), Iv (bl, bh) ->
      if ah <= bl then Iv (1, 1) else if al > bh then Iv (0, 0) else Iv (0, 1)
    | _ -> Iv (0, 1))
  | Ir.Ge -> (
    match (a, b) with
    | Iv (al, ah), Iv (bl, bh) ->
      if al >= bh then Iv (1, 1) else if ah < bl then Iv (0, 0) else Iv (0, 1)
    | _ -> Iv (0, 1))
  | Ir.And -> bool3 (match (truth a, truth b) with
    | `False, _ | _, `False -> `False
    | `True, `True -> `True
    | _ -> `Unknown)
  | Ir.Or -> bool3 (match (truth a, truth b) with
    | `True, _ | _, `True -> `True
    | `False, `False -> `False
    | _ -> `Unknown)

(* --- Dependencies (def-use atoms) ----------------------------------------- *)

(* What a value, as seen from inside one ALU, can depend on: a container of
   the incoming PHV, a slot of the executing stateful ALU's state, or a
   machine-code control.  The provenance graph later rebases these onto
   pipeline-wide nodes. *)
module Dep = struct
  type t =
    | Dphv of int
    | Dstate of int
    | Dctrl of string

  let compare = Stdlib.compare
end

module Deps = Set.Make (Dep)

(* --- Abstract evaluation --------------------------------------------------- *)

type ctx = {
  cx_bits : Value.width;
  cx_helpers : (string, Ir.helper) Hashtbl.t;
  cx_mc : Machine_code.t option;
  cx_domains : (string, Ir.control_domain) Hashtbl.t;
}

let ctx_of ?mc (d : Ir.t) =
  let domains = Hashtbl.create 64 in
  List.iter (fun (n, dom) -> Hashtbl.replace domains n dom) (Ir.control_domains d);
  { cx_bits = d.Ir.d_bits; cx_helpers = d.Ir.d_helpers; cx_mc = mc; cx_domains = domains }

(* The interval of one machine-code control: the exact value when a program
   is in hand, its declared domain otherwise. *)
let control_interval ctx name =
  let from_domain () =
    match Hashtbl.find_opt ctx.cx_domains name with
    | Some (Ir.Selector n) -> Iv (0, n - 1)
    | Some Ir.Immediate | None -> Top
  in
  match ctx.cx_mc with
  | None -> from_domain ()
  | Some mc -> (
    match Machine_code.find_opt mc name with Some v -> of_const v | None -> from_domain ())

(* Defensive bound on helper-call nesting; dgen-generated helpers are
   call-free, so this only triggers on hand-built recursive descriptions. *)
let max_call_depth = 64

(* Evaluates an expression to (interval, dependency set).  Helper calls bind
   the abstract arguments to the parameters and descend into the body, so a
   constant ctrl prunes the selector chain and unselected operands drop out
   of the result — call-site precision. *)
let rec eval ctx depth env (e : Ir.expr) : interval * Deps.t =
  match e with
  | Ir.Const n -> (of_const n, Deps.empty)
  | Ir.Var x -> (
    match List.assoc_opt x env with Some r -> r | None -> (full ctx.cx_bits, Deps.empty))
  | Ir.Mc name -> (control_interval ctx name, Deps.singleton (Dep.Dctrl name))
  | Ir.Trunc a ->
    let i, d = eval ctx depth env a in
    (trunc ctx.cx_bits i, d)
  | Ir.Phv c -> (full ctx.cx_bits, Deps.singleton (Dep.Dphv c))
  | Ir.State k -> (full ctx.cx_bits, Deps.singleton (Dep.Dstate k))
  | Ir.Unop (op, a) ->
    let i, d = eval ctx depth env a in
    (abs_unop ctx.cx_bits op i, d)
  | Ir.Binop (op, a, b) ->
    let ia, da = eval ctx depth env a in
    let ib, db = eval ctx depth env b in
    (abs_binop ctx.cx_bits op ia ib, Deps.union da db)
  | Ir.Cond (c, a, b) -> (
    let ci, cd = eval ctx depth env c in
    match truth ci with
    | `True ->
      let i, d = eval ctx depth env a in
      (i, Deps.union cd d)
    | `False ->
      let i, d = eval ctx depth env b in
      (i, Deps.union cd d)
    | `Unknown ->
      let ia, da = eval ctx depth env a in
      let ib, db = eval ctx depth env b in
      (join ia ib, Deps.union cd (Deps.union da db)))
  | Ir.Call (name, args) -> (
    let evaluated = List.map (eval ctx depth env) args in
    let arg_deps = List.fold_left (fun acc (_, d) -> Deps.union acc d) Deps.empty evaluated in
    match Hashtbl.find_opt ctx.cx_helpers name with
    | Some h when List.length h.Ir.h_params = List.length args && depth < max_call_depth ->
      eval ctx (depth + 1) (List.combine h.Ir.h_params evaluated) h.Ir.h_body
    | Some _ | None ->
      (* arity mismatch / unknown helper: the lint reports it; stay sound *)
      (full ctx.cx_bits, arg_deps))

(* --- Per-ALU facts --------------------------------------------------------- *)

type branch_kind = Then_branch | Else_branch

(* One [If] arm that can never execute under the analysed machine code.
   [db_if_index] numbers the [If] statements the analysis visited, in
   pre-order over the ALU body. *)
type dead_branch = { db_if_index : int; db_dead : branch_kind }

type facts = {
  fa_output : interval * Deps.t;  (* the ALU's output value over all paths *)
  fa_stores : (int * Deps.t) list;
      (* state slots with a reachable [Store], with the deciding branch
         conditions folded into each slot's dependency set *)
  fa_state_reads : int list;  (* slots read anywhere in the body (syntactic) *)
  fa_dead_branches : dead_branch list;
}

let alu_facts ctx (alu : Ir.alu) : facts =
  let stores : (int, Deps.t ref) Hashtbl.t = Hashtbl.create 4 in
  let outs = ref [] in
  let dead = ref [] in
  let if_counter = ref (-1) in
  let add_store k d =
    match Hashtbl.find_opt stores k with
    | Some r -> r := Deps.union !r d
    | None -> Hashtbl.add stores k (ref d)
  in
  (* [path] carries the dependencies of every branch condition on the way
     here (control dependencies).  Returns whether execution can fall
     through the statement list. *)
  let rec go env path (stmts : Ir.stmt list) =
    match stmts with
    | [] -> true
    | Ir.Let (x, e) :: rest -> go ((x, eval ctx 0 env e) :: env) path rest
    | Ir.Store (k, e) :: rest ->
      let _, d = eval ctx 0 env e in
      add_store k (Deps.union path d);
      go env path rest
    | Ir.Return e :: _ ->
      let i, d = eval ctx 0 env e in
      outs := (i, Deps.union path d) :: !outs;
      false
    | Ir.If (c, a, b) :: rest ->
      incr if_counter;
      let my_index = !if_counter in
      let ci, cd = eval ctx 0 env c in
      let path' = Deps.union path cd in
      let fallthrough =
        match truth ci with
        | `True ->
          if b <> [] then dead := { db_if_index = my_index; db_dead = Else_branch } :: !dead;
          go env path' a
        | `False ->
          if a <> [] then dead := { db_if_index = my_index; db_dead = Then_branch } :: !dead;
          go env path' b
        | `Unknown ->
          let fa = go env path' a in
          let fb = go env path' b in
          fa || fb
      in
      if fallthrough then go env path' rest else false
  in
  let default = eval ctx 0 [] alu.Ir.a_default_output in
  let fell_through = go [] Deps.empty alu.Ir.a_body in
  let outputs = if fell_through || !outs = [] then default :: !outs else !outs in
  let fa_output =
    List.fold_left
      (fun (i, d) (i', d') -> (join i i', Deps.union d d'))
      (List.hd outputs) (List.tl outputs)
  in
  let fa_stores =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) stores []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let fa_state_reads =
    let collect acc e = match e with Ir.State k -> k :: acc | _ -> acc in
    let acc = List.fold_left (Ir.fold_stmt collect) [] alu.Ir.a_body in
    let acc = Ir.fold_expr collect acc alu.Ir.a_default_output in
    List.sort_uniq compare acc
  in
  { fa_output; fa_stores; fa_state_reads; fa_dead_branches = List.rev !dead }

(* --- Output-mux selection and ALU liveness --------------------------------- *)

(* One arm of a stage's output mux, in the machine-code value order built by
   [Dgen.output_mux_helper] / [Names.Select]. *)
type mux_source =
  | Src_stateless of int
  | Src_stateful of int  (* the ALU's output value *)
  | Src_stateful_new of int  (* the ALU's post-execution state slot 0 *)
  | Src_passthrough

let pp_mux_source ppf = function
  | Src_stateless j -> Fmt.pf ppf "stateless ALU %d" j
  | Src_stateful j -> Fmt.pf ppf "stateful ALU %d" j
  | Src_stateful_new j -> Fmt.pf ppf "stateful ALU %d (new state)" j
  | Src_passthrough -> Fmt.string ppf "passthrough"

let all_sources width =
  List.init width (fun j -> Src_stateless j)
  @ List.init width (fun j -> Src_stateful j)
  @ List.init width (fun j -> Src_stateful_new j)
  @ [ Src_passthrough ]

(* Maps a raw selector value to the arm the selector chain picks.  The chain
   falls through to its last arm — the container's incoming value — for
   every value outside [0, 3*width), which is how out-of-range machine code
   behaves at simulation time. *)
let mux_source_of_ctrl ~width v =
  if v < 0 then Src_passthrough
  else if v < width then Src_stateless v
  else if v < 2 * width then Src_stateful (v - width)
  else if v < 3 * width then Src_stateful_new (v - (2 * width))
  else Src_passthrough

type liveness = {
  lv_sources : mux_source list array array;
      (* stage -> container -> arms the output mux can select *)
  lv_stateless : bool array array;  (* stage -> ALU index -> output selectable *)
  lv_stateful : bool array array;
}

(* With machine code, each mux resolves to exactly one arm and deadness is
   exact; without (or with the mux pair missing), every arm is reachable and
   everything is live.  A "dead" stateful ALU still mutates its state, which
   the trace's final-state dump observes — callers that drop it must accept
   that divergence. *)
let liveness ?mc (d : Ir.t) : liveness =
  let w = d.Ir.d_width in
  let sources =
    Array.map
      (fun (st : Ir.stage) ->
        Array.map
          (fun name ->
            match mc with
            | None -> all_sources w
            | Some mc -> (
              match Machine_code.find_opt mc name with
              | None -> all_sources w
              | Some v -> [ mux_source_of_ctrl ~width:w v ]))
          st.Ir.s_output_muxes)
      d.Ir.d_stages
  in
  let stateless =
    Array.map (fun (st : Ir.stage) -> Array.make (Array.length st.Ir.s_stateless) false) d.Ir.d_stages
  in
  let stateful =
    Array.map (fun (st : Ir.stage) -> Array.make (Array.length st.Ir.s_stateful) false) d.Ir.d_stages
  in
  Array.iteri
    (fun s per_container ->
      Array.iter
        (List.iter (fun src ->
             match src with
             | Src_stateless j -> if j < Array.length stateless.(s) then stateless.(s).(j) <- true
             | Src_stateful j | Src_stateful_new j ->
               if j < Array.length stateful.(s) then stateful.(s).(j) <- true
             | Src_passthrough -> ()))
        per_container)
    sources;
  { lv_sources = sources; lv_stateless = stateless; lv_stateful = stateful }

(* --- Whole-pipeline analysis ----------------------------------------------- *)

type analysis = {
  an_desc : Ir.t;
  an_liveness : liveness;
  an_stateless : facts array array;  (* stage -> ALU index -> facts *)
  an_stateful : facts array array;
}

let analyse ?mc (d : Ir.t) : analysis =
  let ctx = ctx_of ?mc d in
  {
    an_desc = d;
    an_liveness = liveness ?mc d;
    an_stateless =
      Array.map (fun (st : Ir.stage) -> Array.map (alu_facts ctx) st.Ir.s_stateless) d.Ir.d_stages;
    an_stateful =
      Array.map (fun (st : Ir.stage) -> Array.map (alu_facts ctx) st.Ir.s_stateful) d.Ir.d_stages;
  }

(* --- Provenance graph ------------------------------------------------------ *)

(* A node of the pipeline-wide dataflow graph.  Container nodes live on
   stage boundaries: [Ncontainer (s, c)] is container [c] of the PHV
   *entering* stage [s], so [s = 0] is the pipeline input and [s = depth]
   the pipeline output. *)
type node =
  | Ncontainer of int * int  (* stage boundary, container *)
  | Nalu of string  (* an ALU's output value *)
  | Nstate of string * int  (* persistent state slot of a stateful ALU *)
  | Ncontrol of string  (* machine-code pair *)

let pp_node ppf = function
  | Ncontainer (s, c) -> Fmt.pf ppf "container %d (entering stage %d)" c s
  | Nalu name -> Fmt.pf ppf "alu %s" name
  | Nstate (name, k) -> Fmt.pf ppf "state %s[%d]" name k
  | Ncontrol name -> Fmt.pf ppf "control %s" name

type provenance = {
  pv_depth : int;
  pv_width : int;
  pv_deps : (node, node list) Hashtbl.t;  (* node -> nodes its value flows from *)
}

let provenance ?mc (d : Ir.t) : provenance =
  let an = analyse ?mc d in
  let deps : (node, node list) Hashtbl.t = Hashtbl.create 256 in
  (* Rebases an ALU-local dependency set onto graph nodes. *)
  let rebase stage alu_name ds =
    Deps.fold
      (fun dep acc ->
        (match dep with
        | Dep.Dphv c -> Ncontainer (stage, c)
        | Dep.Dstate k -> Nstate (alu_name, k)
        | Dep.Dctrl n -> Ncontrol n)
        :: acc)
      ds []
    |> List.rev
  in
  Array.iteri
    (fun s (st : Ir.stage) ->
      let do_alu (facts : facts array) i (a : Ir.alu) =
        let f = facts.(i) in
        Hashtbl.replace deps (Nalu a.Ir.a_name) (rebase s a.Ir.a_name (snd f.fa_output));
        List.iter
          (fun (k, dset) -> Hashtbl.replace deps (Nstate (a.Ir.a_name, k)) (rebase s a.Ir.a_name dset))
          f.fa_stores
      in
      Array.iteri (do_alu an.an_stateless.(s)) st.Ir.s_stateless;
      Array.iteri (do_alu an.an_stateful.(s)) st.Ir.s_stateful;
      Array.iteri
        (fun c mux_name ->
          let arms =
            List.concat_map
              (fun src ->
                match src with
                | Src_stateless j when j < Array.length st.Ir.s_stateless ->
                  [ Nalu st.Ir.s_stateless.(j).Ir.a_name ]
                | Src_stateful j when j < Array.length st.Ir.s_stateful ->
                  [ Nalu st.Ir.s_stateful.(j).Ir.a_name ]
                | Src_stateful_new j when j < Array.length st.Ir.s_stateful ->
                  [ Nstate (st.Ir.s_stateful.(j).Ir.a_name, 0) ]
                | Src_passthrough -> [ Ncontainer (s, c) ]
                | Src_stateless _ | Src_stateful _ | Src_stateful_new _ -> [])
              an.an_liveness.lv_sources.(s).(c)
          in
          Hashtbl.replace deps (Ncontainer (s + 1, c)) (Ncontrol mux_name :: arms))
        st.Ir.s_output_muxes)
    d.Ir.d_stages;
  { pv_depth = d.Ir.d_depth; pv_width = d.Ir.d_width; pv_deps = deps }

(* Everything [start]'s value can have flowed through, in deterministic
   depth-first pre-order from [start] (which is included). *)
let slice (pv : provenance) (start : node) : node list =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec go n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      order := n :: !order;
      List.iter go (match Hashtbl.find_opt pv.pv_deps n with Some l -> l | None -> [])
    end
  in
  go start;
  List.rev !order

(* The pipeline-output node for container [c]. *)
let output_node pv c = Ncontainer (pv.pv_depth, c)
