(* Translation-validation obligations and the verdict ladder.

   For every stage, output container and stateful-ALU state slot, two
   descriptions of the same pipeline induce one *obligation*: the symbolic
   transfer functions computed by {!Symbolic} must agree for every
   assignment of the free atoms (input containers, pre-execution state,
   residual controls).  Per-stage agreement composes: stages are
   feed-forward and each packet visits each ALU once, so identical stage
   transfer functions give identical simulation traces by induction over
   ticks — the static counterpart of the paper's §3.3 trace diff.

   Each obligation climbs a ladder of decision procedures, cheapest first:

   - "proved":   the two normal forms are structurally identical;
   - "pruned":   the known-bits + interval product domain decides —
                 both sides can set no bits (always 0), or their value
                 ranges are disjoint (a refutation, with witness);
   - "enumerated": the assignment space at the obligation's width is small
                 enough to check exhaustively;
   - "refuted":  a concrete assignment separates the two sides — every
                 refutation carries a replayable {!witness};
   - "witness-deferred": no decision; deterministic boundary + random
                 sampling found no separator, and the sampled assignments
                 are emitted as directed-trial candidates for the fuzzing
                 campaign (static analysis seeding the dynamic oracle).

   A refutation is always sound (it is a checked concrete counterexample);
   a "witness-deferred" verdict is never reported as a proof. *)

module Value = Druzhba_util.Value
module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Interp = Druzhba_pipeline.Interp

(* --- Verdicts -------------------------------------------------------------- *)

type witness = {
  w_assign : (Symbolic.atom * int) list;  (* total over both sides' atoms, sorted *)
  w_lhs : int;  (* value of the reference side under [w_assign] *)
  w_rhs : int;  (* value of the candidate side under [w_assign] *)
}

type method_ =
  | Mnorm  (* structural equality of normal forms *)
  | Mabstract  (* known-bits + interval product domain *)
  | Menum of int  (* exhaustive enumeration of n assignments *)
  | Msample of int  (* boundary + random sampling, n assignments *)

type status =
  | Proved of method_
  | Refuted of method_ * witness
  | Deferred of (Symbolic.atom * int) list list  (* directed-trial candidates *)

(* ISSUE taxonomy bucket for reports. *)
let taxonomy = function
  | Proved Mnorm -> "proved"
  | Proved Mabstract -> "pruned"
  | Proved (Menum _) -> "enumerated"
  | Proved (Msample _) -> "witness-deferred" (* sampling never proves; defensive *)
  | Refuted _ -> "refuted"
  | Deferred _ -> "witness-deferred"

let buckets = [ "proved"; "pruned"; "enumerated"; "witness-deferred"; "refuted" ]

type subject =
  | Container of int * int  (* stage index, container index *)
  | State_slot of string * int  (* stateful ALU name, slot *)

let pp_subject ppf = function
  | Container (s, c) -> Fmt.pf ppf "stage %d container %d" s c
  | State_slot (alu, k) -> Fmt.pf ppf "%s slot %d" alu k

let subject_id = function
  | Container (s, c) -> Printf.sprintf "stage%d/container%d" s c
  | State_slot (alu, k) -> Printf.sprintf "%s/slot%d" alu k

type obligation = {
  ob_subject : subject;
  ob_lhs_name : string;  (* reference side, e.g. "unoptimized" *)
  ob_rhs_name : string;  (* candidate side, e.g. pass "scc_propagate" *)
  ob_lhs : Symbolic.sym;
  ob_rhs : Symbolic.sym;
  ob_status : status;
  ob_note : string;  (* diagnostics, e.g. why evaluation bailed out *)
}

let pp_assign ppf assign =
  Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") Symbolic.pp_atom int)) ppf assign

let pp_witness ppf w =
  Fmt.pf ppf "@[<h>{%a} -> lhs=%d rhs=%d@]" pp_assign w.w_assign w.w_lhs w.w_rhs

let pp_status ppf = function
  | Proved m ->
    let how =
      match m with
      | Mnorm -> "normal forms identical"
      | Mabstract -> "abstract domain"
      | Menum n -> Printf.sprintf "enumerated %d assignments" n
      | Msample n -> Printf.sprintf "sampled %d assignments" n
    in
    Fmt.pf ppf "proved (%s)" how
  | Refuted (_, w) -> Fmt.pf ppf "REFUTED %a" pp_witness w
  | Deferred cs -> Fmt.pf ppf "witness-deferred (%d candidates)" (List.length cs)

let pp_obligation ppf ob =
  Fmt.pf ppf "@[<h>%s vs %s, %a: %a@]" ob.ob_lhs_name ob.ob_rhs_name pp_subject ob.ob_subject
    pp_status ob.ob_status

let is_refuted ob = match ob.ob_status with Refuted _ -> true | _ -> false
let is_deferred ob = match ob.ob_status with Deferred _ -> true | _ -> false

let summary obs =
  List.map (fun b -> (b, List.length (List.filter (fun ob -> taxonomy ob.ob_status = b) obs)))
    buckets

(* --- The decision ladder --------------------------------------------------- *)

type config = {
  cf_bits : Value.width;
  cf_enum_budget : int;  (* max assignments for the exhaustive tier *)
  cf_samples : int;  (* random assignments in the sampling tier *)
  cf_candidates : int;  (* deferred candidates to keep for the fuzzer *)
  cf_seed : int;
}

let config ?(enum_budget = 1 lsl 16) ?(samples = 256) ?(candidates = 8) ?(seed = 0x5eed) bits =
  { cf_bits = bits; cf_enum_budget = enum_budget; cf_samples = samples;
    cf_candidates = candidates; cf_seed = seed }

let union_atoms lhs rhs =
  Symbolic.Atom_set.elements
    (Symbolic.Atom_set.union (Symbolic.atom_set lhs) (Symbolic.atom_set rhs))

let assign_of atoms values =
  let assign = List.combine atoms values in
  fun a -> match List.assoc_opt a assign with Some v -> v | None -> 0

let eval_pair bits lhs rhs assign =
  ( Symbolic.eval_concrete ~bits ~assign lhs,
    Symbolic.eval_concrete ~bits ~assign rhs )

let witness_of bits atoms values lhs rhs =
  let assign = assign_of atoms values in
  let l, r = eval_pair bits lhs rhs assign in
  { w_assign = List.combine atoms values; w_lhs = l; w_rhs = r }

(* Tier 2: the known-bits x interval product domain.  Equality holds when
   neither side can set any bit; inequality (everywhere!) holds when the
   two value ranges are disjoint — then any assignment is a witness. *)
let abstract_tier cfg lhs rhs =
  let bits = cfg.cf_bits in
  if Symbolic.may_mask bits lhs = 0 && Symbolic.may_mask bits rhs = 0 then Some (Proved Mabstract)
  else
    match (Symbolic.interval bits lhs, Symbolic.interval bits rhs) with
    | Dataflow.Iv (ll, lh), Dataflow.Iv (rl, rh) when lh < rl || rh < ll ->
      let atoms = union_atoms lhs rhs in
      let w = witness_of bits atoms (List.map (fun _ -> 0) atoms) lhs rhs in
      (* The domains are sound, so the ranges really are disjoint; check
         anyway and fall through rather than emit a bogus witness. *)
      if w.w_lhs <> w.w_rhs then Some (Refuted (Mabstract, w)) else None
    | _ -> None

(* Tier 3: exhaustive enumeration when the assignment space is small.
   Control atoms range over all of control space and are never enumerable;
   datapath atoms range over [0, 2^bits). *)
let enum_tier cfg lhs rhs =
  let bits = cfg.cf_bits in
  let atoms = union_atoms lhs rhs in
  let enumerable = List.for_all (function Symbolic.Actrl _ -> false | _ -> true) atoms in
  let n = List.length atoms in
  if (not enumerable) || n * bits > 60 then None
  else
    let total = 1 lsl (n * bits) in
    if total > cfg.cf_enum_budget then None
    else begin
      let values = Array.make n 0 in
      let max_v = Value.max_value bits in
      let rec odometer i =
        if i < 0 then false
        else if values.(i) < max_v then (values.(i) <- values.(i) + 1; true)
        else (values.(i) <- 0; odometer (i - 1))
      in
      let result = ref (Proved (Menum total)) in
      (try
         for _ = 0 to total - 1 do
           let vs = Array.to_list values in
           let l, r = eval_pair bits lhs rhs (assign_of atoms vs) in
           if l <> r then begin
             result := Refuted (Menum total, { w_assign = List.combine atoms vs; w_lhs = l; w_rhs = r });
             raise Exit
           end;
           ignore (odometer (n - 1))
         done
       with Exit -> ());
      Some !result
    end

(* Tier 4: deterministic boundary probing then seeded random sampling.
   Any separating assignment is a sound refutation; agreement on every
   sample defers the obligation, handing the first sampled assignments to
   the campaign as directed trials. *)
let sample_tier cfg lhs rhs =
  let bits = cfg.cf_bits in
  let atoms = union_atoms lhs rhs in
  let n = List.length atoms in
  let max_v = Value.max_value bits in
  let consts = List.sort_uniq Stdlib.compare (Symbolic.constants lhs @ Symbolic.constants rhs) in
  let boundary =
    List.sort_uniq Stdlib.compare
      (0 :: 1 :: max_v :: (max_v - 1)
      :: List.concat_map
           (fun c -> List.filter (fun v -> v >= 0) [ c; Value.mask bits c; c - 1; c + 1 ])
           consts)
  in
  let boundary = List.filter (fun v -> v >= 0) boundary in
  let candidates = ref [] in
  let seen = Hashtbl.create 64 in
  let refuted = ref None in
  let tried = ref 0 in
  let try_values vs =
    if !refuted = None && not (Hashtbl.mem seen vs) then begin
      Hashtbl.add seen vs ();
      incr tried;
      let l, r = eval_pair bits lhs rhs (assign_of atoms vs) in
      if l <> r then
        refuted := Some { w_assign = List.combine atoms vs; w_lhs = l; w_rhs = r }
      else if List.length !candidates < cfg.cf_candidates then
        candidates := List.combine atoms vs :: !candidates
    end
  in
  (* Boundary pass: every atom at a boundary value, the others at 0 — plus
     the uniform all-v probes that exercise thresholds against each other. *)
  List.iter (fun v -> try_values (List.init n (fun _ -> min v max_v))) boundary;
  List.iteri
    (fun i _ ->
      List.iter (fun v -> try_values (List.init n (fun j -> if i = j then min v max_v else 0)))
        boundary)
    atoms;
  (* Random pass: mix boundary values and uniform draws per atom. *)
  let prng = Prng.create cfg.cf_seed in
  let boundary_arr = Array.of_list boundary in
  let draw (a : Symbolic.atom) =
    let from_boundary = Array.length boundary_arr > 0 && Prng.bool prng in
    let v =
      if from_boundary then boundary_arr.(Prng.int prng (Array.length boundary_arr))
      else Prng.bits prng bits
    in
    match a with Symbolic.Actrl _ -> v (* control space: raw value *) | _ -> min v max_v
  in
  (try
     for _ = 1 to cfg.cf_samples do
       try_values (List.map draw atoms);
       if !refuted <> None then raise Exit
     done
   with Exit -> ());
  match !refuted with
  | Some w -> Refuted (Msample !tried, w)
  | None -> Deferred (List.rev !candidates)

let decide cfg lhs rhs : status =
  if Symbolic.equal lhs rhs then Proved Mnorm
  else
    match abstract_tier cfg lhs rhs with
    | Some s -> s
    | None -> (
      match enum_tier cfg lhs rhs with Some s -> s | None -> sample_tier cfg lhs rhs)

(* --- Obligation generation ------------------------------------------------- *)

(* Per-stage symbolic transfer functions with free atoms at the stage
   boundary: input containers are [Phv c], pre-execution state is
   [State (alu, k)]. *)
let stage_syms ?mc (d : Ir.t) s =
  Symbolic.run_stage ?mc ~bits:d.Ir.d_bits ~helpers:d.Ir.d_helpers
    ~phv:(fun c -> Symbolic.Phv c)
    ~state:(fun ~alu k -> Symbolic.State (alu, k))
    d.Ir.d_stages.(s)

(* All obligations of one description pair under one machine-code program.
   The two descriptions must share pipeline geometry (they are snapshots of
   the same description across optimizer passes, so they do). *)
let check_pair ?config:cfg ~mc ~lhs_name ~rhs_name (lhs_d : Ir.t) (rhs_d : Ir.t) =
  if
    lhs_d.Ir.d_depth <> rhs_d.Ir.d_depth
    || lhs_d.Ir.d_width <> rhs_d.Ir.d_width
    || lhs_d.Ir.d_bits <> rhs_d.Ir.d_bits
  then invalid_arg "Equiv.check_pair: descriptions disagree on pipeline geometry";
  let cfg = match cfg with Some c -> c | None -> config lhs_d.Ir.d_bits in
  let mk subject status note =
    {
      ob_subject = subject;
      ob_lhs_name = lhs_name;
      ob_rhs_name = rhs_name;
      ob_lhs = Symbolic.Const 0;
      ob_rhs = Symbolic.Const 0;
      ob_status = status;
      ob_note = note;
    }
  in
  let stage_obligations s =
    match (stage_syms ~mc lhs_d s, stage_syms ~mc rhs_d s) with
    | exception Symbolic.Unsupported msg ->
      (* Symbolic evaluation bailed out; defer every obligation of the
         stage rather than claim anything. *)
      let stage = lhs_d.Ir.d_stages.(s) in
      let containers =
        List.init lhs_d.Ir.d_width (fun c -> mk (Container (s, c)) (Deferred []) msg)
      in
      let states =
        List.concat_map
          (fun alu ->
            List.init alu.Ir.a_state_size (fun k ->
                mk (State_slot (alu.Ir.a_name, k)) (Deferred []) msg))
          (Array.to_list stage.Ir.s_stateful)
      in
      containers @ states
    | ls, rs ->
      let containers =
        List.init lhs_d.Ir.d_width (fun c ->
            let l = ls.Symbolic.sg_containers.(c) and r = rs.Symbolic.sg_containers.(c) in
            {
              ob_subject = Container (s, c);
              ob_lhs_name = lhs_name;
              ob_rhs_name = rhs_name;
              ob_lhs = l;
              ob_rhs = r;
              ob_status = decide cfg l r;
              ob_note = "";
            })
      in
      let states =
        List.concat_map
          (fun (alu, lslots) ->
            match List.assoc_opt alu rs.Symbolic.sg_state with
            | None -> [ mk (State_slot (alu, 0)) (Deferred []) "stateful ALU missing on rhs" ]
            | Some rslots ->
              List.init (Array.length lslots) (fun k ->
                  let l = lslots.(k) and r = rslots.(k) in
                  {
                    ob_subject = State_slot (alu, k);
                    ob_lhs_name = lhs_name;
                    ob_rhs_name = rhs_name;
                    ob_lhs = l;
                    ob_rhs = r;
                    ob_status = decide cfg l r;
                    ob_note = "";
                  }))
          ls.Symbolic.sg_state
      in
      containers @ states
  in
  List.concat (List.init lhs_d.Ir.d_depth stage_obligations)

(* Validates a chain of per-pass snapshots pairwise, so a refutation names
   the first pass that changed behaviour.  [chain] is
   [(name_0, d_0); (name_1, d_1); ...] with [d_0] the reference. *)
let check_chain ?config ~mc (chain : (string * Ir.t) list) =
  let rec go = function
    | (ln, ld) :: ((rn, rd) :: _ as rest) ->
      check_pair ?config ~mc ~lhs_name:ln ~rhs_name:rn ld rd @ go rest
    | _ -> []
  in
  go chain

(* --- Concrete replay ------------------------------------------------------- *)

(* Replays a witness through the *interpreter* (not the symbolic model):
   runs the subject's stage on the witness's containers and state, exactly
   as {!Druzhba_dsim.Engine} schedules it, and returns the concrete value
   of the subject.  A genuine refutation replays to two different values on
   the two descriptions — this is what makes vet witnesses trustworthy
   without executing any PHV during verdict-finding. *)
let replay ~mc ~(subject : subject) ~(assign : Symbolic.atom -> int) (d : Ir.t) =
  let s = match subject with Container (s, _) -> s | State_slot (alu, _) ->
    (* The ALU name embeds the stage prefix; find its stage. *)
    let found = ref (-1) in
    Array.iteri
      (fun i stage ->
        Array.iter (fun a -> if String.equal a.Ir.a_name alu then found := i) stage.Ir.s_stateful)
      d.Ir.d_stages;
    if !found < 0 then invalid_arg (Printf.sprintf "Equiv.replay: unknown ALU '%s'" alu);
    !found
  in
  let ctx = Interp.ctx_of d ~mc in
  let stage = d.Ir.d_stages.(s) in
  let phv = Array.init d.Ir.d_width (fun k -> assign (Symbolic.Aphv k)) in
  let nsl = Array.length stage.Ir.s_stateless and nsf = Array.length stage.Ir.s_stateful in
  let args = Array.make (nsl + (2 * nsf) + 1) 0 in
  Array.iteri
    (fun j alu -> args.(j) <- Interp.run_alu ctx alu ~phv ~state:[||])
    stage.Ir.s_stateless;
  let states =
    Array.map
      (fun alu ->
        Array.init alu.Ir.a_state_size (fun k -> assign (Symbolic.Astate (alu.Ir.a_name, k))))
      stage.Ir.s_stateful
  in
  Array.iteri
    (fun j alu -> args.(nsl + j) <- Interp.run_alu ctx alu ~phv ~state:states.(j))
    stage.Ir.s_stateful;
  Array.iteri (fun j _ -> args.(nsl + nsf + j) <- states.(j).(0)) stage.Ir.s_stateful;
  match subject with
  | Container (_, c) ->
    args.(nsl + (2 * nsf)) <- phv.(c);
    Interp.apply_output_mux ctx stage.Ir.s_output_muxes.(c) ~args ~n_args:(nsl + (2 * nsf) + 1)
  | State_slot (alu, k) ->
    let j = ref (-1) in
    Array.iteri (fun i a -> if String.equal a.Ir.a_name alu then j := i) stage.Ir.s_stateful;
    states.(!j).(k)

let assign_of_witness w a =
  match List.assoc_opt a w.w_assign with Some v -> v | None -> 0
