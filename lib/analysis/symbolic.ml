(* Bit-precise symbolic evaluation of pipeline descriptions.

   Trace-diff fuzzing (paper §3.3) certifies an optimization level only on
   the PHVs it happened to draw.  This module is the static complement — the
   translation-validation idea Gauntlet applied to p4c: evaluate an
   {!Druzhba_pipeline.Ir} ALU *symbolically*, producing for every output and
   state slot a normalized expression over the PHV input containers, the
   pre-execution state slots, and any residual machine-code controls.  Two
   descriptions that normalize to the same expression compute the same
   function at every width — no PHV ever executes.

   The normal form mirrors the simulator's semantics exactly:

   - all arithmetic is the fixed-width unsigned algebra of
     {!Druzhba_util.Value} (wrap-around add/sub/mul, total div/mod,
     0/1-valued comparisons), folded with {!Druzhba_pipeline.Interp}'s own
     operators so constants can never disagree with the interpreter;
   - [Trunc] masks at the datapath width; a [Trunc] whose operand is already
     provably narrow (a known-bits argument) is dropped;
   - algebraic identities ([x+0], [x*1], [x*0], [x-x], sub-to-add
     modular rewriting, constant re-association) and a canonical operand
     order for commutative operators;
   - comparison canonicalization ([Lt]/[Le] become swapped [Gt]/[Ge],
     [Not] of a comparison flips it, [x == 0] of a boolean negates it) so
     the different lowerings used by the DSL, the optimizer, and the
     compiler's predicate semantics converge on one spelling;
   - conditional simplification driven by a three-valued truth test on the
     interval abstraction from {!Dataflow}.

   State reads are latched, as in {!Interp.run_alu_into}: every expression
   inside an ALU body sees the pre-execution snapshot, [Store]s accumulate
   into the post-execution image, and the default output is evaluated on the
   snapshot.  An [If] on an undecided condition evaluates both continuations
   and merges stores and returns with conditionals, which is exact (the IR
   is loop-free).

   Evaluation is total up to an explicit fuel bound; pathological blow-up
   raises {!Unsupported}, which callers treat as "cannot decide statically"
   — never as a proof. *)

module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Interp = Druzhba_pipeline.Interp

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* --- Normal form ----------------------------------------------------------- *)

(* Atoms name values the obligation quantifies over: [Phv c] is an input
   container of the stage (or pipeline) under analysis, [State (alu, k)] is
   slot [k] of stateful ALU [alu] *before* the packet executes, and
   [Ctrl name] is a machine-code control left symbolic (no program supplied,
   or the pair is missing).  [Var], [Mc] and [Call] never survive into the
   normal form: variables and helper calls are beta-reduced away, machine
   code is resolved to constants. *)
type sym =
  | Const of int
  | Phv of int
  | State of string * int
  | Ctrl of string
  | Trunc of sym
  | Unop of Ir.unop * sym
  | Binop of Ir.binop * sym * sym
  | Cond of sym * sym * sym

let equal (a : sym) (b : sym) = a = b
let compare_sym (a : sym) (b : sym) = Stdlib.compare a b

let rec size = function
  | Const _ | Phv _ | State _ | Ctrl _ -> 1
  | Trunc e | Unop (_, e) -> 1 + size e
  | Binop (_, a, b) -> 1 + size a + size b
  | Cond (c, a, b) -> 1 + size c + size a + size b

let unop_name = function Ir.Neg -> "-" | Ir.Not -> "!"

let binop_name = function
  | Ir.Add -> "+"
  | Ir.Sub -> "-"
  | Ir.Mul -> "*"
  | Ir.Div -> "/"
  | Ir.Mod -> "%"
  | Ir.Eq -> "=="
  | Ir.Neq -> "!="
  | Ir.Lt -> "<"
  | Ir.Gt -> ">"
  | Ir.Le -> "<="
  | Ir.Ge -> ">="
  | Ir.And -> "&&"
  | Ir.Or -> "||"

let rec pp ppf = function
  | Const n -> Fmt.int ppf n
  | Phv k -> Fmt.pf ppf "phv%d" k
  | State (alu, k) -> Fmt.pf ppf "%s.state%d" alu k
  | Ctrl name -> Fmt.pf ppf "mc[%s]" name
  | Trunc e -> Fmt.pf ppf "trunc(%a)" pp e
  | Unop (op, e) -> Fmt.pf ppf "%s%a" (unop_name op) pp e
  | Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Cond (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp c pp a pp b

let to_string e = Fmt.str "%a" pp e

(* --- Atoms ----------------------------------------------------------------- *)

type atom = Aphv of int | Astate of string * int | Actrl of string

let compare_atom (a : atom) (b : atom) = Stdlib.compare a b

module Atom_set = Set.Make (struct
  type t = atom

  let compare = compare_atom
end)

let pp_atom ppf = function
  | Aphv k -> Fmt.pf ppf "phv%d" k
  | Astate (alu, k) -> Fmt.pf ppf "%s.state%d" alu k
  | Actrl name -> Fmt.pf ppf "mc[%s]" name

let rec atom_set = function
  | Const _ -> Atom_set.empty
  | Phv k -> Atom_set.singleton (Aphv k)
  | State (alu, k) -> Atom_set.singleton (Astate (alu, k))
  | Ctrl name -> Atom_set.singleton (Actrl name)
  | Trunc e | Unop (_, e) -> atom_set e
  | Binop (_, a, b) -> Atom_set.union (atom_set a) (atom_set b)
  | Cond (c, a, b) -> Atom_set.union (atom_set c) (Atom_set.union (atom_set a) (atom_set b))

let atoms e = Atom_set.elements (atom_set e)

(* Constants appearing in an expression — boundary candidates for the
   sampling tier of the equivalence engine. *)
let rec constants acc = function
  | Const n -> n :: acc
  | Phv _ | State _ | Ctrl _ -> acc
  | Trunc e | Unop (_, e) -> constants acc e
  | Binop (_, a, b) -> constants (constants acc a) b
  | Cond (c, a, b) -> constants (constants (constants acc c) a) b

let constants e = List.sort_uniq Stdlib.compare (constants [] e)

(* --- Known bits ------------------------------------------------------------ *)

(* [may_mask bits e] is a sound superset of the bits [e] can ever set, given
   that [Phv]/[State] atoms are width-bounded (an invariant the simulator
   maintains: containers and state slots only ever hold masked values).
   [-1] (all bits) means unbounded — control-space values.  Arithmetic
   always lands back on the datapath because the simulator masks every
   result; comparisons and logical operators are 0/1-valued. *)
let ones_upto v =
  let rec go acc = if acc >= v then acc else go ((acc lsl 1) lor 1) in
  if v <= 0 then 0 else go 1

let rec may_mask bits = function
  | Const n -> n
  | Phv _ | State _ -> Value.max_value bits
  | Ctrl _ -> -1
  | Trunc e -> may_mask bits e land Value.max_value bits
  | Unop (Ir.Not, _) -> 1
  | Unop (Ir.Neg, e) -> if may_mask bits e = 0 then 0 else Value.max_value bits
  | Binop (op, a, b) -> (
    match op with
    | Ir.Eq | Ir.Neq | Ir.Lt | Ir.Gt | Ir.Le | Ir.Ge | Ir.And | Ir.Or -> 1
    | Ir.Add ->
      let ma = may_mask bits a and mb = may_mask bits b in
      if ma >= 0 && mb >= 0 && ma < 0x2000_0000_0000_0000 && mb < 0x2000_0000_0000_0000 then
        Value.max_value bits land ones_upto (ma + mb)
      else Value.max_value bits
    | Ir.Sub | Ir.Mul | Ir.Div | Ir.Mod -> Value.max_value bits)
  | Cond (_, a, b) -> may_mask bits a lor may_mask bits b

(* A value is boolean-shaped when it can only be 0 or 1; such values are
   fixed points of [Value.logical_not ∘ Value.logical_not] and safe to use
   in boolean rewrites. *)
let is_boolean bits e = may_mask bits e land lnot 1 = 0

let fits_width bits e = may_mask bits e land lnot (Value.max_value bits) = 0

(* --- Interval abstraction -------------------------------------------------- *)

let rec interval bits = function
  | Const n -> Dataflow.of_const n
  | Phv _ | State _ -> Dataflow.full bits
  | Ctrl _ -> Dataflow.Top
  | Trunc e -> Dataflow.trunc bits (interval bits e)
  | Unop (op, e) -> Dataflow.abs_unop bits op (interval bits e)
  | Binop (op, a, b) -> Dataflow.abs_binop bits op (interval bits a) (interval bits b)
  | Cond (c, a, b) -> (
    match Dataflow.truth (interval bits c) with
    | `True -> interval bits a
    | `False -> interval bits b
    | `Unknown -> Dataflow.join (interval bits a) (interval bits b))

(* --- Smart constructors (normalization) ------------------------------------ *)

let commutative = function
  | Ir.Add | Ir.Mul | Ir.Eq | Ir.Neq | Ir.And | Ir.Or -> true
  | _ -> false

(* Negation of a 0/1-valued comparison, used to fold [Not] and [x == 0]. *)
let flip_cmp = function
  | Ir.Eq -> Some Ir.Neq
  | Ir.Neq -> Some Ir.Eq
  | Ir.Lt -> Some Ir.Ge
  | Ir.Ge -> Some Ir.Lt
  | Ir.Gt -> Some Ir.Le
  | Ir.Le -> Some Ir.Gt
  | _ -> None

let mk_trunc bits e =
  match e with
  | Const n -> Const (Value.mask bits n)
  | _ when fits_width bits e -> e
  | _ -> Trunc e

(* Singleton-interval folding: the product domain can decide a node even
   when syntactic rules cannot (e.g. a selector compared against a value
   outside its range). *)
let fold_interval bits e =
  match e with
  | Const _ -> e
  | _ -> ( match interval bits e with Dataflow.Iv (lo, hi) when lo = hi -> Const lo | _ -> e)

let rec mk_unop bits op e =
  match (op, e) with
  | _, Const n -> Const (Interp.apply_unop bits op n)
  | Ir.Not, Binop (cmp, a, b) when flip_cmp cmp <> None -> (
    match flip_cmp cmp with Some c -> mk_binop bits c a b | None -> assert false)
  | Ir.Not, Unop (Ir.Not, x) when is_boolean bits x -> x
  | _ -> fold_interval bits (Unop (op, e))

and mk_binop bits op a b =
  match (op, a, b) with
  | _, Const x, Const y -> Const (Interp.apply_binop bits op x y)
  (* x + 0, x - 0, x * 1: identity only when the result would not be
     re-masked differently — i.e. the operand is already width-bounded. *)
  | Ir.Add, Const 0, e | Ir.Add, e, Const 0 | Ir.Sub, e, Const 0 ->
    if fits_width bits e then e else fold_interval bits (Binop (op, a, b))
  | Ir.Mul, Const 1, e | Ir.Mul, e, Const 1 ->
    if fits_width bits e then e else fold_interval bits (Binop (op, a, b))
  | Ir.Mul, Const 0, _ | Ir.Mul, _, Const 0 -> Const 0
  (* Modular rewrite: x - c = x + (2^bits - c), so add/sub chains share one
     canonical spelling.  Only for datapath constants (control-space
     subtraction cannot arise from the generators, and the rewrite would be
     wrong for them anyway). *)
  | Ir.Sub, e, Const c when c = Value.mask bits c -> mk_binop bits Ir.Add e (Const (Value.neg bits c))
  (* Constant re-association: c1 + (c2 + x) folds (sound modulo 2^bits). *)
  | Ir.Add, Const c1, Binop (Ir.Add, Const c2, x) | Ir.Add, Binop (Ir.Add, Const c2, x), Const c1
    ->
    mk_binop bits Ir.Add (Const (Value.add bits c1 c2)) x
  (* x ⋄ x for total comparisons and subtraction. *)
  | (Ir.Eq | Ir.Le | Ir.Ge), x, y when equal x y -> Const 1
  | (Ir.Neq | Ir.Lt | Ir.Gt), x, y when equal x y -> Const 0
  | Ir.Sub, x, y when equal x y -> Const 0
  | (Ir.And | Ir.Or), x, y when equal x y && is_boolean bits x -> x
  (* Logical operators against constants. *)
  | Ir.And, Const 0, _ | Ir.And, _, Const 0 -> Const 0
  | Ir.Or, Const c, _ when c <> 0 -> Const 1
  | Ir.Or, _, Const c when c <> 0 -> Const 1
  | Ir.And, Const c, e when c <> 0 -> bool_of bits e
  | Ir.And, e, Const c when c <> 0 -> bool_of bits e
  | Ir.Or, Const 0, e | Ir.Or, e, Const 0 -> bool_of bits e
  (* Comparison canonicalization: strict/inclusive "less" becomes swapped
     "greater", so [a < b], [b > a] and [!(a >= b)] all normalize alike. *)
  | Ir.Lt, x, y -> mk_binop bits Ir.Gt y x
  | Ir.Le, x, y -> mk_binop bits Ir.Ge y x
  (* [x == 0] / [x != 0] on booleans are negation / identity. *)
  | Ir.Eq, Const 0, e when is_boolean bits e -> mk_unop bits Ir.Not e
  | Ir.Eq, e, Const 0 when is_boolean bits e -> mk_unop bits Ir.Not e
  | Ir.Neq, Const 0, e when is_boolean bits e -> e
  | Ir.Neq, e, Const 0 when is_boolean bits e -> e
  | _ ->
    let a, b = if commutative op && compare_sym a b > 0 then (b, a) else (a, b) in
    fold_interval bits (Binop (op, a, b))

and bool_of bits e = if is_boolean bits e then e else mk_binop bits Ir.Neq (Const 0) e

let rec mk_cond bits c a b =
  match c with
  | Const n -> if Value.is_true n then a else b
  | _ when equal a b -> a
  | Unop (Ir.Not, x) -> mk_cond bits x b a
  | _ -> (
    match Dataflow.truth (interval bits c) with
    | `True -> a
    | `False -> b
    | `Unknown -> (
      match (a, b) with
      | Const 1, Const 0 when is_boolean bits c -> c
      | Const 0, Const 1 when is_boolean bits c -> mk_unop bits Ir.Not c
      (* Same-guard nesting collapses (selector chains revisiting a test). *)
      | Cond (c', a', _), _ when equal c c' -> mk_cond bits c a' b
      | _, Cond (c', _, b') when equal c c' -> mk_cond bits c a b'
      | _ -> Cond (c, a, b)))

(* --- Symbolic evaluation of IR --------------------------------------------- *)

let default_fuel = 200_000
let max_call_depth = 64

type env = {
  e_bits : Value.width;
  e_helpers : (string, Ir.helper) Hashtbl.t;
  e_mc : Machine_code.t option;
  e_phv : int -> sym;  (* meaning of [Phv k] *)
  e_state : int -> sym;  (* meaning of [State k]: the pre-execution snapshot *)
  e_vars : (string * sym) list;
  e_depth : int;
  e_fuel : int ref;
}

let env_of ?mc ~bits ~helpers ~phv ~state ?(fuel = ref default_fuel) () =
  {
    e_bits = bits;
    e_helpers = helpers;
    e_mc = mc;
    e_phv = phv;
    e_state = state;
    e_vars = [];
    e_depth = 0;
    e_fuel = fuel;
  }

let tick env =
  decr env.e_fuel;
  if !(env.e_fuel) < 0 then unsupported "symbolic evaluation exceeded its fuel bound"

let rec eval env (e : Ir.expr) : sym =
  tick env;
  let bits = env.e_bits in
  match e with
  | Ir.Const n -> Const n
  | Ir.Var x -> (
    match List.assoc_opt x env.e_vars with
    | Some v -> v
    | None -> unsupported "unbound variable '%s'" x)
  | Ir.Mc name -> (
    match env.e_mc with
    | Some mc -> (
      match Machine_code.find_opt mc name with Some v -> Const v | None -> Ctrl name)
    | None -> Ctrl name)
  | Ir.Trunc a -> mk_trunc bits (eval env a)
  | Ir.Phv k -> env.e_phv k
  | Ir.State k -> env.e_state k
  | Ir.Unop (op, a) -> mk_unop bits op (eval env a)
  | Ir.Binop (op, a, b) -> mk_binop bits op (eval env a) (eval env b)
  | Ir.Cond (c, a, b) -> mk_cond bits (eval env c) (eval env a) (eval env b)
  | Ir.Call (name, args) ->
    if env.e_depth >= max_call_depth then unsupported "helper call depth exceeded";
    let h =
      match Hashtbl.find_opt env.e_helpers name with
      | Some h -> h
      | None -> unsupported "unknown helper '%s'" name
    in
    if List.length h.Ir.h_params <> List.length args then
      unsupported "helper '%s' arity mismatch" name;
    let bindings = List.map2 (fun p a -> (p, eval env a)) h.Ir.h_params args in
    eval { env with e_vars = bindings; e_depth = env.e_depth + 1 } h.Ir.h_body

(* Latched statement execution.  [stores] maps slots to their post-execution
   symbolic values ([State k] reads still see the snapshot via [e_state]).
   An [If] whose condition does not fold evaluates both continuations — the
   rest of the statement list is part of each continuation because a
   [Return] inside a branch skips it — and merges slot-wise; a path that
   falls off the end without returning produces the [default] output,
   exactly as {!Interp.run_alu_into} does. *)
module Int_map = Map.Make (Int)

let rec exec env ~default stores (stmts : Ir.stmt list) : sym Int_map.t * sym option =
  match stmts with
  | [] -> (stores, None)
  | Ir.Let (x, e) :: rest ->
    let v = eval env e in
    exec { env with e_vars = (x, v) :: env.e_vars } ~default stores rest
  | Ir.Store (k, e) :: rest -> exec env ~default (Int_map.add k (eval env e) stores) rest
  | Ir.Return e :: _ -> (stores, Some (eval env e))
  | Ir.If (c, a, b) :: rest -> (
    match eval env c with
    | Const n -> exec env ~default stores ((if Value.is_true n then a else b) @ rest)
    | sc ->
      let sa, ra = exec env ~default stores (a @ rest) in
      let sb, rb = exec env ~default stores (b @ rest) in
      let bits = env.e_bits in
      let merged =
        Int_map.merge
          (fun k va vb ->
            let unstored () = env.e_state k in
            match (va, vb) with
            | Some x, Some y -> Some (mk_cond bits sc x y)
            | Some x, None -> Some (mk_cond bits sc x (unstored ()))
            | None, Some y -> Some (mk_cond bits sc (unstored ()) y)
            | None, None -> None)
          sa sb
      in
      let ret =
        match (ra, rb) with
        | None, None -> None
        | Some x, Some y -> Some (mk_cond bits sc x y)
        | Some x, None -> Some (mk_cond bits sc x default)
        | None, Some y -> Some (mk_cond bits sc default y)
      in
      (merged, ret))

(* --- ALU and stage evaluation ---------------------------------------------- *)

type alu_sym = {
  al_output : sym;  (* the ALU's output value *)
  al_state : sym array;  (* post-execution state slots *)
}

let run_alu ?mc ~bits ~helpers ~phv ~state ?fuel (alu : Ir.alu) =
  let env = env_of ?mc ~bits ~helpers ~phv ~state ?fuel () in
  let default = eval env alu.Ir.a_default_output in
  let stores, ret = exec env ~default Int_map.empty alu.Ir.a_body in
  let output = match ret with Some v -> v | None -> default in
  let post =
    Array.init alu.Ir.a_state_size (fun k ->
        match Int_map.find_opt k stores with Some v -> v | None -> state k)
  in
  { al_output = output; al_state = post }

type stage_sym = {
  sg_containers : sym array;  (* post-stage container values *)
  sg_state : (string * sym array) list;  (* stateful ALU -> post-execution slots *)
}

(* Mirrors {!Interp.apply_output_mux}: positional parameter binding over the
   engine's argument layout, with a trailing "ctrl" parameter resolved from
   machine code under the mux's own name. *)
let apply_mux env name ~(arg : int -> sym) ~n_args =
  let h =
    match Hashtbl.find_opt env.e_helpers name with
    | Some h -> h
    | None -> unsupported "unknown output mux '%s'" name
  in
  let bindings, bound =
    List.fold_left
      (fun (acc, i) p ->
        let v =
          if i < n_args then arg i
          else if String.equal p "ctrl" then (
            match env.e_mc with
            | Some mc -> (
              match Machine_code.find_opt mc name with Some v -> Const v | None -> Ctrl name)
            | None -> Ctrl name)
          else unsupported "output mux '%s' has too many parameters" name
        in
        ((p, v) :: acc, i + 1))
      ([], 0) h.Ir.h_params
  in
  if bound < n_args then unsupported "output mux '%s' has too few parameters" name;
  let forbid what _ = unsupported "output mux '%s' read a %s" name what in
  eval
    {
      env with
      e_vars = bindings;
      e_phv = forbid "container";
      e_state = forbid "state slot";
      e_depth = env.e_depth + 1;
    }
    h.Ir.h_body

(* One stage, in the engine's execution order: stateless ALUs, stateful
   ALUs, then every output mux over [stateless outs; stateful outs;
   post-execution state_0s; old container value].  [phv] gives the meaning
   of the stage's input containers and [state] the pre-execution state of
   each stateful ALU. *)
let run_stage ?mc ~bits ~helpers ~phv ~state ?(fuel = ref default_fuel) (stage : Ir.stage) =
  let no_state _ = unsupported "stateless ALU read a state slot" in
  let stateless =
    Array.map (fun alu -> run_alu ?mc ~bits ~helpers ~phv ~state:no_state ~fuel alu)
      stage.Ir.s_stateless
  in
  let stateful =
    Array.map
      (fun alu ->
        (alu.Ir.a_name, run_alu ?mc ~bits ~helpers ~phv ~state:(state ~alu:alu.Ir.a_name) ~fuel alu))
      stage.Ir.s_stateful
  in
  let nsl = Array.length stateless and nsf = Array.length stateful in
  let n_args = nsl + (2 * nsf) + 1 in
  let containers =
    Array.mapi
      (fun c mux_name ->
        let arg i =
          if i < nsl then stateless.(i).al_output
          else if i < nsl + nsf then (snd stateful.(i - nsl)).al_output
          else if i < nsl + (2 * nsf) then (snd stateful.(i - nsl - nsf)).al_state.(0)
          else phv c
        in
        let env = env_of ?mc ~bits ~helpers ~phv ~state:no_state ~fuel () in
        apply_mux env mux_name ~arg ~n_args)
      stage.Ir.s_output_muxes
  in
  { sg_containers = containers; sg_state = Array.to_list (Array.map (fun (n, a) -> (n, a.al_state)) stateful) }

(* --- Whole-pipeline composition -------------------------------------------- *)

type pipeline_sym = {
  pl_containers : sym array;  (* final containers in terms of [Phv]/[State] atoms *)
  pl_state : (string * sym array) list;  (* post-execution state of every stateful ALU *)
}

(* Threads container values through all stages of a feed-forward pipeline.
   Free atoms are the pipeline *input* containers and each stateful ALU's
   pre-execution state (each packet visits each ALU exactly once, so the
   per-packet transfer function quantifies over an arbitrary resident
   state).  Per-stage equivalence composes into this by induction, but the
   compiler's spec lives at the transaction level, so vet compares against
   this end-to-end form. *)
let run_pipeline ?mc ?(fuel = ref default_fuel) (d : Ir.t) =
  let containers = ref (Array.init d.Ir.d_width (fun c -> Phv c)) in
  let states = ref [] in
  Array.iter
    (fun stage ->
      let cur = !containers in
      let ss =
        run_stage ?mc ~bits:d.Ir.d_bits ~helpers:d.Ir.d_helpers
          ~phv:(fun c -> cur.(c))
          ~state:(fun ~alu k -> State (alu, k))
          ~fuel stage
      in
      containers := ss.sg_containers;
      states := !states @ ss.sg_state)
    d.Ir.d_stages;
  { pl_containers = !containers; pl_state = !states }

(* --- Concrete evaluation --------------------------------------------------- *)

(* Evaluates a normal form under an atom assignment, with the interpreter's
   own operators — the bridge from symbolic verdicts back to replayable
   concrete witnesses (and the property-test oracle against {!Interp}). *)
let rec eval_concrete ~bits ~(assign : atom -> int) = function
  | Const n -> n
  | Phv k -> assign (Aphv k)
  | State (alu, k) -> assign (Astate (alu, k))
  | Ctrl name -> assign (Actrl name)
  | Trunc e -> Value.mask bits (eval_concrete ~bits ~assign e)
  | Unop (op, e) -> Interp.apply_unop bits op (eval_concrete ~bits ~assign e)
  | Binop (op, a, b) ->
    Interp.apply_binop bits op (eval_concrete ~bits ~assign a) (eval_concrete ~bits ~assign b)
  | Cond (c, a, b) ->
    if Value.is_true (eval_concrete ~bits ~assign c) then eval_concrete ~bits ~assign a
    else eval_concrete ~bits ~assign b

(* Substitutes an assignment for a subset of atoms, renormalizing.  Used to
   pin state atoms to their reset values when hunting reachable witnesses. *)
let rec substitute ~bits ~(subst : atom -> sym option) e =
  let atom a k = match subst a with Some v -> v | None -> k in
  match e with
  | Const _ -> e
  | Phv k -> atom (Aphv k) e
  | State (alu, k) -> atom (Astate (alu, k)) e
  | Ctrl name -> atom (Actrl name) e
  | Trunc x -> mk_trunc bits (substitute ~bits ~subst x)
  | Unop (op, x) -> mk_unop bits op (substitute ~bits ~subst x)
  | Binop (op, a, b) -> mk_binop bits op (substitute ~bits ~subst a) (substitute ~bits ~subst b)
  | Cond (c, a, b) ->
    mk_cond bits (substitute ~bits ~subst c) (substitute ~bits ~subst a)
      (substitute ~bits ~subst b)
