(* Rule-based lint over pipeline descriptions and machine code.

   Trace-diff testing (paper §3.3) only catches a mis-compilation when a
   random PHV happens to exercise it; the rules here catch whole defect
   classes statically, before any simulation runs — the approach Gauntlet
   applies to P4 compilers.  Each rule produces {!finding}s with a stable
   rule identifier so output is scriptable ([druzhba lint --json]).

   Severity encodes actionability:

   - [Error]: the machine code cannot mean what its author intended —
     a required pair is missing, a selector is outside its domain (it
     silently falls through to the mux's default arm), or the description
     itself is malformed (helper arity).  [druzhba lint] exits non-zero.

   - [Warning]: legal but suspicious — dead ALUs, write-only state slots,
     unreachable branches, machine-code pairs nothing consumes, unused DSL
     declarations.  Rule-based compilers routinely leave unused ALUs
     behind (every Table-1 benchmark does), so warnings do not fail the
     lint unless the caller opts in ([--strict]). *)

module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Alu_analysis = Druzhba_alu_dsl.Analysis

type severity = Error | Warning

type finding = {
  f_rule : string;  (* stable kebab-case rule id *)
  f_severity : severity;
  f_subject : string;  (* machine-code name, ALU name, or spec name *)
  f_message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let pp_finding ppf f =
  Fmt.pf ppf "%s[%s] %s: %s" (severity_name f.f_severity) f.f_rule f.f_subject f.f_message

let has_errors findings = List.exists (fun f -> f.f_severity = Error) findings

let summary findings =
  let count s = List.length (List.filter (fun f -> f.f_severity = s) findings) in
  (count Error, count Warning)

(* --- Rules ----------------------------------------------------------------- *)

(* missing-pair / selector-out-of-range: Machine_code.validate against the
   description's control domains. *)
let check_machine_code ~domains mc =
  match Machine_code.validate ~domains mc with
  | Ok () -> []
  | Error violations ->
    List.map
      (function
        | Machine_code.Missing_pair name ->
          {
            f_rule = "missing-pair";
            f_severity = Error;
            f_subject = name;
            f_message = "required machine-code pair is missing";
          }
        | Machine_code.Out_of_range { vi_name; vi_value; vi_bound } ->
          {
            f_rule = "selector-out-of-range";
            f_severity = Error;
            f_subject = vi_name;
            f_message =
              Printf.sprintf
                "selector value %d is outside its domain [0, %d); it falls through to the mux's \
                 default arm"
                vi_value vi_bound;
          })
      violations

(* duplicate-pair: a machine-code file binding the same name twice.  Only
   detectable from the raw pair list (the hash-table representation has
   already collapsed the duplicates), so the CLI parses with
   [Machine_code.parse_pairs] and hands the pairs through [?pairs]. *)
let check_duplicate_pairs pairs =
  List.map
    (fun name ->
      {
        f_rule = "duplicate-pair";
        f_severity = Error;
        f_subject = name;
        f_message =
          "machine-code pair is bound more than once; only the last binding takes effect";
      })
    (Machine_code.duplicates pairs)

(* unknown-pair: pairs in the program that no control of the description
   consumes — usually a misspelled name or machine code generated for a
   different pipeline geometry. *)
let check_unknown_pairs ~domains mc =
  List.filter_map
    (fun (name, _) ->
      if List.mem_assoc name domains then None
      else
        Some
          {
            f_rule = "unknown-pair";
            f_severity = Warning;
            f_subject = name;
            f_message = "machine-code pair matches no control of this pipeline";
          })
    (Machine_code.to_alist mc)

(* truncated-immediate: a machine-code immediate whose high bits the
   datapath silently drops.  Every immediate enters the IR as [Trunc (Mc _)]
   (the generators mask all constants onto the datapath), so on the
   known-bits domain the pair's value contributes at most the low [d_bits]
   bits — any bit above that is unrepresentable and vanishes without a
   diagnostic.  This is the paper's §5.2 representability class: a compiler
   that believes it installed [100] while the 4-bit hardware computes with
   [4].  The program still simulates deterministically, hence a warning. *)
let check_truncated_immediates ~mc (d : Ir.t) =
  let bits = d.Ir.d_bits in
  let keep = Value.max_value bits in
  let seen = Hashtbl.create 16 in
  let findings = ref [] in
  let mc_names acc e = match e with Ir.Mc name -> name :: acc | _ -> acc in
  let visit () e =
    match e with
    | Ir.Trunc sub ->
      List.iter
        (fun name ->
          if not (Hashtbl.mem seen name) then begin
            Hashtbl.add seen name ();
            match Machine_code.find_opt mc name with
            | Some v when v land lnot keep <> 0 ->
              findings :=
                {
                  f_rule = "truncated-immediate";
                  f_severity = Warning;
                  f_subject = name;
                  f_message =
                    Printf.sprintf
                      "immediate %d does not fit the %d-bit datapath: Trunc keeps %d and \
                       silently drops high bits 0x%x"
                      v bits (Value.mask bits v) (v land lnot keep);
                }
                :: !findings
            | _ -> ()
          end)
        (Ir.fold_expr mc_names [] sub)
    | _ -> ()
  in
  let visit_alu (a : Ir.alu) =
    List.iter (fun s -> Ir.fold_stmt visit () s) a.Ir.a_body;
    Ir.fold_expr visit () a.Ir.a_default_output
  in
  Array.iter
    (fun (st : Ir.stage) ->
      Array.iter visit_alu st.Ir.s_stateless;
      Array.iter visit_alu st.Ir.s_stateful)
    d.Ir.d_stages;
  Ir.iter_helpers d (fun h -> Ir.fold_expr visit () h.Ir.h_body);
  List.rev !findings

(* dead-alu: with machine code in hand each output mux selects exactly one
   arm, so an ALU whose output (and, for stateful ALUs, new state) no mux in
   its stage selects cannot influence any output PHV. *)
let check_dead_alus (an : Dataflow.analysis) =
  let findings = ref [] in
  Array.iteri
    (fun s (st : Ir.stage) ->
      Array.iteri
        (fun j (a : Ir.alu) ->
          if not an.Dataflow.an_liveness.Dataflow.lv_stateless.(s).(j) then
            findings :=
              {
                f_rule = "dead-alu";
                f_severity = Warning;
                f_subject = a.Ir.a_name;
                f_message =
                  Printf.sprintf "dead ALU: no output mux of stage %d selects its output" s;
              }
              :: !findings)
        st.Ir.s_stateless;
      Array.iteri
        (fun j (a : Ir.alu) ->
          if not an.Dataflow.an_liveness.Dataflow.lv_stateful.(s).(j) then
            findings :=
              {
                f_rule = "dead-alu";
                f_severity = Warning;
                f_subject = a.Ir.a_name;
                f_message =
                  Printf.sprintf
                    "dead ALU: no output mux of stage %d selects its output or new state (its \
                     state updates remain observable only in the final-state dump)"
                    s;
              }
              :: !findings)
        st.Ir.s_stateful)
    an.Dataflow.an_desc.Ir.d_stages;
  List.rev !findings

(* write-only-state: a state slot with a reachable [Store] that no
   expression of the same ALU ever reads.  Slot 0 is exempt — the output
   muxes can observe it directly through the new-state arm, and stateful
   ALUs output it by default (Banzai read-modify-write convention). *)
let check_write_only_state (an : Dataflow.analysis) =
  let findings = ref [] in
  Array.iteri
    (fun s (st : Ir.stage) ->
      Array.iteri
        (fun j (a : Ir.alu) ->
          let f = an.Dataflow.an_stateful.(s).(j) in
          List.iter
            (fun (slot, _) ->
              if slot <> 0 && not (List.mem slot f.Dataflow.fa_state_reads) then
                findings :=
                  {
                    f_rule = "write-only-state";
                    f_severity = Warning;
                    f_subject = a.Ir.a_name;
                    f_message =
                      Printf.sprintf "state slot %d is written but never read" slot;
                  }
                  :: !findings)
            f.Dataflow.fa_stores)
        st.Ir.s_stateful)
    an.Dataflow.an_desc.Ir.d_stages;
  List.rev !findings

(* unreachable-branch: an [If] arm the abstract interpreter proves can never
   execute under the analysed machine code. *)
let check_unreachable_branches (an : Dataflow.analysis) =
  let findings = ref [] in
  let one (facts : Dataflow.facts array) (alus : Ir.alu array) =
    Array.iteri
      (fun j (a : Ir.alu) ->
        List.iter
          (fun (db : Dataflow.dead_branch) ->
            let arm =
              match db.Dataflow.db_dead with
              | Dataflow.Then_branch -> "then"
              | Dataflow.Else_branch -> "else"
            in
            findings :=
              {
                f_rule = "unreachable-branch";
                f_severity = Warning;
                f_subject = a.Ir.a_name;
                f_message =
                  Printf.sprintf "the %s-branch of if #%d can never execute" arm
                    db.Dataflow.db_if_index;
              }
              :: !findings)
          facts.(j).Dataflow.fa_dead_branches)
      alus
  in
  Array.iteri
    (fun s (st : Ir.stage) ->
      one an.Dataflow.an_stateless.(s) st.Ir.s_stateless;
      one an.Dataflow.an_stateful.(s) st.Ir.s_stateful)
    an.Dataflow.an_desc.Ir.d_stages;
  List.rev !findings

(* helper-arity / unknown-helper: every call site must name a registered
   helper and pass exactly its parameter count.  A violation makes the
   interpreter raise mid-simulation, so it is an error. *)
let check_helper_calls (d : Ir.t) =
  let findings = ref [] in
  let seen = Hashtbl.create 32 in
  let check_call subject name args =
    let key = (subject, name) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      match Hashtbl.find_opt d.Ir.d_helpers name with
      | None ->
        findings :=
          {
            f_rule = "unknown-helper";
            f_severity = Error;
            f_subject = subject;
            f_message = Printf.sprintf "call to unknown helper '%s'" name;
          }
          :: !findings
      | Some h ->
        let expected = List.length h.Ir.h_params and got = List.length args in
        if expected <> got then
          findings :=
            {
              f_rule = "helper-arity";
              f_severity = Error;
              f_subject = subject;
              f_message =
                Printf.sprintf "call to helper '%s' passes %d argument(s), expected %d" name got
                  expected;
            }
            :: !findings
    end
  in
  let collect subject () e =
    match e with Ir.Call (name, args) -> check_call subject name args | _ -> ()
  in
  let check_alu (a : Ir.alu) =
    List.iter (fun s -> Ir.fold_stmt (collect a.Ir.a_name) () s) a.Ir.a_body;
    Ir.fold_expr (collect a.Ir.a_name) () a.Ir.a_default_output
  in
  Array.iter
    (fun (st : Ir.stage) ->
      Array.iter check_alu st.Ir.s_stateless;
      Array.iter check_alu st.Ir.s_stateful)
    d.Ir.d_stages;
  Ir.iter_helpers d (fun h -> Ir.fold_expr (collect h.Ir.h_name) () h.Ir.h_body);
  List.rev !findings

(* emitted-module-size: the native-codegen emitter ({!Druzhba_pipeline.Emit})
   lowers [If]/[Return] statements by continuation duplication, which is
   exponential in nested-If depth in the worst case.  A stage whose emitted
   function blows past this threshold produces a source file flambda (and
   plain ocamlopt) chews on for a long time — the simulation is still
   correct, the interpreted and closure substrates are unaffected, so this
   is a warning naming the offending stage, not an error.  The threshold
   sits ~9x above the largest Table-1 stage (conga unoptimized, ~5.7k
   nodes) while firing well before compile times become minutes. *)
let emitted_size_threshold = 50_000

let check_emitted_module_size (d : Ir.t) =
  let costs = Druzhba_pipeline.Emit.stage_costs d in
  let findings = ref [] in
  Array.iteri
    (fun s cost ->
      if cost > emitted_size_threshold then
        findings :=
          {
            f_rule = "emitted-module-size";
            f_severity = Warning;
            f_subject = Printf.sprintf "stage %d" s;
            f_message =
              Printf.sprintf
                "native codegen would emit ~%d expression nodes for this stage (threshold %d): \
                 continuation duplication across nested ifs makes the emitted module \
                 flambda-hostile; the native substrate will be slow to build"
                cost emitted_size_threshold;
          }
          :: !findings)
    costs;
  List.rev !findings

(* unused-decl: DSL-level declarations the ALU body never mentions (each one
   still costs input muxes or machine-code pairs at every instance). *)
let check_unused_decls (d : Ir.t) =
  List.concat_map
    (fun (spec : Druzhba_alu_dsl.Ast.t) ->
      List.map
        (fun v ->
          {
            f_rule = "unused-decl";
            f_severity = Warning;
            f_subject = spec.Druzhba_alu_dsl.Ast.name;
            f_message = Printf.sprintf "declared variable '%s' is never used" v;
          })
        (Alu_analysis.unused_decls spec))
    [ d.Ir.d_stateful_spec; d.Ir.d_stateless_spec ]

(* --- dRMT table-dependency rules --------------------------------------------

   The dRMT pipeline has its own statically-checkable defect classes: a
   table-dependency graph with a cycle cannot be topologically scheduled at
   all, and an acyclic program can still exceed the crossbar's per-cycle
   match/action issue capacity (the scheduler's all-or-nothing line-rate
   property).  Both are program-level errors a compiler should reject before
   any packet is simulated, so [druzhba lint --p4] surfaces them with the
   offending tables named. *)

module Dag = Druzhba_drmt.Dag
module Scheduler = Druzhba_drmt.Scheduler
module P4 = Druzhba_drmt.P4

let table_of_node = function Dag.Match t | Dag.Action t -> t

(* cyclic-dag: Kahn's peel left nodes behind — the table-dependency graph
   cannot be scheduled in any order. *)
let check_cyclic_dag (dag : Dag.t) =
  match Dag.find_cycle dag with
  | None -> []
  | Some nodes ->
    let tables = List.sort_uniq compare (List.map table_of_node nodes) in
    [
      {
        f_rule = "cyclic-dag";
        f_severity = Error;
        f_subject = String.concat ", " tables;
        f_message =
          Printf.sprintf
            "table-dependency graph is cyclic: %d node(s) among tables [%s] can never be \
             scheduled"
            (List.length nodes) (String.concat "; " tables);
      };
    ]

(* unschedulable-dag: the program is acyclic but cannot run at line rate
   under [cfg] — more match (or action) nodes than the processors' residue
   classes can issue.  The finding names the tables past the capacity
   horizon (in control order): dropping or merging those would make the
   program feasible again. *)
let check_unschedulable_dag ~(cfg : Scheduler.config) (dag : Dag.t) =
  match Scheduler.schedule cfg dag with
  | _ -> []
  | exception Scheduler.Infeasible msg ->
    let beyond cap keep =
      let tables = List.filter_map keep dag.Dag.nodes in
      if List.length tables > cap then List.filteri (fun i _ -> i >= cap) tables else []
    in
    let over_match =
      beyond
        (cfg.Scheduler.processors * cfg.Scheduler.match_capacity)
        (function Dag.Match t -> Some t | Dag.Action _ -> None)
    in
    let over_action =
      beyond
        (cfg.Scheduler.processors * cfg.Scheduler.action_capacity)
        (function Dag.Action t -> Some t | Dag.Match _ -> None)
    in
    let offenders = List.sort_uniq compare (over_match @ over_action) in
    [
      {
        f_rule = "unschedulable-dag";
        f_severity = Error;
        f_subject =
          (match offenders with [] -> "schedule" | _ -> String.concat ", " offenders);
        f_message = msg;
      };
    ]

(* Lints a dRMT P4 program: extracts the table-dependency graph (or takes a
   pre-built [dag], which hand-assembled graphs and future extractors can
   pass directly) and checks it for cycles and line-rate schedulability
   under [cfg].  A cyclic graph is not handed to the scheduler — greedy list
   scheduling assumes a topological node order. *)
let check_p4 ?dag ?(cfg = Scheduler.config ()) (p : P4.t) : finding list =
  let dag = match dag with Some d -> d | None -> Dag.build p in
  match check_cyclic_dag dag with
  | _ :: _ as cyclic -> cyclic
  | [] -> check_unschedulable_dag ~cfg dag

(* --- Entry point ----------------------------------------------------------- *)

(* Runs every rule; machine-code rules are skipped when no program is given
   (and liveness degrades to "everything live", so dead-alu stays silent).
   Errors sort before warnings; relative order within a severity is the rule
   order above. *)
let check ?mc ?(pairs = []) (d : Ir.t) : finding list =
  let domains = Ir.control_domains d in
  let an = Dataflow.analyse ?mc d in
  let mc_findings =
    match mc with
    | None -> []
    | Some mc ->
      check_machine_code ~domains mc
      @ check_unknown_pairs ~domains mc
      @ check_truncated_immediates ~mc d
  in
  let findings =
    check_duplicate_pairs pairs
    @ mc_findings
    @ check_dead_alus an
    @ check_write_only_state an
    @ check_unreachable_branches an
    @ check_helper_calls d
    @ check_unused_decls d
    @ check_emitted_module_size d
  in
  let errors, warnings = List.partition (fun f -> f.f_severity = Error) findings in
  errors @ warnings

(* --- Rendering ------------------------------------------------------------- *)

let pp ppf findings =
  let errors, warnings = summary findings in
  Fmt.pf ppf "@[<v>";
  List.iter (fun f -> Fmt.pf ppf "%a@," pp_finding f) findings;
  Fmt.pf ppf "%d error(s), %d warning(s)@]" errors warnings

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json f =
  Printf.sprintf "{\"rule\":\"%s\",\"severity\":\"%s\",\"subject\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.f_rule) (severity_name f.f_severity) (json_escape f.f_subject)
    (json_escape f.f_message)

let to_json findings =
  let errors, warnings = summary findings in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (finding_to_json f))
    findings;
  Buffer.add_string b (Printf.sprintf "],\"errors\":%d,\"warnings\":%d}" errors warnings);
  Buffer.contents b

(* --- Versioned report envelope ---------------------------------------------

   [druzhba lint --json] and [druzhba vet --json] share one schema,
   [druzhba-report/1], so CI can gate and diff both with the same tooling:

     {"schema":"druzhba-report/1","tool":<tool>,
      "targets":[{"name":...,"findings":[...],"errors":N,"warnings":N,...}]}

   Ordering is deterministic: targets sort by name, findings keep the
   rule-order-within-severity produced by {!check} (vet emits obligations in
   pipeline order), so reports for unchanged inputs are byte-identical. *)

let report_schema = "druzhba-report/1"

type target = {
  t_name : string;
  t_findings : finding list;
  t_extra : (string * string) list;  (* extra JSON fields: key -> rendered value *)
}

let target ?(extra = []) ~name findings = { t_name = name; t_findings = findings; t_extra = extra }

let target_to_json t =
  let errors, warnings = summary t.t_findings in
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\",\"findings\":[" (json_escape t.t_name));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (finding_to_json f))
    t.t_findings;
  Buffer.add_string b (Printf.sprintf "],\"errors\":%d,\"warnings\":%d" errors warnings);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf ",\"%s\":%s" (json_escape k) v))
    t.t_extra;
  Buffer.add_char b '}';
  Buffer.contents b

let report_to_json ~tool targets =
  let targets = List.sort (fun a b -> String.compare a.t_name b.t_name) targets in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"%s\",\"tool\":\"%s\",\"targets\":[" report_schema
       (json_escape tool));
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (target_to_json t))
    targets;
  Buffer.add_string b "]}";
  Buffer.contents b
