(* Counterexample shrinking.

   A failing trial arrives as (input PHV trace, machine-code program);
   either can be far larger than what the bug needs.  The shrinker
   minimizes both against a caller-supplied [repro] predicate that re-runs
   the failing check and answers "does a failure of the same class still
   occur?":

   - PHV trace: first the shortest failing *prefix* (stateful pipelines
     usually need a warm-up prefix, so truncation is the high-yield move),
     found by binary search and verified before being trusted (the search
     assumes monotonicity, which a stateful bug can violate — a candidate is
     only accepted if it actually still fails); then greedy one-at-a-time
     removal passes until a fixpoint, which deletes warm-up packets the
     failure never needed.

   - Machine code: every pair whose value is not already 0 is tentatively
     reset to 0 (always in-domain for selectors, and the natural "neutral"
     immediate).  Pairs that can be neutralized without losing the failure
     are irrelevant to the bug; the ones that resist are the *essential*
     set — the pairs a compiler author has to look at.  This mirrors the
     provenance-slice triage but is semantic rather than static: it proves
     relevance by re-execution.

   Every repro call re-simulates, so the whole process is budgeted by
   [max_probes]; shrinking is best-effort and stops at the budget without
   ever returning a non-reproducing counterexample. *)

module Machine_code = Druzhba_machine_code.Machine_code
module Phv = Druzhba_dsim.Phv

type result = {
  sh_inputs : Phv.t list; (* minimized PHV trace; still reproduces *)
  sh_mc : Machine_code.t; (* minimized machine code; still reproduces *)
  sh_essential : string list; (* pairs that resist neutralization, sorted *)
  sh_probes : int; (* repro evaluations spent *)
}

(* [minimize ~repro ~inputs ~mc ()] assumes [repro ~inputs ~mc] is true and
   returns a smaller (never larger) failing configuration. *)
let minimize ?(max_probes = 400) ~(repro : inputs:Phv.t list -> mc:Machine_code.t -> bool) ~inputs
    ~mc () : result =
  let probes = ref 0 in
  (* A probe that crashes or exhausts its tick budget counts as "does not
     reproduce": the candidate is discarded and shrinking continues from the
     best-so-far configuration.  Containment belongs here rather than in
     every caller — a pathological candidate input must never be able to
     abort a shrink that already holds a valid counterexample. *)
  let try_repro ~inputs ~mc =
    if !probes >= max_probes then false
    else begin
      incr probes;
      match repro ~inputs ~mc with v -> v | exception _ -> false
    end
  in
  (* --- 1. shortest failing prefix (binary search, verified) --- *)
  let arr = Array.of_list inputs in
  let n = Array.length arr in
  let prefix k = Array.to_list (Array.sub arr 0 k) in
  let inputs =
    if n <= 1 then inputs
    else begin
      let lo = ref 1 and hi = ref n in
      (* invariant attempt: prefix !hi fails; probe midpoints *)
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if try_repro ~inputs:(prefix mid) ~mc then hi := mid else lo := mid + 1
      done;
      if !hi < n && try_repro ~inputs:(prefix !hi) ~mc then prefix !hi else inputs
    end
  in
  (* --- 2. greedy single-PHV removal until fixpoint --- *)
  let rec removal_pass inputs =
    let n = List.length inputs in
    let without i = List.filteri (fun j _ -> j <> i) inputs in
    let rec scan i inputs changed =
      if i >= List.length inputs then (inputs, changed)
      else begin
        let candidate = without i in
        if candidate <> [] && try_repro ~inputs:candidate ~mc then
          (* index i now names the next element; do not advance *)
          scan i candidate true
        else scan (i + 1) inputs changed
      end
    in
    let inputs', changed = scan 0 inputs false in
    if changed && List.length inputs' < n && !probes < max_probes then removal_pass inputs'
    else inputs'
  in
  let inputs = removal_pass inputs in
  (* --- 3. machine-code neutralization --- *)
  let shrunk_mc = Machine_code.copy mc in
  let essential = ref [] in
  List.iter
    (fun (name, value) ->
      if value <> 0 then begin
        let candidate = Machine_code.copy shrunk_mc in
        Machine_code.set candidate name 0;
        if try_repro ~inputs ~mc:candidate then Machine_code.set shrunk_mc name 0
        else essential := name :: !essential
      end)
    (Machine_code.to_alist shrunk_mc);
  { sh_inputs = inputs; sh_mc = shrunk_mc; sh_essential = List.rev !essential; sh_probes = !probes }

(* Input-only minimization (phases 1–2) for substrates with no machine code
   to neutralize — dRMT trials, whose program is a generated P4 AST.  The
   result's machine-code side is empty. *)
let minimize_inputs ?(max_probes = 400) ~(repro : inputs:Phv.t list -> bool) ~inputs () : result
    =
  let r =
    minimize ~max_probes
      ~repro:(fun ~inputs ~mc:_ -> repro ~inputs)
      ~inputs ~mc:(Machine_code.of_list []) ()
  in
  { r with sh_mc = Machine_code.of_list []; sh_essential = [] }

let pp ppf r =
  Fmt.pf ppf "shrunk to %d PHVs, %d essential pairs (%d probes): %a" (List.length r.sh_inputs)
    (List.length r.sh_essential) r.sh_probes
    Fmt.(list ~sep:(any ", ") string)
    r.sh_essential
