(* Differential cross-substrate oracle.

   Gauntlet-style differential execution: the same program is run on every
   execution substrate available and all runs must produce the same output
   trace and final state; any divergence is a bug in the simulator stack
   itself (optimizer, closure compiler, interpreter, or the dRMT scheduler)
   and is reported as its own failure class, distinct from the spec
   mismatches of Fig. 5.

   The oracle is polymorphic over a {!Druzhba_dsim.Substrate.packed} list:
   the head of the list is the reference configuration and every other
   entry is judged against it.  Two canonical substrate sets ship here:

   - {!rmt_substrates}: the interpreter ({!Druzhba_dsim.Engine}) and the
     closure-compiled pipeline ({!Druzhba_dsim.Compiled}) at all three
     optimization levels of the paper's Table 1, referenced by the
     interpreter on the unoptimized description (the most literal rendering
     of the hardware semantics) — six configurations;
   - {!drmt_substrates}: the event-driven dRMT model judged against the
     sequential P4 reference semantics — two configurations. *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile
module Optimizer = Druzhba_optimizer.Optimizer
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Substrate = Druzhba_dsim.Substrate
module Native_substrate = Druzhba_dsim.Native_substrate
module Drmt_substrate = Druzhba_dsim.Drmt_substrate
module Phv = Druzhba_dsim.Phv
module Trace = Druzhba_dsim.Trace

let all_levels = [ Optimizer.Unoptimized; Optimizer.Scc; Optimizer.Scc_inline ]

(* Where and how a non-reference configuration departed from the reference
   trace.  [dv_config] is the diverging substrate's label (e.g.
   ["closures@scc"] or ["drmt@event"]).  [`Shape] covers the pathological
   case of a different number of outputs (a pipeline-depth bug would show
   up this way). *)
type divergence = {
  dv_config : string;
  dv_kind : [ `Output of int * int (* phv index, container *) | `State of string * int | `Shape ];
  dv_expected : int; (* reference value; 0 for `Shape *)
  dv_actual : int; (* diverging value; 0 for `Shape *)
}

type outcome =
  | Agree of { configs : int; phvs : int }
  | Invalid_mc of Machine_code.violation list (* validation failed; nothing was run *)
  | Divergence of divergence

let pp_divergence ppf d =
  let where =
    match d.dv_kind with
    | `Output (i, c) -> Fmt.str "output phv %d container %d" i c
    | `State (alu, slot) -> Fmt.str "state %s[%d]" alu slot
    | `Shape -> "trace shape"
  in
  Fmt.pf ppf "%s diverges from reference at %s: expected %d, got %d" d.dv_config where
    d.dv_expected d.dv_actual

let pp_outcome ppf = function
  | Agree { configs; phvs } -> Fmt.pf ppf "agree (%d configurations, %d PHVs)" configs phvs
  | Invalid_mc violations ->
    Fmt.pf ppf "invalid machine code: %a"
      Fmt.(list ~sep:(any ", ") Machine_code.pp_violation)
      violations
  | Divergence d -> pp_divergence ppf d

let outcome_agrees = function Agree _ -> true | Invalid_mc _ | Divergence _ -> false

(* First divergence in the final state vectors (missing state in [actual]
   reads as min_int, like the fuzz harness). *)
let diff_states ~(reference : (string * int array) list) ~(actual : (string * int array) list) :
    ([ `Output of int * int | `State of string * int | `Shape ] * int * int) option =
  List.find_map
    (fun (alu, expected) ->
      let got = match List.assoc_opt alu actual with Some v -> v | None -> [| min_int |] in
      let n = Array.length expected in
      let rec scan slot =
        if slot >= n then None
        else
          let actual_v = if slot < Array.length got then got.(slot) else min_int in
          if expected.(slot) <> actual_v then Some (`State (alu, slot), expected.(slot), actual_v)
          else scan (slot + 1)
      in
      scan 0)
    reference

(* First point where [actual] departs from [reference].  Output containers
   are scanned in trace order, then final state vectors. *)
let diff_traces ~(reference : Trace.t) ~(actual : Trace.t) :
    ([ `Output of int * int | `State of string * int | `Shape ] * int * int) option =
  if List.length reference.Trace.outputs <> List.length actual.Trace.outputs then
    Some (`Shape, 0, 0)
  else begin
    let rec diff_outputs i expected_rest got_rest =
      match (expected_rest, got_rest) with
      | [], [] -> None
      | expected :: expected_rest, got :: got_rest ->
        let width = min (Array.length expected) (Array.length got) in
        let rec scan c =
          if c >= width then diff_outputs (i + 1) expected_rest got_rest
          else if expected.(c) <> got.(c) then Some (`Output (i, c), expected.(c), got.(c))
          else scan (c + 1)
        in
        scan 0
      | _ -> Some (`Shape, 0, 0)
    in
    let output_diff = diff_outputs 0 reference.Trace.outputs actual.Trace.outputs in
    match output_diff with
    | Some _ as d -> d
    | None -> diff_states ~reference:reference.Trace.final_state ~actual:actual.Trace.final_state
  end

(* As {!diff_traces}, but over the substrates' preallocated output buffers —
   the oracle's hot path never freezes a {!Trace.t}. *)
let diff_runs ~(ref_buf : Trace.Buffer.t) ~ref_state ~(act_buf : Trace.Buffer.t) ~act_state :
    ([ `Output of int * int | `State of string * int | `Shape ] * int * int) option =
  let n = Trace.Buffer.length ref_buf in
  if Trace.Buffer.length act_buf <> n then Some (`Shape, 0, 0)
  else begin
    let rec rows i =
      if i >= n then None
      else begin
        let expected = Trace.Buffer.row ref_buf i and got = Trace.Buffer.row act_buf i in
        let width = min (Array.length expected) (Array.length got) in
        let rec scan c =
          if c >= width then rows (i + 1)
          else if expected.(c) <> got.(c) then Some (`Output (i, c), expected.(c), got.(c))
          else scan (c + 1)
        in
        scan 0
      end
    in
    match rows 0 with
    | Some _ as d -> d
    | None -> diff_states ~reference:ref_state ~actual:act_state
  end

(* --- Substrate sets ---------------------------------------------------------- *)

(* The six RMT configurations, reference (interpreter on the unoptimized
   description) first.  The per-level optimized descriptions are shared
   between the two backends, so the optimizer runs once per level.

   [transform] (if any) rewrites each optimized description before the
   candidate substrates are built from it — the reference never sees it.
   This is the seam campaign sabotage mode uses to plant a buggy optimizer
   pass: both backends at the affected level inherit the bug, exactly as a
   real mis-compiling pass would propagate. *)
let rmt_substrates ?(init = []) ?transform ~(desc : Ir.t) ~mc () : Substrate.packed list =
  let apply_transform level d =
    match transform with None -> d | Some f -> f level d
  in
  Substrate.of_engine ~label:"interpreter@unoptimized" ~init desc ~mc
  :: List.concat_map
       (fun level ->
         let optimized = apply_transform level (Optimizer.apply ~level ~mc desc) in
         let compiled = Compile.compile optimized ~mc in
         let interp =
           if level = Optimizer.Unoptimized then []
           else
             [
               Substrate.of_engine
                 ~label:("interpreter@" ^ Optimizer.level_name level)
                 ~init optimized ~mc;
             ]
         in
         interp
         @ [ Substrate.of_compiled ~label:("closures@" ^ Optimizer.level_name level) ~init compiled ])
       all_levels

(* The two dRMT configurations, sequential P4 reference semantics first.
   @raise Druzhba_drmt.Scheduler.Infeasible if the program cannot be
   scheduled under [cfg]. *)
let drmt_substrates ?cfg ~entries (p : Druzhba_drmt.P4.t) : Substrate.packed list =
  [
    Drmt_substrate.of_p4 ~mode:Drmt_substrate.Sequential ~entries p;
    Drmt_substrate.of_p4 ?cfg ~mode:Drmt_substrate.Event ~entries p;
  ]

(* --- Differential check ------------------------------------------------------- *)

(* Runs [inputs] through every substrate and diffs each candidate against
   the head of the list.  All runs stream through preallocated output
   buffers, so the simulation hot loop never allocates per PHV and no
   intermediate trace is materialized.

   [budget] (if any) is shared by all runs: one unit of fuel per simulation
   tick (or scheduled event), {!Druzhba_dsim.Budget.Exhausted} escaping to
   the caller — the campaign runner turns it into a timeout outcome.

   Runs go through the substrates' batched entry points ([batch] lanes,
   default {!Substrate.default_batch}); the batched paths are bit-identical
   to the sequential tick loops (enforced by the cross-path property test),
   so outcomes are unchanged — only faster. *)
let diff_substrates ?budget ?batch ~(substrates : Substrate.packed list) ~inputs () : outcome =
  match substrates with
  | [] | [ _ ] ->
    invalid_arg "Oracle.diff_substrates: need a reference and at least one candidate"
  | reference :: candidates ->
    let capacity = List.length inputs in
    let ref_buf = Trace.Buffer.create ~width:(Substrate.width reference) ~capacity in
    Substrate.run_batch_into ?budget ?batch reference ~inputs ref_buf;
    let ref_state = Substrate.current_state reference in
    let act_buf = Trace.Buffer.create ~width:(Substrate.width reference) ~capacity in
    let rec judge = function
      | [] -> Agree { configs = 1 + List.length candidates; phvs = capacity }
      | sub :: rest -> (
        Substrate.run_batch_into ?budget ?batch sub ~inputs act_buf;
        let act_state = Substrate.current_state sub in
        match diff_runs ~ref_buf ~ref_state ~act_buf ~act_state with
        | None -> judge rest
        | Some (dv_kind, dv_expected, dv_actual) ->
          Divergence { dv_config = Substrate.name sub; dv_kind; dv_expected; dv_actual })
    in
    judge candidates

(* Validates [mc] then runs the six-configuration RMT differential check.
   [transform] is threaded to {!rmt_substrates} (candidate descriptions
   only). *)
let check ?(init = []) ?budget ?batch ?transform ~(desc : Ir.t) ~mc ~inputs () : outcome =
  match Machine_code.validate ~domains:(Ir.control_domains desc) mc with
  | Error violations -> Invalid_mc violations
  | Ok () ->
    diff_substrates ?budget ?batch
      ~substrates:(rmt_substrates ~init ?transform ~desc ~mc ())
      ~inputs ()

(* Event-driven dRMT vs sequential reference on a P4 program. *)
let check_drmt ?budget ?batch ?cfg ~entries ~(p : Druzhba_drmt.P4.t) ~inputs () : outcome =
  diff_substrates ?budget ?batch ~substrates:(drmt_substrates ?cfg ~entries p) ~inputs ()

(* --- Native-codegen check ----------------------------------------------------

   Three configurations: the interpreter on the unoptimized description
   (reference), the closure backend at scc+inline, and the Dynlinked
   native module emitted from the same scc+inline description.  The two
   interpreted configurations keep the generated artifact honest — this is
   the paper's discipline of diffing dsim against the dgen-generated code
   it is supposed to match. *)

let native_level = Optimizer.Scc_inline

(* [Error reason] means the native toolchain is unavailable or the
   out-of-process compile failed; nothing was run. *)
let native_substrates ?(init = []) ~(desc : Ir.t) ~mc () :
    (Substrate.packed list, string) result =
  let optimized = Optimizer.apply ~level:native_level ~mc desc in
  match Native_substrate.create ~label:"native@scc-inline" ~init optimized ~mc with
  | Error e -> Error e
  | Ok native ->
    Ok
      [
        Substrate.of_engine ~label:"interpreter@unoptimized" ~init desc ~mc;
        Substrate.of_compiled ~label:"closures@scc-inline" ~init (Compile.compile optimized ~mc);
        native;
      ]

(* The degraded set: the closure backend stands in for the native artifact
   under the label ["native-fallback@scc-inline"], so a toolchain-less host
   still runs a three-configuration differential trial (same configs count,
   same seeds, same classification space) and the report's notes carry the
   reason. *)
let native_fallback_substrates ?(init = []) ~(desc : Ir.t) ~mc () : Substrate.packed list =
  let optimized = Optimizer.apply ~level:native_level ~mc desc in
  [
    Substrate.of_engine ~label:"interpreter@unoptimized" ~init desc ~mc;
    Substrate.of_compiled ~label:"closures@scc-inline" ~init (Compile.compile optimized ~mc);
    Substrate.of_compiled ~label:"native-fallback@scc-inline" ~init (Compile.compile optimized ~mc);
  ]

(* Validates [mc] (before emission — so invalid machine code classifies as
   [Invalid_mc], never as a native build failure), then runs the
   three-configuration native differential check.  [Error reason] only when
   the toolchain is unavailable. *)
let check_native ?(init = []) ?budget ?batch ~(desc : Ir.t) ~mc ~inputs () :
    (outcome, string) result =
  match Machine_code.validate ~domains:(Ir.control_domains desc) mc with
  | Error violations -> Ok (Invalid_mc violations)
  | Ok () -> (
    match native_substrates ~init ~desc ~mc () with
    | Error e -> Error e
    | Ok substrates -> Ok (diff_substrates ?budget ?batch ~substrates ~inputs ()))

(* The degraded twin of {!check_native}: always runs, on interpreted
   substrates only. *)
let check_native_fallback ?(init = []) ?budget ?batch ~(desc : Ir.t) ~mc ~inputs () : outcome =
  match Machine_code.validate ~domains:(Ir.control_domains desc) mc with
  | Error violations -> Invalid_mc violations
  | Ok () ->
    diff_substrates ?budget ?batch
      ~substrates:(native_fallback_substrates ~init ~desc ~mc ())
      ~inputs ()
