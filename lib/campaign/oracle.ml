(* Differential cross-backend oracle.

   Gauntlet-style differential execution: the same machine code is run on
   every execution substrate the simulator has — the tree-walking
   interpreter ({!Druzhba_dsim.Engine}) and the closure-compiled pipeline
   ({!Druzhba_dsim.Compiled}) — at all three optimization levels of the
   paper's Table 1.  All six configurations must produce the same output
   trace and final state; any divergence is a bug in the simulator stack
   itself (optimizer, closure compiler, or interpreter) and is reported as
   its own failure class, distinct from the spec mismatches of Fig. 5.

   The reference configuration is the interpreter on the unoptimized
   description: it is the most literal rendering of the hardware semantics,
   so every other configuration is judged against it. *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Compile = Druzhba_pipeline.Compile
module Optimizer = Druzhba_optimizer.Optimizer
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Phv = Druzhba_dsim.Phv
module Trace = Druzhba_dsim.Trace

type backend = Interpreter | Closures

let backend_name = function Interpreter -> "interpreter" | Closures -> "closures"

let all_levels = [ Optimizer.Unoptimized; Optimizer.Scc; Optimizer.Scc_inline ]

(* Where and how a non-reference configuration departed from the reference
   trace.  [`Shape] covers the pathological case of a different number of
   outputs (a pipeline-depth bug would show up this way). *)
type divergence = {
  dv_backend : backend;
  dv_level : Optimizer.level;
  dv_kind : [ `Output of int * int (* phv index, container *) | `State of string * int | `Shape ];
  dv_expected : int; (* reference value; 0 for `Shape *)
  dv_actual : int; (* diverging value; 0 for `Shape *)
}

type outcome =
  | Agree of { configs : int; phvs : int }
  | Invalid_mc of Machine_code.violation list (* validation failed; nothing was run *)
  | Divergence of divergence

let pp_divergence ppf d =
  let where =
    match d.dv_kind with
    | `Output (i, c) -> Fmt.str "output phv %d container %d" i c
    | `State (alu, slot) -> Fmt.str "state %s[%d]" alu slot
    | `Shape -> "trace shape"
  in
  Fmt.pf ppf "%s@%s diverges from reference at %s: expected %d, got %d" (backend_name d.dv_backend)
    (Optimizer.level_name d.dv_level) where d.dv_expected d.dv_actual

let pp_outcome ppf = function
  | Agree { configs; phvs } -> Fmt.pf ppf "agree (%d configurations, %d PHVs)" configs phvs
  | Invalid_mc violations ->
    Fmt.pf ppf "invalid machine code: %a"
      Fmt.(list ~sep:(any ", ") Machine_code.pp_violation)
      violations
  | Divergence d -> pp_divergence ppf d

let outcome_agrees = function Agree _ -> true | Invalid_mc _ | Divergence _ -> false

(* First divergence in the final state vectors (missing state in [actual]
   reads as min_int, like the fuzz harness). *)
let diff_states ~(reference : (string * int array) list) ~(actual : (string * int array) list) :
    ([ `Output of int * int | `State of string * int | `Shape ] * int * int) option =
  List.find_map
    (fun (alu, expected) ->
      let got = match List.assoc_opt alu actual with Some v -> v | None -> [| min_int |] in
      let n = Array.length expected in
      let rec scan slot =
        if slot >= n then None
        else
          let actual_v = if slot < Array.length got then got.(slot) else min_int in
          if expected.(slot) <> actual_v then Some (`State (alu, slot), expected.(slot), actual_v)
          else scan (slot + 1)
      in
      scan 0)
    reference

(* First point where [actual] departs from [reference].  Output containers
   are scanned in trace order, then final state vectors. *)
let diff_traces ~(reference : Trace.t) ~(actual : Trace.t) :
    ([ `Output of int * int | `State of string * int | `Shape ] * int * int) option =
  if List.length reference.Trace.outputs <> List.length actual.Trace.outputs then
    Some (`Shape, 0, 0)
  else begin
    let rec diff_outputs i expected_rest got_rest =
      match (expected_rest, got_rest) with
      | [], [] -> None
      | expected :: expected_rest, got :: got_rest ->
        let width = min (Array.length expected) (Array.length got) in
        let rec scan c =
          if c >= width then diff_outputs (i + 1) expected_rest got_rest
          else if expected.(c) <> got.(c) then Some (`Output (i, c), expected.(c), got.(c))
          else scan (c + 1)
        in
        scan 0
      | _ -> Some (`Shape, 0, 0)
    in
    let output_diff = diff_outputs 0 reference.Trace.outputs actual.Trace.outputs in
    match output_diff with
    | Some _ as d -> d
    | None -> diff_states ~reference:reference.Trace.final_state ~actual:actual.Trace.final_state
  end

(* As {!diff_traces}, but over the engines' preallocated output buffers —
   the oracle's hot path never freezes a {!Trace.t}. *)
let diff_runs ~(ref_buf : Trace.Buffer.t) ~ref_state ~(act_buf : Trace.Buffer.t) ~act_state :
    ([ `Output of int * int | `State of string * int | `Shape ] * int * int) option =
  let n = Trace.Buffer.length ref_buf in
  if Trace.Buffer.length act_buf <> n then Some (`Shape, 0, 0)
  else begin
    let rec rows i =
      if i >= n then None
      else begin
        let expected = Trace.Buffer.row ref_buf i and got = Trace.Buffer.row act_buf i in
        let width = min (Array.length expected) (Array.length got) in
        let rec scan c =
          if c >= width then rows (i + 1)
          else if expected.(c) <> got.(c) then Some (`Output (i, c), expected.(c), got.(c))
          else scan (c + 1)
        in
        scan 0
      end
    in
    match rows 0 with
    | Some _ as d -> d
    | None -> diff_states ~reference:ref_state ~actual:act_state
  end

(* Runs [mc] on [inputs] in all (backend x level) configurations and diffs
   each against the reference.  The per-level optimized descriptions are
   shared between the two backends, so the optimizer runs once per level;
   all six runs stream through two preallocated output buffers (reference +
   candidate), so the simulation hot loop never allocates per PHV and no
   intermediate trace is materialized. *)
(* [budget] (if any) is shared by all six runs: one unit of fuel per
   simulation tick, {!Druzhba_dsim.Budget.Exhausted} escaping to the caller
   — the campaign runner turns it into a [Trial_timeout] outcome. *)
let check ?(init = []) ?budget ~(desc : Ir.t) ~mc ~inputs () : outcome =
  match Machine_code.validate ~domains:(Ir.control_domains desc) mc with
  | Error violations -> Invalid_mc violations
  | Ok () -> (
    let capacity = List.length inputs in
    let width = desc.Ir.d_width in
    let ref_buf = Trace.Buffer.create ~width ~capacity in
    let act_buf = Trace.Buffer.create ~width ~capacity in
    let ref_engine = Engine.create ~init desc ~mc in
    Engine.run_into ?budget ref_engine ~inputs ref_buf;
    let ref_state = Engine.current_state ref_engine in
    let divergence = ref None in
    (try
       List.iter
         (fun level ->
           let optimized = Optimizer.apply ~level ~mc desc in
           let compiled = Compile.compile optimized ~mc in
           List.iter
             (fun backend ->
               if not (backend = Interpreter && level = Optimizer.Unoptimized) then begin
                 let act_state =
                   match backend with
                   | Interpreter ->
                     let engine = Engine.create ~init optimized ~mc in
                     Engine.run_into ?budget engine ~inputs act_buf;
                     Engine.current_state engine
                   | Closures ->
                     let t = Compiled.create compiled in
                     Compiled.run_into ~init ?budget t ~inputs act_buf;
                     Compiled.current_state t
                 in
                 match diff_runs ~ref_buf ~ref_state ~act_buf ~act_state with
                 | None -> ()
                 | Some (dv_kind, dv_expected, dv_actual) ->
                   divergence :=
                     Some
                       {
                         dv_backend = backend;
                         dv_level = level;
                         dv_kind;
                         dv_expected;
                         dv_actual;
                       };
                   raise_notrace Exit
               end)
             [ Interpreter; Closures ])
         all_levels
     with Exit -> ());
    match !divergence with
    | Some d -> Divergence d
    | None -> Agree { configs = 2 * List.length all_levels; phvs = List.length inputs })
