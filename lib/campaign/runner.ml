(* Multicore trial runner.

   Shards independent trials across OCaml 5 domains.  The contract that
   makes `--jobs` invisible in the results: a trial's outcome must be a pure
   function of its index (campaigns derive every per-trial seed from the
   master seed and the index with {!Druzhba_util.Prng.derive}), so the
   result array is identical however trials land on domains — only the
   wall-clock changes.

   Work distribution is dynamic (an atomic next-index counter) rather than
   static chunking: trials vary wildly in cost (a divergence triggers
   shrinking, which re-simulates many times), and a static split would leave
   domains idle behind one expensive shard.  Each result slot is written by
   exactly one domain, and [Domain.join] publishes the writes, so no lock is
   needed around the results array.

   Caveat for callers: the trial function runs concurrently on several
   domains, so any shared lazy values it forces (e.g. the parsed atom
   library) must be forced *before* calling — OCaml's [Lazy] is not
   domain-safe.  {!Campaign.run} and the case-study harness do this. *)

let force_atoms () =
  List.iter
    (fun name -> ignore (Druzhba_atoms.Atoms.find_exn name))
    Druzhba_atoms.Atoms.all_names

(* [parallel_init ~jobs n f] is [Array.init n f] computed on up to [jobs]
   domains (including the calling one).  [f] is applied to each index
   exactly once; the result array is in index order.

   Exception containment: a worker that lets an exception out of [f] must
   not silently shrink the pool (the remaining domains would crawl through
   the rest of the trials and the join would then fail on the missing
   slots).  Every slot therefore captures [Ok v | Error exn]; workers never
   die, and after the join the *lowest-indexed* captured exception is
   re-raised on the calling domain — the same one a [jobs:1] run would have
   raised, so failure behaviour is deterministic across job counts.
   (Campaign trials catch their own exceptions long before this; this is
   the runner's own last line of defence.) *)
let parallel_init ~jobs n f =
  if n < 0 then invalid_arg "Runner.parallel_init: negative count";
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (match f i with v -> Ok v | exception e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (* explicit ascending scan: the lowest index decides, not map order *)
    for i = 0 to n - 1 do
      match results.(i) with Some (Error e) -> raise e | Some (Ok _) | None -> ()
    done;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error _) | None -> invalid_arg "Runner.parallel_init: missing result")
      results
  end

(* List-shaped convenience used by the case-study harness: map [f] over the
   elements of [items] in parallel, preserving order. *)
let parallel_map ~jobs f items =
  let arr = Array.of_list items in
  Array.to_list (parallel_init ~jobs (Array.length arr) (fun i -> f arr.(i)))

let default_jobs () = Domain.recommended_domain_count ()
