(* Campaign checkpoint files.

   A long campaign must survive being killed: the runner periodically
   persists which trials are complete, the records of every non-default
   trial, and the configuration signature that makes those records
   meaningful.  `--resume` then continues from the file and produces a
   report byte-identical to an uninterrupted run — possible because every
   trial is a pure function of (master seed, index), so only the
   *interesting* trials need to be stored; the plain agreeing majority is
   reconstructed from seeds on resume.

   Durability discipline: the file is written to a sibling `.tmp`, fsynced,
   and renamed into place.  A kill at any instant leaves either the old
   checkpoint or the new one, never a torn file.  The format is versioned
   JSON (the repo's own emitter/parser — no external dependency) and a
   resume validates both the version and the configuration signature, so a
   checkpoint from a different campaign is rejected rather than silently
   blended in. *)

let format_tag = "druzhba-campaign-checkpoint"
let version = 2

(* Everything a checkpoint's trial records depend on.  Two campaigns with
   equal signatures derive identical per-trial seeds, draw identical
   programs and traffic, and judge them identically — which is exactly the
   condition under which resuming from the file is sound.  [sg_jobs] is
   deliberately absent: job count never affects results. *)
type signature = {
  sg_substrate : string; (* a substrate-registry name: "rmt", "drmt", "all", "native", ... *)
  sg_master_seed : int;
  sg_trials : int;
  sg_phvs : int;
  sg_shrink : bool;
  sg_max_probes : int;
  sg_fuel : int; (* per-trial tick budget; 0 = unlimited *)
  sg_max_failures : int; (* circuit breaker; 0 = disabled *)
  sg_fault_runs : int; (* fault scenarios per trial; 0 = fault mode off *)
  sg_faults_per_run : int;
}

let signature_equal (a : signature) (b : signature) = a = b

type t = {
  ck_signature : signature;
  ck_completed : (int * int) list; (* inclusive index ranges, ascending *)
  ck_records : Report.json list; (* non-default trials, in index order *)
}

(* Length of the contiguous completed prefix starting at trial 0 — the
   index the resumed run continues from. *)
let completed_prefix t =
  List.fold_left
    (fun prefix (lo, hi) -> if lo <= prefix && hi >= prefix then hi + 1 else prefix)
    0 t.ck_completed

(* --- Encoding --------------------------------------------------------------- *)

let json_of_signature (s : signature) : Report.json =
  Report.Obj
    [
      ("substrate", Report.Str s.sg_substrate);
      ("master_seed", Report.Int s.sg_master_seed);
      ("trials", Report.Int s.sg_trials);
      ("phvs", Report.Int s.sg_phvs);
      ("shrink", Report.Bool s.sg_shrink);
      ("max_probes", Report.Int s.sg_max_probes);
      ("fuel", Report.Int s.sg_fuel);
      ("max_failures", Report.Int s.sg_max_failures);
      ("fault_runs", Report.Int s.sg_fault_runs);
      ("faults_per_run", Report.Int s.sg_faults_per_run);
    ]

let to_json (t : t) : Report.json =
  Report.Obj
    [
      ("format", Report.Str format_tag);
      ("version", Report.Int version);
      ("signature", json_of_signature t.ck_signature);
      ( "completed",
        Report.List
          (List.map (fun (lo, hi) -> Report.List [ Report.Int lo; Report.Int hi ]) t.ck_completed)
      );
      ("records", Report.List t.ck_records);
    ]

(* Atomic write: tmp file, fsync, rename, fsync of the containing
   directory.  The mechanism lives in {!Druzhba_util.Atomic_file} (the
   native substrate's build cache shares it); this re-export keeps the
   historical entry point that the service job store and the CLI's
   --report writer go through. *)

let atomic_write_string = Druzhba_util.Atomic_file.atomic_write_string

let save path (t : t) = atomic_write_string path (Report.to_string (to_json t) ^ "\n")

(* --- Decoding --------------------------------------------------------------- *)

exception Bad of string

let need msg = function Some v -> v | None -> raise (Bad msg)

let field obj key conv =
  need
    (Printf.sprintf "checkpoint field %S missing or mistyped" key)
    (Option.bind (Report.member key obj) conv)

let signature_of_json j : signature =
  {
    sg_substrate = field j "substrate" Report.to_str;
    sg_master_seed = field j "master_seed" Report.to_int;
    sg_trials = field j "trials" Report.to_int;
    sg_phvs = field j "phvs" Report.to_int;
    sg_shrink = field j "shrink" Report.to_bool;
    sg_max_probes = field j "max_probes" Report.to_int;
    sg_fuel = field j "fuel" Report.to_int;
    sg_max_failures = field j "max_failures" Report.to_int;
    sg_fault_runs = field j "fault_runs" Report.to_int;
    sg_faults_per_run = field j "faults_per_run" Report.to_int;
  }

let of_json (j : Report.json) : t =
  (match Report.member "format" j with
  | Some (Report.Str tag) when tag = format_tag -> ()
  | _ -> raise (Bad "not a druzhba campaign checkpoint"));
  (match Report.member "version" j with
  | Some (Report.Int v) when v = version -> ()
  | Some (Report.Int v) ->
    raise (Bad (Printf.sprintf "unsupported checkpoint version %d (expected %d)" v version))
  | _ -> raise (Bad "checkpoint version missing"));
  let signature =
    signature_of_json (need "checkpoint signature missing" (Report.member "signature" j))
  in
  let completed =
    field j "completed" Report.to_list
    |> List.map (function
         | Report.List [ Report.Int lo; Report.Int hi ] when 0 <= lo && lo <= hi -> (lo, hi)
         | _ -> raise (Bad "malformed completed range"))
  in
  let records = field j "records" Report.to_list in
  { ck_signature = signature; ck_completed = completed; ck_records = records }

let load path : (t, string) result =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | src -> (
    match Report.parse src with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok j -> ( try Ok (of_json j) with Bad msg -> Error (Printf.sprintf "%s: %s" path msg)))
