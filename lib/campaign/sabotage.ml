(* A planted optimizer bug for the coverage acceptance gate.

   The point of coverage-guided generation is reaching divergences whose
   trigger needs a specific selector/branch combination that uniform-random
   sampling will not produce.  This module is that divergence class, built
   so the "random provably misses it" half is airtight:

   Trigger — all three must hold for the trial's machine code:
   1. the datapath is wider than 8 bits;
   2. stage 0's container-0 output mux selects a stateful arm (registered
      or new-state), per {!Druzhba_analysis.Dataflow.mux_source_of_ctrl} —
      the selector/branch half of the combination;
   3. some immediate-domain pair holds the all-ones value of the datapath
      ([Value.max_value bits]) — the boundary-value half.

   {!Druzhba_fuzz.Fuzz.random_mc} draws immediates at most [min 8 bits]
   bits wide, so on a >8-bit datapath a random immediate is always at most
   255 < [max_value bits]: condition 3 is {e unreachable} by uniform-random
   generation at any trial budget.  The corpus's boundary-nudge mutation
   sets immediates to exactly [max_value bits], so coverage-guided mode
   reaches the trigger routinely.

   Effect — when the trigger fires, every post-optimizer description (the
   candidates of {!Oracle.rmt_substrates}; never the unoptimized reference)
   gets stage 0's container-0 output mux wrapped in an off-by-one, which
   both the interpreter and the closure compiler then faithfully execute:
   the bug is in the "pass", and the oracle reports a backend divergence on
   every PHV.  Shrinking with the transform in the loop pins both halves of
   the trigger as essential pairs: neutralizing either the mux selector or
   the all-ones immediate to 0 disarms the bug and the probe stops
   reproducing. *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Names = Druzhba_pipeline.Names
module Optimizer = Druzhba_optimizer.Optimizer
module Dataflow = Druzhba_analysis.Dataflow
module Value = Druzhba_util.Value

let trigger ~(desc : Ir.t) ~mc =
  desc.Ir.d_bits > 8
  && (match Machine_code.find_opt mc (Names.output_mux ~stage:0 ~container:0) with
     | Some v -> (
       match Dataflow.mux_source_of_ctrl ~width:desc.Ir.d_width v with
       | Dataflow.Src_stateful _ | Dataflow.Src_stateful_new _ -> true
       | Dataflow.Src_stateless _ | Dataflow.Src_passthrough -> false)
     | None -> false)
  && List.exists
       (* [transform] sees the post-optimizer description, whose specialized
          helpers no longer declare control domains — so the immediate
          condition reads the machine code directly.  On a >8-bit datapath
          only an immediate pair can hold the all-ones value: selector
          domains top out at [3*width + 1] ≤ 7, far below 65535. *)
       (fun (_, v) -> v = Value.max_value desc.Ir.d_bits)
       (Machine_code.to_alist mc)

(* Wraps the targeted output mux's body in a truncated +1.  The helper
   table is copied first: optimized descriptions share helper tables with
   siblings, and a planted bug must not leak across configurations. *)
let perturb (desc : Ir.t) : Ir.t =
  let name = Names.output_mux ~stage:0 ~container:0 in
  match Hashtbl.find_opt desc.Ir.d_helpers name with
  | None -> desc
  | Some h ->
    let helpers = Hashtbl.copy desc.Ir.d_helpers in
    Hashtbl.replace helpers name
      { h with Ir.h_body = Ir.Trunc (Ir.Binop (Ir.Add, h.Ir.h_body, Ir.Const 1)) };
    { desc with Ir.d_helpers = helpers }

(* The transform {!Oracle.check} threads over post-optimizer candidate
   descriptions.  [mc] must be the machine code of the run being judged —
   shrink probes rebuild the closure per probe so the trigger tracks the
   neutralized code. *)
let transform ~mc (level : Optimizer.level) (desc : Ir.t) : Ir.t =
  match level with
  | Optimizer.Unoptimized -> desc
  | Optimizer.Scc | Optimizer.Scc_inline -> if trigger ~desc ~mc then perturb desc else desc
