(* Structural coverage for differential campaigns (ISSUE: coverage-guided
   generation; cf. Gauntlet's grammar-aware steering in PAPERS.md).

   Uniform-random trials sample machine-code space blindly; this module
   defines what a trial *exercised* so the campaign can steer toward
   programs that reach new structure.  Coverage is structural, not
   line-based — the domain is the set of features below, every one of which
   names a semantic edge of the simulated hardware:

   - [branch:*]   an ALU [If] arm taken (site ids are static pre-order over
                  the ALU body, see {!Druzhba_pipeline.Interp.probe})
   - [latch:*]    a stateful-ALU state slot actually latched by a [Store]
   - [alupath:*]  whether an ALU returned explicitly or fell through to its
                  default output
   - [mux:*]      an output-mux selector arm exercised, decoded through
                  {!Druzhba_analysis.Dataflow.mux_source_of_ctrl} (the same
                  decoding the liveness analysis uses)
   - [mcclass:*]  the value class of each machine-code pair: selectors by
                  exact value (their interval is [[0, n)] — small and worth
                  enumerating), immediates bucketed by the boundary classes
                  of the interval domain ([Dataflow.full bits] spans
                  [[0, 2^bits - 1]]; zero / one / all-ones / top-bit /
                  power-of-two / other)
   - [dagshape:*] a dRMT table-DAG shape scheduled (table count, processor
                  count, critical-path length)
   - [tablehit:*] a dRMT table that matched at least one installed entry
   - [entry:*]    a dRMT entry pattern value class installed per table

   Every RMT feature is namespaced by the trial's drawn pipeline shape and
   every dRMT feature by (tables, processors), so same-named ALUs from
   different shapes never conflate.

   A coverage value is a plain string set: [union] is the merge the block
   loop performs at checkpoint boundaries, and it is commutative,
   associative and idempotent by construction — which is what makes the
   campaign's coverage evolution independent of [--jobs] (the properties
   are pinned by QCheck in [test/test_coverage.ml]). *)

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Interp = Druzhba_pipeline.Interp
module Dataflow = Druzhba_analysis.Dataflow
module Value = Druzhba_util.Value
module Engine = Druzhba_dsim.Engine
module Trace = Druzhba_dsim.Trace
module Substrate = Druzhba_dsim.Substrate
module Drmt_substrate = Druzhba_dsim.Drmt_substrate
module P4 = Druzhba_drmt.P4
module Dag = Druzhba_drmt.Dag
module Sim = Druzhba_drmt.Sim
module Entries = Druzhba_drmt.Entries
module Phv = Druzhba_dsim.Phv

module S = Set.Make (String)

type t = S.t

let empty : t = S.empty
let cardinal = S.cardinal
let is_empty = S.is_empty
let union = S.union
let equal = S.equal
let add = S.add
let of_list = S.of_list
let features (t : t) = S.elements t

(* Number of features of [t] absent from [existing] — the novelty score
   that decides corpus admission. *)
let novel ~existing (t : t) = S.cardinal (S.diff t existing)

(* Feature class = the prefix before the first ':' (e.g. "branch"). *)
let class_of feature =
  match String.index_opt feature ':' with
  | Some i -> String.sub feature 0 i
  | None -> feature

(* Per-class feature counts, sorted by class name. *)
let classes (t : t) =
  let tbl = Hashtbl.create 8 in
  S.iter
    (fun f ->
      let c = class_of f in
      Hashtbl.replace tbl c (1 + Option.value (Hashtbl.find_opt tbl c) ~default:0))
    t;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- Shape namespaces --------------------------------------------------------- *)

let rmt_shape ~depth ~width ~bits ~stateful ~stateless =
  Printf.sprintf "d%dw%db%d:%s:%s" depth width bits stateful stateless

let drmt_shape ~tables ~processors = Printf.sprintf "t%dp%d" tables processors

(* --- Value classes ------------------------------------------------------------ *)

(* Boundary classes of the immediate interval [Dataflow.full bits] =
   [0, max_value bits]: the interval analysis says these are the values at
   which truncation, comparison and carry behaviour change, so they are the
   buckets worth distinguishing (and the values the corpus mutator nudges
   toward). *)
let imm_class bits v =
  let top = Value.max_value bits in
  if v = 0 then "zero"
  else if v = 1 then "one"
  else if v = top then "allones"
  else if v = 1 lsl (bits - 1) then "topbit"
  else if v > 0 && v land (v - 1) = 0 then "pow2"
  else "other"

let arm_name ~width ctrl =
  match Dataflow.mux_source_of_ctrl ~width ctrl with
  | Dataflow.Src_stateless j -> Printf.sprintf "stateless%d" j
  | Dataflow.Src_stateful j -> Printf.sprintf "stateful%d" j
  | Dataflow.Src_stateful_new j -> Printf.sprintf "newstate%d" j
  | Dataflow.Src_passthrough -> "pass"

(* --- Per-trial collection ------------------------------------------------------ *)

(* Collects the coverage of one RMT trial by replaying [inputs] on a fresh
   instrumented interpreter engine over the *unoptimized* description (the
   reference semantics; optimizer bugs must not shift what counts as
   covered).  The machine-code value classes are recorded statically from
   the control domains.  Runs outside the differential hot path — only
   coverage campaigns pay for it. *)
let of_rmt_trial ?budget ~shape ~(desc : Ir.t) ~mc ~inputs () : t =
  let acc = ref S.empty in
  let add fmt = Printf.ksprintf (fun f -> acc := S.add f !acc) fmt in
  List.iter
    (fun (name, domain) ->
      match Machine_code.find_opt mc name with
      | None -> ()
      | Some v -> (
        match (domain : Ir.control_domain) with
        | Ir.Selector _ -> add "mcclass:%s:%s:sel%d" shape name v
        | Ir.Immediate -> add "mcclass:%s:%s:%s" shape name (imm_class desc.Ir.d_bits v)))
    (Ir.control_domains desc);
  let width = desc.Ir.d_width in
  let probe =
    {
      Interp.pr_branch =
        (fun ~alu ~site ~taken -> add "branch:%s:%s:%d:%c" shape alu site (if taken then 't' else 'f'));
      pr_latch = (fun ~alu ~slot -> add "latch:%s:%s:%d" shape alu slot);
      pr_output =
        (fun ~alu ~returned -> add "alupath:%s:%s:%s" shape alu (if returned then "return" else "default"));
      pr_mux = (fun ~mux ~ctrl -> add "mux:%s:%s:%s" shape mux (arm_name ~width ctrl));
    }
  in
  let engine = Engine.create desc ~mc in
  Engine.instrument engine (Some probe);
  let buf = Trace.Buffer.create ~width ~capacity:(List.length inputs) in
  Engine.run_into ?budget engine ~inputs buf;
  !acc

(* Collects the coverage of one dRMT trial: the scheduled DAG shape
   (statically, via {!Dag.critical_path}), the installed entries' pattern
   value classes, and — from a replay on the sequential reference substrate
   with a result observer installed — which tables actually matched an
   installed entry. *)
let of_drmt_trial ?budget ~shape ~(p : P4.t) ~(entries : Entries.entry list)
    ~(inputs : Phv.t list) () : t =
  let acc = ref S.empty in
  let add fmt = Printf.ksprintf (fun f -> acc := S.add f !acc) fmt in
  add "dagshape:%s:cp%d" shape (Dag.critical_path (Dag.build p));
  List.iter
    (fun (e : Entries.entry) ->
      match e.Entries.en_pattern with
      | Entries.Pexact v -> add "entry:%s:%s:%s" shape e.Entries.en_table (imm_class 8 v)
      | _ -> add "entry:%s:%s:other-pattern" shape e.Entries.en_table)
    entries;
  let sub = Drmt_substrate.create ~mode:Drmt_substrate.Sequential ~entries p in
  Drmt_substrate.observe sub
    (Some
       (fun (r : Sim.result) ->
         List.iter
           (fun (table, hits) -> if hits > 0 then add "tablehit:%s:%s" shape table)
           r.Sim.r_stats.Sim.st_table_hits));
  let packed = Drmt_substrate.pack sub in
  let buf = Trace.Buffer.create ~width:(Substrate.width packed) ~capacity:(List.length inputs) in
  Substrate.run_into ?budget packed ~inputs buf;
  !acc

(* --- Report section (druzhba-coverage/1) --------------------------------------

   The campaign report embeds one coverage object; the corpus manifest
   embeds the same object plus the full feature list.  Both carry their own
   schema tag so consumers can reject a future incompatible layout instead
   of misreading it. *)

let schema = "druzhba-coverage/1"

type summary = {
  sm_features : int;
  sm_classes : (string * int) list; (* sorted by class *)
  sm_novel_trials : int;
  sm_corpus_entries : int;
  sm_corpus_fresh : int;
  sm_corpus_mutated : int;
}

let summary_json (s : summary) : Report.json =
  Report.Obj
    [
      ("schema", Report.Str schema);
      ("features", Report.Int s.sm_features);
      ("classes", Report.Obj (List.map (fun (k, v) -> (k, Report.Int v)) s.sm_classes));
      ("novel_trials", Report.Int s.sm_novel_trials);
      ( "corpus",
        Report.Obj
          [
            ("entries", Report.Int s.sm_corpus_entries);
            ("fresh", Report.Int s.sm_corpus_fresh);
            ("mutated", Report.Int s.sm_corpus_mutated);
          ] );
    ]

(* Total decoder for the coverage section.  An unknown schema is an [Error]
   naming both schemas — consumers must refuse rather than guess at a
   layout they were not written for. *)
let summary_of_json (j : Report.json) : (summary, string) result =
  let ( let* ) = Result.bind in
  let field key conv =
    match Option.bind (Report.member key j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "coverage section: field %S missing or mistyped" key)
  in
  let* got_schema = field "schema" Report.to_str in
  if got_schema <> schema then
    Error
      (Printf.sprintf "unsupported coverage schema %S (this reader understands %S)" got_schema
         schema)
  else
    let* features = field "features" Report.to_int in
    let* novel_trials = field "novel_trials" Report.to_int in
    let* classes =
      match Report.member "classes" j with
      | Some (Report.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            match Report.to_int v with
            | Some n -> Ok ((k, n) :: acc)
            | None -> Error (Printf.sprintf "coverage section: class %S count mistyped" k))
          (Ok []) fields
        |> Result.map List.rev
      | _ -> Error "coverage section: classes missing"
    in
    let corpus key =
      match Option.bind (Report.member "corpus" j) (Report.member key) with
      | Some (Report.Int n) -> Ok n
      | _ -> Error (Printf.sprintf "coverage section: corpus.%s missing or mistyped" key)
    in
    let* entries = corpus "entries" in
    let* fresh = corpus "fresh" in
    let* mutated = corpus "mutated" in
    Ok
      {
        sm_features = features;
        sm_classes = classes;
        sm_novel_trials = novel_trials;
        sm_corpus_entries = entries;
        sm_corpus_fresh = fresh;
        sm_corpus_mutated = mutated;
      }

let pp_summary ppf (s : summary) =
  Fmt.pf ppf "coverage: %d features (%a), %d novel trials, corpus %d (%d fresh, %d mutated)"
    s.sm_features
    Fmt.(list ~sep:(any ", ") (fun ppf (k, v) -> pf ppf "%s %d" k v))
    s.sm_classes s.sm_novel_trials s.sm_corpus_entries s.sm_corpus_fresh s.sm_corpus_mutated
