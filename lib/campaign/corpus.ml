(* The campaign's corpus of coverage-novel programs.

   Coverage mode keeps every trial whose coverage contained at least one
   feature the campaign had not seen ({!Coverage.novel}), and later trials
   mutate corpus members structurally instead of always sampling fresh:

   - {b reverse neutralization} (RMT): {!Shrink} minimizes counterexamples
     by driving machine-code pairs to 0; run in reverse, a zero-valued pair
     is promoted to an in-domain non-zero value — waking up a primitive the
     original draw left inert.
   - {b boundary nudging} (RMT): an immediate pair is moved to a boundary
     value of its interval ([Dataflow.full bits] = [0, 2^bits - 1]): 0, 1,
     all-ones, all-ones - 1, the top bit, or one off its current value.
     Random immediates are drawn at most 8 bits wide
     ({!Druzhba_fuzz.Fuzz.random_mc}), so the wide-datapath boundary values
     are reachable {e only} through this mutation — the lever behind the
     "coverage finds it, random provably misses it" sabotage gate.
   - {b DAG grow / entry split} (dRMT): extend the table chain by one table
     (existing entries stay valid — the new program is a superset), or
     split a table's entry population by installing a sibling entry with a
     fresh exact pattern.

   Mutations draw only from the trial's derived PRNG and validate by
   construction (selector values stay in-domain; immediates are width
   values), so {!Machine_code.validate} always passes on a mutant — a
   property pinned by QCheck.

   Determinism: the store is append-only and the campaign admits entries at
   block boundaries in trial-index order, so entry ids, parent links and
   the on-disk corpus are byte-identical across [--jobs].

   On disk ([--corpus DIR]):
   - [DIR/corpus.json]   — manifest (schema druzhba-corpus/1): master seed,
     entry index, the druzhba-coverage/1 section and the full feature list
   - [DIR/entry-NNNNN.json] — one per corpus entry (schema
     druzhba-corpus-entry/1): origin, trial, and enough material to rebuild
     the program (generation parameters + machine code, or table count +
     processors + entries), since descriptions and dRMT programs are pure
     functions of their parameters. *)

module Prng = Druzhba_util.Prng
module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Entries = Druzhba_drmt.Entries

(* --- Materials ----------------------------------------------------------------- *)

type material =
  | Rmt_material of {
      depth : int;
      width : int;
      bits : int;
      stateful : string;
      stateless : string;
      mc : Machine_code.t;
    }
  | Drmt_material of { tables : int; processors : int; entries : Entries.entry list }

type origin = Fresh | Mutated of { parent : int; op : string }

type entry = {
  e_id : int; (* dense, in admission (= trial index) order *)
  e_trial : int;
  e_origin : origin;
  e_material : material;
  e_novel : int; (* features this entry was first to reach *)
}

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }
let size t = t.count
let entries t = List.rev t.rev_entries

let add t ~trial ~origin ~material ~novel =
  let e = { e_id = t.count; e_trial = trial; e_origin = origin; e_material = material; e_novel = novel } in
  t.count <- t.count + 1;
  t.rev_entries <- e :: t.rev_entries;
  e

(* (entries, fresh, mutated) *)
let stats t =
  let fresh =
    List.length (List.filter (fun e -> e.e_origin = Fresh) t.rev_entries)
  in
  (t.count, fresh, t.count - fresh)

(* The immutable view a block of parallel trials mutates from; refreshed by
   the campaign only at block boundaries. *)
let snapshot t : entry array = Array.of_list (entries t)

let is_rmt e = match e.e_material with Rmt_material _ -> true | Drmt_material _ -> false

(* --- RMT mutations -------------------------------------------------------------- *)

let boundary_values bits v =
  let top = Value.max_value bits in
  [ 0; 1; top; top - 1; 1 lsl (bits - 1); Value.mask bits (v + 1); Value.mask bits (v - 1) ]

(* Shrink's pair neutralization in reverse: promote one zero-valued pair to
   a non-zero in-domain value. *)
let reverse_neutralize prng ~(domains : (string * Ir.control_domain) list) ~bits mc :
    (string * Machine_code.t) option =
  let zeros =
    List.filter (fun (name, _) -> Machine_code.find_opt mc name = Some 0) domains
  in
  match zeros with
  | [] -> None
  | _ -> (
    let name, domain = List.nth zeros (Prng.int prng (List.length zeros)) in
    let v =
      match domain with
      | Ir.Selector n when n > 1 -> 1 + Prng.int prng (n - 1)
      | Ir.Selector _ -> 0 (* domain [0, 1): nothing non-zero to promote *)
      | Ir.Immediate ->
        let candidates =
          List.sort_uniq compare
            (List.filter (fun x -> x <> 0) (boundary_values bits 0))
        in
        List.nth candidates (Prng.int prng (List.length candidates))
    in
    if v = 0 then None
    else begin
      let mc' = Machine_code.copy mc in
      Machine_code.set mc' name v;
      Some ("reverse_neutralize", mc')
    end)

(* Nudge one immediate pair to a boundary value of the known-bits/interval
   domain (distinct from its current value). *)
let boundary_nudge prng ~(domains : (string * Ir.control_domain) list) ~bits mc :
    (string * Machine_code.t) option =
  let imms =
    List.filter
      (fun (name, domain) -> domain = Ir.Immediate && Machine_code.find_opt mc name <> None)
      domains
  in
  match imms with
  | [] -> None
  | _ -> (
    let name, _ = List.nth imms (Prng.int prng (List.length imms)) in
    let v = Machine_code.find mc name in
    let candidates =
      List.sort_uniq compare (List.filter (fun x -> x <> v) (boundary_values bits v))
    in
    match candidates with
    | [] -> None
    | _ ->
      let v' = List.nth candidates (Prng.int prng (List.length candidates)) in
      let mc' = Machine_code.copy mc in
      Machine_code.set mc' name v';
      Some ("boundary_nudge", mc'))

(* One RMT mutation draw: pick an operator, fall back to the other when the
   pick does not apply (e.g. no zero-valued pair to reverse). *)
let mutate_rmt prng ~domains ~bits mc : (string * Machine_code.t) option =
  if Prng.bool prng then
    match reverse_neutralize prng ~domains ~bits mc with
    | Some _ as r -> r
    | None -> boundary_nudge prng ~domains ~bits mc
  else
    match boundary_nudge prng ~domains ~bits mc with
    | Some _ as r -> r
    | None -> reverse_neutralize prng ~domains ~bits mc

(* --- dRMT mutations --------------------------------------------------------------

   The generated dRMT program is a pure function of its table count (a
   chain t_0 -> ... -> t_{k-1}), so growing the DAG = bumping the count;
   entries for the old tables remain valid in the grown program.  The cap
   mirrors the trial generator's feasibility bound (4 tables schedule under
   every drawn processor count). *)

let max_drmt_tables = 4

let fresh_entry prng ~tables =
  let t = Prng.int prng tables in
  {
    Entries.en_table = "t" ^ string_of_int t;
    en_pattern = Entries.Pexact (Prng.int prng 256);
    en_action = "act" ^ string_of_int t;
    en_args = [ 1 + Prng.int prng 255 ];
  }

(* One dRMT mutation draw: (op, tables', entries'). *)
let mutate_drmt prng ~tables ~(entries : Entries.entry list) :
    (string * int * Entries.entry list) option =
  let grow () =
    if tables >= max_drmt_tables then None
    else Some ("dag_grow", tables + 1, entries @ [ fresh_entry prng ~tables:(tables + 1) ])
  in
  let split () =
    match entries with
    | [] -> Some ("entry_split", tables, [ fresh_entry prng ~tables ])
    | _ ->
      let k = Prng.int prng (List.length entries) in
      let sibling =
        let e = List.nth entries k in
        { e with Entries.en_pattern = Entries.Pexact (Prng.int prng 256);
                 en_args = [ 1 + Prng.int prng 255 ] }
      in
      Some ("entry_split", tables, entries @ [ sibling ])
  in
  if Prng.bool prng then match grow () with Some _ as r -> r | None -> split ()
  else split ()

(* --- JSON ------------------------------------------------------------------------ *)

let manifest_schema = "druzhba-corpus/1"
let entry_schema = "druzhba-corpus-entry/1"

let origin_json = function
  | Fresh -> Report.Str "fresh"
  | Mutated { parent; op } ->
    Report.Obj [ ("parent", Report.Int parent); ("op", Report.Str op) ]

let material_json = function
  | Rmt_material { depth; width; bits; stateful; stateless; mc } ->
    Report.Obj
      [
        ("family", Report.Str "rmt");
        ("depth", Report.Int depth);
        ("width", Report.Int width);
        ("bits", Report.Int bits);
        ("stateful", Report.Str stateful);
        ("stateless", Report.Str stateless);
        ( "machine_code",
          Report.Obj (List.map (fun (n, v) -> (n, Report.Int v)) (Machine_code.to_alist mc)) );
      ]
  | Drmt_material { tables; processors; entries } ->
    Report.Obj
      [
        ("family", Report.Str "drmt");
        ("tables", Report.Int tables);
        ("processors", Report.Int processors);
        ( "entries",
          Report.List
            (List.map
               (fun (e : Entries.entry) ->
                 let pattern =
                   match e.Entries.en_pattern with
                   | Entries.Pexact v -> Report.Int v
                   | _ -> Report.Null
                 in
                 Report.Obj
                   [
                     ("table", Report.Str e.Entries.en_table);
                     ("pattern", pattern);
                     ("action", Report.Str e.Entries.en_action);
                     ("args", Report.List (List.map (fun v -> Report.Int v) e.Entries.en_args));
                   ])
               entries) );
      ]

let entry_json (e : entry) : Report.json =
  Report.Obj
    [
      ("schema", Report.Str entry_schema);
      ("id", Report.Int e.e_id);
      ("trial", Report.Int e.e_trial);
      ("origin", origin_json e.e_origin);
      ("novel_features", Report.Int e.e_novel);
      ("material", material_json e.e_material);
    ]

let entry_file id = Printf.sprintf "entry-%05d.json" id

let manifest_json ~master_seed ~(coverage : Coverage.t) ~(summary : Coverage.summary) t :
    Report.json =
  Report.Obj
    [
      ("schema", Report.Str manifest_schema);
      ("master_seed", Report.Int master_seed);
      ("coverage", Coverage.summary_json summary);
      ( "features",
        Report.List (List.map (fun f -> Report.Str f) (Coverage.features coverage)) );
      ( "entries",
        Report.List
          (List.map
             (fun e ->
               Report.Obj [ ("id", Report.Int e.e_id); ("file", Report.Str (entry_file e.e_id)) ])
             (entries t)) );
    ]

(* --- Disk -------------------------------------------------------------------------- *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* Writes the whole corpus.  Every byte is a function of (corpus, coverage,
   master seed) — nothing environmental — so two runs of the same campaign
   at different job counts produce identical directories. *)
let save dir ~master_seed ~coverage ~summary t =
  mkdir_p dir;
  List.iter
    (fun e ->
      write_file (Filename.concat dir (entry_file e.e_id)) (Report.to_string (entry_json e) ^ "\n"))
    (entries t);
  write_file
    (Filename.concat dir "corpus.json")
    (Report.to_string (manifest_json ~master_seed ~coverage ~summary t) ^ "\n")

(* --- Loading (the druzhba-corpus/1 consumer) ---------------------------------------

   Total: every malformed file, unknown schema — including an unknown
   {e coverage-section} schema inside the manifest — or missing entry file
   is an [Error], never a crash or a silently misread corpus. *)

type loaded = {
  ld_master_seed : int;
  ld_summary : Coverage.summary;
  ld_features : string list;
  ld_entries : entry list;
}

let ( let* ) = Result.bind

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | content -> Ok content
  | exception Sys_error msg -> Error msg

let jfield j key conv what =
  match Option.bind (Report.member key j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: field %S missing or mistyped" what key)

let origin_of_json = function
  | Report.Str "fresh" -> Ok Fresh
  | Report.Obj _ as j ->
    let* parent = jfield j "parent" Report.to_int "corpus entry origin" in
    let* op = jfield j "op" Report.to_str "corpus entry origin" in
    Ok (Mutated { parent; op })
  | _ -> Error "corpus entry: malformed origin"

let material_of_json j =
  let* family = jfield j "family" Report.to_str "corpus entry material" in
  match family with
  | "rmt" ->
    let* depth = jfield j "depth" Report.to_int "rmt material" in
    let* width = jfield j "width" Report.to_int "rmt material" in
    let* bits = jfield j "bits" Report.to_int "rmt material" in
    let* stateful = jfield j "stateful" Report.to_str "rmt material" in
    let* stateless = jfield j "stateless" Report.to_str "rmt material" in
    let* pairs =
      match Report.member "machine_code" j with
      | Some (Report.Obj fields) ->
        List.fold_left
          (fun acc (n, v) ->
            let* acc = acc in
            match Report.to_int v with
            | Some value -> Ok ((n, value) :: acc)
            | None -> Error (Printf.sprintf "rmt material: pair %S mistyped" n))
          (Ok []) fields
        |> Result.map List.rev
      | _ -> Error "rmt material: machine_code missing"
    in
    let* mc = Machine_code.of_pairs pairs in
    Ok (Rmt_material { depth; width; bits; stateful; stateless; mc })
  | "drmt" ->
    let* tables = jfield j "tables" Report.to_int "drmt material" in
    let* processors = jfield j "processors" Report.to_int "drmt material" in
    let* entry_list = jfield j "entries" Report.to_list "drmt material" in
    let* entries =
      List.fold_left
        (fun acc ej ->
          let* acc = acc in
          let* table = jfield ej "table" Report.to_str "drmt entry" in
          let* pattern = jfield ej "pattern" Report.to_int "drmt entry" in
          let* action = jfield ej "action" Report.to_str "drmt entry" in
          let* args = jfield ej "args" Report.to_list "drmt entry" in
          let* args =
            List.fold_left
              (fun acc a ->
                let* acc = acc in
                match Report.to_int a with
                | Some v -> Ok (v :: acc)
                | None -> Error "drmt entry: non-integer arg")
              (Ok []) args
            |> Result.map List.rev
          in
          Ok
            ({ Entries.en_table = table; en_pattern = Entries.Pexact pattern;
               en_action = action; en_args = args }
            :: acc))
        (Ok []) entry_list
      |> Result.map List.rev
    in
    Ok (Drmt_material { tables; processors; entries })
  | f -> Error (Printf.sprintf "corpus entry: unknown material family %S" f)

let entry_of_json j =
  let* got = jfield j "schema" Report.to_str "corpus entry" in
  if got <> entry_schema then
    Error
      (Printf.sprintf "unsupported corpus entry schema %S (this reader understands %S)" got
         entry_schema)
  else
    let* id = jfield j "id" Report.to_int "corpus entry" in
    let* trial = jfield j "trial" Report.to_int "corpus entry" in
    let* novel = jfield j "novel_features" Report.to_int "corpus entry" in
    let* origin = Result.bind (jfield j "origin" Option.some "corpus entry") origin_of_json in
    let* material =
      Result.bind (jfield j "material" Option.some "corpus entry") material_of_json
    in
    Ok { e_id = id; e_trial = trial; e_origin = origin; e_material = material; e_novel = novel }

let load dir : (loaded, string) result =
  let manifest = Filename.concat dir "corpus.json" in
  let* src = read_file manifest in
  let* j = Report.parse src in
  let* got = jfield j "schema" Report.to_str "corpus manifest" in
  if got <> manifest_schema then
    Error
      (Printf.sprintf "unsupported corpus schema %S (this reader understands %S)" got
         manifest_schema)
  else
    let* master_seed = jfield j "master_seed" Report.to_int "corpus manifest" in
    let* summary =
      Result.bind (jfield j "coverage" Option.some "corpus manifest") Coverage.summary_of_json
    in
    let* features =
      let* l = jfield j "features" Report.to_list "corpus manifest" in
      List.fold_left
        (fun acc f ->
          let* acc = acc in
          match Report.to_str f with
          | Some s -> Ok (s :: acc)
          | None -> Error "corpus manifest: non-string feature")
        (Ok []) l
      |> Result.map List.rev
    in
    let* index = jfield j "entries" Report.to_list "corpus manifest" in
    let* entries =
      List.fold_left
        (fun acc ij ->
          let* acc = acc in
          let* file = jfield ij "file" Report.to_str "corpus manifest entry" in
          let* src = read_file (Filename.concat dir file) in
          let* ej = Report.parse src in
          let* e = entry_of_json ej in
          Ok (e :: acc))
        (Ok []) index
      |> Result.map List.rev
    in
    Ok { ld_master_seed = master_seed; ld_summary = summary; ld_features = features;
         ld_entries = entries }
