(* Multicore differential fuzz campaigns (paper §5.2 at campaign scale).

   A campaign is N independent trials sharded over OCaml 5 domains.  Each
   trial is keyed by a seed derived from (master seed, trial index) with
   {!Prng.derive}, so the campaign's results — and its JSON report — are
   bit-identical regardless of [--jobs]; parallelism only buys wall-clock.

   One trial: draw a random small pipeline (dimensions and ALU atoms from
   the trial seed), draw random well-formed machine code for it, and run the
   cross-backend differential oracle ({!Oracle.check}): interpreter vs
   closure-compiled execution at all three optimization levels.  Any
   divergence is minimized by {!Shrink.minimize} before it is reported, so
   the report carries the smallest PHV trace and the essential machine-code
   pairs that reproduce the bug. *)

module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Dgen = Druzhba_pipeline.Dgen
module Optimizer = Druzhba_optimizer.Optimizer
module Atoms = Druzhba_atoms.Atoms
module Traffic = Druzhba_dsim.Traffic
module Phv = Druzhba_dsim.Phv
module Fuzz = Druzhba_fuzz.Fuzz

(* The atom pools a trial draws from.  Every stateful atom of the library
   is fair game; the stateless side always includes the full ALU since it
   is the only one the rule-based compiler targets, plus the small ones. *)
let stateful_pool = [| "raw"; "sub"; "pred_raw"; "if_else_raw"; "nested_ifs"; "pair" |]
let stateless_pool = [| "stateless_full"; "stateless_arith"; "stateless_rel"; "stateless_mux" |]

type config = {
  c_trials : int;
  c_jobs : int;
  c_master_seed : int;
  c_phvs : int; (* PHVs simulated per trial *)
  c_shrink : bool; (* minimize failing trials *)
  c_max_probes : int; (* shrink budget, in oracle re-runs *)
}

let config ?(trials = 100) ?(jobs = 1) ?(master_seed = 0xD52ba) ?(phvs = 100) ?(shrink = true)
    ?(max_probes = 400) () =
  { c_trials = trials; c_jobs = jobs; c_master_seed = master_seed; c_phvs = phvs;
    c_shrink = shrink; c_max_probes = max_probes }

type trial = {
  t_index : int;
  t_seed : int; (* derived; reproduces the trial on its own *)
  t_depth : int;
  t_width : int;
  t_bits : int;
  t_stateful : string;
  t_stateless : string;
  t_outcome : Oracle.outcome;
  t_shrunk : Shrink.result option; (* present iff the trial diverged and shrinking ran *)
}

type report = {
  r_config : config;
  r_trials : trial list; (* in index order *)
  r_agree : int;
  r_divergent : int;
  r_invalid : int;
}

(* --- One trial ------------------------------------------------------------ *)

let run_trial ~(cfg : config) index : trial =
  let seed = Prng.derive cfg.c_master_seed index in
  let prng = Prng.create seed in
  let depth = 1 + Prng.int prng 2 in
  let width = 1 + Prng.int prng 2 in
  let bits = [| 8; 16; 32 |].(Prng.int prng 3) in
  let stateful_name = stateful_pool.(Prng.int prng (Array.length stateful_pool)) in
  let stateless_name = stateless_pool.(Prng.int prng (Array.length stateless_pool)) in
  let desc =
    Dgen.generate
      (Dgen.config ~depth ~width ~bits ())
      ~stateful:(Atoms.find_exn stateful_name) ~stateless:(Atoms.find_exn stateless_name)
  in
  let mc = Fuzz.random_mc prng desc in
  let traffic_seed = Prng.bits prng 30 in
  let inputs = Traffic.phvs (Traffic.create ~seed:traffic_seed ~width ~bits) cfg.c_phvs in
  let outcome = Oracle.check ~desc ~mc ~inputs () in
  let shrunk =
    match outcome with
    | Oracle.Divergence _ when cfg.c_shrink ->
      let repro ~inputs ~mc =
        match Oracle.check ~desc ~mc ~inputs () with
        | Oracle.Divergence _ -> true
        | Oracle.Agree _ | Oracle.Invalid_mc _ -> false
      in
      Some (Shrink.minimize ~max_probes:cfg.c_max_probes ~repro ~inputs ~mc ())
    | _ -> None
  in
  {
    t_index = index;
    t_seed = seed;
    t_depth = depth;
    t_width = width;
    t_bits = bits;
    t_stateful = stateful_name;
    t_stateless = stateless_name;
    t_outcome = outcome;
    t_shrunk = shrunk;
  }

(* --- The campaign --------------------------------------------------------- *)

let run (cfg : config) : report =
  (* the atom library is lazy and [Lazy] is not domain-safe: force it on
     the main domain before sharding *)
  Runner.force_atoms ();
  let trials =
    Array.to_list (Runner.parallel_init ~jobs:cfg.c_jobs cfg.c_trials (fun i -> run_trial ~cfg i))
  in
  let count p = List.length (List.filter p trials) in
  {
    r_config = cfg;
    r_trials = trials;
    r_agree = count (fun t -> match t.t_outcome with Oracle.Agree _ -> true | _ -> false);
    r_divergent =
      count (fun t -> match t.t_outcome with Oracle.Divergence _ -> true | _ -> false);
    r_invalid = count (fun t -> match t.t_outcome with Oracle.Invalid_mc _ -> true | _ -> false);
  }

(* --- Rendering ------------------------------------------------------------- *)

let pp_trial ppf (t : trial) =
  Fmt.pf ppf "trial %4d (seed %d, %dx%d @ %d bits, %s/%s): %a" t.t_index t.t_seed t.t_depth
    t.t_width t.t_bits t.t_stateful t.t_stateless Oracle.pp_outcome t.t_outcome;
  match t.t_shrunk with None -> () | Some s -> Fmt.pf ppf "@,  %a" Shrink.pp s

let pp ppf (r : report) =
  Fmt.pf ppf "@[<v>campaign: %d trials, master seed %d, %d PHVs/trial@," r.r_config.c_trials
    r.r_config.c_master_seed r.r_config.c_phvs;
  Fmt.pf ppf "  agree:      %d@," r.r_agree;
  Fmt.pf ppf "  divergence: %d@," r.r_divergent;
  Fmt.pf ppf "  invalid mc: %d@," r.r_invalid;
  List.iter
    (fun t ->
      if not (Oracle.outcome_agrees t.t_outcome) then Fmt.pf ppf "  %a@," pp_trial t)
    r.r_trials;
  Fmt.pf ppf "@]"

(* --- JSON report ------------------------------------------------------------

   Byte-deterministic for a fixed master seed: trials are emitted in index
   order and nothing environmental (job count, timing) appears. *)

let json_of_outcome (o : Oracle.outcome) : Report.json =
  match o with
  | Oracle.Agree { configs; phvs } ->
    Report.Obj [ ("class", Report.Str "agree"); ("configs", Report.Int configs);
                 ("phvs", Report.Int phvs) ]
  | Oracle.Invalid_mc violations ->
    Report.Obj
      [
        ("class", Report.Str "invalid_machine_code");
        ( "violations",
          Report.List
            (List.map
               (fun v -> Report.Str (Fmt.str "%a" Machine_code.pp_violation v))
               violations) );
      ]
  | Oracle.Divergence d ->
    let kind, where =
      match d.Oracle.dv_kind with
      | `Output (i, c) ->
        ("output", Report.Obj [ ("phv", Report.Int i); ("container", Report.Int c) ])
      | `State (alu, slot) ->
        ("state", Report.Obj [ ("alu", Report.Str alu); ("slot", Report.Int slot) ])
      | `Shape -> ("shape", Report.Null)
    in
    Report.Obj
      [
        ("class", Report.Str "backend_divergence");
        ("backend", Report.Str (Oracle.backend_name d.Oracle.dv_backend));
        ("level", Report.Str (Optimizer.level_name d.Oracle.dv_level));
        ("kind", Report.Str kind);
        ("where", where);
        ("expected", Report.Int d.Oracle.dv_expected);
        ("actual", Report.Int d.Oracle.dv_actual);
      ]

let json_of_shrunk (s : Shrink.result) : Report.json =
  Report.Obj
    [
      ("phvs", Report.List (List.map Report.phv s.Shrink.sh_inputs));
      ("essential_pairs", Report.List (List.map (fun n -> Report.Str n) s.Shrink.sh_essential));
      ( "machine_code",
        Report.Obj
          (List.map (fun (n, v) -> (n, Report.Int v)) (Machine_code.to_alist s.Shrink.sh_mc)) );
      ("probes", Report.Int s.Shrink.sh_probes);
    ]

let json_of_trial (t : trial) : Report.json =
  let base =
    [
      ("index", Report.Int t.t_index);
      ("seed", Report.Int t.t_seed);
      ("depth", Report.Int t.t_depth);
      ("width", Report.Int t.t_width);
      ("bits", Report.Int t.t_bits);
      ("stateful", Report.Str t.t_stateful);
      ("stateless", Report.Str t.t_stateless);
      ("outcome", json_of_outcome t.t_outcome);
    ]
  in
  let shrunk =
    match t.t_shrunk with None -> [] | Some s -> [ ("shrunk", json_of_shrunk s) ]
  in
  Report.Obj (base @ shrunk)

let to_json (r : report) : string
    =
  Report.to_string
    (Report.Obj
       [
         ("campaign", Report.Str "differential");
         ("master_seed", Report.Int r.r_config.c_master_seed);
         ("trials", Report.Int r.r_config.c_trials);
         ("phvs_per_trial", Report.Int r.r_config.c_phvs);
         ( "summary",
           Report.Obj
             [
               ("agree", Report.Int r.r_agree);
               ("backend_divergence", Report.Int r.r_divergent);
               ("invalid_machine_code", Report.Int r.r_invalid);
             ] );
         ("results", Report.List (List.map json_of_trial r.r_trials));
       ])
