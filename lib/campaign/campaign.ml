(* Multicore differential fuzz campaigns (paper §5.2 at campaign scale).

   A campaign is N independent trials sharded over OCaml 5 domains.  Each
   trial is keyed by a seed derived from (master seed, trial index) with
   {!Prng.derive}, so the campaign's results — and its JSON report — are
   bit-identical regardless of [--jobs]; parallelism only buys wall-clock.

   One trial runs a differential check over a substrate family:

   - {b RMT}: draw a random small pipeline (dimensions and ALU atoms from
     the trial seed), draw random well-formed machine code for it, and run
     the cross-backend oracle ({!Oracle.check}): interpreter vs
     closure-compiled execution at all three optimization levels.
   - {b dRMT}: draw a random table-chain P4 program, random table entries
     and a random processor count, and judge the event-driven dRMT model
     against the sequential P4 reference semantics
     ({!Oracle.diff_substrates} over {!Oracle.drmt_substrates}).  Generated
     register updates are commutative and never feed back into matches or
     field writes, so full trace+state equality is a sound oracle even
     when packets overlap in the event-driven schedule.

   [substrate] selects the family: [`Rmt], [`Drmt], or [`All] (trials
   alternate by index, so a fixed master seed exercises both sides
   deterministically).  Any divergence is minimized by {!Shrink} before it
   is reported, so the report carries the smallest PHV trace (and, for RMT,
   the essential machine-code pairs) that reproduces the bug.

   Robustness layer (this file's second job): a campaign must *finish* even
   when individual trials misbehave.

   - {b crash containment}: an exception escaping a trial becomes a
     structured [Crashed] outcome carrying the exception text, a bounded
     backtrace, and the trial seed — never a dead worker or a lost report.
   - {b watchdog}: an optional per-trial tick budget ({!Druzhba_dsim.Budget})
     turns runaway simulations into [Timed_out] outcomes.  Fuel is
     deterministic where a wall clock is not, so timeouts reproduce and the
     report stays byte-identical across job counts.
   - {b circuit breaker}: [max_failures] stops the campaign at the Nth
     failing trial (by index, independent of scheduling) with a partial but
     complete-as-far-as-it-went report.
   - {b checkpoint/resume}: trials run in fixed-size blocks; after each
     block the campaign can persist a {!Checkpoint} and a killed run can
     [resume] from it, reconstructing the uneventful prefix from seeds and
     producing a byte-identical final report.
   - {b fault injection}: with [faults] enabled, every agreeing trial is
     additionally stressed under seeded hardware-fault overlays
     ({!Druzhba_dsim.Faults}); the two substrates must agree *under* faults
     and a fault-free replay must match the pristine reference. *)

module Prng = Druzhba_util.Prng
module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Compile = Druzhba_pipeline.Compile
module Optimizer = Druzhba_optimizer.Optimizer
module Atoms = Druzhba_atoms.Atoms
module Traffic = Druzhba_dsim.Traffic
module Phv = Druzhba_dsim.Phv
module Trace = Druzhba_dsim.Trace
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Budget = Druzhba_dsim.Budget
module Faults = Druzhba_dsim.Faults
module Substrate = Druzhba_dsim.Substrate
module Drmt_substrate = Druzhba_dsim.Drmt_substrate
module P4 = Druzhba_drmt.P4
module Scheduler = Druzhba_drmt.Scheduler
module Entries = Druzhba_drmt.Entries
module Fuzz = Druzhba_fuzz.Fuzz

(* The atom pools a trial draws from.  Every stateful atom of the library
   is fair game; the stateless side always includes the full ALU since it
   is the only one the rule-based compiler targets, plus the small ones. *)
let stateful_pool = [| "raw"; "sub"; "pred_raw"; "if_else_raw"; "nested_ifs"; "pair" |]
let stateless_pool = [| "stateless_full"; "stateless_arith"; "stateless_rel"; "stateless_mux" |]

(* Which substrate family a trial exercises. *)
type family = Rmt | Drmt | Native

(* The substrate registry: every selector name the CLI and the service
   accept, mapped to the family rotation its trials draw from.  A
   multi-member selection alternates members by trial index — deterministic
   in the index alone, so resume and any [--jobs] count see the same
   split.  Adding a backend family is one row here (plus its trial body);
   the CLI, the service protocol, checkpoint signatures, and report
   provenance all read this table. *)
let registry : (string * family list) list =
  [ ("rmt", [ Rmt ]); ("drmt", [ Drmt ]); ("all", [ Rmt; Drmt ]); ("native", [ Native ]) ]

let substrate_names = List.map fst registry
let families_of_name name = List.assoc_opt name registry

(* Number of configurations each family's oracle compares. *)
let family_configs = function Rmt -> 6 | Drmt -> 2 | Native -> 3

type fault_config = {
  fc_runs : int; (* fault scenarios per agreeing trial *)
  fc_per_run : int; (* faults drawn per scenario *)
}

let fault_config ?(runs = 8) ?(per_run = 2) () =
  if runs <= 0 then invalid_arg "Campaign.fault_config: runs must be positive";
  if per_run <= 0 then invalid_arg "Campaign.fault_config: per_run must be positive";
  { fc_runs = runs; fc_per_run = per_run }

type config = {
  c_trials : int;
  c_jobs : int;
  c_master_seed : int;
  c_substrate : string; (* substrate-registry name: which families trials exercise *)
  c_phvs : int; (* PHVs simulated per trial *)
  c_batch : int; (* lane count for the substrates' batched execution paths *)
  c_shrink : bool; (* minimize failing trials *)
  c_max_probes : int; (* shrink budget, in oracle re-runs *)
  c_fuel : int option; (* per-trial tick budget (watchdog); None = unlimited *)
  c_max_failures : int option; (* circuit breaker; None = run to completion *)
  c_faults : fault_config option; (* fault-injection mode *)
  c_checkpoint_every : int; (* block size: trials between checkpoints *)
  c_coverage : bool; (* coverage-guided mode: track coverage, evolve a corpus *)
  c_corpus_dir : string option; (* where to persist the corpus (coverage mode) *)
  c_sabotage_pass : bool;
      (* plant {!Sabotage}'s buggy optimizer pass in every RMT trial's
         oracle: the acceptance gate for coverage-guided mode (the trigger
         is provably unreachable by uniform-random machine code) *)
  c_hook : (int -> unit) option; (* test-only: runs at trial start (chaos injection) *)
  c_sabotage : (int -> bool) option;
      (* test-only: dRMT trials for which this answers true run the
         event-driven candidate with semantically mutated table entries, so
         the oracle MUST report a divergence (end-to-end proof that an
         injected bug is caught with a replayable seed) *)
}

let config ?(trials = 100) ?(jobs = 1) ?(master_seed = 0xD52ba) ?(substrate = "rmt")
    ?(phvs = 100) ?(batch = Substrate.default_batch) ?(shrink = true) ?(max_probes = 400)
    ?fuel ?max_failures ?faults ?(checkpoint_every = 64) ?(coverage = false) ?corpus_dir
    ?(sabotage_pass = false) ?hook ?sabotage () =
  (match fuel with
  | Some f when f <= 0 -> invalid_arg "Campaign.config: fuel must be positive"
  | _ -> ());
  (match max_failures with
  | Some m when m <= 0 -> invalid_arg "Campaign.config: max_failures must be positive"
  | _ -> ());
  if batch < 1 then invalid_arg "Campaign.config: batch must be positive";
  if families_of_name substrate = None then
    invalid_arg
      (Printf.sprintf "Campaign.config: unknown substrate %S (expected one of %s)" substrate
         (String.concat ", " substrate_names));
  if checkpoint_every <= 0 then invalid_arg "Campaign.config: checkpoint_every must be positive";
  if corpus_dir <> None && not coverage then
    invalid_arg "Campaign.config: corpus_dir requires coverage mode";
  { c_trials = trials; c_jobs = jobs; c_master_seed = master_seed; c_substrate = substrate;
    c_phvs = phvs; c_batch = batch; c_shrink = shrink; c_max_probes = max_probes; c_fuel = fuel;
    c_max_failures = max_failures; c_faults = faults; c_checkpoint_every = checkpoint_every;
    c_coverage = coverage; c_corpus_dir = corpus_dir; c_sabotage_pass = sabotage_pass;
    c_hook = hook; c_sabotage = sabotage }

(* Trials rotate through the selection's families by index — deterministic
   in the index alone, so resume and any job count see the same split
   (under "all", even indices are RMT and odd are dRMT, as before the
   registry existed). *)
let family_of ~(cfg : config) index =
  match families_of_name cfg.c_substrate with
  | Some members -> List.nth members (index mod List.length members)
  | None -> invalid_arg (Printf.sprintf "Campaign.family_of: unknown substrate %S" cfg.c_substrate)

(* Fault-mode verdict for one trial: how sensitive the program is to
   injected faults, whether the substrates stayed in lock-step under them,
   and whether a fault-free replay still matches the pristine reference
   (i.e. the overlay leaked nothing into the no-fault path). *)
type fault_stats = {
  fs_runs : int;
  fs_sensitive : int; (* scenarios whose output departed from the fault-free reference *)
  fs_substrate_mismatch : int; (* scenarios where Engine and Compiled disagreed under faults *)
  fs_replay_ok : bool; (* fault-free replay after the fault runs equals the reference *)
}

type outcome =
  | Finished of Oracle.outcome
  | Crashed of { cr_exn : string; cr_backtrace : string }
  | Timed_out of { to_fuel : int (* the budget that was exhausted *) }

(* The drawn shape of one trial, per family.  Both variants are fully
   determined by the trial seed, so a checkpoint only needs the seed to
   reconstruct them. *)
type params =
  | Rmt_params of { depth : int; width : int; bits : int; stateful : string; stateless : string }
  | Drmt_params of { tables : int; processors : int; entries : int }
  | Native_params of {
      depth : int;
      width : int;
      bits : int;
      stateful : string;
      stateless : string;
    } (* same draw shape as RMT; the trial runs the native-codegen oracle *)

type trial = {
  t_index : int;
  t_seed : int; (* derived; reproduces the trial on its own *)
  t_params : params;
  t_origin : Corpus.origin option; (* coverage mode: how this trial's program arose *)
  t_outcome : outcome;
  t_shrunk : Shrink.result option; (* present iff the trial diverged and shrinking ran *)
  t_faults : fault_stats option; (* present iff fault mode ran on this trial *)
}

(* What a coverage-mode trial hands back to the block loop besides its
   trial record: the coverage it reached and the material the corpus would
   store if that coverage turns out to be novel.  Novelty itself is judged
   at the block boundary, in index order, against the merged global map —
   never inside the (parallel) trial. *)
type trial_extra = { x_coverage : Coverage.t; x_material : Corpus.material }

(* Coverage-mode accounting surfaced in the report (and rendered as the
   druzhba-coverage/1 section of the JSON). *)
type coverage_stats = {
  cv_coverage : Coverage.t;
  cv_novel_trials : int;
  cv_corpus_entries : int;
  cv_corpus_fresh : int;
  cv_corpus_mutated : int;
}

type report = {
  r_config : config;
  r_trials : trial list; (* in index order; trimmed at the breaker's cutoff *)
  r_coverage : coverage_stats option; (* present iff coverage mode ran *)
  r_notes : string list;
      (* structured campaign-level degradation notes (e.g. the native
         toolchain being unavailable), deterministic in the configuration
         and environment — never per-trial, never timing-dependent *)
  r_agree : int;
  r_divergent : int;
  r_invalid : int;
  r_crashed : int;
  r_timeout : int;
  r_fault_flagged : int; (* trials with substrate mismatch or replay corruption *)
  r_stopped_after : int option; (* Some i: the breaker fired at trial i *)
}

(* A trial counts against the circuit breaker when it found anything that
   needs a human: a divergence, invalid machine code from the generator, a
   crash, a timeout, or a fault-mode substrate mismatch / replay leak.
   Fault *sensitivity* alone is expected (faults are supposed to perturb
   outputs) and does not trip the breaker. *)
let fault_flagged = function
  | Some fs -> fs.fs_substrate_mismatch > 0 || not fs.fs_replay_ok
  | None -> false

let trial_failed (t : trial) =
  match t.t_outcome with
  | Finished (Oracle.Agree _) -> fault_flagged t.t_faults
  | Finished (Oracle.Divergence _ | Oracle.Invalid_mc _) | Crashed _ | Timed_out _ -> true

(* --- One trial ------------------------------------------------------------ *)

(* Fresh-trial parameter draws, shared between the uniform-random path and
   coverage mode's "sample fresh" arm (which has already consumed decision
   draws from the same PRNG). *)
let draw_params family prng =
  match family with
  | Rmt ->
    let depth = 1 + Prng.int prng 2 in
    let width = 1 + Prng.int prng 2 in
    let bits = [| 8; 16; 32 |].(Prng.int prng 3) in
    let stateful = stateful_pool.(Prng.int prng (Array.length stateful_pool)) in
    let stateless = stateless_pool.(Prng.int prng (Array.length stateless_pool)) in
    Rmt_params { depth; width; bits; stateful; stateless }
  | Drmt ->
    (* feasible by construction: tables <= 4 and the default per-processor
       crossbar capacities admit 4 matches/actions even at 1 processor *)
    let tables = 1 + Prng.int prng 4 in
    let processors = 1 + Prng.int prng 4 in
    let entries = Prng.int prng (4 * tables) in
    Drmt_params { tables; processors; entries }
  | Native ->
    (* identical draw sequence to RMT, so the same seed exercises the same
       program shape on either selector *)
    let depth = 1 + Prng.int prng 2 in
    let width = 1 + Prng.int prng 2 in
    let bits = [| 8; 16; 32 |].(Prng.int prng 3) in
    let stateful = stateful_pool.(Prng.int prng (Array.length stateful_pool)) in
    let stateless = stateless_pool.(Prng.int prng (Array.length stateless_pool)) in
    Native_params { depth; width; bits; stateful; stateless }

(* Trial parameters are the first draws from the trial PRNG — kept as a
   separate function because checkpoint resume re-derives them for trials
   whose full record was not persisted.  The returned PRNG continues the
   stream (the trial body draws programs and traffic seeds from it). *)
let trial_params family seed =
  let prng = Prng.create seed in
  (prng, draw_params family prng)

(* --- dRMT trial material -----------------------------------------------------

   A generated dRMT program is a dependency chain: table i keys exactly on
   8-bit field f_i and its action adds the matched argument into f_{i+1}
   (so entries steer later matches) and bumps a private per-table register.
   Register updates are commutative increments and registers are never read
   into matches or field writes — the one program shape for which full
   trace + final-state equality between the event-driven schedule and the
   sequential reference is a sound oracle even when packets overlap. *)

let drmt_program ~tables : P4.t =
  let field i = "f" ^ string_of_int i in
  let act i = "act" ^ string_of_int i in
  let tbl i = "t" ^ string_of_int i in
  let headers = [ { P4.h_name = "h"; h_fields = List.init (tables + 1) (fun i -> (field i, 8)) } ] in
  let actions =
    List.init tables (fun i ->
        {
          P4.a_name = act i;
          a_params = [ "v" ];
          a_body =
            [
              P4.Assign
                ( P4.Header ("h", field (i + 1)),
                  P4.Binop (P4.Add, P4.Ref (P4.Header ("h", field (i + 1))), P4.Param "v") );
              P4.Assign
                ( P4.Reg ("r" ^ string_of_int i),
                  P4.Binop (P4.Add, P4.Ref (P4.Reg ("r" ^ string_of_int i)), P4.Int 1) );
            ];
        })
  in
  let tables_l =
    List.init tables (fun i ->
        {
          P4.t_name = tbl i;
          t_key = P4.Header ("h", field i);
          t_match = P4.Exact;
          t_actions = [ act i ];
          t_default = (act i, [ 0 ]);
        })
  in
  { P4.headers; actions; tables = tables_l; control = List.init tables tbl }

let drmt_entries prng ~tables ~count =
  List.init count (fun _ ->
      let t = Prng.int prng tables in
      {
        Entries.en_table = "t" ^ string_of_int t;
        en_pattern = Entries.Pexact (Prng.int prng 256);
        en_action = "act" ^ string_of_int t;
        en_args = [ 1 + Prng.int prng 255 ];
      })

(* Semantic mutation for the acceptance test: bump every installed entry's
   argument and every table's default argument, so the mutated configuration
   computes different field values on every packet. *)
let sabotage_entries entries =
  List.map
    (fun (e : Entries.entry) ->
      { e with Entries.en_args = List.map (fun v -> v + 1) e.Entries.en_args })
    entries

let sabotage_program (p : P4.t) =
  {
    p with
    P4.tables =
      List.map
        (fun (t : P4.table) ->
          let name, args = t.P4.t_default in
          { t with P4.t_default = (name, List.map (fun v -> v + 1) args) })
        p.P4.tables;
  }

(* Backtraces are captured where the exception is *caught* (inside the
   trial), so they contain only frames below the handler — identical
   whichever domain ran the trial, which keeps crash records byte-stable
   across [--jobs]. *)
let backtrace_text () =
  match Printexc.get_backtrace () with "" -> "<backtrace not recorded>" | bt -> bt

(* Runs [fc_runs] seeded fault scenarios against an already-agreeing trial,
   on any substrate pair: the two substrates must agree *under* the same
   fault plan, departing from the fault-free reference is mere sensitivity,
   and a fault-free replay afterwards must match the pristine reference on
   both (the overlay must leave no residue).  [gen_plan k] builds the k-th
   scenario's plan — substrate-family-specific geometry lives in the
   caller.  Scenario seeds derive from the trial seed, so fault mode is as
   reproducible as the trial itself. *)
let run_faults ?budget ?batch ~(fc : fault_config)
    ~(pair : Substrate.packed * Substrate.packed) ~(gen_plan : int -> Faults.t) ~inputs () :
    fault_stats =
  (* every sub-run gets a full tank: the watchdog bounds each simulation,
     not their sum, so enabling faults never shifts timeout behaviour *)
  let refill () = match budget with Some b -> Budget.refill b | None -> () in
  let sub_a, sub_b = pair in
  let capacity = List.length inputs in
  let ref_buf = Trace.Buffer.create ~width:(Substrate.width sub_a) ~capacity in
  let a_buf = Trace.Buffer.create ~width:(Substrate.width sub_a) ~capacity in
  let b_buf = Trace.Buffer.create ~width:(Substrate.width sub_b) ~capacity in
  refill ();
  Substrate.run_batch_into ?budget ?batch sub_a ~inputs ref_buf;
  let ref_state = Substrate.current_state sub_a in
  let sensitive = ref 0 and mismatch = ref 0 in
  for k = 1 to fc.fc_runs do
    let plan = gen_plan k in
    refill ();
    Substrate.run_batch_into ?budget ?batch ~faults:plan sub_a ~inputs a_buf;
    let a_state = Substrate.current_state sub_a in
    refill ();
    Substrate.run_batch_into ?budget ?batch ~faults:plan sub_b ~inputs b_buf;
    let b_state = Substrate.current_state sub_b in
    (* the two substrates must agree *under* the same faults... *)
    if Oracle.diff_runs ~ref_buf:a_buf ~ref_state:a_state ~act_buf:b_buf ~act_state:b_state <> None
    then incr mismatch;
    (* ...while departing from the fault-free reference is mere sensitivity *)
    if Oracle.diff_runs ~ref_buf ~ref_state ~act_buf:a_buf ~act_state:a_state <> None then
      incr sensitive
  done;
  (* fault-free replay on the same substrates: the overlay must leave no residue *)
  refill ();
  Substrate.run_batch_into ?budget ?batch sub_a ~inputs a_buf;
  let replay_a =
    Oracle.diff_runs ~ref_buf ~ref_state ~act_buf:a_buf
      ~act_state:(Substrate.current_state sub_a)
    = None
  in
  refill ();
  Substrate.run_batch_into ?budget ?batch sub_b ~inputs b_buf;
  let replay_b =
    Oracle.diff_runs ~ref_buf ~ref_state ~act_buf:b_buf
      ~act_state:(Substrate.current_state sub_b)
    = None
  in
  {
    fs_runs = fc.fc_runs;
    fs_sensitive = !sensitive;
    fs_substrate_mismatch = !mismatch;
    fs_replay_ok = replay_a && replay_b;
  }

(* The RMT trial body: random pipeline + machine code, six-configuration
   oracle, machine-code-aware shrinking, per-stage fault geometry.

   [mc_override] (coverage mode) supplies a corpus mutant instead of a
   fresh random draw.  Under [c_sabotage_pass] the oracle runs with
   {!Sabotage.transform} planted on the post-optimizer candidates —
   rebuilt per shrink probe so the trigger tracks the neutralized code.
   In coverage mode the trial also replays its inputs on an instrumented
   reference engine and returns the structural coverage reached. *)
let run_rmt_trial ~(cfg : config) ~seed ~prng ?mc_override ~depth ~width ~bits ~stateful_name
    ~stateless_name () =
  let desc =
    Dgen.generate
      (Dgen.config ~depth ~width ~bits ())
      ~stateful:(Atoms.find_exn stateful_name) ~stateless:(Atoms.find_exn stateless_name)
  in
  let mc = match mc_override with Some mc -> mc | None -> Fuzz.random_mc prng desc in
  let traffic_seed = Prng.bits prng 30 in
  let inputs = Traffic.phvs (Traffic.create ~seed:traffic_seed ~width ~bits) cfg.c_phvs in
  let budget = Option.map Budget.ticks cfg.c_fuel in
  let transform_for mc = if cfg.c_sabotage_pass then Some (Sabotage.transform ~mc) else None in
  let outcome =
    Oracle.check ?budget ~batch:cfg.c_batch ?transform:(transform_for mc) ~desc ~mc ~inputs ()
  in
  let shrunk =
    match outcome with
    | Oracle.Divergence _ when cfg.c_shrink ->
      let repro ~inputs ~mc =
        (* each probe gets the full budget; a probe that still exhausts
           it is treated as non-reproducing by the shrinker *)
        (match budget with Some b -> Budget.refill b | None -> ());
        match
          Oracle.check ?budget ~batch:cfg.c_batch ?transform:(transform_for mc) ~desc ~mc
            ~inputs ()
        with
        | Oracle.Divergence _ -> true
        | Oracle.Agree _ | Oracle.Invalid_mc _ -> false
      in
      Some (Shrink.minimize ~max_probes:cfg.c_max_probes ~repro ~inputs ~mc ())
    | _ -> None
  in
  let faults =
    match (cfg.c_faults, outcome) with
    | Some fc, Oracle.Agree _ ->
      let pair =
        ( Substrate.of_engine ~label:"interpreter@unoptimized" desc ~mc,
          Substrate.of_compiled ~label:"closures@unoptimized" (Compile.compile desc ~mc) )
      in
      let gen_plan k =
        Faults.generate ~seed:(Prng.derive seed k) ~desc ~n_inputs:(List.length inputs)
          ~count:fc.fc_per_run ()
      in
      Some (run_faults ?budget ~batch:cfg.c_batch ~fc ~pair ~gen_plan ~inputs ())
    | _ -> None
  in
  let extra =
    if not cfg.c_coverage then None
    else begin
      (* coverage replay runs on the pristine reference engine with its own
         full tank, like every other sub-run *)
      (match budget with Some b -> Budget.refill b | None -> ());
      let shape =
        Coverage.rmt_shape ~depth ~width ~bits ~stateful:stateful_name ~stateless:stateless_name
      in
      let x_coverage = Coverage.of_rmt_trial ?budget ~shape ~desc ~mc ~inputs () in
      let x_material =
        Corpus.Rmt_material
          { depth; width; bits; stateful = stateful_name; stateless = stateless_name; mc }
      in
      Some { x_coverage; x_material }
    end
  in
  (Finished outcome, shrunk, faults, extra)

(* The native trial body: the same random pipeline + machine code draw as
   RMT, but the oracle is the three-configuration native-codegen check —
   interpreter reference, closures at scc+inline, and the Dynlinked module
   emitted from the same description.  When the native toolchain is
   unavailable the trial degrades to {!Oracle.check_native_fallback}
   (closures standing in under the ["native-fallback@scc-inline"] label):
   same configuration count, same seeds, same classification space, so
   reports stay byte-deterministic and the degradation is reported once,
   in the campaign notes, not per trial.

   Fault mode pairs the native artifact against the interpreter — the two
   most unlike substrates in the repo — under the shared stuck/flip/drop
   overlay protocol. *)
let run_native_trial ~(cfg : config) ~seed ~prng ~depth ~width ~bits ~stateful_name
    ~stateless_name () =
  let desc =
    Dgen.generate
      (Dgen.config ~depth ~width ~bits ())
      ~stateful:(Atoms.find_exn stateful_name) ~stateless:(Atoms.find_exn stateless_name)
  in
  let mc = Fuzz.random_mc prng desc in
  let traffic_seed = Prng.bits prng 30 in
  let inputs = Traffic.phvs (Traffic.create ~seed:traffic_seed ~width ~bits) cfg.c_phvs in
  let budget = Option.map Budget.ticks cfg.c_fuel in
  let check mc =
    match Oracle.check_native ?budget ~batch:cfg.c_batch ~desc ~mc ~inputs () with
    | Ok outcome -> outcome
    | Error _unavailable -> Oracle.check_native_fallback ?budget ~batch:cfg.c_batch ~desc ~mc ~inputs ()
  in
  let outcome = check mc in
  let shrunk =
    match outcome with
    | Oracle.Divergence _ when cfg.c_shrink ->
      let repro ~inputs:inputs' ~mc =
        (match budget with Some b -> Budget.refill b | None -> ());
        match
          match Oracle.check_native ?budget ~batch:cfg.c_batch ~desc ~mc ~inputs:inputs' () with
          | Ok outcome -> outcome
          | Error _ ->
            Oracle.check_native_fallback ?budget ~batch:cfg.c_batch ~desc ~mc ~inputs:inputs' ()
        with
        | Oracle.Divergence _ -> true
        | Oracle.Agree _ | Oracle.Invalid_mc _ -> false
      in
      Some (Shrink.minimize ~max_probes:cfg.c_max_probes ~repro ~inputs ~mc ())
    | _ -> None
  in
  let faults =
    match (cfg.c_faults, outcome) with
    | Some fc, Oracle.Agree _ ->
      let optimized = Optimizer.apply ~level:Oracle.native_level ~mc desc in
      let candidate =
        match
          Druzhba_dsim.Native_substrate.create ~label:"native@scc-inline" optimized ~mc
        with
        | Ok native -> native
        | Error _ ->
          Substrate.of_compiled ~label:"native-fallback@scc-inline" (Compile.compile optimized ~mc)
      in
      let pair = (Substrate.of_engine ~label:"interpreter@unoptimized" desc ~mc, candidate) in
      let gen_plan k =
        Faults.generate ~seed:(Prng.derive seed k) ~desc ~n_inputs:(List.length inputs)
          ~count:fc.fc_per_run ()
      in
      Some (run_faults ?budget ~batch:cfg.c_batch ~fc ~pair ~gen_plan ~inputs ())
    | _ -> None
  in
  (Finished outcome, shrunk, faults, None)

(* The dRMT trial body: random chain program + entries, event-driven vs
   sequential oracle, input-only shrinking, input-path fault geometry.
   [entries_override] (coverage mode) installs a corpus mutant's entry list
   instead of a fresh random draw. *)
let run_drmt_trial ~(cfg : config) ~seed ~prng ~index ?entries_override ~tables ~processors
    ~n_entries () =
  let p = drmt_program ~tables in
  let entries =
    match entries_override with
    | Some entries -> entries
    | None -> drmt_entries prng ~tables ~count:n_entries
  in
  let traffic_seed = Prng.bits prng 30 in
  let sched_cfg = Scheduler.config ~processors () in
  let sabotaged = match cfg.c_sabotage with Some f -> f index | None -> false in
  (* the reference always runs the pristine configuration; under sabotage
     the event-driven candidate gets semantically mutated tables *)
  let candidate_p = if sabotaged then sabotage_program p else p in
  let candidate_entries = if sabotaged then sabotage_entries entries else entries in
  let reference =
    Drmt_substrate.create ~mode:Drmt_substrate.Sequential ~entries p
  in
  let substrates () =
    [
      Drmt_substrate.pack reference;
      Drmt_substrate.of_p4 ~cfg:sched_cfg ~mode:Drmt_substrate.Event ~entries:candidate_entries
        candidate_p;
    ]
  in
  let inputs = Drmt_substrate.traffic ~seed:traffic_seed reference cfg.c_phvs in
  let budget = Option.map Budget.ticks cfg.c_fuel in
  let check inputs =
    Oracle.diff_substrates ?budget ~batch:cfg.c_batch ~substrates:(substrates ()) ~inputs ()
  in
  let outcome = check inputs in
  let shrunk =
    match outcome with
    | Oracle.Divergence _ when cfg.c_shrink ->
      let repro ~inputs =
        (match budget with Some b -> Budget.refill b | None -> ());
        match check inputs with
        | Oracle.Divergence _ -> true
        | Oracle.Agree _ | Oracle.Invalid_mc _ -> false
      in
      Some (Shrink.minimize_inputs ~max_probes:cfg.c_max_probes ~repro ~inputs ())
    | _ -> None
  in
  let faults =
    match (cfg.c_faults, outcome) with
    | Some fc, Oracle.Agree _ ->
      let pair =
        match substrates () with
        | [ a; b ] -> (a, b)
        | _ -> assert false
      in
      let gen_plan k =
        (* input-path plan on the dRMT trace geometry; generated header
           fields are 8-bit wide *)
        Faults.generate_io ~seed:(Prng.derive seed k)
          ~width:(Drmt_substrate.width reference)
          ~bits:8 ~n_inputs:(List.length inputs) ~count:fc.fc_per_run ()
      in
      Some (run_faults ?budget ~batch:cfg.c_batch ~fc ~pair ~gen_plan ~inputs ())
    | _ -> None
  in
  let extra =
    if not cfg.c_coverage then None
    else begin
      (match budget with Some b -> Budget.refill b | None -> ());
      let shape = Coverage.drmt_shape ~tables ~processors in
      let x_coverage = Coverage.of_drmt_trial ?budget ~shape ~p ~entries ~inputs () in
      Some { x_coverage; x_material = Corpus.Drmt_material { tables; processors; entries } }
    end
  in
  (Finished outcome, shrunk, faults, extra)

(* --- Coverage-mode generation -------------------------------------------------

   A coverage-mode trial first decides — from its own derived PRNG, before
   any parameter draw — whether to mutate a corpus member of its family
   (3 in 4, when the block-start snapshot has one) or to sample fresh.
   Mutants re-enter the normal trial body with the mutated material
   overriding the random draw; a mutation that does not apply falls back
   to fresh sampling with the same PRNG.  Everything is a pure function of
   (master seed, index, snapshot), and the snapshot only changes at block
   boundaries, so generation is byte-deterministic across [--jobs]. *)

let pick_mutation prng family (snapshot : Corpus.entry array) =
  let mine =
    Array.of_list
      (List.filter
         (fun e ->
           match family with
           | Rmt -> Corpus.is_rmt e
           | Drmt -> not (Corpus.is_rmt e)
           (* the corpus stores no native material; native trials always
              sample fresh *)
           | Native -> false)
         (Array.to_list snapshot))
  in
  if Array.length mine = 0 || Prng.int prng 4 >= 3 then None
  else begin
    let parent = mine.(Prng.int prng (Array.length mine)) in
    match parent.Corpus.e_material with
    | Corpus.Rmt_material { depth; width; bits; stateful; stateless; mc } -> (
      (* domains come from the regenerated description — a pure function of
         the stored parameters *)
      let desc =
        Dgen.generate
          (Dgen.config ~depth ~width ~bits ())
          ~stateful:(Atoms.find_exn stateful) ~stateless:(Atoms.find_exn stateless)
      in
      match Corpus.mutate_rmt prng ~domains:(Ir.control_domains desc) ~bits mc with
      | None -> None
      | Some (op, mc') ->
        Some
          ( Corpus.Mutated { parent = parent.Corpus.e_id; op },
            Rmt_params { depth; width; bits; stateful; stateless },
            `Rmt_mc mc' ))
    | Corpus.Drmt_material { tables; processors; entries } -> (
      match Corpus.mutate_drmt prng ~tables ~entries with
      | None -> None
      | Some (op, tables', entries') ->
        Some
          ( Corpus.Mutated { parent = parent.Corpus.e_id; op },
            Drmt_params { tables = tables'; processors; entries = List.length entries' },
            `Drmt_entries entries' ))
  end

let run_trial ?(snapshot = [||]) ~(cfg : config) index : trial * trial_extra option =
  (* backtrace recording is per-domain in OCaml 5, so arm it here (on
     whichever worker runs the trial) rather than once in [run] *)
  Printexc.record_backtrace true;
  let seed = Prng.derive cfg.c_master_seed index in
  let family = family_of ~cfg index in
  let prng, t_origin, params, override =
    if not cfg.c_coverage then
      let prng, params = trial_params family seed in
      (prng, None, params, `None)
    else begin
      (* coverage mode: the mutate-or-fresh decision draws come first on the
         same trial PRNG, so the whole trial — including a fresh fallback —
         is a pure function of (master seed, index, block-start snapshot) *)
      let prng = Prng.create seed in
      match pick_mutation prng family snapshot with
      | Some (origin, params, override) -> (prng, Some origin, params, override)
      | None -> (prng, Some Corpus.Fresh, draw_params family prng, `None)
    end
  in
  let finish (t_outcome, t_shrunk, t_faults, extra) =
    ( { t_index = index; t_seed = seed; t_params = params; t_origin; t_outcome; t_shrunk;
        t_faults },
      extra )
  in
  (* Containment boundary: everything below — generation, simulation,
     shrinking, fault runs, the chaos hook — is folded into a structured
     outcome.  Budget exhaustion is its own class; any other exception is a
     crash record with the trial seed attached (the seed alone replays the
     trial). *)
  match
    (match cfg.c_hook with Some hook -> hook index | None -> ());
    match params with
    | Rmt_params { depth; width; bits; stateful; stateless } ->
      let mc_override = match override with `Rmt_mc mc -> Some mc | _ -> None in
      run_rmt_trial ~cfg ~seed ~prng ?mc_override ~depth ~width ~bits ~stateful_name:stateful
        ~stateless_name:stateless ()
    | Drmt_params { tables; processors; entries } ->
      let entries_override = match override with `Drmt_entries e -> Some e | _ -> None in
      run_drmt_trial ~cfg ~seed ~prng ~index ?entries_override ~tables ~processors
        ~n_entries:entries ()
    | Native_params { depth; width; bits; stateful; stateless } ->
      run_native_trial ~cfg ~seed ~prng ~depth ~width ~bits ~stateful_name:stateful
        ~stateless_name:stateless ()
  with
  | result -> finish result
  | exception Budget.Exhausted ->
    finish (Timed_out { to_fuel = Option.value cfg.c_fuel ~default:0 }, None, None, None)
  | exception e ->
    let cr_backtrace = backtrace_text () in
    finish (Crashed { cr_exn = Printexc.to_string e; cr_backtrace }, None, None, None)

(* The overwhelmingly common trial — all configurations agree, no faults
   flagged — is fully determined by the campaign config and the trial
   index, so checkpoints do not store it; resume reconstructs it here. *)
let default_trial ~(cfg : config) index : trial =
  let seed = Prng.derive cfg.c_master_seed index in
  let family = family_of ~cfg index in
  let _, params = trial_params family seed in
  {
    t_index = index;
    t_seed = seed;
    t_params = params;
    t_origin = None;
    t_outcome = Finished (Oracle.Agree { configs = family_configs family; phvs = cfg.c_phvs });
    t_shrunk = None;
    t_faults =
      Option.map
        (fun fc ->
          { fs_runs = fc.fc_runs; fs_sensitive = 0; fs_substrate_mismatch = 0; fs_replay_ok = true })
        cfg.c_faults;
  }

(* A trial a checkpoint may omit: agreeing, unshrunk, and (in fault mode)
   with the quietest possible fault stats *except* sensitivity, which is
   program-dependent and must be persisted. *)
let is_default_trial ~(cfg : config) (t : trial) =
  (match t.t_outcome with
  | Finished (Oracle.Agree { configs; phvs }) ->
    configs = family_configs (family_of ~cfg t.t_index) && phvs = cfg.c_phvs
  | _ -> false)
  && t.t_shrunk = None
  && (match (t.t_faults, cfg.c_faults) with
     | None, None -> true
     | Some fs, Some fc ->
       fs.fs_runs = fc.fc_runs && fs.fs_sensitive = 0 && fs.fs_substrate_mismatch = 0
       && fs.fs_replay_ok
     | _ -> false)

(* --- JSON report ------------------------------------------------------------

   Byte-deterministic for a fixed master seed: trials are emitted in index
   order and nothing environmental (job count, timing) appears.  Every
   constructor below is structured rather than pretty-printed, because the
   checkpoint decoder round-trips these records. *)

let json_of_violation (v : Machine_code.violation) : Report.json =
  match v with
  | Machine_code.Missing_pair name ->
    Report.Obj [ ("kind", Report.Str "missing_pair"); ("name", Report.Str name) ]
  | Machine_code.Out_of_range { vi_name; vi_value; vi_bound } ->
    Report.Obj
      [
        ("kind", Report.Str "out_of_range");
        ("name", Report.Str vi_name);
        ("value", Report.Int vi_value);
        ("bound", Report.Int vi_bound);
      ]

let json_of_outcome (o : outcome) : Report.json =
  match o with
  | Finished (Oracle.Agree { configs; phvs }) ->
    Report.Obj [ ("class", Report.Str "agree"); ("configs", Report.Int configs);
                 ("phvs", Report.Int phvs) ]
  | Finished (Oracle.Invalid_mc violations) ->
    Report.Obj
      [
        ("class", Report.Str "invalid_machine_code");
        ("violations", Report.List (List.map json_of_violation violations));
      ]
  | Finished (Oracle.Divergence d) ->
    let kind, where =
      match d.Oracle.dv_kind with
      | `Output (i, c) ->
        ("output", Report.Obj [ ("phv", Report.Int i); ("container", Report.Int c) ])
      | `State (alu, slot) ->
        ("state", Report.Obj [ ("alu", Report.Str alu); ("slot", Report.Int slot) ])
      | `Shape -> ("shape", Report.Null)
    in
    Report.Obj
      [
        ("class", Report.Str "backend_divergence");
        ("config", Report.Str d.Oracle.dv_config);
        ("kind", Report.Str kind);
        ("where", where);
        ("expected", Report.Int d.Oracle.dv_expected);
        ("actual", Report.Int d.Oracle.dv_actual);
      ]
  | Crashed { cr_exn; cr_backtrace } ->
    Report.Obj
      [
        ("class", Report.Str "crash");
        ("exn", Report.Str cr_exn);
        ("backtrace", Report.Str cr_backtrace);
      ]
  | Timed_out { to_fuel } ->
    Report.Obj [ ("class", Report.Str "timeout"); ("fuel", Report.Int to_fuel) ]

let json_of_shrunk (s : Shrink.result) : Report.json =
  Report.Obj
    [
      ("phvs", Report.List (List.map Report.phv s.Shrink.sh_inputs));
      ("essential_pairs", Report.List (List.map (fun n -> Report.Str n) s.Shrink.sh_essential));
      ( "machine_code",
        Report.Obj
          (List.map (fun (n, v) -> (n, Report.Int v)) (Machine_code.to_alist s.Shrink.sh_mc)) );
      ("probes", Report.Int s.Shrink.sh_probes);
    ]

let json_of_faults (fs : fault_stats) : Report.json =
  Report.Obj
    [
      ("runs", Report.Int fs.fs_runs);
      ("sensitive", Report.Int fs.fs_sensitive);
      ("substrate_mismatch", Report.Int fs.fs_substrate_mismatch);
      ("replay_ok", Report.Bool fs.fs_replay_ok);
    ]

let json_of_params = function
  | Rmt_params { depth; width; bits; stateful; stateless } ->
    [
      ("substrate", Report.Str "rmt");
      ("depth", Report.Int depth);
      ("width", Report.Int width);
      ("bits", Report.Int bits);
      ("stateful", Report.Str stateful);
      ("stateless", Report.Str stateless);
    ]
  | Drmt_params { tables; processors; entries } ->
    [
      ("substrate", Report.Str "drmt");
      ("tables", Report.Int tables);
      ("processors", Report.Int processors);
      ("entries", Report.Int entries);
    ]
  | Native_params { depth; width; bits; stateful; stateless } ->
    [
      ("substrate", Report.Str "native");
      ("depth", Report.Int depth);
      ("width", Report.Int width);
      ("bits", Report.Int bits);
      ("stateful", Report.Str stateful);
      ("stateless", Report.Str stateless);
    ]

let json_of_trial (t : trial) : Report.json =
  let origin =
    match t.t_origin with None -> [] | Some o -> [ ("origin", Corpus.origin_json o) ]
  in
  let base =
    [ ("index", Report.Int t.t_index); ("seed", Report.Int t.t_seed) ]
    @ json_of_params t.t_params @ origin
    @ [ ("outcome", json_of_outcome t.t_outcome) ]
  in
  let shrunk =
    match t.t_shrunk with None -> [] | Some s -> [ ("shrunk", json_of_shrunk s) ]
  in
  let faults =
    match t.t_faults with None -> [] | Some fs -> [ ("faults", json_of_faults fs) ]
  in
  Report.Obj (base @ shrunk @ faults)

(* --- Checkpoint decoding ----------------------------------------------------

   The inverse of the emitters above, for `--resume`.  Decode failures are
   [Resume_error] — a checkpoint that does not decode is an operator
   mistake (wrong file, wrong campaign), not a campaign failure. *)

exception Resume_error of string

let rfail fmt = Printf.ksprintf (fun s -> raise (Resume_error s)) fmt

let dfield j key conv =
  match Option.bind (Report.member key j) conv with
  | Some v -> v
  | None -> rfail "checkpoint record: field %S missing or mistyped" key

let dstr j key = dfield j key Report.to_str
let dint j key = dfield j key Report.to_int

let violation_of_json j : Machine_code.violation =
  match dstr j "kind" with
  | "missing_pair" -> Machine_code.Missing_pair (dstr j "name")
  | "out_of_range" ->
    Machine_code.Out_of_range
      { vi_name = dstr j "name"; vi_value = dint j "value"; vi_bound = dint j "bound" }
  | k -> rfail "unknown violation kind %S" k

let outcome_of_json j : outcome =
  match dstr j "class" with
  | "agree" -> Finished (Oracle.Agree { configs = dint j "configs"; phvs = dint j "phvs" })
  | "invalid_machine_code" ->
    Finished (Oracle.Invalid_mc (List.map violation_of_json (dfield j "violations" Report.to_list)))
  | "backend_divergence" ->
    let where = Report.member "where" j in
    let wfield key conv =
      match Option.bind where (fun w -> Option.bind (Report.member key w) conv) with
      | Some v -> v
      | None -> rfail "divergence record: field %S missing or mistyped" key
    in
    let dv_kind =
      match dstr j "kind" with
      | "output" -> `Output (wfield "phv" Report.to_int, wfield "container" Report.to_int)
      | "state" -> `State (wfield "alu" Report.to_str, wfield "slot" Report.to_int)
      | "shape" -> `Shape
      | k -> rfail "unknown divergence kind %S" k
    in
    Finished
      (Oracle.Divergence
         {
           dv_config = dstr j "config";
           dv_kind;
           dv_expected = dint j "expected";
           dv_actual = dint j "actual";
         })
  | "crash" -> Crashed { cr_exn = dstr j "exn"; cr_backtrace = dstr j "backtrace" }
  | "timeout" -> Timed_out { to_fuel = dint j "fuel" }
  | c -> rfail "unknown outcome class %S" c

let shrunk_of_json j : Shrink.result =
  let phv_of_json = function
    | Report.List vs ->
      Array.of_list
        (List.map (function Report.Int v -> v | _ -> rfail "shrunk record: non-integer PHV") vs)
    | _ -> rfail "shrunk record: malformed PHV"
  in
  let mc_pairs =
    match Report.member "machine_code" j with
    | Some (Report.Obj fields) ->
      List.map
        (fun (name, v) ->
          match Report.to_int v with
          | Some value -> (name, value)
          | None -> rfail "shrunk record: non-integer machine-code value")
        fields
    | _ -> rfail "shrunk record: machine_code missing"
  in
  {
    Shrink.sh_inputs = List.map phv_of_json (dfield j "phvs" Report.to_list);
    sh_mc = Machine_code.of_list mc_pairs;
    sh_essential =
      List.map
        (function Report.Str s -> s | _ -> rfail "shrunk record: non-string essential pair")
        (dfield j "essential_pairs" Report.to_list);
    sh_probes = dint j "probes";
  }

let faults_of_json j : fault_stats =
  {
    fs_runs = dint j "runs";
    fs_sensitive = dint j "sensitive";
    fs_substrate_mismatch = dint j "substrate_mismatch";
    fs_replay_ok = dfield j "replay_ok" Report.to_bool;
  }

let params_of_json j : params =
  match dstr j "substrate" with
  | "rmt" ->
    Rmt_params
      {
        depth = dint j "depth";
        width = dint j "width";
        bits = dint j "bits";
        stateful = dstr j "stateful";
        stateless = dstr j "stateless";
      }
  | "drmt" ->
    Drmt_params
      { tables = dint j "tables"; processors = dint j "processors"; entries = dint j "entries" }
  | "native" ->
    Native_params
      {
        depth = dint j "depth";
        width = dint j "width";
        bits = dint j "bits";
        stateful = dstr j "stateful";
        stateless = dstr j "stateless";
      }
  | s -> rfail "unknown trial substrate %S" s

let trial_of_json j : trial =
  {
    t_index = dint j "index";
    t_seed = dint j "seed";
    t_params = params_of_json j;
    (* coverage mode is incompatible with checkpoints, so a decoded trial
       never carries an origin *)
    t_origin = None;
    t_outcome = outcome_of_json (dfield j "outcome" Option.some);
    t_shrunk = Option.map shrunk_of_json (Report.member "shrunk" j);
    t_faults = Option.map faults_of_json (Report.member "faults" j);
  }

(* --- Checkpoint plumbing ---------------------------------------------------- *)

let signature_of_config (cfg : config) : Checkpoint.signature =
  {
    Checkpoint.sg_substrate = cfg.c_substrate;
    sg_master_seed = cfg.c_master_seed;
    sg_trials = cfg.c_trials;
    sg_phvs = cfg.c_phvs;
    sg_shrink = cfg.c_shrink;
    sg_max_probes = cfg.c_max_probes;
    sg_fuel = Option.value cfg.c_fuel ~default:0;
    sg_max_failures = Option.value cfg.c_max_failures ~default:0;
    sg_fault_runs = (match cfg.c_faults with Some fc -> fc.fc_runs | None -> 0);
    sg_faults_per_run = (match cfg.c_faults with Some fc -> fc.fc_per_run | None -> 0);
  }

(* Only non-default trials are persisted; [completed] is the length of the
   done prefix.  Records are emitted in index order so the file itself is
   byte-deterministic for a given (config, completed) pair. *)
let checkpoint_of ~(cfg : config) (results : trial option array) completed : Checkpoint.t =
  let records = ref [] in
  for i = completed - 1 downto 0 do
    match results.(i) with
    | Some t when not (is_default_trial ~cfg t) -> records := json_of_trial t :: !records
    | _ -> ()
  done;
  {
    Checkpoint.ck_signature = signature_of_config cfg;
    ck_completed = (if completed > 0 then [ (0, completed - 1) ] else []);
    ck_records = !records;
  }

(* The report's coverage accounting as a {!Coverage.summary} — the shape
   shared by the druzhba-coverage/1 report section and the corpus manifest. *)
let coverage_summary (cv : coverage_stats) : Coverage.summary =
  {
    Coverage.sm_features = Coverage.cardinal cv.cv_coverage;
    sm_classes = Coverage.classes cv.cv_coverage;
    sm_novel_trials = cv.cv_novel_trials;
    sm_corpus_entries = cv.cv_corpus_entries;
    sm_corpus_fresh = cv.cv_corpus_fresh;
    sm_corpus_mutated = cv.cv_corpus_mutated;
  }

(* --- The campaign ----------------------------------------------------------- *)

(* [run_resumable] is the full-featured entry point: trials execute in
   blocks of [checkpoint_every] indices (parallel within a block), which
   fixes the granularity of checkpoints, the circuit breaker, and the
   [stop_after] test kill-switch at index boundaries — all independent of
   [--jobs], preserving byte-determinism.  Returns [None] only when
   [stop_after] aborted the run mid-campaign (simulating a kill) or
   [should_stop] asked for a graceful cut.

   [should_stop] is polled at every block boundary, *after* the block's
   checkpoint has been flushed: the CLI points it at a flag set by its
   SIGINT/SIGTERM handlers, so a supervisor-initiated stop always leaves a
   durable checkpoint behind and loses nothing — resuming produces a report
   byte-identical to an uninterrupted run.  The caller distinguishes a
   graceful cut from [stop_after] by its own flag. *)
let run_resumable ?checkpoint ?(resume = false) ?stop_after ?should_stop (cfg : config) :
    report option =
  (* Coverage and sabotage-pass modes are not part of the checkpoint
     signature, so a resumed run could silently change semantics mid-stream;
     refuse the combination outright. *)
  if cfg.c_coverage && (checkpoint <> None || resume) then
    invalid_arg "Campaign.run_resumable: coverage mode is incompatible with checkpoint/resume";
  if cfg.c_sabotage_pass && (checkpoint <> None || resume) then
    invalid_arg
      "Campaign.run_resumable: sabotage-pass mode is incompatible with checkpoint/resume";
  (* Native-family degradation is judged once, up front, on the main
     domain: a campaign may run degraded (closures standing in for the
     native artifact, with a note in the report), but a *checkpointed or
     resumed* campaign may not — records taken on a toolchain-equipped
     machine must never blend with degraded ones, so the combination is
     refused with a clear error instead. *)
  let selection = Option.value (families_of_name cfg.c_substrate) ~default:[] in
  let notes =
    if not (List.mem Native selection) then []
    else
      match Druzhba_dsim.Native_substrate.available () with
      | Ok () -> []
      | Error reason ->
        if checkpoint <> None || resume then
          raise
            (Resume_error
               (Printf.sprintf
                  "substrate %S cannot be checkpointed or resumed here: the native toolchain \
                   is unavailable (%s); run without --checkpoint/--resume to accept the \
                   interpreted fallback"
                  cfg.c_substrate reason))
        else
          [
            Printf.sprintf
              "native substrate unavailable (%s); native trials ran on the interpreted \
               fallback (native-fallback@scc-inline)"
              reason;
          ]
  in
  (* crash records carry backtraces; recording is per-process and cheap *)
  Printexc.record_backtrace true;
  (* the atom library is lazy and [Lazy] is not domain-safe: force it on
     the main domain before sharding *)
  Runner.force_atoms ();
  let n = cfg.c_trials in
  let results : trial option array = Array.make (max 1 n) None in
  let start =
    if not resume then 0
    else
      match checkpoint with
      | None -> invalid_arg "Campaign.run_resumable: resume requires a checkpoint path"
      | Some path -> (
        match Checkpoint.load path with
        | Error msg -> raise (Resume_error msg)
        | Ok ck ->
          if
            not
              (Checkpoint.signature_equal ck.Checkpoint.ck_signature (signature_of_config cfg))
          then
            rfail "%s: checkpoint signature does not match this campaign's configuration" path;
          List.iter
            (fun j ->
              let t = trial_of_json j in
              if t.t_index < 0 || t.t_index >= n then
                rfail "checkpoint record index %d out of range" t.t_index;
              results.(t.t_index) <- Some t)
            ck.Checkpoint.ck_records;
          (* the quiet majority is reconstructed, not stored *)
          List.iter
            (fun (lo, hi) ->
              for i = lo to min (n - 1) hi do
                if results.(i) = None then results.(i) <- Some (default_trial ~cfg i)
              done)
            ck.Checkpoint.ck_completed;
          min n (Checkpoint.completed_prefix ck))
  in
  let failures = ref 0 and stopped_after = ref None in
  (* Breaker accounting scans completed trials in index order — the Nth
     failure is the same trial whatever the job count or resume point. *)
  let note_failures lo hi =
    match cfg.c_max_failures with
    | None -> ()
    | Some maxf ->
      for i = lo to hi - 1 do
        if !stopped_after = None then
          match results.(i) with
          | Some t when trial_failed t ->
            incr failures;
            if !failures >= maxf then stopped_after := Some i
          | _ -> ()
      done
  in
  note_failures 0 start;
  (* Coverage-mode state, all owned by the main domain: the global coverage
     map, the corpus, and the frozen snapshot the *next* block's trials will
     mutate from.  Workers only ever read a snapshot; merging, novelty
     judgement and corpus admission happen here, at block boundaries, in
     trial-index order — the whole evolution is a fold over trial indices
     and therefore byte-identical across [--jobs]. *)
  let coverage = ref Coverage.empty in
  let corpus = Corpus.create () in
  let novel_trials = ref 0 in
  let snapshot = ref [||] in
  let i = ref start and killed = ref false in
  while !i < n && !stopped_after = None && not !killed do
    let base = !i in
    let hi = min n (base + cfg.c_checkpoint_every) in
    let snap = !snapshot in
    let chunk =
      Runner.parallel_init ~jobs:cfg.c_jobs (hi - base) (fun k ->
          run_trial ~snapshot:snap ~cfg (base + k))
    in
    Array.iteri (fun k (t, _) -> results.(base + k) <- Some t) chunk;
    if cfg.c_coverage then begin
      Array.iter
        (fun ((t : trial), extra) ->
          match extra with
          | None -> ()
          | Some x ->
            let nvl = Coverage.novel ~existing:!coverage x.x_coverage in
            if nvl > 0 then begin
              incr novel_trials;
              ignore
                (Corpus.add corpus ~trial:t.t_index
                   ~origin:(Option.value t.t_origin ~default:Corpus.Fresh)
                   ~material:x.x_material ~novel:nvl)
            end;
            coverage := Coverage.union !coverage x.x_coverage)
        chunk;
      snapshot := Corpus.snapshot corpus
    end;
    note_failures base hi;
    i := hi;
    (match checkpoint with
    | Some path ->
      let completed = match !stopped_after with Some c -> c + 1 | None -> !i in
      Checkpoint.save path (checkpoint_of ~cfg results completed)
    | None -> ());
    (match stop_after with
    | Some s when !i >= s && !i < n && !stopped_after = None -> killed := true
    | _ -> ());
    match should_stop with
    | Some f when !i < n && !stopped_after = None && f () -> killed := true
    | _ -> ()
  done;
  if !killed then None
  else begin
    let upto = match !stopped_after with Some c -> c + 1 | None -> n in
    let trials =
      List.init upto (fun i ->
          match results.(i) with Some t -> t | None -> assert false (* filled above *))
    in
    let count p = List.length (List.filter p trials) in
    let r_coverage =
      if not cfg.c_coverage then None
      else begin
        let entries, fresh, mutated = Corpus.stats corpus in
        Some
          {
            cv_coverage = !coverage;
            cv_novel_trials = !novel_trials;
            cv_corpus_entries = entries;
            cv_corpus_fresh = fresh;
            cv_corpus_mutated = mutated;
          }
      end
    in
    (match (cfg.c_corpus_dir, r_coverage) with
    | Some dir, Some cv ->
      Corpus.save dir ~master_seed:cfg.c_master_seed ~coverage:cv.cv_coverage
        ~summary:(coverage_summary cv) corpus
    | _ -> ());
    Some
      {
        r_config = cfg;
        r_trials = trials;
        r_coverage;
        r_notes = notes;
        r_agree =
          count (fun t -> match t.t_outcome with Finished (Oracle.Agree _) -> true | _ -> false);
        r_divergent =
          count (fun t ->
              match t.t_outcome with Finished (Oracle.Divergence _) -> true | _ -> false);
        r_invalid =
          count (fun t ->
              match t.t_outcome with Finished (Oracle.Invalid_mc _) -> true | _ -> false);
        r_crashed = count (fun t -> match t.t_outcome with Crashed _ -> true | _ -> false);
        r_timeout = count (fun t -> match t.t_outcome with Timed_out _ -> true | _ -> false);
        r_fault_flagged = count (fun t -> fault_flagged t.t_faults);
        r_stopped_after = !stopped_after;
      }
  end

(* Simple entry point: no checkpointing, runs to completion (or to the
   circuit breaker).  [run_resumable] only returns [None] under
   [stop_after], which this path never passes. *)
let run (cfg : config) : report =
  match run_resumable cfg with Some r -> r | None -> assert false

(* --- Rendering ------------------------------------------------------------- *)

let pp_outcome ppf = function
  | Finished o -> Oracle.pp_outcome ppf o
  | Crashed { cr_exn; _ } -> Fmt.pf ppf "crashed: %s" cr_exn
  | Timed_out { to_fuel } -> Fmt.pf ppf "timed out (tick budget %d exhausted)" to_fuel

let pp_faults ppf (fs : fault_stats) =
  Fmt.pf ppf "faults: %d/%d sensitive, %d substrate mismatch, replay %s" fs.fs_sensitive
    fs.fs_runs fs.fs_substrate_mismatch
    (if fs.fs_replay_ok then "clean" else "CORRUPTED")

let pp_params ppf = function
  | Rmt_params { depth; width; bits; stateful; stateless } ->
    Fmt.pf ppf "rmt %dx%d @ %d bits, %s/%s" depth width bits stateful stateless
  | Drmt_params { tables; processors; entries } ->
    Fmt.pf ppf "drmt %d table(s), %d processor(s), %d entrie(s)" tables processors entries
  | Native_params { depth; width; bits; stateful; stateless } ->
    Fmt.pf ppf "native %dx%d @ %d bits, %s/%s" depth width bits stateful stateless

let pp_trial ppf (t : trial) =
  Fmt.pf ppf "trial %4d (seed %d, %a): %a" t.t_index t.t_seed pp_params t.t_params pp_outcome
    t.t_outcome;
  (match t.t_shrunk with None -> () | Some s -> Fmt.pf ppf "@,  %a" Shrink.pp s);
  match t.t_faults with
  | Some fs when fault_flagged t.t_faults -> Fmt.pf ppf "@,  %a" pp_faults fs
  | _ -> ()

let pp ppf (r : report) =
  Fmt.pf ppf "@[<v>campaign: %d trials, master seed %d, %d PHVs/trial@," r.r_config.c_trials
    r.r_config.c_master_seed r.r_config.c_phvs;
  Fmt.pf ppf "  agree:      %d@," r.r_agree;
  Fmt.pf ppf "  divergence: %d@," r.r_divergent;
  Fmt.pf ppf "  invalid mc: %d@," r.r_invalid;
  Fmt.pf ppf "  crashed:    %d@," r.r_crashed;
  Fmt.pf ppf "  timed out:  %d@," r.r_timeout;
  (match r.r_config.c_faults with
  | Some _ -> Fmt.pf ppf "  fault-flagged: %d@," r.r_fault_flagged
  | None -> ());
  (match r.r_coverage with
  | Some cv -> Fmt.pf ppf "  %a@," Coverage.pp_summary (coverage_summary cv)
  | None -> ());
  List.iter (fun note -> Fmt.pf ppf "  note: %s@," note) r.r_notes;
  (match r.r_stopped_after with
  | Some i ->
    Fmt.pf ppf "  stopped early: failure limit reached at trial %d (%d/%d trials ran)@," i
      (List.length r.r_trials) r.r_config.c_trials
  | None -> ());
  List.iter (fun t -> if trial_failed t then Fmt.pf ppf "  %a@," pp_trial t) r.r_trials;
  Fmt.pf ppf "@]"

let to_json (r : report) : string =
  let opt_int = function Some v -> Report.Int v | None -> Report.Null in
  Report.to_string
    (Report.Obj
       ([
         ("campaign", Report.Str "differential");
         ("substrate", Report.Str r.r_config.c_substrate);
         ("master_seed", Report.Int r.r_config.c_master_seed);
         ("trials", Report.Int r.r_config.c_trials);
         ("phvs_per_trial", Report.Int r.r_config.c_phvs);
         ("fuel", opt_int r.r_config.c_fuel);
         ("max_failures", opt_int r.r_config.c_max_failures);
         ( "faults",
           match r.r_config.c_faults with
           | Some fc ->
             Report.Obj
               [ ("runs", Report.Int fc.fc_runs); ("per_run", Report.Int fc.fc_per_run) ]
           | None -> Report.Null );
         ( "summary",
           Report.Obj
             [
               ("agree", Report.Int r.r_agree);
               ("backend_divergence", Report.Int r.r_divergent);
               ("invalid_machine_code", Report.Int r.r_invalid);
               ("crashes", Report.Int r.r_crashed);
               ("timeouts", Report.Int r.r_timeout);
               ("fault_flagged", Report.Int r.r_fault_flagged);
             ] );
       ]
       @ (match r.r_coverage with
         | Some cv -> [ ("coverage", Coverage.summary_json (coverage_summary cv)) ]
         | None -> [])
       (* emitted only when non-empty, so reports from the pre-registry
          era stay byte-identical *)
       @ (match r.r_notes with
         | [] -> []
         | notes -> [ ("notes", Report.List (List.map (fun n -> Report.Str n) notes)) ])
       @ [
           ("stopped_after", opt_int r.r_stopped_after);
           ("results", Report.List (List.map json_of_trial r.r_trials));
         ]))
