(* Machine-readable campaign reports.

   A deliberately tiny JSON emitter (the repo carries no JSON dependency)
   with one hard requirement: byte-determinism.  Objects render their keys
   in the order given, numbers are plain OCaml ints, and nothing
   environmental (wall time, hostnames, job counts) is ever emitted — the
   acceptance bar is that a campaign report for a fixed master seed is
   byte-identical whatever [--jobs] was. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string (j : json) =
  let buf = Buffer.create 1024 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit v)
        fields;
      Buffer.add_char buf '}'
  in
  emit j;
  Buffer.contents buf

let phv (p : Druzhba_dsim.Phv.t) = List (Array.to_list (Array.map (fun v -> Int v) p))
