(* Machine-readable campaign reports.

   A deliberately tiny JSON emitter (the repo carries no JSON dependency)
   with one hard requirement: byte-determinism.  Objects render their keys
   in the order given, numbers are plain OCaml ints, and nothing
   environmental (wall time, hostnames, job counts) is ever emitted — the
   acceptance bar is that a campaign report for a fixed master seed is
   byte-identical whatever [--jobs] was. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string (j : json) =
  let buf = Buffer.create 1024 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit v)
        fields;
      Buffer.add_char buf '}'
  in
  emit j;
  Buffer.contents buf

let phv (p : Druzhba_dsim.Phv.t) = List (Array.to_list (Array.map (fun v -> Int v) p))

(* --- Parsing ---------------------------------------------------------------

   Recursive-descent parser for the subset the emitter produces (null,
   booleans, integers, strings, arrays, objects) — enough to read back
   checkpoint files without taking a JSON dependency.  Total: every failure
   is an [Error] with an offset. *)

exception Parse_fail of int * string

let parse (src : string) : (json, string) result =
  let n = String.length src in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %C, found %C" c got)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub src !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); go ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); go ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub src !pos 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "invalid \\u escape"
          in
          (* the emitter only escapes control characters, so a single byte
             suffices; anything else round-trips as '?' rather than failing *)
          Buffer.add_char buf (if code < 0x100 then Char.chr code else '?');
          pos := !pos + 4;
          go ()
        | _ -> fail "invalid escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false do
      advance ()
    done;
    match int_of_string_opt (String.sub src start (!pos - start)) with
    | Some v -> v
    | None -> fail "invalid integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          (k, parse_value ())
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev (kv :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail (at, msg) -> Error (Printf.sprintf "json parse error at offset %d: %s" at msg)

(* --- Accessors (for checkpoint decoding) ----------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
