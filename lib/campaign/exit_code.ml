(* The worker exit-code contract.

   `druzhba campaign` (and `druzhba fuzz` / `druzhba vet`, which share the
   findings/usage split) communicates its outcome to supervisors through
   the process exit code.  The codes are a documented, tested contract —
   the service supervisor branches on them to decide whether a finished
   worker is a completed job, a poisoned submission, or a casualty to retry
   — so they must never be repurposed:

     0  clean           every trial agreed; nothing to report
     1  findings        divergences, invalid machine code, crashes inside
                        trials, or fault-flagged trials — the report names
                        them; the *campaign* finished normally
     2  usage           operator error: bad flags, unparseable inputs,
                        incompatible checkpoint.  Deterministic for a given
                        invocation, so retrying is pointless.
     3  fuel exhausted  the only failures were per-trial watchdog timeouts
                        (the tick budget ran dry); softer than findings
     4  breaker tripped the --max-failures circuit breaker cut the campaign
                        early; the report is partial but complete as far as
                        it went (implies findings)
     5  interrupted     SIGINT/SIGTERM arrived and the campaign cut at the
                        next block boundary after flushing a final
                        checkpoint — a supervisor-initiated stop, never
                        data loss

   Precedence when several would apply: usage > interrupted > breaker >
   findings > fuel exhausted > clean.  Anything else (including deaths by
   signal, which the supervisor sees as [Unix.WSIGNALED], not an exit
   code) is outside the contract and treated as a crash. *)

let ok = 0
let findings = 1
let usage = 2
let fuel_exhausted = 3
let breaker_tripped = 4
let interrupted = 5

(* The code a finished campaign report maps to.  The breaker check comes
   first: a tripped breaker implies findings, and the more specific code
   wins so a supervisor can distinguish "ran everything, found bugs" from
   "stopped early at the failure limit". *)
let of_report (r : Campaign.report) =
  if r.Campaign.r_stopped_after <> None then breaker_tripped
  else if
    r.Campaign.r_divergent > 0 || r.Campaign.r_invalid > 0 || r.Campaign.r_crashed > 0
    || r.Campaign.r_fault_flagged > 0
  then findings
  else if r.Campaign.r_timeout > 0 then fuel_exhausted
  else ok

type clazz =
  | Clean
  | Findings
  | Usage_error
  | Fuel_exhausted
  | Breaker_tripped
  | Interrupted
  | Unknown of int

let classify = function
  | 0 -> Clean
  | 1 -> Findings
  | 2 -> Usage_error
  | 3 -> Fuel_exhausted
  | 4 -> Breaker_tripped
  | 5 -> Interrupted
  | c -> Unknown c

let describe = function
  | Clean -> "clean"
  | Findings -> "findings"
  | Usage_error -> "usage error"
  | Fuel_exhausted -> "fuel exhausted"
  | Breaker_tripped -> "breaker tripped"
  | Interrupted -> "interrupted"
  | Unknown c -> Printf.sprintf "unknown exit code %d" c

(* A completed worker whose code is one of these delivered a verdict: the
   job is done and its report is authoritative.  Everything else is either
   a poisoned submission (Usage_error) or a casualty to restart. *)
let is_verdict = function
  | Clean | Findings | Fuel_exhausted | Breaker_tripped -> true
  | Usage_error | Interrupted | Unknown _ -> false
