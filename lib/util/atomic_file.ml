(* Atomic, durable file writes.

   The discipline originated in the campaign checkpoint writer and is now
   shared by everything that persists state next to a running process: the
   checkpoint file, campaign reports, the service job store and journal,
   and the native substrate's on-disk build cache.  The contract: write to
   a sibling tmp file named with the writer's pid, fsync the data, rename
   into place (atomic on POSIX filesystems), then fsync the containing
   directory so the rename itself survives a machine crash.  A kill at any
   instant leaves either the old file or the new one, never torn bytes;
   two processes racing on the same path each stage their own tmp and the
   renames serialize — last writer wins. *)

let write_retries = 20

(* [write] with bounded retry on the transient errnos.  EINTR is routine
   (any signal); EAGAIN should not happen on a blocking regular file but is
   retried with a short backoff anyway rather than torn into an exception
   mid-write. *)
let rec write_all ?(attempts = write_retries) fd bytes pos len =
  if len > 0 then
    match Unix.write fd bytes pos len with
    | n -> write_all fd bytes (pos + n) (len - n)
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      when attempts > 0 ->
      if attempts < write_retries then Unix.sleepf 0.01;
      write_all ~attempts:(attempts - 1) fd bytes pos len

(* Directory fsync is best-effort: some filesystems refuse fsync on a
   directory fd (EINVAL) and the write is still atomic without it. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ())

let atomic_write_string path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      write_all fd (Bytes.of_string contents) 0 (String.length contents);
      Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

(* Atomically publish an already-written file (e.g. a compiler output that
   could not be streamed through [atomic_write_string]): fsync the staged
   file's bytes, rename it over [dest], fsync the directory. *)
let atomic_publish ~src ~dest =
  (match Unix.openfile src [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ());
    (try Unix.close fd with Unix.Unix_error (_, _, _) -> ()));
  Sys.rename src dest;
  fsync_dir (Filename.dirname dest)
