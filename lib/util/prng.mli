(** Deterministic splitmix64 pseudo-random generator.

    Used by the traffic generators so fuzzing runs are reproducible from a
    seed (a failing trace can be replayed exactly). *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal streams. *)

val copy : t -> t
(** Snapshot of the generator state. *)

val next_int64 : t -> int64
(** Raw 64-bit output. *)

val bits : t -> int -> int
(** [bits t w] draws a uniform value in [0, 2{^w}); [w] in [1..62]. *)

val int : t -> int -> int
(** [int t bound] draws a value in [0, bound). *)

val bool : t -> bool

val split : t -> t
(** Derive an independent generator (for parallel streams). *)

val derive : int -> int -> int
(** [derive master index] deterministically derives the seed of trial
    [index] in a campaign keyed by [master].  Pure in both arguments (no
    stream is consumed), so sharded workers compute identical seeds
    regardless of how trials are scheduled; the result is a non-negative
    int.  @raise Invalid_argument on a negative index. *)
