(* Deterministic pseudo-random number generator (splitmix64).

   The traffic generator must be reproducible across runs so that fuzzing
   failures can be replayed from a seed; OCaml's [Random] state is neither
   stable across versions nor easily snapshotted, so we carry our own
   splitmix64, the standard 64-bit mixing generator. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t bits =
  if bits < 1 || bits > 62 then invalid_arg "Prng.bits: width not in 1..62";
  Int64.to_int (Int64.shift_right_logical (next_int64 t) (64 - bits))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62 so
     the bias is negligible for fuzzing purposes. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let split t = create (Int64.to_int (next_int64 t))

(* Splittable seeding for sharded campaigns: the per-trial seed is a pure
   function of (master seed, trial index), so any worker can compute the
   seed of any trial without consuming a shared stream — results are
   independent of how trials are distributed over domains.  The derivation
   is one splitmix64 step from a state offset by the index along the golden
   gamma (distinct indices land on well-separated states). *)
let derive master index =
  if index < 0 then invalid_arg "Prng.derive: negative index";
  let t =
    { state = Int64.add (Int64.of_int master) (Int64.mul golden_gamma (Int64.of_int (index + 1))) }
  in
  (* keep the result a non-negative OCaml int so it round-trips through
     [create] and CLI flags losslessly *)
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)
