(* Interpreter for pipeline descriptions.

   This plays the role the Rust compiler + CPU play for the original Druzhba:
   it executes the generated pipeline description.  Because it interprets the
   IR directly, the cost of a simulation tick is proportional to the size of
   the description and to the number of machine-code hash lookups in it —
   which is precisely what SCC propagation and inlining shrink, so the
   relative runtimes of the three optimization levels reproduce the shape of
   the paper's Table 1. *)

module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code

(* Structural coverage probe (campaign --coverage).  When installed, the
   interpreter reports which ALU branch arms ran, which state slots latched,
   whether each ALU returned explicitly or fell through to its default
   output, and which control value each output mux consumed.  Branch sites
   are numbered statically (pre-order over the ALU body's [If] nodes), so a
   site id names the same syntactic branch whatever path execution takes. *)
type probe = {
  pr_branch : alu:string -> site:int -> taken:bool -> unit;
  pr_latch : alu:string -> slot:int -> unit;
  pr_output : alu:string -> returned:bool -> unit;
  pr_mux : mux:string -> ctrl:int -> unit;
}

type ctx = {
  bits : Value.width;
  mc : Machine_code.t;
  helpers : (string, Ir.helper) Hashtbl.t;
  mutable probe : probe option;
  (* Preloaded mirror of [probe <> None], so the per-ALU hot path pays one
     immediate-bool branch when coverage is off instead of an option match
     inside the ALU dispatch. *)
  mutable probe_on : bool;
}

let ctx_of (d : Ir.t) ~mc =
  { bits = d.Ir.d_bits; mc; helpers = d.Ir.d_helpers; probe = None; probe_on = false }

let set_probe ctx probe =
  ctx.probe <- probe;
  ctx.probe_on <- probe <> None

exception Unbound_variable of string

let lookup env name =
  let rec go = function
    | [] -> raise (Unbound_variable name)
    | (n, v) :: rest -> if String.equal n name then v else go rest
  in
  go env

let apply_unop bits (op : Ir.unop) v =
  match op with Ir.Neg -> Value.neg bits v | Ir.Not -> Value.logical_not v

let apply_binop bits (op : Ir.binop) a b =
  match op with
  | Ir.Add -> Value.add bits a b
  | Ir.Sub -> Value.sub bits a b
  | Ir.Mul -> Value.mul bits a b
  | Ir.Div -> Value.div bits a b
  | Ir.Mod -> Value.rem bits a b
  | Ir.Eq -> Value.eq a b
  | Ir.Neq -> Value.neq a b
  | Ir.Lt -> Value.lt a b
  | Ir.Gt -> Value.gt a b
  | Ir.Le -> Value.le a b
  | Ir.Ge -> Value.ge a b
  | Ir.And -> Value.logical_and a b
  | Ir.Or -> Value.logical_or a b

let rec eval ctx ~phv ~state env (e : Ir.expr) =
  match e with
  | Ir.Const n -> n
  | Ir.Var name -> lookup env name
  | Ir.Mc name -> Machine_code.find ctx.mc name
  | Ir.Trunc a -> Value.mask ctx.bits (eval ctx ~phv ~state env a)
  | Ir.Phv k -> Array.unsafe_get phv k
  | Ir.State k -> Array.unsafe_get state k
  | Ir.Unop (op, a) -> apply_unop ctx.bits op (eval ctx ~phv ~state env a)
  | Ir.Binop (op, a, b) ->
    apply_binop ctx.bits op (eval ctx ~phv ~state env a) (eval ctx ~phv ~state env b)
  | Ir.Cond (c, a, b) ->
    if Value.is_true (eval ctx ~phv ~state env c) then eval ctx ~phv ~state env a
    else eval ctx ~phv ~state env b
  | Ir.Call (name, args) ->
    let h =
      match Hashtbl.find_opt ctx.helpers name with
      | Some h -> h
      | None -> invalid_arg (Printf.sprintf "Interp: unknown helper '%s'" name)
    in
    let call_env =
      List.fold_left2 (fun acc p a -> (p, eval ctx ~phv ~state env a) :: acc) [] h.h_params args
    in
    eval ctx ~phv ~state call_env h.h_body

(* Statement execution: returns [Some v] as soon as a [Return] runs.
   Expressions read state from [read] while [Store] writes to [write]
   (latched state semantics; the two coincide for stateless ALUs). *)
let rec exec_latched ctx ~phv ~read ~write env (stmts : Ir.stmt list) =
  match stmts with
  | [] -> None
  | s :: rest -> (
    match s with
    | Ir.Let (x, e) ->
      let v = eval ctx ~phv ~state:read env e in
      exec_latched ctx ~phv ~read ~write ((x, v) :: env) rest
    | Ir.Store (k, e) ->
      write.(k) <- eval ctx ~phv ~state:read env e;
      exec_latched ctx ~phv ~read ~write env rest
    | Ir.If (c, a, b) -> (
      let branch = if Value.is_true (eval ctx ~phv ~state:read env c) then a else b in
      match exec_latched ctx ~phv ~read ~write env branch with
      | Some _ as r -> r
      | None -> exec_latched ctx ~phv ~read ~write env rest)
    | Ir.Return e -> Some (eval ctx ~phv ~state:read env e))

(* Number of [If] nodes in a statement list, counted recursively — the span
   of pre-order site ids the list occupies. *)
let rec count_ifs stmts =
  List.fold_left
    (fun acc s ->
      match s with
      | Ir.If (_, a, b) -> acc + 1 + count_ifs a + count_ifs b
      | Ir.Let _ | Ir.Store _ | Ir.Return _ -> acc)
    0 stmts

(* As [exec_latched], but reports branch decisions and state latches to the
   probe.  [site] is the next free pre-order branch-site id for [stmts]; the
   numbering depends only on the syntax, never on the path taken, so the
   same (alu, site) pair names the same [If] across PHVs and trials.  Only
   the coverage replay pays for this — the differential hot path stays on
   [exec_latched]. *)
let rec exec_probed ctx pr ~alu_name ~phv ~read ~write env ~site (stmts : Ir.stmt list) =
  match stmts with
  | [] -> None
  | s :: rest -> (
    match s with
    | Ir.Let (x, e) ->
      let v = eval ctx ~phv ~state:read env e in
      exec_probed ctx pr ~alu_name ~phv ~read ~write ((x, v) :: env) ~site rest
    | Ir.Store (k, e) ->
      write.(k) <- eval ctx ~phv ~state:read env e;
      pr.pr_latch ~alu:alu_name ~slot:k;
      exec_probed ctx pr ~alu_name ~phv ~read ~write env ~site rest
    | Ir.If (c, a, b) -> (
      let taken = Value.is_true (eval ctx ~phv ~state:read env c) in
      pr.pr_branch ~alu:alu_name ~site ~taken;
      let then_ifs = count_ifs a in
      let branch, branch_site = if taken then (a, site + 1) else (b, site + 1 + then_ifs) in
      let rest_site = site + 1 + then_ifs + count_ifs b in
      match exec_probed ctx pr ~alu_name ~phv ~read ~write env ~site:branch_site branch with
      | Some _ as r -> r
      | None -> exec_probed ctx pr ~alu_name ~phv ~read ~write env ~site:rest_site rest)
    | Ir.Return e -> Some (eval ctx ~phv ~state:read env e))

(* Executes one ALU on the incoming PHV.  [state] is the ALU's persistent
   state vector, mutated in place; the result is the ALU's output value
   (explicit [Return], or the pre-execution state_0 for stateful ALUs).

   State reads are *latched*: an ALU is a combinational block whose state
   operands are the registered (pre-execution) values, so e.g. both updates
   of the pair atom read the same snapshot regardless of statement order.
   Reads go through a snapshot while writes land in the live vector. *)
(* As {!run_alu} below, but latches the state reads into the caller-provided
   [snapshot] scratch (same length as [state]) instead of allocating a fresh
   copy — the tick engine preallocates one snapshot per stateful ALU so the
   steady-state loop stays allocation-free. *)
(* Cold half of [run_alu_into]: only entered when a probe is installed. *)
let run_alu_probed ctx (alu : Ir.alu) ~phv ~state ~snapshot ~default =
  match ctx.probe with
  | None -> (
    (* probe_on out of sync with probe; behave as unprobed *)
    match exec_latched ctx ~phv ~read:snapshot ~write:state [] alu.Ir.a_body with
    | Some v -> v
    | None -> default)
  | Some pr -> (
    let result =
      exec_probed ctx pr ~alu_name:alu.Ir.a_name ~phv ~read:snapshot ~write:state [] ~site:0
        alu.Ir.a_body
    in
    pr.pr_output ~alu:alu.Ir.a_name ~returned:(result <> None);
    match result with
    | Some v -> v
    | None -> default)

let run_alu_into ctx (alu : Ir.alu) ~phv ~state ~snapshot =
  let n = Array.length state in
  if n > 0 then Array.blit state 0 snapshot 0 n;
  let default = eval ctx ~phv ~state:snapshot [] alu.Ir.a_default_output in
  if not ctx.probe_on then
    match exec_latched ctx ~phv ~read:snapshot ~write:state [] alu.Ir.a_body with
    | Some v -> v
    | None -> default
  else run_alu_probed ctx alu ~phv ~state ~snapshot ~default

let run_alu ctx (alu : Ir.alu) ~phv ~state =
  let snapshot = if Array.length state = 0 then state else Array.make (Array.length state) 0 in
  run_alu_into ctx alu ~phv ~state ~snapshot

(* Applies a named helper to already-evaluated argument values laid out in a
   scratch array ([stateless outs; stateful outs; new state_0s; old container
   value] — the engine reuses one such array per stage).  Parameters bind
   positionally; if the helper still has a trailing "ctrl" parameter
   (unoptimized description), the control value is fetched from machine code
   under the helper's own name.  Used by the simulator to run output muxes. *)
let apply_output_mux ctx name ~(args : int array) ~n_args =
  let h =
    match Hashtbl.find_opt ctx.helpers name with
    | Some h -> h
    | None -> invalid_arg (Printf.sprintf "Interp: unknown output mux '%s'" name)
  in
  let env, bound =
    List.fold_left
      (fun (env, i) p ->
        let v =
          if i < n_args then args.(i)
          else if String.equal p "ctrl" then begin
            let ctrl = Machine_code.find ctx.mc name in
            if ctx.probe_on then
              (match ctx.probe with
              | Some pr -> pr.pr_mux ~mux:name ~ctrl
              | None -> ());
            ctrl
          end
          else invalid_arg (Printf.sprintf "Interp: output mux '%s' has too many parameters" name)
        in
        ((p, v) :: env, i + 1))
      ([], 0) h.h_params
  in
  if bound < n_args then
    invalid_arg (Printf.sprintf "Interp: output mux '%s' has too few parameters" name);
  eval ctx ~phv:[||] ~state:[||] env h.h_body
