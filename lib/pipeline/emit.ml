(* Source emission for pipeline descriptions.

   The original dgen writes the pipeline description to disk as Rust source
   that is compiled together with dsim; our dgen produces an in-memory IR
   that the simulator interprets.  This module renders that IR as readable
   OCaml-style source, which reproduces the paper's Fig. 6 — the same
   description can be printed unoptimized (version 1), after SCC propagation
   (version 2), and after inlining (version 3) — and doubles as a debugging
   aid (the paper notes inlining was introduced partly to make the generated
   code legible). *)

let binop_symbol (op : Ir.binop) =
  match op with
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf (e : Ir.expr) =
  match e with
  | Ir.Const n -> Fmt.int ppf n
  | Ir.Var v -> Fmt.string ppf v
  | Ir.Mc name -> Fmt.pf ppf "values[%S]" name
  | Ir.Trunc a -> Fmt.pf ppf "trunc (%a)" pp_expr a
  | Ir.Phv k -> Fmt.pf ppf "phv[%d]" k
  | Ir.State k -> Fmt.pf ppf "state[%d]" k
  | Ir.Unop (Neg, a) -> Fmt.pf ppf "-(%a)" pp_expr a
  | Ir.Unop (Not, a) -> Fmt.pf ppf "!(%a)" pp_expr a
  | Ir.Binop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b
  | Ir.Cond (c, a, b) -> Fmt.pf ppf "(if %a then %a else %a)" pp_expr c pp_expr a pp_expr b
  | Ir.Call (name, args) ->
    Fmt.pf ppf "%s (%a)" name Fmt.(list ~sep:(any ", ") pp_expr) args

let rec pp_stmt ~indent ppf (s : Ir.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Ir.Let (x, e) -> Fmt.pf ppf "%slet %s = %a in" pad x pp_expr e
  | Ir.Store (k, e) -> Fmt.pf ppf "%sstate[%d] <- %a;" pad k pp_expr e
  | Ir.Return e -> Fmt.pf ppf "%sreturn %a" pad pp_expr e
  | Ir.If (c, a, b) ->
    Fmt.pf ppf "%sif %a then begin@," pad pp_expr c;
    List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:(indent + 2)) s) a;
    if b = [] then Fmt.pf ppf "%send" pad
    else begin
      Fmt.pf ppf "%send else begin@," pad;
      List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:(indent + 2)) s) b;
      Fmt.pf ppf "%send" pad
    end

let pp_helper ppf (h : Ir.helper) =
  Fmt.pf ppf "@[<v>let %s %a =@,  %a@]" h.h_name
    Fmt.(list ~sep:(any " ") string)
    (if h.h_params = [] then [ "()" ] else h.h_params)
    pp_expr h.h_body

let pp_alu ppf (a : Ir.alu) =
  Fmt.pf ppf "@[<v>let %s phv state =@," a.a_name;
  List.iter (fun s -> Fmt.pf ppf "%a@," (pp_stmt ~indent:2) s) a.a_body;
  Fmt.pf ppf "  (* default output *) %a@]" pp_expr a.a_default_output

(* Renders the full description: all helpers in name order, then the ALU
   functions stage by stage, then the output-mux wiring summary. *)
let pp ppf (d : Ir.t) =
  let helpers =
    Hashtbl.fold (fun _ h acc -> h :: acc) d.Ir.d_helpers []
    |> List.sort (fun (a : Ir.helper) b -> String.compare a.h_name b.h_name)
  in
  Fmt.pf ppf "@[<v>(* pipeline description: depth=%d width=%d bits=%d *)@,@," d.Ir.d_depth
    d.Ir.d_width d.Ir.d_bits;
  List.iter (fun h -> Fmt.pf ppf "%a@,@," pp_helper h) helpers;
  Array.iter
    (fun (st : Ir.stage) ->
      Fmt.pf ppf "(* ---- stage %d ---- *)@,@," st.Ir.s_index;
      Array.iter (fun a -> Fmt.pf ppf "%a@,@," pp_alu a) st.Ir.s_stateless;
      Array.iter (fun a -> Fmt.pf ppf "%a@,@," pp_alu a) st.Ir.s_stateful;
      Array.iteri
        (fun c name -> Fmt.pf ppf "(* container %d written by %s *)@," c name)
        st.Ir.s_output_muxes;
      Fmt.pf ppf "@,")
    d.Ir.d_stages;
  Fmt.pf ppf "@]"

let to_string d = Fmt.str "%a" pp d

(* --- Native OCaml code emission -------------------------------------------

   Where the pretty-printer above renders the IR for humans, [native_source]
   renders it for ocamlopt: a self-contained OCaml module of straight-line
   code that the native substrate ({!Druzhba_dsim.Native_substrate}) compiles
   out-of-process with `ocamlfind ocamlopt -shared` and Dynlinks back in.
   This is the paper's actual dgen methodology — dgen emits Rust source that
   rustc compiles together with dsim; the measured artifact is the generated
   code, not an interpreter of it (§3.4).

   The emitted module:
   - bakes every machine-code operand ([Mc] node, mux ctrl) in as an integer
     literal, so it works at any optimization level and constant-folds the
     output-mux selector chains down to a single operand read;
   - carries no hashtables, closures, or heap allocation on the tick path:
     ALU bodies are flattened into nested [let]s over [int array] rows, with
     [If]/[Return] statements lowered by continuation duplication into pure
     expressions (the size blowup this can cause is what the
     `emitted-module-size` lint rule bounds, via {!stage_costs});
   - exposes two entry points per stage: a sequential one over the flat
     register file and a batched one sweeping [Bigarray] lanes, mirroring
     {!Compile}/{!Vcompile} semantics bit-for-bit (latched state reads,
     default-before-body evaluation, stuck-at overlays asserted before each
     lane's snapshot);
   - registers itself through {!Druzhba_dsim.Native_abi} when loaded.

   Determinism: the source depends only on (description, machine code) — no
   timestamps, no hashtable iteration order — so equal inputs produce
   byte-identical source, which is what makes the content-addressed build
   cache sound. *)

module Machine_code = Druzhba_machine_code.Machine_code
module Value = Druzhba_util.Value

type nctx = {
  n_bits : int;
  n_mc : Machine_code.t;
  n_helpers : (string, Ir.helper) Hashtbl.t;
  mutable n_fresh : int;
}

let fresh ctx prefix =
  ctx.n_fresh <- ctx.n_fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.n_fresh

let mask_of ctx = (1 lsl ctx.n_bits) - 1

(* Compile-time value of a (sub)expression, folding through baked machine
   code with the exact {!Value} semantics the runtime uses.  This is what
   collapses a mux selector chain over a constant ctrl to its taken arm. *)
let rec fold_const ctx (e : Ir.expr) : int option =
  match e with
  | Ir.Const n -> Some n
  | Ir.Mc name -> Some (Machine_code.find ctx.n_mc name)
  | Ir.Trunc a -> Option.map (Value.mask ctx.n_bits) (fold_const ctx a)
  | Ir.Unop (op, a) -> Option.map (Interp.apply_unop ctx.n_bits op) (fold_const ctx a)
  | Ir.Binop (op, a, b) -> (
    match (fold_const ctx a, fold_const ctx b) with
    | Some x, Some y -> Some (Interp.apply_binop ctx.n_bits op x y)
    | _ -> None)
  | Ir.Cond (c, a, b) -> (
    match fold_const ctx c with
    | Some v -> fold_const ctx (if v <> 0 then a else b)
    | None -> None)
  | Ir.Var _ | Ir.Phv _ | Ir.State _ | Ir.Call _ -> None

(* How expressions inside one ALU (or mux) body reach their surroundings:
   container reads, latched state reads, and the live state row stores
   write to.  The two entry-point variants differ only in [na_phv]. *)
type naccess = {
  na_phv : int -> string;
  na_state : int -> string;
  na_row : string option;
}

let occurrences x e =
  Ir.fold_expr (fun n e -> match e with Ir.Var v when String.equal v x -> n + 1 | _ -> n) 0 e

(* Renders an expression as a parenthesized OCaml expression.  [env] maps IR
   variable names to already-emitted OCaml locals; helper calls are
   beta-reduced exactly as the closure backend does (single-use parameters
   substituted, multi-use parameters bound once to a fresh local so every
   argument is evaluated exactly once). *)
let rec emit_expr ctx acc env (e : Ir.expr) : string =
  match fold_const ctx e with
  | Some n -> Printf.sprintf "(%d)" n
  | None -> (
    match e with
    | Ir.Const n -> Printf.sprintf "(%d)" n
    | Ir.Mc name -> Printf.sprintf "(%d)" (Machine_code.find ctx.n_mc name)
    | Ir.Var v -> (
      match List.assoc_opt v env with
      | Some s -> s
      | None -> invalid_arg (Printf.sprintf "Emit.native_source: unbound variable '%s'" v))
    | Ir.Trunc a -> Printf.sprintf "(%s land %d)" (emit_expr ctx acc env a) (mask_of ctx)
    | Ir.Phv k -> acc.na_phv k
    | Ir.State k -> acc.na_state k
    | Ir.Unop (Ir.Neg, a) ->
      Printf.sprintf "((- %s) land %d)" (emit_expr ctx acc env a) (mask_of ctx)
    | Ir.Unop (Ir.Not, a) -> Printf.sprintf "(if %s = 0 then 1 else 0)" (emit_expr ctx acc env a)
    | Ir.Binop (op, a, b) -> emit_binop ctx acc env op a b
    | Ir.Cond (c, a, b) -> (
      match fold_const ctx c with
      | Some v -> emit_expr ctx acc env (if v <> 0 then a else b)
      | None ->
        Printf.sprintf "(if %s <> 0 then %s else %s)" (emit_expr ctx acc env c)
          (emit_expr ctx acc env a) (emit_expr ctx acc env b))
    | Ir.Call (name, args) ->
      let h =
        match Hashtbl.find_opt ctx.n_helpers name with
        | Some h -> h
        | None -> invalid_arg (Printf.sprintf "Emit.native_source: unknown helper '%s'" name)
      in
      let pairs = List.combine h.Ir.h_params args in
      let single, multi = List.partition (fun (p, _) -> occurrences p h.Ir.h_body <= 1) pairs in
      let body = Ir.subst_vars single h.Ir.h_body in
      let binds = List.map (fun (p, a) -> (p, fresh ctx "h", a)) multi in
      let env' = List.map (fun (p, v, _) -> (p, v)) binds @ env in
      if binds = [] then emit_expr ctx acc env' body
      else
        Printf.sprintf "(%s%s)"
          (String.concat ""
             (List.map
                (fun (_, v, a) -> Printf.sprintf "let %s = %s in " v (emit_expr ctx acc env a))
                binds))
          (emit_expr ctx acc env' body))

and emit_binop ctx acc env op a b =
  let m = mask_of ctx in
  let arith sym =
    Printf.sprintf "((%s %s %s) land %d)" (emit_expr ctx acc env a) sym (emit_expr ctx acc env b) m
  in
  let rel sym =
    Printf.sprintf "(if %s %s %s then 1 else 0)" (emit_expr ctx acc env a) sym
      (emit_expr ctx acc env b)
  in
  (* division/modulo by zero yield 0, the hardware convention of {!Value} *)
  let guarded sym =
    let dv = fresh ctx "q" in
    Printf.sprintf "(let %s = %s in if %s = 0 then 0 else (%s %s %s) land %d)" dv
      (emit_expr ctx acc env b) dv (emit_expr ctx acc env a) sym dv m
  in
  match op with
  | Ir.Add -> arith "+"
  | Ir.Sub -> arith "-"
  | Ir.Mul -> arith "*"
  | Ir.Div -> guarded "/"
  | Ir.Mod -> guarded "mod"
  | Ir.Eq -> rel "="
  | Ir.Neq -> rel "<>"
  | Ir.Lt -> rel "<"
  | Ir.Gt -> rel ">"
  | Ir.Le -> rel "<="
  | Ir.Ge -> rel ">="
  | Ir.And ->
    Printf.sprintf "(if %s <> 0 && %s <> 0 then 1 else 0)" (emit_expr ctx acc env a)
      (emit_expr ctx acc env b)
  | Ir.Or ->
    Printf.sprintf "(if %s <> 0 || %s <> 0 then 1 else 0)" (emit_expr ctx acc env a)
      (emit_expr ctx acc env b)

(* Lowers a statement list to the expression computing the ALU's output.
   [Return] discards its continuation; [If] duplicates the continuation into
   both arms (the scalar engines' "rest of list" scoping: a branch-local
   [Let] is visible to the continuation only along its own path, which is
   the only pattern dgen generates).  [default] is the local holding the
   already-evaluated default output. *)
let rec emit_stmts ctx acc env (stmts : Ir.stmt list) ~default : string =
  match stmts with
  | [] -> default
  | Ir.Let (x, e) :: rest ->
    let v = fresh ctx "v" in
    Printf.sprintf "(let %s = %s in %s)" v (emit_expr ctx acc env e)
      (emit_stmts ctx acc ((x, v) :: env) rest ~default)
  | Ir.Store (k, e) :: rest ->
    let row =
      match acc.na_row with
      | Some r -> r
      | None -> invalid_arg "Emit.native_source: store in a stateless ALU"
    in
    Printf.sprintf "(%s.(%d) <- %s; %s)" row k (emit_expr ctx acc env e)
      (emit_stmts ctx acc env rest ~default)
  | Ir.Return e :: _ -> emit_expr ctx acc env e
  | Ir.If (c, a, b) :: rest -> (
    match fold_const ctx c with
    | Some v -> emit_stmts ctx acc env ((if v <> 0 then a else b) @ rest) ~default
    | None ->
      Printf.sprintf "(if %s <> 0 then %s else %s)" (emit_expr ctx acc env c)
        (emit_stmts ctx acc env (a @ rest) ~default)
        (emit_stmts ctx acc env (b @ rest) ~default))

(* Emits one ALU's bindings into [buf]: the latched snapshot, the default
   output (evaluated first, like the scalar engines), the body, and — for
   stateful ALUs — the post-execution state_0.  Returns the output local and
   the state_0 local. *)
let emit_alu ctx buf ~indent ~phv ~row (a : Ir.alu) : string * string option =
  let pad = String.make indent ' ' in
  let snaps =
    match row with
    | None -> []
    | Some r ->
      List.init
        (max 1 a.Ir.a_state_size)
        (fun k ->
          let v = fresh ctx "r" in
          Printf.bprintf buf "%slet %s = Array.unsafe_get %s %d in\n" pad v r k;
          (k, v))
  in
  let acc =
    {
      na_phv = phv;
      na_state =
        (fun k ->
          match List.assoc_opt k snaps with
          | Some v -> v
          | None ->
            invalid_arg
              (Printf.sprintf "Emit.native_source: state slot %d out of range in '%s'" k
                 a.Ir.a_name));
      na_row = row;
    }
  in
  let d = fresh ctx "d" in
  Printf.bprintf buf "%slet %s = %s in\n" pad d (emit_expr ctx acc [] a.Ir.a_default_output);
  let y = fresh ctx "y" in
  Printf.bprintf buf "%slet %s = %s in\n" pad y (emit_stmts ctx acc [] a.Ir.a_body ~default:d);
  let z =
    match row with
    | None -> None
    | Some r ->
      let z = fresh ctx "z" in
      Printf.bprintf buf "%slet %s = Array.unsafe_get %s 0 in\n" pad z r;
      Some z
  in
  (y, z)

(* Emits one output mux application: parameters bind positionally to the
   stage argument vector (stateless outs, stateful outs, post-execution
   state_0s, old container value) and a trailing "ctrl" parameter is baked
   to its machine-code value — which lets the selector chain fold down to
   the selected operand. *)
let emit_mux ctx (d : Ir.t) ~phv ~args name =
  let h = Ir.find_helper d name in
  let body, data_params =
    if List.mem "ctrl" h.Ir.h_params then
      ( Ir.subst_vars [ ("ctrl", Ir.Const (Machine_code.find ctx.n_mc name)) ] h.Ir.h_body,
        List.filter (fun p -> p <> "ctrl") h.Ir.h_params )
    else (h.Ir.h_body, h.Ir.h_params)
  in
  let rec bind env ps vs =
    match (ps, vs) with
    | [], _ | _, [] -> env
    | p :: ps', v :: vs' -> bind ((p, v) :: env) ps' vs'
  in
  let env = bind [] data_params args in
  let acc =
    {
      na_phv = phv;
      na_state =
        (fun _ -> invalid_arg (Printf.sprintf "Emit.native_source: state read in mux '%s'" name));
      na_row = None;
    }
  in
  emit_expr ctx acc env body

(* Number of stateful ALUs in stages before [s] — the base of stage [s]'s
   state rows in the plugin's flat stage-major state array. *)
let stateful_base (d : Ir.t) s =
  let base = ref 0 in
  for i = 0 to s - 1 do
    base := !base + Array.length d.Ir.d_stages.(i).Ir.s_stateful
  done;
  !base

let emit_stage_common ctx buf (d : Ir.t) (st : Ir.stage) ~indent ~phv ~row_of =
  let nsl = Array.length st.Ir.s_stateless and nsf = Array.length st.Ir.s_stateful in
  let xs = Array.make nsl "" and ys = Array.make nsf "" and zs = Array.make nsf "" in
  Array.iteri
    (fun i a ->
      let y, _ = emit_alu ctx buf ~indent ~phv ~row:None a in
      xs.(i) <- y)
    st.Ir.s_stateless;
  Array.iteri
    (fun j a ->
      row_of j buf;
      let y, z = emit_alu ctx buf ~indent ~phv ~row:(Some (Printf.sprintf "sr%d" j)) a in
      ys.(j) <- y;
      zs.(j) <- Option.get z)
    st.Ir.s_stateful;
  let mux_args c = Array.to_list xs @ Array.to_list ys @ Array.to_list zs @ [ phv c ] in
  fun c -> emit_mux ctx d ~phv ~args:(mux_args c) st.Ir.s_output_muxes.(c)

(* Sequential entry point for stage [s]: reads row s of the flat [cur]
   register file, writes row s+1 of [nxt] (container offsets baked). *)
let emit_stage_seq ctx buf (d : Ir.t) (st : Ir.stage) =
  let width = d.Ir.d_width and s = st.Ir.s_index in
  let base = s * width and out_base = (s + 1) * width in
  let g0 = stateful_base d s in
  Printf.bprintf buf "let exec_stage_%d (st : int array array) (cur : int array) (nxt : int array) =\n" s;
  let phv k = Printf.sprintf "(Array.unsafe_get cur %d)" (base + k) in
  let row_of j buf = Printf.bprintf buf "  let sr%d = Array.unsafe_get st %d in\n" j (g0 + j) in
  let mux = emit_stage_common ctx buf d st ~indent:2 ~phv ~row_of in
  let sets =
    List.init width (fun c ->
        Printf.sprintf "  Array.unsafe_set nxt %d %s" (out_base + c) (mux c))
  in
  Printf.bprintf buf "%s\n\n" (String.concat ";\n" sets)

(* Batched entry point for stage [s]: sweeps lanes 0..k-1 of the
   structure-of-arrays rows, whole stage per lane.  Per-ALU state rows are
   disjoint and each lane's inputs come only from the input row, so this is
   bit-identical to the ALU-major sweeps of {!Vcompile} — including the
   stuck-at overlay, asserted per stateful ALU before each lane's snapshot. *)
let emit_stage_lanes ctx buf (d : Ir.t) (st : Ir.stage) =
  let width = d.Ir.d_width and s = st.Ir.s_index in
  let g0 = stateful_base d s in
  Printf.bprintf buf
    "let exec_lanes_%d (st : int array array) (inr : lane array) (outr : lane array) (k : int) (stuck : (int * int * int) list) =\n"
    s;
  for c = 0 to width - 1 do
    Printf.bprintf buf "  let i%d = Array.unsafe_get inr %d in\n" c c;
    Printf.bprintf buf "  let o%d = Array.unsafe_get outr %d in\n" c c
  done;
  Array.iteri
    (fun j _ -> Printf.bprintf buf "  let sr%d = Array.unsafe_get st %d in\n" j (g0 + j))
    st.Ir.s_stateful;
  Printf.bprintf buf "  for b = 0 to k - 1 do\n";
  let phv k = Printf.sprintf "(Bigarray.Array1.unsafe_get i%d b)" k in
  let row_of j buf =
    Printf.bprintf buf
      "    (match stuck with\n\
      \     | [] -> ()\n\
      \     | l -> List.iter (fun (a, sl, v) -> if a = %d then sr%d.(sl) <- v) l);\n"
      j j
  in
  let mux = emit_stage_common ctx buf d st ~indent:4 ~phv ~row_of in
  let sets =
    List.init width (fun c ->
        Printf.sprintf "    Bigarray.Array1.unsafe_set o%d b %s" c (mux c))
  in
  Printf.bprintf buf "%s\n  done\n\n" (String.concat ";\n" sets)

(* The full module.  Self-contained: Stdlib + Bigarray only, plus the one
   registration call into the host's {!Druzhba_dsim.Native_abi} slot. *)
let native_source (d : Ir.t) ~mc : string =
  let ctx = { n_bits = d.Ir.d_bits; n_mc = mc; n_helpers = d.Ir.d_helpers; n_fresh = 0 } in
  let buf = Buffer.create 4096 in
  let depth = d.Ir.d_depth and width = d.Ir.d_width in
  Printf.bprintf buf
    "(* Generated by druzhba (Emit.native_source): depth=%d width=%d bits=%d.\n\
    \   Machine code is baked in as integer literals; do not edit. *)\n\
     [@@@warning \"-a\"]\n\n\
     type lane = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t\n\n"
    depth width d.Ir.d_bits;
  let stateful =
    Array.to_list d.Ir.d_stages
    |> List.concat_map (fun (st : Ir.stage) -> Array.to_list st.Ir.s_stateful)
  in
  Printf.bprintf buf "let state_names : string array = [| %s |]\n\n"
    (String.concat "; " (List.map (fun (a : Ir.alu) -> Printf.sprintf "%S" a.Ir.a_name) stateful));
  Printf.bprintf buf "let alloc () : int array array = [| %s |]\n\n"
    (String.concat "; "
       (List.map
          (fun (a : Ir.alu) -> Printf.sprintf "Array.make %d 0" (max 1 a.Ir.a_state_size))
          stateful));
  Printf.bprintf buf "let stage_bases : int array = [| %s |]\n\n"
    (String.concat "; "
       (List.init depth (fun s -> string_of_int (stateful_base d s))));
  Array.iter (fun st -> emit_stage_seq ctx buf d st) d.Ir.d_stages;
  Array.iter (fun st -> emit_stage_lanes ctx buf d st) d.Ir.d_stages;
  Printf.bprintf buf "let exec_stage st s cur nxt =\n  match s with\n";
  for s = 0 to depth - 1 do
    Printf.bprintf buf "  | %d -> exec_stage_%d st cur nxt\n" s s
  done;
  Printf.bprintf buf "  | _ -> ignore st; ignore cur; ignore nxt\n\n";
  Printf.bprintf buf "let exec_lanes st s inr outr k stuck =\n  match s with\n";
  for s = 0 to depth - 1 do
    Printf.bprintf buf "  | %d -> exec_lanes_%d st inr outr k stuck\n" s s
  done;
  Printf.bprintf buf "  | _ -> ignore st; ignore inr; ignore outr; ignore k; ignore stuck\n\n";
  Printf.bprintf buf
    "let () =\n\
    \  Druzhba_dsim.Native_abi.register\n\
    \    {\n\
    \      Druzhba_dsim.Native_abi.np_depth = %d;\n\
    \      np_width = %d;\n\
    \      np_state_names = state_names;\n\
    \      np_stage_bases = stage_bases;\n\
    \      np_alloc = alloc;\n\
    \      np_exec_stage = exec_stage;\n\
    \      np_exec_lanes = exec_lanes;\n\
    \    }\n"
    depth width;
  Buffer.contents buf

(* --- Emitted-code size estimation ------------------------------------------

   Continuation duplication is exponential in nested-[If] depth in the worst
   case, and a single pathological stage function can push ocamlopt into
   minutes of compile time.  [stage_costs] estimates the emitted expression
   size per stage with the same duplication the emitter performs (helper
   bodies expanded at every call site), saturating well above any sane
   threshold; the `emitted-module-size` lint rule warns on it. *)

let cost_cap = 10_000_000
let sat_add a b = let s = a + b in if s > cost_cap || s < 0 then cost_cap else s

let rec cost_expr helpers (e : Ir.expr) =
  match e with
  | Ir.Const _ | Ir.Var _ | Ir.Mc _ | Ir.Phv _ | Ir.State _ -> 1
  | Ir.Trunc a | Ir.Unop (_, a) -> sat_add 1 (cost_expr helpers a)
  | Ir.Binop (_, a, b) -> sat_add 1 (sat_add (cost_expr helpers a) (cost_expr helpers b))
  | Ir.Cond (c, a, b) ->
    sat_add 1 (sat_add (cost_expr helpers c) (sat_add (cost_expr helpers a) (cost_expr helpers b)))
  | Ir.Call (name, args) ->
    let body =
      match Hashtbl.find_opt helpers name with
      | Some (h : Ir.helper) -> cost_expr helpers h.Ir.h_body
      | None -> 1
    in
    List.fold_left (fun n a -> sat_add n (cost_expr helpers a)) (sat_add 1 body) args

(* [kcost] is the cost of the continuation following [stmts]; [If] arms each
   pay it once (the duplication), computed in linear time by threading the
   already-summed continuation cost instead of re-walking the list. *)
let rec cost_stmts helpers (stmts : Ir.stmt list) kcost =
  match stmts with
  | [] -> kcost
  | (Ir.Let (_, e) | Ir.Store (_, e)) :: rest ->
    sat_add (cost_expr helpers e) (cost_stmts helpers rest kcost)
  | Ir.Return e :: _ -> cost_expr helpers e
  | Ir.If (c, a, b) :: rest ->
    let rc = cost_stmts helpers rest kcost in
    sat_add (cost_expr helpers c)
      (sat_add (cost_stmts helpers a rc) (cost_stmts helpers b rc))

let stage_cost (d : Ir.t) (st : Ir.stage) =
  let helpers = d.Ir.d_helpers in
  let alu (a : Ir.alu) =
    sat_add (cost_expr helpers a.Ir.a_default_output) (cost_stmts helpers a.Ir.a_body 1)
  in
  let mux name =
    match Hashtbl.find_opt helpers name with
    | Some (h : Ir.helper) -> cost_expr helpers h.Ir.h_body
    | None -> 1
  in
  let n = ref 0 in
  Array.iter (fun a -> n := sat_add !n (alu a)) st.Ir.s_stateless;
  Array.iter (fun a -> n := sat_add !n (alu a)) st.Ir.s_stateful;
  Array.iter (fun m -> n := sat_add !n (mux m)) st.Ir.s_output_muxes;
  (* both entry-point variants carry the stage body; the batched one adds
     the per-container lane plumbing *)
  sat_add (sat_add !n !n) d.Ir.d_width

let stage_costs (d : Ir.t) = Array.map (stage_cost d) d.Ir.d_stages
