(* Vectorizing batch compiler: structure-of-arrays execution of a compiled
   pipeline description.

   {!Compile} turns a description into scalar closures that process one PHV
   per call; the per-execution fixed cost (closure dispatch, the
   [Return_signal] handler, environment setup) dominates the Table-1 hot
   loop.  This module compiles the same description a second time into
   {e lane kernels}: every (stage, container) slot and every ALU output
   becomes one contiguous [Bigarray.Array1] lane spanning a batch of [cap]
   PHVs, and each kernel sweeps its lane over the whole batch in a
   monomorphic [for] loop, so the dispatch cost is paid once per batch
   instead of once per PHV.

   Semantics are bit-identical to the scalar backends by construction:

   - stateless ALU bodies and output muxes are pure, so they vectorize into
     straight-line kernel sequences with mask-predicated [Return] merging —
     lane order never matters;
   - stateful ALU bodies execute strictly in lane (= injection slot) order
     through an exception-free residual step interpreter sharing the scalar
     closure's state vector, so per-ALU state mutation order matches the
     tick-interleaved engine exactly;
   - the version-1 cost model is preserved: every [Mc] node still performs
     one machine-code hash lookup per PHV (a per-lane lookup sweep), and
     constant-condition conditionals compile only the taken arm, exactly as
     the scalar closures evaluate them.

   Anything outside the vectorizable grammar (state-dependent helper-call
   arguments, [Return] from a stateful body, a [Store] in a stateless body)
   falls back per-ALU to the scalar closure driven lane-by-lane — the
   fallback is the universal semantic reference, so no program can be
   mis-vectorized, only executed more slowly.

   Performance note (measured, flambda off): Bigarray accesses only compile
   to direct loads inside top-level functions whose parameters have concrete
   [Array1] types; an [unsafe_get] inlined into a local closure goes through
   the C call path and is ~40x slower.  Every lane access below therefore
   goes through the top-level kernels or {!lane_get}/{!lane_set}. *)

module Value = Druzhba_util.Value
module Machine_code = Druzhba_machine_code.Machine_code

type lane = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create_lane cap : lane =
  let l = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
  Bigarray.Array1.fill l 0;
  l

let lane_get (l : lane) i = Bigarray.Array1.unsafe_get l i
let lane_set (l : lane) i (v : int) = Bigarray.Array1.unsafe_set l i v

(* --- Lane kernels -----------------------------------------------------------
   All top-level, all monomorphic over [lane]; [k] is the live lane count of
   the sweep (<= cap), [m] the datapath bit mask. *)

let k_copy (dst : lane) (a : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (lane_get a i)
  done

let k_fill (dst : lane) v k =
  for i = 0 to k - 1 do
    lane_set dst i v
  done

let k_add (dst : lane) (a : lane) (b : lane) m k =
  for i = 0 to k - 1 do
    lane_set dst i ((lane_get a i + lane_get b i) land m)
  done

let k_sub (dst : lane) (a : lane) (b : lane) m k =
  for i = 0 to k - 1 do
    lane_set dst i ((lane_get a i - lane_get b i) land m)
  done

let k_mul (dst : lane) (a : lane) (b : lane) m k =
  for i = 0 to k - 1 do
    lane_set dst i (lane_get a i * lane_get b i land m)
  done

let k_div (dst : lane) (a : lane) (b : lane) m k =
  for i = 0 to k - 1 do
    let d = lane_get b i in
    lane_set dst i (if d = 0 then 0 else lane_get a i / d land m)
  done

let k_rem (dst : lane) (a : lane) (b : lane) m k =
  for i = 0 to k - 1 do
    let d = lane_get b i in
    lane_set dst i (if d = 0 then 0 else lane_get a i mod d land m)
  done

let k_eq (dst : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i = lane_get b i then 1 else 0)
  done

let k_neq (dst : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i <> lane_get b i then 1 else 0)
  done

let k_lt (dst : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i < lane_get b i then 1 else 0)
  done

let k_gt (dst : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i > lane_get b i then 1 else 0)
  done

let k_le (dst : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i <= lane_get b i then 1 else 0)
  done

let k_ge (dst : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i >= lane_get b i then 1 else 0)
  done

let k_and (dst : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i <> 0 && lane_get b i <> 0 then 1 else 0)
  done

let k_or (dst : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i <> 0 || lane_get b i <> 0 then 1 else 0)
  done

let k_neg (dst : lane) (a : lane) m k =
  for i = 0 to k - 1 do
    lane_set dst i (-lane_get a i land m)
  done

let k_not (dst : lane) (a : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get a i = 0 then 1 else 0)
  done

let k_trunc (dst : lane) (a : lane) m k =
  for i = 0 to k - 1 do
    lane_set dst i (lane_get a i land m)
  done

(* cond <> 0 ? a : b (both arms already evaluated; arms are pure) *)
let k_sel (dst : lane) (c : lane) (a : lane) (b : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get c i <> 0 then lane_get a i else lane_get b i)
  done

(* One machine-code hash lookup per lane: the version-1 cost model treats
   machine code as runtime variables, so a batch of B PHVs pays B lookups,
   exactly as B scalar executions would. *)
let k_mc (dst : lane) mc name k =
  for i = 0 to k - 1 do
    lane_set dst i (Machine_code.find mc name)
  done

(* parent-mask and branch-condition combination (masks are truthy ints) *)
let k_mask_and (dst : lane) (m1 : lane) (c : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get m1 i <> 0 && lane_get c i <> 0 then 1 else 0)
  done

let k_mask_andnot (dst : lane) (m1 : lane) (c : lane) k =
  for i = 0 to k - 1 do
    lane_set dst i (if lane_get m1 i <> 0 && lane_get c i = 0 then 1 else 0)
  done

(* [Return] merging: a lane returns at most once; later returns and the
   default only land where [returned] is still 0. *)
let k_return (out : lane) (ret : lane) (v : lane) k =
  for i = 0 to k - 1 do
    if lane_get ret i = 0 then begin
      lane_set out i (lane_get v i);
      lane_set ret i 1
    end
  done

let k_return_c (out : lane) (ret : lane) v k =
  for i = 0 to k - 1 do
    if lane_get ret i = 0 then begin
      lane_set out i v;
      lane_set ret i 1
    end
  done

let k_return_m (out : lane) (ret : lane) (v : lane) (ml : lane) k =
  for i = 0 to k - 1 do
    if lane_get ml i <> 0 && lane_get ret i = 0 then begin
      lane_set out i (lane_get v i);
      lane_set ret i 1
    end
  done

let k_return_mc (out : lane) (ret : lane) v (ml : lane) k =
  for i = 0 to k - 1 do
    if lane_get ml i <> 0 && lane_get ret i = 0 then begin
      lane_set out i v;
      lane_set ret i 1
    end
  done

let k_default (out : lane) (ret : lane) (d : lane) k =
  for i = 0 to k - 1 do
    if lane_get ret i = 0 then lane_set out i (lane_get d i)
  done

let k_default_c (out : lane) (ret : lane) d k =
  for i = 0 to k - 1 do
    if lane_get ret i = 0 then lane_set out i d
  done

(* --- Representation --------------------------------------------------------- *)

(* A vectorized operation: sweeps its captured lanes over the first [k]
   slots.  Built once at vectorization time; calling one is the only
   indirect call a whole lane sweep pays. *)
type vop = int -> unit

(* Per-lane residual function of a stateful body: lane slot -> value.
   Reads hoisted pure lanes via {!lane_get} and latched state via the
   snapshot array it closes over. *)
type sfun = int -> int

(* Residual statement of a stateful body, interpreted per lane in slot
   order.  [St_let] writes a per-occurrence local slot (the compile-time
   environment scopes it over the remainder of its own statement list,
   matching {!Interp.exec_latched}). *)
type step =
  | St_let of int * sfun
  | St_store of int * sfun
  | St_if of sfun * step array * step array

type stateless = {
  sl_out : lane;
  sl_run : sl_run;
}

and sl_run =
  | Sl_vec of vop array
  | Sl_scalar of Compile.compiled_alu (* per-lane gather + ca_run *)

type sf_body =
  | Sf_steps of { sd : sfun; steps : step array }
  (* Shape-specialized bodies for the dominant stateful atom of the rule
     compiler's output: a pair-state ALU defaulting to a state read, whose
     residual body is one two-way branch over two stores — or, once the
     branch folds at vectorization time, the two stores themselves.  The
     drivers inline the step structure, so the per-lane loop pays no step
     dispatch and no default-output closure. *)
  | Sf_pair of { sdslot : int; f0 : sfun; f1 : sfun }
  | Sf_ifpair of { sdslot : int; c : sfun; a0 : sfun; a1 : sfun; e0 : sfun; e1 : sfun }
  | Sf_scalar (* per-lane gather + ca_run on [sf_ca] *)

type stateful = {
  sf_ca : Compile.compiled_alu; (* owns the persistent state; scalar fallback *)
  sf_out : lane;
  sf_s0 : lane; (* post-execution state_0 ("write half"), per lane *)
  sf_prelude : vop array; (* hoisted pure subtrees, swept before the lane loop *)
  sf_body : sf_body;
  sf_locals : int array; (* St_let scratch *)
  (* State slots the body (or default) actually reads — the per-lane
     snapshot only refreshes these, so small atoms latch one or two slots
     instead of blitting the whole vector every lane. *)
  sf_read : int array;
}

type mux =
  | Mx_vec of vop array (* writes the next row's container lane *)
  | Mx_scalar of {
      mf : Compile.helper_fn;
      margs : lane array; (* [stateless outs; stateful outs; state_0s; old] *)
      mdst : lane;
    }

type vstage = {
  vs_row : lane array; (* input row of this stage (= rows.(s)) *)
  vs_sl : stateless array;
  vs_sf : stateful array;
  vs_mux : mux array;
}

type t = {
  v_cap : int;
  v_depth : int;
  v_width : int;
  v_rows : lane array array; (* (depth+1) x width: rows.(s).(c) = container c at stage-s input *)
  v_stages : vstage array;
  v_scratch : int array; (* width-sized gather scratch for scalar fallbacks *)
  v_margs_scratch : int array; (* mux-arg gather scratch for Mx_scalar *)
}

let cap t = t.v_cap
let rows t = t.v_rows

(* --- Lane-sweep drivers (top-level for the Bigarray fast path) -------------- *)

let run_ops (ops : vop array) k =
  for i = 0 to Array.length ops - 1 do
    (Array.unsafe_get ops i) k
  done

let gather_row (row : lane array) (dst : int array) b =
  for c = 0 to Array.length row - 1 do
    Array.unsafe_set dst c (lane_get (Array.unsafe_get row c) b)
  done

let run_scalar_stateless (row : lane array) (scratch : int array)
    (ca : Compile.compiled_alu) (out : lane) k =
  let env = ca.Compile.ca_env in
  env.Compile.phv <- scratch;
  for b = 0 to k - 1 do
    gather_row row scratch b;
    lane_set out b (ca.Compile.ca_run ())
  done

let rec exec_steps (steps : step array) (st : int array) (locals : int array) b =
  for i = 0 to Array.length steps - 1 do
    match Array.unsafe_get steps i with
    | St_let (j, f) -> Array.unsafe_set locals j (f b)
    | St_store (j, f) -> st.(j) <- f b
    | St_if (c, a, e) ->
      if c b <> 0 then exec_steps a st locals b else exec_steps e st locals b
  done

(* Generic stateful lane loop: per lane (= injection slot, in order) assert
   any stuck-at slots, latch the read snapshot, evaluate the default output
   first (the scalar closures do too — Mc lookup order matters), run the
   residual steps against the live state, and expose the post-execution
   state_0 for the muxes.  [stuck] is almost always []. *)
let run_stateful_steps (st : int array) (snap : int array) (rs : int array)
    (locals : int array) (sd : sfun) (steps : step array) (out : lane) (s0 : lane)
    (stuck : (int * int) list) k =
  let nr = Array.length rs in
  for b = 0 to k - 1 do
    (match stuck with
    | [] -> ()
    | l -> List.iter (fun (slot, v) -> st.(slot) <- v) l);
    for i = 0 to nr - 1 do
      let slot = Array.unsafe_get rs i in
      Array.unsafe_set snap slot (Array.unsafe_get st slot)
    done;
    lane_set out b (sd b);
    exec_steps steps st locals b;
    lane_set s0 b st.(0)
  done

(* Specialized lane loops for {!Sf_pair}/{!Sf_ifpair}: same protocol as
   {!run_stateful_steps} with the body unrolled.  The default output is the
   latched [sdslot] read, and the post-store state_0 value is forwarded to
   the s0 lane without re-reading the state vector. *)
let run_stateful_pair (st : int array) (snap : int array) (rs : int array) (sdslot : int)
    (f0 : sfun) (f1 : sfun) (out : lane) (s0 : lane) (stuck : (int * int) list) k =
  let nr = Array.length rs in
  for b = 0 to k - 1 do
    (match stuck with
    | [] -> ()
    | l -> List.iter (fun (slot, v) -> st.(slot) <- v) l);
    for i = 0 to nr - 1 do
      let slot = Array.unsafe_get rs i in
      Array.unsafe_set snap slot (Array.unsafe_get st slot)
    done;
    lane_set out b (Array.unsafe_get snap sdslot);
    let v0 = f0 b in
    st.(0) <- v0;
    st.(1) <- f1 b;
    lane_set s0 b v0
  done

let run_stateful_ifpair (st : int array) (snap : int array) (rs : int array) (sdslot : int)
    (c : sfun) (a0 : sfun) (a1 : sfun) (e0 : sfun) (e1 : sfun) (out : lane) (s0 : lane)
    (stuck : (int * int) list) k =
  let nr = Array.length rs in
  for b = 0 to k - 1 do
    (match stuck with
    | [] -> ()
    | l -> List.iter (fun (slot, v) -> st.(slot) <- v) l);
    for i = 0 to nr - 1 do
      let slot = Array.unsafe_get rs i in
      Array.unsafe_set snap slot (Array.unsafe_get st slot)
    done;
    lane_set out b (Array.unsafe_get snap sdslot);
    let v0 =
      if c b <> 0 then begin
        let v0 = a0 b in
        st.(0) <- v0;
        st.(1) <- a1 b;
        v0
      end
      else begin
        let v0 = e0 b in
        st.(0) <- v0;
        st.(1) <- e1 b;
        v0
      end
    in
    lane_set s0 b v0
  done

let run_stateful_scalar (row : lane array) (scratch : int array)
    (ca : Compile.compiled_alu) (out : lane) (s0 : lane) (stuck : (int * int) list) k =
  let env = ca.Compile.ca_env in
  env.Compile.phv <- scratch;
  for b = 0 to k - 1 do
    (match stuck with
    | [] -> ()
    | l -> List.iter (fun (slot, v) -> env.Compile.state.(slot) <- v) l);
    gather_row row scratch b;
    lane_set out b (ca.Compile.ca_run ());
    lane_set s0 b env.Compile.state.(0)
  done

let run_scalar_mux (mf : Compile.helper_fn) (margs : lane array) (scratch : int array)
    (dst : lane) k =
  let n = Array.length margs in
  for b = 0 to k - 1 do
    for i = 0 to n - 1 do
      Array.unsafe_set scratch i (lane_get (Array.unsafe_get margs i) b)
    done;
    lane_set dst b (mf scratch)
  done

(* --- Expression vectorization ------------------------------------------------ *)

exception Not_vectorizable

(* Compile-time value of a (sub)expression: a constant folded at build time
   or a lane holding one value per PHV slot. *)
type atom = L of lane | C of int

(* Stateful-body environment entry: pure bindings become atoms (possibly
   hoisted lanes), state-dependent [Let]s become per-lane local slots. *)
type binding = B_atom of atom | B_slot of int

type builder = {
  bd_cap : int;
  bd_bits : Value.width;
  bd_mask : int;
  bd_mc : Machine_code.t;
  bd_helpers : (string, Ir.helper) Hashtbl.t;
  bd_consts : (int, lane) Hashtbl.t;
  mutable bd_pool : lane array; (* temp lanes, shared across ALUs/muxes *)
  mutable bd_next : int; (* next free temp (reset per ALU/mux) *)
  mutable bd_ops : vop list; (* emitted sweeps, reversed *)
  mutable bd_row : lane array; (* current stage's input row *)
}

let temp bd =
  if bd.bd_next >= Array.length bd.bd_pool then begin
    let n = Array.length bd.bd_pool in
    let grown = Array.init (max 8 (2 * n)) (fun i -> if i < n then bd.bd_pool.(i) else create_lane bd.bd_cap) in
    bd.bd_pool <- grown
  end;
  let l = bd.bd_pool.(bd.bd_next) in
  bd.bd_next <- bd.bd_next + 1;
  l

let emit bd op = bd.bd_ops <- op :: bd.bd_ops

let take_ops bd =
  let ops = Array.of_list (List.rev bd.bd_ops) in
  bd.bd_ops <- [];
  ops

let const_lane bd v =
  match Hashtbl.find_opt bd.bd_consts v with
  | Some l -> l
  | None ->
    let l = create_lane bd.bd_cap in
    Bigarray.Array1.fill l v;
    Hashtbl.add bd.bd_consts v l;
    l

let laneify bd = function L l -> l | C v -> const_lane bd v

let occurrences x e =
  Ir.fold_expr (fun n e -> match e with Ir.Var v when String.equal v x -> n + 1 | _ -> n) 0 e

let emit_binop bd (dst : lane) (op : Ir.binop) (a : lane) (b : lane) =
  let m = bd.bd_mask in
  match op with
  | Ir.Add -> emit bd (fun k -> k_add dst a b m k)
  | Ir.Sub -> emit bd (fun k -> k_sub dst a b m k)
  | Ir.Mul -> emit bd (fun k -> k_mul dst a b m k)
  | Ir.Div -> emit bd (fun k -> k_div dst a b m k)
  | Ir.Mod -> emit bd (fun k -> k_rem dst a b m k)
  | Ir.Eq -> emit bd (fun k -> k_eq dst a b k)
  | Ir.Neq -> emit bd (fun k -> k_neq dst a b k)
  | Ir.Lt -> emit bd (fun k -> k_lt dst a b k)
  | Ir.Gt -> emit bd (fun k -> k_gt dst a b k)
  | Ir.Le -> emit bd (fun k -> k_le dst a b k)
  | Ir.Ge -> emit bd (fun k -> k_ge dst a b k)
  | Ir.And -> emit bd (fun k -> k_and dst a b k)
  | Ir.Or -> emit bd (fun k -> k_or dst a b k)

(* Vectorizes a pure expression under a compile-time environment of atoms.
   Helper calls are beta-reduced exactly as {!Compile.compile_expr} does:
   single-use parameters are substituted (an [Mc] argument then costs one
   lookup per use = per execution, like the scalar closure), multi-use
   parameters are evaluated once to an atom bound in the environment (one
   lookup per call).  Constant subtrees fold at build time — value-identical
   to the scalar evaluation and free of [Mc] nodes by construction. *)
let rec veval bd (env : (string * atom) list) (e : Ir.expr) : atom =
  match e with
  | Ir.Const n -> C n
  | Ir.Var x -> (
    match List.assoc_opt x env with Some a -> a | None -> raise Not_vectorizable)
  | Ir.Mc name ->
    let dst = temp bd in
    let mc = bd.bd_mc in
    emit bd (fun k -> k_mc dst mc name k);
    L dst
  | Ir.Phv c ->
    if c < 0 || c >= Array.length bd.bd_row then raise Not_vectorizable;
    L bd.bd_row.(c)
  | Ir.State _ -> raise Not_vectorizable
  | Ir.Trunc a -> (
    match veval bd env a with
    | C n -> C (Value.mask bd.bd_bits n)
    | L l ->
      let dst = temp bd in
      let m = bd.bd_mask in
      emit bd (fun k -> k_trunc dst l m k);
      L dst)
  | Ir.Unop (op, a) -> (
    match veval bd env a with
    | C n -> C (Interp.apply_unop bd.bd_bits op n)
    | L l ->
      let dst = temp bd in
      (match op with
      | Ir.Neg ->
        let m = bd.bd_mask in
        emit bd (fun k -> k_neg dst l m k)
      | Ir.Not -> emit bd (fun k -> k_not dst l k));
      L dst)
  | Ir.Binop (op, ea, eb) -> (
    let a = veval bd env ea in
    let b = veval bd env eb in
    match (a, b) with
    | C x, C y -> C (Interp.apply_binop bd.bd_bits op x y)
    | _ ->
      let la = laneify bd a and lb = laneify bd b in
      let dst = temp bd in
      emit_binop bd dst op la lb;
      L dst)
  | Ir.Cond (c, ea, eb) -> (
    match veval bd env c with
    | C n -> if Value.is_true n then veval bd env ea else veval bd env eb
    | L lc ->
      (* Lane-valued condition: evaluate both arms (pure, total — division
         by zero yields 0) and select.  Only the count of Mc hash lookups
         can deviate from the scalar path here, never a value. *)
      let la = laneify bd (veval bd env ea) in
      let lb = laneify bd (veval bd env eb) in
      let dst = temp bd in
      emit bd (fun k -> k_sel dst lc la lb k);
      L dst)
  | Ir.Call (name, args) ->
    let h =
      match Hashtbl.find_opt bd.bd_helpers name with
      | Some h -> h
      | None -> raise Not_vectorizable
    in
    let pairs = List.combine h.Ir.h_params args in
    let single, multi = List.partition (fun (p, _) -> occurrences p h.Ir.h_body <= 1) pairs in
    let body = Ir.subst_vars single h.Ir.h_body in
    let multi_binds = List.map (fun (p, arg) -> (p, veval bd env arg)) multi in
    veval bd (multi_binds @ env) body

(* As {!veval} but lands the result in [dst] (a row lane or ALU output). *)
let veval_into bd env e (dst : lane) =
  match veval bd env e with
  | C n -> emit bd (fun k -> k_fill dst n k)
  | L l -> if l != dst then emit bd (fun k -> k_copy dst l k)

(* --- Stateless body vectorization -------------------------------------------- *)

type vmask = Always | M of lane

let mask_and bd vm (c : lane) =
  match vm with
  | Always -> c (* truthy semantics: the condition lane is its own mask *)
  | M ml ->
    let dst = temp bd in
    emit bd (fun k -> k_mask_and dst ml c k);
    dst

let mask_andnot bd vm (c : lane) =
  match vm with
  | Always ->
    let dst = temp bd in
    emit bd (fun k -> k_not dst c k);
    dst
  | M ml ->
    let dst = temp bd in
    emit bd (fun k -> k_mask_andnot dst ml c k);
    dst

(* Vectorizes a stateless statement list under [vm].  Returns [true] when
   every lane reached by [vm] has certainly returned (the rest of the
   enclosing list is dead — the scalar path would never execute it
   either).  [ret] is the 0/1 returned-flag lane (present iff the body
   contains a [Return]). *)
let rec vstmts bd env vm ~out ~ret (stmts : Ir.stmt list) : bool =
  match stmts with
  | [] -> false
  | Ir.Let (x, e) :: rest ->
    (* a Let scopes over the remainder of its own statement list only *)
    let a = veval bd env e in
    vstmts bd ((x, a) :: env) vm ~out ~ret rest
  | Ir.Store _ :: _ -> raise Not_vectorizable (* never generated for stateless ALUs *)
  | Ir.Return e :: rest -> (
    let a = veval bd env e in
    let r = match ret with Some r -> r | None -> assert false in
    (match (vm, a) with
    | Always, L v -> emit bd (fun k -> k_return out r v k)
    | Always, C n -> emit bd (fun k -> k_return_c out r n k)
    | M ml, L v -> emit bd (fun k -> k_return_m out r v ml k)
    | M ml, C n -> emit bd (fun k -> k_return_mc out r n ml k));
    match vm with Always -> true | M _ -> vstmts bd env vm ~out ~ret rest)
  | Ir.If (c, a, b) :: rest -> (
    match veval bd env c with
    | C n ->
      (* constant condition: compile only the taken arm, like the scalar
         closure evaluates only one arm *)
      let taken = if Value.is_true n then a else b in
      if vstmts bd env vm ~out ~ret taken then true else vstmts bd env vm ~out ~ret rest
    | L lc ->
      let tm = mask_and bd vm lc in
      let em = mask_andnot bd vm lc in
      let d1 = vstmts bd env (M tm) ~out ~ret a in
      let d2 = vstmts bd env (M em) ~out ~ret b in
      if d1 && d2 then true else vstmts bd env vm ~out ~ret rest)

let rec body_has_return (stmts : Ir.stmt list) =
  List.exists
    (fun (s : Ir.stmt) ->
      match s with
      | Ir.Return _ -> true
      | Ir.If (_, a, b) -> body_has_return a || body_has_return b
      | Ir.Let _ | Ir.Store _ -> false)
    stmts

(* Compiles one stateless ALU into a sweep sequence writing [out].  Kernel
   order mirrors the scalar execution order: default output first (its Mc
   lookups precede the body's), then the body, then the default merge for
   lanes that fell through. *)
let vec_stateless bd (alu : Ir.alu) ~(out : lane) : vop array =
  bd.bd_next <- 0;
  bd.bd_ops <- [];
  let has_return = body_has_return alu.Ir.a_body in
  let datom = veval bd [] alu.Ir.a_default_output in
  if not has_return then begin
    (match datom with
    | C n ->
      (* constant default, no returns: prefill once at build time, zero
         sweeps at run time (the common scc+inline stateless shape) *)
      Bigarray.Array1.fill out n
    | L l -> emit bd (fun k -> k_copy out l k));
    take_ops bd
  end
  else begin
    let r = temp bd in
    emit bd (fun k -> k_fill r 0 k);
    let died = vstmts bd [] Always ~out ~ret:(Some r) alu.Ir.a_body in
    if not died then
      (match datom with
      | C n -> emit bd (fun k -> k_default_c out r n k)
      | L l -> emit bd (fun k -> k_default out r l k));
    take_ops bd
  end

(* --- Stateful body compilation ----------------------------------------------- *)

(* An expression is hoistable iff it never reads ALU state, directly or via
   a slot-bound variable; helper bodies are state-free by construction so a
   call is hoistable iff its arguments are. *)
let rec spure (env : (string * binding) list) (e : Ir.expr) =
  match e with
  | Ir.State _ -> false
  | Ir.Var x -> ( match List.assoc_opt x env with Some (B_slot _) -> false | _ -> true)
  | Ir.Const _ | Ir.Mc _ | Ir.Phv _ -> true
  | Ir.Trunc a | Ir.Unop (_, a) -> spure env a
  | Ir.Binop (_, a, b) -> spure env a && spure env b
  | Ir.Cond (c, a, b) -> spure env c && spure env a && spure env b
  | Ir.Call (_, args) -> List.for_all (spure env) args

let atom_env env = List.filter_map (function x, B_atom a -> Some (x, a) | _, B_slot _ -> None) env

(* Compile-time classification of a stateful-body subexpression: constants
   and single reads stay symbolic so the binop compiler can fuse operand
   fetches into one closure (one indirect call per node instead of one per
   operand), falling back to a residual function for deeper spines. *)
type satom =
  | Sa_c of int
  | Sa_snap of int (* latched state read *)
  | Sa_local of int (* St_let slot read *)
  | Sa_lane of lane (* hoisted pure lane *)
  | Sa_f of sfun

let sforce (snap : int array) (locals : int array) (a : satom) : sfun =
  match a with
  | Sa_c n -> fun _ -> n
  | Sa_snap k -> fun _ -> Array.unsafe_get snap k
  | Sa_local i -> fun _ -> Array.unsafe_get locals i
  | Sa_lane l -> fun b -> lane_get l b
  | Sa_f f -> f

(* Two atoms that provably fetch the same value at every lane (reads are
   pure, both operands evaluate at the same lane). *)
let same_fetch a b =
  match (a, b) with
  | Sa_c x, Sa_c y -> x = y
  | Sa_snap i, Sa_snap j | Sa_local i, Sa_local j -> i = j
  | Sa_lane p, Sa_lane q -> p == q
  | _ -> false

(* The operator match of {!Interp.apply_binop}, resolved once at compile
   time so a lane evaluation pays the arithmetic, not the dispatch. *)
let binfn bits (op : Ir.binop) : int -> int -> int =
  match op with
  | Ir.Add -> Value.add bits
  | Ir.Sub -> Value.sub bits
  | Ir.Mul -> Value.mul bits
  | Ir.Div -> Value.div bits
  | Ir.Mod -> Value.rem bits
  | Ir.Eq -> Value.eq
  | Ir.Neq -> Value.neq
  | Ir.Lt -> Value.lt
  | Ir.Gt -> Value.gt
  | Ir.Le -> Value.le
  | Ir.Ge -> Value.ge
  | Ir.And -> Value.logical_and
  | Ir.Or -> Value.logical_or

(* Fused binop node: operand fetches for the common atom shapes are inlined
   into the node closure.  The generic fallback costs two extra indirect
   calls per lane. *)
let sbinop bits op (snap : int array) (locals : int array) (x : satom) (y : satom) : satom =
  let g = binfn bits op in
  match (x, y) with
  | Sa_c a, Sa_c b -> Sa_c (g a b)
  | Sa_snap i, Sa_c c -> Sa_f (fun _ -> g (Array.unsafe_get snap i) c)
  | Sa_c c, Sa_snap i -> Sa_f (fun _ -> g c (Array.unsafe_get snap i))
  | Sa_snap i, Sa_snap j -> Sa_f (fun _ -> g (Array.unsafe_get snap i) (Array.unsafe_get snap j))
  | Sa_snap i, Sa_lane l -> Sa_f (fun b -> g (Array.unsafe_get snap i) (lane_get l b))
  | Sa_lane l, Sa_snap i -> Sa_f (fun b -> g (lane_get l b) (Array.unsafe_get snap i))
  | Sa_lane l, Sa_c c -> Sa_f (fun b -> g (lane_get l b) c)
  | Sa_c c, Sa_lane l -> Sa_f (fun b -> g c (lane_get l b))
  | Sa_lane p, Sa_lane q -> Sa_f (fun b -> g (lane_get p b) (lane_get q b))
  | _ ->
    let fx = sforce snap locals x and fy = sforce snap locals y in
    Sa_f (fun b -> g (fx b) (fy b))

(* Residual per-lane compilation of a stateful-body expression.  Maximal
   pure subtrees hoist into the vectorized prelude (one lane sweep for the
   whole batch); only the state-dependent spine stays per-lane, with
   operator dispatch resolved at compile time and comparisons of two
   identical fetches folded to constants (reads are pure, so [e op e] is
   decided by the operator alone). *)
let rec seval bd (env : (string * binding) list) (snap : int array) (locals : int array)
    (e : Ir.expr) : satom =
  if spure env e then
    match veval bd (atom_env env) e with
    | C n -> Sa_c n
    | L l -> Sa_lane l
  else
    match e with
    | Ir.State k -> Sa_snap k
    | Ir.Var x -> (
      match List.assoc_opt x env with
      | Some (B_slot i) -> Sa_local i
      | Some (B_atom _) | None -> assert false (* covered by the pure path *))
    | Ir.Trunc a -> (
      let bits = bd.bd_bits in
      match seval bd env snap locals a with
      | Sa_c n -> Sa_c (Value.mask bits n)
      | Sa_snap k -> Sa_f (fun _ -> Value.mask bits (Array.unsafe_get snap k))
      | Sa_lane l -> Sa_f (fun b -> Value.mask bits (lane_get l b))
      | a ->
        let f = sforce snap locals a in
        Sa_f (fun b -> Value.mask bits (f b)))
    | Ir.Unop (op, a) -> (
      let g =
        match op with Ir.Neg -> Value.neg bd.bd_bits | Ir.Not -> Value.logical_not
      in
      match seval bd env snap locals a with
      | Sa_c n -> Sa_c (g n)
      | Sa_snap k -> Sa_f (fun _ -> g (Array.unsafe_get snap k))
      | Sa_lane l -> Sa_f (fun b -> g (lane_get l b))
      | a ->
        let f = sforce snap locals a in
        Sa_f (fun b -> g (f b)))
    | Ir.Binop (op, x, y) -> (
      let ax = seval bd env snap locals x in
      let ay = seval bd env snap locals y in
      if same_fetch ax ay then
        match op with
        | Ir.Eq | Ir.Le | Ir.Ge -> Sa_c 1
        | Ir.Neq | Ir.Lt | Ir.Gt -> Sa_c 0
        | Ir.Sub | Ir.Mod -> Sa_c 0 (* x - x and x mod x (0 mod 0 = 0 too) *)
        | Ir.Add | Ir.Mul | Ir.Div | Ir.And | Ir.Or ->
          sbinop bd.bd_bits op snap locals ax ay
      else sbinop bd.bd_bits op snap locals ax ay)
    | Ir.Cond (c, x, y) -> (
      (* per-lane laziness: only the taken arm is evaluated, like the
         scalar closure *)
      match seval bd env snap locals c with
      | Sa_c n ->
        (* a constant condition cannot carry Mc lookups (those become
           lanes, never [Sa_c]), so dropping it is unobservable *)
        if Value.is_true n then seval bd env snap locals x else seval bd env snap locals y
      | ac ->
        let fc = sforce snap locals ac in
        let fx = sforce snap locals (seval bd env snap locals x) in
        let fy = sforce snap locals (seval bd env snap locals y) in
        Sa_f (fun b -> if fc b <> 0 then fx b else fy b))
    | Ir.Call _ -> raise Not_vectorizable (* state-dependent helper argument *)
    | Ir.Const _ | Ir.Mc _ | Ir.Phv _ -> assert false (* pure *)

(* Residual statement compilation.  [nlocals] counts St_let slots (one per
   occurrence — the environment gives each Let its own slot, so the
   rest-of-list-only scoping of {!Interp.exec_latched} holds exactly).
   Branch structure folds at compile time where it is decidable: a constant
   condition splices the taken arm inline (its [Let]s stay scoped to the
   arm — the arm is compiled under the unextended environment and only its
   steps are spliced), and structurally identical arms compile once with no
   per-lane condition at all (the condition is a pure read, so skipping it
   is unobservable). *)
let rec scompile bd env snap locals nlocals (stmts : Ir.stmt list) : step list * int =
  match stmts with
  | [] -> ([], nlocals)
  | Ir.Let (x, e) :: rest ->
    if spure env e then begin
      let a = veval bd (atom_env env) e in
      scompile bd ((x, B_atom a) :: env) snap locals nlocals rest
    end
    else begin
      let f = sforce snap locals (seval bd env snap locals e) in
      let slot = nlocals in
      let steps, n = scompile bd ((x, B_slot slot) :: env) snap locals (nlocals + 1) rest in
      (St_let (slot, f) :: steps, n)
    end
  | Ir.Store (k, e) :: rest ->
    let f = sforce snap locals (seval bd env snap locals e) in
    let steps, n = scompile bd env snap locals nlocals rest in
    (St_store (k, f) :: steps, n)
  | Ir.If (c, a, b) :: rest -> (
    match seval bd env snap locals c with
    | Sa_c n ->
      let taken = if Value.is_true n then a else b in
      let sa, n1 = scompile bd env snap locals nlocals taken in
      let steps, n = scompile bd env snap locals n1 rest in
      (sa @ steps, n)
    | ac when a = b ->
      (* both arms identical (the generated pair atoms often are): drop the
         branch; [ac]'s reads are pure, so not evaluating it is silent *)
      ignore ac;
      let sa, n1 = scompile bd env snap locals nlocals a in
      let steps, n = scompile bd env snap locals n1 rest in
      (sa @ steps, n)
    | ac ->
      let fc = sforce snap locals ac in
      let sa, n1 = scompile bd env snap locals nlocals a in
      let sb, n2 = scompile bd env snap locals n1 b in
      let steps, n = scompile bd env snap locals n2 rest in
      (St_if (fc, Array.of_list sa, Array.of_list sb) :: steps, n))
  | Ir.Return _ :: _ -> raise Not_vectorizable (* rare in stateful atoms; scalar path *)

(* Compiles one stateful ALU.  The residual step interpreter shares the
   scalar closure's state and snapshot vectors, so reset / load_state /
   current_state and the sequential path all see one state, and the scalar
   fallback is a drop-in. *)
let rec count_lets (stmts : Ir.stmt list) =
  List.fold_left
    (fun acc (s : Ir.stmt) ->
      match s with
      | Ir.Let _ -> acc + 1
      | Ir.If (_, a, b) -> acc + count_lets a + count_lets b
      | Ir.Store _ | Ir.Return _ -> acc)
    0 stmts

(* State slots the ALU can read, sorted and deduplicated: the batched
   per-lane loop refreshes only these snapshot entries.  A syntactic
   over-approximation is fine (extra copies are silent); helper bodies need
   no walk because an impure [Call] already sent the ALU to the scalar
   fallback, and a pure one cannot reach [State]. *)
let read_slots (alu : Ir.alu) : int array =
  let collect acc (e : Ir.expr) = match e with Ir.State k -> k :: acc | _ -> acc in
  let acc = Ir.fold_expr collect [] alu.Ir.a_default_output in
  let acc = List.fold_left (Ir.fold_stmt collect) acc alu.Ir.a_body in
  Array.of_list (List.sort_uniq compare acc)

let vec_stateful bd (alu : Ir.alu) (ca : Compile.compiled_alu) ~(out : lane) ~(s0 : lane) :
    stateful =
  bd.bd_next <- 0;
  bd.bd_ops <- [];
  let snap = ca.Compile.ca_env.Compile.state_read in
  match
    (* one local slot per Let occurrence is an upper bound on what scompile
       allocates, so the closures can capture the final array directly *)
    let locals = Array.make (max 1 (count_lets alu.Ir.a_body)) 0 in
    let sda = seval bd [] snap locals alu.Ir.a_default_output in
    let steps, _nlocals = scompile bd [] snap locals 0 alu.Ir.a_body in
    let body =
      match (sda, steps) with
      | Sa_snap sdslot, [ St_store (0, f0); St_store (1, f1) ]
        when Array.length ca.Compile.ca_env.Compile.state >= 2 ->
        Sf_pair { sdslot; f0; f1 }
      | ( Sa_snap sdslot,
          [
            St_if
              ( c,
                [| St_store (0, a0); St_store (1, a1) |],
                [| St_store (0, e0); St_store (1, e1) |] );
          ] )
        when Array.length ca.Compile.ca_env.Compile.state >= 2 ->
        Sf_ifpair { sdslot; c; a0; a1; e0; e1 }
      | _ -> Sf_steps { sd = sforce snap locals sda; steps = Array.of_list steps }
    in
    (body, locals)
  with
  | body, locals ->
    {
      sf_ca = ca;
      sf_out = out;
      sf_s0 = s0;
      sf_prelude = take_ops bd;
      sf_body = body;
      sf_locals = locals;
      sf_read = read_slots alu;
    }
  | exception (Not_vectorizable | Not_found | Invalid_argument _) ->
    bd.bd_ops <- [];
    {
      sf_ca = ca;
      sf_out = out;
      sf_s0 = s0;
      sf_prelude = [||];
      sf_body = Sf_scalar;
      sf_locals = [||];
      sf_read = [||];
    }

(* --- Whole-pipeline vectorization --------------------------------------------- *)

(* Output-mux vectorization: parameters bind positionally to the stage's
   argument lanes; a trailing "ctrl" parameter (unoptimized description)
   becomes a per-lane machine-code lookup sweep under the mux helper's own
   name, fetched before the body evaluates — one lookup per PHV, as the
   scalar paths pay. *)
let vec_mux bd (h : Ir.helper) ~(arg_lanes : lane array) ~(dst : lane) : vop array =
  bd.bd_next <- 0;
  bd.bd_ops <- [];
  let n_args = Array.length arg_lanes in
  let env =
    List.mapi
      (fun i p ->
        if i < n_args then (p, L arg_lanes.(i))
        else if String.equal p "ctrl" then (p, veval bd [] (Ir.Mc h.Ir.h_name))
        else raise Not_vectorizable)
      h.Ir.h_params
  in
  if List.length h.Ir.h_params < n_args then raise Not_vectorizable;
  veval_into bd env h.Ir.h_body dst;
  take_ops bd

let vectorize ~cap (c : Compile.t) : t =
  if cap < 1 then invalid_arg "Vcompile.vectorize: batch capacity must be >= 1";
  let d = c.Compile.c_desc in
  let depth = d.Ir.d_depth and width = d.Ir.d_width in
  let rows = Array.init (depth + 1) (fun _ -> Array.init width (fun _ -> create_lane cap)) in
  let bd =
    {
      bd_cap = cap;
      bd_bits = d.Ir.d_bits;
      bd_mask = (1 lsl d.Ir.d_bits) - 1;
      bd_mc = c.Compile.c_mc;
      bd_helpers = d.Ir.d_helpers;
      bd_consts = Hashtbl.create 16;
      bd_pool = [||];
      bd_next = 0;
      bd_ops = [];
      bd_row = [||];
    }
  in
  let max_margs = ref 1 in
  let stages =
    Array.mapi
      (fun s (st : Ir.stage) ->
        let cs = c.Compile.c_stages.(s) in
        bd.bd_row <- rows.(s);
        let sl =
          Array.mapi
            (fun i (a : Ir.alu) ->
              let ca = cs.Compile.cs_stateless.(i) in
              let out = create_lane cap in
              match vec_stateless bd a ~out with
              | ops -> { sl_out = out; sl_run = Sl_vec ops }
              | exception (Not_vectorizable | Not_found | Invalid_argument _) ->
                bd.bd_ops <- [];
                { sl_out = out; sl_run = Sl_scalar ca })
            st.Ir.s_stateless
        in
        let sf =
          Array.mapi
            (fun j (a : Ir.alu) ->
              let ca = cs.Compile.cs_stateful.(j) in
              vec_stateful bd a ca ~out:(create_lane cap) ~s0:(create_lane cap))
            st.Ir.s_stateful
        in
        let nsl = Array.length sl and nsf = Array.length sf in
        let arg_lanes c' =
          let args = Array.make (nsl + (2 * nsf) + 1) rows.(s).(c') in
          Array.iteri (fun i a -> args.(i) <- a.sl_out) sl;
          Array.iteri (fun j a -> args.(nsl + j) <- a.sf_out) sf;
          Array.iteri (fun j a -> args.(nsl + nsf + j) <- a.sf_s0) sf;
          args
        in
        let muxes =
          Array.mapi
            (fun c' name ->
              let margs = arg_lanes c' in
              max_margs := max !max_margs (Array.length margs);
              let dst = rows.(s + 1).(c') in
              let h = Ir.find_helper d name in
              match vec_mux bd h ~arg_lanes:margs ~dst with
              | ops -> Mx_vec ops
              | exception (Not_vectorizable | Not_found | Invalid_argument _) ->
                bd.bd_ops <- [];
                Mx_scalar { mf = cs.Compile.cs_output_muxes.(c'); margs; mdst = dst })
            st.Ir.s_output_muxes
        in
        { vs_row = rows.(s); vs_sl = sl; vs_sf = sf; vs_mux = muxes })
      d.Ir.d_stages
  in
  {
    v_cap = cap;
    v_depth = depth;
    v_width = width;
    v_rows = rows;
    v_stages = stages;
    v_scratch = Array.make (max 1 width) 0;
    v_margs_scratch = Array.make !max_margs 0;
  }

(* --- Stage execution ---------------------------------------------------------- *)

(* Executes stage [s] over the first [k] lanes: every stateless sweep, then
   each stateful ALU's lanes in slot order, then the output-mux sweeps into
   row s+1.  [stuck] lists (alu index, slot, value) stuck-at overlays for
   this stage's stateful ALUs; the forced value is asserted before every
   lane's snapshot, reproducing the sequential engines' assert-after-every-
   tick overlay exactly. *)
let exec_stage v ~s ~k ~(stuck : (int * int * int) list) =
  let st = v.v_stages.(s) in
  let sl = st.vs_sl in
  for i = 0 to Array.length sl - 1 do
    let a = Array.unsafe_get sl i in
    match a.sl_run with
    | Sl_vec ops -> run_ops ops k
    | Sl_scalar ca -> run_scalar_stateless st.vs_row v.v_scratch ca a.sl_out k
  done;
  let sf = st.vs_sf in
  for j = 0 to Array.length sf - 1 do
    let a = Array.unsafe_get sf j in
    let stuck_j =
      match stuck with
      | [] -> []
      | l -> List.filter_map (fun (j', slot, value) -> if j' = j then Some (slot, value) else None) l
    in
    run_ops a.sf_prelude k;
    match a.sf_body with
    | Sf_steps { sd; steps } ->
      let env = a.sf_ca.Compile.ca_env in
      run_stateful_steps env.Compile.state env.Compile.state_read a.sf_read a.sf_locals sd steps
        a.sf_out a.sf_s0 stuck_j k
    | Sf_pair { sdslot; f0; f1 } ->
      let env = a.sf_ca.Compile.ca_env in
      run_stateful_pair env.Compile.state env.Compile.state_read a.sf_read sdslot f0 f1 a.sf_out
        a.sf_s0 stuck_j k
    | Sf_ifpair { sdslot; c; a0; a1; e0; e1 } ->
      let env = a.sf_ca.Compile.ca_env in
      run_stateful_ifpair env.Compile.state env.Compile.state_read a.sf_read sdslot c a0 a1 e0 e1
        a.sf_out a.sf_s0 stuck_j k
    | Sf_scalar -> run_stateful_scalar st.vs_row v.v_scratch a.sf_ca a.sf_out a.sf_s0 stuck_j k
  done;
  let muxes = st.vs_mux in
  for c = 0 to Array.length muxes - 1 do
    match Array.unsafe_get muxes c with
    | Mx_vec ops -> run_ops ops k
    | Mx_scalar { mf; margs; mdst } -> run_scalar_mux mf margs v.v_margs_scratch mdst k
  done
