(* Pipeline-description intermediate representation.

   This is the OCaml analogue of dgen's generated Rust code (paper §3.2,
   Fig. 6): a set of helper functions (one per mux / opcode construct) plus
   one function body per ALU.  The unoptimized description (version 1)
   contains [Mc] nodes — runtime lookups into the machine-code hash table —
   at helper call sites; SCC propagation (version 2) replaces them with
   constants and folds the helpers' bodies; inlining (version 3) removes the
   calls entirely. *)

type unop = Druzhba_alu_dsl.Ast.unop = Neg | Not [@@deriving eq, show { with_path = false }]

type binop = Druzhba_alu_dsl.Ast.binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Gt
  | Le
  | Ge
  | And
  | Or
[@@deriving eq, show { with_path = false }]

type expr =
  | Const of int
  | Var of string (* helper parameter or ALU-body local *)
  | Mc of string (* machine-code lookup: values["name"]; version-1 only *)
  | Trunc of expr (* truncate to the datapath width: immediates are data,
                     while selector values (raw [Mc]) live in control space *)
  | Phv of int (* read container [k] of the incoming PHV *)
  | State of int (* read slot [k] of the executing stateful ALU's state *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr (* if c <> 0 then a else b *)
  | Call of string * expr list (* helper invocation *)
[@@deriving eq, show { with_path = false }]

type stmt =
  | Let of string * expr
  | Store of int * expr (* state.(k) <- e *)
  | If of expr * stmt list * stmt list
  | Return of expr (* ALU output value *)
[@@deriving eq, show { with_path = false }]

(* A helper function generated for one mux / opcode / immediate construct.
   Each helper has exactly one call site in the generated description.
   [h_ctrl] is the selector domain of the helper's "ctrl" parameter — the
   machine-code value must lie in [0, n) — and becomes [None] once SCC
   propagation has specialized the control away. *)
type helper = { h_name : string; h_params : string list; h_body : expr; h_ctrl : int option }
[@@deriving eq, show { with_path = false }]

type alu_kind = Kstateful | Kstateless [@@deriving eq, show { with_path = false }]

type alu = {
  a_name : string; (* position-encoding prefix, e.g. "pipeline_stage_0_stateful_alu_1" *)
  a_kind : alu_kind;
  a_state_size : int; (* number of persistent state slots (0 if stateless) *)
  a_body : stmt list;
  (* Output when the body falls through without [Return]: stateful ALUs
     output their pre-execution state_0 (Banzai read-modify-write
     convention); this expression is evaluated before the body runs. *)
  a_default_output : expr;
}
[@@deriving eq, show { with_path = false }]

type stage = {
  s_index : int;
  s_stateless : alu array;
  s_stateful : alu array;
  (* One output mux per PHV container: selects among all stateless outputs,
     all stateful outputs, and the container's incoming value. *)
  s_output_muxes : string array; (* helper names *)
}

type t = {
  d_depth : int;
  d_width : int;
  d_bits : Druzhba_util.Value.width;
  d_stages : stage array;
  d_helpers : (string, helper) Hashtbl.t; (* all helpers, keyed by name *)
  d_stateful_spec : Druzhba_alu_dsl.Ast.t;
  d_stateless_spec : Druzhba_alu_dsl.Ast.t;
}

let find_helper t name =
  match Hashtbl.find_opt t.d_helpers name with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Ir.find_helper: unknown helper '%s'" name)

let iter_helpers t f = Hashtbl.iter (fun _ h -> f h) t.d_helpers

let replace_helper t (h : helper) = Hashtbl.replace t.d_helpers h.h_name h

(* --- Traversals ---------------------------------------------------------- *)

(* Capture-free substitution of variables by expressions (expressions have no
   binders).  Used by the optimizer's specializer/inliner and by the closure
   backend's compile-time beta reduction. *)
let rec subst_vars map (e : expr) : expr =
  match e with
  | Var x -> ( match List.assoc_opt x map with Some r -> r | None -> e)
  | Const _ | Mc _ | Phv _ | State _ -> e
  | Trunc a -> Trunc (subst_vars map a)
  | Unop (op, a) -> Unop (op, subst_vars map a)
  | Binop (op, a, b) -> Binop (op, subst_vars map a, subst_vars map b)
  | Cond (c, a, b) -> Cond (subst_vars map c, subst_vars map a, subst_vars map b)
  | Call (name, args) -> Call (name, List.map (subst_vars map) args)

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Var _ | Mc _ | Phv _ | State _ -> acc
  | Trunc a -> fold_expr f acc a
  | Unop (_, a) -> fold_expr f acc a
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Cond (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b
  | Call (_, args) -> List.fold_left (fold_expr f) acc args

let rec fold_stmt f_expr acc (s : stmt) =
  match s with
  | Let (_, e) | Store (_, e) | Return e -> fold_expr f_expr acc e
  | If (c, a, b) ->
    let acc = fold_expr f_expr acc c in
    let acc = List.fold_left (fold_stmt f_expr) acc a in
    List.fold_left (fold_stmt f_expr) acc b

(* Machine-code names referenced by the description: all [Mc] nodes, plus the
   output-mux controls (their value is fetched by the simulator when the mux
   helper still has a live "ctrl" parameter).  These are the names
   [Machine_code.validate] requires; after SCC propagation the list is
   empty. *)
let required_names t =
  let collect acc e = match e with Mc name -> name :: acc | _ -> acc in
  let acc = ref [] in
  iter_helpers t (fun h -> acc := fold_expr collect !acc h.h_body);
  Array.iter
    (fun st ->
      let alu_names (a : alu) =
        acc := List.fold_left (fold_stmt collect) !acc a.a_body;
        acc := fold_expr collect !acc a.a_default_output
      in
      Array.iter alu_names st.s_stateless;
      Array.iter alu_names st.s_stateful;
      Array.iter
        (fun name ->
          let h = find_helper t name in
          if List.mem "ctrl" h.h_params then acc := name :: !acc)
        st.s_output_muxes)
    t.d_stages;
  List.sort_uniq String.compare !acc

(* Re-export of {!Machine_code.domain}, so [control_domains] plugs straight
   into [Machine_code.validate ~domains]. *)
type control_domain = Druzhba_machine_code.Machine_code.domain =
  | Selector of int (* valid values are [0, n) *)
  | Immediate (* any value of the datapath width *)

(* The domain of every machine-code control the (unoptimized) description
   requires.  Selector controls (muxes, opcodes) come from helper parameter
   counts; name-only controls (immediates, hole variables) accept any value
   of the datapath width.  Used to generate random-but-wellformed machine
   code for fuzzing and by the synthesis compiler to bound its search. *)
let control_domains t =
  required_names t
  |> List.map (fun name ->
         match Hashtbl.find_opt t.d_helpers name with
         | Some { h_ctrl = Some n; _ } -> (name, Selector n)
         | Some { h_ctrl = None; _ } | None -> (name, Immediate))

(* Total number of IR nodes (a proxy for generated-code size, reported by the
   Fig. 6 style comparisons and the benchmarks). *)
let size t =
  let count acc _ = acc + 1 in
  let n = ref 0 in
  iter_helpers t (fun h -> n := fold_expr count !n h.h_body);
  Array.iter
    (fun st ->
      let alu (a : alu) =
        n := List.fold_left (fold_stmt count) !n a.a_body;
        n := fold_expr count !n a.a_default_output
      in
      Array.iter alu st.s_stateless;
      Array.iter alu st.s_stateful)
    t.d_stages;
  !n

let helper_count t = Hashtbl.length t.d_helpers
