(* Druzhba: a programmable-switch hardware simulator for testing compilers
   (Wong, Varma, Sivaraman, 2020 — arXiv:2005.02310).

   This module is the library's front door: it re-exports every component
   under one namespace and packages the two end-to-end workflows the paper
   describes —

   - {!simulate}: dgen + dsim.  Generate the pipeline description for a
     hardware specification (depth, width, ALU DSL descriptions), apply the
     SCC-propagation / inlining optimizations, load a machine-code program,
     and run PHVs through it (Fig. 1, §3).

   - {!Workflow}: the compiler-testing loop of Fig. 5.  Compile a high-level
     packet program (or take compiler-produced machine code), simulate random
     traffic, and check the output trace against the program specification,
     classifying failures as the case study does (§5.2). *)

let version = "1.0.0"

(* --- Component re-exports ------------------------------------------------- *)

module Value = Druzhba_util.Value
module Prng = Druzhba_util.Prng
module Atomic_file = Druzhba_util.Atomic_file
module Alu_dsl = struct
  module Ast = Druzhba_alu_dsl.Ast
  module Lexer = Druzhba_alu_dsl.Lexer
  module Parser = Druzhba_alu_dsl.Parser
  module Analysis = Druzhba_alu_dsl.Analysis
  module Printer = Druzhba_alu_dsl.Printer
end

module Machine_code = Druzhba_machine_code.Machine_code
module Ir = Druzhba_pipeline.Ir
module Dgen = Druzhba_pipeline.Dgen
module Names = Druzhba_pipeline.Names
module Emit = Druzhba_pipeline.Emit
module Compile = Druzhba_pipeline.Compile
module Optimizer = Druzhba_optimizer.Optimizer
module Phv = Druzhba_dsim.Phv
module Traffic = Druzhba_dsim.Traffic
module Trace = Druzhba_dsim.Trace
module Engine = Druzhba_dsim.Engine
module Compiled = Druzhba_dsim.Compiled
module Substrate = Druzhba_dsim.Substrate
module Native_abi = Druzhba_dsim.Native_abi
module Native_substrate = Druzhba_dsim.Native_substrate
module Backends = Druzhba_dsim.Backends
module Drmt_substrate = Druzhba_dsim.Drmt_substrate
module Debugger = Druzhba_dsim.Debugger
module Budget = Druzhba_dsim.Budget
module Faults = Druzhba_dsim.Faults
module Atoms = Druzhba_atoms.Atoms
module Fuzz = Druzhba_fuzz.Fuzz
module Verify = Druzhba_fuzz.Verify

(* Multicore differential campaigns: {!Campaign.run} shards trials over
   OCaml 5 domains; {!Campaign.Oracle} is the cross-backend differential
   oracle; {!Campaign.Shrink} minimizes counterexamples. *)
module Campaign = struct
  module Runner = Druzhba_campaign.Runner
  module Oracle = Druzhba_campaign.Oracle
  module Shrink = Druzhba_campaign.Shrink
  module Report = Druzhba_campaign.Report
  module Checkpoint = Druzhba_campaign.Checkpoint
  module Exit_code = Druzhba_campaign.Exit_code
  include Druzhba_campaign.Campaign
end
module Dataflow = Druzhba_analysis.Dataflow
module Lint = Druzhba_analysis.Lint
module Symbolic = Druzhba_analysis.Symbolic
module Equiv = Druzhba_analysis.Equiv

module Compiler = struct
  module Ast = Druzhba_compiler.Ast
  module Frontend = Druzhba_compiler.Frontend
  module Checker = Druzhba_compiler.Checker
  module Semantics = Druzhba_compiler.Semantics
  module Predicate = Druzhba_compiler.Predicate
  module Match_atom = Druzhba_compiler.Match_atom
  module Codegen = Druzhba_compiler.Codegen
  module Synth = Druzhba_compiler.Synth
  module Testing = Druzhba_compiler.Testing
  module Vet = Druzhba_compiler.Vet
end

module Spec = Druzhba_spec.Spec

module Drmt = struct
  module P4 = Druzhba_drmt.P4
  module Dag = Druzhba_drmt.Dag
  module Scheduler = Druzhba_drmt.Scheduler
  module Entries = Druzhba_drmt.Entries
  module Sim = Druzhba_drmt.Sim
end

(* --- dgen + dsim in one call (Fig. 1) -------------------------------------- *)

type simulation = {
  sim_description : Ir.t; (* the (possibly optimized) pipeline description *)
  sim_trace : Trace.t;
}

(* Generates a pipeline for [stateful]/[stateless] ALUs at [depth] x [width],
   optimizes it at [level] for the given machine code, and simulates [phvs]
   random PHVs from [seed].

   @raise Machine_code.Missing when required pairs are absent. *)
let simulate ?(level = Optimizer.Scc) ?(bits = 32) ?(seed = 0xD52ba) ~depth ~width ~stateful
    ~stateless ~mc ~phvs () =
  let desc =
    Dgen.generate (Dgen.config ~depth ~width ~bits ()) ~stateful ~stateless
  in
  let optimized = Optimizer.apply ~level ~mc desc in
  let inputs = Traffic.phvs (Traffic.create ~seed ~width ~bits) phvs in
  { sim_description = optimized; sim_trace = Engine.run optimized ~mc ~inputs }

(* --- The compiler-testing workflow (Fig. 5) --------------------------------- *)

module Workflow = struct
  type report = {
    program : string;
    machine_code_pairs : int;
    outcome : Fuzz.outcome;
  }

  let pp_report ppf r =
    Fmt.pf ppf "%-20s %4d pairs  %a" r.program r.machine_code_pairs Fuzz.pp_outcome r.outcome

  (* Compiles [source] with the rule-based backend for [target] and runs the
     fuzzing equivalence check on [phvs] random PHVs. *)
  let test_program ?level ?seed ?(phvs = 1000) ~target source =
    let program = Druzhba_compiler.Frontend.parse source in
    match Druzhba_compiler.Codegen.compile ~target program with
    | Error e -> Error e
    | Ok compiled ->
      Ok
        {
          program = program.Druzhba_compiler.Ast.name;
          machine_code_pairs = Machine_code.cardinal compiled.Druzhba_compiler.Codegen.c_mc;
          outcome = Druzhba_compiler.Testing.check ?level ?seed ~n:phvs compiled;
        }

  (* Tests already-compiled machine code (the paper's normal mode: the
     compiler under test produced [mc] for [compiled]'s program). *)
  let test_machine_code ?level ?seed ?(phvs = 1000) (compiled : Druzhba_compiler.Codegen.compiled)
      ~mc =
    let compiled = { compiled with Druzhba_compiler.Codegen.c_mc = mc } in
    {
      program = compiled.Druzhba_compiler.Codegen.c_program.Druzhba_compiler.Ast.name;
      machine_code_pairs = Machine_code.cardinal mc;
      outcome = Druzhba_compiler.Testing.check ?level ?seed ~n:phvs compiled;
    }
end
