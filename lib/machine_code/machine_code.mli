(** Machine code for the Druzhba pipeline.

    A machine-code program is a list of [(string, int)] pairs (paper §3.1):
    the string names a hardware primitive and its location in the pipeline
    (e.g. ["pipeline_stage_0_stateful_alu_1_mux3_0"]); the integer programs
    that primitive — a mux selector, an opcode, or an immediate.  Selector
    values live in control space (they are never truncated to the datapath
    width); immediates are truncated where they enter the datapath.

    Pairs that the pipeline needs but the program lacks are a compiler bug —
    the class the paper's case study found twice (§5.2); {!validate} detects
    exactly that. *)

type t
(** A mutable machine-code program (name [->] value). *)

val empty : unit -> t

val of_list : (string * int) list -> t
(** Later bindings of the same name win.  For programmatic construction;
    external input should go through {!of_pairs}, which rejects
    duplicates.
    @raise Invalid_argument on a name the text format cannot represent
    (empty, containing ['#'], ['='], a newline, or surrounding whitespace)
    — such a name would silently change key, or collide with another pair,
    when the program is printed and parsed back. *)

val of_pairs : (string * int) list -> (t, string) result
(** Strict constructor: [Error] names every key bound more than once, and
    every name the text format cannot represent (see {!of_list}).  A
    duplicate pair in compiler output means two rules both believed they
    owned a control — silently letting one binding win hides the bug. *)

val duplicates : (string * int) list -> string list
(** Keys bound more than once, in first-occurrence order (each reported
    once). *)

val to_alist : t -> (string * int) list
(** All pairs, sorted by name. *)

val copy : t -> t
(** An independent copy (mutations do not propagate). *)

val set : t -> string -> int -> unit
(** @raise Invalid_argument on an unrepresentable name (see {!of_list}). *)

val find_opt : t -> string -> int option

exception Missing of string
(** Raised by {!find} — and therefore by simulation of an unoptimized
    description — when a required pair is absent. *)

val find : t -> string -> int
(** @raise Missing when the name is unbound. *)

val remove : t -> string -> unit
val mem : t -> string -> bool
val cardinal : t -> int

val override : t -> t -> t
(** [override base extra] is a fresh program with every pair of [extra]
    added to (and overriding) [base]; neither input is modified. *)

val parse : string -> (t, string) result
(** Parses the on-disk format: one ["name = value"] per line, blank lines
    and [#] comments ignored.  Total: every malformed line and every
    duplicate key is reported in [Error] (with its line number where
    applicable); no exception escapes. *)

val parse_pairs : string -> ((string * int) list, string) result
(** As {!parse}, but returns the raw pairs in file order with duplicates
    preserved — the form lint needs to report duplicate keys as findings
    instead of refusing the file outright. *)

val pp : t Fmt.t
(** Prints in the {!parse} format, sorted by name. *)

val to_string : t -> string

(** Domain of one machine-code control, as reported by the pipeline
    description ([Ir.control_domains] re-exports this type). *)
type domain =
  | Selector of int  (** valid values are [[0, n)] *)
  | Immediate  (** any value of the datapath width *)

type violation =
  | Missing_pair of string  (** a required pair is absent (§5.2 class 1) *)
  | Out_of_range of { vi_name : string; vi_value : int; vi_bound : int }
      (** a selector value lies outside its domain [[0, vi_bound)]; at
          simulation time it silently falls through to the mux's default
          arm, so fuzzing alone may not catch it *)

val pp_violation : violation Fmt.t

val validate : domains:(string * domain) list -> t -> (unit, violation list) result
(** [validate ~domains t] checks the program against the pipeline's control
    domains: every listed name must be present, and selector values must lie
    inside [[0, n)].  [Error violations] lists every defect, in domain
    order. *)
