(* Machine code for the Druzhba pipeline.

   A machine-code program is a list of (string, integer) pairs (§3.1 of the
   paper): the string names a hardware primitive and its location in the
   pipeline (e.g. "pipeline_stage_0_stateful_alu_1_mux3_0"), the integer
   programs that primitive's behaviour — a mux selector, an opcode, or an
   immediate.  Pairs that dgen expects but that are missing from the program
   are a compiler bug that the case study in §5.2 of the paper found twice;
   [validate] detects exactly that class. *)

type t = (string, int) Hashtbl.t

let empty () : t = Hashtbl.create 64

(* A name is representable iff emitting it with [to_string] and reading the
   result back with [parse] recovers the same binding.  The text format
   strips '#' comments, splits at the first '=', and trims each side, so a
   name containing any of those characters — or one that is empty or not
   equal to its own trim — would silently change key (or collide with
   another pair, e.g. a neutralized default) on the round trip.  The
   constructors reject such names up front so the round trip is total by
   construction. *)
let name_unrepresentable name =
  name = ""
  || String.trim name <> name
  || String.exists (fun c -> c = '#' || c = '=' || c = '\n' || c = '\r') name

let check_name name =
  if name_unrepresentable name then
    invalid_arg
      (Printf.sprintf "Machine_code: unrepresentable pair name %S (empty, '#', '=', newline, or \
                       surrounding whitespace would not survive the text format)"
         name)

let of_list pairs : t =
  let t = Hashtbl.create (max 16 (List.length pairs)) in
  List.iter
    (fun (name, v) ->
      check_name name;
      Hashtbl.replace t name v)
    pairs;
  t

(* Keys bound more than once, in first-occurrence order.  A duplicate pair
   in a machine-code file is almost always a compiler bug (two rules both
   believing they own a control), so the strict constructors reject it
   rather than silently letting one binding win. *)
let duplicates pairs =
  let seen = Hashtbl.create 64 and dups = ref [] in
  List.iter
    (fun (name, _) ->
      match Hashtbl.find_opt seen name with
      | None -> Hashtbl.add seen name `Once
      | Some `Once ->
        Hashtbl.replace seen name `Reported;
        dups := name :: !dups
      | Some `Reported -> ())
    pairs;
  List.rev !dups

let of_pairs pairs : (t, string) result =
  match List.filter (fun (name, _) -> name_unrepresentable name) pairs with
  | (bad, _) :: _ -> Error (Printf.sprintf "unrepresentable machine-code pair name: %S" bad)
  | [] -> (
    match duplicates pairs with
    | [] -> Ok (of_list pairs)
    | dups ->
      Error
        (Printf.sprintf "duplicate machine-code pair%s: %s"
           (if List.length dups = 1 then "" else "s")
           (String.concat ", " dups)))

let to_alist (t : t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let copy = Hashtbl.copy

let set (t : t) name v =
  check_name name;
  Hashtbl.replace t name v

let find_opt (t : t) name = Hashtbl.find_opt t name

exception Missing of string

(* [Hashtbl.find] rather than [find_opt]: this is the per-Mc-node lookup of
   the unoptimized descriptions' hot loop, and the option wrapper would be a
   fresh block on every call. *)
let find (t : t) name =
  match Hashtbl.find t name with v -> v | exception Not_found -> raise (Missing name)

let remove (t : t) name = Hashtbl.remove t name

let mem (t : t) name = Hashtbl.mem t name

let cardinal (t : t) = Hashtbl.length t

(* Adds every pair of [extra], overriding existing names. *)
let override (t : t) (extra : t) =
  let r = copy t in
  Hashtbl.iter (fun k v -> Hashtbl.replace r k v) extra;
  r

(* --- Text format ---------------------------------------------------------

   One pair per line, "name = value"; blank lines and '#' comments ignored.
   This is the on-disk format consumed by the druzhba CLI.

   [parse_pairs] returns the raw pairs in file order (duplicates preserved,
   so lint can report them); [parse] additionally rejects duplicate keys. *)

let parse_pairs src =
  let errors = ref [] in
  let pairs = ref [] in
  String.split_on_char '\n' src
  |> List.iteri (fun lineno line ->
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         let line = String.trim line in
         if line <> "" then
           match String.index_opt line '=' with
           | None -> errors := Printf.sprintf "line %d: expected 'name = value'" (lineno + 1) :: !errors
           | Some i ->
             let name = String.trim (String.sub line 0 i) in
             let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
             (match int_of_string_opt value with
             | Some v when name <> "" -> pairs := (name, v) :: !pairs
             | Some _ -> errors := Printf.sprintf "line %d: empty name" (lineno + 1) :: !errors
             | None ->
               errors :=
                 Printf.sprintf "line %d: invalid integer '%s'" (lineno + 1) value :: !errors));
  match !errors with
  | [] -> Ok (List.rev !pairs)
  | errs -> Error (String.concat "\n" (List.rev errs))

let parse src =
  match parse_pairs src with
  | Error _ as e -> e
  | Ok pairs -> of_pairs pairs

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>";
  List.iter (fun (k, v) -> Fmt.pf ppf "%s = %d@," k v) (to_alist t);
  Fmt.pf ppf "@]"

let to_string t = Fmt.str "%a" pp t

(* --- Validation -----------------------------------------------------------

   [validate ~domains t] checks the program against the pipeline's control
   domains ([Ir.control_domains]): every control the pipeline requires must
   be present (compiler-bug class 1 from §5.2), and every selector value
   must lie inside its domain [0, n) — an out-of-range selector silently
   falls through to a mux's default arm at simulation time, which is exactly
   the kind of mis-compilation that random-input fuzzing can miss. *)

type domain =
  | Selector of int (* valid values are [0, n) *)
  | Immediate (* any value of the datapath width *)

type violation =
  | Missing_pair of string
  | Out_of_range of { vi_name : string; vi_value : int; vi_bound : int }

let pp_violation ppf = function
  | Missing_pair name -> Fmt.pf ppf "missing pair: %s" name
  | Out_of_range { vi_name; vi_value; vi_bound } ->
    Fmt.pf ppf "selector out of range: %s = %d (domain [0, %d))" vi_name vi_value vi_bound

let validate ~domains (t : t) =
  let violations =
    List.filter_map
      (fun (name, domain) ->
        match (find_opt t name, domain) with
        | None, _ -> Some (Missing_pair name)
        | Some v, Selector n when v < 0 || v >= n ->
          Some (Out_of_range { vi_name = name; vi_value = v; vi_bound = n })
        | Some _, (Selector _ | Immediate) -> None)
      domains
  in
  if violations = [] then Ok () else Error violations
