(** Pipeline-description optimizations (paper §3.4).

    The two code-generation optimizations the paper applies to dgen's
    output, reproducing the three versions of its Fig. 6:

    - {!scc_propagate}: sparse conditional constant propagation.  The
      machine-code program's values become compile-time constants; each
      helper function is specialized on its now-constant controls; constant
      folding decides the selector conditionals, eliminating the dead
      control paths.
    - {!inline_functions}: function inlining.  Every remaining helper call
      is replaced by its (post-SCC, tiny) body.  Mostly a readability win —
      on a compiling backend the runtime gain is nil, as the paper observes.

    Both passes are pure: they build fresh descriptions, so all three
    versions can be simulated side by side. *)

module Ir = Druzhba_pipeline.Ir
module Machine_code = Druzhba_machine_code.Machine_code

val fold_expr : Druzhba_util.Value.width -> Ir.expr -> Ir.expr
(** Constant folding with datapath-width arithmetic and branch pruning
    (exposed for tests and custom passes). *)

val fold_stmts : Druzhba_util.Value.width -> Ir.stmt list -> Ir.stmt list
(** Statement-level folding: an [If] on a constant condition is replaced by
    its live branch (dead-code elimination). *)

val drop_dead_lets : Ir.stmt list -> Ir.stmt list
(** Removes [Let] bindings whose variable is never read downstream. *)

val scc_propagate : mc:Machine_code.t -> Ir.t -> Ir.t
(** Version 1 [->] version 2.  The result needs no machine code at
    simulation time ([Ir.required_names] is empty).

    @raise Machine_code.Missing when [mc] lacks a pair the description
    uses — the case-study failure class (§5.2). *)

val inline_functions : Ir.t -> Ir.t
(** Version 2 [->] version 3: replaces helper calls by their bodies.  Call
    it on SCC-propagated descriptions (as the paper does); output-mux
    helpers are retained since the simulator invokes them by name. *)

val dead_elim : mc:Machine_code.t -> ?drop_stores:bool -> Ir.t -> Ir.t
(** Liveness-based dead-ALU elimination.  Uses the dataflow analysis to
    find ALUs no output mux can select under [mc], empties their bodies,
    and garbage-collects helpers that are no longer referenced.

    Dead {e stateful} ALUs keep their state updates by default, because
    final state is observable in a {!Druzhba_dsim.Trace.t}; pass
    [~drop_stores:true] to empty them too (output traces are unchanged
    either way). *)

(** The three optimization levels of the paper's Table 1. *)
type level =
  | Unoptimized
  | Scc
  | Scc_inline

val level_name : level -> string

type staged = {
  st_pass : string;  (** the pass that produced this snapshot *)
  st_desc : Ir.t;  (** the description after the pass ran *)
}

val apply_staged : level:level -> mc:Machine_code.t -> Ir.t -> staged list
(** The per-pass IR snapshots behind {!apply}, in execution order; the last
    snapshot is what {!apply} returns.  [Unoptimized] yields []. Translation
    validation ([druzhba vet]) diffs consecutive snapshots so a refutation
    names the offending pass. *)

val apply : level:level -> mc:Machine_code.t -> Ir.t -> Ir.t
(** Applies the requested level to a freshly generated description. *)
