(* Adapter between the compiler and the fuzzing harness: turns a compiled
   program into the Fig. 5 workflow pieces — the specification (reference
   semantics driven through the compiler's field/state layout), the set of
   observed containers, and the state comparison map. *)

module Value = Druzhba_util.Value
module Fuzz = Druzhba_fuzz.Fuzz
module Phv = Druzhba_dsim.Phv

(* Index of every program state variable in the spec's state vector. *)
let state_indices (c : Codegen.compiled) =
  List.mapi (fun i (v, _) -> (v, i)) c.Codegen.c_layout.Codegen.l_state

(* Builds a {!Fuzz.spec} that runs the reference semantics on the containers
   the compiler assigned. *)
let spec_of (c : Codegen.compiled) : Fuzz.spec =
  let bits = c.Codegen.c_target.Codegen.t_bits in
  let layout = c.Codegen.c_layout in
  let indices = state_indices c in
  let init () =
    Array.of_list
      (List.map
         (fun (v, _) -> Value.mask bits (List.assoc v c.Codegen.c_program.Ast.states))
         layout.Codegen.l_state)
  in
  let step state (phv : Phv.t) =
    let fields = Hashtbl.create 8 in
    List.iter (fun (f, cont) -> Hashtbl.replace fields f phv.(cont)) layout.Codegen.l_inputs;
    let state_tbl = Hashtbl.create 8 in
    List.iter (fun (v, i) -> Hashtbl.replace state_tbl v state.(i)) indices;
    Semantics.run_transaction ~bits c.Codegen.c_program ~state:state_tbl ~fields;
    List.iter (fun (v, i) -> state.(i) <- Hashtbl.find state_tbl v) indices;
    let out = Array.copy phv in
    List.iter
      (fun (f, cont) -> out.(cont) <- Hashtbl.find fields f)
      layout.Codegen.l_outputs;
    out
  in
  { Fuzz.spec_init = init; spec_step = step }

let observed (c : Codegen.compiled) = List.map snd c.Codegen.c_layout.Codegen.l_outputs

let state_layout (c : Codegen.compiled) : Fuzz.state_layout =
  let indices = state_indices c in
  List.map
    (fun (v, (alu, slot)) -> (alu, slot, List.assoc v indices))
    c.Codegen.c_layout.Codegen.l_state

(* Runs the complete compiler-testing workflow of Fig. 5 on a compiled
   program: simulate [n] random PHVs and compare the pipeline's output trace
   against the reference semantics. *)
let check ?level ?seed ~n (c : Codegen.compiled) : Fuzz.outcome =
  Fuzz.run_equivalence ?level ?seed ~init:c.Codegen.c_layout.Codegen.l_init
    ~desc:c.Codegen.c_desc ~mc:c.Codegen.c_mc ~spec:(spec_of c) ~observed:(observed c)
    ~state_layout:(state_layout c) ~n ()

(* Directed trial: feed [prefix] PHVs first — witness candidates from
   translation validation — from the reset state, then [n] random PHVs to
   keep exploring from wherever the directed packets led. *)
let check_directed ?level ?seed ~prefix ~n (c : Codegen.compiled) : Fuzz.outcome =
  Fuzz.run_equivalence ?level ?seed ~prefix ~init:c.Codegen.c_layout.Codegen.l_init
    ~desc:c.Codegen.c_desc ~mc:c.Codegen.c_mc ~spec:(spec_of c) ~observed:(observed c)
    ~state_layout:(state_layout c) ~n ()
