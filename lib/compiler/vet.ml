(* Static validation of compiled pipelines against the reference semantics.

   [druzhba vet] on a {!Codegen.compiled} (rule-based or synthesized)
   compares, at the *full* datapath width of the target, the end-to-end
   symbolic transfer function of the generated pipeline + machine code
   against the program's predicate semantics ({!Predicate.predicate} — the
   write-once spec of each output field and state variable).  No PHV is
   ever pushed through the simulator: both sides are normalized symbolic
   expressions over the input containers and the resident state, and a
   verdict comes from {!Druzhba_analysis.Equiv}'s decision ladder.

   This is the static form of the paper's §5.2 case study: a backend that
   synthesizes at a narrow width and installs a truncated immediate (100
   masked to 4) produces a pipeline whose symbolic output differs from the
   spec at the full width — refuted here with a concrete witness packet,
   where width-4 fuzzing would have passed.

   Refutation witnesses must be *reachable* to be replayable, so state
   atoms are handled in two rounds: an obligation is first decided with the
   resident state universally quantified (a proof there is a proof for
   every reachable state); if that refutes at a state other than the
   program's initial values, the obligation is re-decided with the state
   pinned to the reset image — a refutation of the pinned obligation is a
   first-packet counterexample, replayable from reset.  A separator that
   needs an unverified state is only ever *deferred*, as a directed-trial
   candidate for the fuzzing campaign. *)

module Value = Druzhba_util.Value
module Ir = Druzhba_pipeline.Ir
module Symbolic = Druzhba_analysis.Symbolic
module Equiv = Druzhba_analysis.Equiv

type subject =
  | Output of string * int  (* output field name, container *)
  | State of string * string * int  (* state var, ALU name, slot *)

let pp_subject ppf = function
  | Output (f, c) -> Fmt.pf ppf "output field '%s' (container %d)" f c
  | State (v, alu, k) -> Fmt.pf ppf "state '%s' (%s slot %d)" v alu k

let subject_id = function
  | Output (f, c) -> Printf.sprintf "output/%s/container%d" f c
  | State (v, alu, k) -> Printf.sprintf "state/%s/%s/slot%d" v alu k

type obligation = {
  vo_subject : subject;
  vo_spec : Symbolic.sym;  (* reference semantics (lhs of the witness) *)
  vo_impl : Symbolic.sym;  (* pipeline + machine code (rhs) *)
  vo_status : Equiv.status;
  vo_note : string;
}

let is_refuted ob = match ob.vo_status with Equiv.Refuted _ -> true | _ -> false

let taxonomy ob = Equiv.taxonomy ob.vo_status

let summary obs =
  List.map (fun b -> (b, List.length (List.filter (fun ob -> taxonomy ob = b) obs))) Equiv.buckets

let pp_obligation ppf ob =
  Fmt.pf ppf "@[<v>%a: %a" pp_subject ob.vo_subject Equiv.pp_status ob.vo_status;
  if ob.vo_note <> "" then Fmt.pf ppf "@,  note: %s" ob.vo_note;
  Fmt.pf ppf "@]"

(* --- Spec side: predicate sexpr -> symbolic normal form -------------------- *)

(* [Predicate.sexpr] operators are {!Druzhba_alu_dsl.Ast} operators — the
   same variants the IR uses — so the spec lowers into the shared normal
   form directly; the layout maps field and state names onto atoms. *)
let rec sym_of_sexpr ~bits ~(layout : Codegen.layout) (s : Predicate.sexpr) : Symbolic.sym =
  match s with
  | Predicate.SInt n -> Symbolic.Const n
  | Predicate.SIn f -> (
    match List.assoc_opt f layout.Codegen.l_inputs with
    | Some c -> Symbolic.Phv c
    | None -> raise (Symbolic.Unsupported (Printf.sprintf "input field '%s' has no container" f)))
  | Predicate.SState v -> (
    match List.assoc_opt v layout.Codegen.l_state with
    | Some (alu, k) -> Symbolic.State (alu, k)
    | None -> raise (Symbolic.Unsupported (Printf.sprintf "state var '%s' has no slot" v)))
  | Predicate.SBin (op, a, b) ->
    Symbolic.mk_binop bits op (sym_of_sexpr ~bits ~layout a) (sym_of_sexpr ~bits ~layout b)
  | Predicate.SUn (op, a) -> Symbolic.mk_unop bits op (sym_of_sexpr ~bits ~layout a)
  | Predicate.SCond (c, a, b) ->
    Symbolic.mk_cond bits (sym_of_sexpr ~bits ~layout c) (sym_of_sexpr ~bits ~layout a)
      (sym_of_sexpr ~bits ~layout b)

(* --- Reset-state handling -------------------------------------------------- *)

let init_of (layout : Codegen.layout) alu k =
  match List.assoc_opt alu layout.Codegen.l_init with
  | Some arr when k < Array.length arr -> arr.(k)
  | _ -> 0

let pin_to_init ~bits ~layout sym =
  Symbolic.substitute ~bits
    ~subst:(function
      | Symbolic.Astate (alu, k) -> Some (Symbolic.Const (init_of layout alu k))
      | _ -> None)
    sym

let witness_at_init layout (w : Equiv.witness) =
  List.for_all
    (function
      | Symbolic.Astate (alu, k), v -> v = init_of layout alu k
      | _ -> true)
    w.Equiv.w_assign

(* Universal proof, or reachable (first-packet) refutation, or deferral. *)
let decide_with_init cfg ~bits ~layout spec impl =
  let universal = Equiv.decide cfg spec impl in
  match universal with
  | Equiv.Proved _ -> (universal, "")
  | Equiv.Refuted (_, w) when witness_at_init layout w ->
    (universal, "witness holds at the reset state; replayable as the first packet")
  | _ -> (
    let spec0 = pin_to_init ~bits ~layout spec and impl0 = pin_to_init ~bits ~layout impl in
    match Equiv.decide cfg spec0 impl0 with
    | Equiv.Refuted (m, w) ->
      (Equiv.Refuted (m, w), "refuted at the reset state; replayable as the first packet")
    | _ -> (
      match universal with
      | Equiv.Refuted (_, w) ->
        ( Equiv.Deferred [ w.Equiv.w_assign ],
          "a separating assignment exists but needs a state not proven reachable; deferred \
           as a directed trial" )
      | s -> (s, "")))

(* --- Entry point ----------------------------------------------------------- *)

(* Vets one compiled artifact: every observed output field and every state
   variable yields one obligation, in layout order.  Works unchanged for
   {!Synth} results — they are packaged as {!Codegen.compiled} against the
   full-width description, which is exactly where narrow-synthesis bugs
   become visible. *)
let check ?config (c : Codegen.compiled) : obligation list =
  let d = c.Codegen.c_desc in
  let bits = d.Ir.d_bits in
  let layout = c.Codegen.c_layout in
  let cfg = match config with Some cfg -> cfg | None -> Equiv.config bits in
  let pred = Predicate.predicate ~bits c.Codegen.c_program in
  let defer subject note =
    {
      vo_subject = subject;
      vo_spec = Symbolic.Const 0;
      vo_impl = Symbolic.Const 0;
      vo_status = Equiv.Deferred [];
      vo_note = note;
    }
  in
  match Symbolic.run_pipeline ~mc:c.Codegen.c_mc d with
  | exception Symbolic.Unsupported msg ->
    (* Cannot evaluate the pipeline symbolically: defer everything. *)
    List.map (fun (f, c) -> defer (Output (f, c)) msg) layout.Codegen.l_outputs
    @ List.map
        (fun (v, (alu, k)) -> defer (State (v, alu, k)) msg)
        layout.Codegen.l_state
  | pipe ->
    let decide subject spec impl =
      match decide_with_init cfg ~bits ~layout spec impl with
      | status, note ->
        { vo_subject = subject; vo_spec = spec; vo_impl = impl; vo_status = status; vo_note = note }
      | exception Symbolic.Unsupported msg -> defer subject msg
    in
    let outputs =
      List.map
        (fun (f, container) ->
          match List.assoc_opt f pred.Predicate.field_updates with
          | None -> defer (Output (f, container)) "output field has no spec update"
          | Some sexpr -> (
            match sym_of_sexpr ~bits ~layout sexpr with
            | spec -> decide (Output (f, container)) spec pipe.Symbolic.pl_containers.(container)
            | exception Symbolic.Unsupported msg -> defer (Output (f, container)) msg))
        layout.Codegen.l_outputs
    in
    let states =
      List.map
        (fun (v, sexpr) ->
          match List.assoc_opt v layout.Codegen.l_state with
          | None -> defer (State (v, "?", 0)) "state var has no pipeline slot"
          | Some (alu, k) -> (
            let subject = State (v, alu, k) in
            let impl =
              match List.assoc_opt alu pipe.Symbolic.pl_state with
              | Some slots when k < Array.length slots -> Some slots.(k)
              | _ -> None
            in
            match impl with
            | None -> defer subject "stateful ALU not present in pipeline"
            | Some impl -> (
              match sym_of_sexpr ~bits ~layout sexpr with
              | spec -> decide subject spec impl
              | exception Symbolic.Unsupported msg -> defer subject msg)))
        pred.Predicate.state_updates
    in
    outputs @ states

let has_refuted obs = List.exists is_refuted obs
