(* Batched simulation driver: structure-of-arrays runs over lane chunks.

   Both RMT substrates expose a stage executor over {!Vcompile.lane} rows
   (the interpreter walks lanes through {!Druzhba_pipeline.Interp}, the
   compiled backend sweeps {!Druzhba_pipeline.Vcompile} kernels); this
   module owns everything around that executor so the two paths cannot
   drift: chunking the input stream into batches of at most [cap] PHVs,
   gathering PHVs into row-0 lanes (with bit-flip overlays applied per
   injection slot), deriving the per-stage live lane count from the tick
   budget, scattering row-depth lanes into the trace buffer, and the final
   bulk budget settlement.

   Equivalence with the sequential tick loop (the cross-path property test
   enforces this bit-for-bit):

   - the pipeline is feed-forward and ALU state is private per ALU, so
     sweeping stage [s] over a whole batch before stage [s+1] performs the
     same per-ALU state-mutation sequence as interleaved ticks, in the same
     (injection slot) order;
   - with [R] fuel remaining, [n] inputs and depth [d], a sequential run
     executes exactly [T = min R (n + d)] ticks: injection slot [j] reaches
     stage [s] iff [j + s <= T - 1] and produces an output iff
     [j <= T - d].  The driver gathers only slots [< T], executes stage [s]
     over the slot-ordered prefix satisfying the bound, scatters the output
     prefix, then settles the budget in bulk ([remaining <- R - (n + d)],
     or 0 + {!Budget.Exhausted} when [R < n + d]);
   - dropped injection slots keep their slot index (a bubble consumes a
     tick of fuel but occupies no lane), and bit flips land at gather time
     against the original slot index, both exactly as
     {!Faults.run_engine}/{!Faults.run_compiled} do sequentially. *)

module Vcompile = Druzhba_pipeline.Vcompile

type lane = Vcompile.lane

let lane_get = Vcompile.lane_get
let lane_set = Vcompile.lane_set

type rows = lane array array (* (depth+1) x width *)

let create_rows ~depth ~width ~cap : rows =
  Array.init (depth + 1) (fun _ -> Array.init (max 1 width) (fun _ -> Vcompile.create_lane cap))

(* Fault-overlay primitives, decomposed from a {!Faults.t} plan by the
   substrate wrappers (this module must not depend on {!Faults}, which
   depends on the engines).  [pv_stuck.(s)] lists (stateful-ALU index,
   slot, forced value) for stage [s], in plan order. *)
type primitives = {
  pv_dropped : bool array; (* index = injection slot *)
  pv_flips : (int * int * int) list; (* slot, container, bit *)
  pv_stuck : (int * int * int) list array; (* per stage *)
}

let no_faults = { pv_dropped = [||]; pv_flips = []; pv_stuck = [||] }

type ops = {
  bo_cap : int;
  bo_depth : int;
  bo_width : int;
  bo_rows : rows;
  bo_exec : s:int -> k:int -> stuck:(int * int * int) list -> unit;
}

(* Column sweeps at the batch boundary.  Top-level functions with concrete
   lane parameters so the Bigarray accesses compile to raw loads/stores — a
   local closure would go through the generic access path (measured ~40x
   slower per element). *)
let gather_column (phvs : Phv.t array) (l : lane) (c : int) (k : int) =
  for b = 0 to k - 1 do
    lane_set l b (Array.unsafe_get (Array.unsafe_get phvs b) c)
  done

let scatter_column (rows : int array array) (base : int) (l : lane) (c : int) (ko : int) =
  for b = 0 to ko - 1 do
    Array.unsafe_set (Array.unsafe_get rows (base + b)) c (lane_get l b)
  done

let run ?budget ?(overlays = no_faults) (ops : ops) ~inputs (buf : Trace.Buffer.t) =
  Trace.Buffer.clear buf;
  let cap = ops.bo_cap and depth = ops.bo_depth and width = ops.bo_width in
  if cap < 1 then invalid_arg "Batch.run: batch capacity must be >= 1";
  let n = List.length inputs in
  let needed = n + depth in
  let remaining0 = match budget with None -> max_int | Some b -> Budget.remaining b in
  (* number of ticks the sequential loop would execute *)
  let t_limit = if remaining0 < needed then remaining0 else max_int in
  let row0 = ops.bo_rows.(0) and out_row = ops.bo_rows.(depth) in
  let slots = Array.make cap 0 in
  let phv_scratch : Phv.t array = Array.make cap [||] in
  let dropped = overlays.pv_dropped in
  let n_dropped = Array.length dropped in
  let flips = overlays.pv_flips in
  let stuck_of s =
    if s < Array.length overlays.pv_stuck then overlays.pv_stuck.(s) else []
  in
  (* Gathers the next chunk: records the non-dropped PHVs of slots [slot..]
     into [phv_scratch]/[slots], stopping at [cap] lanes, end of input, or
     the tick limit.  Returns (live lane count, next slot, rest of input).
     The lane stores happen afterwards as contiguous column sweeps. *)
  let rec gather b slot rest =
    if b >= cap || slot >= t_limit then (b, slot, rest)
    else
      match rest with
      | [] -> (b, slot, rest)
      | (phv : Phv.t) :: tl ->
        if slot < n_dropped && Array.unsafe_get dropped slot then gather b (slot + 1) tl
        else begin
          slots.(b) <- slot;
          phv_scratch.(b) <- phv;
          gather (b + 1) (slot + 1) tl
        end
  in
  let rec chunks slot rest =
    match rest with
    | [] -> ()
    | _ :: _ when slot >= t_limit -> ()
    | _ ->
      let kc, slot', rest' = gather 0 slot rest in
      if kc > 0 then begin
        for c = 0 to width - 1 do
          gather_column phv_scratch row0.(c) c kc
        done;
        (match flips with
        | [] -> ()
        | fl ->
          (* flips land against the original injection slot, as the
             sequential fault runner applies them *)
          List.iter
            (fun (fs, fc, fb) ->
              let rec find b =
                if b < kc then
                  if slots.(b) = fs then
                    lane_set row0.(fc) b (lane_get row0.(fc) b lxor (1 lsl fb))
                  else find (b + 1)
              in
              find 0)
            fl);
        for s = 0 to depth - 1 do
          (* slot j reaches stage s iff j + s <= t_limit - 1; slots are
             ascending, so the live lanes are a prefix *)
          let lim = t_limit - 1 - s in
          let ks = ref kc in
          while !ks > 0 && slots.(!ks - 1) > lim do
            decr ks
          done;
          if !ks > 0 then ops.bo_exec ~s ~k:!ks ~stuck:(stuck_of s)
        done;
        (* output-eligible slots (<= t_limit - depth) are an ascending
           prefix too: reserve their rows in bulk and scatter by column *)
        let out_lim = t_limit - depth in
        let ko = ref kc in
        while !ko > 0 && slots.(!ko - 1) > out_lim do
          decr ko
        done;
        if !ko > 0 then begin
          let base = Trace.Buffer.extend buf !ko in
          let out_rows = Trace.Buffer.raw_rows buf in
          for c = 0 to width - 1 do
            scatter_column out_rows base out_row.(c) c !ko
          done
        end
      end;
      chunks slot' rest'
  in
  chunks 0 inputs;
  match budget with None -> () | Some b -> Budget.spend_bulk b ~ticks:needed
