(* First-class execution substrates.

   Four PRs of differential-testing machinery (oracle, campaigns, fault
   injection, tick budgets, golden traces, bench) were hardwired to the two
   RMT engines.  This module names the contract they actually relied on, so
   any backend that can (a) replay a list of input PHVs into a
   {!Trace.Buffer} and (b) expose its persistent state as named int vectors
   plugs into all of that machinery unchanged.

   The contract:
   - [run_into] is an {e independent run}: the substrate re-arms itself
     (state reset to whatever [load_state] installed) before executing, so
     the same value can be replayed any number of times and a fault run can
     be followed by a fault-free run with no leakage.  One output row is
     pushed per surviving input, in input order.
   - [budget] is spent deterministically (one unit per tick or per
     scheduled event); {!Budget.Exhausted} escapes to the caller mid-run.
   - [faults] applies the seeded overlay of {!Faults}; substrates without a
     stuck-at geometry apply the input-path subset ({!Faults.overlay_inputs}).
   - [current_state] after [run_into] is the final persistent state of that
     run, deterministic in (loaded state, inputs).
   - [step]/[boundaries] are the debugger surface: advance one tick with an
     optional injected PHV, and snapshot the PHV at each pipeline boundary.

   Values are packed existentially ([packed]) so heterogeneous substrate
   lists — interpreter at three optimization levels, compiled closures,
   event-driven dRMT, sequential dRMT — flow through one oracle. *)

module type S = sig
  type t

  val name : t -> string
  (** Configuration label, e.g. ["interpreter@scc"] or ["drmt@event"] —
      stable across runs; campaign reports key divergences on it. *)

  val width : t -> int
  (** Containers per output row; the trace-buffer row width. *)

  val load_state : t -> (string * int array) list -> unit
  (** Installs the persistent-state preload that every subsequent
      [run_into] starts from (control-plane register initialization). *)

  val run_into : ?budget:Budget.t -> ?faults:Faults.t -> t -> inputs:Phv.t list -> Trace.Buffer.t -> unit

  val run_batch_into :
    ?budget:Budget.t -> ?faults:Faults.t -> batch:int -> t -> inputs:Phv.t list -> Trace.Buffer.t -> unit
  (** As [run_into] — same independent-run contract, bit-identical trace,
      final state and budget accounting — but licensed to execute up to
      [batch] PHVs per dispatch over a structure-of-arrays register file.
      Substrates without a batched path (dRMT) satisfy it with their
      sequential [run_into]; callers may not observe the difference. *)

  val current_state : t -> (string * int array) list

  val step : t -> input:Phv.t option -> Phv.t option

  val boundaries : t -> Phv.t option array
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed

let name (Packed ((module M), t)) = M.name t
let width (Packed ((module M), t)) = M.width t
let load_state (Packed ((module M), t)) init = M.load_state t init

let run_into ?budget ?faults (Packed ((module M), t)) ~inputs buf =
  M.run_into ?budget ?faults t ~inputs buf

(* Default batch capacity for the batched differential paths: large enough
   to amortize per-stage dispatch, small enough that a whole lane file
   (every (stage, container) slot plus ALU outputs at 8 bytes per slot per
   lane) stays L1/L2-resident on the Table-1 geometries. *)
let default_batch = 64

let run_batch_into ?budget ?faults ?(batch = default_batch) (Packed ((module M), t)) ~inputs buf =
  M.run_batch_into ?budget ?faults ~batch t ~inputs buf

let current_state (Packed ((module M), t)) = M.current_state t
let step (Packed ((module M), t)) ~input = M.step t ~input
let boundaries (Packed ((module M), t)) = M.boundaries t

(* --- RMT adapters ----------------------------------------------------------- *)

module Engine_substrate = struct
  type t = {
    label : string;
    engine : Engine.t;
    mutable init : (string * int array) list;
  }

  let name t = t.label
  let width t = t.engine.Engine.width
  let load_state t init = t.init <- init

  let run_into ?budget ?faults t ~inputs buf =
    match faults with
    | None ->
      Engine.reset ~init:t.init t.engine;
      Engine.run_into ?budget t.engine ~inputs buf
    | Some plan -> Faults.run_engine ~init:t.init ?budget plan t.engine ~inputs buf

  let run_batch_into ?budget ?faults ~batch t ~inputs buf =
    match faults with
    | None ->
      Engine.reset ~init:t.init t.engine;
      Engine.run_batch_into ?budget ~batch t.engine ~inputs buf
    | Some plan -> Faults.run_engine_batched ~init:t.init ?budget ~batch plan t.engine ~inputs buf

  let current_state t = Engine.current_state t.engine
  let step t ~input = Engine.step t.engine ~input
  let boundaries t = Engine.boundaries t.engine
end

module Compiled_substrate = struct
  type t = {
    label : string;
    compiled : Compiled.t;
    mutable init : (string * int array) list;
  }

  let name t = t.label
  let width t = t.compiled.Compiled.width

  let load_state t init =
    t.init <- init;
    (* also arm the live state so step-based use sees the preload *)
    Compiled.reset t.compiled.Compiled.compiled;
    Compiled.load_state t.compiled.Compiled.compiled init

  let run_into ?budget ?faults t ~inputs buf =
    match faults with
    | None -> Compiled.run_into ~init:t.init ?budget t.compiled ~inputs buf
    | Some plan -> Faults.run_compiled ~init:t.init ?budget plan t.compiled ~inputs buf

  let run_batch_into ?budget ?faults ~batch t ~inputs buf =
    match faults with
    | None -> Compiled.run_batch_into ~init:t.init ?budget ~batch t.compiled ~inputs buf
    | Some plan -> Faults.run_compiled_batched ~init:t.init ?budget ~batch plan t.compiled ~inputs buf

  let current_state t = Compiled.current_state t.compiled
  let step t ~input = Compiled.step t.compiled ~input
  let boundaries t = Compiled.boundaries t.compiled
end

(* [of_engine ?label ?init desc ~mc] packs the interpreter engine; [label]
   defaults to ["interpreter"].  @raise like {!Engine.create}. *)
let of_engine ?(label = "interpreter") ?(init = []) desc ~mc : packed =
  Packed
    ( (module Engine_substrate),
      { Engine_substrate.label; engine = Engine.create ~init desc ~mc; init } )

let of_compiled ?(label = "compiled") ?(init = []) compiled : packed =
  let c = Compiled.create compiled in
  Compiled.reset compiled;
  Compiled.load_state compiled init;
  Packed ((module Compiled_substrate), { Compiled_substrate.label; compiled = c; init })
