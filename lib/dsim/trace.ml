(* Input/output packet traces (§3.3).

   After a simulation the output trace holds one PHV per input PHV (in
   order) plus the final per-ALU state vectors; fuzz testing compares these
   against the trace produced by a high-level specification. *)

type t = {
  inputs : Phv.t list;
  outputs : Phv.t list;
  (* Final state of every stateful ALU, keyed by its position-encoding name
     ("pipeline_stage_i_stateful_alu_j"). *)
  final_state : (string * int array) list;
}

let find_state t name = List.assoc_opt name t.final_state

let state_vec_equal (a : int array) (b : int array) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i =
    i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1))
  in
  go 0

(* Structural equality over outputs and final state (inputs are compared
   too: two traces are only comparable if they saw the same traffic).  Used
   by the differential oracle and the golden-trace regression tests. *)
let equal a b =
  (try List.for_all2 Phv.equal a.inputs b.inputs with Invalid_argument _ -> false)
  && (try List.for_all2 Phv.equal a.outputs b.outputs with Invalid_argument _ -> false)
  && List.length a.final_state = List.length b.final_state
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && state_vec_equal v1 v2)
       a.final_state b.final_state

(* One line per packet, then the state vectors. *)
let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun i (input, output) -> Fmt.pf ppf "phv %4d: in %a -> out %a@," i Phv.pp input Phv.pp output)
    (List.combine t.inputs t.outputs);
  List.iter
    (fun (name, state) ->
      Fmt.pf ppf "state %s = [%a]@," name Fmt.(array ~sep:(any "; ") int) state)
    t.final_state;
  Fmt.pf ppf "@]"

(* Preallocated output store for the zero-allocation tick path.

   The engines' steady-state loop must not allocate per PHV, so outputs are
   blitted into rows preallocated here instead of consed onto a list that is
   reversed at the end.  A buffer is reusable across runs ([clear]) — the
   differential oracle and the benchmark harness allocate one per width and
   run every configuration through it.  [contents] freezes the buffer into
   the [Phv.t list] view used by the immutable {!t} record, so everything
   downstream of a finished run (oracle diffing on traces, shrinking, golden
   fixtures, {!equal}) is untouched. *)
module Buffer = struct
  type buffer = {
    mutable rows : int array array; (* each row is one output PHV, [row_width] wide *)
    mutable len : int;
    row_width : int;
  }

  type t = buffer

  let create ~width ~capacity : t =
    {
      rows = Array.init (max 1 capacity) (fun _ -> Array.make width 0);
      len = 0;
      row_width = width;
    }

  let clear b = b.len <- 0
  let length b = b.len
  let width b = b.row_width

  (* Doubling growth keeps [push] amortized O(width); a correctly presized
     buffer never grows, so the steady state stays allocation-free. *)
  let grow b =
    let cap = Array.length b.rows in
    let rows = Array.make (2 * cap) [||] in
    Array.blit b.rows 0 rows 0 cap;
    for i = cap to (2 * cap) - 1 do
      rows.(i) <- Array.make b.row_width 0
    done;
    b.rows <- rows

  (* Appends the [row_width] ints of [src] starting at [off] by blitting
     them into the next preallocated row. *)
  let push b (src : int array) ~off =
    if b.len = Array.length b.rows then grow b;
    Array.blit src off b.rows.(b.len) 0 b.row_width;
    b.len <- b.len + 1

  (* Bulk reservation for the batched scatter path: appends [k] rows in one
     step and returns the index of the first.  The reserved rows hold stale
     data from earlier runs — the caller must overwrite every cell (the
     batched driver scatters all [row_width] columns of each row). *)
  let rec extend b k : int =
    if b.len + k > Array.length b.rows then begin
      grow b;
      extend b k
    end
    else begin
      let base = b.len in
      b.len <- b.len + k;
      base
    end

  (* Raw row store backing the buffer, for bulk writers paired with
     {!extend}.  Must be re-fetched after any [push]/[extend] (growth swaps
     the array); rows at index >= [length] are scratch. *)
  let raw_rows b : int array array = b.rows

  (* Borrowed view of row [i]: valid until the next [clear]/[push] cycle
     overwrites it; callers must not mutate or retain it. *)
  let row b i : Phv.t =
    if i < 0 || i >= b.len then invalid_arg "Trace.Buffer.row: out of bounds";
    b.rows.(i)

  (* Freezes the buffered outputs into fresh PHVs (the immutable trace
     view); the buffer remains reusable. *)
  let contents b : Phv.t list = List.init b.len (fun i -> Array.copy b.rows.(i))
end
