(* Input/output packet traces (§3.3).

   After a simulation the output trace holds one PHV per input PHV (in
   order) plus the final per-ALU state vectors; fuzz testing compares these
   against the trace produced by a high-level specification. *)

type t = {
  inputs : Phv.t list;
  outputs : Phv.t list;
  (* Final state of every stateful ALU, keyed by its position-encoding name
     ("pipeline_stage_i_stateful_alu_j"). *)
  final_state : (string * int array) list;
}

let find_state t name = List.assoc_opt name t.final_state

(* Structural equality over outputs and final state (inputs are compared
   too: two traces are only comparable if they saw the same traffic).  Used
   by the differential oracle and the golden-trace regression tests. *)
let equal a b =
  (try List.for_all2 Phv.equal a.inputs b.inputs with Invalid_argument _ -> false)
  && (try List.for_all2 Phv.equal a.outputs b.outputs with Invalid_argument _ -> false)
  && List.length a.final_state = List.length b.final_state
  && List.for_all2
       (fun (n1, v1) (n2, v2) -> String.equal n1 n2 && v1 = v2)
       a.final_state b.final_state

(* One line per packet, then the state vectors. *)
let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun i (input, output) -> Fmt.pf ppf "phv %4d: in %a -> out %a@," i Phv.pp input Phv.pp output)
    (List.combine t.inputs t.outputs);
  List.iter
    (fun (name, state) ->
      Fmt.pf ppf "state %s = [%a]@," name Fmt.(array ~sep:(any "; ") int) state)
    t.final_state;
  Fmt.pf ppf "@]"
